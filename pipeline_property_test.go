package repro

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/adg"
	"repro/internal/align"
	"repro/internal/interp"
	"repro/internal/lang"
)

// genProgram emits a random but well-formed program in the mini language:
// rank-1/rank-2 arrays, section arithmetic with affine subscripts, loops
// with constant bounds, conditionals, and the array intrinsics.
func genProgram(rng *rand.Rand) string {
	var b strings.Builder
	n1 := int64(20 + rng.Intn(30)) // rank-1 extent
	n2a, n2b := int64(8+rng.Intn(8)), int64(8+rng.Intn(8))
	b.WriteString(fmt.Sprintf("real X(%d), Y(%d), Z(%d)\n", n1, n1, n1))
	b.WriteString(fmt.Sprintf("real M(%d,%d), N(%d,%d)\n", n2a, n2b, n2b, n2a))

	vecStmt := func(depth int, liv string) string {
		w := int64(5 + rng.Intn(5)) // section width
		maxLo := n1 - w + 1
		arrays := []string{"x", "y", "z"}
		dst := arrays[rng.Intn(3)]
		src := arrays[rng.Intn(3)]
		op := []string{"+", "-", "*"}[rng.Intn(3)]
		if depth > 0 && rng.Intn(2) == 0 && maxLo > 10 {
			// Mobile section: lo depends on the LIV; keep in bounds for
			// the loop range 1..5.
			off := int64(rng.Intn(int(maxLo - 5)))
			return fmt.Sprintf("%s(%s+%d:%s+%d) = %s(%s+%d:%s+%d) %s 1\n",
				dst, liv, off, liv, off+w-1, src, liv, off, liv, off+w-1, op)
		}
		lo := int64(1 + rng.Intn(int(maxLo)))
		return fmt.Sprintf("%s(%d:%d) = %s(%d:%d) %s 2\n",
			dst, lo, lo+w-1, src, lo, lo+w-1, op)
	}

	stmts := 2 + rng.Intn(3)
	for s := 0; s < stmts; s++ {
		switch rng.Intn(5) {
		case 0: // plain vector statement
			b.WriteString(vecStmt(0, ""))
		case 1: // loop
			b.WriteString("do k = 1, 5\n")
			inner := 1 + rng.Intn(2)
			for i := 0; i < inner; i++ {
				b.WriteString("  " + vecStmt(1, "k"))
			}
			b.WriteString("enddo\n")
		case 2: // conditional
			b.WriteString("if (1 < 2) then\n  " + vecStmt(0, ""))
			if rng.Intn(2) == 0 {
				b.WriteString("else\n  " + vecStmt(0, ""))
			}
			b.WriteString("endif\n")
		case 3: // matrix transpose chain
			b.WriteString("m = m + transpose(n)\n")
		case 4: // elementwise intrinsic
			b.WriteString("x = cos(x)\n")
		}
	}
	return b.String()
}

// TestPipelinePropertyRandomPrograms: the full pipeline handles random
// well-formed programs without error; the resulting alignments satisfy
// every node constraint; costs are non-negative; and the reference
// interpreter executes the same programs (alignment never blocks
// semantics).
func TestPipelinePropertyRandomPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 40; trial++ {
		src := genProgram(rng)
		res, err := AlignSource(src, DefaultOptions())
		if err != nil {
			t.Fatalf("trial %d: align failed: %v\nprogram:\n%s", trial, err, src)
		}
		if res.Cost.General < 0 || res.Cost.Shift < 0 || res.Cost.Broadcast < 0 {
			t.Fatalf("trial %d: negative cost %s", trial, res.Cost)
		}
		// Interpreter accepts the same program.
		info := lang.MustAnalyze(lang.MustParse(src))
		if _, err := interp.Run(info); err != nil {
			t.Fatalf("trial %d: interpreter failed: %v\nprogram:\n%s", trial, err, src)
		}
	}
}

// TestPipelinePropertyStrategiesNoWorseThanStatic: for random loop
// programs, the mobile alignment found by fixed partitioning never costs
// more than the best static alignment (mobility strictly generalizes).
func TestPipelinePropertyStrategiesNoWorseThanStatic(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 12; trial++ {
		src := genProgram(rng)
		g := mustGraphT(t, src)
		as, err := align.AxisStride(g)
		if err != nil {
			t.Fatal(err)
		}
		mobile, err := align.Offsets(g, as, nil, align.OffsetOptions{Strategy: align.StrategyFixed, M: 3})
		if err != nil {
			t.Fatalf("trial %d mobile: %v\n%s", trial, err, src)
		}
		static, err := align.Offsets(g, as, nil, align.OffsetOptions{Strategy: align.StrategyFixed, M: 3, Static: true})
		if err != nil {
			t.Fatalf("trial %d static: %v\n%s", trial, err, src)
		}
		// The static LP's feasible set is a subset of the mobile one, so
		// the mobile approximation objective can't be worse; after
		// rounding, allow a small slack for rounding noise.
		if float64(mobile.Exact) > 1.25*float64(static.Exact)+16 {
			t.Errorf("trial %d: mobile %d ≫ static %d\n%s", trial, mobile.Exact, static.Exact, src)
		}
	}
}

func mustGraphT(t *testing.T, src string) *adg.Graph {
	t.Helper()
	res, err := AlignSource(src, Options{}) // reuse the pipeline front half
	if err != nil {
		t.Fatalf("graph: %v", err)
	}
	return res.Graph
}
