// Package repro is a reproduction of "Mobile and Replicated Alignment of
// Arrays in Data-Parallel Programs" (Chatterjee, Gilbert, Schreiber;
// Supercomputing '93). It determines array alignments — axis, stride, and
// offset, all possibly mobile (affine in loop induction variables), plus
// replication labels — that minimize residual (realignment) communication
// for data-parallel programs written in a small Fortran-90-flavored array
// language.
//
// The pipeline: parse → semantic analysis → alignment-distribution graph
// (ADG) construction → axis/stride alignment under the discrete metric
// (compact dynamic programming, §3) → replication labeling by min-cut
// (§5) ↔ mobile offset alignment by rounded linear programming (§4),
// iterated to quiescence (§6).
//
// Quick start:
//
//	res, err := repro.AlignSource(src, repro.DefaultOptions())
//	fmt.Println(res.Report())
package repro

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/adg"
	"repro/internal/align"
	"repro/internal/build"
	"repro/internal/cost"
	"repro/internal/lang"
	"repro/internal/lp"
)

// Options configures the alignment pipeline.
type Options struct {
	// Strategy selects the §4.2 mobile-offset algorithm.
	Strategy align.Strategy
	// Subranges is the per-loop-level subrange count m for the
	// fixed-partitioning strategy (default 3; the paper's recommendation).
	Subranges int
	// Replication enables replication labeling (§5).
	Replication bool
	// ReplicationRounds bounds the replication↔offset iteration (§6).
	ReplicationRounds int
	// Parallelism bounds the workers solving per-template-axis offset
	// LPs concurrently, and the workers running the axis/stride DP's
	// multi-start optimization; values ≤ 0 mean GOMAXPROCS. The computed
	// alignment is identical for every setting.
	Parallelism int
	// Restarts is the number of perturbed restarts of the axis/stride DP
	// beyond the two canonical seeds (0 means the default of 2; negative
	// disables restarts).
	Restarts int
	// Cache, when non-nil, memoizes pipeline results content-addressed by
	// the ADG and the result-affecting options: re-aligning an unchanged
	// program skips every solver. Share one cache across AlignSource /
	// AlignProgram calls; see NewCache.
	Cache *Cache
	// Partition enables incremental, compositional solving: each weakly
	// connected component of the program's ADG is content-addressed and
	// cached on its own (requires Cache), so editing one independent
	// computation re-solves only that component — the rest are warm
	// region hits — and components become the parallelism grain. The
	// computed alignment is byte-identical with Partition on or off at
	// every Parallelism setting.
	Partition bool
	// MaxLPIter, when > 0, caps the simplex pivots of every offset LP
	// solve; a solve that exhausts the budget fails with an error
	// wrapping lp.ErrBudget instead of spinning. 0 means a generous
	// default derived from each LP's size, which well-posed programs
	// never approach.
	MaxLPIter int64
	// NoPresolve disables the offset-LP presolver (pin/chain
	// contraction and block decomposition; see lp.Problem.Reduce), so
	// every RLP is solved monolithically exactly as built. The toggle
	// exists for differential testing and baseline measurement; the
	// computed alignment is the same either way on non-degenerate
	// programs.
	NoPresolve bool
	// NoSourceMemo disables the source-keyed memo tier in front of the
	// pipeline (see DESIGN.md): with a Cache configured, AlignSource
	// memoizes completed results keyed by the normalized token stream
	// of the source plus the result-affecting options, so re-aligning
	// an unchanged (or merely reformatted) program costs one hash and
	// skips lex, parse, sema, ADG build, and canonical hashing
	// entirely. The computed result is byte-identical with the memo on
	// or off (the toggle is therefore not part of any cache key); the
	// switch exists for baseline measurement and differential testing.
	NoSourceMemo bool
}

// Cache is a bounded content-addressed memo of pipeline results; see
// Options.Cache.
type Cache = align.Cache

// NewCache returns a pipeline result cache holding at most capacity
// entries (a default capacity if capacity <= 0).
func NewCache(capacity int) *Cache { return align.NewCache(capacity) }

// DefaultOptions returns the paper's recommended configuration:
// fixed partitioning with m = 3 and replication labeling enabled.
func DefaultOptions() Options {
	return Options{Strategy: align.StrategyFixed, Subranges: 3, Replication: true}
}

// Result is a fully aligned program.
type Result struct {
	Program *lang.Program
	Info    *lang.Info
	Graph   *adg.Graph
	Align   *align.Result
	// Cost is the exact realignment cost breakdown of the chosen
	// alignment under the §2.3 model.
	Cost cost.Breakdown
	// Frontend records per-phase front-end wall time (lex, parse, sema,
	// ADG build, source-key hashing); for a memo hit every phase but
	// Key is zero — nothing else ran.
	Frontend FrontendTimes
	// MemoHit reports that this result was served by the source-keyed
	// memo tier: the entire front end and pipeline were skipped, and
	// the nested Align result is the original leader's (its CacheHit
	// reflects that solve, not this lookup).
	MemoHit bool
}

// AlignSource parses, analyzes, builds the ADG, and aligns a program.
func AlignSource(src string, opts Options) (*Result, error) {
	return AlignSourceContext(context.Background(), src, opts)
}

// AlignSourceContext is AlignSource under a context: the solvers poll
// ctx at their iteration boundaries (simplex pivots, DP sweeps,
// refinement rounds) and a canceled or expired context aborts the
// solve with an error wrapping ctx.Err() — never a partial result.
func AlignSourceContext(ctx context.Context, src string, opts Options) (*Result, error) {
	return alignSourceLeased(ctx, nil, src, opts.alignOptions(), 0)
}

// AlignProgram aligns an already-parsed program.
func AlignProgram(prog *lang.Program, opts Options) (*Result, error) {
	return AlignProgramContext(context.Background(), prog, opts)
}

// AlignProgramContext is AlignProgram under a context (see
// AlignSourceContext).
func AlignProgramContext(ctx context.Context, prog *lang.Program, opts Options) (*Result, error) {
	info, err := lang.Analyze(prog)
	if err != nil {
		return nil, fmt.Errorf("analyze: %w", err)
	}
	g, err := build.Build(info)
	if err != nil {
		return nil, fmt.Errorf("build ADG: %w", err)
	}
	ar, err := align.AlignContext(ctx, g, opts.alignOptions())
	if err != nil {
		return nil, err
	}
	res := &Result{Program: prog, Info: info, Graph: g, Align: ar}
	res.Cost = cost.Exact(g, ar.Assignment)
	return res, nil
}

// alignOptions lowers the public options to the pipeline's.
func (o Options) alignOptions() align.Options {
	presolve := lp.PresolveAuto
	if o.NoPresolve {
		presolve = lp.PresolveOff
	}
	return align.Options{
		AxisStride: align.AxisStrideOptions{
			Parallelism: o.Parallelism,
			Restarts:    o.Restarts,
		},
		Offset: align.OffsetOptions{
			Strategy:    o.Strategy,
			M:           o.Subranges,
			Parallelism: o.Parallelism,
			Presolve:    presolve,
		},
		Replication:       o.Replication,
		ReplicationRounds: o.ReplicationRounds,
		Cache:             o.Cache,
		NoSourceMemo:      o.NoSourceMemo,
		Partition:         o.Partition,
		MaxLPIter:         o.MaxLPIter,
	}
}

// BatchOptions configures AlignBatch.
type BatchOptions struct {
	// Workers is the global worker budget shared by the whole batch;
	// values ≤ 0 mean GOMAXPROCS. The budget is leased to in-flight
	// programs: a batch wider than the budget runs that many
	// single-threaded solves concurrently, a narrower batch grants each
	// solve a proportionally larger share for its internal parallelism.
	// The batch never runs programs × per-solve workers goroutines, and
	// Options.Parallelism is ignored in favor of the lease.
	Workers int
	// SolveTimeout, when > 0, bounds each program's solve with its own
	// deadline: a slot that exceeds it fails with an error wrapping
	// context.DeadlineExceeded while the rest of the batch proceeds.
	SolveTimeout time.Duration
}

// BatchResult is one slot of an AlignBatch: the aligned program or the
// error of the source at the same index of the input slice.
type BatchResult struct {
	Result *Result
	Err    error
}

// AlignBatch aligns many programs under one global worker budget and
// returns the results in input order (slot i belongs to srcs[i]); a
// failing program reports its error in its own slot without voiding the
// rest. Options applies to every program. Its Cache — or a batch-local
// cache when nil — dedups identical programs: each distinct ADG is
// solved exactly once per batch, concurrent duplicates collapsing into
// the leader's solve (singleflight) and receiving the shared result
// rebound to their own graphs.
//
// The computed alignments and costs are byte-identical for every
// Workers setting and every input permutation (modulo slot order
// following the permutation): worker count only changes scheduling,
// never results.
func AlignBatch(srcs []string, opts Options, bopts BatchOptions) []BatchResult {
	return AlignBatchContext(context.Background(), srcs, opts, bopts)
}

// AlignBatchContext is AlignBatch under a context. Once ctx dies, no
// new slot starts and running solves abort at their next cancellation
// check; slots never started report ctx.Err(). An already-canceled
// context returns immediately with ctx.Err() in every slot.
// BatchOptions.SolveTimeout additionally bounds each slot with its own
// deadline.
//
// Every slot's pipeline — parsing through the solvers — runs under a
// recover boundary: a program that panics inside the library reports a
// *PanicError in its own slot (carrying the slot label and panic
// value) while every other slot completes with results identical to a
// batch without the offender.
func AlignBatchContext(ctx context.Context, srcs []string, opts Options, bopts BatchOptions) []BatchResult {
	out := make([]BatchResult, len(srcs))
	if len(srcs) == 0 {
		return out
	}
	if ctx == nil {
		ctx = context.Background()
	}
	aopts := opts.alignOptions()
	if aopts.Cache == nil {
		aopts.Cache = align.NewCache(len(srcs))
	}
	sched := align.NewScheduler(bopts.Workers)
	sched.MapContext(ctx, len(srcs), func(i, lease int) {
		out[i].Result, out[i].Err = align.Protect(fmt.Sprintf("program %d", i), func() (*Result, error) {
			slotCtx := ctx
			if bopts.SolveTimeout > 0 {
				var cancel context.CancelFunc
				slotCtx, cancel = context.WithTimeout(ctx, bopts.SolveTimeout)
				defer cancel()
			}
			return alignSourceLeased(slotCtx, sched, srcs[i], aopts, lease)
		})
	})
	// Slots the scheduler never dispatched (cancellation arrived first)
	// report the batch context's error.
	if err := ctx.Err(); err != nil {
		for i := range out {
			if out[i].Result == nil && out[i].Err == nil {
				out[i].Err = err
			}
		}
	}
	return out
}

// PanicError is a library panic captured at the batch engine's
// per-slot recover boundary; see AlignBatchContext.
type PanicError = align.PanicError

// Assignment returns the consolidated per-port alignment.
func (r *Result) Assignment() *adg.Assignment { return r.Align.Assignment }

// Report renders a human-readable summary: graph statistics, the chosen
// alignments, and the cost breakdown.
func (r *Result) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "ADG: %s\n", r.Graph.Stats())
	fmt.Fprintf(&b, "axis/stride discrete cost: %d (%d general edges)\n",
		r.Align.AxisStride.Cost, len(r.Align.AxisStride.GeneralEdges))
	dp := r.Align.AxisStride.Stats
	fmt.Fprintf(&b, "DP effort: %d starts, %d labels, %d configs, %d sweeps, %d moves, %d evals, %d expansions\n",
		dp.Starts, dp.Labels, dp.Configs, dp.Sweeps, dp.Moves, dp.Evals, dp.ExpansionAccepts)
	if r.Align.CacheHit {
		b.WriteString("pipeline cache: hit (solvers skipped)\n")
	}
	if r.MemoHit {
		b.WriteString("source memo: hit (front end skipped)\n")
	}
	if r.Align.Regions > 1 {
		// The count is a structural property of the program (identical
		// with Options.Partition on or off); region cache hits are not
		// printed here — they vary with cache warmth, and reports must
		// stay byte-identical across the Partition toggle.
		fmt.Fprintf(&b, "regions: %d independent components\n", r.Align.Regions)
	}
	fmt.Fprintf(&b, "replication broadcast volume: %d\n", r.Align.Repl.Broadcast)
	fmt.Fprintf(&b, "offset LP: %d vars, %d constraints, %d solves, approx cost %.0f\n",
		r.Align.Offset.LPVariables, r.Align.Offset.LPConstraints,
		r.Align.Offset.Solves, r.Align.Offset.Approx)
	st := r.Align.Offset.Stats
	fmt.Fprintf(&b, "LP effort: %d cold + %d warm + %d network solves (%d sparse), %d pivots, %d refactors, %d augments, phase1 %s, phase2 %s\n",
		st.Solves, st.WarmSolves, st.NetSolves, st.SparseSolves,
		st.Pivots, st.Refactors, st.Augments,
		st.Phase1.Round(time.Microsecond), st.Phase2.Round(time.Microsecond))
	fmt.Fprintf(&b, "LP presolve: %d fixed, %d contracted, %d block solves\n",
		st.PresolveFixed, st.PresolveContracted, st.Blocks)
	t := r.Align.Times
	fmt.Fprintf(&b, "phase times: axis/stride %s, replication %s, offsets %s\n",
		t.AxisStride.Round(time.Microsecond), t.Replication.Round(time.Microsecond),
		t.Offsets.Round(time.Microsecond))
	fe := r.Frontend
	fmt.Fprintf(&b, "front-end times: lex %s, parse %s, sema %s, build %s, key %s\n",
		fe.Lex.Round(time.Microsecond), fe.Parse.Round(time.Microsecond),
		fe.Sema.Round(time.Microsecond), fe.Build.Round(time.Microsecond),
		fe.Key.Round(time.Microsecond))
	fmt.Fprintf(&b, "exact cost: %s\n", r.Cost)
	b.WriteString("alignments:\n")
	b.WriteString(r.Align.Assignment.String())
	return b.String()
}

// CostReport renders the per-edge cost table of the costliest edges.
func (r *Result) CostReport(top int) string {
	return cost.Report(r.Graph, r.Align.Assignment, top)
}
