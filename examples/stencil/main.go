// Stencil: a wavefront-style sweep in the spirit of the ADI and LU
// workloads that motivated mobile alignment — each iteration touches a
// shifting window of the operands. Mobile offsets track the window so no
// realignment traffic remains; the example also cross-checks semantics
// against the reference interpreter.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/interp"
	"repro/internal/lang"
	"repro/internal/machine"
)

const src = `
real U(200), F(200)
do k = 1, 100
  U(k:k+99) = U(k:k+99) + F(k:k+99)
  F(k:k+99) = F(k:k+99) * 2
enddo
`

func main() {
	res, err := repro.AlignSource(src, repro.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== Wavefront sweep with mobile offsets ===")
	fmt.Println(res.Report())

	cfg := machine.Config{Grid: []int{8}, Extent: []int64{512}}
	tr := machine.Simulate(res.Graph, res.Assignment(), cfg)
	fmt.Printf("simulated 8-processor machine: %s (time %.0f)\n", tr, tr.Time(cfg))

	// Semantics check: run the program on the reference interpreter.
	info := lang.MustAnalyze(lang.MustParse(src))
	init := map[string]*interp.Array{"f": interp.NewArray(200)}
	for i := int64(1); i <= 200; i++ {
		init["f"].Set(1, i)
	}
	out, err := interp.RunFrom(info, init)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("interpreter check: U(1)=%g U(100)=%g (alignment never changes values)\n",
		out["u"].At(1), out["u"].At(100))
}
