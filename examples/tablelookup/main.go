// Tablelookup: a gather through a vector-valued subscript (§5.1). The
// lookup table is replicated across the processors, so every processor
// indexes its local copy — no per-element communication.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/adg"
)

const src = `
real DATA(4096), TABLE(256), IDX(4096), OUT(4096)
do k = 1, 8
  OUT = OUT + TABLE(IDX)
  DATA = DATA * OUT
enddo
`

func main() {
	res, err := repro.AlignSource(src, repro.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== Replicated lookup table (vector-valued subscript) ===")
	fmt.Println(res.Report())
	for _, n := range res.Graph.Nodes {
		if n.Kind == adg.KindGather {
			a := res.Assignment().Of(n.In[1])
			fmt.Printf("lookup-table port alignment: %s\n", a)
			repl := false
			for _, r := range a.Replicated {
				repl = repl || r
			}
			if repl {
				fmt.Println("→ table replicated across its space axis; gathers are local")
			}
		}
	}
}
