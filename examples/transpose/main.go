// Transpose: Example 3 of the paper — axis alignment. B = B + transpose(C)
// needs no communication if C is aligned with its axes swapped.
package main

import (
	"fmt"
	"log"

	"repro"
)

const src = `
real B(512,256), C(256,512)
B = B + transpose(C)
B = B * 2
C = transpose(B)
`

func main() {
	res, err := repro.AlignSource(src, repro.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== Example 3: axis alignment for transpose ===")
	fmt.Println(res.Report())
	if res.Align.AxisStride.Cost == 0 {
		fmt.Println("→ all transpose communication removed by opposite axis alignment")
	} else {
		fmt.Printf("→ residual general communication: %d elements\n", res.Align.AxisStride.Cost)
	}
}
