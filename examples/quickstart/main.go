// Quickstart: align the paper's Figure 1 fragment and print the mobile
// alignment it discovers, the zero residual-communication result, and the
// static baseline for contrast.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/align"
	"repro/internal/build"
	"repro/internal/lang"
)

const src = `
real A(100,100), V(200)
do k = 1, 100
  A(k,1:100) = A(k,1:100) + V(k:k+99)
enddo
`

func main() {
	res, err := repro.AlignSource(src, repro.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== Figure 1 of the paper, aligned ===")
	fmt.Println(res.Report())

	// The headline comparison: the same program restricted to static
	// offsets pays realignment every iteration.
	info := lang.MustAnalyze(lang.MustParse(src))
	g := build.MustBuild(info)
	as, err := align.AxisStride(g)
	if err != nil {
		log.Fatal(err)
	}
	static, err := align.Offsets(g, as, nil, align.OffsetOptions{
		Strategy: align.StrategyFixed, M: 3, Static: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mobile alignment residual cost: %d\n", res.Cost.Total())
	fmt.Printf("best static alignment residual cost: %d (grid-metric element·hops)\n", static.Exact)
	fmt.Println("→ mobile alignment is necessary for optimum performance (§1 of the paper)")
}
