// Spreadloop: the Figure 4 workload — a vector updated and spread across
// a matrix inside a loop. Replication labeling (min-cut, Theorem 1)
// discovers that replicating t turns a broadcast per iteration into a
// single broadcast at loop entry.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/machine"
)

const src = `
real T(100), B(100,200)
do k = 1, 200
  T = cos(T)
  B = B + spread(T, 2, 200)
enddo
`

func main() {
	with, err := repro.AlignSource(src, repro.Options{Replication: true})
	if err != nil {
		log.Fatal(err)
	}
	without, err := repro.AlignSource(src, repro.Options{Replication: false})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== Figure 4: replication labeling ===")
	fmt.Printf("with replication:    %s\n", with.Cost)
	fmt.Printf("without replication: %s\n", without.Cost)

	cfg := machine.Config{Grid: []int{4, 4}, Extent: []int64{256, 256}}
	trW := machine.Simulate(with.Graph, with.Assignment(), cfg)
	trWo := machine.Simulate(without.Graph, without.Assignment(), cfg)
	fmt.Printf("simulated 4x4 machine with replication:    %s  time=%.0f\n", trW, trW.Time(cfg))
	fmt.Printf("simulated 4x4 machine without replication: %s  time=%.0f\n", trWo, trWo.Time(cfg))
	fmt.Println("\nreplication labels (t's chain is replicated across the spread axis):")
	fmt.Print(with.Align.Assignment.String())
}
