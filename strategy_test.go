package repro

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/align"
	"repro/internal/build"
	"repro/internal/lang"
)

// TestStrategyOrderingProperty is a randomized-property pin of the §4.2
// quality ordering on mobile-offset problems: full unrolling solves the
// offset LP exactly, so its cost lower-bounds fixed partitioning, and
// fixed partitioning with m subranges is within the paper's 1 + 2/m²
// factor of that optimum (22% for m = 3, 8% for m = 5). The programs
// are generated from a fixed seed — loops whose mobile span has an
// interior zero crossing, the regime where partition placement actually
// matters — so the test is deterministic.
func TestStrategyOrderingProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const programs = 10
	for p := 0; p < programs; p++ {
		k := 8 + rng.Intn(9)   // trip count 8..16
		w := 10 + rng.Intn(15) // window width 10..24
		c := rng.Intn(9)       // B's constant shift 0..8
		z := 2 + rng.Intn(k-2) // zero crossing strictly inside 1..k
		lo := c + z            // A's window start: span lo-(k+c) crosses 0 at k=z
		src := fmt.Sprintf(`
real A(%d), B(%d)
do k = 1, %d
  A(%d:%d) = A(%d:%d) + B(k+%d:k+%d)
enddo
`, lo+w+4, k+c+w+4, k, lo, lo+w-1, lo, lo+w-1, c, c+w-1)

		info, err := lang.Analyze(lang.MustParse(src))
		if err != nil {
			t.Fatalf("program %d: %v", p, err)
		}
		g, err := build.Build(info)
		if err != nil {
			t.Fatalf("program %d: %v", p, err)
		}
		as, err := align.AxisStride(g)
		if err != nil {
			t.Fatalf("program %d: %v", p, err)
		}
		exact := func(s align.Strategy, m int) int64 {
			off, err := align.Offsets(g, as, nil, align.OffsetOptions{Strategy: s, M: m})
			if err != nil {
				t.Fatalf("program %d, %s m=%d: %v", p, s, m, err)
			}
			return off.Exact
		}
		unroll := exact(align.StrategyUnroll, 3)
		for _, m := range []int{3, 5} {
			fixed := exact(align.StrategyFixed, m)
			if fixed < unroll {
				t.Errorf("program %d (k=%d w=%d c=%d z=%d): fixed m=%d cost %d < unroll cost %d — unroll must be optimal",
					p, k, w, c, z, m, fixed, unroll)
			}
			bound := (1 + 2/float64(m*m)) * float64(unroll)
			if float64(fixed) > bound {
				t.Errorf("program %d (k=%d w=%d c=%d z=%d): fixed m=%d cost %d exceeds (1+2/m²)·unroll = %.1f (unroll %d)",
					p, k, w, c, z, m, fixed, bound, unroll)
			}
		}
	}
}
