GO ?= go

.PHONY: all build test tier1 race bench fmt vet benchreport

all: tier1

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# tier1 is the gate every change must keep green: formatting, vet,
# build, the full test suite, the race detector over the packages with
# internal concurrency (the offset worker pool and DP multi-start in
# align, the arena/warm-start machinery in lp), and a 1x bench smoke so
# benchmark code (and its gated speedup assertions) cannot bit-rot.
tier1:
	./scripts/ci.sh

race:
	$(GO) test -race ./internal/align/... ./internal/lp/... .

bench:
	$(GO) test -run XXX -bench . -benchtime 1x .

benchreport:
	$(GO) run ./cmd/benchreport

fmt:
	gofmt -l .

vet:
	$(GO) vet ./...
