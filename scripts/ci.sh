#!/bin/sh
# Tier-1 gate: formatting, static checks, build, tests, and the race
# detector over the concurrent packages. Run from the repository root
# (or via `make tier1`). Exits nonzero on the first failure.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt"
badfmt=$(gofmt -l .)
if [ -n "$badfmt" ]; then
    echo "gofmt: files need formatting:" >&2
    echo "$badfmt" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test"
go test ./...

echo "== go test -race (align, lp, root)"
go test -race ./internal/align/... ./internal/lp/... .

echo "== go test -race (batch engine: cache, singleflight, scheduler)"
go test -race -run 'TestCache|TestAlignSingleflight|TestScheduler|TestAlignBatch|TestScratch|TestBatchDeterminism' \
    ./internal/align/ .

echo "== go test -race (differential: dense vs sparse vs network vs presolved)"
go test -race -run Differential ./internal/align/ ./internal/lp/

echo "== go test -race (robustness: cancellation, panic isolation, budgets)"
go test -race -run 'Cancel|Panic|Budget' ./...

echo "== go test -race (serving: alignd daemon, quotas, drain; alignc exit codes)"
# The cmd tests build their child binaries with -race to match, so this
# covers the whole SIGTERM drain path under the detector: HTTP solve,
# streaming batch, quota 429s, drain 503s, and clean exits.
go test -race ./internal/service/ ./cmd/alignd/ ./cmd/alignc/

echo "== loadtest smoke (in-process daemon, concurrent clients, leak check)"
go run ./cmd/alignd/loadtest -self -clients 200 -requests 4 -corpus 16

echo "== fuzz smoke (lexer/parser/sema, 10s each; one -fuzz target per run)"
go test -run='^$' -fuzz=FuzzLexer -fuzztime=10s ./internal/lang
go test -run='^$' -fuzz=FuzzParser -fuzztime=10s ./internal/lang
go test -run='^$' -fuzz=FuzzSema -fuzztime=10s ./internal/lang

echo "== bench smoke (1x: benchmarks must build, run, and hold their gates)"
go test -run=NONE -bench=. -benchtime=1x .

echo "== incremental smoke (1-edit re-solve must hold its 4x gate under -benchmem)"
go test -run=NONE -bench=BenchmarkIncrementalEdit -benchtime=1x -benchmem .

echo "== benchmem smoke (steady-state allocs/op must not regress)"
# Committed thresholds with generous headroom over the measured steady
# state (rank4 ~690 allocs/op, batch mixed ~235k allocs/op, presolved
# refinement round ~780 allocs/op, fig1 presolve pair ~5.5k, cold front
# end ~250, memo hit path ~2-4, all at 1x): a breach means a pooled hot
# path started allocating per solve again. The hit-path gate also runs
# under the race detector below via TestHitPathZeroAlloc's -race leg
# (which skips the alloc count — race instrumentation allocates — but
# still drives the memo tier's fast path).
go test -run=NONE -bench='BenchmarkAxisStride/rank4|BenchmarkBatchThroughput/mixed|BenchmarkOffsetSolverPresolve|BenchmarkFrontend|BenchmarkHitPath' \
    -benchtime=1x -benchmem . | awk '
    $NF == "allocs/op" {
        n = $(NF - 1) + 0
        if ($1 ~ /^BenchmarkAxisStride\/rank4/)       { seen++; gate = 2000 }
        else if ($1 ~ /^BenchmarkBatchThroughput\/mixed/)     { seen++; gate = 700000 }
        else if ($1 ~ /^BenchmarkOffsetSolverPresolveFig1/)   { seen++; gate = 12000 }
        else if ($1 ~ /^BenchmarkOffsetSolverPresolve/)       { seen++; gate = 3000 }
        else if ($1 ~ /^BenchmarkFrontend/)           { seen++; gate = 400 }
        else if ($1 ~ /^BenchmarkHitPath/)            { seen++; gate = 8 }
        else next
        printf "%s: %d allocs/op (gate %d)\n", $1, n, gate
        if (n > gate) { printf "allocs/op regression: %s\n", $1; bad = 1 }
    }
    END {
        if (seen != 6) { printf "benchmem smoke: matched %d benchmarks, want 6\n", seen; bad = 1 }
        exit bad
    }'

echo "== go test -race (front end: memo determinism, hit path)"
go test -race -run 'TestHitPathZeroAlloc|TestMemoDeterminism' .

echo "tier1: OK"
