#!/bin/sh
# Tier-1 gate: formatting, static checks, build, tests, and the race
# detector over the concurrent packages. Run from the repository root
# (or via `make tier1`). Exits nonzero on the first failure.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt"
badfmt=$(gofmt -l .)
if [ -n "$badfmt" ]; then
    echo "gofmt: files need formatting:" >&2
    echo "$badfmt" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test"
go test ./...

echo "== go test -race (align, lp, root)"
go test -race ./internal/align/... ./internal/lp/... .

echo "== go test -race (batch engine: cache, singleflight, scheduler)"
go test -race -run 'TestCache|TestAlignSingleflight|TestScheduler|TestAlignBatch|TestScratch|TestBatchDeterminism' \
    ./internal/align/ .

echo "== go test -race (differential: dense vs sparse vs network engines)"
go test -race -run Differential ./internal/align/ ./internal/lp/

echo "== go test -race (robustness: cancellation, panic isolation, budgets)"
go test -race -run 'Cancel|Panic|Budget' ./...

echo "== fuzz smoke (lexer/parser, 10s)"
go test -run='^$' -fuzz=FuzzLexer -fuzztime=10s ./internal/lang

echo "== bench smoke (1x: benchmarks must build, run, and hold their gates)"
go test -run=NONE -bench=. -benchtime=1x .

echo "tier1: OK"
