package repro

import (
	"fmt"
	"testing"
)

// The per-template-axis offset problems solve on a worker pool and merge
// in axis order, so the pipeline must produce byte-identical alignments
// for every Parallelism setting. These are the example programs plus a
// rank-4 workload that actually exercises the multi-axis fan-out.
var determinismSources = map[string]string{
	"fig1": `
real A(100,100), V(200)
do k = 1, 100
  A(k,1:100) = A(k,1:100) + V(k:k+99)
enddo
`,
	"stencil": `
real U(200), F(200)
do k = 1, 100
  U(k:k+99) = U(k:k+99) + F(k:k+99)
  F(k:k+99) = F(k:k+99) * 2
enddo
`,
	"transpose": `
real B(512,256), C(256,512)
B = B + transpose(C)
B = B * 2
C = transpose(B)
`,
	"spreadloop": `
real T(100), B(100,200)
do k = 1, 200
  T = cos(T)
  B = B + spread(T, 2, 200)
enddo
`,
	"tablelookup": `
real DATA(4096), TABLE(256), IDX(4096), OUT(4096)
do k = 1, 8
  OUT = OUT + TABLE(IDX)
  DATA = DATA * OUT
enddo
`,
	"rank4": `
real A(24,24,24,24), B(24,24,24,24), C(24,24,24,24)
do k = 1, 8
  A(k:k+8,1:24,1:24,1:24) = A(k:k+8,1:24,1:24,1:24) + B(k+1:k+9,1:24,1:24,1:24)
  B(k:k+8,1:24,1:24,1:24) = B(k:k+8,1:24,1:24,1:24) * 2
  C(k:k+8,1:24,1:24,1:24) = C(k:k+8,1:24,1:24,1:24) + A(k+1:k+9,1:24,1:24,1:24)
enddo
`,
}

// TestParallelismDeterminism checks that sequential (Parallelism=1) and
// parallel (Parallelism=8) pipelines produce byte-identical alignment
// assignments and equal exact costs, with and without replication
// labeling (the latter exercises the warm-started §6 re-solves).
func TestParallelismDeterminism(t *testing.T) {
	for name, src := range determinismSources {
		for _, repl := range []bool{false, true} {
			t.Run(fmt.Sprintf("%s/repl=%v", name, repl), func(t *testing.T) {
				opts := DefaultOptions()
				opts.Replication = repl
				opts.Parallelism = 1
				seq, err := AlignSource(src, opts)
				if err != nil {
					t.Fatal(err)
				}
				opts.Parallelism = 8
				par, err := AlignSource(src, opts)
				if err != nil {
					t.Fatal(err)
				}
				if s, p := seq.Align.Offset.Exact, par.Align.Offset.Exact; s != p {
					t.Errorf("exact offset cost differs: sequential %d, parallel %d", s, p)
				}
				if s, p := seq.Assignment().String(), par.Assignment().String(); s != p {
					t.Errorf("assignments differ between Parallelism=1 and 8:\n--- sequential\n%s\n--- parallel\n%s", s, p)
				}
				if s, p := seq.Cost.Total(), par.Cost.Total(); s != p {
					t.Errorf("total cost differs: sequential %d, parallel %d", s, p)
				}
			})
		}
	}
}
