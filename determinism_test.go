package repro

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/align"
	"repro/internal/build"
	"repro/internal/lang"
)

// The per-template-axis offset problems solve on a worker pool and merge
// in axis order, so the pipeline must produce byte-identical alignments
// for every Parallelism setting. These are the example programs plus a
// rank-4 workload that actually exercises the multi-axis fan-out.
var determinismSources = map[string]string{
	"fig1": `
real A(100,100), V(200)
do k = 1, 100
  A(k,1:100) = A(k,1:100) + V(k:k+99)
enddo
`,
	"stencil": `
real U(200), F(200)
do k = 1, 100
  U(k:k+99) = U(k:k+99) + F(k:k+99)
  F(k:k+99) = F(k:k+99) * 2
enddo
`,
	"transpose": `
real B(512,256), C(256,512)
B = B + transpose(C)
B = B * 2
C = transpose(B)
`,
	"spreadloop": `
real T(100), B(100,200)
do k = 1, 200
  T = cos(T)
  B = B + spread(T, 2, 200)
enddo
`,
	"tablelookup": `
real DATA(4096), TABLE(256), IDX(4096), OUT(4096)
do k = 1, 8
  OUT = OUT + TABLE(IDX)
  DATA = DATA * OUT
enddo
`,
	"rank4": `
real A(24,24,24,24), B(24,24,24,24), C(24,24,24,24)
do k = 1, 8
  A(k:k+8,1:24,1:24,1:24) = A(k:k+8,1:24,1:24,1:24) + B(k+1:k+9,1:24,1:24,1:24)
  B(k:k+8,1:24,1:24,1:24) = B(k:k+8,1:24,1:24,1:24) * 2
  C(k:k+8,1:24,1:24,1:24) = C(k:k+8,1:24,1:24,1:24) + A(k+1:k+9,1:24,1:24,1:24)
enddo
`,
}

// TestParallelismDeterminism checks that sequential (Parallelism=1) and
// parallel (Parallelism=8) pipelines produce byte-identical alignment
// assignments and equal exact costs, with and without replication
// labeling (the latter exercises the warm-started §6 re-solves).
func TestParallelismDeterminism(t *testing.T) {
	for name, src := range determinismSources {
		for _, repl := range []bool{false, true} {
			t.Run(fmt.Sprintf("%s/repl=%v", name, repl), func(t *testing.T) {
				opts := DefaultOptions()
				opts.Replication = repl
				opts.Parallelism = 1
				seq, err := AlignSource(src, opts)
				if err != nil {
					t.Fatal(err)
				}
				opts.Parallelism = 8
				par, err := AlignSource(src, opts)
				if err != nil {
					t.Fatal(err)
				}
				if s, p := seq.Align.Offset.Exact, par.Align.Offset.Exact; s != p {
					t.Errorf("exact offset cost differs: sequential %d, parallel %d", s, p)
				}
				if s, p := seq.Assignment().String(), par.Assignment().String(); s != p {
					t.Errorf("assignments differ between Parallelism=1 and 8:\n--- sequential\n%s\n--- parallel\n%s", s, p)
				}
				if s, p := seq.Cost.Total(), par.Cost.Total(); s != p {
					t.Errorf("total cost differs: sequential %d, parallel %d", s, p)
				}
				if s, p := normalizeReport(seq.Report()), normalizeReport(par.Report()); s != p {
					t.Errorf("reports differ between Parallelism=1 and 8 (wall-time lines excluded):\n--- sequential\n%s\n--- parallel\n%s", s, p)
				}
			})
		}
	}
}

// normalizeReport strips the wall-time content from a Report: the
// "phase times:" and "front-end times:" lines and the phase1/phase2
// durations of the LP effort line. Everything else — alignments, costs,
// DP and LP effort counters — must be byte-identical across parallelism
// levels.
func normalizeReport(s string) string {
	lines := strings.Split(s, "\n")
	out := lines[:0]
	for _, line := range lines {
		if strings.HasPrefix(line, "phase times:") ||
			strings.HasPrefix(line, "front-end times:") {
			continue
		}
		if strings.HasPrefix(line, "LP effort:") {
			if i := strings.Index(line, ", phase1 "); i >= 0 {
				line = line[:i]
			}
		}
		out = append(out, line)
	}
	return strings.Join(out, "\n")
}

// normalizeBatchReport additionally strips the "pipeline cache: hit"
// and "source memo: hit" lines: in a batch with duplicate inputs, which
// copy is the singleflight leader (no hit line) and which are followers
// (hit) is a scheduling accident — everything else must still be
// byte-identical.
func normalizeBatchReport(s string) string {
	lines := strings.Split(normalizeReport(s), "\n")
	out := lines[:0]
	for _, line := range lines {
		if strings.HasPrefix(line, "pipeline cache:") ||
			strings.HasPrefix(line, "source memo:") {
			continue
		}
		out = append(out, line)
	}
	return strings.Join(out, "\n")
}

// TestBatchDeterminism pins the batch engine's output stability: the
// alignments, exact costs, and normalized Report text of AlignBatch are
// byte-identical across worker counts 1, 2, and 8 and across input
// permutations, and a duplicate-heavy batch returns the same per-program
// output while executing the pipeline exactly once per distinct program.
func TestBatchDeterminism(t *testing.T) {
	names := make([]string, 0, len(determinismSources))
	for name := range determinismSources {
		names = append(names, name)
	}
	sort.Strings(names)
	srcs := make([]string, len(names))
	for i, name := range names {
		srcs[i] = determinismSources[name]
	}
	opts := DefaultOptions()

	normalized := func(t *testing.T, results []BatchResult) []string {
		t.Helper()
		out := make([]string, len(results))
		for i, br := range results {
			if br.Err != nil {
				t.Fatalf("slot %d failed: %v", i, br.Err)
			}
			out[i] = normalizeBatchReport(br.Result.Report())
		}
		return out
	}

	base := normalized(t, AlignBatch(srcs, opts, BatchOptions{Workers: 1}))

	for _, workers := range []int{2, 8} {
		got := normalized(t, AlignBatch(srcs, opts, BatchOptions{Workers: workers}))
		for i := range base {
			if got[i] != base[i] {
				t.Errorf("workers=%d: %s report differs from workers=1:\n--- workers=1\n%s\n--- workers=%d\n%s",
					workers, names[i], base[i], workers, got[i])
			}
		}
	}

	// Shuffled input order: slot i must still hold the result of input i.
	perm := rand.New(rand.NewSource(7)).Perm(len(srcs))
	shuffled := make([]string, len(srcs))
	for i, j := range perm {
		shuffled[i] = srcs[j]
	}
	got := normalized(t, AlignBatch(shuffled, opts, BatchOptions{Workers: 8}))
	for i, j := range perm {
		if got[i] != base[j] {
			t.Errorf("shuffled batch: %s report differs from in-order run", names[j])
		}
	}

	t.Run("duplicates", func(t *testing.T) {
		const copies = 4
		dup := make([]string, 0, copies*len(srcs))
		for r := 0; r < copies; r++ {
			dup = append(dup, srcs...)
		}
		o := opts
		o.Cache = NewCache(len(dup))
		got := normalized(t, AlignBatch(dup, o, BatchOptions{Workers: 8}))
		for i, rep := range got {
			if rep != base[i%len(srcs)] {
				t.Errorf("duplicate copy of %s differs from its unique run", names[i%len(srcs)])
			}
		}
		computes, _ := o.Cache.FlightStats()
		if computes != int64(len(srcs)) {
			t.Errorf("duplicate batch executed the pipeline %d times, want exactly %d (one per distinct program)",
				computes, len(srcs))
		}
	})
}

// normalizeEffortReport additionally strips the solver effort lines
// ("LP effort:" and "LP presolve:") and the "pipeline cache:" line:
// presolve on and off legitimately spend different pivot and solve
// counts on the way to the same alignment, so a cross-toggle comparison
// keeps only the semantic output — alignments, costs, replication
// labels.
func normalizeEffortReport(s string) string {
	lines := strings.Split(normalizeReport(s), "\n")
	out := lines[:0]
	for _, line := range lines {
		if strings.HasPrefix(line, "LP effort:") ||
			strings.HasPrefix(line, "LP presolve:") ||
			strings.HasPrefix(line, "pipeline cache:") ||
			strings.HasPrefix(line, "source memo:") {
			continue
		}
		out = append(out, line)
	}
	return strings.Join(out, "\n")
}

// TestPresolveDeterminism pins the presolver's output contract along
// two axes. Within one setting of the toggle, everything — including
// the effort and presolve counters — is byte-identical across
// Parallelism 1/2/8 and Partition on/off: presolve statistics are
// deterministic, never scheduling accidents. Across the toggle, the
// single-LP-round pipeline (no replication) produces byte-identical
// effort-normalized reports, and the replicating pipeline produces
// identical exact and total costs: the §6 warm re-solves may land on
// different (equally optimal) degenerate vertices monolithically than
// block-wise, which is exactly why the toggle is part of the pipeline
// cache key (TestCacheKeyPresolveToggle).
func TestPresolveDeterminism(t *testing.T) {
	for name, src := range determinismSources {
		t.Run(name, func(t *testing.T) {
			for _, repl := range []bool{false, true} {
				var want string // cross-toggle baseline (repl=false only)
				var wantExact, wantTotal int64
				first := true
				for _, noPresolve := range []bool{false, true} {
					var wantFull string // within-toggle baseline
					for _, partition := range []bool{false, true} {
						for _, par := range []int{1, 2, 8} {
							opts := DefaultOptions()
							opts.Replication = repl
							opts.Partition = partition
							opts.NoPresolve = noPresolve
							opts.Parallelism = par
							if partition {
								opts.Cache = NewCache(8)
							}
							res, err := AlignSource(src, opts)
							if err != nil {
								t.Fatal(err)
							}
							full := normalizeBatchReport(res.Report())
							if wantFull == "" {
								wantFull = full
							} else if full != wantFull {
								t.Errorf("repl=%v presolve=%v: partition=%v par=%d report differs within the toggle:\n--- baseline\n%s\n--- got\n%s",
									repl, !noPresolve, partition, par, wantFull, full)
							}
							norm := normalizeEffortReport(res.Report())
							exact, total := int64(res.Align.Offset.Exact), res.Cost.Total()
							if first {
								want, wantExact, wantTotal, first = norm, exact, total, false
								continue
							}
							if exact != wantExact || total != wantTotal {
								t.Errorf("repl=%v presolve=%v partition=%v par=%d: costs exact=%d total=%d differ from baseline exact=%d total=%d",
									repl, !noPresolve, partition, par, exact, total, wantExact, wantTotal)
							}
							if !repl && norm != want {
								t.Errorf("repl=false presolve=%v partition=%v par=%d: normalized report differs across the toggle:\n--- baseline\n%s\n--- got\n%s",
									!noPresolve, partition, par, want, norm)
							}
						}
					}
				}
			}
		})
	}
}

// TestAxisStrideDeterminism pins the §3 phase in isolation: the
// multi-start DP must choose identical labelings, costs, and effort
// counters at every Parallelism setting (the worker pool only reorders
// wall-clock execution of the starts, never the seed-order reduction).
func TestAxisStrideDeterminism(t *testing.T) {
	for name, src := range determinismSources {
		t.Run(name, func(t *testing.T) {
			info, err := lang.Analyze(lang.MustParse(src))
			if err != nil {
				t.Fatal(err)
			}
			g, err := build.Build(info)
			if err != nil {
				t.Fatal(err)
			}
			seq, err := align.AxisStrideOpts(g, align.AxisStrideOptions{Parallelism: 1})
			if err != nil {
				t.Fatal(err)
			}
			for _, par := range []int{2, 8} {
				got, err := align.AxisStrideOpts(g, align.AxisStrideOptions{Parallelism: par})
				if err != nil {
					t.Fatal(err)
				}
				if got.Cost != seq.Cost {
					t.Errorf("par=%d: cost %d != sequential cost %d", par, got.Cost, seq.Cost)
				}
				if got.Stats != seq.Stats {
					t.Errorf("par=%d: DP stats %+v != sequential %+v", par, got.Stats, seq.Stats)
				}
				if len(got.Labels) != len(seq.Labels) {
					t.Fatalf("par=%d: %d labels != %d", par, len(got.Labels), len(seq.Labels))
				}
				for id, l := range seq.Labels {
					if !got.Labels[id].Equal(l) {
						t.Errorf("par=%d: port %d label %s != sequential %s", par, id, got.Labels[id], l)
					}
				}
			}
		})
	}
}
