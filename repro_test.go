package repro

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/align"
	"repro/internal/build"
	"repro/internal/cost"
	"repro/internal/lang"
	"repro/internal/lp"
)

// Integration tests of the public API: source text in, alignments and
// costs out.

func TestAlignSourceFig1(t *testing.T) {
	res, err := AlignSource(`
real A(100,100), V(200)
do k = 1, 100
  A(k,1:100) = A(k,1:100) + V(k:k+99)
enddo
`, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost.Total() != 0 {
		t.Errorf("Figure 1 cost = %d, want 0", res.Cost.Total())
	}
	rep := res.Report()
	for _, frag := range []string{"ADG:", "exact cost:", "alignments:"} {
		if !strings.Contains(rep, frag) {
			t.Errorf("report missing %q", frag)
		}
	}
}

func TestAlignSourceParseError(t *testing.T) {
	if _, err := AlignSource("real A(\n", DefaultOptions()); err == nil {
		t.Error("bad source accepted")
	}
	if _, err := AlignSource("real A(10)\nA = B\n", DefaultOptions()); err == nil {
		t.Error("undeclared array accepted")
	}
}

func TestAllStrategiesViaOptions(t *testing.T) {
	src := `
real A(20), B(40)
do k = 1, 8
  A(5:14) = A(5:14) + B(k:k+9)
enddo
`
	for _, s := range []align.Strategy{align.StrategyFixed, align.StrategySingle,
		align.StrategyZeroTrack, align.StrategyRecursive, align.StrategyUnroll} {
		res, err := AlignSource(src, Options{Strategy: s, Subranges: 3})
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if res.Cost.Total() < 0 {
			t.Errorf("%v: negative cost", s)
		}
	}
}

func TestReplicationEndToEnd(t *testing.T) {
	src := `
real T(100), B(100,200)
do k = 1, 200
  T = cos(T)
  B = B + spread(T, 2, 200)
enddo
`
	with, err := AlignSource(src, Options{Replication: true})
	if err != nil {
		t.Fatal(err)
	}
	without, err := AlignSource(src, Options{Replication: false})
	if err != nil {
		t.Fatal(err)
	}
	// Figure 4's shape: with labeling, one broadcast at loop entry (100
	// elements); without, a broadcast every iteration (100 × 200).
	if with.Cost.Broadcast >= without.Cost.Broadcast {
		t.Errorf("broadcast with labeling (%d) not less than without (%d)",
			with.Cost.Broadcast, without.Cost.Broadcast)
	}
	if without.Cost.BroadcastEvents < 200 {
		t.Errorf("without labeling, broadcast events = %d, want >= 200 (per iteration)",
			without.Cost.BroadcastEvents)
	}
	if with.Cost.BroadcastEvents > 2 {
		t.Errorf("with labeling, broadcast events = %d, want <= 2 (loop entry)",
			with.Cost.BroadcastEvents)
	}
}

func TestCostReport(t *testing.T) {
	res, err := AlignSource("real A(10), B(10)\nA = A + B\n", DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	_ = res.CostReport(5) // must not panic on a zero-cost program
}

// TestLPEffortAccumulatesAcrossRounds pins the effort accounting of the
// §6 replication iteration: the result must describe the WHOLE
// iteration — the expensive cold round-0 solves AND the warm re-solves
// — not just the final round. (A regression here once reported
// "0 cold solves" in every benchmark snapshot, because each warm round
// overwrote the accumulated stats.)
func TestLPEffortAccumulatesAcrossRounds(t *testing.T) {
	// Pin the monolithic warm path: with presolve on, a warm round whose
	// block costs are unchanged reuses the cached block solutions and
	// legitimately records zero warm solves.
	opts := DefaultOptions()
	opts.NoPresolve = true
	res, err := AlignSource(`
real A(100,100), V(200)
do k = 1, 100
  A(k,1:100) = A(k,1:100) + V(k:k+99)
enddo
`, opts)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Align.Offset.Stats
	if st.Solves == 0 {
		t.Errorf("cold solves vanished from the accumulated stats: %+v", st)
	}
	if st.WarmSolves == 0 {
		t.Errorf("warm solves missing from the accumulated stats: %+v", st)
	}
	if st.Pivots == 0 {
		t.Errorf("no pivots recorded: %+v", st)
	}
	rep := res.Report()
	if !strings.Contains(rep, "LP effort:") {
		t.Fatalf("report missing LP effort line:\n%s", rep)
	}
	if strings.Contains(rep, "LP effort: 0 cold") {
		t.Errorf("report shows zero cold solves:\n%s", rep)
	}
}

// TestOffsetEngineDeterminism pins the determinism contract of the
// two-tier offset LP engine (see internal/align/cache.go):
//
//   - within one engine mode, Report() is byte-identical (timing lines
//     aside) at parallelism 1, 2, and 8, and the LP-effort counters
//     don't depend on parallelism either;
//   - the network fast path is invisible: with the flow path enabled
//     and disabled the report agrees byte for byte (only the effort
//     counters move — net solves become simplex solves);
//   - the forced dense tableau reaches the same approximate objective
//     and LP sizes as the production engine. Its alignment may
//     legitimately differ on degenerate RLPs (a different optimal
//     vertex), which is why cacheKey includes the engine toggles.
func TestOffsetEngineDeterminism(t *testing.T) {
	// shift2d is straight-line, so the default mode answers every axis
	// on the network fast path; rank4Deep is the rank4-dp workload whose
	// RLPs auto-select the sparse core.
	workloads := map[string]string{
		"shift2d": `
real A(100,100), B(100,100), C(100,100)
A(1:98,1:98) = B(3:100,2:99) + C(2:99,3:100)
C(1:98,1:98) = A(2:99,2:99) * 2
B(1:98,1:98) = A(1:98,1:98) + C(1:98,1:98)
`,
		"rank4-dp": axisHeavySrc,
	}
	modes := []struct {
		name string
		mod  func(*align.Options)
	}{
		{"auto+net", func(o *align.Options) {}},
		{"auto-nonet", func(o *align.Options) { o.Offset.NoNetPath = true }},
		{"dense", func(o *align.Options) {
			o.Offset.Engine = lp.EngineDense
			o.Offset.NoNetPath = true
		}},
	}
	// stripTimings drops the two wall-clock report lines; everything
	// else (alignments, costs, LP sizes, solve counts by family) must
	// be byte-identical across parallelism, and — with the LP effort
	// line also dropped — across engines.
	stripLines := func(s string, prefixes ...string) string {
		var b strings.Builder
		for _, line := range strings.Split(s, "\n") {
			drop := false
			for _, p := range prefixes {
				if strings.HasPrefix(line, p) {
					drop = true
				}
			}
			if !drop {
				b.WriteString(line)
				b.WriteString("\n")
			}
		}
		return b.String()
	}
	for wname, src := range workloads {
		prog, err := lang.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		info, err := lang.Analyze(prog)
		if err != nil {
			t.Fatal(err)
		}
		var netOn string  // effort line stripped; net on/off agree exactly
		var lpLine string // "offset LP:" line; all engines agree
		var lpLineMode string
		for _, mode := range modes {
			var withinMode, firstPar string // timings stripped, all par agree
			var effortKey, firstKey string
			for _, par := range []int{1, 2, 8} {
				g, err := build.Build(info)
				if err != nil {
					t.Fatal(err)
				}
				aopts := DefaultOptions().alignOptions()
				aopts.AxisStride.Parallelism = par
				aopts.Offset.Parallelism = par
				mode.mod(&aopts)
				ar, err := align.Align(g, aopts)
				if err != nil {
					t.Fatalf("%s/%s/par=%d: %v", wname, mode.name, par, err)
				}
				res := &Result{Program: prog, Info: info, Graph: g, Align: ar}
				res.Cost = cost.Exact(g, ar.Assignment)
				rep := stripLines(res.Report(), "phase times:")
				st := ar.Offset.Stats
				key := fmt.Sprintf("solves=%d warm=%d net=%d sparse=%d pivots=%d refactors=%d augments=%d",
					st.Solves, st.WarmSolves, st.NetSolves, st.SparseSolves,
					st.Pivots, st.Refactors, st.Augments)
				// The effort line carries phase wall times, so compare
				// the counters via the key and the rest via the report.
				// The presolve line is effort too: which tier solves an
				// RLP decides whether the presolver ever runs.
				stripped := stripLines(rep, "LP effort:", "LP presolve:")
				if withinMode == "" {
					withinMode, effortKey, firstPar = stripped, key, fmt.Sprint(par)
				} else {
					if stripped != withinMode {
						t.Errorf("%s/%s: report differs between par=%s and par=%d:\n--- par=%s\n%s\n--- par=%d\n%s",
							wname, mode.name, firstPar, par, firstPar, withinMode, par, stripped)
					}
					if key != effortKey {
						t.Errorf("%s/%s: LP effort differs between par=%s and par=%d: %s vs %s",
							wname, mode.name, firstPar, par, effortKey, key)
					}
				}
				firstKey = key
				// The default mode must actually exercise the tier this
				// workload is built for.
				if mode.name == "auto+net" && par == 1 {
					if wname == "shift2d" && (st.NetSolves == 0 || st.Solves+st.WarmSolves > 0) {
						t.Errorf("shift2d default mode ran the simplex (%s); want all solves on the flow path", key)
					}
					if wname == "rank4-dp" && st.SparseSolves == 0 {
						t.Errorf("rank4-dp default mode never used the sparse core (%s)", key)
					}
				}
				if mode.name == "dense" && (st.NetSolves != 0 || st.SparseSolves != 0) {
					t.Errorf("%s forced-dense mode used a fast tier (%s)", wname, key)
				}
			}
			_ = firstKey
			switch mode.name {
			case "auto+net":
				netOn = withinMode
			case "auto-nonet":
				if withinMode != netOn {
					t.Errorf("%s: fast path on/off changes the report:\n--- net on\n%s\n--- net off\n%s",
						wname, netOn, withinMode)
				}
			}
			var line string
			for _, l := range strings.Split(withinMode, "\n") {
				if strings.HasPrefix(l, "offset LP:") {
					line = l
				}
			}
			if line == "" {
				t.Fatalf("%s/%s: report has no offset LP line", wname, mode.name)
			}
			if lpLine == "" {
				lpLine, lpLineMode = line, mode.name
			} else if line != lpLine {
				t.Errorf("%s: LP size/objective line differs between engines %s and %s:\n%s\n%s",
					wname, lpLineMode, mode.name, lpLine, line)
			}
		}
	}
}
