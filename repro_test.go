package repro

import (
	"strings"
	"testing"

	"repro/internal/align"
)

// Integration tests of the public API: source text in, alignments and
// costs out.

func TestAlignSourceFig1(t *testing.T) {
	res, err := AlignSource(`
real A(100,100), V(200)
do k = 1, 100
  A(k,1:100) = A(k,1:100) + V(k:k+99)
enddo
`, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost.Total() != 0 {
		t.Errorf("Figure 1 cost = %d, want 0", res.Cost.Total())
	}
	rep := res.Report()
	for _, frag := range []string{"ADG:", "exact cost:", "alignments:"} {
		if !strings.Contains(rep, frag) {
			t.Errorf("report missing %q", frag)
		}
	}
}

func TestAlignSourceParseError(t *testing.T) {
	if _, err := AlignSource("real A(\n", DefaultOptions()); err == nil {
		t.Error("bad source accepted")
	}
	if _, err := AlignSource("real A(10)\nA = B\n", DefaultOptions()); err == nil {
		t.Error("undeclared array accepted")
	}
}

func TestAllStrategiesViaOptions(t *testing.T) {
	src := `
real A(20), B(40)
do k = 1, 8
  A(5:14) = A(5:14) + B(k:k+9)
enddo
`
	for _, s := range []align.Strategy{align.StrategyFixed, align.StrategySingle,
		align.StrategyZeroTrack, align.StrategyRecursive, align.StrategyUnroll} {
		res, err := AlignSource(src, Options{Strategy: s, Subranges: 3})
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if res.Cost.Total() < 0 {
			t.Errorf("%v: negative cost", s)
		}
	}
}

func TestReplicationEndToEnd(t *testing.T) {
	src := `
real T(100), B(100,200)
do k = 1, 200
  T = cos(T)
  B = B + spread(T, 2, 200)
enddo
`
	with, err := AlignSource(src, Options{Replication: true})
	if err != nil {
		t.Fatal(err)
	}
	without, err := AlignSource(src, Options{Replication: false})
	if err != nil {
		t.Fatal(err)
	}
	// Figure 4's shape: with labeling, one broadcast at loop entry (100
	// elements); without, a broadcast every iteration (100 × 200).
	if with.Cost.Broadcast >= without.Cost.Broadcast {
		t.Errorf("broadcast with labeling (%d) not less than without (%d)",
			with.Cost.Broadcast, without.Cost.Broadcast)
	}
	if without.Cost.BroadcastEvents < 200 {
		t.Errorf("without labeling, broadcast events = %d, want >= 200 (per iteration)",
			without.Cost.BroadcastEvents)
	}
	if with.Cost.BroadcastEvents > 2 {
		t.Errorf("with labeling, broadcast events = %d, want <= 2 (loop entry)",
			with.Cost.BroadcastEvents)
	}
}

func TestCostReport(t *testing.T) {
	res, err := AlignSource("real A(10), B(10)\nA = A + B\n", DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	_ = res.CostReport(5) // must not panic on a zero-cost program
}
