package repro

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"strings"
	"testing"
	"time"

	"repro/internal/adg"
	"repro/internal/align"
	"repro/internal/build"
	"repro/internal/expr"
	"repro/internal/lang"
	"repro/internal/lp"
	"repro/internal/machine"
	"repro/internal/netflow"
	"repro/internal/space"
)

// The benchmark harness regenerates every worked example, figure, and
// analytic claim in the paper's evaluation (see EXPERIMENTS.md for the
// paper-vs-measured record). Custom metrics carry the reproduced numbers;
// ns/op measures the compile-time cost of the analyses themselves.

func mustAlign(b *testing.B, src string, opts Options) *Result {
	b.Helper()
	res, err := AlignSource(src, opts)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

const fig1Src = `
real A(100,100), V(200)
do k = 1, 100
  A(k,1:100) = A(k,1:100) + V(k:k+99)
enddo
`

// BenchmarkE1Fig1MobileVsStatic — Figure 1: mobile offset alignment
// executes the fragment with zero residual communication; the best static
// alignment pays a shift every iteration.
func BenchmarkE1Fig1MobileVsStatic(b *testing.B) {
	var mobileCost, staticCost int64
	for i := 0; i < b.N; i++ {
		info, _ := lang.Analyze(lang.MustParse(fig1Src))
		g, _ := build.Build(info)
		as, err := align.AxisStride(g)
		if err != nil {
			b.Fatal(err)
		}
		repl := align.NoReplication(g)
		mobile, err := align.Offsets(g, as, repl, align.OffsetOptions{Strategy: align.StrategyFixed, M: 3})
		if err != nil {
			b.Fatal(err)
		}
		static, err := align.Offsets(g, as, repl, align.OffsetOptions{Strategy: align.StrategyFixed, M: 3, Static: true})
		if err != nil {
			b.Fatal(err)
		}
		mobileCost, staticCost = mobile.Exact, static.Exact
	}
	b.ReportMetric(float64(mobileCost), "mobile-cost")
	b.ReportMetric(float64(staticCost), "static-cost")
	if mobileCost != 0 {
		b.Errorf("mobile cost = %d, want 0", mobileCost)
	}
	if staticCost == 0 {
		b.Errorf("static cost = 0, want > 0")
	}
}

// BenchmarkE2Example1Offset — Example 1: the unit-offset alignment
// removes the nearest-neighbor shift.
func BenchmarkE2Example1Offset(b *testing.B) {
	var res *Result
	for i := 0; i < b.N; i++ {
		res = mustAlign(b, `
real A(100), B(100)
A(1:99) = A(1:99) + B(2:100)
`, Options{})
	}
	b.ReportMetric(float64(res.Cost.Total()), "residual-cost")
	if res.Cost.Total() != 0 {
		b.Errorf("Example 1 cost = %d, want 0", res.Cost.Total())
	}
}

// BenchmarkE3Example2Stride — Example 2: stride alignment A(i) ⊞ [2i]
// avoids general communication.
func BenchmarkE3Example2Stride(b *testing.B) {
	var res *Result
	for i := 0; i < b.N; i++ {
		res = mustAlign(b, `
real A(100), B(200)
A(1:100) = A(1:100) + B(2:200:2)
`, Options{})
	}
	b.ReportMetric(float64(res.Align.AxisStride.Cost), "general-volume")
	if res.Align.AxisStride.Cost != 0 {
		b.Errorf("Example 2 stride cost = %d, want 0", res.Align.AxisStride.Cost)
	}
}

// BenchmarkE4Example3Axis — Example 3: axis alignment C(i1,i2) ⊞ [i2,i1]
// removes the transpose communication.
func BenchmarkE4Example3Axis(b *testing.B) {
	var res *Result
	for i := 0; i < b.N; i++ {
		res = mustAlign(b, `
real B(64,48), C(48,64)
B = B + transpose(C)
`, Options{})
	}
	b.ReportMetric(float64(res.Align.AxisStride.Cost), "general-volume")
	if res.Align.AxisStride.Cost != 0 {
		b.Errorf("Example 3 axis cost = %d, want 0", res.Align.AxisStride.Cost)
	}
}

// BenchmarkE5Example5MobileStride — Example 5: mobile stride V(i) ⊞k [ki]
// drops the cost from two general communications per iteration to one
// (volume 2000 → 1000 over 50 iterations of 20 elements).
func BenchmarkE5Example5MobileStride(b *testing.B) {
	var res *Result
	for i := 0; i < b.N; i++ {
		res = mustAlign(b, `
real A(1000), B(1000), V(20)
do k = 1, 50
  V = V + A(1:20*k:k)
  B(1:20*k:k) = V
enddo
`, Options{})
	}
	b.ReportMetric(float64(res.Align.AxisStride.Cost), "general-volume")
	if res.Align.AxisStride.Cost > 1000 {
		b.Errorf("mobile stride cost = %d, want <= 1000 (1 general comm/iter)", res.Align.AxisStride.Cost)
	}
}

// BenchmarkE6PartitionErrorBound — Figure 3 / §4.2: the m-subrange
// approximation of Σ w·|span| is within (1 + 2/m²) of exact. Measured on
// the adversarial span family span(i) = i - c over 1..n, maximizing the
// approximation error over the crossing position c.
func BenchmarkE6PartitionErrorBound(b *testing.B) {
	n := int64(60)
	tr := space.NewTriplet(1, n, 1)
	w := expr.Const(1)
	worst := map[int]float64{}
	for i := 0; i < b.N; i++ {
		for _, m := range []int{1, 2, 3, 5, 10} {
			worstRatio := 1.0
			for c := int64(1); c <= n; c += 3 {
				span := expr.Axpy(1, "i", -c)
				exact := expr.SumAbsAffineOverTriplet(w, span, "i", tr)
				if exact == 0 {
					continue
				}
				// The m-subrange approximation: |Σ| per subrange.
				var approx int64
				for _, sub := range tr.Partition(m) {
					s := expr.SumOverTriplet(w.Poly().Mul(span.Poly()), "i", sub)
					v, _ := s.IsConst()
					if v < 0 {
						v = -v
					}
					approx += v
				}
				// The approximation UNDERestimates; the solution found by
				// minimizing it is within exact/approx of optimal.
				r := float64(exact) / float64(approx+1)
				if approx > 0 {
					r = float64(exact) / float64(approx)
				}
				if r > worstRatio {
					worstRatio = r
				}
			}
			worst[m] = worstRatio
		}
	}
	for _, m := range []int{1, 2, 3, 5, 10} {
		b.ReportMetric(worst[m], fmt.Sprintf("worst-ratio-m%d", m))
		bound := 1 + 2/float64(m*m)
		if m >= 2 && worst[m] > bound+0.05 {
			b.Errorf("m=%d: worst ratio %.3f exceeds paper bound %.3f", m, worst[m], bound)
		}
	}
}

// BenchmarkE7StrategyComparison — §4.2: the five mobile-offset algorithms
// compared on a loop whose span has an interior zero crossing; reports
// solution quality (exact cost) and LP size.
func BenchmarkE7StrategyComparison(b *testing.B) {
	// Small enough that even full unrolling (the exact but impractical
	// strategy) solves in seconds, as the paper anticipates.
	src := `
real A(40), B(60)
do k = 1, 16
  A(9:28) = A(9:28) + B(k:k+19)
enddo
`
	type outcome struct {
		exact  int64
		lpVars int
		solves int
	}
	results := map[align.Strategy]outcome{}
	strategies := []align.Strategy{
		align.StrategyFixed, align.StrategySingle, align.StrategyZeroTrack,
		align.StrategyRecursive, align.StrategyUnroll,
	}
	for i := 0; i < b.N; i++ {
		for _, s := range strategies {
			info, _ := lang.Analyze(lang.MustParse(src))
			g, _ := build.Build(info)
			as, err := align.AxisStride(g)
			if err != nil {
				b.Fatal(err)
			}
			opts := align.OffsetOptions{Strategy: s, M: 3, UnrollCap: 16}
			off, err := align.Offsets(g, as, nil, opts)
			if err != nil {
				b.Fatal(err)
			}
			results[s] = outcome{exact: off.Exact, lpVars: off.LPVariables, solves: off.Solves}
		}
	}
	for _, s := range strategies {
		r := results[s]
		b.ReportMetric(float64(r.exact), s.String()+"-cost")
		b.ReportMetric(float64(r.lpVars), s.String()+"-lpvars")
	}
	// Fixed partitioning must be within the paper's 22% of the best found.
	best := results[align.StrategyUnroll].exact
	if best > 0 {
		ratio := float64(results[align.StrategyFixed].exact) / float64(best)
		b.ReportMetric(ratio, "fixed-vs-exact-ratio")
		if ratio > 1.23 {
			b.Errorf("fixed partitioning %.3f× exact, exceeds 1.22 bound", ratio)
		}
	}
}

// BenchmarkE8VariableSize — §4.3: closed forms σ0, σ1, σ2 for
// variable-size objects (weight β0 + β1·i) against brute force, and the
// speedup of evaluating them in closed form.
func BenchmarkE8VariableSize(b *testing.B) {
	tr := space.NewTriplet(3, 3+5*999, 5)
	var closed int64
	for i := 0; i < b.N; i++ {
		// weight(i) = 7 + 2i summed via σ forms.
		closed = 7*expr.Sigma0(tr) + 2*expr.Sigma1(tr)
	}
	var brute int64
	for _, iv := range tr.Values() {
		brute += 7 + 2*iv
	}
	if closed != brute {
		b.Errorf("closed form %d != brute force %d", closed, brute)
	}
	b.ReportMetric(float64(closed), "total-weight")
}

// BenchmarkE9LoopNests — §4.4: the 3^k Cartesian-product partition; the
// LP grows as 3^k·|E| variables with nest depth k.
func BenchmarkE9LoopNests(b *testing.B) {
	srcs := map[int]string{
		1: `
real A(40,40)
do i = 1, 12
  A(i,1:40) = A(i,1:40) + 1
enddo
`,
		2: `
real A(40,40)
do i = 1, 12
  do j = 1, 12
    A(i,j:j+9) = A(i,j:j+9) + 1
  enddo
enddo
`,
	}
	vars := map[int]int{}
	for i := 0; i < b.N; i++ {
		for depth, src := range srcs {
			info, _ := lang.Analyze(lang.MustParse(src))
			g, _ := build.Build(info)
			as, err := align.AxisStride(g)
			if err != nil {
				b.Fatal(err)
			}
			off, err := align.Offsets(g, as, nil, align.OffsetOptions{Strategy: align.StrategyFixed, M: 3})
			if err != nil {
				b.Fatal(err)
			}
			vars[depth] = off.LPVariables
		}
	}
	b.ReportMetric(float64(vars[1]), "lpvars-depth1")
	b.ReportMetric(float64(vars[2]), "lpvars-depth2")
	if vars[2] <= vars[1] {
		b.Errorf("depth-2 LP (%d vars) not larger than depth-1 (%d)", vars[2], vars[1])
	}
}

// BenchmarkE10Replication — Figure 4 + Theorem 1: replication labeling by
// min-cut keeps the broadcast volume at one t-broadcast per iteration
// (the cos chain) instead of re-broadcasting the spread result; and the
// LP min-cut (the paper's noted alternative) agrees with Dinic.
func BenchmarkE10Replication(b *testing.B) {
	src := `
real T(100), B(100,200)
do k = 1, 200
  T = cos(T)
  B = B + spread(T, 2, 200)
enddo
`
	var with, without int64
	for i := 0; i < b.N; i++ {
		resWith := mustAlign(b, src, Options{Replication: true})
		with = resWith.Cost.Broadcast + resWith.Cost.Shift + resWith.Cost.General
		// Without replication labeling the spread input edge pays a
		// broadcast-equivalent general/shift cost every iteration; the
		// machine simulator shows the same shape.
		resWithout := mustAlign(b, src, Options{Replication: false})
		without = resWithout.Cost.Total()
		cfg := machine.Config{Grid: []int{4, 4}, Extent: []int64{256, 256}}
		trW := machine.Simulate(resWith.Graph, resWith.Assignment(), cfg)
		trWo := machine.Simulate(resWithout.Graph, resWithout.Assignment(), cfg)
		b.ReportMetric(trW.Time(cfg), "time-with-repl")
		b.ReportMetric(trWo.Time(cfg), "time-without-repl")
	}
	b.ReportMetric(float64(with), "cost-with-repl")
	b.ReportMetric(float64(without), "cost-without-repl")

	// Theorem 1 ablation: Dinic vs LP min-cut on the replication network
	// extracted from a random labeling instance.
	g := netflow.NewGraph(6)
	edges := []netflow.LPEdge{
		{From: 0, To: 1, Capacity: 100}, {From: 1, To: 2, Capacity: 20},
		{From: 2, To: 3, Capacity: 100}, {From: 1, To: 4, Capacity: 15},
		{From: 4, To: 3, Capacity: 100}, {From: 0, To: 5, Capacity: 30},
		{From: 5, To: 3, Capacity: 25},
	}
	for _, e := range edges {
		g.AddEdge(e.From, e.To, e.Capacity)
	}
	dinic := g.MaxFlow(0, 3).Value
	lpVal, _, err := netflow.MinCutLP(6, edges, 0, 3)
	if err != nil {
		b.Fatal(err)
	}
	if dinic != lpVal {
		b.Errorf("Dinic min cut %d != LP min cut %d", dinic, lpVal)
	}
	b.ReportMetric(float64(dinic), "mincut-value")
}

// BenchmarkPipelineFig1 times the full compile pipeline on Figure 1.
func BenchmarkPipelineFig1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := AlignSource(fig1Src, DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkA1DistributionAblation — the distribution phase the paper
// defers (§6): the same misaligned program on block vs cyclic template
// distribution. Unit offset shifts touch only block boundaries under
// block distribution but move every element under cyclic — the shape the
// alignment/distribution interaction discussion predicts.
func BenchmarkA1DistributionAblation(b *testing.B) {
	src := `
real A(100,100), V(200)
do k = 1, 100
  A(k,1:100) = A(k,1:100) + V(k:k+99)
enddo
`
	info, _ := lang.Analyze(lang.MustParse(src))
	g, _ := build.Build(info)
	as, err := align.AxisStride(g)
	if err != nil {
		b.Fatal(err)
	}
	repl := align.NoReplication(g)
	static, err := align.Offsets(g, as, repl, align.OffsetOptions{Strategy: align.StrategyFixed, M: 3, Static: true})
	if err != nil {
		b.Fatal(err)
	}
	r := &align.Result{Graph: g, AxisStride: as, Repl: repl, Offset: static}
	asg := r.BuildAssignment()
	var blockT, cyclicT float64
	for i := 0; i < b.N; i++ {
		blockCfg := machine.Config{Grid: []int{4, 4}, Extent: []int64{256, 256}}
		cyclicCfg := machine.Config{Grid: []int{4, 4}, Extent: []int64{256, 256},
			Dist: []machine.Distribution{machine.Cyclic, machine.Cyclic}}
		blockT = machine.Simulate(g, asg, blockCfg).Time(blockCfg)
		cyclicT = machine.Simulate(g, asg, cyclicCfg).Time(cyclicCfg)
	}
	b.ReportMetric(blockT, "block-time")
	b.ReportMetric(cyclicT, "cyclic-time")
	if cyclicT <= blockT {
		b.Errorf("cyclic (%v) should pay more than block (%v) for shift realignment", cyclicT, blockT)
	}
}

// BenchmarkA2ReplicationIteration — the §6 chicken-and-egg: iterating
// replication labeling with mobile-offset information (round 2) finds at
// least as good a labeling as the first round.
func BenchmarkA2ReplicationIteration(b *testing.B) {
	src := `
real W(128), D(128,64)
do k = 1, 64
  D(1:128,k) = D(1:128,k) + W(1:128)
  W = W * 2
enddo
`
	var r1, r2 int64
	for i := 0; i < b.N; i++ {
		res1 := mustAlign(b, src, Options{Replication: true, ReplicationRounds: 1})
		res2 := mustAlign(b, src, Options{Replication: true, ReplicationRounds: 2})
		r1, r2 = res1.Cost.Total(), res2.Cost.Total()
	}
	b.ReportMetric(float64(r1), "round1-cost")
	b.ReportMetric(float64(r2), "round2-cost")
	if r2 > r1 {
		b.Errorf("iterating replication/offsets worsened the result: %d → %d", r1, r2)
	}
}

// rank4Src exercises all four template axes with mobile sections, so the
// per-axis offset RLPs are symmetric and heavy — the workload for the
// parallel-axis and warm-start benchmarks.
const rank4Src = `
real A(24,24,24,24), B(24,24,24,24), C(24,24,24,24)
do k = 1, 8
  A(k:k+8,k:k+8,k:k+8,k:k+8) = A(k:k+8,k:k+8,k:k+8,k:k+8) + B(k+1:k+9,k+1:k+9,k+1:k+9,k+1:k+9)
  B(k:k+8,k:k+8,k:k+8,k:k+8) = B(k:k+8,k:k+8,k:k+8,k:k+8) * 2
  C(k:k+8,k:k+8,k:k+8,k:k+8) = C(k:k+8,k:k+8,k:k+8,k:k+8) + A(k+1:k+9,k+1:k+9,k+1:k+9,k+1:k+9)
enddo
`

func rank4Graph(b *testing.B) (*adg.Graph, *align.AxisStrideResult) {
	b.Helper()
	info, err := lang.Analyze(lang.MustParse(rank4Src))
	if err != nil {
		b.Fatal(err)
	}
	g, err := build.Build(info)
	if err != nil {
		b.Fatal(err)
	}
	as, err := align.AxisStride(g)
	if err != nil {
		b.Fatal(err)
	}
	return g, as
}

// BenchmarkOffsetsParallel — the tentpole fan-out: the four per-axis
// RLPs solve on a worker pool. Sequential and parallel results are
// byte-identical (TestParallelismDeterminism); with GOMAXPROCS ≥ 4 the
// parallel run must be ≥1.5× faster. On fewer cores the speedup is
// reported but not asserted (a 1-CPU box cannot overlap the axes).
func BenchmarkOffsetsParallel(b *testing.B) {
	g, as := rank4Graph(b)
	procs := runtime.GOMAXPROCS(0)
	measure := func(par int) time.Duration {
		opts := align.OffsetOptions{Strategy: align.StrategyFixed, M: 3, Parallelism: par}
		t0 := time.Now()
		for i := 0; i < b.N; i++ {
			if _, err := align.Offsets(g, as, nil, opts); err != nil {
				b.Fatal(err)
			}
		}
		return time.Since(t0)
	}
	seq := measure(1)
	par := measure(procs)
	speedup := float64(seq) / float64(par)
	b.ReportMetric(speedup, "speedup")
	b.ReportMetric(float64(procs), "gomaxprocs")
	if procs >= 4 && speedup < 1.5 {
		b.Errorf("parallel axis solve speedup %.2fx < 1.5x with GOMAXPROCS=%d", speedup, procs)
	}
}

// BenchmarkOffsetsWarmStart — the §6 replication rounds: re-solving
// under a changed replication labeling via the retained basis (phase 2
// only) versus a cold two-phase solve per round. Warm re-solves must
// pivot strictly less; allocations drop because the tableau is carved
// from the per-axis arena.
func BenchmarkOffsetsWarmStart(b *testing.B) {
	g, as := rank4Graph(b)
	opts := align.OffsetOptions{Strategy: align.StrategyFixed, M: 3, Parallelism: 1}
	repl := align.NoReplication(g)
	var coldPivots, warmPivots int64
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			off, err := align.Offsets(g, as, repl, opts)
			if err != nil {
				b.Fatal(err)
			}
			coldPivots = off.Stats.Pivots
		}
		b.ReportMetric(float64(coldPivots), "pivots")
	})
	b.Run("warm", func(b *testing.B) {
		b.ReportAllocs()
		solver := align.NewOffsetSolver(g, as, opts)
		if _, err := solver.Solve(repl); err != nil {
			b.Fatal(err) // pay the cold factorization outside the loop
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			off, err := solver.Solve(repl)
			if err != nil {
				b.Fatal(err)
			}
			warmPivots = off.Stats.Pivots
		}
		b.ReportMetric(float64(warmPivots), "pivots")
	})
	if coldPivots > 0 && warmPivots >= coldPivots {
		b.Errorf("warm re-solve pivots (%d) not below cold solve pivots (%d)", warmPivots, coldPivots)
	}
}

// axisHeavySrc is the rank-4 workload for the §3 compact DP itself:
// strided rank-4 sections, a transpose pair, and index sections give the
// solver a nontrivial candidate-label space (many distinct axis/stride
// labels, >100 node configurations) where the pre-PR solver's string
// keys and full-sweep re-evaluation dominate.
const axisHeavySrc = `
real A(64,64,64,64), B(128,128,128,128), C(64,64), D(64,64), V(64)
do k = 1, 16
  A(1:64,1:64,1:64,1:64) = A(1:64,1:64,1:64,1:64) + B(2:128:2,2:128:2,2:128:2,2:128:2)
  C = C + transpose(D)
  D = transpose(C)
  V = V + A(1:64,k,k,k)
  C(1:64,k) = V
enddo
`

func buildGraph(b *testing.B, src string) *adg.Graph {
	b.Helper()
	info, err := lang.Analyze(lang.MustParse(src))
	if err != nil {
		b.Fatal(err)
	}
	g, err := build.Build(info)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// minTime returns the fastest of tries timings of f over reps
// iterations, so the gated speedup ratios below stay stable even at
// -benchtime=1x (the CI bench-smoke setting).
func minTime(b *testing.B, tries, reps int, f func() error) time.Duration {
	b.Helper()
	best := time.Duration(-1)
	for t := 0; t < tries; t++ {
		t0 := time.Now()
		for r := 0; r < reps; r++ {
			if err := f(); err != nil {
				b.Fatal(err)
			}
		}
		if d := time.Since(t0); best < 0 || d < best {
			best = d
		}
	}
	return best
}

// BenchmarkAxisStride — the flat pooled DP against the two retained
// baselines on the DP-heavy rank-4 workload and the examples/ programs:
// the pre-PR string-keyed solver (AxisStrideLegacy, gated ≥ 3×) and the
// interned-label slice-state solver it replaced (AxisStrideInterned,
// 2.1–2.3× quiet, gated ≥ 1.8× to clear mid-suite GC-pool noise on a
// single-CPU host). ns/op and allocs/op measure
// the production solver warm (the pooled steady state the batch engine
// runs in); a warm-up solve before ResetTimer charges the pool's
// first-fill to setup. All solvers share candidate generation, so the
// ratios isolate config enumeration + optimization. Byte-identical
// output across parallelism levels is asserted by
// TestAxisStrideDeterminism and TestDPStateDeterminism.
func BenchmarkAxisStride(b *testing.B) {
	workloads := []struct{ name, src string }{
		{"rank4", axisHeavySrc},
		{"stencil", determinismSources["stencil"]},
		{"transpose", determinismSources["transpose"]},
		{"spreadloop", determinismSources["spreadloop"]},
		{"tablelookup", determinismSources["tablelookup"]},
	}
	for _, w := range workloads {
		b.Run(w.name, func(b *testing.B) {
			g := buildGraph(b, w.src)
			// Quiesce the heap: earlier benchmarks (E7's unrolled LPs
			// especially) leave a bloated live set whose GC pacing, on
			// one CPU, taxes the timing windows below and corrupts the
			// gated ratios. FreeOSMemory forces a full collect and
			// resets the pacer's target to the true live set.
			debug.FreeOSMemory()
			if _, err := align.AxisStride(g); err != nil { // warm the pools
				b.Fatal(err)
			}
			// The three solvers are measured in interleaved rounds (not
			// one solver at a time) so a burst of host or GC noise lands
			// on all of them instead of skewing whichever solver owned
			// that window — the gates below compare ratios, and the min
			// per solver across rounds cancels common-mode slowdowns.
			legacy, internedT, flat := time.Duration(-1), time.Duration(-1), time.Duration(-1)
			meas := func(cur *time.Duration, f func() error) {
				t0 := time.Now()
				for r := 0; r < 8; r++ {
					if err := f(); err != nil {
						b.Fatal(err)
					}
				}
				if d := time.Since(t0); *cur < 0 || d < *cur {
					*cur = d
				}
			}
			for t := 0; t < 4; t++ {
				meas(&legacy, func() error {
					_, err := align.AxisStrideLegacy(g)
					return err
				})
				meas(&internedT, func() error {
					_, err := align.AxisStrideInterned(g)
					return err
				})
				meas(&flat, func() error {
					_, err := align.AxisStride(g)
					return err
				})
			}
			var stats align.DPStats
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				as, err := align.AxisStride(g)
				if err != nil {
					b.Fatal(err)
				}
				stats = as.Stats
			}
			b.StopTimer()
			speedup := float64(legacy) / float64(flat)
			speedupInt := float64(internedT) / float64(flat)
			b.ReportMetric(speedup, "speedup-vs-legacy")
			b.ReportMetric(speedupInt, "speedup-vs-interned")
			b.ReportMetric(float64(stats.Labels), "labels")
			b.ReportMetric(float64(stats.Configs), "configs")
			b.ReportMetric(float64(stats.Sweeps), "sweeps")
			if w.name == "rank4" && speedup < 3 {
				b.Errorf("flat DP speedup %.2fx < 3x over string-keyed solver on rank-4 workload (legacy %v, flat %v)",
					speedup, legacy, flat)
			}
			// Quiet-state ratio is 2.1–2.3x, but mid-suite (after E7's
			// heap churn, which GC-clears the flat solver's pools) it
			// measures 1.9–2.0x even with the interleaved protocol and
			// forced collection above, so the gate carries margin below
			// the in-suite floor. A real regression — flat losing its
			// pooled advantage — lands near 1x and still trips it.
			if w.name == "rank4" && speedupInt < 1.8 {
				b.Errorf("flat DP speedup %.2fx < 1.8x over interned-label solver on rank-4 workload (interned %v, flat %v)",
					speedupInt, internedT, flat)
			}
		})
	}
}

// BenchmarkOffsetSolver — the two-tier offset LP engine against the
// retained dense tableau on the cold offsets phase of the rank4-dp
// workload (the §4 RLPs there are large and sparse, so EngineAuto
// selects the sparse revised simplex on every axis). ns/op times the
// production (auto) engine; the speedup metric is gated ≥ 3×. Both
// runs share graph construction and axis/stride alignment, so the
// ratio isolates the LP cores. Engine-invariant output is asserted by
// TestOffsetEngineDeterminism and TestDifferentialEngines.
func BenchmarkOffsetSolver(b *testing.B) {
	g := buildGraph(b, axisHeavySrc)
	as, err := align.AxisStride(g)
	if err != nil {
		b.Fatal(err)
	}
	repl := align.NoReplication(g)
	solve := func(eng lp.Engine) (*align.OffsetResult, error) {
		return align.Offsets(g, as, repl, align.OffsetOptions{
			Strategy: align.StrategyFixed, M: 3, Engine: eng,
		})
	}
	var denseRes, autoRes *align.OffsetResult
	dense := minTime(b, 3, 2, func() error {
		r, err := solve(lp.EngineDense)
		denseRes = r
		return err
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := solve(lp.EngineAuto)
		if err != nil {
			b.Fatal(err)
		}
		autoRes = r
	}
	b.StopTimer()
	auto := minTime(b, 3, 2, func() error {
		r, err := solve(lp.EngineAuto)
		autoRes = r
		return err
	})
	objTol := 1e-6 * (1 + denseRes.Approx)
	if denseRes.Exact != autoRes.Exact || denseRes.Approx-autoRes.Approx > objTol ||
		autoRes.Approx-denseRes.Approx > objTol {
		b.Fatalf("engines disagree: dense exact=%d approx=%g, auto exact=%d approx=%g",
			denseRes.Exact, denseRes.Approx, autoRes.Exact, autoRes.Approx)
	}
	speedup := float64(dense) / float64(auto)
	b.ReportMetric(speedup, "speedup-vs-dense")
	b.ReportMetric(float64(autoRes.Stats.SparseSolves), "sparse-solves")
	b.ReportMetric(float64(autoRes.Stats.Pivots), "pivots")
	b.ReportMetric(float64(autoRes.Stats.Refactors), "refactors")
	if speedup < 3 {
		b.Errorf("offset LP engine speedup %.2fx < 3x over dense tableau on rank4-dp (dense %v, auto %v)",
			speedup, dense, auto)
	}
}

// BenchmarkOffsetSolverPresolve — the RLP presolver and block
// decomposition on the rank4-dp offsets phase. The gated quantity is
// the §6 refinement round: replication labeling changes only the
// per-edge θ costs between rounds, so the presolved solver re-solves
// dirty blocks warm (and skips clean ones) while the monolithic
// baseline warm-solves the whole RLP every round — that round must be
// ≥ 2× faster with presolve on (measured ~3×). The cold round-0 solve
// also improves (~1.9× from contracted chains and smaller per-block
// bases) and is reported as a metric, un-gated: its ratio isolates
// presolve from the shared RLP-build and moments work, which dilutes
// it below the 2× the whole phase gains over the pre-presolve
// baseline recorded in BENCH_align.json. ns/op times one presolved
// refinement round; scripts/ci.sh bounds its -benchmem allocs/op so
// presolve scratch stays pool-resident. Parallelism is pinned to 1 so
// the ratio compares solver work, not scheduling.
func BenchmarkOffsetSolverPresolve(b *testing.B) {
	g := buildGraph(b, axisHeavySrc)
	as, err := align.AxisStride(g)
	if err != nil {
		b.Fatal(err)
	}
	repl0, err := align.Replicate(g, as, nil)
	if err != nil {
		b.Fatal(err)
	}
	coldOf := func(mode lp.PresolveMode) (*align.OffsetSolver, *align.OffsetResult, time.Duration) {
		best := time.Duration(-1)
		var solver *align.OffsetSolver
		var off *align.OffsetResult
		for t := 0; t < 3; t++ {
			s := align.NewOffsetSolver(g, as, align.OffsetOptions{
				Strategy: align.StrategyFixed, M: 3, Presolve: mode, Parallelism: 1,
			})
			t0 := time.Now()
			r, err := s.Solve(repl0)
			if err != nil {
				b.Fatal(err)
			}
			if d := time.Since(t0); best < 0 || d < best {
				best = d
			}
			solver, off = s, r
		}
		return solver, off, best
	}
	onSolver, onRes, onCold := coldOf(lp.PresolveAuto)
	offSolver, offRes, offCold := coldOf(lp.PresolveOff)
	objTol := 1e-6 * (1 + onRes.Approx)
	if onRes.Exact != offRes.Exact || onRes.Approx-offRes.Approx > objTol ||
		offRes.Approx-onRes.Approx > objTol {
		b.Fatalf("presolve changes the optimum: on exact=%d approx=%g, off exact=%d approx=%g",
			onRes.Exact, onRes.Approx, offRes.Exact, offRes.Approx)
	}
	// Both modes replay the same round-1 labeling (derived from the
	// presolved round 0) so the gated ratio compares identical work;
	// degenerate RLPs could otherwise hand the two modes different
	// mobility patterns.
	mobile := func(p *adg.Port, ax int) bool { return !onRes.Offsets[p.ID][ax].IsConst() }
	repl1, err := align.Replicate(g, as, mobile)
	if err != nil {
		b.Fatal(err)
	}
	repls := [2]*align.ReplResult{repl0, repl1}
	roundOf := func(solver *align.OffsetSolver) time.Duration {
		i := 0
		return minTime(b, 4, 2, func() error {
			i = 1 - i
			_, err := solver.Solve(repls[i])
			return err
		})
	}
	onRound := roundOf(onSolver)
	offRound := roundOf(offSolver)
	b.ResetTimer()
	k := 0
	for i := 0; i < b.N; i++ {
		k = 1 - k
		if _, err := onSolver.Solve(repls[k]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	roundSpeedup := float64(offRound) / float64(onRound)
	b.ReportMetric(roundSpeedup, "round-speedup-vs-nopresolve")
	b.ReportMetric(float64(offCold)/float64(onCold), "cold-speedup-vs-nopresolve")
	b.ReportMetric(float64(onRes.Stats.Blocks), "blocks")
	b.ReportMetric(float64(onRes.Stats.PresolveFixed), "presolve-fixed")
	b.ReportMetric(float64(onRes.Stats.PresolveContracted), "presolve-contracted")
	if roundSpeedup < 2 {
		b.Errorf("presolved refinement round speedup %.2fx < 2x on rank4-dp offsets (presolve on %v, off %v)",
			roundSpeedup, onRound, offRound)
	}
}

// BenchmarkOffsetSolverPresolveFig1 — the presolve size floor: fig1's
// axis RLPs (87 vars + 96 constraints = 183) sit below presolveFloor,
// where E17 measured the reduction as a net ~9% regression (the
// snapshot-and-contract pass saved no pivots), so PresolveAuto now
// declines them and the offsets phase must cost no more than ~2% over
// the forced-off baseline. The floor must not fire the reduction at
// all (zero fixed/contracted/blocks), and larger workloads — rank4-dp
// at 558 — stay above it (gated ≥ 2× by BenchmarkOffsetSolverPresolve).
func BenchmarkOffsetSolverPresolveFig1(b *testing.B) {
	g := buildGraph(b, determinismSources["fig1"])
	as, err := align.AxisStride(g)
	if err != nil {
		b.Fatal(err)
	}
	repl := align.NoReplication(g)
	solveOnce := func(mode lp.PresolveMode) (*align.OffsetResult, time.Duration) {
		t0 := time.Now()
		r, err := align.Offsets(g, as, repl, align.OffsetOptions{
			Strategy: align.StrategyFixed, M: 3, Presolve: mode, Parallelism: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		return r, time.Since(t0)
	}
	// With the floor declining the reduction, on and off do identical
	// work, so the ratio measures pure timing noise. Interleave the
	// tries (on, off, on, off, ...) and keep each mode's minimum, so
	// clock-frequency or GC drift during the measurement hits both modes
	// instead of skewing the ratio; retry the whole measurement a few
	// times before failing, because a genuine floor regression (the ~9%
	// the reduction cost below the floor) is systematic and fails every
	// round, while scheduler jitter on a loaded 1-CPU host is not.
	var onRes, offRes *align.OffsetResult
	var speedup float64
	var onT, offT time.Duration
	for attempt := 0; attempt < 4; attempt++ {
		const tries = 8
		onT, offT = time.Duration(1<<62-1), time.Duration(1<<62-1)
		for i := 0; i < tries; i++ {
			r, d := solveOnce(lp.PresolveAuto)
			onRes = r
			if d < onT {
				onT = d
			}
			r, d = solveOnce(lp.PresolveOff)
			offRes = r
			if d < offT {
				offT = d
			}
		}
		speedup = float64(offT) / float64(onT)
		if speedup >= 0.98 {
			break
		}
	}
	if onRes.Exact != offRes.Exact {
		b.Fatalf("presolve floor changes the optimum: on=%d off=%d", onRes.Exact, offRes.Exact)
	}
	if onRes.Stats.PresolveFixed != 0 || onRes.Stats.PresolveContracted != 0 || onRes.Stats.Blocks != 0 {
		b.Errorf("fig1 RLPs ran the presolver under the size floor: %d fixed, %d contracted, %d blocks",
			onRes.Stats.PresolveFixed, onRes.Stats.PresolveContracted, onRes.Stats.Blocks)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := align.Offsets(g, as, repl, align.OffsetOptions{
			Strategy: align.StrategyFixed, M: 3, Parallelism: 1,
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(speedup, "on-vs-off-speedup")
	if speedup < 0.98 {
		b.Errorf("fig1 offsets with presolve on is %.3fx of presolve off, want >= 0.98x (on %v, off %v)",
			speedup, onT, offT)
	}
}

// BenchmarkAlignCached — the content-addressed pipeline cache: aligning
// an unchanged program again is O(hash + rehydrate). ns/op times the
// cache-hit path; the cold path re-solves into a fresh cache each
// iteration. The hit must be ≥ 10× faster than the cold solve, and the
// driver-level report must record it.
func BenchmarkAlignCached(b *testing.B) {
	g := buildGraph(b, axisHeavySrc)
	popts := align.Options{
		Offset:      align.OffsetOptions{Strategy: align.StrategyFixed, M: 3},
		Replication: true,
	}
	cold := minTime(b, 3, 4, func() error {
		o := popts
		o.Cache = align.NewCache(0)
		_, err := align.Align(g, o)
		return err
	})
	popts.Cache = align.NewCache(0)
	if _, err := align.Align(g, popts); err != nil {
		b.Fatal(err) // pay the one cold solve outside the loop
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := align.Align(g, popts)
		if err != nil {
			b.Fatal(err)
		}
		if !res.CacheHit {
			b.Fatal("re-alignment of unchanged program missed the cache")
		}
	}
	b.StopTimer()
	warm := minTime(b, 3, 4, func() error {
		_, err := align.Align(g, popts)
		return err
	})
	speedup := float64(cold) / float64(warm)
	b.ReportMetric(speedup, "cached-speedup")
	hits, misses := popts.Cache.Counters()
	b.ReportMetric(float64(hits), "cache-hits")
	b.ReportMetric(float64(misses), "cache-misses")
	if speedup < 10 {
		b.Errorf("cached re-alignment speedup %.1fx < 10x (cold %v, cached %v)", speedup, cold, warm)
	}

	// The driver-level report records the hit — served by the source
	// memo tier, which answers warm repeats before the pipeline cache.
	ropts := DefaultOptions()
	ropts.Cache = NewCache(0)
	if _, err := AlignSource(axisHeavySrc, ropts); err != nil {
		b.Fatal(err)
	}
	res, err := AlignSource(axisHeavySrc, ropts)
	if err != nil {
		b.Fatal(err)
	}
	if !strings.Contains(res.Report(), "source memo: hit") {
		b.Errorf("cached result's Report() does not record the memo hit:\n%s", res.Report())
	}
	// With the memo bypassed the warm repeat must still land the
	// pipeline-cache hit it always did.
	ropts.NoSourceMemo = true
	res, err = AlignSource(axisHeavySrc, ropts)
	if err != nil {
		b.Fatal(err)
	}
	if !strings.Contains(res.Report(), "pipeline cache: hit") {
		b.Errorf("memo-bypassed cached result's Report() does not record the cache hit:\n%s", res.Report())
	}
}

// BenchmarkFrontend — the cold front end alone (lex → parse → sema →
// ADG build) on the rank-4 workload: the work a source-memo miss pays
// before solving, and the path the pooled lexer/parser arenas and the
// ADG node/port/edge arena optimize. allocs/op is gated in ci.sh.
func BenchmarkFrontend(b *testing.B) {
	b.ReportAllocs()
	var toks []lang.Token
	for i := 0; i < b.N; i++ {
		var err error
		toks, err = lang.LexInto(axisHeavySrc, toks[:0])
		if err != nil {
			b.Fatal(err)
		}
		prog, err := lang.ParseTokens(toks)
		if err != nil {
			b.Fatal(err)
		}
		info, err := lang.Analyze(prog)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := build.Build(info); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHitPath — the source-keyed memo tier: re-aligning an
// unchanged source is one token-stream hash, a shard probe, and a
// shallow copy, skipping lex/parse/sema/build/canonical-hash entirely.
// ns/op times the memo hit; the gated ratio compares it against the
// parse-and-hash hit path (memo bypassed: full front end + pipeline
// cache hit), which must be ≥ 5× slower.
func BenchmarkHitPath(b *testing.B) {
	opts := DefaultOptions()
	opts.Cache = NewCache(0)
	if _, err := AlignSource(axisHeavySrc, opts); err != nil {
		b.Fatal(err) // one cold solve populates both tiers
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := AlignSource(axisHeavySrc, opts)
		if err != nil {
			b.Fatal(err)
		}
		if !res.MemoHit {
			b.Fatal("warm repeat was not a source-memo hit")
		}
	}
	b.StopTimer()

	hit := minTime(b, 5, 32, func() error {
		_, err := AlignSource(axisHeavySrc, opts)
		return err
	})
	bypass := opts
	bypass.NoSourceMemo = true
	parseHash := minTime(b, 5, 32, func() error {
		_, err := AlignSource(axisHeavySrc, bypass)
		return err
	})
	speedup := float64(parseHash) / float64(hit)
	b.ReportMetric(speedup, "hit-speedup")
	b.ReportMetric(float64(hit.Nanoseconds())/32, "hit-ns")
	if speedup < 5 {
		b.Errorf("source-memo hit speedup %.1fx < 5x over parse-and-hash (hit %v, parse-and-hash %v for 32 reps)",
			speedup, hit, parseHash)
	}
}

// batchWorkload generates n distinct programs drawn from four template
// families (mobile stencil, Figure 1, transpose chain, spread loop) with
// sizes varied per index, so every program hashes to its own cache key.
func batchWorkload(n int) []string {
	srcs := make([]string, n)
	for i := range srcs {
		switch i % 4 {
		case 0:
			srcs[i] = fmt.Sprintf(`
real U(%d), F(%d)
do k = 1, %d
  U(k:k+29) = U(k:k+29) + F(k:k+29)
enddo
`, 80+i, 80+i, 8+i%8)
		case 1:
			m := 40 + i
			srcs[i] = fmt.Sprintf(`
real A(%d,%d), V(%d)
do k = 1, %d
  A(k,1:%d) = A(k,1:%d) + V(k:k+%d)
enddo
`, m, m, 2*m, m, m, m, m-1)
		case 2:
			srcs[i] = fmt.Sprintf(`
real B(%d,%d), C(%d,%d)
B = B + transpose(C)
B = B * 2
C = transpose(B)
`, 64+i, 32+i, 32+i, 64+i)
		default:
			srcs[i] = fmt.Sprintf(`
real T(%d), B(%d,%d)
do k = 1, 8
  T = cos(T)
  B = B + spread(T, 2, %d)
enddo
`, 50+i, 50+i, 100+i, 100+i)
		}
	}
	return srcs
}

// BenchmarkBatchThroughput — the batch alignment engine (E13).
//
// mixed: 32 distinct programs under AlignBatch; programs/sec at one
// worker versus GOMAXPROCS workers. With GOMAXPROCS ≥ 8 the scaling
// must reach ≥ 3× (gated); on narrower boxes the ratio is reported
// only — one core cannot overlap solves (cf. BenchmarkOffsetsParallel).
//
// duplicates: 64 programs with only 4 distinct sources; the sharded
// cache's singleflight must collapse them to exactly 4 pipeline
// executions at every worker count, asserted unconditionally.
func BenchmarkBatchThroughput(b *testing.B) {
	procs := runtime.GOMAXPROCS(0)
	b.Run("mixed", func(b *testing.B) {
		srcs := batchWorkload(32)
		opts := DefaultOptions()
		run := func(workers int) error {
			for _, br := range AlignBatch(srcs, opts, BatchOptions{Workers: workers}) {
				if br.Err != nil {
					return br.Err
				}
			}
			return nil
		}
		seq := minTime(b, 2, 1, func() error { return run(1) })
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := run(procs); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		par := minTime(b, 2, 1, func() error { return run(procs) })
		speedup := float64(seq) / float64(par)
		b.ReportMetric(float64(len(srcs))/par.Seconds(), "programs/sec")
		b.ReportMetric(float64(len(srcs))/seq.Seconds(), "programs/sec-1w")
		b.ReportMetric(speedup, "speedup")
		b.ReportMetric(float64(procs), "gomaxprocs")
		if procs >= 8 && speedup < 3 {
			b.Errorf("batch throughput scaled %.2fx from 1 to %d workers, want >= 3x", speedup, procs)
		}
	})
	b.Run("duplicates", func(b *testing.B) {
		unique := batchWorkload(4)
		srcs := make([]string, 64)
		for i := range srcs {
			srcs[i] = unique[i%len(unique)]
		}
		opts := DefaultOptions()
		var computes, shared int64
		for i := 0; i < b.N; i++ {
			cache := NewCache(len(srcs))
			o := opts
			o.Cache = cache
			for _, br := range AlignBatch(srcs, o, BatchOptions{Workers: 8}) {
				if br.Err != nil {
					b.Fatal(br.Err)
				}
			}
			computes, shared = cache.FlightStats()
			if computes != int64(len(unique)) {
				b.Fatalf("duplicate-heavy batch ran %d pipeline executions, want exactly %d (one per unique program)",
					computes, len(unique))
			}
		}
		b.ReportMetric(float64(computes), "unique-solves")
		b.ReportMetric(float64(shared), "flight-shared")
	})
}

// incrementalEditSrc composes n independent loop components into one
// program; component `edited` gets shift 2+v%4000 in place of the base
// shift 1, so every (edited, v) revision is a distinct one-line edit
// whose other n-1 components hash to the same region keys as the base.
// The 5000-element arrays keep ~4000 distinct shifts in bounds, so
// revision keys do not recur within any plausible benchmark run.
func incrementalEditSrc(n, edited int, v int64) string {
	decls := make([]string, n)
	var body strings.Builder
	for i := 0; i < n; i++ {
		e := int64(1)
		if i == edited {
			e = 2 + v%4000
		}
		decls[i] = fmt.Sprintf("P%d(5000), Q%d(5000)", i, i)
		fmt.Fprintf(&body, "do k = 1, 40\n  P%d(k:k+19) = P%d(k:k+19) + Q%d(k+%d:k+%d)\nenddo\n",
			i, i, i, e, e+19)
	}
	return "real " + strings.Join(decls, ", ") + "\n" + body.String()
}

// BenchmarkIncrementalEdit — the compositional layer (E16): with
// Options.Partition on, a one-line edit to a 16-component program
// re-solves only the edited region and serves the other 15 from the
// per-region content cache. ns/op times the 1-edit re-solve against a
// warm cache; the gate requires it ≥ 4× faster than a full cold
// re-solve of the same revision (both paths pay parse+analyze+build, so
// the ratio understates the solver-only saving; the RLP presolver cut
// the cold offsets phase ~2.5×, which narrowed this ratio from the
// 7–9× it gated at 5× against). Every revision is a
// never-before-seen variant: the whole-program key always misses, which
// is exactly the edit-stream shape (see cmd/alignc -editstream).
func BenchmarkIncrementalEdit(b *testing.B) {
	const comps = 16
	opts := DefaultOptions()
	opts.Partition = true

	rev := int64(0)
	next := func() string {
		rev++
		return incrementalEditSrc(comps, int(rev)%comps, rev)
	}

	// Cold: each revision solved from scratch into a fresh cache.
	cold := minTime(b, 3, 2, func() error {
		o := opts
		o.Cache = NewCache(0)
		res, err := AlignSource(next(), o)
		if err == nil && res.Align.Regions != comps {
			err = fmt.Errorf("cold solve split into %d regions, want %d", res.Align.Regions, comps)
		}
		return err
	})

	// Warm: prime the shared cache with the base program, then solve a
	// fresh one-line revision per call. The first post-prime edit is
	// deterministic (the cache holds exactly the base entries): it must
	// hit all comps-1 untouched regions and miss the whole-program key.
	opts.Cache = NewCache(1024)
	if _, err := AlignSource(incrementalEditSrc(comps, -1, 0), opts); err != nil {
		b.Fatal(err)
	}
	first, err := AlignSource(next(), opts)
	if err != nil {
		b.Fatal(err)
	}
	if first.Align.CacheHit || first.Align.RegionHits != comps-1 {
		b.Fatalf("first edit after priming: CacheHit=%v RegionHits=%d, want false and %d",
			first.Align.CacheHit, first.Align.RegionHits, comps-1)
	}
	var hits, edits int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := AlignSource(next(), opts)
		if err != nil {
			b.Fatal(err)
		}
		hits += int64(res.Align.RegionHits)
		edits++
	}
	b.StopTimer()
	warm := minTime(b, 3, 2, func() error {
		res, err := AlignSource(next(), opts)
		if err == nil {
			hits += int64(res.Align.RegionHits)
			edits++
		}
		return err
	})

	speedup := float64(cold) / float64(warm)
	b.ReportMetric(speedup, "edit-speedup")
	b.ReportMetric(float64(hits)/float64(edits*comps), "region-hit-rate")
	b.ReportMetric(cold.Seconds()*1e3/2, "cold-ms")
	b.ReportMetric(warm.Seconds()*1e3/2, "edit-ms")
	if speedup < 4 {
		b.Errorf("1-edit re-solve speedup %.2fx < 4x over full cold solve (cold %v, edit %v)",
			speedup, cold, warm)
	}
}
