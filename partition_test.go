package repro

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// componentSrc emits one self-contained computation over arrays whose
// names carry the suffix i, so any number of components compose into
// one program with pairwise disjoint ADG regions. v varies the
// constants in the body: two components with different v have different
// region content keys (the "edit" knob of the incremental benchmarks).
func componentSrc(i int, v int64, kind int) (decls, body string) {
	switch kind % 4 {
	case 0: // straight-line sections
		lo := 2 + v%10
		return fmt.Sprintf("A%d(100), B%d(100)", i, i),
			fmt.Sprintf("A%d(1:40) = A%d(1:40) + B%d(%d:%d)\n", i, i, i, lo, lo+39)
	case 1: // loop with mobile sections
		e := 1 + v%5
		return fmt.Sprintf("C%d(120), D%d(120)", i, i),
			fmt.Sprintf("do k = 1, 40\n  C%d(k:k+19) = C%d(k:k+19) + D%d(k+%d:k+%d)\nenddo\n", i, i, i, e, e+19)
	case 2: // transpose pair
		return fmt.Sprintf("M%d(12,16), N%d(16,12)", i, i),
			fmt.Sprintf("M%d = M%d + transpose(N%d)\nM%d = M%d * %d\n", i, i, i, i, i, 2+v%7)
	default: // spread broadcast
		return fmt.Sprintf("T%d(40), S%d(40,30)", i, i),
			fmt.Sprintf("T%d = cos(T%d)\nS%d = S%d + spread(T%d, 2, 30)\n", i, i, i, i, i)
	}
}

// multiComponentSrc composes k independent components into one program.
// All declarations go on the single leading "real" statement the
// language requires.
func multiComponentSrc(k int, pick func(i int) (v int64, kind int)) string {
	decls := make([]string, k)
	var body strings.Builder
	for i := 0; i < k; i++ {
		v, kind := pick(i)
		d, b := componentSrc(i, v, kind)
		decls[i] = d
		body.WriteString(b)
	}
	return "real " + strings.Join(decls, ", ") + "\n" + body.String()
}

// TestPartitionDeterminism is the acceptance gate of the compositional
// layer: reports are byte-identical (wall-time lines excluded, as in
// every determinism test) with Options.Partition on and off, at
// Parallelism 1, 2, and 8, cold and warm — the decomposition is
// structural, the toggle only changes caching and the parallelism
// grain.
func TestPartitionDeterminism(t *testing.T) {
	sources := map[string]string{
		"two": multiComponentSrc(2, func(i int) (int64, int) { return int64(i), i }),
		"ten": multiComponentSrc(10, func(i int) (int64, int) { return int64(3 * i), i }),
	}
	for name, src := range sources {
		t.Run(name, func(t *testing.T) {
			var base string
			for _, partition := range []bool{false, true} {
				for _, par := range []int{1, 2, 8} {
					opts := DefaultOptions()
					opts.Parallelism = par
					opts.Partition = partition
					opts.Cache = NewCache(64)
					cold, err := AlignSource(src, opts)
					if err != nil {
						t.Fatalf("partition=%v par=%d: %v", partition, par, err)
					}
					if name == "ten" && cold.Align.Regions < 8 {
						t.Fatalf("composed program split into %d regions, want >= 8", cold.Align.Regions)
					}
					rep := normalizeBatchReport(cold.Report())
					if base == "" {
						base = rep
					} else if rep != base {
						t.Errorf("partition=%v par=%d: report differs from partition=false par=1:\n--- base\n%s\n--- got\n%s",
							partition, par, base, rep)
					}
					// Warm repeat against the same cache: a hit — normally
					// from the source memo tier in front of the pipeline,
					// or from the whole-program pipeline key when the memo
					// is bypassed — must render the same normalized report
					// as the cold solve.
					warm, err := AlignSource(src, opts)
					if err != nil {
						t.Fatalf("partition=%v par=%d warm: %v", partition, par, err)
					}
					if !warm.MemoHit && !warm.Align.CacheHit {
						t.Errorf("partition=%v par=%d: warm repeat missed both cache tiers", partition, par)
					}
					if rep := normalizeBatchReport(warm.Report()); rep != base {
						t.Errorf("partition=%v par=%d: warm report differs:\n--- base\n%s\n--- warm\n%s",
							partition, par, base, rep)
					}
				}
			}
		})
	}
}

// TestPartitionTestdataEquivalence runs every corpus program through
// both sides of the toggle: the testdata programs are connected
// (single-region), so this pins that the partition layer leaves the
// monolithic path byte-for-byte alone.
func TestPartitionTestdataEquivalence(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "batch", "*.dp"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no corpus programs: %v", err)
	}
	for _, f := range files {
		f := f
		t.Run(filepath.Base(f), func(t *testing.T) {
			raw, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			src := string(raw)
			var base string
			for _, partition := range []bool{false, true} {
				opts := DefaultOptions()
				opts.Parallelism = 8
				opts.Partition = partition
				opts.Cache = NewCache(16)
				res, err := AlignSource(src, opts)
				if err != nil {
					t.Fatalf("partition=%v: %v", partition, err)
				}
				rep := normalizeBatchReport(res.Report())
				if base == "" {
					base = rep
				} else if rep != base {
					t.Errorf("report differs across the Partition toggle:\n--- off\n%s\n--- on\n%s", base, rep)
				}
			}
		})
	}
}

// TestPartitionPropertyCompositions is the randomized half of the
// property suite: seeded random multi-component compositions solve
// byte-identically (normalized) with partitioning on and off at
// parallelism 1, 2, and 8.
func TestPartitionPropertyCompositions(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	trials := 10
	if testing.Short() {
		trials = 3
	}
	for trial := 0; trial < trials; trial++ {
		k := 2 + rng.Intn(5)
		src := multiComponentSrc(k, func(int) (int64, int) {
			return int64(rng.Intn(32)), rng.Intn(4)
		})
		var base string
		for _, partition := range []bool{false, true} {
			for _, par := range []int{1, 2, 8} {
				opts := DefaultOptions()
				opts.Parallelism = par
				opts.Partition = partition
				opts.Cache = NewCache(64)
				res, err := AlignSource(src, opts)
				if err != nil {
					t.Fatalf("trial %d partition=%v par=%d: %v\nprogram:\n%s", trial, partition, par, err, src)
				}
				rep := normalizeBatchReport(res.Report())
				if base == "" {
					base = rep
				} else if rep != base {
					t.Fatalf("trial %d partition=%v par=%d: report diverged\nprogram:\n%s\n--- base\n%s\n--- got\n%s",
						trial, partition, par, src, base, rep)
				}
			}
		}
	}
}
