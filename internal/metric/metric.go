// Package metric implements the distance functions of the paper's cost
// model (§2.3). A position is an encoding of a legal alignment; the
// distance d(p, q) is the per-element cost of changing an array's
// position from p to q. Two metrics are used: the discrete metric for
// axis and stride alignment (any change requires general communication)
// and the grid (L1 / Manhattan) metric for offset alignment. The grid
// metric is separable, which is what lets offsets be solved one template
// axis at a time.
package metric

// Metric measures the per-element realignment cost between two positions,
// each given as a vector of template coordinates.
type Metric interface {
	// Distance returns d(p, q) ≥ 0. Implementations must satisfy the
	// metric axioms: identity, symmetry, and the triangle inequality.
	Distance(p, q []int64) int64
	// Name identifies the metric in reports.
	Name() string
}

// Discrete is the discrete metric: d(p,q) = 0 if p = q, else 1. It models
// the cost of axis and stride changes, abstracting general communication
// away from routing and congestion details.
type Discrete struct{}

// Distance implements Metric.
func (Discrete) Distance(p, q []int64) int64 {
	if len(p) != len(q) {
		return 1
	}
	for i := range p {
		if p[i] != q[i] {
			return 1
		}
	}
	return 0
}

// Name implements Metric.
func (Discrete) Name() string { return "discrete" }

// Grid is the grid metric: d(p,q) = Σ |p_i - q_i| (L1). It models offset
// realignment as nearest-neighbor shift distance on the template.
type Grid struct{}

// Distance implements Metric.
func (Grid) Distance(p, q []int64) int64 {
	if len(p) != len(q) {
		panic("metric: grid distance between positions of different rank")
	}
	var d int64
	for i := range p {
		d += abs(p[i] - q[i])
	}
	return d
}

// Name implements Metric.
func (Grid) Name() string { return "grid" }

// Abs1 returns the one-dimensional grid distance |p - q|; offset alignment
// uses this per-axis form throughout (separability).
func Abs1(p, q int64) int64 { return abs(p - q) }

func abs(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}
