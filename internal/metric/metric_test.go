package metric

import (
	"testing"
	"testing/quick"
)

func TestDiscreteDistance(t *testing.T) {
	d := Discrete{}
	if d.Distance([]int64{1, 2}, []int64{1, 2}) != 0 {
		t.Error("equal positions should be distance 0")
	}
	if d.Distance([]int64{1, 2}, []int64{1, 3}) != 1 {
		t.Error("unequal positions should be distance 1")
	}
	if d.Distance([]int64{1}, []int64{1, 2}) != 1 {
		t.Error("rank mismatch should be distance 1")
	}
}

func TestGridDistance(t *testing.T) {
	g := Grid{}
	if got := g.Distance([]int64{0, 0}, []int64{3, 4}); got != 7 {
		t.Errorf("L1 distance = %d, want 7", got)
	}
	if got := g.Distance([]int64{-2}, []int64{2}); got != 4 {
		t.Errorf("L1 distance = %d, want 4", got)
	}
}

// Property: metric axioms for both metrics — identity, symmetry,
// triangle inequality (§2.3 requires positions to form a metric space).
func TestMetricAxioms(t *testing.T) {
	for _, m := range []Metric{Discrete{}, Grid{}} {
		f := func(a, b, c [3]int8) bool {
			p := []int64{int64(a[0]), int64(a[1]), int64(a[2])}
			q := []int64{int64(b[0]), int64(b[1]), int64(b[2])}
			r := []int64{int64(c[0]), int64(c[1]), int64(c[2])}
			if m.Distance(p, p) != 0 {
				return false
			}
			if m.Distance(p, q) != m.Distance(q, p) {
				return false
			}
			if m.Distance(p, r) > m.Distance(p, q)+m.Distance(q, r) {
				return false
			}
			return m.Distance(p, q) >= 0
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%s: %v", m.Name(), err)
		}
	}
}

// Property: the grid metric is separable — the distance is the sum of
// per-axis distances (the property §2.3 uses to solve offsets per axis).
func TestGridSeparability(t *testing.T) {
	g := Grid{}
	f := func(a, b [4]int8) bool {
		p := make([]int64, 4)
		q := make([]int64, 4)
		var sum int64
		for i := 0; i < 4; i++ {
			p[i], q[i] = int64(a[i]), int64(b[i])
			sum += Abs1(p[i], q[i])
		}
		return g.Distance(p, q) == sum
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
