// Package interp is a sequential reference interpreter for the mini
// data-parallel language. It executes programs with real array values,
// giving the ground truth the machine simulator's communication replay is
// validated against: alignment must never change program semantics, so
// the interpreter is alignment-oblivious.
package interp

import (
	"fmt"
	"math"

	"repro/internal/lang"
)

// Array is a dense rank-d array with Fortran-style 1-based indexing and
// column-agnostic row-major storage.
type Array struct {
	Dims []int64
	Data []float64
}

// NewArray allocates a zero array.
func NewArray(dims ...int64) *Array {
	n := int64(1)
	for _, d := range dims {
		n *= d
	}
	return &Array{Dims: append([]int64{}, dims...), Data: make([]float64, n)}
}

// Clone deep-copies the array.
func (a *Array) Clone() *Array {
	cp := &Array{Dims: append([]int64{}, a.Dims...), Data: append([]float64{}, a.Data...)}
	return cp
}

// Rank returns the number of dimensions.
func (a *Array) Rank() int { return len(a.Dims) }

// Size returns the element count.
func (a *Array) Size() int64 { return int64(len(a.Data)) }

// offset computes the linear offset of a 1-based index vector.
func (a *Array) offset(idx []int64) int64 {
	off := int64(0)
	for d, i := range idx {
		if i < 1 || i > a.Dims[d] {
			panic(fmt.Sprintf("interp: index %d out of bounds 1..%d in dim %d", i, a.Dims[d], d+1))
		}
		off = off*a.Dims[d] + (i - 1)
	}
	return off
}

// At returns the element at a 1-based index vector.
func (a *Array) At(idx ...int64) float64 { return a.Data[a.offset(idx)] }

// Set stores the element at a 1-based index vector.
func (a *Array) Set(v float64, idx ...int64) { a.Data[a.offset(idx)] = v }

// Machine state: array name → value.
type state struct {
	arrays map[string]*Array
	livs   map[string]int64
	info   *lang.Info
}

// Run executes the program from zero-initialized arrays and returns the
// final array values.
func Run(info *lang.Info) (map[string]*Array, error) {
	return RunFrom(info, nil)
}

// RunFrom executes the program from the given initial values (missing
// arrays are zero-initialized). Initial arrays are cloned, not mutated.
func RunFrom(info *lang.Info, init map[string]*Array) (map[string]*Array, error) {
	st := &state{arrays: map[string]*Array{}, livs: map[string]int64{}, info: info}
	for _, d := range info.Program.Decls {
		if a, ok := init[d.Name]; ok {
			if len(a.Dims) != len(d.Dims) {
				return nil, fmt.Errorf("interp: initial value for %q has rank %d, want %d", d.Name, len(a.Dims), len(d.Dims))
			}
			st.arrays[d.Name] = a.Clone()
		} else {
			st.arrays[d.Name] = NewArray(d.Dims...)
		}
	}
	if err := st.stmts(info.Program.Stmts); err != nil {
		return nil, err
	}
	return st.arrays, nil
}

func (st *state) stmts(ss []lang.Stmt) error {
	for _, s := range ss {
		if err := st.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (st *state) stmt(s lang.Stmt) error {
	switch stmt := s.(type) {
	case *lang.Assign:
		return st.assign(stmt)
	case *lang.Do:
		lo, err := st.scalarInt(stmt.Lo)
		if err != nil {
			return err
		}
		hi, err := st.scalarInt(stmt.Hi)
		if err != nil {
			return err
		}
		step := int64(1)
		if stmt.Step != nil {
			if step, err = st.scalarInt(stmt.Step); err != nil {
				return err
			}
			if step == 0 {
				return fmt.Errorf("interp: zero loop step")
			}
		}
		for k := lo; (step > 0 && k <= hi) || (step < 0 && k >= hi); k += step {
			st.livs[stmt.Var] = k
			if err := st.stmts(stmt.Body); err != nil {
				return err
			}
		}
		delete(st.livs, stmt.Var)
		return nil
	case *lang.If:
		cond, err := st.eval(stmt.Cond)
		if err != nil {
			return err
		}
		truth := false
		if cond.Rank() == 0 {
			truth = cond.Data[0] != 0
		} else {
			// Array condition: true if any element nonzero.
			for _, v := range cond.Data {
				if v != 0 {
					truth = true
					break
				}
			}
		}
		if truth {
			return st.stmts(stmt.Then)
		}
		return st.stmts(stmt.Else)
	}
	return fmt.Errorf("interp: unknown statement %T", s)
}

// scalar wraps a float as a rank-0 array.
func scalar(v float64) *Array {
	return &Array{Dims: nil, Data: []float64{v}}
}

func (st *state) scalarInt(e lang.Expr) (int64, error) {
	a, err := st.eval(e)
	if err != nil {
		return 0, err
	}
	if a.Rank() != 0 {
		return 0, fmt.Errorf("interp: expected scalar")
	}
	return int64(a.Data[0]), nil
}

func (st *state) assign(a *lang.Assign) error {
	rhs, err := st.eval(a.RHS)
	if err != nil {
		return err
	}
	dst := st.arrays[a.LHS.Name]
	if dst == nil {
		return fmt.Errorf("interp: assignment to undeclared %q", a.LHS.Name)
	}
	if len(a.LHS.Subs) == 0 {
		// Whole-array assignment (with scalar fill).
		if rhs.Rank() == 0 {
			for i := range dst.Data {
				dst.Data[i] = rhs.Data[0]
			}
			return nil
		}
		if rhs.Size() != dst.Size() {
			return fmt.Errorf("interp: size mismatch assigning %q: %d vs %d", a.LHS.Name, rhs.Size(), dst.Size())
		}
		copy(dst.Data, rhs.Data)
		return nil
	}
	// Section assignment.
	idxSets, err := st.sectionIndices(a.LHS, dst)
	if err != nil {
		return err
	}
	// Enumerate the Cartesian product of index sets; range dims advance
	// through the RHS in order.
	count := int64(1)
	for _, s := range idxSets {
		if len(s.values) > 0 {
			count *= int64(len(s.values))
		}
	}
	if rhs.Rank() != 0 && rhs.Size() != count {
		return fmt.Errorf("interp: section size %d != rhs size %d", count, rhs.Size())
	}
	pos := int64(0)
	idx := make([]int64, len(idxSets))
	var rec func(d int) error
	rec = func(d int) error {
		if d == len(idxSets) {
			v := rhs.Data[0]
			if rhs.Rank() != 0 {
				v = rhs.Data[pos]
			}
			dst.Set(v, idx...)
			pos++
			return nil
		}
		s := idxSets[d]
		if len(s.values) == 0 {
			idx[d] = s.single
			return rec(d + 1)
		}
		for _, v := range s.values {
			idx[d] = v
			if err := rec(d + 1); err != nil {
				return err
			}
		}
		return nil
	}
	return rec(0)
}

// idxSet is one dimension's index set: either a single index or a list.
type idxSet struct {
	single int64
	values []int64
}

func (st *state) sectionIndices(ref *lang.ArrayRef, arr *Array) ([]idxSet, error) {
	sets := make([]idxSet, len(ref.Subs))
	for d, sub := range ref.Subs {
		if !sub.IsRange {
			// Vector subscript?
			if vr, ok := sub.Index.(*lang.ArrayRef); ok && len(vr.Subs) == 0 {
				if tbl, exists := st.arrays[vr.Name]; exists && tbl.Rank() == 1 {
					vals := make([]int64, len(tbl.Data))
					for i, v := range tbl.Data {
						vals[i] = int64(v)
					}
					sets[d] = idxSet{values: vals}
					continue
				}
			}
			v, err := st.scalarInt(sub.Index)
			if err != nil {
				return nil, err
			}
			sets[d] = idxSet{single: v}
			continue
		}
		lo, hi, step := int64(1), arr.Dims[d], int64(1)
		var err error
		if sub.Lo != nil {
			if lo, err = st.scalarInt(sub.Lo); err != nil {
				return nil, err
			}
		}
		if sub.Hi != nil {
			if hi, err = st.scalarInt(sub.Hi); err != nil {
				return nil, err
			}
		}
		if sub.Step != nil {
			if step, err = st.scalarInt(sub.Step); err != nil {
				return nil, err
			}
		}
		var vals []int64
		for i := lo; (step > 0 && i <= hi) || (step < 0 && i >= hi); i += step {
			vals = append(vals, i)
		}
		sets[d] = idxSet{values: vals}
	}
	return sets, nil
}

func (st *state) eval(e lang.Expr) (*Array, error) {
	switch ex := e.(type) {
	case *lang.Num:
		return scalar(float64(ex.Val)), nil
	case *lang.ArrayRef:
		return st.evalRef(ex)
	case *lang.BinOp:
		l, err := st.eval(ex.L)
		if err != nil {
			return nil, err
		}
		r, err := st.eval(ex.R)
		if err != nil {
			return nil, err
		}
		return elementwise(ex.Op, l, r)
	case *lang.Call:
		return st.evalCall(ex)
	}
	return nil, fmt.Errorf("interp: unknown expression %T", e)
}

func (st *state) evalRef(ref *lang.ArrayRef) (*Array, error) {
	if v, ok := st.livs[ref.Name]; ok {
		return scalar(float64(v)), nil
	}
	arr := st.arrays[ref.Name]
	if arr == nil {
		return nil, fmt.Errorf("interp: unknown array %q", ref.Name)
	}
	if len(ref.Subs) == 0 {
		return arr.Clone(), nil
	}
	sets, err := st.sectionIndices(ref, arr)
	if err != nil {
		return nil, err
	}
	var dims []int64
	for _, s := range sets {
		if len(s.values) > 0 {
			dims = append(dims, int64(len(s.values)))
		}
	}
	out := NewArray(dims...)
	pos := 0
	idx := make([]int64, len(sets))
	var rec func(d int)
	rec = func(d int) {
		if d == len(sets) {
			out.Data[pos] = arr.At(idx...)
			pos++
			return
		}
		s := sets[d]
		if len(s.values) == 0 {
			idx[d] = s.single
			rec(d + 1)
			return
		}
		for _, v := range s.values {
			idx[d] = v
			rec(d + 1)
		}
	}
	rec(0)
	return out, nil
}

func elementwise(op string, l, r *Array) (*Array, error) {
	apply := func(a, b float64) (float64, error) {
		switch op {
		case "+":
			return a + b, nil
		case "-":
			return a - b, nil
		case "*":
			return a * b, nil
		case "/":
			return a / b, nil
		case "<":
			return b2f(a < b), nil
		case ">":
			return b2f(a > b), nil
		case "<=":
			return b2f(a <= b), nil
		case ">=":
			return b2f(a >= b), nil
		case "==":
			return b2f(a == b), nil
		case "/=":
			return b2f(a != b), nil
		}
		return 0, fmt.Errorf("interp: unknown operator %q", op)
	}
	switch {
	case l.Rank() == 0 && r.Rank() == 0:
		v, err := apply(l.Data[0], r.Data[0])
		return scalar(v), err
	case l.Rank() == 0:
		out := r.Clone()
		for i := range out.Data {
			v, err := apply(l.Data[0], r.Data[i])
			if err != nil {
				return nil, err
			}
			out.Data[i] = v
		}
		return out, nil
	case r.Rank() == 0:
		out := l.Clone()
		for i := range out.Data {
			v, err := apply(l.Data[i], r.Data[0])
			if err != nil {
				return nil, err
			}
			out.Data[i] = v
		}
		return out, nil
	default:
		if l.Size() != r.Size() {
			return nil, fmt.Errorf("interp: conformance error: %v vs %v", l.Dims, r.Dims)
		}
		out := l.Clone()
		for i := range out.Data {
			v, err := apply(l.Data[i], r.Data[i])
			if err != nil {
				return nil, err
			}
			out.Data[i] = v
		}
		return out, nil
	}
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func (st *state) evalCall(c *lang.Call) (*Array, error) {
	switch c.Name {
	case "transpose":
		a, err := st.eval(c.Args[0])
		if err != nil {
			return nil, err
		}
		if a.Rank() != 2 {
			return nil, fmt.Errorf("interp: transpose of rank-%d array", a.Rank())
		}
		out := NewArray(a.Dims[1], a.Dims[0])
		for i := int64(1); i <= a.Dims[0]; i++ {
			for j := int64(1); j <= a.Dims[1]; j++ {
				out.Set(a.At(i, j), j, i)
			}
		}
		return out, nil
	case "spread":
		a, err := st.eval(c.Args[0])
		if err != nil {
			return nil, err
		}
		dim, err := st.scalarInt(c.Args[1])
		if err != nil {
			return nil, err
		}
		n, err := st.scalarInt(c.Args[2])
		if err != nil {
			return nil, err
		}
		dims := make([]int64, 0, a.Rank()+1)
		dims = append(dims, a.Dims[:dim-1]...)
		dims = append(dims, n)
		dims = append(dims, a.Dims[dim-1:]...)
		out := NewArray(dims...)
		idx := make([]int64, len(dims))
		srcIdx := make([]int64, a.Rank())
		var rec func(d int)
		rec = func(d int) {
			if d == len(dims) {
				k := 0
				for dd := range dims {
					if dd == int(dim)-1 {
						continue
					}
					srcIdx[k] = idx[dd]
					k++
				}
				out.Set(a.At(srcIdx...), idx...)
				return
			}
			for i := int64(1); i <= dims[d]; i++ {
				idx[d] = i
				rec(d + 1)
			}
		}
		rec(0)
		return out, nil
	case "sum":
		a, err := st.eval(c.Args[0])
		if err != nil {
			return nil, err
		}
		if len(c.Args) == 1 {
			s := 0.0
			for _, v := range a.Data {
				s += v
			}
			return scalar(s), nil
		}
		dim, err := st.scalarInt(c.Args[1])
		if err != nil {
			return nil, err
		}
		var dims []int64
		dims = append(dims, a.Dims[:dim-1]...)
		dims = append(dims, a.Dims[dim:]...)
		out := NewArray(dims...)
		idx := make([]int64, a.Rank())
		outIdx := make([]int64, len(dims))
		var rec func(d int)
		rec = func(d int) {
			if d == a.Rank() {
				k := 0
				for dd := range idx {
					if dd == int(dim)-1 {
						continue
					}
					outIdx[k] = idx[dd]
					k++
				}
				out.Set(out.At(outIdx...)+a.At(idx...), outIdx...)
				return
			}
			for i := int64(1); i <= a.Dims[d]; i++ {
				idx[d] = i
				rec(d + 1)
			}
		}
		rec(0)
		return out, nil
	case "cshift":
		a, err := st.eval(c.Args[0])
		if err != nil {
			return nil, err
		}
		sh, err := st.scalarInt(c.Args[1])
		if err != nil {
			return nil, err
		}
		if a.Rank() != 1 {
			return nil, fmt.Errorf("interp: cshift supports rank-1 arrays")
		}
		n := a.Dims[0]
		out := NewArray(n)
		for i := int64(0); i < n; i++ {
			out.Data[i] = a.Data[((i+sh)%n+n)%n]
		}
		return out, nil
	case "min", "max":
		l, err := st.eval(c.Args[0])
		if err != nil {
			return nil, err
		}
		r, err := st.eval(c.Args[1])
		if err != nil {
			return nil, err
		}
		op := math.Min
		if c.Name == "max" {
			op = math.Max
		}
		return zipWith(l, r, op)
	default:
		a, err := st.eval(c.Args[0])
		if err != nil {
			return nil, err
		}
		var f func(float64) float64
		switch c.Name {
		case "cos":
			f = math.Cos
		case "sin":
			f = math.Sin
		case "exp":
			f = math.Exp
		case "log":
			f = math.Log
		case "sqrt":
			f = math.Sqrt
		case "abs":
			f = math.Abs
		default:
			return nil, fmt.Errorf("interp: unknown intrinsic %q", c.Name)
		}
		out := a.Clone()
		for i := range out.Data {
			out.Data[i] = f(out.Data[i])
		}
		return out, nil
	}
}

func zipWith(l, r *Array, f func(a, b float64) float64) (*Array, error) {
	switch {
	case l.Rank() == 0:
		out := r.Clone()
		for i := range out.Data {
			out.Data[i] = f(l.Data[0], out.Data[i])
		}
		return out, nil
	case r.Rank() == 0:
		out := l.Clone()
		for i := range out.Data {
			out.Data[i] = f(out.Data[i], r.Data[0])
		}
		return out, nil
	}
	if l.Size() != r.Size() {
		return nil, fmt.Errorf("interp: conformance error in min/max")
	}
	out := l.Clone()
	for i := range out.Data {
		out.Data[i] = f(out.Data[i], r.Data[i])
	}
	return out, nil
}
