package interp

import (
	"math"
	"testing"

	"repro/internal/lang"
)

func run(t *testing.T, src string, init map[string]*Array) map[string]*Array {
	t.Helper()
	info, err := lang.Analyze(lang.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	out, err := RunFrom(info, init)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestScalarFill(t *testing.T) {
	out := run(t, "real A(5)\nA = 7\n", nil)
	for i := int64(1); i <= 5; i++ {
		if out["a"].At(i) != 7 {
			t.Errorf("A(%d) = %v", i, out["a"].At(i))
		}
	}
}

func TestSectionAssignAndRead(t *testing.T) {
	out := run(t, `
real A(10), B(10)
A = 1
B(2:6) = A(1:5) + 1
`, nil)
	b := out["b"]
	for i := int64(2); i <= 6; i++ {
		if b.At(i) != 2 {
			t.Errorf("B(%d) = %v, want 2", i, b.At(i))
		}
	}
	if b.At(1) != 0 || b.At(7) != 0 {
		t.Error("untouched elements modified")
	}
}

func TestStridedSection(t *testing.T) {
	init := map[string]*Array{"a": NewArray(10)}
	for i := int64(1); i <= 10; i++ {
		init["a"].Set(float64(i), i)
	}
	out := run(t, "real A(10), B(5)\nB = A(2:10:2)\n", init)
	want := []float64{2, 4, 6, 8, 10}
	for i, w := range want {
		if got := out["b"].At(int64(i) + 1); got != w {
			t.Errorf("B(%d) = %v, want %v", i+1, got, w)
		}
	}
}

func TestDoLoopSum(t *testing.T) {
	out := run(t, `
real S(1)
do k = 1, 10
  S(1) = S(1) + k
enddo
`, nil)
	if out["s"].At(1) != 55 {
		t.Errorf("sum = %v, want 55", out["s"].At(1))
	}
}

func TestFig1Semantics(t *testing.T) {
	// A(k,1:100) += V(k:k+99): verify one representative element.
	init := map[string]*Array{"v": NewArray(200)}
	for i := int64(1); i <= 200; i++ {
		init["v"].Set(float64(i), i)
	}
	out := run(t, `
real A(100,100), V(200)
do k = 1, 100
  A(k,1:100) = A(k,1:100) + V(k:k+99)
enddo
`, init)
	// A(k,j) = V(k+j-1).
	for _, kj := range [][2]int64{{1, 1}, {50, 3}, {100, 100}} {
		k, j := kj[0], kj[1]
		if got := out["a"].At(k, j); got != float64(k+j-1) {
			t.Errorf("A(%d,%d) = %v, want %d", k, j, got, k+j-1)
		}
	}
}

func TestTranspose(t *testing.T) {
	init := map[string]*Array{"c": NewArray(2, 3)}
	v := 1.0
	for i := int64(1); i <= 2; i++ {
		for j := int64(1); j <= 3; j++ {
			init["c"].Set(v, i, j)
			v++
		}
	}
	out := run(t, "real B(3,2), C(2,3)\nB = transpose(C)\n", init)
	for i := int64(1); i <= 2; i++ {
		for j := int64(1); j <= 3; j++ {
			if out["b"].At(j, i) != init["c"].At(i, j) {
				t.Errorf("B(%d,%d) != C(%d,%d)", j, i, i, j)
			}
		}
	}
}

func TestSpreadSum(t *testing.T) {
	init := map[string]*Array{"v": NewArray(3)}
	init["v"].Set(1, 1)
	init["v"].Set(2, 2)
	init["v"].Set(3, 3)
	out := run(t, `
real B(3,4), V(3), W(4)
B = spread(V, 2, 4)
W = sum(B, 1)
`, init)
	for j := int64(1); j <= 4; j++ {
		for i := int64(1); i <= 3; i++ {
			if out["b"].At(i, j) != float64(i) {
				t.Errorf("B(%d,%d) = %v", i, j, out["b"].At(i, j))
			}
		}
		if out["w"].At(j) != 6 {
			t.Errorf("W(%d) = %v, want 6", j, out["w"].At(j))
		}
	}
}

func TestSpreadDim1(t *testing.T) {
	init := map[string]*Array{"v": NewArray(2)}
	init["v"].Set(5, 1)
	init["v"].Set(9, 2)
	out := run(t, "real B(3,2), V(2)\nB = spread(V, 1, 3)\n", init)
	for i := int64(1); i <= 3; i++ {
		if out["b"].At(i, 1) != 5 || out["b"].At(i, 2) != 9 {
			t.Errorf("row %d = %v %v", i, out["b"].At(i, 1), out["b"].At(i, 2))
		}
	}
}

func TestIfElse(t *testing.T) {
	out := run(t, `
real A(3)
if (1 > 2) then
  A = 1
else
  A = 2
endif
`, nil)
	if out["a"].At(1) != 2 {
		t.Errorf("A(1) = %v, want 2 (else arm)", out["a"].At(1))
	}
}

func TestVectorSubscript(t *testing.T) {
	init := map[string]*Array{"a": NewArray(5), "idx": NewArray(3)}
	for i := int64(1); i <= 5; i++ {
		init["a"].Set(float64(10*i), i)
	}
	init["idx"].Set(3, 1)
	init["idx"].Set(1, 2)
	init["idx"].Set(5, 3)
	out := run(t, "real A(5), T(3), IDX(3)\nT = A(IDX)\n", init)
	want := []float64{30, 10, 50}
	for i, w := range want {
		if got := out["t"].At(int64(i) + 1); got != w {
			t.Errorf("T(%d) = %v, want %v", i+1, got, w)
		}
	}
}

func TestIntrinsicCos(t *testing.T) {
	init := map[string]*Array{"t": NewArray(2)}
	init["t"].Set(0, 1)
	init["t"].Set(math.Pi, 2)
	out := run(t, "real T(2)\nT = cos(T)\n", init)
	if math.Abs(out["t"].At(1)-1) > 1e-12 || math.Abs(out["t"].At(2)+1) > 1e-12 {
		t.Errorf("cos wrong: %v %v", out["t"].At(1), out["t"].At(2))
	}
}

func TestMobileStrideSemantics(t *testing.T) {
	// Example 5's strided mobile sections execute correctly.
	init := map[string]*Array{"a": NewArray(1000)}
	for i := int64(1); i <= 1000; i++ {
		init["a"].Set(1, i)
	}
	out := run(t, `
real A(1000), B(1000), V(20)
do k = 1, 50
  V = V + A(1:20*k:k)
  B(1:20*k:k) = V
enddo
`, init)
	// After 50 iterations every V element accumulated 50 ones.
	// B's final strided write (k=50) stored V at positions 1, 51, ...
	if got := out["b"].At(1); got != 50 {
		t.Errorf("B(1) = %v, want 50", got)
	}
	if got := out["b"].At(51); got != 50 {
		t.Errorf("B(51) = %v, want 50", got)
	}
}

func TestConformanceError(t *testing.T) {
	info, err := lang.Analyze(lang.MustParse("real A(10), B(5)\nA(1:3) = B(1:4)\n"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(info); err == nil {
		t.Error("conformance violation not caught")
	}
}
