package machine

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/align"
	"repro/internal/build"
	"repro/internal/cost"
	"repro/internal/lang"
)

// TestCostModelSimulatorConsistency: whenever the §2.3 cost model says an
// alignment is free, the machine simulator must measure zero traffic —
// the model is an upper-bound abstraction of the machine.
func TestCostModelSimulatorConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 20; trial++ {
		n := int64(20 + rng.Intn(20))
		w := int64(5 + rng.Intn(5))
		lo := int64(1 + rng.Intn(int(n-w-6)))
		src := fmt.Sprintf(`
real A(%d), B(%d)
do k = 1, 5
  A(k+%d:k+%d) = A(k+%d:k+%d) + B(k+%d:k+%d)
enddo
`, n, n, lo, lo+w-1, lo, lo+w-1, lo, lo+w-1)
		info, err := lang.Analyze(lang.MustParse(src))
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, src)
		}
		g, err := build.Build(info)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		res, err := align.Align(g, align.Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		model := cost.Exact(g, res.Assignment)
		cfg := Config{Grid: []int{4}, Extent: []int64{128}}
		tr := Simulate(g, res.Assignment, cfg)
		if model.Total() == 0 && (tr.Elements != 0 || tr.GeneralElements != 0 || tr.BroadcastElements != 0) {
			t.Errorf("trial %d: model free but simulator moved data: %s\n%s", trial, tr, src)
		}
		if model.Total() > 0 && tr.Time(cfg) == 0 && cfg.Grid[0] > 1 {
			// Not an error in general (block distribution can hide small
			// shifts), but flag wildly inconsistent cases.
			if model.Shift > int64(cfg.Extent[0]) {
				t.Errorf("trial %d: model cost %d but simulator silent", trial, model.Total())
			}
		}
	}
}
