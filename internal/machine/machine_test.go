package machine

import (
	"testing"

	"repro/internal/adg"
	"repro/internal/align"
	"repro/internal/build"
	"repro/internal/lang"
)

func aligned(t *testing.T, src string, opts align.Options) (*align.Result, Config) {
	t.Helper()
	info, err := lang.Analyze(lang.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	g, err := build.Build(info)
	if err != nil {
		t.Fatal(err)
	}
	res, err := align.Align(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res, Config{Grid: make([]int, g.TemplateRank)}
}

func TestOwnerBlock(t *testing.T) {
	cfg := Config{Grid: []int{4}, Dist: []Distribution{Block}, Extent: []int64{100}}
	cfg = cfg.withDefaults(1)
	if cfg.Owner(0, 0) != 0 || cfg.Owner(0, 24) != 0 {
		t.Error("block owner wrong at start")
	}
	if cfg.Owner(0, 25) != 1 || cfg.Owner(0, 99) != 3 {
		t.Error("block owner wrong at end")
	}
}

func TestOwnerCyclic(t *testing.T) {
	cfg := Config{Grid: []int{4}, Dist: []Distribution{Cyclic}, Extent: []int64{100}}
	cfg = cfg.withDefaults(1)
	if cfg.Owner(0, 0) != 0 || cfg.Owner(0, 5) != 1 || cfg.Owner(0, -1) != 3 {
		t.Error("cyclic owner wrong")
	}
}

func TestSimulateAlignedIsQuiet(t *testing.T) {
	// Figure 1 with mobile alignment: zero realignment → zero traffic.
	res, _ := aligned(t, `
real A(100,100), V(200)
do k = 1, 100
  A(k,1:100) = A(k,1:100) + V(k:k+99)
enddo
`, align.Options{Replication: true})
	cfg := Config{Grid: []int{4, 4}, Extent: []int64{256, 256}}
	tr := Simulate(res.Graph, res.Assignment, cfg)
	if tr.Elements != 0 || tr.GeneralElements != 0 {
		t.Errorf("aligned program moved data: %s", tr)
	}
}

func TestSimulateStaticFig1Traffic(t *testing.T) {
	// The best STATIC alignment of Figure 1 must move data every
	// iteration; the mobile alignment must not. The simulator is how the
	// difference shows up as machine traffic.
	info, _ := lang.Analyze(lang.MustParse(`
real A(100,100), V(200)
do k = 1, 100
  A(k,1:100) = A(k,1:100) + V(k:k+99)
enddo
`))
	g, _ := build.Build(info)
	as, err := align.AxisStride(g)
	if err != nil {
		t.Fatal(err)
	}
	repl := align.NoReplication(g)
	mobile, err := align.Offsets(g, as, repl, align.OffsetOptions{Strategy: align.StrategyFixed, M: 3})
	if err != nil {
		t.Fatal(err)
	}
	static, err := align.Offsets(g, as, repl, align.OffsetOptions{Strategy: align.StrategyFixed, M: 3, Static: true})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Grid: []int{4, 4}, Extent: []int64{256, 256}}
	trM := Simulate(g, buildAssignment(g, as, repl, mobile), cfg)
	trS := Simulate(g, buildAssignment(g, as, repl, static), cfg)
	if trM.Elements != 0 {
		t.Errorf("mobile alignment still moves %d elements", trM.Elements)
	}
	if trS.Elements == 0 && trS.Messages == 0 {
		t.Error("static alignment moved nothing; expected per-iteration shifts")
	}
	if trS.Time(cfg) <= trM.Time(cfg) {
		t.Errorf("static time %v not worse than mobile %v", trS.Time(cfg), trM.Time(cfg))
	}
}

// buildAssignment assembles a full assignment from phase results.
func buildAssignment(g *adg.Graph, as *align.AxisStrideResult, repl *align.ReplResult, off *align.OffsetResult) *adg.Assignment {
	r := &align.Result{Graph: g, AxisStride: as, Repl: repl, Offset: off}
	return r.BuildAssignment()
}

func TestAlphaBetaTime(t *testing.T) {
	cfg := Config{Grid: []int{4}, Alpha: 10, Beta: 2, Extent: []int64{100}}
	cfg = cfg.withDefaults(1)
	tr := Traffic{Messages: 3, Elements: 50}
	if got := tr.Time(cfg); got != 10*3+2*50 {
		t.Errorf("time = %v", got)
	}
	// Broadcasts pay the log factor.
	tr2 := Traffic{Broadcasts: 1, BroadcastElements: 10}
	if tr2.Time(cfg) <= 0 {
		t.Error("broadcast time zero")
	}
}

func TestCrossingFraction(t *testing.T) {
	cfg := Config{Grid: []int{4}, Dist: []Distribution{Block}, Extent: []int64{100}}
	cfg = cfg.withDefaults(1)
	// Block size 25: shift by 25+ moves everything.
	if f := crossingFraction(cfg, 0, 30, 0); f != 1 {
		t.Errorf("full crossing = %v", f)
	}
	if f := crossingFraction(cfg, 0, 5, 0); f != 5.0/25.0 {
		t.Errorf("partial crossing = %v", f)
	}
	// Cyclic: any non-multiple-of-P shift moves everything.
	cyc := Config{Grid: []int{4}, Dist: []Distribution{Cyclic}, Extent: []int64{100}}
	cyc = cyc.withDefaults(1)
	if f := crossingFraction(cyc, 0, 1, 0); f != 1 {
		t.Errorf("cyclic crossing = %v", f)
	}
	if f := crossingFraction(cyc, 0, 4, 0); f != 0 {
		t.Errorf("cyclic multiple-of-P crossing = %v", f)
	}
}
