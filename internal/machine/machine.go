// Package machine is a distributed-memory machine simulator: it
// distributes the alignment template over a processor grid (block or
// cyclic, the distribution phase the paper defers) and replays an aligned
// program's ADG edge traffic, counting the messages and element volume
// each realignment induces between processors under an α-β communication
// model. This is the measurement substrate for the experiments: the
// paper's authors evaluated on distributed-memory machines of the CM-5
// era; the simulator reproduces the communication behaviour those
// machines would exhibit as a function of the alignment.
package machine

import (
	"fmt"

	"repro/internal/adg"
)

// Distribution maps template cells to processors along one axis.
type Distribution int

// Distribution kinds.
const (
	// Block distribution: contiguous chunks of ⌈extent/P⌉ cells.
	Block Distribution = iota
	// Cyclic distribution: cell i on processor i mod P.
	Cyclic
)

func (d Distribution) String() string {
	if d == Block {
		return "block"
	}
	return "cyclic"
}

// Config describes the simulated machine and distribution.
type Config struct {
	// Grid is the processor count per template axis (its length must
	// equal the template rank).
	Grid []int
	// Dist is the per-axis distribution (defaults to Block).
	Dist []Distribution
	// Extent is the modeled extent of each template axis (cells); block
	// distribution needs a finite extent. Defaults to 1024 per axis.
	Extent []int64
	// Alpha is the per-message startup cost, Beta the per-element cost,
	// in arbitrary time units. Defaults: Alpha 10, Beta 1.
	Alpha, Beta float64
}

func (c Config) withDefaults(rank int) Config {
	if len(c.Grid) == 0 {
		c.Grid = make([]int, rank)
		for i := range c.Grid {
			c.Grid[i] = 4
		}
	}
	if len(c.Dist) == 0 {
		c.Dist = make([]Distribution, rank)
	}
	if len(c.Extent) == 0 {
		c.Extent = make([]int64, rank)
		for i := range c.Extent {
			c.Extent[i] = 1024
		}
	}
	if c.Alpha == 0 {
		c.Alpha = 10
	}
	if c.Beta == 0 {
		c.Beta = 1
	}
	return c
}

// Owner returns the processor coordinate owning template cell x on axis t.
func (c Config) Owner(t int, x int64) int {
	p := int64(c.Grid[t])
	switch c.Dist[t] {
	case Cyclic:
		return int(((x % p) + p) % p)
	default:
		ext := c.Extent[t]
		blk := (ext + p - 1) / p
		i := x
		if i < 0 {
			i = 0
		}
		if i >= ext {
			i = ext - 1
		}
		return int(i / blk)
	}
}

// Traffic summarizes simulated communication.
type Traffic struct {
	// Messages is the number of point-to-point messages.
	Messages int64
	// Elements is the number of array elements crossing processors.
	Elements int64
	// Broadcasts counts one-to-all broadcast operations.
	Broadcasts int64
	// BroadcastElements is the element volume broadcast.
	BroadcastElements int64
	// GeneralOps counts all-to-all (general) communication operations.
	GeneralOps int64
	// GeneralElements is the element volume moved by general
	// communication.
	GeneralElements int64
}

// Time returns the modeled completion time under the α-β model:
// every message costs α + β·elements; a broadcast to P processors costs
// (α + β·elements)·log2(P) (tree broadcast); a general operation is
// modeled as P simultaneous messages of its volume.
func (tr Traffic) Time(cfg Config) float64 {
	cfg = cfg.withDefaults(len(cfg.Grid))
	t := cfg.Alpha*float64(tr.Messages) + cfg.Beta*float64(tr.Elements)
	logP := 1.0
	P := 1
	for _, g := range cfg.Grid {
		P *= g
	}
	for 1<<uint(logP) < P {
		logP++
	}
	t += (cfg.Alpha*float64(tr.Broadcasts) + cfg.Beta*float64(tr.BroadcastElements)) * logP
	t += cfg.Alpha*float64(tr.GeneralOps)*float64(P) + cfg.Beta*float64(tr.GeneralElements)*2
	return t
}

// Add accumulates.
func (tr *Traffic) Add(o Traffic) {
	tr.Messages += o.Messages
	tr.Elements += o.Elements
	tr.Broadcasts += o.Broadcasts
	tr.BroadcastElements += o.BroadcastElements
	tr.GeneralOps += o.GeneralOps
	tr.GeneralElements += o.GeneralElements
}

func (tr Traffic) String() string {
	return fmt.Sprintf("msgs=%d elems=%d bcasts=%d bcastElems=%d general=%d generalElems=%d",
		tr.Messages, tr.Elements, tr.Broadcasts, tr.BroadcastElements,
		tr.GeneralOps, tr.GeneralElements)
}

// Simulate replays the realignment traffic of an aligned program on the
// configured machine: for every ADG edge and every iteration, elements
// whose source and destination template positions land on different
// processors are counted as communication. Axis/stride mismatches are
// all-to-all (general) operations; offset mismatches are shift messages
// between neighboring processor slices; edges into replicated ports are
// broadcasts.
func Simulate(g *adg.Graph, asg *adg.Assignment, cfg Config) Traffic {
	cfg = cfg.withDefaults(g.TemplateRank)
	var total Traffic
	for _, e := range g.Edges {
		total.Add(SimulateEdge(e, asg, cfg))
	}
	return total
}

// SimulateEdge replays one edge.
func SimulateEdge(e *adg.Edge, asg *adg.Assignment, cfg Config) Traffic {
	cfg = cfg.withDefaults(len(asg.Of(e.Src).Offset))
	src := asg.Of(e.Src)
	dst := asg.Of(e.Dst)
	w := e.Weight()
	var tr Traffic
	e.Space().Each(func(env map[string]int64) bool {
		wt := w.Eval(env)
		if wt == 0 {
			return true
		}
		// Broadcast into a replicated head.
		bcast := false
		for t := range dst.Replicated {
			if dst.Replicated[t] && !src.Replicated[t] {
				bcast = true
			}
		}
		if bcast {
			tr.Broadcasts++
			tr.BroadcastElements += wt
			return true
		}
		// Axis or stride mismatch: general communication of the object.
		if len(src.AxisMap) != len(dst.AxisMap) {
			tr.GeneralOps++
			tr.GeneralElements += wt
			return true
		}
		for d := range src.AxisMap {
			if src.AxisMap[d] != dst.AxisMap[d] ||
				src.Stride[d].Eval(env) != dst.Stride[d].Eval(env) {
				tr.GeneralOps++
				tr.GeneralElements += wt
				return true
			}
		}
		// Offset shift: count elements that change processors. The grid
		// metric distance bounds the volume; the processor crossing count
		// is what the machine actually pays. For a shift of δ cells on a
		// block-distributed axis, elements within δ of a block boundary
		// cross; estimate per axis and take the union bound.
		var crossed int64
		for t := range src.Offset {
			if src.Replicated[t] || dst.Replicated[t] {
				continue
			}
			so := src.Offset[t].Eval(env)
			do := dst.Offset[t].Eval(env)
			if so == do {
				continue
			}
			frac := crossingFraction(cfg, t, so, do)
			c := int64(frac * float64(wt))
			if c == 0 && frac > 0 {
				c = 1
			}
			crossed += c
		}
		if crossed > 0 {
			if crossed > wt {
				crossed = wt
			}
			tr.Messages++ // one (possibly multi-neighbor) shift operation
			tr.Elements += crossed
		}
		return true
	})
	return tr
}

// crossingFraction estimates the fraction of elements that change owners
// when an object's position shifts from so to do along axis t.
func crossingFraction(cfg Config, t int, so, do int64) float64 {
	delta := so - do
	if delta < 0 {
		delta = -delta
	}
	p := int64(cfg.Grid[t])
	if p <= 1 {
		return 0
	}
	switch cfg.Dist[t] {
	case Cyclic:
		// Any nonzero shift moves every element (unless δ ≡ 0 mod P).
		if delta%p == 0 {
			return 0
		}
		return 1
	default:
		ext := cfg.Extent[t]
		blk := (ext + p - 1) / p
		if delta >= blk {
			return 1
		}
		return float64(delta) / float64(blk)
	}
}

// newIdentity builds the identity assignment (every port at the identity
// alignment); exported for tests and baselines via NewIdentityAssignment.
func newIdentity(g *adg.Graph) *adg.Assignment { return adg.NewAssignment(g) }

// NewIdentityAssignment returns the all-identity alignment of a graph:
// the "no alignment analysis" baseline.
func NewIdentityAssignment(g *adg.Graph) *adg.Assignment { return adg.NewAssignment(g) }
