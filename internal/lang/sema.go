package lang

import (
	"fmt"

	"repro/internal/expr"
)

// Info is the result of semantic analysis: symbol table, expression
// ranks, and affine forms for scalar integer expressions, ready for ADG
// construction.
type Info struct {
	Program *Program
	decls   map[string]*Decl
	ranks   map[Expr]int
}

// Analyze type-checks the program and returns semantic information.
//
// Checks performed: every referenced array is declared exactly once;
// subscript counts match declared ranks; subscript expressions are affine
// in the enclosing loop induction variables (or are rank-1 vector-valued
// subscripts); loop bounds are affine in enclosing LIVs; operand ranks
// conform for elementwise operations; intrinsic arities and ranks are
// valid.
func Analyze(prog *Program) (*Info, error) {
	info := &Info{
		Program: prog,
		decls:   map[string]*Decl{},
		ranks:   map[Expr]int{},
	}
	for _, d := range prog.Decls {
		if _, dup := info.decls[d.Name]; dup {
			return nil, errf(d.Pos, "array %q declared twice", d.Name)
		}
		info.decls[d.Name] = d
	}
	sc := &scope{info: info}
	if err := sc.stmts(prog.Stmts); err != nil {
		return nil, err
	}
	return info, nil
}

// MustAnalyze analyzes and panics on error; for tests and examples.
func MustAnalyze(prog *Program) *Info {
	info, err := Analyze(prog)
	if err != nil {
		panic(err)
	}
	return info
}

// Decl returns the declaration of the named array, or nil.
func (info *Info) Decl(name string) *Decl { return info.decls[name] }

// Decls returns the symbol table.
func (info *Info) Decls() map[string]*Decl { return info.decls }

// Rank returns the checked rank of an expression node.
func (info *Info) Rank(e Expr) int { return info.ranks[e] }

// scope tracks the loop induction variables in effect.
type scope struct {
	info *Info
	livs []string
}

func (sc *scope) isLIV(name string) bool {
	for _, v := range sc.livs {
		if v == name {
			return true
		}
	}
	return false
}

func (sc *scope) stmts(ss []Stmt) error {
	for _, s := range ss {
		if err := sc.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (sc *scope) stmt(s Stmt) error {
	switch st := s.(type) {
	case *Assign:
		if _, err := sc.ref(st.LHS, true); err != nil {
			return err
		}
		rr, err := sc.exprRank(st.RHS)
		if err != nil {
			return err
		}
		lr := sc.info.ranks[Expr(st.LHS)]
		if rr != 0 && lr != rr {
			return errf(st.Pos, "rank mismatch in assignment: lhs rank %d, rhs rank %d", lr, rr)
		}
		return nil
	case *Do:
		if sc.isLIV(st.Var) {
			return errf(st.Pos, "loop variable %q shadows an enclosing loop variable", st.Var)
		}
		if _, ok := sc.info.decls[st.Var]; ok {
			return errf(st.Pos, "loop variable %q shadows a declared array", st.Var)
		}
		for _, bound := range []Expr{st.Lo, st.Hi, st.Step} {
			if bound == nil {
				continue
			}
			if _, err := sc.affine(bound); err != nil {
				return err
			}
		}
		sc.livs = append(sc.livs, st.Var)
		err := sc.stmts(st.Body)
		sc.livs = sc.livs[:len(sc.livs)-1]
		return err
	case *If:
		if _, err := sc.exprRank(st.Cond); err != nil {
			return err
		}
		if err := sc.stmts(st.Then); err != nil {
			return err
		}
		return sc.stmts(st.Else)
	}
	return fmt.Errorf("lang: unknown statement %T", s)
}

// ref checks an array reference and records its rank (the rank of the
// object it denotes: a section's rank counts range subscripts).
func (sc *scope) ref(r *ArrayRef, lhs bool) (int, error) {
	if sc.isLIV(r.Name) {
		if len(r.Subs) > 0 {
			return 0, errf(r.Pos, "loop variable %q cannot be subscripted", r.Name)
		}
		if lhs {
			return 0, errf(r.Pos, "cannot assign to loop variable %q", r.Name)
		}
		sc.info.ranks[Expr(r)] = 0
		return 0, nil
	}
	d, ok := sc.info.decls[r.Name]
	if !ok {
		return 0, errf(r.Pos, "undeclared array %q", r.Name)
	}
	if len(r.Subs) == 0 {
		sc.info.ranks[Expr(r)] = d.Rank()
		return d.Rank(), nil
	}
	if len(r.Subs) != d.Rank() {
		return 0, errf(r.Pos, "%q has rank %d but %d subscripts given", r.Name, d.Rank(), len(r.Subs))
	}
	rank := 0
	for dim, sub := range r.Subs {
		if sub.IsRange {
			rank++
			for _, e := range []Expr{sub.Lo, sub.Hi, sub.Step} {
				if e == nil {
					continue
				}
				if _, err := sc.affine(e); err != nil {
					return 0, err
				}
			}
			continue
		}
		// Single index: affine scalar, or a rank-1 vector-valued
		// subscript (a lookup through an index vector, §5.1).
		if vr, ok := sub.Index.(*ArrayRef); ok && !sc.isLIV(vr.Name) {
			vd, ok2 := sc.info.decls[vr.Name]
			if ok2 && vd.Rank() >= 1 && len(vr.Subs) == 0 {
				if lhs {
					return 0, errf(vr.Pos, "vector-valued subscript not allowed on left-hand side")
				}
				if vd.Rank() != 1 {
					return 0, errf(vr.Pos, "vector-valued subscript %q must have rank 1", vr.Name)
				}
				sc.info.ranks[Expr(vr)] = 1
				rank++ // a vector subscript contributes a dimension
				continue
			}
		}
		if _, err := sc.affine(sub.Index); err != nil {
			return 0, err
		}
		_ = dim
	}
	sc.info.ranks[Expr(r)] = rank
	return rank, nil
}

func (sc *scope) exprRank(e Expr) (int, error) {
	switch ex := e.(type) {
	case *Num:
		sc.info.ranks[e] = 0
		return 0, nil
	case *ArrayRef:
		return sc.ref(ex, false)
	case *BinOp:
		lr, err := sc.exprRank(ex.L)
		if err != nil {
			return 0, err
		}
		rr, err := sc.exprRank(ex.R)
		if err != nil {
			return 0, err
		}
		switch {
		case lr == 0:
			sc.info.ranks[e] = rr
			return rr, nil
		case rr == 0, lr == rr:
			sc.info.ranks[e] = lr
			return lr, nil
		}
		return 0, errf(ex.Pos, "rank mismatch: %d vs %d in %q", lr, rr, ex.Op)
	case *Call:
		return sc.callRank(ex)
	}
	return 0, fmt.Errorf("lang: unknown expression %T", e)
}

func (sc *scope) callRank(c *Call) (int, error) {
	switch c.Name {
	case "transpose":
		if len(c.Args) != 1 {
			return 0, errf(c.Pos, "transpose takes 1 argument")
		}
		r, err := sc.exprRank(c.Args[0])
		if err != nil {
			return 0, err
		}
		if r != 2 {
			return 0, errf(c.Pos, "transpose argument must have rank 2, has %d", r)
		}
		sc.info.ranks[Expr(c)] = 2
		return 2, nil
	case "spread":
		if len(c.Args) != 3 {
			return 0, errf(c.Pos, "spread takes (array, dim, ncopies)")
		}
		r, err := sc.exprRank(c.Args[0])
		if err != nil {
			return 0, err
		}
		if _, err := sc.constInt(c.Args[1]); err != nil {
			return 0, errf(c.Pos, "spread dim must be a constant")
		}
		if _, err := sc.affine(c.Args[2]); err != nil {
			return 0, err
		}
		d, _ := sc.constInt(c.Args[1])
		if d < 1 || d > int64(r)+1 {
			return 0, errf(c.Pos, "spread dim %d out of range 1..%d", d, r+1)
		}
		sc.info.ranks[Expr(c)] = r + 1
		return r + 1, nil
	case "sum":
		if len(c.Args) != 1 && len(c.Args) != 2 {
			return 0, errf(c.Pos, "sum takes (array) or (array, dim)")
		}
		r, err := sc.exprRank(c.Args[0])
		if err != nil {
			return 0, err
		}
		if len(c.Args) == 1 {
			sc.info.ranks[Expr(c)] = 0
			return 0, nil
		}
		d, err := sc.constInt(c.Args[1])
		if err != nil {
			return 0, errf(c.Pos, "sum dim must be a constant")
		}
		if d < 1 || d > int64(r) {
			return 0, errf(c.Pos, "sum dim %d out of range 1..%d", d, r)
		}
		sc.info.ranks[Expr(c)] = r - 1
		return r - 1, nil
	case "cshift":
		if len(c.Args) != 2 {
			return 0, errf(c.Pos, "cshift takes (array, shift)")
		}
		r, err := sc.exprRank(c.Args[0])
		if err != nil {
			return 0, err
		}
		if _, err := sc.affine(c.Args[1]); err != nil {
			return 0, err
		}
		sc.info.ranks[Expr(c)] = r
		return r, nil
	case "min", "max":
		if len(c.Args) != 2 {
			return 0, errf(c.Pos, "%s takes 2 arguments", c.Name)
		}
		lr, err := sc.exprRank(c.Args[0])
		if err != nil {
			return 0, err
		}
		rr, err := sc.exprRank(c.Args[1])
		if err != nil {
			return 0, err
		}
		r := lr
		if rr > r {
			r = rr
		}
		if lr != 0 && rr != 0 && lr != rr {
			return 0, errf(c.Pos, "rank mismatch in %s", c.Name)
		}
		sc.info.ranks[Expr(c)] = r
		return r, nil
	default: // elementwise unary math intrinsics
		if len(c.Args) != 1 {
			return 0, errf(c.Pos, "%s takes 1 argument", c.Name)
		}
		r, err := sc.exprRank(c.Args[0])
		if err != nil {
			return 0, err
		}
		sc.info.ranks[Expr(c)] = r
		return r, nil
	}
}

func (sc *scope) constInt(e Expr) (int64, error) {
	a, err := sc.affine(e)
	if err != nil {
		return 0, err
	}
	if !a.IsConst() {
		return 0, fmt.Errorf("lang: expression is not constant")
	}
	return a.ConstPart(), nil
}

// affine converts a scalar integer expression to an affine form over the
// enclosing loop induction variables.
func (sc *scope) affine(e Expr) (expr.Affine, error) {
	return AffineExpr(e, sc.isLIV)
}

// AffineExpr converts a scalar expression to an affine form over loop
// induction variables, where isLIV identifies induction variables. It
// rejects products of two non-constant subexpressions, division (except
// exact constant division), comparisons, and array references.
func AffineExpr(e Expr, isLIV func(string) bool) (expr.Affine, error) {
	switch ex := e.(type) {
	case *Num:
		return expr.Const(ex.Val), nil
	case *ArrayRef:
		if len(ex.Subs) == 0 && isLIV(ex.Name) {
			return expr.Var(ex.Name), nil
		}
		return expr.Affine{}, errf(ex.Pos, "subscript expression must be affine in loop variables; %q is not a loop variable", ex.Name)
	case *BinOp:
		l, err := AffineExpr(ex.L, isLIV)
		if err != nil {
			return expr.Affine{}, err
		}
		r, err := AffineExpr(ex.R, isLIV)
		if err != nil {
			return expr.Affine{}, err
		}
		switch ex.Op {
		case "+":
			return l.Add(r), nil
		case "-":
			return l.Sub(r), nil
		case "*":
			if l.IsConst() {
				return r.Scale(l.ConstPart()), nil
			}
			if r.IsConst() {
				return l.Scale(r.ConstPart()), nil
			}
			return expr.Affine{}, errf(ex.Pos, "product of two loop-variable expressions is not affine")
		case "/":
			if !r.IsConst() || r.ConstPart() == 0 {
				return expr.Affine{}, errf(ex.Pos, "division in subscripts must be by a nonzero constant")
			}
			d := r.ConstPart()
			if !l.IsConst() {
				return expr.Affine{}, errf(ex.Pos, "division of loop-variable expressions is not affine")
			}
			return expr.Const(l.ConstPart() / d), nil
		}
		return expr.Affine{}, errf(ex.Pos, "operator %q not allowed in an index expression", ex.Op)
	case *Call:
		return expr.Affine{}, errf(ex.Pos, "intrinsic call not allowed in an index expression")
	}
	return expr.Affine{}, fmt.Errorf("lang: unknown expression %T", e)
}
