package lang

import (
	"strings"
	"testing"
)

func parse(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return p
}

func analyze(t *testing.T, src string) *Info {
	t.Helper()
	info, err := Analyze(parse(t, src))
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	return info
}

func TestLexBasics(t *testing.T) {
	toks, err := Lex("real A(10)\nA = A + 1 ! comment\n")
	if err != nil {
		t.Fatal(err)
	}
	kinds := []Kind{}
	for _, tok := range toks {
		kinds = append(kinds, tok.Kind)
	}
	want := []Kind{KwReal, IDENT, LPAREN, NUMBER, RPAREN, NEWLINE,
		IDENT, ASSIGN, IDENT, PLUS, NUMBER, NEWLINE, EOF}
	if len(kinds) != len(want) {
		t.Fatalf("kinds = %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, kinds[i], want[i])
		}
	}
}

func TestLexTwoWordEnd(t *testing.T) {
	toks, err := Lex("end do\nend if\n")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != KwEndDo || toks[2].Kind != KwEndIf {
		t.Errorf("two-word end forms: %v %v", toks[0].Kind, toks[2].Kind)
	}
}

func TestLexOperators(t *testing.T) {
	toks, err := Lex("a <= b >= c == d /= e < f > g\n")
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{IDENT, LE, IDENT, GE, IDENT, EQ, IDENT, NE, IDENT, LT, IDENT, GT, IDENT}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Errorf("token %d = %v, want %v", i, toks[i].Kind, k)
		}
	}
}

func TestLexCaseFolding(t *testing.T) {
	toks, _ := Lex("REAL A\nDO K = 1, 10\nENDDO\n")
	if toks[0].Kind != KwReal || toks[3].Kind != KwDo {
		t.Error("keywords not case-folded")
	}
}

func TestParseFig1(t *testing.T) {
	p := parse(t, `
real A(100,100), V(200)
do k = 1, 100
  A(k,1:100) = A(k,1:100) + V(k:k+99)
enddo
`)
	if len(p.Decls) != 2 {
		t.Fatalf("decls = %d", len(p.Decls))
	}
	if p.Decls[0].Name != "a" || p.Decls[0].Rank() != 2 {
		t.Errorf("decl 0: %+v", p.Decls[0])
	}
	do, ok := p.Stmts[0].(*Do)
	if !ok {
		t.Fatalf("stmt 0 is %T", p.Stmts[0])
	}
	if do.Var != "k" || len(do.Body) != 1 {
		t.Errorf("do: %+v", do)
	}
	asn := do.Body[0].(*Assign)
	if asn.LHS.Name != "a" || len(asn.LHS.Subs) != 2 {
		t.Errorf("lhs: %v", asn.LHS)
	}
	if asn.LHS.Subs[0].IsRange || !asn.LHS.Subs[1].IsRange {
		t.Errorf("subscript shapes wrong")
	}
}

func TestParseSectionForms(t *testing.T) {
	p := parse(t, `
real A(10)
A(:) = A(1:)
A(2:5) = A(1:10:3)
`)
	a1 := p.Stmts[0].(*Assign)
	if !a1.LHS.Subs[0].IsRange || a1.LHS.Subs[0].Lo != nil {
		t.Errorf("bare colon wrong: %+v", a1.LHS.Subs[0])
	}
	rhs1 := a1.RHS.(*ArrayRef)
	if rhs1.Subs[0].Lo == nil || rhs1.Subs[0].Hi != nil {
		t.Errorf("lo-only range wrong: %+v", rhs1.Subs[0])
	}
	a2 := p.Stmts[1].(*Assign)
	rhs2 := a2.RHS.(*ArrayRef)
	if rhs2.Subs[0].Step == nil {
		t.Errorf("step missing: %+v", rhs2.Subs[0])
	}
}

func TestParseIfElse(t *testing.T) {
	p := parse(t, `
real A(10), B(10)
if (1 < 2) then
  A = B
else
  B = A
endif
`)
	f := p.Stmts[0].(*If)
	if len(f.Then) != 1 || len(f.Else) != 1 {
		t.Errorf("arms: %d %d", len(f.Then), len(f.Else))
	}
}

func TestParsePrecedence(t *testing.T) {
	p := parse(t, "real A(10)\nA = A + A * A\n")
	rhs := p.Stmts[0].(*Assign).RHS.(*BinOp)
	if rhs.Op != "+" {
		t.Fatalf("top op = %q", rhs.Op)
	}
	if inner, ok := rhs.R.(*BinOp); !ok || inner.Op != "*" {
		t.Errorf("precedence wrong: %v", p.Stmts[0])
	}
}

func TestParseIntrinsics(t *testing.T) {
	p := parse(t, `
real B(10,20), C(20,10), V(10)
B = B + transpose(C)
B = B + spread(V, 2, 20)
V = cos(V)
`)
	c1 := p.Stmts[0].(*Assign).RHS.(*BinOp).R.(*Call)
	if c1.Name != "transpose" || len(c1.Args) != 1 {
		t.Errorf("transpose: %v", c1)
	}
	c2 := p.Stmts[1].(*Assign).RHS.(*BinOp).R.(*Call)
	if c2.Name != "spread" || len(c2.Args) != 3 {
		t.Errorf("spread: %v", c2)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"real A(10)\nA = \n",
		"real A(10)\ndo k = 1\nenddo\n",
		"real A(10)\nA = A +\n",
		"real A(10\nA = A\n",
		"do k = 1, 10\n", // missing enddo
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestAnalyzeRanks(t *testing.T) {
	info := analyze(t, `
real A(10,20), V(20)
A(1,1:20) = V
A = A + spread(V, 1, 10)
V = sum(A, 1)
`)
	if info.Decl("a").Rank() != 2 || info.Decl("v").Rank() != 1 {
		t.Error("decl ranks wrong")
	}
}

func TestAnalyzeErrors(t *testing.T) {
	bad := map[string]string{
		"undeclared":     "real A(10)\nA = B\n",
		"rank mismatch":  "real A(10,10), V(5)\nA = V\n",
		"bad subscripts": "real A(10,10)\nA(1) = 0\n",
		"dup decl":       "real A(10)\nreal A(20)\nA = 0\n",
		"transpose rank": "real V(10)\nV = transpose(V)\n",
		"spread dim":     "real V(10), A(10,10)\nA = spread(V, 5, 10)\n",
		"nonaffine sub":  "real A(100), B(100)\ndo k = 1, 10\n A(k*k) = 0\nenddo\n",
		"shadow loop":    "real A(10)\ndo k = 1, 5\n do k = 1, 5\n  A = A\n enddo\nenddo\n",
	}
	for name, src := range bad {
		if _, err := Analyze(parse(t, src)); err == nil {
			t.Errorf("%s: Analyze succeeded, want error", name)
		}
	}
}

func TestAnalyzeAffineSubscripts(t *testing.T) {
	// 2*k+1 is affine and fine; mobile sections too.
	analyze(t, `
real A(100), B(1000)
do k = 1, 10
  A(2*k+1) = 0
  B(1:20*k:k) = 0
enddo
`)
}

func TestAnalyzeVectorSubscript(t *testing.T) {
	info := analyze(t, `
real A(100), T(50), IDX(50)
do k = 1, 10
  T = A(IDX)
enddo
`)
	_ = info
	// Vector subscript on the LHS must be rejected.
	if _, err := Analyze(parse(t, "real A(100), IDX(50)\nA(IDX) = 0\n")); err == nil {
		t.Error("LHS vector subscript accepted")
	}
}

func TestProgramString(t *testing.T) {
	src := `
real A(10)
do k = 1, 5
  A(k) = A(k) + 1
enddo
`
	s := parse(t, src).String()
	for _, frag := range []string{"real a(10)", "do k = 1, 5", "enddo"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() missing %q:\n%s", frag, s)
		}
	}
}

func TestAffineExprForms(t *testing.T) {
	isLIV := func(s string) bool { return s == "k" || s == "j" }
	p := parse(t, "real A(100)\nA(3*k - 2*j + 7) = 0\n")
	// Extract the subscript expression.
	sub := p.Stmts[0].(*Assign).LHS.Subs[0].Index
	a, err := AffineExpr(sub, isLIV)
	if err != nil {
		t.Fatal(err)
	}
	if a.Coef("k") != 3 || a.Coef("j") != -2 || a.ConstPart() != 7 {
		t.Errorf("affine = %v", a)
	}
}
