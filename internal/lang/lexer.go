package lang

import (
	"strings"
	"sync"
)

// Lexer turns source text into tokens. Case is folded to lower for
// keywords and identifiers (Fortran style); '!' starts a comment to end
// of line; newlines are significant (statement separators).
//
// Token texts are substrings of the source: lexing a lowercase program
// allocates nothing per token. Identifiers containing uppercase letters
// take a fold-and-intern slow path (see lower), and the two-word end
// forms use constant texts, so those never allocate either once warm.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Lex tokenizes the whole input. A trailing NEWLINE is ensured before EOF
// so the parser can treat every statement as newline-terminated.
func Lex(src string) ([]Token, error) {
	return LexInto(src, nil)
}

// LexInto tokenizes src into toks, which is truncated and reused (pass
// a recycled buffer to lex without growing a fresh slice). The returned
// tokens alias src — their Text fields are substrings of it — so they
// are valid for as long as src is.
func LexInto(src string, toks []Token) ([]Token, error) {
	lx := Lexer{src: src, line: 1, col: 1}
	toks = toks[:0]
	for {
		t, err := lx.next()
		if err != nil {
			return toks, err
		}
		// Collapse duplicate newlines.
		if t.Kind == NEWLINE && len(toks) > 0 && toks[len(toks)-1].Kind == NEWLINE {
			continue
		}
		if t.Kind == NEWLINE && len(toks) == 0 {
			continue
		}
		if t.Kind == EOF {
			if len(toks) > 0 && toks[len(toks)-1].Kind != NEWLINE {
				toks = append(toks, Token{Kind: NEWLINE, Text: "\n", Pos: t.Pos})
			}
			toks = append(toks, t)
			return toks, nil
		}
		toks = append(toks, t)
	}
}

func (lx *Lexer) pos() Pos { return Pos{Line: lx.line, Col: lx.col} }

func (lx *Lexer) peek() byte {
	if lx.off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off]
}

func (lx *Lexer) advance() byte {
	c := lx.src[lx.off]
	lx.off++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *Lexer) next() (Token, error) {
	// Skip horizontal whitespace and comments.
	for lx.off < len(lx.src) {
		c := lx.peek()
		if c == ' ' || c == '\t' || c == '\r' {
			lx.advance()
			continue
		}
		if c == '!' {
			for lx.off < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
			continue
		}
		break
	}
	start := lx.pos()
	if lx.off >= len(lx.src) {
		return Token{Kind: EOF, Pos: start}, nil
	}
	c := lx.advance()
	switch {
	case c == '\n':
		return Token{Kind: NEWLINE, Text: "\n", Pos: start}, nil
	case c == '(':
		return Token{Kind: LPAREN, Text: "(", Pos: start}, nil
	case c == ')':
		return Token{Kind: RPAREN, Text: ")", Pos: start}, nil
	case c == ',':
		return Token{Kind: COMMA, Text: ",", Pos: start}, nil
	case c == ':':
		return Token{Kind: COLON, Text: ":", Pos: start}, nil
	case c == '+':
		return Token{Kind: PLUS, Text: "+", Pos: start}, nil
	case c == '-':
		return Token{Kind: MINUS, Text: "-", Pos: start}, nil
	case c == '*':
		return Token{Kind: STAR, Text: "*", Pos: start}, nil
	case c == '/':
		if lx.peek() == '=' {
			lx.advance()
			return Token{Kind: NE, Text: "/=", Pos: start}, nil
		}
		return Token{Kind: SLASH, Text: "/", Pos: start}, nil
	case c == '=':
		if lx.peek() == '=' {
			lx.advance()
			return Token{Kind: EQ, Text: "==", Pos: start}, nil
		}
		return Token{Kind: ASSIGN, Text: "=", Pos: start}, nil
	case c == '<':
		if lx.peek() == '=' {
			lx.advance()
			return Token{Kind: LE, Text: "<=", Pos: start}, nil
		}
		return Token{Kind: LT, Text: "<", Pos: start}, nil
	case c == '>':
		if lx.peek() == '=' {
			lx.advance()
			return Token{Kind: GE, Text: ">=", Pos: start}, nil
		}
		return Token{Kind: GT, Text: ">", Pos: start}, nil
	case c >= '0' && c <= '9':
		startOff := lx.off - 1
		for lx.off < len(lx.src) {
			d := lx.peek()
			if d < '0' || d > '9' {
				break
			}
			lx.advance()
		}
		return Token{Kind: NUMBER, Text: lx.src[startOff:lx.off], Pos: start}, nil
	case isIdentStart(rune(c)):
		startOff := lx.off - 1
		hasUpper := c >= 'A' && c <= 'Z'
		for lx.off < len(lx.src) {
			d := lx.peek()
			if !isIdentPart(rune(d)) {
				break
			}
			if d >= 'A' && d <= 'Z' {
				hasUpper = true
			}
			lx.advance()
		}
		word := lx.src[startOff:lx.off]
		if hasUpper {
			word = lx.lower(word)
		}
		if kw, ok := keywords[word]; ok {
			// "end do" / "end if" two-word forms.
			if kw == KwEnd {
				save := *lx
				t2, err := lx.next()
				if err == nil && t2.Kind == KwDo {
					return Token{Kind: KwEndDo, Text: "end do", Pos: start}, nil
				}
				if err == nil && t2.Kind == KwIf {
					return Token{Kind: KwEndIf, Text: "end if", Pos: start}, nil
				}
				*lx = save
			}
			return Token{Kind: kw, Text: word, Pos: start}, nil
		}
		return Token{Kind: IDENT, Text: word, Pos: start}, nil
	}
	return Token{}, errf(start, "unexpected character %q", c)
}

// lowered interns the case-folded copies of mixed-case identifiers (the
// same dedup trick align's internTable plays for solver labels) across
// all lexes: each distinct spelling folds and allocates exactly once per
// process, so re-lexing a warm source — the memo-key hash on every
// repeat solve — allocates nothing. The table is capped so adversarial
// input (fuzzing, hostile daemon clients) cannot grow it without bound;
// past the cap the fold simply allocates per lex again. Keys are cloned
// on store so an interned spelling never pins its source text alive.
var lowered = struct {
	sync.RWMutex
	m map[string]string
}{m: make(map[string]string)}

const loweredCap = 4096

// lower returns the case-folded form of word through the process-wide
// intern table.
func (lx *Lexer) lower(word string) string {
	lowered.RLock()
	s, ok := lowered.m[word]
	lowered.RUnlock()
	if ok {
		return s
	}
	s = strings.ToLower(word)
	lowered.Lock()
	if len(lowered.m) < loweredCap {
		lowered.m[strings.Clone(word)] = s
	}
	lowered.Unlock()
	return s
}

// Identifiers are ASCII-only: the lexer walks bytes, so admitting
// unicode.IsLetter on a byte cast to rune would misread stray UTF-8
// bytes (0x80..0xFF) as Latin-1 letters and produce identifiers that
// cannot round-trip through Program.String (found by FuzzLexer).
func isIdentStart(r rune) bool {
	return r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
}
func isIdentPart(r rune) bool {
	return isIdentStart(r) || (r >= '0' && r <= '9')
}
