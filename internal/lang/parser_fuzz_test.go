package lang

import (
	"testing"
)

// fuzzSeeds are shared corpus seeds for the parser and sema fuzzers:
// every statement form, mixed case (exercising the fold-and-intern
// path), comments and blank lines (normalized away by the lexer), and
// the intrinsic calls sema gives special treatment.
var fuzzSeeds = []string{
	"real a(10)\na = a + 1\n",
	"real A(100,100), V(200)\ndo k = 1, 100\n  A(k,1:100) = A(k,1:100) + V(k:k+99)\nenddo\n",
	"real t(100), b(100,200)\ndo k = 1, 200\n  t = cos(t)\n  b = b + spread(t, 2, 200)\nenddo\n",
	"real a(10), b(10)\nif (1 < 2) then\n  a = b\nelse\n  b = a\nendif\n",
	"real c(64,64), d(64,64)\nc = c + transpose(d)\n",
	"real v(100), w(100)\nv = sum(w)\n",
	"real tb(512), ix(100), o(100)\no = tb(ix)\n",
	"! comment\nreal a(8)\n\n\na(1:8:2) = a(1:8:2) * 2 ! trailing\n",
	"real x(10)\ndo i = 1, 5\n  do j = i, 10, 2\n    x(j) = x(j) - 1\n  end do\nend do\n",
}

// FuzzParser is the parser round-trip fuzzer: any accepted program's
// String rendering must reparse, and the reparse must render to the
// identical string (a rendering fixed point — stronger than FuzzLexer's
// shape check, this pins operator precedence, section printing, and
// statement nesting). CI runs a short smoke (-fuzz=FuzzParser
// -fuzztime=10s); crashers join testdata/fuzz as corpus seeds.
func FuzzParser(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src) // must not panic
		if err != nil {
			return
		}
		r1 := prog.String()
		p2, err := Parse(r1)
		if err != nil {
			t.Fatalf("accepted program's rendering failed to reparse:\n%s\nerr: %v", r1, err)
		}
		if r2 := p2.String(); r1 != r2 {
			t.Errorf("rendering is not a fixed point:\n--- first\n%s\n--- reparsed\n%s", r1, r2)
		}
	})
}

// FuzzSema feeds every syntactically valid program to semantic
// analysis: Analyze must return a result or an error, never panic —
// undeclared arrays, rank mismatches, non-affine subscripts, and
// malformed intrinsic calls all have error paths, and this is the guard
// that byte soup reaching the daemon's /v1/solve cannot crash it.
func FuzzSema(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Add("real a(10)\nb = a\n")                // undeclared
	f.Add("real a(10,10)\na = a(1,1,1)\n")      // rank mismatch
	f.Add("real a(10)\na(k) = 1\n")             // free index variable
	f.Add("real a(10)\na = spread(a, 99, 0)\n") // bad spread dim
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err != nil {
			return
		}
		_, _ = Analyze(prog) // must not panic
	})
}
