package lang

import "strconv"

// Parser is a recursive-descent parser for the mini language.
type Parser struct {
	toks  []Token
	pos   int
	arena nodeArena
}

// Parse lexes and parses a full program.
func Parse(src string) (*Program, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	return ParseTokens(toks)
}

// ParseTokens parses a token stream produced by Lex/LexInto. It lets a
// caller that already lexed (to compute a source key, say) parse
// without tokenizing twice; the tokens themselves are not retained by
// the returned AST.
func ParseTokens(toks []Token) (*Program, error) {
	p := &Parser{toks: toks}
	return p.program()
}

// nodeArena chunk-allocates AST nodes so a parse performs a handful of
// bulk allocations instead of one per node. Chunks are never reused —
// the AST outlives the parse, so each carve hands out a slot whose
// backing array the returned pointers keep alive.
type nodeArena struct {
	binops  []BinOp
	nums    []Num
	refs    []ArrayRef
	calls   []Call
	assigns []Assign
	dos     []Do
	ifs     []If
	decls   []Decl
}

const arenaChunk = 64

func (a *nodeArena) binop(v BinOp) *BinOp {
	if len(a.binops) == cap(a.binops) {
		a.binops = make([]BinOp, 0, arenaChunk)
	}
	a.binops = append(a.binops, v)
	return &a.binops[len(a.binops)-1]
}

func (a *nodeArena) num(v Num) *Num {
	if len(a.nums) == cap(a.nums) {
		a.nums = make([]Num, 0, arenaChunk)
	}
	a.nums = append(a.nums, v)
	return &a.nums[len(a.nums)-1]
}

func (a *nodeArena) ref(v ArrayRef) *ArrayRef {
	if len(a.refs) == cap(a.refs) {
		a.refs = make([]ArrayRef, 0, arenaChunk)
	}
	a.refs = append(a.refs, v)
	return &a.refs[len(a.refs)-1]
}

func (a *nodeArena) call(v Call) *Call {
	if len(a.calls) == cap(a.calls) {
		a.calls = make([]Call, 0, arenaChunk)
	}
	a.calls = append(a.calls, v)
	return &a.calls[len(a.calls)-1]
}

func (a *nodeArena) assign(v Assign) *Assign {
	if len(a.assigns) == cap(a.assigns) {
		a.assigns = make([]Assign, 0, arenaChunk)
	}
	a.assigns = append(a.assigns, v)
	return &a.assigns[len(a.assigns)-1]
}

func (a *nodeArena) doNode(v Do) *Do {
	if len(a.dos) == cap(a.dos) {
		a.dos = make([]Do, 0, arenaChunk)
	}
	a.dos = append(a.dos, v)
	return &a.dos[len(a.dos)-1]
}

func (a *nodeArena) ifNode(v If) *If {
	if len(a.ifs) == cap(a.ifs) {
		a.ifs = make([]If, 0, arenaChunk)
	}
	a.ifs = append(a.ifs, v)
	return &a.ifs[len(a.ifs)-1]
}

func (a *nodeArena) decl(v Decl) *Decl {
	if len(a.decls) == cap(a.decls) {
		a.decls = make([]Decl, 0, arenaChunk)
	}
	a.decls = append(a.decls, v)
	return &a.decls[len(a.decls)-1]
}

// MustParse parses src and panics on error; for tests and examples with
// literal programs.
func MustParse(src string) *Program {
	prog, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return prog
}

func (p *Parser) cur() Token { return p.toks[p.pos] }
func (p *Parser) kind() Kind { return p.toks[p.pos].Kind }
func (p *Parser) advance() Token {
	t := p.toks[p.pos]
	if t.Kind != EOF {
		p.pos++
	}
	return t
}

func (p *Parser) expect(k Kind) (Token, error) {
	if p.kind() != k {
		return Token{}, errf(p.cur().Pos, "expected %s, found %s %q", k, p.kind(), p.cur().Text)
	}
	return p.advance(), nil
}

func (p *Parser) skipNewlines() {
	for p.kind() == NEWLINE {
		p.advance()
	}
}

func (p *Parser) program() (*Program, error) {
	prog := &Program{}
	p.skipNewlines()
	// Declarations: leading "real"/"integer" lines.
	for p.kind() == KwReal || p.kind() == KwInteger {
		decls, err := p.declLine()
		if err != nil {
			return nil, err
		}
		prog.Decls = append(prog.Decls, decls...)
		p.skipNewlines()
	}
	stmts, err := p.stmtList(EOF)
	if err != nil {
		return nil, err
	}
	prog.Stmts = stmts
	if _, err := p.expect(EOF); err != nil {
		return nil, err
	}
	return prog, nil
}

func (p *Parser) declLine() ([]*Decl, error) {
	p.advance() // real / integer
	var decls []*Decl
	for {
		name, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		d := p.arena.decl(Decl{Name: name.Text, Pos: name.Pos})
		if p.kind() == LPAREN {
			p.advance()
			for {
				n, err := p.expect(NUMBER)
				if err != nil {
					return nil, err
				}
				v, err2 := strconv.ParseInt(n.Text, 10, 64)
				if err2 != nil {
					return nil, errf(n.Pos, "bad extent %q", n.Text)
				}
				d.Dims = append(d.Dims, v)
				if p.kind() != COMMA {
					break
				}
				p.advance()
			}
			if _, err := p.expect(RPAREN); err != nil {
				return nil, err
			}
		}
		decls = append(decls, d)
		if p.kind() != COMMA {
			break
		}
		p.advance()
	}
	if _, err := p.expect(NEWLINE); err != nil {
		return nil, err
	}
	return decls, nil
}

// stmtList parses statements until one of the terminator kinds (which is
// not consumed).
func (p *Parser) stmtList(terms ...Kind) ([]Stmt, error) {
	isTerm := func(k Kind) bool {
		for _, t := range terms {
			if k == t {
				return true
			}
		}
		return false
	}
	var stmts []Stmt
	for {
		p.skipNewlines()
		if isTerm(p.kind()) {
			return stmts, nil
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
}

func (p *Parser) stmt() (Stmt, error) {
	switch p.kind() {
	case KwDo:
		return p.doStmt()
	case KwIf:
		return p.ifStmt()
	case IDENT:
		return p.assignStmt()
	}
	return nil, errf(p.cur().Pos, "expected statement, found %s %q", p.kind(), p.cur().Text)
}

func (p *Parser) doStmt() (Stmt, error) {
	tok := p.advance() // do
	v, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(ASSIGN); err != nil {
		return nil, err
	}
	lo, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(COMMA); err != nil {
		return nil, err
	}
	hi, err := p.expr()
	if err != nil {
		return nil, err
	}
	var step Expr
	if p.kind() == COMMA {
		p.advance()
		step, err = p.expr()
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(NEWLINE); err != nil {
		return nil, err
	}
	body, err := p.stmtList(KwEndDo)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(KwEndDo); err != nil {
		return nil, err
	}
	p.endOfStmt()
	return p.arena.doNode(Do{Var: v.Text, Lo: lo, Hi: hi, Step: step, Body: body, Pos: tok.Pos}), nil
}

func (p *Parser) ifStmt() (Stmt, error) {
	tok := p.advance() // if
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	if _, err := p.expect(KwThen); err != nil {
		return nil, err
	}
	if _, err := p.expect(NEWLINE); err != nil {
		return nil, err
	}
	thenArm, err := p.stmtList(KwElse, KwEndIf)
	if err != nil {
		return nil, err
	}
	var elseArm []Stmt
	if p.kind() == KwElse {
		p.advance()
		p.skipNewlines()
		elseArm, err = p.stmtList(KwEndIf)
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(KwEndIf); err != nil {
		return nil, err
	}
	p.endOfStmt()
	return p.arena.ifNode(If{Cond: cond, Then: thenArm, Else: elseArm, Pos: tok.Pos}), nil
}

func (p *Parser) endOfStmt() {
	if p.kind() == NEWLINE {
		p.advance()
	}
}

func (p *Parser) assignStmt() (Stmt, error) {
	lhs, err := p.arrayRef()
	if err != nil {
		return nil, err
	}
	tok, err := p.expect(ASSIGN)
	if err != nil {
		return nil, err
	}
	rhs, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(NEWLINE); err != nil {
		return nil, err
	}
	return p.arena.assign(Assign{LHS: lhs, RHS: rhs, Pos: tok.Pos}), nil
}

func (p *Parser) arrayRef() (*ArrayRef, error) {
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	ref := p.arena.ref(ArrayRef{Name: name.Text, Pos: name.Pos})
	if p.kind() == LPAREN {
		p.advance()
		for {
			sub, err := p.subscript()
			if err != nil {
				return nil, err
			}
			ref.Subs = append(ref.Subs, sub)
			if p.kind() != COMMA {
				break
			}
			p.advance()
		}
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
	}
	return ref, nil
}

func (p *Parser) subscript() (Subscript, error) {
	// ":" alone, "lo:hi", "lo:hi:step", ":hi", "lo:", or a single index.
	if p.kind() == COLON {
		p.advance()
		return p.rangeTail(nil)
	}
	first, err := p.expr()
	if err != nil {
		return Subscript{}, err
	}
	if p.kind() == COLON {
		p.advance()
		return p.rangeTail(first)
	}
	return Subscript{Index: first}, nil
}

func (p *Parser) rangeTail(lo Expr) (Subscript, error) {
	sub := Subscript{IsRange: true, Lo: lo}
	if p.kind() == COMMA || p.kind() == RPAREN {
		return sub, nil
	}
	hi, err := p.expr()
	if err != nil {
		return Subscript{}, err
	}
	sub.Hi = hi
	if p.kind() == COLON {
		p.advance()
		step, err := p.expr()
		if err != nil {
			return Subscript{}, err
		}
		sub.Step = step
	}
	return sub, nil
}

// expr implements precedence climbing: comparisons < additive <
// multiplicative < unary < primary.
func (p *Parser) expr() (Expr, error) {
	l, err := p.additive()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch p.kind() {
		case LT:
			op = "<"
		case GT:
			op = ">"
		case LE:
			op = "<="
		case GE:
			op = ">="
		case EQ:
			op = "=="
		case NE:
			op = "/="
		default:
			return l, nil
		}
		tok := p.advance()
		r, err := p.additive()
		if err != nil {
			return nil, err
		}
		l = p.arena.binop(BinOp{Op: op, L: l, R: r, Pos: tok.Pos})
	}
}

func (p *Parser) additive() (Expr, error) {
	l, err := p.multiplicative()
	if err != nil {
		return nil, err
	}
	for p.kind() == PLUS || p.kind() == MINUS {
		tok := p.advance()
		op := "+"
		if tok.Kind == MINUS {
			op = "-"
		}
		r, err := p.multiplicative()
		if err != nil {
			return nil, err
		}
		l = p.arena.binop(BinOp{Op: op, L: l, R: r, Pos: tok.Pos})
	}
	return l, nil
}

func (p *Parser) multiplicative() (Expr, error) {
	l, err := p.unary()
	if err != nil {
		return nil, err
	}
	for p.kind() == STAR || p.kind() == SLASH {
		tok := p.advance()
		op := "*"
		if tok.Kind == SLASH {
			op = "/"
		}
		r, err := p.unary()
		if err != nil {
			return nil, err
		}
		l = p.arena.binop(BinOp{Op: op, L: l, R: r, Pos: tok.Pos})
	}
	return l, nil
}

func (p *Parser) unary() (Expr, error) {
	if p.kind() == MINUS {
		tok := p.advance()
		e, err := p.unary()
		if err != nil {
			return nil, err
		}
		return p.arena.binop(BinOp{Op: "-", L: p.arena.num(Num{Val: 0, Pos: tok.Pos}), R: e, Pos: tok.Pos}), nil
	}
	if p.kind() == PLUS {
		p.advance()
		return p.unary()
	}
	return p.primary()
}

func (p *Parser) primary() (Expr, error) {
	switch p.kind() {
	case NUMBER:
		tok := p.advance()
		v, err := strconv.ParseInt(tok.Text, 10, 64)
		if err != nil {
			return nil, errf(tok.Pos, "bad number %q", tok.Text)
		}
		return p.arena.num(Num{Val: v, Pos: tok.Pos}), nil
	case LPAREN:
		p.advance()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
		return e, nil
	case IDENT:
		// Either an intrinsic call, an array reference, or a scalar.
		name := p.cur()
		if IsIntrinsic(name.Text) {
			p.advance()
			if _, err := p.expect(LPAREN); err != nil {
				return nil, err
			}
			call := p.arena.call(Call{Name: name.Text, Pos: name.Pos})
			for {
				a, err := p.expr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, a)
				if p.kind() != COMMA {
					break
				}
				p.advance()
			}
			if _, err := p.expect(RPAREN); err != nil {
				return nil, err
			}
			return call, nil
		}
		return p.arrayRef()
	}
	return nil, errf(p.cur().Pos, "expected expression, found %s %q", p.kind(), p.cur().Text)
}

// Intrinsic functions: array-shape intrinsics plus elementwise math.
var intrinsics = map[string]bool{
	"transpose": true, "spread": true, "sum": true,
	"cos": true, "sin": true, "exp": true, "log": true, "sqrt": true,
	"abs": true, "min": true, "max": true, "cshift": true,
}

// IsIntrinsic reports whether name is a recognized intrinsic function.
func IsIntrinsic(name string) bool { return intrinsics[name] }
