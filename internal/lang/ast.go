package lang

import (
	"fmt"
	"strings"
)

// Program is a parsed compilation unit: array declarations followed by
// executable statements.
type Program struct {
	Decls []*Decl
	Stmts []Stmt
}

// Decl declares a real or integer array (or scalar, with no dimensions).
// Dimensions are constant extents; index ranges are 1..extent, Fortran
// style.
type Decl struct {
	Name string
	Dims []int64
	Pos  Pos
}

// Rank returns the number of dimensions (0 for scalars).
func (d *Decl) Rank() int { return len(d.Dims) }

// Stmt is an executable statement.
type Stmt interface {
	stmtNode()
	String() string
}

// Assign is an assignment to a whole array, an array section, or a scalar.
type Assign struct {
	LHS *ArrayRef
	RHS Expr
	Pos Pos
}

// Do is a counted loop with constant-or-affine bounds (affine in enclosing
// loop induction variables).
type Do struct {
	Var  string
	Lo   Expr
	Hi   Expr
	Step Expr // nil means 1
	Body []Stmt
	Pos  Pos
}

// If is a two-armed conditional. The condition is a scalar expression;
// the alignment analysis only cares about the induced branch/merge data
// flow, not the predicate's value.
type If struct {
	Cond Expr
	Then []Stmt
	Else []Stmt
	Pos  Pos
}

func (*Assign) stmtNode() {}
func (*Do) stmtNode()     {}
func (*If) stmtNode()     {}

// Expr is an expression.
type Expr interface {
	exprNode()
	String() string
}

// Num is an integer literal.
type Num struct {
	Val int64
	Pos Pos
}

// ArrayRef is a reference to a declared array, optionally subscripted.
// An empty Subs means the whole array. A scalar variable is an ArrayRef
// with rank 0.
type ArrayRef struct {
	Name string
	Subs []Subscript
	Pos  Pos
}

// BinOp is a binary operation. Elementwise when either side is an array.
type BinOp struct {
	Op   string // "+", "-", "*", "/", "<", ">", "<=", ">=", "==", "/="
	L, R Expr
	Pos  Pos
}

// Call is an intrinsic call: transpose(A), spread(A, dim, ncopies),
// sum(A, dim), or an elementwise math intrinsic (cos, sin, exp, sqrt,
// abs...).
type Call struct {
	Name string
	Args []Expr
	Pos  Pos
}

func (*Num) exprNode()      {}
func (*ArrayRef) exprNode() {}
func (*BinOp) exprNode()    {}
func (*Call) exprNode()     {}

// Subscript is one dimension's subscript in an array reference.
type Subscript struct {
	// IsRange selects between a single index (Index only) and a section
	// triplet Lo:Hi:Step.
	IsRange bool
	Index   Expr // single index when !IsRange
	Lo, Hi  Expr // nil means the declared bound (":" shorthand)
	Step    Expr // nil means 1
}

func (s Subscript) String() string {
	if !s.IsRange {
		return s.Index.String()
	}
	var b strings.Builder
	if s.Lo != nil {
		b.WriteString(s.Lo.String())
	}
	b.WriteString(":")
	if s.Hi != nil {
		b.WriteString(s.Hi.String())
	}
	if s.Step != nil {
		b.WriteString(":" + s.Step.String())
	}
	return b.String()
}

func (n *Num) String() string { return fmt.Sprintf("%d", n.Val) }

func (r *ArrayRef) String() string {
	if len(r.Subs) == 0 {
		return r.Name
	}
	parts := make([]string, len(r.Subs))
	for i, s := range r.Subs {
		parts[i] = s.String()
	}
	return r.Name + "(" + strings.Join(parts, ",") + ")"
}

func (b *BinOp) String() string {
	return "(" + b.L.String() + " " + b.Op + " " + b.R.String() + ")"
}

func (c *Call) String() string {
	parts := make([]string, len(c.Args))
	for i, a := range c.Args {
		parts[i] = a.String()
	}
	return c.Name + "(" + strings.Join(parts, ",") + ")"
}

func (a *Assign) String() string {
	return a.LHS.String() + " = " + a.RHS.String()
}

func (d *Do) String() string {
	s := "do " + d.Var + " = " + d.Lo.String() + ", " + d.Hi.String()
	if d.Step != nil {
		s += ", " + d.Step.String()
	}
	return s + " ... enddo"
}

func (f *If) String() string {
	return "if (" + f.Cond.String() + ") then ... endif"
}

// String renders the program's declarations and statement skeleton.
func (p *Program) String() string {
	var b strings.Builder
	for _, d := range p.Decls {
		fmt.Fprintf(&b, "real %s", d.Name)
		if len(d.Dims) > 0 {
			parts := make([]string, len(d.Dims))
			for i, x := range d.Dims {
				parts[i] = fmt.Sprintf("%d", x)
			}
			fmt.Fprintf(&b, "(%s)", strings.Join(parts, ","))
		}
		b.WriteString("\n")
	}
	var walk func(ss []Stmt, indent string)
	walk = func(ss []Stmt, indent string) {
		for _, s := range ss {
			switch st := s.(type) {
			case *Do:
				fmt.Fprintf(&b, "%sdo %s = %s, %s", indent, st.Var, st.Lo, st.Hi)
				if st.Step != nil {
					fmt.Fprintf(&b, ", %s", st.Step)
				}
				b.WriteString("\n")
				walk(st.Body, indent+"  ")
				b.WriteString(indent + "enddo\n")
			case *If:
				fmt.Fprintf(&b, "%sif (%s) then\n", indent, st.Cond)
				walk(st.Then, indent+"  ")
				if len(st.Else) > 0 {
					b.WriteString(indent + "else\n")
					walk(st.Else, indent+"  ")
				}
				b.WriteString(indent + "endif\n")
			default:
				fmt.Fprintf(&b, "%s%s\n", indent, s)
			}
		}
	}
	walk(p.Stmts, "")
	return b.String()
}
