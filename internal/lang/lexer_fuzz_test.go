package lang

import (
	"math/rand"
	"strings"
	"testing"
)

// TestLexerNeverPanics feeds random byte soup to the lexer and parser;
// they must return errors, never panic.
func TestLexerNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	alphabet := "abkz019(),:=+-*/<>! \n\tendoifthralspr"
	for trial := 0; trial < 500; trial++ {
		var b strings.Builder
		n := rng.Intn(120)
		for i := 0; i < n; i++ {
			b.WriteByte(alphabet[rng.Intn(len(alphabet))])
		}
		src := b.String()
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on %q: %v", src, r)
				}
			}()
			_, _ = Parse(src)
		}()
	}
}

// FuzzLexer is the native fuzz entry over the lexer and parser: any
// byte string must lex and parse to either a program or an error —
// never a panic — and every program that parses must round-trip through
// its String rendering. CI runs this for a short smoke
// (-fuzz=FuzzLexer -fuzztime=10s); longer local runs grow the corpus.
func FuzzLexer(f *testing.F) {
	f.Add("real a(10)\na = a + 1\n")
	f.Add("real a(100,100), v(200)\ndo k = 1, 100\n  a(k,1:100) = a(k,1:100) + v(k:k+99)\nenddo\n")
	f.Add("real t(100), b(100,200)\ndo k = 1, 200\n  t = cos(t)\n  b = b + spread(t, 2, 200)\nenddo\n")
	f.Add("real a(10), b(10)\nif (1 < 2) then\n  a = b\nelse\n  b = a\nendif\n")
	f.Add("do k = 1, 10\nenddo\n")
	f.Add("real a(4)\na = transpose(a) ~ 1\n")
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src) // must not panic
		if err != nil {
			return
		}
		// Accepted programs must round-trip: the rendering reparses to the
		// same shape.
		p2, err := Parse(prog.String())
		if err != nil {
			t.Fatalf("accepted program failed to reparse:\n%s\nerr: %v", prog, err)
		}
		if len(prog.Stmts) != len(p2.Stmts) || len(prog.Decls) != len(p2.Decls) {
			t.Errorf("round trip changed shape:\n%s\nvs\n%s", prog, p2)
		}
	})
}

// TestParserRoundTrips: parse → String → parse yields a structurally
// equivalent program for representative sources.
func TestParserRoundTrips(t *testing.T) {
	srcs := []string{
		"real a(10)\na = a + 1\n",
		"real a(100,100), v(200)\ndo k = 1, 100\n  a(k,1:100) = a(k,1:100) + v(k:k+99)\nenddo\n",
		"real t(100), b(100,200)\ndo k = 1, 200\n  t = cos(t)\n  b = b + spread(t, 2, 200)\nenddo\n",
		"real a(10), b(10)\nif (1 < 2) then\n  a = b\nelse\n  b = a\nendif\n",
	}
	for _, src := range srcs {
		p1, err := Parse(src)
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		p2, err := Parse(p1.String())
		if err != nil {
			t.Fatalf("reparse of %q: %v", p1.String(), err)
		}
		if len(p1.Stmts) != len(p2.Stmts) || len(p1.Decls) != len(p2.Decls) {
			t.Errorf("round trip changed shape:\n%s\nvs\n%s", p1, p2)
		}
	}
}

// TestLexerPositions: error positions point at the offending token.
func TestLexerPositions(t *testing.T) {
	_, err := Parse("real A(10)\nA = A ~ 1\n")
	if err == nil {
		t.Fatal("expected error")
	}
	le, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if le.Pos.Line != 2 {
		t.Errorf("error line = %d, want 2", le.Pos.Line)
	}
}
