// Package lang implements the front end for a small Fortran-90-flavored
// data-parallel array language: lexer, parser, AST, and semantic analysis.
// The language covers exactly the constructs the paper's alignment theory
// handles: whole-array and array-section operations, elementwise
// arithmetic and intrinsics, transpose, spread, reductions, do loops with
// affine bounds, and if/else (which induce branch and merge nodes in the
// ADG). Programs in this language are the inputs to ADG construction.
package lang

import "fmt"

// Kind classifies a token.
type Kind int

// Token kinds.
const (
	EOF Kind = iota
	IDENT
	NUMBER
	// Punctuation and operators.
	LPAREN  // (
	RPAREN  // )
	COMMA   // ,
	COLON   // :
	ASSIGN  // =
	PLUS    // +
	MINUS   // -
	STAR    // *
	SLASH   // /
	LT      // <
	GT      // >
	LE      // <=
	GE      // >=
	EQ      // ==
	NE      // /=
	NEWLINE // statement separator
	// Keywords.
	KwReal
	KwInteger
	KwDo
	KwEndDo
	KwIf
	KwThen
	KwElse
	KwEndIf
	KwEnd
	KwTemplate
	KwAlign
	KwWith
)

var kindNames = map[Kind]string{
	EOF: "EOF", IDENT: "identifier", NUMBER: "number",
	LPAREN: "(", RPAREN: ")", COMMA: ",", COLON: ":", ASSIGN: "=",
	PLUS: "+", MINUS: "-", STAR: "*", SLASH: "/",
	LT: "<", GT: ">", LE: "<=", GE: ">=", EQ: "==", NE: "/=",
	NEWLINE: "newline",
	KwReal:  "real", KwInteger: "integer", KwDo: "do", KwEndDo: "enddo",
	KwIf: "if", KwThen: "then", KwElse: "else", KwEndIf: "endif",
	KwEnd: "end", KwTemplate: "template", KwAlign: "align", KwWith: "with",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

var keywords = map[string]Kind{
	"real": KwReal, "integer": KwInteger,
	"do": KwDo, "enddo": KwEndDo,
	"if": KwIf, "then": KwThen, "else": KwElse, "endif": KwEndIf,
	"end": KwEnd, "template": KwTemplate, "align": KwAlign, "with": KwWith,
}

// Token is one lexical token with its source position.
type Token struct {
	Kind Kind
	Text string
	Pos  Pos
}

// Pos is a line/column source position (1-based).
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Error is a front-end diagnostic tied to a source position.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func errf(pos Pos, format string, args ...any) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
