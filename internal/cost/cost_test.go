package cost

import (
	"strings"
	"testing"

	"repro/internal/adg"
	"repro/internal/align"
	"repro/internal/build"
	"repro/internal/expr"
	"repro/internal/lang"
)

func alignedAssignment(t *testing.T, src string, opts align.Options) (*adg.Graph, *adg.Assignment) {
	t.Helper()
	info, err := lang.Analyze(lang.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	g, err := build.Build(info)
	if err != nil {
		t.Fatal(err)
	}
	res, err := align.Align(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	return g, res.Assignment
}

func TestExactZeroForAligned(t *testing.T) {
	g, asg := alignedAssignment(t, `
real A(100), B(100)
A(1:99) = A(1:99) + B(2:100)
`, align.Options{})
	b := Exact(g, asg)
	if b.Total() != 0 {
		t.Errorf("aligned program has cost %s", b)
	}
}

func TestIdentityAssignmentShift(t *testing.T) {
	// Under the identity assignment the Example-1 program is consistent
	// except for the section offsets baked into the section nodes, which
	// the identity ignores — force a mismatch manually instead: move one
	// source by 3 and verify the shift volume is weight × 3.
	info, _ := lang.Analyze(lang.MustParse(`
real A(100), B(100)
A = A + B
`))
	g, _ := build.Build(info)
	asg := adg.NewAssignment(g)
	for _, n := range g.Nodes {
		if n.Kind == adg.KindSource && n.Label == "b" {
			a := asg.Of(n.Out[0])
			a.Offset[0] = expr.Const(3)
			asg.Set(n.Out[0], a)
		}
	}
	b := Exact(g, asg)
	if b.Shift != 300 {
		t.Errorf("shift = %d, want 300 (100 elements × distance 3)", b.Shift)
	}
	if b.ShiftEvents != 1 {
		t.Errorf("shift events = %d, want 1", b.ShiftEvents)
	}
}

func TestGeneralOnAxisMismatch(t *testing.T) {
	info, _ := lang.Analyze(lang.MustParse(`
real A(10,10), B(10,10)
A = A + B
`))
	g, _ := build.Build(info)
	asg := adg.NewAssignment(g)
	for _, n := range g.Nodes {
		if n.Kind == adg.KindSource && n.Label == "b" {
			a := asg.Of(n.Out[0])
			a.AxisMap = []int{1, 0} // transposed axis map
			asg.Set(n.Out[0], a)
		}
	}
	b := Exact(g, asg)
	if b.General != 100 {
		t.Errorf("general = %d, want 100", b.General)
	}
}

func TestBroadcastAccounting(t *testing.T) {
	info, _ := lang.Analyze(lang.MustParse(`
real A(10), B(10)
A = A + B
`))
	g, _ := build.Build(info)
	asg := adg.NewAssignment(g)
	// Mark the op's B input replicated on axis 0 while B's source is not.
	for _, n := range g.Nodes {
		if n.Kind == adg.KindOp {
			a := asg.Of(n.In[1])
			a.Replicated[0] = true
			asg.Set(n.In[1], a)
		}
	}
	b := Exact(g, asg)
	if b.Broadcast != 10 || b.BroadcastEvents != 1 {
		t.Errorf("broadcast = %d (%d events), want 10 (1)", b.Broadcast, b.BroadcastEvents)
	}
}

func TestMobileCostPerIteration(t *testing.T) {
	// A static assignment of Figure 1 accumulates shift cost across all
	// 100 iterations; verify the per-iteration structure (events = number
	// of misaligned edge-iterations).
	info, _ := lang.Analyze(lang.MustParse(`
real A(100,100), V(200)
do k = 1, 100
  A(k,1:100) = A(k,1:100) + V(k:k+99)
enddo
`))
	g, _ := build.Build(info)
	as, err := align.AxisStride(g)
	if err != nil {
		t.Fatal(err)
	}
	repl := align.NoReplication(g)
	static, err := align.Offsets(g, as, repl, align.OffsetOptions{Strategy: align.StrategyFixed, M: 3, Static: true})
	if err != nil {
		t.Fatal(err)
	}
	r := &align.Result{Graph: g, AxisStride: as, Repl: repl, Offset: static}
	b := Exact(g, r.BuildAssignment())
	if b.Shift == 0 {
		t.Fatal("static Figure 1 has no shift cost")
	}
	if b.ShiftEvents < 100 {
		t.Errorf("shift events = %d, want >= 100 (per-iteration realignment)", b.ShiftEvents)
	}
}

func TestReport(t *testing.T) {
	g, asg := alignedAssignment(t, `
real A(100), B(100)
A(1:99) = A(1:99) + B(2:100)
`, align.Options{})
	rep := Report(g, asg, 5)
	if !strings.Contains(rep, "edge") {
		t.Errorf("report header missing: %q", rep)
	}
}
