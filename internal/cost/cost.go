// Package cost evaluates the realignment communication cost of an
// alignment assignment on an ADG, per the model of §2.3: the cost of an
// edge is the data weight times the distance between its two port
// positions, summed over the edge's iteration space. Axis and stride
// mismatches are charged under the discrete metric (general
// communication); offset mismatches under the grid metric (shifts);
// edges into replicated ports are broadcasts.
package cost

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/adg"
)

// Breakdown decomposes the total realignment cost of a program.
type Breakdown struct {
	// General is the element volume moved by general communication
	// (axis or stride mismatch; discrete metric × weight).
	General int64
	// GeneralEvents counts edge-iterations incurring general
	// communication (the paper's "general communications per iteration").
	GeneralEvents int64
	// Shift is the weighted grid-metric (L1) offset distance.
	Shift int64
	// ShiftEvents counts edge-iterations with a nonzero offset shift.
	ShiftEvents int64
	// Broadcast is the element volume sent into replicated ports from
	// non-replicated ports.
	Broadcast int64
	// BroadcastEvents counts edge-iterations incurring a broadcast.
	BroadcastEvents int64
}

// Total returns a single scalar summary: element·hops of shift plus
// element volume of general and broadcast communication.
func (b Breakdown) Total() int64 { return b.General + b.Shift + b.Broadcast }

// Add accumulates another breakdown.
func (b *Breakdown) Add(o Breakdown) {
	b.General += o.General
	b.GeneralEvents += o.GeneralEvents
	b.Shift += o.Shift
	b.ShiftEvents += o.ShiftEvents
	b.Broadcast += o.Broadcast
	b.BroadcastEvents += o.BroadcastEvents
}

func (b Breakdown) String() string {
	return fmt.Sprintf("general=%d (%d events), shift=%d (%d events), broadcast=%d (%d events), total=%d",
		b.General, b.GeneralEvents, b.Shift, b.ShiftEvents,
		b.Broadcast, b.BroadcastEvents, b.Total())
}

// Exact evaluates the full program cost of an assignment by enumerating
// every edge's iteration space.
func Exact(g *adg.Graph, asg *adg.Assignment) Breakdown {
	var total Breakdown
	for _, e := range g.Edges {
		total.Add(EdgeCost(e, asg))
	}
	return total
}

// EdgeCost evaluates one edge's cost contribution, scaled by the edge's
// §6 control weight (expected executions of conditional arms).
func EdgeCost(e *adg.Edge, asg *adg.Assignment) Breakdown {
	src := asg.Of(e.Src)
	dst := asg.Of(e.Dst)
	w := e.Weight()
	var b Breakdown
	scale := func(v int64) int64 {
		if e.Control == 1 {
			return v
		}
		return int64(e.Control * float64(v))
	}
	e.Space().Each(func(env map[string]int64) bool {
		wt := w.Eval(env)
		if wt == 0 {
			return true
		}
		// Replication: tail replicated covers any head; head replicated
		// with non-replicated tail is a broadcast (§5.1).
		bcast := false
		for t := range dst.Replicated {
			if dst.Replicated[t] && !src.Replicated[t] {
				bcast = true
			}
		}
		if bcast {
			b.Broadcast += scale(wt)
			b.BroadcastEvents++
			return true
		}
		if axisStrideMismatch(src, dst, env) {
			b.General += scale(wt)
			b.GeneralEvents++
			return true
		}
		var d int64
		for t := range src.Offset {
			if src.Replicated[t] || dst.Replicated[t] {
				continue
			}
			diff := src.Offset[t].Eval(env) - dst.Offset[t].Eval(env)
			if diff < 0 {
				diff = -diff
			}
			d += diff
		}
		if d > 0 {
			b.Shift += scale(wt * d)
			b.ShiftEvents++
		}
		return true
	})
	return b
}

func axisStrideMismatch(src, dst adg.Alignment, env map[string]int64) bool {
	if len(src.AxisMap) != len(dst.AxisMap) {
		return true
	}
	for d := range src.AxisMap {
		if src.AxisMap[d] != dst.AxisMap[d] {
			return true
		}
		if src.Stride[d].Eval(env) != dst.Stride[d].Eval(env) {
			return true
		}
	}
	return false
}

// Report renders a per-edge cost table for the costliest edges.
func Report(g *adg.Graph, asg *adg.Assignment, top int) string {
	type row struct {
		e *adg.Edge
		b Breakdown
	}
	rows := make([]row, 0, len(g.Edges))
	for _, e := range g.Edges {
		b := EdgeCost(e, asg)
		if b.Total() > 0 {
			rows = append(rows, row{e, b})
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].b.Total() > rows[j].b.Total() })
	if top > 0 && len(rows) > top {
		rows = rows[:top]
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-6s %-30s %-30s %s\n", "edge", "from", "to", "cost")
	for _, r := range rows {
		from := fmt.Sprintf("%s %q", r.e.Src.Node.Kind, r.e.Src.Node.Label)
		to := fmt.Sprintf("%s %q", r.e.Dst.Node.Kind, r.e.Dst.Node.Label)
		fmt.Fprintf(&sb, "e%-5d %-30s %-30s %s\n", r.e.ID, from, to, r.b)
	}
	return sb.String()
}
