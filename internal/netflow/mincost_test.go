package netflow

import (
	"math/rand"
	"testing"
)

// bruteForcePotentials minimizes the DiffTerm objective by exhaustive
// search over y ∈ [-span, span]^n with y[0] = 0 (the objective is
// translation invariant, so anchoring loses nothing).
func bruteForcePotentials(n int, terms []DiffTerm, span int64) float64 {
	y := make([]int64, n)
	best := objOf(y, terms)
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			if o := objOf(y, terms); o < best {
				best = o
			}
			return
		}
		for v := -span; v <= span; v++ {
			y[i] = v
			rec(i + 1)
		}
	}
	rec(1)
	return best
}

func objOf(y []int64, terms []DiffTerm) float64 {
	o := 0.0
	for _, t := range terms {
		s := y[t.U] - y[t.V] + t.D
		if s < 0 {
			s = -s
		}
		o += t.W * float64(s)
	}
	return o
}

// TestSolvePotentialsBruteForce checks optimality against exhaustive
// search on small random instances, including disconnected graphs,
// parallel terms, and zero-weight terms.
func TestSolvePotentialsBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		n := 2 + rng.Intn(4)
		nt := 1 + rng.Intn(6)
		terms := make([]DiffTerm, nt)
		for i := range terms {
			terms[i] = DiffTerm{
				U: rng.Intn(n),
				V: rng.Intn(n),
				W: float64(rng.Intn(4)),
				D: int64(rng.Intn(7) - 3),
			}
		}
		y, obj, ok := SolvePotentials(n, terms)
		if !ok {
			t.Fatalf("trial %d: SolvePotentials not ok on %+v", trial, terms)
		}
		// Self-reported objective must match the returned potentials
		// (terms with U == V contribute constants the caller owns, so
		// add them to both sides consistently: SolvePotentials skips
		// them, and so must the check).
		var selfObj float64
		for _, tm := range terms {
			if tm.U == tm.V {
				continue
			}
			s := y[tm.U] - y[tm.V] + tm.D
			if s < 0 {
				s = -s
			}
			selfObj += tm.W * float64(s)
		}
		if diff := selfObj - obj; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("trial %d: reported objective %g != objective of returned y %g", trial, obj, selfObj)
		}
		noSelf := terms[:0:0]
		var selfConst float64
		for _, tm := range terms {
			if tm.U == tm.V {
				d := tm.D
				if d < 0 {
					d = -d
				}
				selfConst += tm.W * float64(d)
				continue
			}
			noSelf = append(noSelf, tm)
		}
		want := bruteForcePotentials(n, noSelf, 4)
		if obj > want+1e-9 {
			t.Fatalf("trial %d: objective %g > brute-force optimum %g (terms %+v, const %g)",
				trial, obj, want, terms, selfConst)
		}
	}
}

// TestSolvePotentialsDeterministic pins the exact potentials returned
// for a fixed instance: repeated solves must agree byte-for-byte.
func TestSolvePotentialsDeterministic(t *testing.T) {
	terms := []DiffTerm{
		{U: 0, V: 1, W: 2, D: 3}, {U: 1, V: 2, W: 1, D: -1},
		{U: 2, V: 0, W: 3, D: 0}, {U: 0, V: 2, W: 1, D: 2},
		{U: 3, V: 1, W: 2, D: -2},
	}
	y0, obj0, ok := SolvePotentials(4, terms)
	if !ok {
		t.Fatal("not ok")
	}
	for i := 0; i < 20; i++ {
		y, obj, ok := SolvePotentials(4, terms)
		if !ok || obj != obj0 {
			t.Fatalf("run %d: obj %g ok=%v, want %g", i, obj, ok, obj0)
		}
		for v := range y {
			if y[v] != y0[v] {
				t.Fatalf("run %d: y[%d] = %d, want %d", i, v, y[v], y0[v])
			}
		}
	}
}
