package netflow

import (
	"math/rand"
	"testing"
)

func TestMaxFlowSimple(t *testing.T) {
	// s→a (3), s→b (2), a→t (2), b→t (3), a→b (1): max flow 5? No:
	// s→a 3, a→t 2, a→b 1, s→b 2, b→t 3 → flow = 2 + min(2+1,3)=... = 5.
	g := NewGraph(4)
	s, a, b, tk := 0, 1, 2, 3
	g.AddEdge(s, a, 3)
	g.AddEdge(s, b, 2)
	g.AddEdge(a, tk, 2)
	g.AddEdge(b, tk, 3)
	g.AddEdge(a, b, 1)
	r := g.MaxFlow(s, tk)
	if r.Value != 5 {
		t.Errorf("max flow = %d, want 5", r.Value)
	}
}

func TestMaxFlowDisconnected(t *testing.T) {
	g := NewGraph(3)
	g.AddEdge(0, 1, 10)
	r := g.MaxFlow(0, 2)
	if r.Value != 0 {
		t.Errorf("flow to unreachable sink = %d", r.Value)
	}
	side := r.SourceSide()
	if !side[0] || !side[1] || side[2] {
		t.Errorf("source side wrong: %v", side)
	}
}

func TestMinCutEdges(t *testing.T) {
	// Classic: bottleneck in the middle.
	g := NewGraph(4)
	g.AddEdge(0, 1, 100)
	g.AddEdge(1, 2, 7)
	g.AddEdge(2, 3, 100)
	r := g.MaxFlow(0, 3)
	if r.Value != 7 {
		t.Fatalf("flow = %d", r.Value)
	}
	cut := r.MinCutEdges()
	if len(cut) != 1 || cut[0].From != 1 || cut[0].To != 2 || cut[0].Capacity != 7 {
		t.Errorf("cut = %+v", cut)
	}
}

func TestInfEdges(t *testing.T) {
	// Forced labels via Inf edges: vertex 1 forced source side, vertex 2
	// forced sink side; the finite edge between them must be cut.
	g := NewGraph(4)
	s, u, v, tk := 0, 1, 2, 3
	g.AddEdge(s, u, Inf)
	g.AddEdge(v, tk, Inf)
	g.AddEdge(u, v, 42)
	r := g.MaxFlow(s, tk)
	if r.Value != 42 {
		t.Fatalf("flow = %d, want 42", r.Value)
	}
	side := r.SourceSide()
	if !side[u] || side[v] {
		t.Errorf("forced labels violated: %v", side)
	}
}

// bruteMinCut enumerates all 2^n partitions.
func bruteMinCut(n int, edges []LPEdge, s, t int) int64 {
	best := int64(1) << 62
	for mask := 0; mask < 1<<n; mask++ {
		if mask&(1<<s) == 0 || mask&(1<<t) != 0 {
			continue
		}
		var c int64
		for _, e := range edges {
			if mask&(1<<e.From) != 0 && mask&(1<<e.To) == 0 {
				c += e.Capacity
			}
		}
		if c < best {
			best = c
		}
	}
	return best
}

// Property: max-flow = min-cut on random graphs (brute-forced).
func TestMaxFlowMinCutProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		n := 4 + rng.Intn(4)
		var edges []LPEdge
		for i := 0; i < n*2; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			edges = append(edges, LPEdge{From: u, To: v, Capacity: int64(rng.Intn(20) + 1)})
		}
		s, tk := 0, n-1
		g := NewGraph(n)
		for _, e := range edges {
			g.AddEdge(e.From, e.To, e.Capacity)
		}
		r := g.MaxFlow(s, tk)
		want := bruteMinCut(n, edges, s, tk)
		if r.Value != want {
			t.Fatalf("trial %d: flow %d != brute min cut %d", trial, r.Value, want)
		}
		// The reported cut must have capacity equal to the flow.
		var cutCap int64
		for _, ce := range r.MinCutEdges() {
			cutCap += ce.Capacity
		}
		if cutCap != r.Value {
			t.Fatalf("trial %d: cut capacity %d != flow %d", trial, cutCap, r.Value)
		}
	}
}

// TestMinCutLPAgainstDinic cross-checks the LP formulation (§5.2's noted
// alternative) against Dinic on random graphs.
func TestMinCutLPAgainstDinic(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 30; trial++ {
		n := 4 + rng.Intn(3)
		var edges []LPEdge
		for i := 0; i < n+rng.Intn(n); i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			edges = append(edges, LPEdge{From: u, To: v, Capacity: int64(rng.Intn(15) + 1)})
		}
		g := NewGraph(n)
		for _, e := range edges {
			g.AddEdge(e.From, e.To, e.Capacity)
		}
		r := g.MaxFlow(0, n-1)
		lpVal, _, err := MinCutLP(n, edges, 0, n-1)
		if err != nil {
			t.Fatalf("trial %d: MinCutLP: %v", trial, err)
		}
		if lpVal != r.Value {
			t.Errorf("trial %d: LP min cut %d != Dinic %d", trial, lpVal, r.Value)
		}
	}
}

func TestEdgeFlowConservation(t *testing.T) {
	g := NewGraph(5)
	ids := []int{
		g.AddEdge(0, 1, 10),
		g.AddEdge(0, 2, 10),
		g.AddEdge(1, 3, 4),
		g.AddEdge(2, 3, 9),
		g.AddEdge(3, 4, 12),
	}
	r := g.MaxFlow(0, 4)
	if r.Value != 12 {
		t.Fatalf("flow = %d, want 12", r.Value)
	}
	// Conservation at vertex 3: in = out.
	in := r.EdgeFlow(ids[2]) + r.EdgeFlow(ids[3])
	out := r.EdgeFlow(ids[4])
	if in != out {
		t.Errorf("conservation violated: in %d out %d", in, out)
	}
}
