package netflow

import (
	"container/heap"
	"math"
)

// DiffTerm is one weighted absolute-difference term W·|y[U] − y[V] + D|
// of a potential-optimization objective (SolvePotentials).
type DiffTerm struct {
	U, V int
	W    float64 // weight ≥ 0
	D    int64   // constant displacement
}

// SolvePotentials minimizes Σ_t W_t·|y[U_t] − y[V_t] + D_t| over integer
// node potentials y[0..n), returning the minimizing potentials and the
// optimal objective value.
//
// This is the network-dual fast path of the offset RLP (§4 of the
// paper): when every edge term couples exactly two offsets with unit
// coefficients, the LP dual is a min-cost circulation — maximize
// Σ D_t·g_t over flows g_t ∈ [−W_t, W_t] conserving at every node — and
// the node potentials of the successive-shortest-path algorithm are an
// optimal primal solution. All arithmetic on potentials is integral
// (the D_t are integers), so the result is exactly reproducible.
//
// Ties in the shortest-path search break by node and arc insertion
// order, making the returned potentials deterministic for a fixed term
// slice. The solution is self-certifying: ok is true only when the
// primal objective of y equals the dual circulation value (strong
// duality), so a caller can fall back to a general LP whenever ok is
// false (which a numerically pathological instance could trigger, never
// a well-formed one).
func SolvePotentials(n int, terms []DiffTerm) (y []int64, obj float64, ok bool) {
	y, obj, _, ok = SolvePotentialsCounted(n, terms)
	return y, obj, ok
}

// SolvePotentialsCounted is SolvePotentials reporting the number of
// augmenting-path iterations performed (the flow solver's analogue of a
// simplex pivot count, for effort accounting).
func SolvePotentialsCounted(n int, terms []DiffTerm) (y []int64, obj float64, augments int64, ok bool) {
	const capEps = 1e-12
	type arc struct {
		to   int
		cap  float64 // residual capacity
		cost int64   // cost per unit in residual direction
	}
	// Two directed arcs per term (g = f_fwd − f_bwd), each followed by
	// its residual twin at arc^1.
	arcs := make([]arc, 0, 4*len(terms))
	head := make([][]int32, n)
	addArc := func(u, v int, capacity float64, cost int64) {
		head[u] = append(head[u], int32(len(arcs)))
		arcs = append(arcs, arc{to: v, cap: capacity, cost: cost})
		head[v] = append(head[v], int32(len(arcs)))
		arcs = append(arcs, arc{to: u, cap: 0, cost: -cost})
	}
	excess := make([]float64, n)
	for _, t := range terms {
		if t.W <= capEps || t.U == t.V {
			continue // constant contribution; caller accounts for it
		}
		// Dual arc pair: minimize Σ(−D)·f_fwd + D·f_bwd. Saturate the
		// negative-cost member up front so every residual cost is ≥ 0
		// under the zero potential, leaving node excess to drain.
		if t.D > 0 {
			addArc(t.U, t.V, 0, -t.D) // saturated forward
			arcs[len(arcs)-1].cap = t.W
			excess[t.V] += t.W
			excess[t.U] -= t.W
			addArc(t.V, t.U, t.W, t.D)
		} else {
			addArc(t.U, t.V, t.W, -t.D)
			if t.D < 0 {
				addArc(t.V, t.U, 0, t.D) // saturated backward
				arcs[len(arcs)-1].cap = t.W
				excess[t.U] += t.W
				excess[t.V] -= t.W
			} else {
				addArc(t.V, t.U, t.W, t.D)
			}
		}
	}

	pi := make([]int64, n)
	dist := make([]int64, n)
	reached := make([]bool, n)
	prevArc := make([]int32, n)
	const unreached = math.MaxInt64

	// Successive shortest paths: route excess to deficit along reduced-
	// cost-shortest residual paths, keeping all reduced costs ≥ 0 by the
	// potential update π_v += min(dist_v, dist_t).
	maxAug := int64(8*len(arcs) + 16)
	for ; ; augments++ {
		// Lowest-index source with positive excess (deterministic).
		s := -1
		for v := 0; v < n; v++ {
			if excess[v] > 1e-9 {
				s = v
				break
			}
		}
		if s < 0 {
			break
		}
		if augments >= maxAug {
			return nil, 0, augments, false
		}
		// Dijkstra from s on reduced costs.
		for v := range dist {
			dist[v] = unreached
			reached[v] = false
			prevArc[v] = -1
		}
		dist[s] = 0
		pq := &mcHeap{{0, int32(s)}}
		t := -1
		for pq.Len() > 0 {
			it := heap.Pop(pq).(mcItem)
			v := int(it.node)
			if reached[v] {
				continue
			}
			reached[v] = true
			if excess[v] < -1e-9 {
				t = v
				break
			}
			for _, ai := range head[v] {
				a := arcs[ai]
				if a.cap <= capEps || reached[a.to] {
					continue
				}
				nd := dist[v] + a.cost + pi[v] - pi[a.to]
				if nd < dist[a.to] {
					dist[a.to] = nd
					prevArc[a.to] = ai
					heap.Push(pq, mcItem{nd, int32(a.to)})
				}
			}
		}
		if t < 0 {
			return nil, 0, augments, false // excess with no reachable deficit
		}
		for v := range pi {
			if dist[v] < dist[t] {
				pi[v] += dist[v]
			} else {
				pi[v] += dist[t]
			}
		}
		// Augment by the path bottleneck, capped by the endpoints.
		amt := excess[s]
		if d := -excess[t]; d < amt {
			amt = d
		}
		for v := t; v != s; {
			a := prevArc[v]
			if arcs[a].cap < amt {
				amt = arcs[a].cap
			}
			v = arcs[a^1].to
		}
		for v := t; v != s; {
			a := prevArc[v]
			arcs[a].cap -= amt
			arcs[a^1].cap += amt
			v = arcs[a^1].to
		}
		excess[s] -= amt
		excess[t] += amt
	}

	// Optimal primal potentials are the negated dual potentials.
	y = make([]int64, n)
	for v := range y {
		y[v] = -pi[v]
	}
	// Strong-duality certificate: primal objective at y must equal the
	// circulation value Σ D_t·g_t. Residual caps recover each g.
	var primal, dual float64
	ai := 0
	for _, t := range terms {
		if t.W <= capEps || t.U == t.V {
			continue
		}
		span := y[t.U] - y[t.V] + t.D
		if span < 0 {
			span = -span
		}
		primal += t.W * float64(span)
		fFwd := arcs[ai+1].cap // flow on u→v = residual of its twin
		fBwd := arcs[ai+2+1].cap
		dual += float64(t.D) * (fFwd - fBwd)
		ai += 4
	}
	if math.Abs(primal-dual) > 1e-6*(1+math.Abs(primal)) {
		return nil, 0, augments, false
	}
	return y, primal, augments, true
}

// mcItem is a Dijkstra frontier entry; ties break by node index so the
// search order (and with it the chosen optimum) is deterministic.
type mcItem struct {
	dist int64
	node int32
}

type mcHeap []mcItem

func (h mcHeap) Len() int { return len(h) }
func (h mcHeap) Less(i, j int) bool {
	if h[i].dist != h[j].dist {
		return h[i].dist < h[j].dist
	}
	return h[i].node < h[j].node
}
func (h mcHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *mcHeap) Push(x any)   { *h = append(*h, x.(mcItem)) }
func (h *mcHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
