package netflow

import (
	"math"
	"sync"
)

// DiffTerm is one weighted absolute-difference term W·|y[U] − y[V] + D|
// of a potential-optimization objective (SolvePotentials).
type DiffTerm struct {
	U, V int
	W    float64 // weight ≥ 0
	D    int64   // constant displacement
}

// mcArc is one residual arc; its twin (reverse direction) is at
// index arc^1.
type mcArc struct {
	to   int
	cap  float64 // residual capacity
	cost int64   // cost per unit in residual direction
}

// mcScratch is the reusable working set of one SolvePotentialsCounted
// call: arcs, the CSR adjacency over them, excess/potential/Dijkstra
// arrays, and the frontier heap's storage. Recycled through a package
// pool so steady-state solves (one per axis per refinement round)
// allocate only the returned potentials.
type mcScratch struct {
	arcs    []mcArc
	cnt     []int32 // per-node arc counts, then CSR fill cursors
	headOff []int32 // node v's arcs at headArc[headOff[v]:headOff[v+1]]
	headArc []int32
	excess  []float64
	pi      []int64
	dist    []int64
	reached []bool
	prevArc []int32
	pq      mcHeap
}

var mcPool = sync.Pool{New: func() any { return new(mcScratch) }}

// grow returns buf resized to n and zeroed, reusing its storage when
// the capacity suffices.
func grow[T any](buf *[]T, n int) []T {
	s := *buf
	if cap(s) < n {
		s = make([]T, n)
	} else {
		s = s[:n]
		clear(s)
	}
	*buf = s
	return s
}

// SolvePotentials minimizes Σ_t W_t·|y[U_t] − y[V_t] + D_t| over integer
// node potentials y[0..n), returning the minimizing potentials and the
// optimal objective value.
//
// This is the network-dual fast path of the offset RLP (§4 of the
// paper): when every edge term couples exactly two offsets with unit
// coefficients, the LP dual is a min-cost circulation — maximize
// Σ D_t·g_t over flows g_t ∈ [−W_t, W_t] conserving at every node — and
// the node potentials of the successive-shortest-path algorithm are an
// optimal primal solution. All arithmetic on potentials is integral
// (the D_t are integers), so the result is exactly reproducible.
//
// Ties in the shortest-path search break by node and arc insertion
// order, making the returned potentials deterministic for a fixed term
// slice. The solution is self-certifying: ok is true only when the
// primal objective of y equals the dual circulation value (strong
// duality), so a caller can fall back to a general LP whenever ok is
// false (which a numerically pathological instance could trigger, never
// a well-formed one).
func SolvePotentials(n int, terms []DiffTerm) (y []int64, obj float64, ok bool) {
	y, obj, _, ok = SolvePotentialsCounted(n, terms)
	return y, obj, ok
}

// SolvePotentialsCounted is SolvePotentials reporting the number of
// augmenting-path iterations performed (the flow solver's analogue of a
// simplex pivot count, for effort accounting).
func SolvePotentialsCounted(n int, terms []DiffTerm) (y []int64, obj float64, augments int64, ok bool) {
	const capEps = 1e-12
	scr := mcPool.Get().(*mcScratch)
	defer mcPool.Put(scr)
	// Two directed arcs per term (g = f_fwd − f_bwd), each followed by
	// its residual twin at arc^1.
	arcs := scr.arcs[:0]
	addArc := func(u, v int, capacity float64, cost int64) {
		arcs = append(arcs,
			mcArc{to: v, cap: capacity, cost: cost},
			mcArc{to: u, cap: 0, cost: -cost})
	}
	excess := grow(&scr.excess, n)
	for _, t := range terms {
		if t.W <= capEps || t.U == t.V {
			continue // constant contribution; caller accounts for it
		}
		// Dual arc pair: minimize Σ(−D)·f_fwd + D·f_bwd. Saturate the
		// negative-cost member up front so every residual cost is ≥ 0
		// under the zero potential, leaving node excess to drain.
		if t.D > 0 {
			addArc(t.U, t.V, 0, -t.D) // saturated forward
			arcs[len(arcs)-1].cap = t.W
			excess[t.V] += t.W
			excess[t.U] -= t.W
			addArc(t.V, t.U, t.W, t.D)
		} else {
			addArc(t.U, t.V, t.W, -t.D)
			if t.D < 0 {
				addArc(t.V, t.U, 0, t.D) // saturated backward
				arcs[len(arcs)-1].cap = t.W
				excess[t.U] += t.W
				excess[t.V] -= t.W
			} else {
				addArc(t.V, t.U, t.W, t.D)
			}
		}
	}
	scr.arcs = arcs

	// CSR adjacency. Arc j leaves the node its twin points back to, and
	// filling in ascending j keeps each node's list in arc insertion
	// order — the same order the per-node append lists used to have, so
	// Dijkstra tie-breaking (and the chosen optimum) is unchanged.
	nArcs := len(arcs)
	cnt := grow(&scr.cnt, n)
	for j := 0; j < nArcs; j++ {
		cnt[arcs[j^1].to]++
	}
	headOff := grow(&scr.headOff, n+1)
	for v := 0; v < n; v++ {
		headOff[v+1] = headOff[v] + cnt[v]
	}
	headArc := grow(&scr.headArc, nArcs)
	copy(cnt, headOff[:n]) // reuse as fill cursors
	for j := 0; j < nArcs; j++ {
		u := arcs[j^1].to
		headArc[cnt[u]] = int32(j)
		cnt[u]++
	}

	pi := grow(&scr.pi, n)
	dist := grow(&scr.dist, n)
	reached := grow(&scr.reached, n)
	prevArc := grow(&scr.prevArc, n)
	const unreached = math.MaxInt64

	// Successive shortest paths: route excess to deficit along reduced-
	// cost-shortest residual paths, keeping all reduced costs ≥ 0 by the
	// potential update π_v += min(dist_v, dist_t).
	maxAug := int64(8*len(arcs) + 16)
	for ; ; augments++ {
		// Lowest-index source with positive excess (deterministic).
		s := -1
		for v := 0; v < n; v++ {
			if excess[v] > 1e-9 {
				s = v
				break
			}
		}
		if s < 0 {
			break
		}
		if augments >= maxAug {
			return nil, 0, augments, false
		}
		// Dijkstra from s on reduced costs.
		for v := range dist {
			dist[v] = unreached
			reached[v] = false
			prevArc[v] = -1
		}
		dist[s] = 0
		pq := &scr.pq
		*pq = append((*pq)[:0], mcItem{0, int32(s)})
		t := -1
		for len(*pq) > 0 {
			it := pq.pop()
			v := int(it.node)
			if reached[v] {
				continue
			}
			reached[v] = true
			if excess[v] < -1e-9 {
				t = v
				break
			}
			for _, ai := range headArc[headOff[v]:headOff[v+1]] {
				a := arcs[ai]
				if a.cap <= capEps || reached[a.to] {
					continue
				}
				nd := dist[v] + a.cost + pi[v] - pi[a.to]
				if nd < dist[a.to] {
					dist[a.to] = nd
					prevArc[a.to] = ai
					pq.push(mcItem{nd, int32(a.to)})
				}
			}
		}
		if t < 0 {
			return nil, 0, augments, false // excess with no reachable deficit
		}
		for v := range pi {
			if dist[v] < dist[t] {
				pi[v] += dist[v]
			} else {
				pi[v] += dist[t]
			}
		}
		// Augment by the path bottleneck, capped by the endpoints.
		amt := excess[s]
		if d := -excess[t]; d < amt {
			amt = d
		}
		for v := t; v != s; {
			a := prevArc[v]
			if arcs[a].cap < amt {
				amt = arcs[a].cap
			}
			v = arcs[a^1].to
		}
		for v := t; v != s; {
			a := prevArc[v]
			arcs[a].cap -= amt
			arcs[a^1].cap += amt
			v = arcs[a^1].to
		}
		excess[s] -= amt
		excess[t] += amt
	}

	// Optimal primal potentials are the negated dual potentials.
	y = make([]int64, n)
	for v := range y {
		y[v] = -pi[v]
	}
	// Strong-duality certificate: primal objective at y must equal the
	// circulation value Σ D_t·g_t. Residual caps recover each g.
	var primal, dual float64
	ai := 0
	for _, t := range terms {
		if t.W <= capEps || t.U == t.V {
			continue
		}
		span := y[t.U] - y[t.V] + t.D
		if span < 0 {
			span = -span
		}
		primal += t.W * float64(span)
		fFwd := arcs[ai+1].cap // flow on u→v = residual of its twin
		fBwd := arcs[ai+2+1].cap
		dual += float64(t.D) * (fFwd - fBwd)
		ai += 4
	}
	if math.Abs(primal-dual) > 1e-6*(1+math.Abs(primal)) {
		return nil, 0, augments, false
	}
	return y, primal, augments, true
}

// mcItem is a Dijkstra frontier entry; ties break by node index so the
// search order (and with it the chosen optimum) is deterministic.
type mcItem struct {
	dist int64
	node int32
}

type mcHeap []mcItem

func (h mcHeap) less(i, j int) bool {
	if h[i].dist != h[j].dist {
		return h[i].dist < h[j].dist
	}
	return h[i].node < h[j].node
}

// push and pop are container/heap's algorithms specialized to mcItem —
// same sift order (so identical pop sequences and unchanged tie-breaks)
// without boxing every pushed item in an interface.
func (h *mcHeap) push(it mcItem) {
	s := append(*h, it)
	*h = s
	for j := len(s) - 1; j > 0; {
		i := (j - 1) / 2
		if !s.less(j, i) {
			break
		}
		s[i], s[j] = s[j], s[i]
		j = i
	}
}

func (h *mcHeap) pop() mcItem {
	s := *h
	n := len(s) - 1
	s[0], s[n] = s[n], s[0]
	for i := 0; ; {
		j := 2*i + 1
		if j >= n {
			break
		}
		if j2 := j + 1; j2 < n && s.less(j2, j) {
			j = j2
		}
		if !s.less(j, i) {
			break
		}
		s[i], s[j] = s[j], s[i]
		i = j
	}
	it := s[n]
	*h = s[:n]
	return it
}
