// Package netflow implements maximum flow and minimum cut on directed
// graphs. Theorem 1 of the paper reduces replication labeling to a
// min-cut problem: a weighted directed graph with ∞-weight edges from a
// source to all N-labeled vertices and from all R-labeled vertices to a
// sink; a minimum s-t cut is an optimal replication labeling. The primary
// algorithm is Dinic's (low-order polynomial, as the paper requires); an
// LP formulation is provided as well, matching the paper's remark that
// the problem "can be solved using linear programming".
package netflow

import (
	"math"

	"repro/internal/lp"
)

// Inf is the capacity used for the paper's infinite-weight edges. It is
// large enough to dominate any finite cut yet safe against overflow when
// many Inf edges are saturated together.
const Inf int64 = math.MaxInt64 / 1024

// Graph is a flow network under construction. Vertices are dense ints
// [0, n).
type Graph struct {
	n     int
	edges []edge
	head  [][]int // adjacency: indices into edges (even=forward, odd=residual)
}

type edge struct {
	to  int
	cap int64
}

// NewGraph returns an empty flow network with n vertices.
func NewGraph(n int) *Graph {
	return &Graph{n: n, head: make([][]int, n)}
}

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int { return g.n }

// AddEdge adds a directed edge u→v with the given capacity and returns
// its index (usable with EdgeFlow after MaxFlow).
func (g *Graph) AddEdge(u, v int, capacity int64) int {
	if capacity < 0 {
		panic("netflow: negative capacity")
	}
	id := len(g.edges)
	g.edges = append(g.edges, edge{to: v, cap: capacity}, edge{to: u, cap: 0})
	g.head[u] = append(g.head[u], id)
	g.head[v] = append(g.head[v], id+1)
	return id
}

// Result reports a max-flow computation.
type Result struct {
	Value   int64
	g       *Graph
	origCap []int64
	level   []int
	source  int
}

// MaxFlow computes a maximum s-t flow with Dinic's algorithm. The graph's
// residual capacities are consumed; call MaxFlow once per Graph.
func (g *Graph) MaxFlow(s, t int) *Result {
	orig := make([]int64, len(g.edges))
	for i, e := range g.edges {
		orig[i] = e.cap
	}
	var total int64
	level := make([]int, g.n)
	iter := make([]int, g.n)
	queue := make([]int, 0, g.n)
	for {
		// BFS level graph on residual capacities.
		for i := range level {
			level[i] = -1
		}
		level[s] = 0
		queue = append(queue[:0], s)
		for qi := 0; qi < len(queue); qi++ {
			u := queue[qi]
			for _, ei := range g.head[u] {
				e := g.edges[ei]
				if e.cap > 0 && level[e.to] < 0 {
					level[e.to] = level[u] + 1
					queue = append(queue, e.to)
				}
			}
		}
		if level[t] < 0 {
			return &Result{Value: total, g: g, origCap: orig, level: level, source: s}
		}
		for i := range iter {
			iter[i] = 0
		}
		for {
			f := g.dfs(s, t, Inf, level, iter)
			if f == 0 {
				break
			}
			total += f
		}
	}
}

func (g *Graph) dfs(u, t int, limit int64, level, iter []int) int64 {
	if u == t {
		return limit
	}
	for ; iter[u] < len(g.head[u]); iter[u]++ {
		ei := g.head[u][iter[u]]
		e := &g.edges[ei]
		if e.cap <= 0 || level[e.to] != level[u]+1 {
			continue
		}
		d := limit
		if e.cap < d {
			d = e.cap
		}
		f := g.dfs(e.to, t, d, level, iter)
		if f > 0 {
			e.cap -= f
			g.edges[ei^1].cap += f
			return f
		}
	}
	return 0
}

// EdgeFlow returns the flow routed through the edge returned by AddEdge.
func (r *Result) EdgeFlow(edgeID int) int64 {
	return r.origCap[edgeID] - r.g.edges[edgeID].cap
}

// SourceSide returns the set of vertices reachable from the source in the
// final residual graph: the source side X of a minimum cut (s ∈ X). By
// max-flow/min-cut, edges crossing from X to its complement have total
// capacity equal to the max-flow value.
func (r *Result) SourceSide() []bool {
	side := make([]bool, r.g.n)
	// The last BFS of Dinic already computed reachability (level >= 0).
	for v, l := range r.level {
		side[v] = l >= 0
	}
	return side
}

// CutEdge describes one original edge crossing a minimum cut forward.
type CutEdge struct {
	From, To int
	Capacity int64
}

// MinCutEdges returns the original edges that cross the minimum cut in
// the forward direction (from the source side to the sink side).
func (r *Result) MinCutEdges() []CutEdge {
	side := r.SourceSide()
	var cut []CutEdge
	for id := 0; id < len(r.origCap); id += 2 {
		if r.origCap[id] == 0 {
			continue
		}
		// edges[id] is forward u→v; edges[id^1].to == u.
		u := r.g.edges[id+1].to
		v := r.g.edges[id].to
		if side[u] && !side[v] {
			cut = append(cut, CutEdge{From: u, To: v, Capacity: r.origCap[id]})
		}
	}
	return cut
}

// LPEdge is an input edge for MinCutLP.
type LPEdge struct {
	From, To int
	Capacity int64
}

// MinCutLP solves the s-t min-cut by linear programming, the alternative
// the paper mentions (§5.2): the LP dual of max-flow. Variables: a
// potential p_v per vertex and a cut indicator d_e ≥ 0 per edge with
// d_e ≥ p_u − p_v, p_s = 1, p_t = 0; minimize Σ cap_e·d_e. Because the
// constraint matrix is totally unimodular the optimum is integral, and
// the optimal objective equals the max-flow value.
func MinCutLP(n int, edges []LPEdge, s, t int) (value int64, sourceSide []bool, err error) {
	prob := lp.NewProblem()
	pv := make([]lp.VarID, n)
	for v := 0; v < n; v++ {
		pv[v] = prob.AddVariable("p", 0, true)
	}
	de := make([]lp.VarID, len(edges))
	for i, e := range edges {
		de[i] = prob.AddVariable("d", float64(e.Capacity), false)
	}
	prob.AddConstraint(map[lp.VarID]float64{pv[s]: 1}, lp.EQ, 1)
	prob.AddConstraint(map[lp.VarID]float64{pv[t]: 1}, lp.EQ, 0)
	for i, e := range edges {
		// d_e − p_u + p_v ≥ 0
		prob.AddConstraint(map[lp.VarID]float64{
			de[i]:      1,
			pv[e.From]: -1,
			pv[e.To]:   1,
		}, lp.GE, 0)
	}
	sol, err := prob.Solve()
	if err != nil {
		return 0, nil, err
	}
	sourceSide = make([]bool, n)
	for v := 0; v < n; v++ {
		sourceSide[v] = sol.Value(pv[v]) > 0.5
	}
	return int64(math.Round(sol.Objective)), sourceSide, nil
}
