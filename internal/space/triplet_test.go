package space

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestTripletCount(t *testing.T) {
	cases := []struct {
		t    Triplet
		want int64
	}{
		{NewTriplet(1, 10, 1), 10},
		{NewTriplet(1, 10, 2), 5},
		{NewTriplet(1, 9, 2), 5},
		{NewTriplet(10, 1, -1), 10},
		{NewTriplet(10, 1, 1), 0},
		{NewTriplet(5, 5, 1), 1},
		{NewTriplet(1, 100, 3), 34},
		{NewTriplet(2, 2000, 2), 1000},
	}
	for _, c := range cases {
		if got := c.t.Count(); got != c.want {
			t.Errorf("%v.Count() = %d, want %d", c.t, got, c.want)
		}
	}
}

func TestTripletValues(t *testing.T) {
	got := NewTriplet(1, 10, 3).Values()
	want := []int64{1, 4, 7, 10}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Values = %v, want %v", got, want)
	}
	got = NewTriplet(10, 1, -4).Values()
	want = []int64{10, 6, 2}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Values = %v, want %v", got, want)
	}
}

func TestTripletContains(t *testing.T) {
	tr := NewTriplet(2, 20, 3) // 2,5,8,11,14,17,20
	for _, v := range tr.Values() {
		if !tr.Contains(v) {
			t.Errorf("Contains(%d) = false", v)
		}
	}
	for _, v := range []int64{1, 3, 21, 23, 0, -1} {
		if tr.Contains(v) {
			t.Errorf("Contains(%d) = true", v)
		}
	}
}

func TestTripletAtLast(t *testing.T) {
	tr := NewTriplet(3, 17, 5) // 3, 8, 13
	if tr.Last() != 13 {
		t.Errorf("Last = %d, want 13", tr.Last())
	}
	if tr.At(0) != 3 || tr.At(2) != 13 {
		t.Errorf("At wrong: %d %d", tr.At(0), tr.At(2))
	}
}

func TestTripletNormalizeEqual(t *testing.T) {
	a := NewTriplet(1, 10, 3)
	b := NewTriplet(1, 12, 3) // same elements 1,4,7,10
	if !a.Equal(b) {
		t.Errorf("%v should equal %v", a, b)
	}
	if a.Equal(NewTriplet(1, 13, 3)) {
		t.Error("distinct progressions compared equal")
	}
	// Single-element triplets with different steps are equal.
	if !NewTriplet(5, 5, 1).Equal(NewTriplet(5, 5, 7)) {
		t.Error("singletons should be equal regardless of step")
	}
}

func TestTripletSplitAtIndex(t *testing.T) {
	tr := NewTriplet(1, 20, 2) // 10 elements
	before, after := tr.SplitAtIndex(4)
	if before.Count() != 4 || after.Count() != 6 {
		t.Fatalf("split 4: %v | %v", before, after)
	}
	if before.Last() != 7 || after.Lo != 9 {
		t.Errorf("split boundary wrong: %v | %v", before, after)
	}
	b0, a0 := tr.SplitAtIndex(0)
	if !b0.Empty() || a0.Count() != 10 {
		t.Errorf("split 0 wrong: %v | %v", b0, a0)
	}
	bn, an := tr.SplitAtIndex(10)
	if bn.Count() != 10 || !an.Empty() {
		t.Errorf("split n wrong: %v | %v", bn, an)
	}
}

func TestTripletPartition(t *testing.T) {
	tr := NewTriplet(1, 100, 1)
	parts := tr.Partition(3)
	if len(parts) != 3 {
		t.Fatalf("got %d parts", len(parts))
	}
	var total int64
	for _, p := range parts {
		total += p.Count()
	}
	if total != 100 {
		t.Errorf("partition loses elements: %d", total)
	}
	// Sizes differ by at most 1.
	for _, p := range parts {
		if c := p.Count(); c < 33 || c > 34 {
			t.Errorf("unbalanced part %v (%d)", p, c)
		}
	}
	// More parts than elements.
	small := NewTriplet(1, 2, 1)
	if got := len(small.Partition(5)); got != 2 {
		t.Errorf("Partition(5) of 2 elements gave %d parts", got)
	}
}

// Property: Partition preserves the exact element sequence.
func TestTripletPartitionProperty(t *testing.T) {
	f := func(lo int16, n uint8, step int8, m uint8) bool {
		if step == 0 {
			step = 1
		}
		cnt := int64(n%50) + 1
		tr := Triplet{Lo: int64(lo), Hi: int64(lo) + (cnt-1)*int64(step), Step: int64(step)}
		parts := tr.Partition(int(m%7) + 1)
		var got []int64
		for _, p := range parts {
			got = append(got, p.Values()...)
		}
		return reflect.DeepEqual(got, tr.Values())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: SplitAtIndex concatenation preserves the sequence.
func TestTripletSplitProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		lo := int64(rng.Intn(40) - 20)
		step := int64(rng.Intn(9) - 4)
		if step == 0 {
			step = 1
		}
		cnt := int64(rng.Intn(30) + 1)
		tr := Triplet{Lo: lo, Hi: lo + (cnt-1)*step, Step: step}
		k := int64(rng.Intn(int(cnt) + 1))
		before, after := tr.SplitAtIndex(k)
		got := append(before.Values(), after.Values()...)
		if !reflect.DeepEqual(got, tr.Values()) {
			t.Fatalf("split %v at %d: %v + %v != %v", tr, k, before, after, tr.Values())
		}
	}
}

func TestSpaceBasics(t *testing.T) {
	s := NewSpace(NewTriplet(1, 3, 1), NewTriplet(0, 4, 2))
	if s.Rank() != 2 || s.Size() != 9 {
		t.Fatalf("rank=%d size=%d", s.Rank(), s.Size())
	}
	var seen [][]int64
	s.Each(func(iv []int64) bool {
		cp := append([]int64{}, iv...)
		seen = append(seen, cp)
		return true
	})
	if len(seen) != 9 {
		t.Fatalf("Each visited %d", len(seen))
	}
	if !reflect.DeepEqual(seen[0], []int64{1, 0}) || !reflect.DeepEqual(seen[8], []int64{3, 4}) {
		t.Errorf("order wrong: first %v last %v", seen[0], seen[8])
	}
}

func TestSpaceScalar(t *testing.T) {
	s := Scalar()
	if s.Size() != 1 {
		t.Errorf("scalar size = %d", s.Size())
	}
	count := 0
	s.Each(func(iv []int64) bool {
		if len(iv) != 0 {
			t.Errorf("scalar iteration vector %v", iv)
		}
		count++
		return true
	})
	if count != 1 {
		t.Errorf("scalar Each ran %d times", count)
	}
}

func TestSubSpaces(t *testing.T) {
	s := NewSpace(NewTriplet(1, 9, 1), NewTriplet(1, 9, 1))
	subs := s.SubSpaces(3)
	if len(subs) != 9 {
		t.Fatalf("3-way split of depth-2 nest: %d subspaces, want 9 (3^k)", len(subs))
	}
	var total int64
	for _, sub := range subs {
		total += sub.Size()
	}
	if total != 81 {
		t.Errorf("subspaces cover %d points, want 81", total)
	}
}

func TestSpaceEachEarlyStop(t *testing.T) {
	s := NewSpace(NewTriplet(1, 100, 1))
	n := 0
	s.Each(func(iv []int64) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Errorf("early stop visited %d", n)
	}
}

func TestTripletPartitionAt(t *testing.T) {
	tr := NewTriplet(1, 10, 1)
	parts := tr.PartitionAt(4, 8)
	if len(parts) != 3 {
		t.Fatalf("parts = %v", parts)
	}
	if parts[0].Count() != 3 || parts[1].Count() != 4 || parts[2].Count() != 3 {
		t.Errorf("part sizes wrong: %v", parts)
	}
}
