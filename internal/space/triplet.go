// Package space provides regular index triplets l:h:s and Cartesian
// iteration spaces built from them. Triplets describe both array sections
// (Fortran 90 section subscripts) and the ranges of loop induction
// variables; iteration spaces label ADG edges inside loop nests.
package space

import (
	"fmt"
	"strings"
)

// Triplet is a regular integer progression l, l+s, l+2s, ..., not exceeding
// h (for s > 0) or not below h (for s < 0). It mirrors the Fortran 90
// section triplet l:h:s. The zero value is the empty triplet.
type Triplet struct {
	Lo, Hi, Step int64
}

// NewTriplet returns the triplet l:h:s. A zero step is normalized to 1.
func NewTriplet(lo, hi, step int64) Triplet {
	if step == 0 {
		step = 1
	}
	return Triplet{Lo: lo, Hi: hi, Step: step}
}

// Point returns the singleton triplet v:v:1.
func Point(v int64) Triplet { return Triplet{Lo: v, Hi: v, Step: 1} }

// Range returns lo:hi:1.
func Range(lo, hi int64) Triplet { return Triplet{Lo: lo, Hi: hi, Step: 1} }

// Count returns the number of elements in the triplet.
func (t Triplet) Count() int64 {
	if t.Step == 0 {
		return 0
	}
	n := (t.Hi-t.Lo)/t.Step + 1
	if n < 0 {
		return 0
	}
	return n
}

// Empty reports whether the triplet contains no elements.
func (t Triplet) Empty() bool { return t.Count() == 0 }

// Last returns the last element actually taken by the progression.
// It panics on an empty triplet.
func (t Triplet) Last() int64 {
	n := t.Count()
	if n == 0 {
		panic("space: Last of empty triplet")
	}
	return t.Lo + (n-1)*t.Step
}

// At returns the k-th element (0-based). It panics if k is out of range.
func (t Triplet) At(k int64) int64 {
	if k < 0 || k >= t.Count() {
		panic(fmt.Sprintf("space: index %d out of triplet %v", k, t))
	}
	return t.Lo + k*t.Step
}

// Contains reports whether v is an element of the triplet.
func (t Triplet) Contains(v int64) bool {
	if t.Empty() {
		return false
	}
	d := v - t.Lo
	if d%t.Step != 0 {
		return false
	}
	k := d / t.Step
	return k >= 0 && k < t.Count()
}

// Values materializes the triplet as a slice. Intended for small triplets
// in tests and exact cost evaluation.
func (t Triplet) Values() []int64 {
	n := t.Count()
	vs := make([]int64, 0, n)
	for k := int64(0); k < n; k++ {
		vs = append(vs, t.Lo+k*t.Step)
	}
	return vs
}

// Normalize returns an equivalent triplet whose Hi is the last element
// taken (so l:h:s with (h-l) an exact multiple of s), which makes equal
// progressions compare equal.
func (t Triplet) Normalize() Triplet {
	if t.Empty() {
		return Triplet{Lo: 0, Hi: -1, Step: 1}
	}
	return Triplet{Lo: t.Lo, Hi: t.Last(), Step: t.Step}
}

// Reverse returns the triplet enumerating the same set in opposite order.
func (t Triplet) Reverse() Triplet {
	if t.Empty() {
		return t
	}
	return Triplet{Lo: t.Last(), Hi: t.Lo, Step: -t.Step}
}

// Shift returns the triplet translated by d.
func (t Triplet) Shift(d int64) Triplet {
	return Triplet{Lo: t.Lo + d, Hi: t.Hi + d, Step: t.Step}
}

// Scale returns the triplet with every element multiplied by c (c != 0).
func (t Triplet) Scale(c int64) Triplet {
	if c == 0 {
		panic("space: Scale by zero")
	}
	return Triplet{Lo: t.Lo * c, Hi: t.Hi * c, Step: t.Step * c}
}

// SplitAt partitions the triplet into the elements strictly before the
// first element >= v in iteration order (for positive step) and the rest.
// For negative steps the comparison is <=. Either part may be empty.
func (t Triplet) SplitAt(v int64) (before, after Triplet) {
	n := t.Count()
	if n == 0 {
		return t, t
	}
	var k int64 // number of leading elements in "before"
	if t.Step > 0 {
		if v <= t.Lo {
			k = 0
		} else {
			k = (v - t.Lo + t.Step - 1) / t.Step
			if k > n {
				k = n
			}
		}
	} else {
		if v >= t.Lo {
			k = 0
		} else {
			d := t.Lo - v
			k = (d - t.Step - 1) / (-t.Step) // ceil(d/|s|)
			if k > n {
				k = n
			}
		}
	}
	if k == 0 {
		return Triplet{Lo: 0, Hi: -1, Step: 1}, t.Normalize()
	}
	if k == n {
		return t.Normalize(), Triplet{Lo: 0, Hi: -1, Step: 1}
	}
	before = Triplet{Lo: t.Lo, Hi: t.At(k - 1), Step: t.Step}
	after = Triplet{Lo: t.At(k), Hi: t.Last(), Step: t.Step}
	return before, after
}

// SplitAtIndex partitions the triplet into its first k elements and the
// rest. k is clamped to [0, Count()].
func (t Triplet) SplitAtIndex(k int64) (before, after Triplet) {
	n := t.Count()
	if k < 0 {
		k = 0
	}
	if k > n {
		k = n
	}
	empty := Triplet{Lo: 0, Hi: -1, Step: 1}
	switch k {
	case 0:
		return empty, t.Normalize()
	case n:
		return t.Normalize(), empty
	}
	before = Triplet{Lo: t.Lo, Hi: t.At(k - 1), Step: t.Step}
	after = Triplet{Lo: t.At(k), Hi: t.Last(), Step: t.Step}
	return before, after
}

// Partition splits the triplet into m consecutive subranges whose sizes
// differ by at most one element. Fewer than m parts are returned when the
// triplet has fewer than m elements.
func (t Triplet) Partition(m int) []Triplet {
	if m <= 0 {
		panic("space: Partition with m <= 0")
	}
	n := t.Count()
	if n == 0 {
		return nil
	}
	if int64(m) > n {
		m = int(n)
	}
	parts := make([]Triplet, 0, m)
	start := int64(0)
	for j := 0; j < m; j++ {
		cnt := n / int64(m)
		if int64(j) < n%int64(m) {
			cnt++
		}
		parts = append(parts, Triplet{
			Lo:   t.At(start),
			Hi:   t.At(start + cnt - 1),
			Step: t.Step,
		})
		start += cnt
	}
	return parts
}

// PartitionAt splits the triplet into consecutive subranges with
// boundaries at the given values (in iteration order). Empty subranges are
// dropped.
func (t Triplet) PartitionAt(cuts ...int64) []Triplet {
	parts := []Triplet{}
	rest := t.Normalize()
	for _, c := range cuts {
		before, after := rest.SplitAt(c)
		if !before.Empty() {
			parts = append(parts, before)
		}
		rest = after
		if rest.Empty() {
			break
		}
	}
	if !rest.Empty() {
		parts = append(parts, rest)
	}
	return parts
}

// Equal reports whether two triplets enumerate the same progression in the
// same order.
func (t Triplet) Equal(u Triplet) bool {
	tn, un := t.Normalize(), u.Normalize()
	if tn.Empty() && un.Empty() {
		return true
	}
	if tn.Count() == 1 && un.Count() == 1 {
		return tn.Lo == un.Lo
	}
	return tn == un
}

// String renders the triplet in Fortran section syntax.
func (t Triplet) String() string {
	if t.Empty() {
		return "∅"
	}
	if t.Count() == 1 {
		return fmt.Sprintf("%d", t.Lo)
	}
	if t.Step == 1 {
		return fmt.Sprintf("%d:%d", t.Lo, t.Hi)
	}
	return fmt.Sprintf("%d:%d:%d", t.Lo, t.Hi, t.Step)
}

// Space is a Cartesian product of triplets: the iteration space of a loop
// nest. Dim(0) is the outermost loop. The empty product (rank 0) is the
// iteration space of straight-line code and contains exactly one (empty)
// iteration vector.
type Space struct {
	dims []Triplet
}

// NewSpace builds an iteration space from per-level triplets.
func NewSpace(dims ...Triplet) Space {
	cp := make([]Triplet, len(dims))
	copy(cp, dims)
	return Space{dims: cp}
}

// Scalar returns the rank-0 space holding a single empty iteration vector.
func Scalar() Space { return Space{} }

// Rank returns the nesting depth.
func (s Space) Rank() int { return len(s.dims) }

// Dim returns the triplet at level k (0 = outermost).
func (s Space) Dim(k int) Triplet { return s.dims[k] }

// Dims returns a copy of the per-level triplets.
func (s Space) Dims() []Triplet {
	cp := make([]Triplet, len(s.dims))
	copy(cp, s.dims)
	return cp
}

// Size returns the number of iteration vectors in the space.
func (s Space) Size() int64 {
	n := int64(1)
	for _, d := range s.dims {
		n *= d.Count()
	}
	return n
}

// Empty reports whether the space contains no iteration vectors.
func (s Space) Empty() bool { return s.Size() == 0 }

// Extend returns the space with one more (innermost) loop level appended.
func (s Space) Extend(t Triplet) Space {
	dims := make([]Triplet, len(s.dims)+1)
	copy(dims, s.dims)
	dims[len(s.dims)] = t
	return Space{dims: dims}
}

// Outer returns the space with the innermost level removed.
func (s Space) Outer() Space {
	if len(s.dims) == 0 {
		panic("space: Outer of rank-0 space")
	}
	return NewSpace(s.dims[:len(s.dims)-1]...)
}

// WithDim returns a copy of the space with level k replaced by t.
func (s Space) WithDim(k int, t Triplet) Space {
	dims := s.Dims()
	dims[k] = t
	return Space{dims: dims}
}

// Each calls f for every iteration vector in lexicographic order
// (outermost varies slowest). The slice passed to f is reused; callers
// must copy it if they retain it. Each stops early if f returns false.
func (s Space) Each(f func(iv []int64) bool) {
	iv := make([]int64, len(s.dims))
	var rec func(k int) bool
	rec = func(k int) bool {
		if k == len(s.dims) {
			return f(iv)
		}
		d := s.dims[k]
		n := d.Count()
		for j := int64(0); j < n; j++ {
			iv[k] = d.Lo + j*d.Step
			if !rec(k + 1) {
				return false
			}
		}
		return true
	}
	rec(0)
}

// Vectors materializes all iteration vectors. Intended for small spaces.
func (s Space) Vectors() [][]int64 {
	out := make([][]int64, 0, s.Size())
	s.Each(func(iv []int64) bool {
		cp := make([]int64, len(iv))
		copy(cp, iv)
		out = append(out, cp)
		return true
	})
	return out
}

// SubSpaces partitions the space into the Cartesian product of m-way
// partitions of every level: 3-way partitioning of a depth-k nest yields
// the paper's 3^k subranges (§4.4).
func (s Space) SubSpaces(m int) []Space {
	if s.Rank() == 0 {
		return []Space{s}
	}
	perLevel := make([][]Triplet, s.Rank())
	for k := range s.dims {
		perLevel[k] = s.dims[k].Partition(m)
	}
	out := []Space{}
	cur := make([]Triplet, s.Rank())
	var rec func(k int)
	rec = func(k int) {
		if k == s.Rank() {
			out = append(out, NewSpace(cur...))
			return
		}
		for _, t := range perLevel[k] {
			cur[k] = t
			rec(k + 1)
		}
	}
	rec(0)
	return out
}

// Equal reports whether two spaces have the same rank and equal triplets
// at every level.
func (s Space) Equal(u Space) bool {
	if s.Rank() != u.Rank() {
		return false
	}
	for k := range s.dims {
		if !s.dims[k].Equal(u.dims[k]) {
			return false
		}
	}
	return true
}

// String renders the space as a product of triplets.
func (s Space) String() string {
	if len(s.dims) == 0 {
		return "{()}"
	}
	parts := make([]string, len(s.dims))
	for k, d := range s.dims {
		parts[k] = d.String()
	}
	return strings.Join(parts, " × ")
}
