package adg

import (
	"strings"
	"testing"

	"repro/internal/expr"
	"repro/internal/space"
)

func TestIterSpaceConcrete(t *testing.T) {
	s := ScalarSpace().
		Extend("i", expr.Const(1), expr.Const(10), expr.Const(1)).
		Extend("j", expr.Const(2), expr.Const(8), expr.Const(2))
	conc, ok := s.Concrete()
	if !ok {
		t.Fatal("constant-bound space not concrete")
	}
	if conc.Size() != 40 {
		t.Errorf("size = %d, want 40", conc.Size())
	}
	if s.Size() != 40 {
		t.Errorf("IterSpace.Size = %d", s.Size())
	}
}

func TestIterSpaceTriangular(t *testing.T) {
	// do i = 1,5 ; do j = 1,i — triangular nest: 1+2+3+4+5 = 15 points.
	s := ScalarSpace().
		Extend("i", expr.Const(1), expr.Const(5), expr.Const(1)).
		Extend("j", expr.Const(1), expr.Var("i"), expr.Const(1))
	if _, ok := s.Concrete(); ok {
		t.Error("triangular space claimed concrete")
	}
	if s.Size() != 15 {
		t.Errorf("triangular size = %d, want 15", s.Size())
	}
	var visited int
	s.Each(func(env map[string]int64) bool {
		if env["j"] > env["i"] {
			t.Errorf("out-of-bounds point i=%d j=%d", env["i"], env["j"])
		}
		visited++
		return true
	})
	if visited != 15 {
		t.Errorf("Each visited %d", visited)
	}
}

func TestIterSpaceTotalOf(t *testing.T) {
	s := ScalarSpace().Extend("k", expr.Const(1), expr.Const(10), expr.Const(1))
	// Σ k over 1..10 = 55; Σ k² = 385.
	if got := s.TotalOf(expr.PolyVar("k")); got != 55 {
		t.Errorf("Σk = %d", got)
	}
	if got := s.TotalOf(expr.PolyVar("k").Mul(expr.PolyVar("k"))); got != 385 {
		t.Errorf("Σk² = %d", got)
	}
}

func TestPinLIV(t *testing.T) {
	s := ScalarSpace().Extend("k", expr.Const(1), expr.Const(100), expr.Const(1))
	p := s.pinLIV("k", expr.Const(100))
	if p.Size() != 1 {
		t.Errorf("pinned size = %d, want 1", p.Size())
	}
	// Pinning an unknown LIV is a no-op.
	q := s.pinLIV("z", expr.Const(5))
	if q.Size() != 100 {
		t.Errorf("no-op pin changed size to %d", q.Size())
	}
}

func TestLastIterate(t *testing.T) {
	x := &XformSpec{Lo: expr.Const(1), Hi: expr.Const(10), Step: expr.Const(3)}
	// 1, 4, 7, 10 → last 10; with hi 11 → last 10 as well.
	if got := x.LastIterate(); !got.Equal(expr.Const(10)) {
		t.Errorf("last = %v", got)
	}
	x.Hi = expr.Const(11)
	if got := x.LastIterate(); !got.Equal(expr.Const(10)) {
		t.Errorf("last = %v, want 10", got)
	}
}

func TestAlignmentPosition(t *testing.T) {
	a := NewAlignment(2, 2)
	a.Stride[0] = expr.Const(2)
	a.Offset[0] = expr.Axpy(1, "k", 0) // mobile offset k
	env := map[string]int64{"k": 5}
	pos := a.Position([]int64{3, 4}, env)
	// axis 0: 2·3 + 5 = 11; axis 1: 1·4 + 0 = 4.
	if pos[0] != 11 || pos[1] != 4 {
		t.Errorf("pos = %v", pos)
	}
}

func TestAlignmentString(t *testing.T) {
	a := NewAlignment(1, 2)
	a.Replicated[1] = true
	s := a.String()
	if !strings.Contains(s, "*") {
		t.Errorf("replicated axis not shown: %q", s)
	}
	if !strings.Contains(s, "i1") {
		t.Errorf("body axis not shown: %q", s)
	}
}

func TestAlignmentIsMobile(t *testing.T) {
	a := NewAlignment(1, 1)
	if a.IsMobile() {
		t.Error("identity alignment mobile")
	}
	a.Offset[0] = expr.Var("k")
	if !a.IsMobile() {
		t.Error("k-offset alignment not mobile")
	}
}

func TestGraphValidate(t *testing.T) {
	g := New()
	g.TemplateRank = 1
	src := g.AddNode(KindSource, "a", 0, 1)
	sink := g.AddNode(KindSink, "a", 1, 0)
	src.Out[0].Rank = 1
	sink.In[0].Rank = 1
	// Unconnected ports must fail validation.
	if err := g.Validate(); err == nil {
		t.Error("validate passed with dangling ports")
	}
	g.Connect(src.Out[0], sink.In[0])
	if err := g.Validate(); err != nil {
		t.Errorf("validate failed: %v", err)
	}
}

func TestGraphDot(t *testing.T) {
	g := New()
	g.TemplateRank = 1
	src := g.AddNode(KindSource, "a", 0, 1)
	sink := g.AddNode(KindSink, "a", 1, 0)
	g.Connect(src.Out[0], sink.In[0])
	dot := g.Dot()
	for _, frag := range []string{"digraph ADG", "n0 -> n1"} {
		if !strings.Contains(dot, frag) {
			t.Errorf("DOT missing %q", frag)
		}
	}
}

func TestPortWeight(t *testing.T) {
	g := New()
	n := g.AddNode(KindSource, "a", 0, 1)
	n.Out[0].Rank = 2
	n.Out[0].Extents = []expr.Affine{expr.Const(10), expr.Axpy(1, "k", 0)}
	w := n.Out[0].Weight()
	if got := w.Eval(map[string]int64{"k": 7}); got != 70 {
		t.Errorf("weight at k=7 = %d, want 70", got)
	}
}

func TestEdgeBoundarySpaces(t *testing.T) {
	// An edge into an exit transformer flows once (final iteration); an
	// edge out of an entry transformer flows once (first iteration).
	g := New()
	g.TemplateRank = 1
	inner := ScalarSpace().Extend("k", expr.Const(1), expr.Const(50), expr.Const(1))

	def := g.AddNode(KindSource, "v", 0, 1)
	def.Out[0].Rank = 1
	def.Out[0].Extents = []expr.Affine{expr.Const(10)}
	def.Out[0].Space = inner

	exit := g.AddNode(KindXform, "v", 1, 1)
	exit.Xform = &XformSpec{Kind: XformExit, LIV: "k", Lo: expr.Const(1), Hi: expr.Const(50), Step: expr.Const(1)}
	exit.In[0].Rank = 1
	exit.In[0].Extents = []expr.Affine{expr.Const(10)}
	exit.In[0].Space = inner

	e := g.Connect(def.Out[0], exit.In[0])
	if got := e.TotalWeight(); got != 10 {
		t.Errorf("exit edge weight = %d, want 10 (flows once)", got)
	}
	// A plain edge in the same space flows every iteration.
	use := g.AddNode(KindSink, "v", 1, 0)
	use.In[0].Rank = 1
	use.In[0].Extents = []expr.Affine{expr.Const(10)}
	use.In[0].Space = inner
	def2 := g.AddNode(KindSource, "w", 0, 1)
	def2.Out[0].Rank = 1
	def2.Out[0].Extents = []expr.Affine{expr.Const(10)}
	def2.Out[0].Space = inner
	e2 := g.Connect(def2.Out[0], use.In[0])
	if got := e2.TotalWeight(); got != 500 {
		t.Errorf("inner edge weight = %d, want 500", got)
	}
}

func TestSectionSpecOutRank(t *testing.T) {
	spec := &SectionSpec{Subs: []SubSpec{
		{IsRange: true},
		{Index: expr.Var("k")},
		{IsVector: true},
	}}
	if spec.OutRank() != 2 {
		t.Errorf("OutRank = %d, want 2", spec.OutRank())
	}
}

func TestSubSpacesOnIterSpace(t *testing.T) {
	s := ScalarSpace().Extend("k", expr.Const(1), expr.Const(9), expr.Const(1))
	conc, _ := s.Concrete()
	subs := conc.SubSpaces(3)
	if len(subs) != 3 {
		t.Errorf("subspaces = %d", len(subs))
	}
	_ = space.Scalar()
}
