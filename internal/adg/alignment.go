package adg

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/expr"
)

// Alignment is the alignment of one object (at one port) to the template:
// the three components of §2 — axis, stride, offset — plus the §5
// replication labels, all possibly mobile (affine in LIVs).
type Alignment struct {
	// AxisMap[d] is the template axis that body axis d (0-based) maps to.
	AxisMap []int
	// Stride[d] is the spacing of elements of body axis d along its
	// template axis: g_t(i) = Stride[d]·i_d + Offset[axis].
	Stride []expr.Affine
	// Offset[t] is the position of the array origin along template axis
	// t. For a body axis it combines with the stride; for a space axis it
	// is the object's full position on that axis.
	Offset []expr.Affine
	// Replicated[t] reports a replicated (one-to-many) offset on template
	// axis t. Only space axes may be replicated (§5).
	Replicated []bool
}

// NewAlignment returns the identity alignment of a rank-r object in a
// rank-t template: body axis d on template axis d, stride 1, offset 0,
// no replication.
func NewAlignment(r, t int) Alignment {
	a := Alignment{
		AxisMap:    make([]int, r),
		Stride:     make([]expr.Affine, r),
		Offset:     make([]expr.Affine, t),
		Replicated: make([]bool, t),
	}
	for d := 0; d < r; d++ {
		a.AxisMap[d] = d
		a.Stride[d] = expr.Const(1)
	}
	for t2 := range a.Offset {
		a.Offset[t2] = expr.Const(0)
	}
	return a
}

// Clone returns a deep copy.
func (a Alignment) Clone() Alignment {
	out := Alignment{
		AxisMap:    append([]int{}, a.AxisMap...),
		Stride:     append([]expr.Affine{}, a.Stride...),
		Offset:     append([]expr.Affine{}, a.Offset...),
		Replicated: append([]bool{}, a.Replicated...),
	}
	return out
}

// BodyAxis reports whether template axis t is a body axis of the object
// (some array axis maps to it) and which array axis that is.
func (a Alignment) BodyAxis(t int) (int, bool) {
	for d, ta := range a.AxisMap {
		if ta == t {
			return d, true
		}
	}
	return -1, false
}

// IsMobile reports whether any component of the alignment depends on a
// loop induction variable.
func (a Alignment) IsMobile() bool {
	for _, s := range a.Stride {
		if !s.IsConst() {
			return true
		}
	}
	for _, o := range a.Offset {
		if !o.IsConst() {
			return true
		}
	}
	return false
}

// Position evaluates the template position of element index (0-based
// per-dimension indices idx) under LIV environment env. Replicated axes
// report the offset of the start of the replication set.
func (a Alignment) Position(idx []int64, env map[string]int64) []int64 {
	pos := make([]int64, len(a.Offset))
	for t := range a.Offset {
		pos[t] = a.Offset[t].Eval(env)
	}
	for d, t := range a.AxisMap {
		pos[t] += a.Stride[d].Eval(env) * idx[d]
	}
	return pos
}

// String renders the alignment in the paper's notation, e.g.
// "(i1,i2) ↦ [k, i1 - k + 1]" with "*" marking replicated axes.
func (a Alignment) String() string {
	axes := make([]string, len(a.Offset))
	for t := range a.Offset {
		if d, ok := a.BodyAxis(t); ok {
			term := ""
			s := a.Stride[d]
			iv := fmt.Sprintf("i%d", d+1)
			switch {
			case s.IsConst() && s.ConstPart() == 1:
				term = iv
			case s.IsConst():
				term = fmt.Sprintf("%d%s", s.ConstPart(), iv)
			default:
				term = fmt.Sprintf("(%s)%s", s, iv)
			}
			if !a.Offset[t].IsZero() {
				off := a.Offset[t].String()
				if strings.HasPrefix(off, "-") {
					term += " - " + off[1:]
				} else {
					term += " + " + off
				}
			}
			axes[t] = term
		} else if a.Replicated[t] {
			axes[t] = "*"
		} else {
			axes[t] = a.Offset[t].String()
		}
	}
	return "[" + strings.Join(axes, ", ") + "]"
}

// Assignment maps every port of a graph to its alignment: the π of the
// cost model (1).
type Assignment struct {
	g     *Graph
	align map[int]Alignment // by port ID
}

// NewAssignment returns an assignment giving every port the identity
// alignment for its rank.
func NewAssignment(g *Graph) *Assignment {
	as := &Assignment{g: g, align: map[int]Alignment{}}
	for _, p := range g.Ports {
		as.align[p.ID] = NewAlignment(p.Rank, g.TemplateRank)
	}
	return as
}

// Graph returns the graph this assignment labels.
func (as *Assignment) Graph() *Graph { return as.g }

// Of returns the alignment of port p.
func (as *Assignment) Of(p *Port) Alignment { return as.align[p.ID] }

// Set replaces the alignment of port p.
func (as *Assignment) Set(p *Port, a Alignment) { as.align[p.ID] = a }

// Clone returns a deep copy of the assignment.
func (as *Assignment) Clone() *Assignment {
	out := &Assignment{g: as.g, align: map[int]Alignment{}}
	for id, a := range as.align {
		out.align[id] = a.Clone()
	}
	return out
}

// String renders one line per node with the alignments of its ports.
func (as *Assignment) String() string {
	var b strings.Builder
	ids := make([]int, 0, len(as.g.Nodes))
	for _, n := range as.g.Nodes {
		ids = append(ids, n.ID)
	}
	sort.Ints(ids)
	for _, id := range ids {
		n := as.g.Nodes[id]
		fmt.Fprintf(&b, "%s %q:", n.Kind, n.Label)
		for _, p := range n.In {
			fmt.Fprintf(&b, " in%d=%s", p.Index, as.align[p.ID])
		}
		for _, p := range n.Out {
			fmt.Fprintf(&b, " out%d=%s", p.Index, as.align[p.ID])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// MergeOffsetAxis copies template axis t of every port's offset vector
// from src into dst. The per-axis offset problems are independent (§4),
// so solvers that work axis-by-axis — possibly concurrently — combine
// their private results with this in axis order; the merge is pure
// column assignment, so the combined labeling is identical to a
// sequential solve.
func MergeOffsetAxis(dst, src map[int][]expr.Affine, t int) {
	for pid, offs := range src {
		dst[pid][t] = offs[t]
	}
}
