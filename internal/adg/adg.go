// Package adg implements the alignment-distribution graph (ADG) of §2.2:
// a data-flow graph in which nodes represent computation, edges represent
// flow of array-valued objects, and alignments live on ports (edge
// endpoints). Nodes constrain the relative alignments of their ports;
// an edge whose two ports have different alignments carries residual
// communication whose cost depends on the alignments and the amount of
// data flowing over the edge during execution.
package adg

import (
	"fmt"
	"strings"
	"sync/atomic"

	"repro/internal/expr"
	"repro/internal/space"
)

// Kind classifies ADG nodes.
type Kind int

// Node kinds, mirroring §2.2.2 of the paper.
const (
	// KindSource introduces an array's initial value (its declaration).
	KindSource Kind = iota
	// KindSink consumes an object's final value (live at program end).
	KindSink
	// KindOp is an elementwise operation; all ports constrained equal.
	KindOp
	// KindSection takes an array and yields a section of it.
	KindSection
	// KindSectionAssign (Update of Cytron et al.) takes an array and a
	// replacement object and yields the modified array.
	KindSectionAssign
	// KindMerge joins multiple reaching definitions (the φ-function).
	KindMerge
	// KindFanout forwards one definition to multiple uses in a block.
	KindFanout
	// KindBranch routes one definition to alternate uses (conditionals).
	KindBranch
	// KindTranspose constrains its output to the opposite axis alignment.
	KindTranspose
	// KindSpread replicates an object along a new axis; its input port is
	// labeled replicated on the spread template axis (§5.2, footnote 1).
	KindSpread
	// KindReduce is a reduction (intrinsic communication); the reduced
	// axis is unconstrained.
	KindReduce
	// KindXform is a transformer node delimiting iteration spaces at loop
	// boundaries (§2.2.3).
	KindXform
	// KindGather reads an array through a vector-valued subscript; the
	// lookup table input is a candidate for replication (§5.1).
	KindGather
)

var kindNames = map[Kind]string{
	KindSource: "Source", KindSink: "Sink", KindOp: "Op",
	KindSection: "Section", KindSectionAssign: "SectionAssign",
	KindMerge: "Merge", KindFanout: "Fanout", KindBranch: "Branch",
	KindTranspose: "Transpose", KindSpread: "Spread", KindReduce: "Reduce",
	KindXform: "Transformer", KindGather: "Gather",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// XformKind distinguishes the three transformer roles at a loop boundary.
type XformKind int

// Transformer roles.
const (
	// XformEntry carries a value defined before the loop to its first
	// use inside: input position (independent of the LIV) must equal the
	// output position evaluated at the first iteration.
	XformEntry XformKind = iota
	// XformLoopBack carries a value across iterations: the input position
	// as a function of k+step must equal the output position as a
	// function of k.
	XformLoopBack
	// XformExit carries a value out of the loop: the output position
	// (independent of the LIV) must equal the input position evaluated at
	// the last iteration.
	XformExit
)

func (x XformKind) String() string {
	switch x {
	case XformEntry:
		return "entry"
	case XformLoopBack:
		return "loopback"
	case XformExit:
		return "exit"
	}
	return "?"
}

// XformSpec describes a transformer node's loop.
type XformSpec struct {
	Kind XformKind
	LIV  string
	// Lo, Hi, Step are the loop bounds (affine in outer LIVs).
	Lo, Hi, Step expr.Affine
}

// SubSpec describes one dimension's subscript in a Section or
// SectionAssign node.
type SubSpec struct {
	IsRange      bool
	Lo, Hi, Step expr.Affine // when IsRange
	Index        expr.Affine // single affine index
	IsVector     bool        // vector-valued subscript (Gather handles data)
}

// SectionSpec is the full subscript list of a Section/SectionAssign.
type SectionSpec struct {
	Subs []SubSpec
}

// OutRank returns the rank of the section object.
func (s *SectionSpec) OutRank() int {
	r := 0
	for _, sub := range s.Subs {
		if sub.IsRange || sub.IsVector {
			r++
		}
	}
	return r
}

// Node is an ADG node.
type Node struct {
	ID    int
	Kind  Kind
	Label string
	In    []*Port
	Out   []*Port

	// Kind-specific payloads.
	Section      *SectionSpec // Section, SectionAssign, Gather
	SpreadDim    int          // Spread: 1-based output dimension of the new axis
	SpreadCopies expr.Affine  // Spread: number of copies
	ReduceDim    int          // Reduce: 1-based reduced dimension (0 = full)
	Xform        *XformSpec   // Transformer
	ReadOnly     bool         // Source of an array never assigned
	CondMerge    bool         // Merge joining conditional arms (not a loop φ)
}

// Port is a definition or use of an object: an edge endpoint that will be
// labeled with an alignment.
type Port struct {
	ID     int
	Node   *Node
	Index  int  // position among the node's In or Out ports
	Output bool // true for definition (output) ports
	// Rank is the rank of the object at this port.
	Rank int
	// Extents are the per-dimension extents of the object, affine in the
	// LIVs in scope (used for data weights).
	Extents []expr.Affine
	// Space is the iteration space of the enclosing loop nest.
	Space IterSpace
	// Edge is the unique edge incident on this port (every port has
	// exactly one, §2.2.1); set by Graph.Connect.
	Edge *Edge
}

// Weight returns the data weight of the object at this port: the product
// of its extents, a polynomial in the LIVs (§2.3).
func (p *Port) Weight() expr.Poly {
	w := expr.PolyConst(1)
	for _, e := range p.Extents {
		w = w.Mul(e.Poly())
	}
	return w
}

// Edge joins the definition of an object (Src, an output port) with its
// use (Dst, an input port).
type Edge struct {
	ID  int
	Src *Port
	Dst *Port
	// Control is the control weight c_e of §6: the expected number of
	// times data flows on this edge relative to its iteration space
	// (1 everywhere except conditional arms, where it is the arm's
	// execution probability). The expected realignment cost of the edge
	// is Control × Σ_i w(i)·d(π_src(i), π_dst(i)).
	Control float64

	// totW caches TotalWeight()+1 (0 = not yet computed). The sum is a
	// pure function of the graph's spaces and weights, which are fixed
	// once construction finishes, so a racing recompute is idempotent
	// and the atomic needs no lock. Alignment solvers hit TotalWeight
	// for every edge on every solve; the closed-form summation behind
	// it is by far too expensive to redo there.
	totW atomic.Int64
}

// Space returns the iteration space over which data actually flows on
// the edge. Ordinarily this is the (shared) space of its ports; edges
// into an exit transformer carry data only on the final iteration of the
// loop being exited, and edges out of an entry transformer only on the
// first, so those spaces pin the transformer's LIV to the boundary
// iterate (this is what makes loop-entry/-exit realignment count once,
// not once per iteration).
func (e *Edge) Space() IterSpace {
	s := e.Src.Space
	if n := e.Dst.Node; n.Kind == KindXform && n.Xform.Kind == XformExit {
		return s.pinLIV(n.Xform.LIV, n.Xform.LastIterate())
	}
	if n := e.Src.Node; n.Kind == KindXform && n.Xform.Kind == XformEntry {
		return s.pinLIV(n.Xform.LIV, n.Xform.Lo)
	}
	return s
}

// pinLIV returns the space with the named level restricted to a single
// value (no-op if the LIV is not a level of the space).
func (s IterSpace) pinLIV(liv string, v expr.Affine) IterSpace {
	for k, name := range s.LIVs {
		if name == liv {
			out := IterSpace{
				LIVs: append([]string{}, s.LIVs...),
				Lo:   append([]expr.Affine{}, s.Lo...),
				Hi:   append([]expr.Affine{}, s.Hi...),
				Step: append([]expr.Affine{}, s.Step...),
			}
			out.Lo[k] = v
			out.Hi[k] = v
			out.Step[k] = expr.Const(1)
			return out
		}
	}
	return s
}

// LastIterate returns the affine form of the loop's final LIV value. With
// constant bounds the true last iterate is computed; with affine bounds
// the upper bound is used (exact when the step divides the trip count).
func (x *XformSpec) LastIterate() expr.Affine {
	if x.Lo.IsConst() && x.Hi.IsConst() && x.Step.IsConst() {
		lo, hi, st := x.Lo.ConstPart(), x.Hi.ConstPart(), x.Step.ConstPart()
		n := (hi-lo)/st + 1
		if n < 1 {
			n = 1
		}
		return expr.Const(lo + (n-1)*st)
	}
	return x.Hi
}

// Weight returns the per-iteration data weight carried by the edge.
func (e *Edge) Weight() expr.Poly { return e.Src.Weight() }

// TotalWeight returns the closed-form sum of the edge's data weight over
// its iteration space: W = Σ_{i∈I} w(i) (§3). The first call evaluates
// the sum; later calls return the cached value.
func (e *Edge) TotalWeight() int64 {
	if v := e.totW.Load(); v != 0 {
		return v - 1
	}
	w := e.Space().TotalOf(e.Weight())
	e.totW.Store(w + 1)
	return w
}

// ExpectedWeight is the control-weighted total weight c_e·W (§6).
func (e *Edge) ExpectedWeight() float64 { return e.Control * float64(e.TotalWeight()) }

// Graph is an alignment-distribution graph.
type Graph struct {
	Nodes []*Node
	Edges []*Edge
	Ports []*Port
	// TemplateRank is the dimensionality of the single template all
	// objects align to.
	TemplateRank int

	arena graphArena
}

// New returns an empty graph.
func New() *Graph { return &Graph{} }

// graphArena chunk-allocates the graph's nodes, ports, edges, and the
// backing storage of the per-node In/Out port lists: one allocation per
// chunk instead of one per object, which is most of what ADG
// construction allocates. Chunks are never reallocated or reused — the
// graph owns them for its lifetime — so every returned pointer is
// stable.
type graphArena struct {
	nodes []Node
	ports []Port
	edges []Edge
	refs  []*Port
}

const arenaChunk = 64

func (a *graphArena) node() *Node {
	if len(a.nodes) == cap(a.nodes) {
		a.nodes = make([]Node, 0, arenaChunk)
	}
	a.nodes = a.nodes[:len(a.nodes)+1]
	return &a.nodes[len(a.nodes)-1]
}

func (a *graphArena) port() *Port {
	if len(a.ports) == cap(a.ports) {
		a.ports = make([]Port, 0, arenaChunk)
	}
	a.ports = a.ports[:len(a.ports)+1]
	return &a.ports[len(a.ports)-1]
}

func (a *graphArena) edge() *Edge {
	if len(a.edges) == cap(a.edges) {
		a.edges = make([]Edge, 0, arenaChunk)
	}
	a.edges = a.edges[:len(a.edges)+1]
	return &a.edges[len(a.edges)-1]
}

// refSlice carves an empty port-pointer slice with capacity n (full
// slice expression: appends fill it in place, never past it).
func (a *graphArena) refSlice(n int) []*Port {
	if n == 0 {
		return nil
	}
	if cap(a.refs)-len(a.refs) < n {
		c := 4 * arenaChunk
		if n > c {
			c = n
		}
		a.refs = make([]*Port, 0, c)
	}
	start := len(a.refs)
	a.refs = a.refs[:start+n]
	return a.refs[start : start : start+n]
}

// AddNode creates a node of the given kind with the given numbers of
// input and output ports. Port ranks/extents/spaces are filled by the
// caller.
func (g *Graph) AddNode(kind Kind, label string, nIn, nOut int) *Node {
	n := g.arena.node()
	n.ID, n.Kind, n.Label = len(g.Nodes), kind, label
	n.In = g.arena.refSlice(nIn)
	for i := 0; i < nIn; i++ {
		p := g.arena.port()
		p.ID, p.Node, p.Index = len(g.Ports), n, i
		g.Ports = append(g.Ports, p)
		n.In = append(n.In, p)
	}
	n.Out = g.arena.refSlice(nOut)
	for i := 0; i < nOut; i++ {
		p := g.arena.port()
		p.ID, p.Node, p.Index, p.Output = len(g.Ports), n, i, true
		g.Ports = append(g.Ports, p)
		n.Out = append(n.Out, p)
	}
	g.Nodes = append(g.Nodes, n)
	return n
}

// Connect adds the edge src→dst. src must be an output (definition) port
// and dst an input (use) port, each not yet connected.
func (g *Graph) Connect(src, dst *Port) *Edge {
	if !src.Output || dst.Output {
		panic("adg: Connect requires an output port and an input port")
	}
	if src.Edge != nil || dst.Edge != nil {
		panic("adg: port already connected")
	}
	e := g.arena.edge()
	e.ID, e.Src, e.Dst, e.Control = len(g.Edges), src, dst, 1
	src.Edge, dst.Edge = e, e
	g.Edges = append(g.Edges, e)
	return e
}

// Validate checks structural invariants: every port connected to exactly
// one edge, edge endpoints of compatible rank, transformer specs present
// on transformer nodes, and section specs present on section nodes.
func (g *Graph) Validate() error {
	for _, p := range g.Ports {
		if p.Edge == nil {
			return fmt.Errorf("adg: port %d of node %d (%s %q) not connected",
				p.Index, p.Node.ID, p.Node.Kind, p.Node.Label)
		}
	}
	for _, e := range g.Edges {
		if e.Src.Rank != e.Dst.Rank {
			return fmt.Errorf("adg: edge %d rank mismatch: src %d dst %d",
				e.ID, e.Src.Rank, e.Dst.Rank)
		}
	}
	for _, n := range g.Nodes {
		switch n.Kind {
		case KindXform:
			if n.Xform == nil {
				return fmt.Errorf("adg: transformer node %d missing spec", n.ID)
			}
			if len(n.In) != 1 || len(n.Out) != 1 {
				return fmt.Errorf("adg: transformer node %d must have 1 in, 1 out", n.ID)
			}
		case KindSection, KindGather:
			if n.Section == nil {
				return fmt.Errorf("adg: %s node %d missing section spec", n.Kind, n.ID)
			}
		case KindSectionAssign:
			if n.Section == nil {
				return fmt.Errorf("adg: section-assign node %d missing spec", n.ID)
			}
			if len(n.In) != 2 {
				return fmt.Errorf("adg: section-assign node %d must have 2 inputs", n.ID)
			}
		case KindMerge:
			if len(n.In) < 2 {
				return fmt.Errorf("adg: merge node %d with %d inputs", n.ID, len(n.In))
			}
		case KindFanout, KindBranch:
			if len(n.Out) < 2 {
				return fmt.Errorf("adg: %s node %d with %d outputs", n.Kind, n.ID, len(n.Out))
			}
		}
	}
	return nil
}

// Dot renders the graph in Graphviz DOT format.
func (g *Graph) Dot() string {
	var b strings.Builder
	b.WriteString("digraph ADG {\n  rankdir=TB;\n  node [shape=box, fontname=\"monospace\"];\n")
	for _, n := range g.Nodes {
		label := n.Kind.String()
		if n.Label != "" {
			label += "\\n" + n.Label
		}
		shape := "box"
		switch n.Kind {
		case KindMerge, KindFanout, KindBranch:
			shape = "diamond"
		case KindXform:
			shape = "trapezium"
			label += "\\n(" + n.Xform.Kind.String() + " " + n.Xform.LIV + ")"
		}
		fmt.Fprintf(&b, "  n%d [label=\"%s\", shape=%s];\n", n.ID, label, shape)
	}
	for _, e := range g.Edges {
		fmt.Fprintf(&b, "  n%d -> n%d [label=\"e%d\"];\n", e.Src.Node.ID, e.Dst.Node.ID, e.ID)
	}
	b.WriteString("}\n")
	return b.String()
}

// Stats summarizes the graph.
func (g *Graph) Stats() string {
	counts := map[Kind]int{}
	for _, n := range g.Nodes {
		counts[n.Kind]++
	}
	var parts []string
	for k := KindSource; k <= KindGather; k++ {
		if counts[k] > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", k, counts[k]))
		}
	}
	return fmt.Sprintf("%d nodes (%s), %d edges, template rank %d",
		len(g.Nodes), strings.Join(parts, " "), len(g.Edges), g.TemplateRank)
}

// IterSpace is the iteration space labeling an edge inside a loop nest:
// one (LIV, lo, hi, step) level per enclosing loop, outermost first.
// Bounds are affine in outer LIVs, which represents imperfect and
// trapezoidal nests exactly (§4.4).
type IterSpace struct {
	LIVs         []string
	Lo, Hi, Step []expr.Affine
}

// ScalarSpace is the rank-0 iteration space of straight-line code.
func ScalarSpace() IterSpace { return IterSpace{} }

// Rank returns the loop-nest depth.
func (s IterSpace) Rank() int { return len(s.LIVs) }

// Extend returns the space with one more inner loop level.
func (s IterSpace) Extend(liv string, lo, hi, step expr.Affine) IterSpace {
	out := IterSpace{
		LIVs: append(append([]string{}, s.LIVs...), liv),
		Lo:   append(append([]expr.Affine{}, s.Lo...), lo),
		Hi:   append(append([]expr.Affine{}, s.Hi...), hi),
		Step: append(append([]expr.Affine{}, s.Step...), step),
	}
	return out
}

// Concrete converts the space to a concrete product of triplets when all
// bounds are constants.
func (s IterSpace) Concrete() (space.Space, bool) {
	dims := make([]space.Triplet, s.Rank())
	for k := 0; k < s.Rank(); k++ {
		if !s.Lo[k].IsConst() || !s.Hi[k].IsConst() || !s.Step[k].IsConst() {
			return space.Space{}, false
		}
		dims[k] = space.NewTriplet(s.Lo[k].ConstPart(), s.Hi[k].ConstPart(), s.Step[k].ConstPart())
	}
	return space.NewSpace(dims...), true
}

// Each enumerates the iteration vectors, evaluating nested affine bounds
// under the outer values. The env passed to f is reused.
func (s IterSpace) Each(f func(env map[string]int64) bool) {
	env := map[string]int64{}
	var rec func(k int) bool
	rec = func(k int) bool {
		if k == s.Rank() {
			return f(env)
		}
		t := space.NewTriplet(s.Lo[k].Eval(env), s.Hi[k].Eval(env), s.Step[k].Eval(env))
		n := t.Count()
		for j := int64(0); j < n; j++ {
			env[s.LIVs[k]] = t.At(j)
			if !rec(k + 1) {
				return false
			}
		}
		delete(env, s.LIVs[k])
		return true
	}
	rec(0)
}

// Size returns the number of iteration vectors (by enumeration for
// non-rectangular spaces, in closed form for concrete ones).
func (s IterSpace) Size() int64 {
	if c, ok := s.Concrete(); ok {
		return c.Size()
	}
	var n int64
	s.Each(func(map[string]int64) bool { n++; return true })
	return n
}

// TotalOf sums the polynomial w over the iteration space. Concrete
// spaces use the closed-form power sums; nested affine bounds are summed
// level by level symbolically.
func (s IterSpace) TotalOf(w expr.Poly) int64 {
	q := w
	for k := s.Rank() - 1; k >= 0; k-- {
		q = sumLevel(q, s.LIVs[k], s.Lo[k], s.Hi[k], s.Step[k])
	}
	c, ok := q.IsConst()
	if !ok {
		panic("adg: TotalOf left free variables: " + q.String())
	}
	return c
}

// sumLevel sums w over liv ∈ lo:hi:step where the bounds may be affine in
// outer LIVs. If the bounds are constant, closed forms apply directly;
// otherwise substitute liv = lo + step·j with symbolic lo and constant
// count when derivable, else fall back to enumeration of the level.
func sumLevel(w expr.Poly, liv string, lo, hi, step expr.Affine) expr.Poly {
	if lo.IsConst() && hi.IsConst() && step.IsConst() {
		t := space.NewTriplet(lo.ConstPart(), hi.ConstPart(), step.ConstPart())
		return expr.SumOverTriplet(w, liv, t)
	}
	// Count is ((hi-lo)/step)+1; it is affine-derivable only if step is
	// constant and divides all coefficients of (hi-lo). Handle the common
	// constant-count case; otherwise enumerate cannot happen symbolically
	// here, so substitute via the j-form with symbolic count — fall back
	// to requiring constant count.
	diff := hi.Sub(lo)
	if step.IsConst() {
		sc := step.ConstPart()
		allDiv := true
		for _, t := range diff.Terms() {
			if t.Coef%sc != 0 {
				allDiv = false
				break
			}
		}
		if allDiv && diff.ConstPart()%sc == 0 {
			// Trip count (hi-lo)/step + 1 as an affine form.
			nAff := expr.Const(1)
			for _, t := range diff.Terms() {
				nAff = nAff.Add(expr.Axpy(t.Coef/sc, t.Var, 0))
			}
			nAff = nAff.AddConst(diff.ConstPart() / sc)
			if nAff.IsConst() {
				// Constant trip count with symbolic lo: i = lo + j·step.
				nv := nAff.ConstPart()
				if nv < 0 {
					nv = 0
				}
				sub := lo.Poly().Add(expr.PolyVar("__j").ScaleInt(sc))
				q := w.Subst(liv, sub)
				out := expr.Poly{}
				for _, m := range q.Monomials() {
					jexp := 0
					rest := []expr.Pow{}
					for _, pw := range m.Pows {
						if pw.Var == "__j" {
							jexp = pw.Exp
						} else {
							rest = append(rest, pw)
						}
					}
					mono := expr.PolyConst(m.Coef)
					for _, pw := range rest {
						for e := 0; e < pw.Exp; e++ {
							mono = mono.Mul(expr.PolyVar(pw.Var))
						}
					}
					out = out.Add(mono.ScaleInt(expr.PowerSum(jexp, nv)))
				}
				return out
			}
		}
	}
	panic(fmt.Sprintf("adg: cannot sum over %s ∈ %s:%s:%s symbolically", liv, lo, hi, step))
}
