package adg

import "sort"

// This file decomposes an ADG into independently solvable regions.
//
// The cut rule is deliberately conservative: regions are the weakly
// connected components of the graph (edge direction ignored). A cut
// between two components provably cannot carry alignment constraints —
// no edge crosses it, so no discrete-metric term (§3), no replication
// min-cut capacity (§5), and no offset-LP θ term (§4) couples the two
// sides, and the solvers' objectives are sums over edges. Cuts at
// articulation points or bridges inside a component are NOT safe in
// general: every edge carries a discrete-metric term when its endpoint
// labels differ, the replication network clamps non-positive capacities
// to one (so even a zero-weight bridge constrains the min-cut), and the
// offset RLP anchors exactly one variable per connected port group —
// splitting at a bridge would change which variables are anchored and
// can select a different optimal vertex. Articulation points and
// bridges are therefore computed only as diagnostics (CutDiagnostics),
// to show how far a finer future cut rule could go.

// Region is one weakly connected component of a parent graph, extracted
// as a self-contained Graph with dense, order-preserving renumbering:
// region node i is the i-th parent node of the component in parent ID
// order, and likewise for ports and edges. Kind-specific payloads
// (section specs, transformer specs, extents, iteration spaces) are
// shared with the parent — they are immutable after construction — so
// extraction allocates only the graph skeleton.
type Region struct {
	Graph *Graph
	// Nodes[i] is the parent node ID of region node i (ascending).
	Nodes []int
	// Ports[i] is the parent port ID of region port i.
	Ports []int
	// Edges[i] is the parent edge ID of region edge i (ascending).
	Edges []int
}

// Partition is the decomposition of a graph into regions. The region
// list is canonically ordered by each region's smallest parent node ID,
// so two structurally identical graphs partition into identical lists —
// the property per-region content addressing relies on.
type Partition struct {
	Regions []*Region
	// NodeRegion maps parent node ID → index into Regions.
	NodeRegion []int
}

// PartitionGraph decomposes g into its weakly connected components. An
// empty graph yields zero regions; a connected graph yields exactly one
// whose Graph shares g's payloads but not its identity.
func PartitionGraph(g *Graph) *Partition {
	n := len(g.Nodes)
	p := &Partition{NodeRegion: make([]int, n)}
	if n == 0 {
		return p
	}
	// Union-find over parent node IDs; every edge merges its endpoints.
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(x int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]] // path halving
			x = parent[x]
		}
		return x
	}
	for _, e := range g.Edges {
		a, b := find(e.Src.Node.ID), find(e.Dst.Node.ID)
		if a != b {
			if a > b {
				a, b = b, a
			}
			parent[b] = a
		}
	}
	// Region indices in order of first appearance over ascending node
	// IDs — equivalently, regions sorted by smallest parent node ID.
	rootRegion := make(map[int]int)
	for _, nd := range g.Nodes {
		r := find(nd.ID)
		ri, ok := rootRegion[r]
		if !ok {
			ri = len(p.Regions)
			rootRegion[r] = ri
			p.Regions = append(p.Regions, &Region{Graph: New()})
		}
		p.NodeRegion[nd.ID] = ri
	}
	// Extract each region with order-preserving dense renumbering. Nodes
	// are visited in parent ID order and edges in parent ID order, so
	// region IDs are the ranks of the parent IDs within the component.
	portMap := make([]*Port, len(g.Ports))
	for _, nd := range g.Nodes {
		reg := p.Regions[p.NodeRegion[nd.ID]]
		rn := reg.Graph.AddNode(nd.Kind, nd.Label, len(nd.In), len(nd.Out))
		rn.Section = nd.Section
		rn.SpreadDim = nd.SpreadDim
		rn.SpreadCopies = nd.SpreadCopies
		rn.ReduceDim = nd.ReduceDim
		rn.Xform = nd.Xform
		rn.ReadOnly = nd.ReadOnly
		rn.CondMerge = nd.CondMerge
		reg.Nodes = append(reg.Nodes, nd.ID)
		for i, pp := range nd.In {
			rp := rn.In[i]
			rp.Rank, rp.Extents, rp.Space = pp.Rank, pp.Extents, pp.Space
			portMap[pp.ID] = rp
			reg.Ports = append(reg.Ports, pp.ID)
		}
		for i, pp := range nd.Out {
			rp := rn.Out[i]
			rp.Rank, rp.Extents, rp.Space = pp.Rank, pp.Extents, pp.Space
			portMap[pp.ID] = rp
			reg.Ports = append(reg.Ports, pp.ID)
		}
	}
	for _, e := range g.Edges {
		reg := p.Regions[p.NodeRegion[e.Src.Node.ID]]
		re := reg.Graph.Connect(portMap[e.Src.ID], portMap[e.Dst.ID])
		re.Control = e.Control
		reg.Edges = append(reg.Edges, e.ID)
	}
	for _, reg := range p.Regions {
		reg.Graph.TemplateRank = g.TemplateRank
	}
	return p
}

// CutDiagnostics reports the articulation points (parent node IDs) and
// bridges (parent edge IDs) of g's undirected skeleton, both ascending.
// These are the sites where a finer-than-component cut rule would
// split; the current solver decomposition does not use them (see the
// package comment above — such cuts do carry alignment constraints),
// so they are exposed purely for partition-quality inspection
// (adgdump -regions).
func CutDiagnostics(g *Graph) (articulation []int, bridges []int) {
	n := len(g.Nodes)
	if n == 0 {
		return nil, nil
	}
	type arc struct{ to, edge int }
	adj := make([][]arc, n)
	for _, e := range g.Edges {
		u, v := e.Src.Node.ID, e.Dst.Node.ID
		adj[u] = append(adj[u], arc{v, e.ID})
		adj[v] = append(adj[v], arc{u, e.ID})
	}
	disc := make([]int, n) // 0 = unvisited; else discovery time + 1
	low := make([]int, n)
	isArt := make([]bool, n)
	timer := 0
	type frame struct {
		node, parentEdge, next int
	}
	var stack []frame
	for root := 0; root < n; root++ {
		if disc[root] != 0 {
			continue
		}
		timer++
		disc[root], low[root] = timer, timer
		rootChildren := 0
		stack = append(stack[:0], frame{node: root, parentEdge: -1})
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.next < len(adj[f.node]) {
				a := adj[f.node][f.next]
				f.next++
				if a.edge == f.parentEdge {
					// Skip only the arrival edge instance: a parallel
					// edge between the same nodes has a different ID
					// and still provides a back path.
					continue
				}
				if disc[a.to] == 0 {
					if f.node == root {
						rootChildren++
					}
					timer++
					disc[a.to], low[a.to] = timer, timer
					stack = append(stack, frame{node: a.to, parentEdge: a.edge})
				} else if disc[a.to] < low[f.node] {
					low[f.node] = disc[a.to]
				}
				continue
			}
			// Frame exhausted: fold its low link into the parent.
			u := f.node
			stack = stack[:len(stack)-1]
			if len(stack) == 0 {
				continue
			}
			pf := &stack[len(stack)-1]
			if low[u] < low[pf.node] {
				low[pf.node] = low[u]
			}
			if low[u] > disc[pf.node] {
				bridges = append(bridges, f.parentEdge)
			}
			if pf.node != root && low[u] >= disc[pf.node] {
				isArt[pf.node] = true
			}
		}
		if rootChildren >= 2 {
			isArt[root] = true
		}
	}
	for id, a := range isArt {
		if a {
			articulation = append(articulation, id)
		}
	}
	sort.Ints(bridges)
	return articulation, bridges
}
