package adg

import (
	"reflect"
	"testing"

	"repro/internal/expr"
)

// chain adds a Source→Op→Sink chain of rank-1 objects to g and returns
// the IDs of the three nodes.
func chain(g *Graph, label string) (src, op, sink int) {
	s := g.AddNode(KindSource, label, 0, 1)
	o := g.AddNode(KindOp, label+"op", 1, 1)
	k := g.AddNode(KindSink, label+"sink", 1, 0)
	for _, p := range g.Ports[len(g.Ports)-4:] {
		p.Rank = 1
		p.Extents = []expr.Affine{expr.Const(10)}
	}
	g.Connect(s.Out[0], o.In[0])
	g.Connect(o.Out[0], k.In[0])
	return s.ID, o.ID, k.ID
}

// TestPartitionComponents checks component discovery, canonical region
// ordering, dense order-preserving renumbering, and payload sharing on
// a graph whose two components interleave in construction order.
func TestPartitionComponents(t *testing.T) {
	g := New()
	g.TemplateRank = 2
	// Interleave construction: a's source, b's source, then the rest of
	// a, then the rest of b — region extraction must still see each
	// component's nodes in ascending parent ID order.
	sa := g.AddNode(KindSource, "a", 0, 1)
	sb := g.AddNode(KindSource, "b", 0, 1)
	ka := g.AddNode(KindSink, "asink", 1, 0)
	kb := g.AddNode(KindSink, "bsink", 1, 0)
	for _, p := range g.Ports {
		p.Rank = 1
		p.Extents = []expr.Affine{expr.Const(4)}
	}
	// Connect b's edge first: edge IDs must renumber per region too.
	g.Connect(sb.Out[0], kb.In[0])
	g.Connect(sa.Out[0], ka.In[0])

	p := PartitionGraph(g)
	if len(p.Regions) != 2 {
		t.Fatalf("regions = %d, want 2", len(p.Regions))
	}
	// Region 0 owns node 0 (a's source): canonical order is by smallest
	// parent node ID, not by edge order.
	r0, r1 := p.Regions[0], p.Regions[1]
	if !reflect.DeepEqual(r0.Nodes, []int{sa.ID, ka.ID}) {
		t.Errorf("region 0 nodes = %v, want [%d %d]", r0.Nodes, sa.ID, ka.ID)
	}
	if !reflect.DeepEqual(r1.Nodes, []int{sb.ID, kb.ID}) {
		t.Errorf("region 1 nodes = %v, want [%d %d]", r1.Nodes, sb.ID, kb.ID)
	}
	if !reflect.DeepEqual(p.NodeRegion, []int{0, 1, 0, 1}) {
		t.Errorf("NodeRegion = %v, want [0 1 0 1]", p.NodeRegion)
	}
	for ri, r := range p.Regions {
		if n := len(r.Graph.Nodes); n != 2 {
			t.Errorf("region %d: %d nodes, want 2", ri, n)
		}
		if n := len(r.Graph.Edges); n != 1 {
			t.Errorf("region %d: %d edges, want 1", ri, n)
		}
		if r.Graph.TemplateRank != g.TemplateRank {
			t.Errorf("region %d: template rank %d, want %d", ri, r.Graph.TemplateRank, g.TemplateRank)
		}
		if err := r.Graph.Validate(); err != nil {
			t.Errorf("region %d: %v", ri, err)
		}
		// Dense renumbering: region node i has ID i, and the port map
		// round-trips to the parent's payloads (shared, not copied).
		for i, nd := range r.Graph.Nodes {
			if nd.ID != i {
				t.Errorf("region %d node %d has ID %d", ri, i, nd.ID)
			}
		}
		for i, pp := range r.Graph.Ports {
			if pp.ID != i {
				t.Errorf("region %d port %d has ID %d", ri, i, pp.ID)
			}
			parent := g.Ports[r.Ports[i]]
			if &pp.Extents[0] != &parent.Extents[0] {
				t.Errorf("region %d port %d: extents copied, want shared with parent", ri, i)
			}
			if pp.Rank != parent.Rank {
				t.Errorf("region %d port %d: rank %d != parent %d", ri, i, pp.Rank, parent.Rank)
			}
		}
	}
	// b's only edge is parent edge 0 but lands in region 1 as edge 0.
	if !reflect.DeepEqual(r1.Edges, []int{0}) || !reflect.DeepEqual(r0.Edges, []int{1}) {
		t.Errorf("edge maps: region0 %v region1 %v, want [1] and [0]", r0.Edges, r1.Edges)
	}
}

// TestPartitionTrivial pins the degenerate shapes: an empty graph has
// zero regions and a connected graph exactly one with identity maps.
func TestPartitionTrivial(t *testing.T) {
	if p := PartitionGraph(New()); len(p.Regions) != 0 {
		t.Errorf("empty graph: %d regions, want 0", len(p.Regions))
	}
	g := New()
	g.TemplateRank = 1
	chain(g, "a")
	p := PartitionGraph(g)
	if len(p.Regions) != 1 {
		t.Fatalf("connected graph: %d regions, want 1", len(p.Regions))
	}
	r := p.Regions[0]
	for i, id := range r.Nodes {
		if id != i {
			t.Errorf("node map[%d] = %d, want identity", i, id)
		}
	}
	for i, id := range r.Ports {
		if id != i {
			t.Errorf("port map[%d] = %d, want identity", i, id)
		}
	}
	for i, id := range r.Edges {
		if id != i {
			t.Errorf("edge map[%d] = %d, want identity", i, id)
		}
	}
}

// TestCutDiagnostics checks articulation points and bridges on three
// canonical shapes: a path (interior node articulates, every edge is a
// bridge), a cycle (nothing cuts), and a pair of parallel edges (not a
// bridge — the twin edge keeps the endpoints connected).
func TestCutDiagnostics(t *testing.T) {
	mk := func(n int) (*Graph, []*Node) {
		g := New()
		nodes := make([]*Node, n)
		for i := range nodes {
			nodes[i] = g.AddNode(KindOp, "", 2, 2)
		}
		return g, nodes
	}

	// Path 0-1-2 (two chained edges through distinct ports).
	g, nd := mk(3)
	g.Connect(nd[0].Out[0], nd[1].In[0])
	g.Connect(nd[1].Out[0], nd[2].In[0])
	arts, bridges := CutDiagnostics(g)
	if !reflect.DeepEqual(arts, []int{1}) {
		t.Errorf("path: articulation = %v, want [1]", arts)
	}
	if !reflect.DeepEqual(bridges, []int{0, 1}) {
		t.Errorf("path: bridges = %v, want [0 1]", bridges)
	}

	// Cycle 0→1→2→0.
	g, nd = mk(3)
	g.Connect(nd[0].Out[0], nd[1].In[0])
	g.Connect(nd[1].Out[0], nd[2].In[0])
	g.Connect(nd[2].Out[0], nd[0].In[0])
	arts, bridges = CutDiagnostics(g)
	if len(arts) != 0 || len(bridges) != 0 {
		t.Errorf("cycle: articulation = %v bridges = %v, want none", arts, bridges)
	}

	// Parallel edges 0⇒1.
	g, nd = mk(2)
	g.Connect(nd[0].Out[0], nd[1].In[0])
	g.Connect(nd[0].Out[1], nd[1].In[1])
	arts, bridges = CutDiagnostics(g)
	if len(arts) != 0 || len(bridges) != 0 {
		t.Errorf("parallel edges: articulation = %v bridges = %v, want none", arts, bridges)
	}
}
