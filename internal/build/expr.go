package build

import (
	"fmt"

	"repro/internal/adg"
	"repro/internal/expr"
	"repro/internal/lang"
	"repro/internal/space"
)

// expr builds the data flow for an expression and returns the definition
// carrying its value, or nil for a purely scalar expression (numbers,
// induction variables, and arithmetic over them) that moves no array
// data.
func (b *builder) expr(e lang.Expr) (*defTok, error) {
	switch x := e.(type) {
	case *lang.Num:
		return nil, nil
	case *lang.ArrayRef:
		return b.ref(x)
	case *lang.BinOp:
		l, err := b.expr(x.L)
		if err != nil {
			return nil, err
		}
		r, err := b.expr(x.R)
		if err != nil {
			return nil, err
		}
		return b.op(x.Op, l, r)
	case *lang.Call:
		return b.call(x)
	}
	return nil, fmt.Errorf("build: unknown expression %T", e)
}

// op creates an elementwise Op node over the array-valued operands, in
// source order (nil operands are scalars folded into the operation).
func (b *builder) op(label string, operands ...*defTok) (*defTok, error) {
	var ins []*defTok
	for _, v := range operands {
		if v != nil {
			ins = append(ins, v)
		}
	}
	if len(ins) == 0 {
		return nil, nil
	}
	n := b.g.AddNode(adg.KindOp, label, len(ins), 1)
	best := ins[0]
	for i, v := range ins {
		b.use(v, n.In[i])
		if v.port.Rank > best.port.Rank {
			best = v
		}
	}
	b.setPort(n.Out[0], best.port.Rank, best.port.Extents)
	return b.newTok(n.Out[0], ""), nil
}

func (b *builder) ref(x *lang.ArrayRef) (*defTok, error) {
	if b.isLIV(x.Name) {
		return nil, nil
	}
	d := b.info.Decl(x.Name)
	if d == nil {
		return nil, fmt.Errorf("build: reference to undeclared array %q", x.Name)
	}
	if len(x.Subs) == 0 {
		return b.defs[x.Name], nil
	}
	spec, outRank, outExt, err := b.sectionSpec(x, d)
	if err != nil {
		return nil, err
	}
	var idxVecs []string
	for i, sub := range spec.Subs {
		if sub.IsVector {
			idxVecs = append(idxVecs, x.Subs[i].Index.(*lang.ArrayRef).Name)
		}
	}
	if len(idxVecs) == 0 {
		n := b.g.AddNode(adg.KindSection, x.String(), 1, 1)
		n.Section = spec
		b.use(b.defs[x.Name], n.In[0])
		b.setPort(n.Out[0], outRank, outExt)
		return b.newTok(n.Out[0], ""), nil
	}
	// Vector-valued subscript: a Gather node whose inputs are the index
	// vector(s) followed by the table being indexed (In[1:] are the
	// candidates for replication in §5).
	n := b.g.AddNode(adg.KindGather, x.String(), len(idxVecs)+1, 1)
	n.Section = spec
	for i, iv := range idxVecs {
		b.use(b.defs[iv], n.In[i])
	}
	b.use(b.defs[x.Name], n.In[len(idxVecs)])
	b.setPort(n.Out[0], outRank, outExt)
	return b.newTok(n.Out[0], ""), nil
}

func (b *builder) call(x *lang.Call) (*defTok, error) {
	arg := func(i int) (*defTok, error) { return b.expr(x.Args[i]) }
	switch x.Name {
	case "transpose":
		v, err := arg(0)
		if err != nil {
			return nil, err
		}
		if v == nil || v.port.Rank != 2 {
			return nil, fmt.Errorf("build: transpose needs a rank-2 array argument")
		}
		n := b.g.AddNode(adg.KindTranspose, "transpose", 1, 1)
		b.use(v, n.In[0])
		ext := []expr.Affine{v.port.Extents[1], v.port.Extents[0]}
		b.setPort(n.Out[0], 2, ext)
		return b.newTok(n.Out[0], ""), nil
	case "spread":
		v, err := arg(0)
		if err != nil {
			return nil, err
		}
		if v == nil {
			return nil, fmt.Errorf("build: spread of a scalar expression")
		}
		dimNum, ok := x.Args[1].(*lang.Num)
		if !ok {
			return nil, fmt.Errorf("build: spread dimension must be a constant")
		}
		copies, err := b.affine(x.Args[2])
		if err != nil {
			return nil, fmt.Errorf("build: spread copies: %v", err)
		}
		dim := int(dimNum.Val)
		n := b.g.AddNode(adg.KindSpread, "spread", 1, 1)
		n.SpreadDim = dim
		n.SpreadCopies = copies
		b.use(v, n.In[0])
		ext := make([]expr.Affine, 0, v.port.Rank+1)
		ext = append(ext, v.port.Extents[:dim-1]...)
		ext = append(ext, copies)
		ext = append(ext, v.port.Extents[dim-1:]...)
		b.setPort(n.Out[0], v.port.Rank+1, ext)
		return b.newTok(n.Out[0], ""), nil
	case "sum":
		v, err := arg(0)
		if err != nil {
			return nil, err
		}
		if v == nil {
			return nil, fmt.Errorf("build: sum of a scalar expression")
		}
		n := b.g.AddNode(adg.KindReduce, "sum", 1, 1)
		b.use(v, n.In[0])
		if len(x.Args) == 2 {
			dimNum, ok := x.Args[1].(*lang.Num)
			if !ok {
				return nil, fmt.Errorf("build: sum dimension must be a constant")
			}
			dim := int(dimNum.Val)
			n.ReduceDim = dim
			ext := make([]expr.Affine, 0, v.port.Rank-1)
			ext = append(ext, v.port.Extents[:dim-1]...)
			ext = append(ext, v.port.Extents[dim:]...)
			b.setPort(n.Out[0], v.port.Rank-1, ext)
		} else {
			n.ReduceDim = 0
			b.setPort(n.Out[0], 0, nil)
		}
		return b.newTok(n.Out[0], ""), nil
	case "cshift":
		// The shift amount is scalar; the shift itself is intrinsic
		// communication, so the node only constrains positions equal.
		v, err := arg(0)
		if err != nil {
			return nil, err
		}
		return b.op("cshift", v)
	case "min", "max":
		l, err := arg(0)
		if err != nil {
			return nil, err
		}
		r, err := arg(1)
		if err != nil {
			return nil, err
		}
		return b.op(x.Name, l, r)
	default:
		// Elementwise unary intrinsic (cos, abs, ...).
		v, err := arg(0)
		if err != nil {
			return nil, err
		}
		return b.op(x.Name, v)
	}
}

// sectionSpec translates a subscripted reference into the ADG section
// spec plus the section object's rank and extents.
func (b *builder) sectionSpec(x *lang.ArrayRef, d *lang.Decl) (*adg.SectionSpec, int, []expr.Affine, error) {
	if len(x.Subs) != d.Rank() {
		return nil, 0, nil, fmt.Errorf("build: %s subscripts rank-%d array with %d subscripts", x, d.Rank(), len(x.Subs))
	}
	spec := &adg.SectionSpec{}
	var ext []expr.Affine
	for dim, sub := range x.Subs {
		if sub.IsRange {
			lo, hi, step := expr.Const(1), expr.Const(d.Dims[dim]), expr.Const(1)
			var err error
			if sub.Lo != nil {
				if lo, err = b.affine(sub.Lo); err != nil {
					return nil, 0, nil, fmt.Errorf("build: %s: %v", x, err)
				}
			}
			if sub.Hi != nil {
				if hi, err = b.affine(sub.Hi); err != nil {
					return nil, 0, nil, fmt.Errorf("build: %s: %v", x, err)
				}
			}
			if sub.Step != nil {
				if step, err = b.affine(sub.Step); err != nil {
					return nil, 0, nil, fmt.Errorf("build: %s: %v", x, err)
				}
			}
			spec.Subs = append(spec.Subs, adg.SubSpec{IsRange: true, Lo: lo, Hi: hi, Step: step})
			count, err := b.tripCount(lo, hi, step)
			if err != nil {
				return nil, 0, nil, fmt.Errorf("build: %s: %v", x, err)
			}
			ext = append(ext, count)
			continue
		}
		if vr, ok := sub.Index.(*lang.ArrayRef); ok && !b.isLIV(vr.Name) {
			vd := b.info.Decl(vr.Name)
			if vd != nil && vd.Rank() == 1 && len(vr.Subs) == 0 {
				spec.Subs = append(spec.Subs, adg.SubSpec{IsVector: true})
				ext = append(ext, expr.Const(vd.Dims[0]))
				continue
			}
		}
		idx, err := b.affine(sub.Index)
		if err != nil {
			return nil, 0, nil, fmt.Errorf("build: %s: %v", x, err)
		}
		spec.Subs = append(spec.Subs, adg.SubSpec{Index: idx})
	}
	return spec, spec.OutRank(), ext, nil
}

// tripCount returns (hi-lo)/step + 1 as an affine form. When the count
// is not affinely derivable (mobile strides like 1:20*k:k), it falls
// back to evaluating the count at every point of the enclosing iteration
// space and succeeds if it is the same constant everywhere (§4.3 assumes
// section sizes independent of the induction variables).
func (b *builder) tripCount(lo, hi, step expr.Affine) (expr.Affine, error) {
	diff := hi.Sub(lo)
	if step.IsConst() {
		sc := step.ConstPart()
		if sc <= 0 {
			return expr.Affine{}, fmt.Errorf("non-positive section step %d", sc)
		}
		ok := diff.ConstPart()%sc == 0
		for _, t := range diff.Terms() {
			if t.Coef%sc != 0 {
				ok = false
			}
		}
		if ok {
			count := expr.Const(diff.ConstPart()/sc + 1)
			for _, t := range diff.Terms() {
				count = count.Add(expr.Axpy(t.Coef/sc, t.Var, 0))
			}
			return count, nil
		}
	}
	var count int64
	first := true
	same := true
	b.space.Each(func(env map[string]int64) bool {
		n := space.NewTriplet(lo.Eval(env), hi.Eval(env), step.Eval(env)).Count()
		if first {
			count, first = n, false
		} else if n != count {
			same = false
			return false
		}
		return true
	})
	if first {
		return expr.Affine{}, fmt.Errorf("empty iteration space for section bounds %s:%s:%s", lo, hi, step)
	}
	if !same {
		return expr.Affine{}, fmt.Errorf("section size %s:%s:%s varies across the iteration space", lo, hi, step)
	}
	return expr.Const(count), nil
}
