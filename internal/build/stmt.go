package build

import (
	"fmt"

	"repro/internal/adg"
	"repro/internal/expr"
	"repro/internal/lang"
)

func (b *builder) assign(st *lang.Assign) error {
	v, err := b.expr(st.RHS)
	if err != nil {
		return err
	}
	name := st.LHS.Name
	d := b.info.Decl(name)
	if d == nil {
		return fmt.Errorf("build: assignment to undeclared array %q", name)
	}
	if len(st.LHS.Subs) == 0 {
		v, err = b.fitValue(v, name, d.Rank(), b.declExtents(d))
		if err != nil {
			return err
		}
		if v.name == "" {
			v.name = name
		}
		b.defs[name] = v
		return nil
	}
	// Section assignment: Update node of §3.1.
	spec, outRank, secExt, err := b.sectionSpec(st.LHS, d)
	if err != nil {
		return err
	}
	for _, sub := range spec.Subs {
		if sub.IsVector {
			return fmt.Errorf("build: vector-valued subscript on assignment target %s", st.LHS)
		}
	}
	v, err = b.fitValue(v, name, outRank, secExt)
	if err != nil {
		return err
	}
	n := b.g.AddNode(adg.KindSectionAssign, st.LHS.String(), 2, 1)
	n.Section = spec
	b.use(b.defs[name], n.In[0])
	b.use(v, n.In[1])
	b.setPort(n.Out[0], d.Rank(), b.declExtents(d))
	b.defs[name] = b.newTok(n.Out[0], name)
	return nil
}

// fitValue adapts an RHS value to the assignment target: a scalar
// expression with no data flow becomes a fresh writable Source of the
// target shape, and a lower-rank value (e.g. a full reduction assigned to
// an array) is promoted through an elementwise Op node.
func (b *builder) fitValue(v *defTok, name string, rank int, ext []expr.Affine) (*defTok, error) {
	if v == nil {
		n := b.g.AddNode(adg.KindSource, name, 0, 1)
		b.setPort(n.Out[0], rank, ext)
		return b.newTok(n.Out[0], name), nil
	}
	if v.port.Rank == rank {
		return v, nil
	}
	if v.port.Rank > rank {
		return nil, fmt.Errorf("build: rank %d value assigned to rank-%d target %q", v.port.Rank, rank, name)
	}
	n := b.g.AddNode(adg.KindOp, "=", 1, 1)
	b.use(v, n.In[0])
	b.setPort(n.Out[0], rank, ext)
	return b.newTok(n.Out[0], name), nil
}

func (b *builder) loop(st *lang.Do) error {
	lo, err := b.affine(st.Lo)
	if err != nil {
		return fmt.Errorf("build: loop %s lower bound: %v", st.Var, err)
	}
	hi, err := b.affine(st.Hi)
	if err != nil {
		return fmt.Errorf("build: loop %s upper bound: %v", st.Var, err)
	}
	step := expr.Const(1)
	if st.Step != nil {
		if step, err = b.affine(st.Step); err != nil {
			return fmt.Errorf("build: loop %s step: %v", st.Var, err)
		}
	}

	assigned := map[string]bool{}
	collectAssigned(st.Body, assigned)
	referenced := map[string]bool{}
	b.collectReferenced(st.Body, referenced)

	outer := b.space
	inner := outer.Extend(st.Var, lo, hi, step)
	spec := adg.XformSpec{LIV: st.Var, Lo: lo, Hi: hi, Step: step}

	// One record per referenced array, in declaration order so the node
	// numbering (and hence every downstream solve) is deterministic.
	type loopArray struct {
		name     string
		assigned bool
		outerTok *defTok   // reaching def before the loop (read-only case)
		merge    *adg.Node // φ-node (assigned case)
	}
	var arrays []loopArray
	for _, d := range b.info.Program.Decls {
		if !referenced[d.Name] {
			continue
		}
		la := loopArray{name: d.Name, assigned: assigned[d.Name], outerTok: b.defs[d.Name]}

		entrySpec := spec
		entrySpec.Kind = adg.XformEntry
		entry := b.g.AddNode(adg.KindXform, d.Name, 1, 1)
		entry.Xform = &entrySpec
		b.use(b.defs[d.Name], entry.In[0])
		cur := b.defs[d.Name].port
		b.space = inner
		b.setPort(entry.Out[0], cur.Rank, cur.Extents)
		b.space = outer

		if la.assigned {
			m := b.g.AddNode(adg.KindMerge, d.Name, 2, 1)
			b.space = inner
			b.setPort(m.In[0], cur.Rank, cur.Extents)
			b.setPort(m.In[1], cur.Rank, cur.Extents)
			b.setPort(m.Out[0], cur.Rank, cur.Extents)
			b.space = outer
			entryTok := b.newTok(entry.Out[0], d.Name)
			entryTok.uses = append(entryTok.uses, useRec{port: m.In[0], ctl: b.ctl})
			la.merge = m
			b.defs[d.Name] = b.newTok(m.Out[0], d.Name)
		} else {
			b.defs[d.Name] = b.newTok(entry.Out[0], d.Name)
		}
		arrays = append(arrays, la)
	}

	b.space = inner
	b.livs = append(b.livs, st.Var)
	err = b.stmts(st.Body)
	b.livs = b.livs[:len(b.livs)-1]
	if err != nil {
		return err
	}

	for _, la := range arrays {
		if !la.assigned {
			// Reads attached to the entry transformer; the array's
			// reaching definition is unchanged by the loop.
			b.space = outer
			b.defs[la.name] = la.outerTok
			continue
		}
		final := b.defs[la.name]
		cur := final.port

		backSpec := spec
		backSpec.Kind = adg.XformLoopBack
		back := b.g.AddNode(adg.KindXform, la.name, 1, 1)
		back.Xform = &backSpec
		b.use(final, back.In[0])
		b.setPort(back.Out[0], cur.Rank, cur.Extents)
		b.g.Connect(back.Out[0], la.merge.In[1]).Control = b.ctl

		exitSpec := spec
		exitSpec.Kind = adg.XformExit
		exit := b.g.AddNode(adg.KindXform, la.name, 1, 1)
		exit.Xform = &exitSpec
		b.use(final, exit.In[0])
		b.space = outer
		b.setPort(exit.Out[0], cur.Rank, cur.Extents)
		b.space = inner
		b.defs[la.name] = b.newTok(exit.Out[0], la.name)
	}
	b.space = outer
	return nil
}

func (b *builder) cond(st *lang.If) error {
	// A condition referencing arrays consumes their values; the decision
	// itself leaves the data-parallel world, so sink the result.
	cv, err := b.expr(st.Cond)
	if err != nil {
		return err
	}
	if cv != nil {
		sink := b.g.AddNode(adg.KindSink, "cond", 1, 0)
		b.use(cv, sink.In[0])
	}

	assigned := map[string]bool{}
	collectAssigned(st.Then, assigned)
	collectAssigned(st.Else, assigned)

	type armArray struct {
		name                 string
		branch               *adg.Node
		thenTok, elseTok     *defTok
		thenFinal, elseFinal *defTok
	}
	var arrays []armArray
	for _, d := range b.info.Program.Decls {
		if !assigned[d.Name] {
			continue
		}
		cur := b.defs[d.Name].port
		br := b.g.AddNode(adg.KindBranch, d.Name, 1, 2)
		b.use(b.defs[d.Name], br.In[0])
		b.setPort(br.Out[0], cur.Rank, cur.Extents)
		b.setPort(br.Out[1], cur.Rank, cur.Extents)
		arrays = append(arrays, armArray{
			name:    d.Name,
			branch:  br,
			thenTok: b.newTok(br.Out[0], d.Name),
			elseTok: b.newTok(br.Out[1], d.Name),
		})
	}

	outerCtl := b.ctl
	b.ctl = outerCtl * 0.5
	for i := range arrays {
		b.defs[arrays[i].name] = arrays[i].thenTok
	}
	if err := b.stmts(st.Then); err != nil {
		b.ctl = outerCtl
		return err
	}
	for i := range arrays {
		arrays[i].thenFinal = b.defs[arrays[i].name]
		b.defs[arrays[i].name] = arrays[i].elseTok
	}
	if err := b.stmts(st.Else); err != nil {
		b.ctl = outerCtl
		return err
	}
	for i := range arrays {
		arrays[i].elseFinal = b.defs[arrays[i].name]
	}

	armCtl := b.ctl
	for i := range arrays {
		a := &arrays[i]
		cur := a.branch.Out[0]
		m := b.g.AddNode(adg.KindMerge, a.name, 2, 1)
		m.CondMerge = true
		b.ctl = armCtl
		b.use(a.thenFinal, m.In[0])
		b.use(a.elseFinal, m.In[1])
		b.ctl = outerCtl
		b.setPort(m.Out[0], cur.Rank, cur.Extents)
		b.defs[a.name] = b.newTok(m.Out[0], a.name)
	}
	b.ctl = outerCtl
	return nil
}
