// Package build constructs the alignment-distribution graph (ADG, §3)
// from an analyzed source program.
//
// The construction is a single forward walk over the statement list that
// maintains, per array, the *reaching definition*: the output port that
// carries the array's current value. Uses are recorded lazily against the
// reaching definition and materialized at the end of the walk — a
// definition with no uses flows to a Sink, one use becomes a direct edge,
// and several uses fan out through a Fanout node. Loops insert the three
// transformer nodes of §3.2 (entry, loop-back, exit) around arrays the
// body assigns, and an entry transformer only (no loop-back) around
// arrays the body merely reads, so a read-only array's mobile alignment
// is not pinned by a spurious loop-carried constraint. Conditionals
// insert Branch/Merge pairs with control weight ½ per arm (§6).
package build

import (
	"fmt"

	"repro/internal/adg"
	"repro/internal/expr"
	"repro/internal/lang"
)

// Build constructs the ADG for an analyzed program.
func Build(info *lang.Info) (*adg.Graph, error) {
	b := &builder{
		info:  info,
		g:     adg.New(),
		defs:  map[string]*defTok{},
		space: adg.ScalarSpace(),
		ctl:   1,
	}
	if err := b.run(); err != nil {
		return nil, err
	}
	return b.g, nil
}

// MustBuild is Build, panicking on error.
func MustBuild(info *lang.Info) *adg.Graph {
	g, err := Build(info)
	if err != nil {
		panic(err)
	}
	return g
}

// defTok is a reaching definition with its pending uses. Connections are
// deferred so that the def's fan-out degree is known before any edge is
// created.
type defTok struct {
	port *adg.Port
	name string // array name for Sink/Fanout labels
	ctl  float64
	uses []useRec
}

type useRec struct {
	port *adg.Port
	ctl  float64
}

type builder struct {
	info     *lang.Info
	g        *adg.Graph
	defs     map[string]*defTok // array name → reaching definition
	all      []*defTok          // every token ever created, creation order
	tokArena []defTok           // chunk storage behind all (see newTok)
	space    adg.IterSpace
	livs     []string
	ctl      float64 // control weight of the current context (½ per arm)
}

func (b *builder) run() error {
	prog := b.info.Program
	assigned := map[string]bool{}
	collectAssigned(prog.Stmts, assigned)
	for _, d := range prog.Decls {
		n := b.g.AddNode(adg.KindSource, d.Name, 0, 1)
		n.ReadOnly = !assigned[d.Name]
		b.setPort(n.Out[0], d.Rank(), b.declExtents(d))
		b.defs[d.Name] = b.newTok(n.Out[0], d.Name)
	}
	if err := b.stmts(prog.Stmts); err != nil {
		return err
	}
	b.materializeAll()
	for _, p := range b.g.Ports {
		if p.Rank > b.g.TemplateRank {
			b.g.TemplateRank = p.Rank
		}
	}
	if b.g.TemplateRank == 0 {
		b.g.TemplateRank = 1
	}
	return b.g.Validate()
}

func (b *builder) declExtents(d *lang.Decl) []expr.Affine {
	ext := make([]expr.Affine, len(d.Dims))
	for i, n := range d.Dims {
		ext[i] = expr.Const(n)
	}
	return ext
}

// collectAssigned records every array name appearing as an assignment
// target anywhere under stmts (transitively through loops/conditionals).
func collectAssigned(stmts []lang.Stmt, out map[string]bool) {
	for _, st := range stmts {
		switch s := st.(type) {
		case *lang.Assign:
			out[s.LHS.Name] = true
		case *lang.Do:
			collectAssigned(s.Body, out)
		case *lang.If:
			collectAssigned(s.Then, out)
			collectAssigned(s.Else, out)
		}
	}
}

// collectReferenced records every declared array referenced under stmts.
func (b *builder) collectReferenced(stmts []lang.Stmt, out map[string]bool) {
	var walkExpr func(e lang.Expr)
	walkExpr = func(e lang.Expr) {
		switch x := e.(type) {
		case *lang.ArrayRef:
			if b.info.Decl(x.Name) != nil {
				out[x.Name] = true
			}
			for _, sub := range x.Subs {
				for _, se := range []lang.Expr{sub.Index, sub.Lo, sub.Hi, sub.Step} {
					if se != nil {
						walkExpr(se)
					}
				}
			}
		case *lang.BinOp:
			walkExpr(x.L)
			walkExpr(x.R)
		case *lang.Call:
			for _, a := range x.Args {
				walkExpr(a)
			}
		}
	}
	var walk func(list []lang.Stmt)
	walk = func(list []lang.Stmt) {
		for _, st := range list {
			switch s := st.(type) {
			case *lang.Assign:
				walkExpr(s.LHS)
				walkExpr(s.RHS)
			case *lang.Do:
				walkExpr(s.Lo)
				walkExpr(s.Hi)
				if s.Step != nil {
					walkExpr(s.Step)
				}
				walk(s.Body)
			case *lang.If:
				walkExpr(s.Cond)
				walk(s.Then)
				walk(s.Else)
			}
		}
	}
	walk(stmts)
}

func (b *builder) isLIV(name string) bool {
	for _, v := range b.livs {
		if v == name {
			return true
		}
	}
	return false
}

func (b *builder) affine(e lang.Expr) (expr.Affine, error) {
	return lang.AffineExpr(e, b.isLIV)
}

func (b *builder) setPort(p *adg.Port, rank int, ext []expr.Affine) {
	p.Rank = rank
	p.Extents = ext
	p.Space = b.space
}

// copyAttrs makes dst carry the same object as src.
func copyAttrs(dst, src *adg.Port) {
	dst.Rank = src.Rank
	dst.Extents = src.Extents
	dst.Space = src.Space
}

// newTok chunk-allocates the token (the builder is short-lived, but a
// program has one token per definition — chunking them matches the ADG
// arena's one-allocation-per-chunk rhythm on the cold front end).
func (b *builder) newTok(p *adg.Port, name string) *defTok {
	if len(b.tokArena) == cap(b.tokArena) {
		b.tokArena = make([]defTok, 0, 64)
	}
	b.tokArena = b.tokArena[:len(b.tokArena)+1]
	t := &b.tokArena[len(b.tokArena)-1]
	t.port, t.name, t.ctl = p, name, b.ctl
	b.all = append(b.all, t)
	return t
}

// use records p as a consumer of tok's value; p's object attributes are
// copied from the definition.
func (b *builder) use(tok *defTok, p *adg.Port) {
	copyAttrs(p, tok.port)
	tok.uses = append(tok.uses, useRec{port: p, ctl: b.ctl})
}

func (b *builder) materializeAll() {
	for _, t := range b.all {
		switch len(t.uses) {
		case 0:
			sink := b.g.AddNode(adg.KindSink, t.name, 1, 0)
			copyAttrs(sink.In[0], t.port)
			b.g.Connect(t.port, sink.In[0]).Control = t.ctl
		case 1:
			b.g.Connect(t.port, t.uses[0].port).Control = t.uses[0].ctl
		default:
			fan := b.g.AddNode(adg.KindFanout, t.name, 1, len(t.uses))
			copyAttrs(fan.In[0], t.port)
			b.g.Connect(t.port, fan.In[0]).Control = t.ctl
			for i, u := range t.uses {
				copyAttrs(fan.Out[i], t.port)
				b.g.Connect(fan.Out[i], u.port).Control = u.ctl
			}
		}
	}
}

func (b *builder) stmts(list []lang.Stmt) error {
	for _, st := range list {
		var err error
		switch s := st.(type) {
		case *lang.Assign:
			err = b.assign(s)
		case *lang.Do:
			err = b.loop(s)
		case *lang.If:
			err = b.cond(s)
		default:
			err = fmt.Errorf("build: unknown statement %T", st)
		}
		if err != nil {
			return err
		}
	}
	return nil
}
