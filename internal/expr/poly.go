package expr

import (
	"fmt"
	"sort"
	"strings"
)

// Poly is a multivariate polynomial with int64 coefficients over named
// integer variables. Data weights (§2.3) and the per-edge communication
// sums of §4.3 are polynomials in the loop induction variables. The zero
// value is the zero polynomial. Poly values are immutable.
type Poly struct {
	monos []Mono // sorted by canonical key, no zero coefficients
}

// Mono is one monomial Coef·Π Var^Exp.
type Mono struct {
	Coef int64
	Pows []Pow // sorted by Var, exponents >= 1
}

// Pow is one factor Var^Exp of a monomial.
type Pow struct {
	Var string
	Exp int
}

func (m Mono) key() string {
	parts := make([]string, len(m.Pows))
	for i, p := range m.Pows {
		parts[i] = fmt.Sprintf("%s^%d", p.Var, p.Exp)
	}
	return strings.Join(parts, "*")
}

// cmpPows orders power products lexicographically by (Var, Exp) with
// shorter products first on ties — the same canonical order the string
// keys used to induce, without materializing them.
func cmpPows(a, b []Pow) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i].Var != b[i].Var {
			if a[i].Var < b[i].Var {
				return -1
			}
			return 1
		}
		if a[i].Exp != b[i].Exp {
			if a[i].Exp < b[i].Exp {
				return -1
			}
			return 1
		}
	}
	return len(a) - len(b)
}

// PolyConst returns the constant polynomial c.
func PolyConst(c int64) Poly {
	if c == 0 {
		return Poly{}
	}
	return Poly{monos: []Mono{{Coef: c}}}
}

// PolyVar returns the polynomial consisting of the single variable.
func PolyVar(name string) Poly {
	return Poly{monos: []Mono{{Coef: 1, Pows: []Pow{{Var: name, Exp: 1}}}}}
}

// normalize sorts ms into canonical order, combines equal power
// products, and drops zero coefficients. It owns ms (callers always
// pass freshly built slices) and compacts it in place.
func normalize(ms []Mono) Poly {
	if len(ms) == 0 {
		return Poly{}
	}
	sort.Slice(ms, func(i, j int) bool { return cmpPows(ms[i].Pows, ms[j].Pows) < 0 })
	out := ms[:0]
	for _, m := range ms {
		if len(out) > 0 && cmpPows(out[len(out)-1].Pows, m.Pows) == 0 {
			out[len(out)-1].Coef += m.Coef
			continue
		}
		out = append(out, m)
	}
	kept := out[:0]
	for _, m := range out {
		if m.Coef != 0 {
			kept = append(kept, m)
		}
	}
	if len(kept) == 0 {
		return Poly{}
	}
	return Poly{monos: kept}
}

// Monomials returns a copy of the monomials in canonical order.
func (p Poly) Monomials() []Mono {
	cp := make([]Mono, len(p.monos))
	copy(cp, p.monos)
	return cp
}

// IsZero reports whether p is the zero polynomial.
func (p Poly) IsZero() bool { return len(p.monos) == 0 }

// IsConst reports whether p has no variables, returning the constant.
func (p Poly) IsConst() (int64, bool) {
	switch len(p.monos) {
	case 0:
		return 0, true
	case 1:
		if len(p.monos[0].Pows) == 0 {
			return p.monos[0].Coef, true
		}
	}
	return 0, false
}

// Degree returns the total degree (-1 for the zero polynomial).
func (p Poly) Degree() int {
	d := -1
	for _, m := range p.monos {
		td := 0
		for _, pw := range m.Pows {
			td += pw.Exp
		}
		if td > d {
			d = td
		}
	}
	return d
}

// DegreeIn returns the degree in the named variable.
func (p Poly) DegreeIn(name string) int {
	d := 0
	for _, m := range p.monos {
		for _, pw := range m.Pows {
			if pw.Var == name && pw.Exp > d {
				d = pw.Exp
			}
		}
	}
	return d
}

// Vars returns the set of variables appearing in p, sorted.
func (p Poly) Vars() []string {
	set := map[string]bool{}
	for _, m := range p.monos {
		for _, pw := range m.Pows {
			set[pw.Var] = true
		}
	}
	vs := make([]string, 0, len(set))
	for v := range set {
		vs = append(vs, v)
	}
	sort.Strings(vs)
	return vs
}

// Add returns p + q.
func (p Poly) Add(q Poly) Poly {
	ms := make([]Mono, 0, len(p.monos)+len(q.monos))
	ms = append(ms, p.monos...)
	ms = append(ms, q.monos...)
	return normalize(ms)
}

// Sub returns p - q.
func (p Poly) Sub(q Poly) Poly { return p.Add(q.ScaleInt(-1)) }

// ScaleInt returns k·p.
func (p Poly) ScaleInt(k int64) Poly {
	if k == 0 {
		return Poly{}
	}
	ms := make([]Mono, len(p.monos))
	for i, m := range p.monos {
		ms[i] = Mono{Coef: m.Coef * k, Pows: m.Pows}
	}
	return Poly{monos: ms}
}

// Mul returns p · q.
func (p Poly) Mul(q Poly) Poly {
	ms := make([]Mono, 0, len(p.monos)*len(q.monos))
	for _, a := range p.monos {
		for _, b := range q.monos {
			ms = append(ms, mulMono(a, b))
		}
	}
	return normalize(ms)
}

func mulMono(a, b Mono) Mono {
	// Both factors keep their Pows sorted by Var, so the product is a
	// linear merge.
	out := Mono{Coef: a.Coef * b.Coef}
	if len(a.Pows)+len(b.Pows) > 0 {
		out.Pows = make([]Pow, 0, len(a.Pows)+len(b.Pows))
	}
	i, j := 0, 0
	for i < len(a.Pows) && j < len(b.Pows) {
		switch {
		case a.Pows[i].Var == b.Pows[j].Var:
			out.Pows = append(out.Pows, Pow{Var: a.Pows[i].Var, Exp: a.Pows[i].Exp + b.Pows[j].Exp})
			i++
			j++
		case a.Pows[i].Var < b.Pows[j].Var:
			out.Pows = append(out.Pows, a.Pows[i])
			i++
		default:
			out.Pows = append(out.Pows, b.Pows[j])
			j++
		}
	}
	out.Pows = append(out.Pows, a.Pows[i:]...)
	out.Pows = append(out.Pows, b.Pows[j:]...)
	return out
}

// Eval evaluates the polynomial under the given assignment. Missing
// variables evaluate as 0.
func (p Poly) Eval(env map[string]int64) int64 {
	total := int64(0)
	for _, m := range p.monos {
		v := m.Coef
		for _, pw := range m.Pows {
			x := env[pw.Var]
			for e := 0; e < pw.Exp; e++ {
				v *= x
			}
		}
		total += v
	}
	return total
}

// Subst replaces the named variable with the polynomial r.
func (p Poly) Subst(name string, r Poly) Poly {
	var ms []Mono
	for _, m := range p.monos {
		term := PolyConst(m.Coef)
		for _, pw := range m.Pows {
			var base Poly
			if pw.Var == name {
				base = r
			} else {
				base = PolyVar(pw.Var)
			}
			for e := 0; e < pw.Exp; e++ {
				term = term.Mul(base)
			}
		}
		ms = append(ms, term.monos...)
	}
	return normalize(ms)
}

// Equal reports whether p and q are the same polynomial.
func (p Poly) Equal(q Poly) bool {
	if len(p.monos) != len(q.monos) {
		return false
	}
	for i := range p.monos {
		a, b := p.monos[i], q.monos[i]
		if a.Coef != b.Coef || len(a.Pows) != len(b.Pows) {
			return false
		}
		for j := range a.Pows {
			if a.Pows[j] != b.Pows[j] {
				return false
			}
		}
	}
	return true
}

// String renders the polynomial in canonical monomial order.
func (p Poly) String() string {
	if len(p.monos) == 0 {
		return "0"
	}
	var b strings.Builder
	for i, m := range p.monos {
		c := m.Coef
		if i == 0 {
			if c < 0 {
				b.WriteString("-")
				c = -c
			}
		} else {
			if c < 0 {
				b.WriteString(" - ")
				c = -c
			} else {
				b.WriteString(" + ")
			}
		}
		if c != 1 || len(m.Pows) == 0 {
			fmt.Fprintf(&b, "%d", c)
		}
		for _, pw := range m.Pows {
			if pw.Exp == 1 {
				fmt.Fprintf(&b, "%s", pw.Var)
			} else {
				fmt.Fprintf(&b, "%s^%d", pw.Var, pw.Exp)
			}
		}
	}
	return b.String()
}
