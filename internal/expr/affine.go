// Package expr provides the symbolic machinery of the alignment analysis:
// affine forms in loop induction variables (the shape §2.4 of the paper
// restricts mobile alignments to), multivariate polynomials (data weights,
// §2.3), and closed-form sums of polynomials over index triplets
// (σ0, σ1, σ2 of §4.3).
package expr

import (
	"fmt"
	"sort"
	"strings"
)

// Affine is an affine form a0 + a1·x1 + ... + ak·xk over named integer
// variables (loop induction variables). The zero value is the constant 0.
// Affine values are immutable; all operations return new values.
type Affine struct {
	c     int64
	terms []Term // sorted by Var, no zero coefficients, no duplicates
}

// Term is one linear term Coef·Var of an affine form.
type Term struct {
	Var  string
	Coef int64
}

// Const returns the constant affine form c.
func Const(c int64) Affine { return Affine{c: c} }

// Var returns the affine form 1·name.
func Var(name string) Affine { return Axpy(1, name, 0) }

// Axpy returns the affine form coef·name + c.
func Axpy(coef int64, name string, c int64) Affine {
	if coef == 0 {
		return Affine{c: c}
	}
	return Affine{c: c, terms: []Term{{Var: name, Coef: coef}}}
}

// NewAffine builds an affine form from a constant and a coefficient map.
func NewAffine(c int64, coefs map[string]int64) Affine {
	terms := make([]Term, 0, len(coefs))
	for v, k := range coefs {
		if k != 0 {
			terms = append(terms, Term{Var: v, Coef: k})
		}
	}
	sort.Slice(terms, func(i, j int) bool { return terms[i].Var < terms[j].Var })
	return Affine{c: c, terms: terms}
}

// ConstPart returns the constant term a0.
func (a Affine) ConstPart() int64 { return a.c }

// Coef returns the coefficient of the named variable (0 if absent).
func (a Affine) Coef(name string) int64 {
	for _, t := range a.terms {
		if t.Var == name {
			return t.Coef
		}
	}
	return 0
}

// Terms returns a copy of the linear terms, sorted by variable name.
func (a Affine) Terms() []Term {
	cp := make([]Term, len(a.terms))
	copy(cp, a.terms)
	return cp
}

// EachTerm calls f for each linear term in variable order, stopping early
// if f returns false. Unlike Terms it does not allocate, which matters to
// callers on hot paths (label interning, candidate propagation).
func (a Affine) EachTerm(f func(Term) bool) {
	for _, t := range a.terms {
		if !f(t) {
			return
		}
	}
}

// Vars returns the variables with nonzero coefficients, sorted.
func (a Affine) Vars() []string {
	vs := make([]string, len(a.terms))
	for i, t := range a.terms {
		vs[i] = t.Var
	}
	return vs
}

// IsConst reports whether the form has no linear terms.
func (a Affine) IsConst() bool { return len(a.terms) == 0 }

// IsZero reports whether the form is identically zero.
func (a Affine) IsZero() bool { return a.c == 0 && len(a.terms) == 0 }

// Add returns a + b.
func (a Affine) Add(b Affine) Affine {
	out := Affine{c: a.c + b.c}
	out.terms = mergeTerms(a.terms, b.terms, 1)
	return out
}

// Sub returns a - b.
func (a Affine) Sub(b Affine) Affine {
	out := Affine{c: a.c - b.c}
	out.terms = mergeTerms(a.terms, b.terms, -1)
	return out
}

// AddConst returns a + c.
func (a Affine) AddConst(c int64) Affine {
	return Affine{c: a.c + c, terms: a.terms}
}

// Scale returns k·a.
func (a Affine) Scale(k int64) Affine {
	if k == 0 {
		return Affine{}
	}
	out := Affine{c: a.c * k, terms: make([]Term, len(a.terms))}
	for i, t := range a.terms {
		out.terms[i] = Term{Var: t.Var, Coef: t.Coef * k}
	}
	return out
}

// Neg returns -a.
func (a Affine) Neg() Affine { return a.Scale(-1) }

func mergeTerms(x, y []Term, sign int64) []Term {
	out := make([]Term, 0, len(x)+len(y))
	i, j := 0, 0
	for i < len(x) || j < len(y) {
		switch {
		case j == len(y) || (i < len(x) && x[i].Var < y[j].Var):
			out = append(out, x[i])
			i++
		case i == len(x) || y[j].Var < x[i].Var:
			out = append(out, Term{Var: y[j].Var, Coef: sign * y[j].Coef})
			j++
		default:
			c := x[i].Coef + sign*y[j].Coef
			if c != 0 {
				out = append(out, Term{Var: x[i].Var, Coef: c})
			}
			i++
			j++
		}
	}
	return out
}

// Eval evaluates the form under the given variable assignment. Variables
// missing from env evaluate as 0.
func (a Affine) Eval(env map[string]int64) int64 {
	v := a.c
	for _, t := range a.terms {
		v += t.Coef * env[t.Var]
	}
	return v
}

// Subst replaces the named variable with the affine form r.
func (a Affine) Subst(name string, r Affine) Affine {
	k := a.Coef(name)
	if k == 0 {
		return a
	}
	out := Affine{c: a.c}
	for _, t := range a.terms {
		if t.Var != name {
			out.terms = append(out.terms, t)
		}
	}
	return out.Add(r.Scale(k))
}

// Equal reports structural equality (same constant and coefficients).
func (a Affine) Equal(b Affine) bool {
	if a.c != b.c || len(a.terms) != len(b.terms) {
		return false
	}
	for i := range a.terms {
		if a.terms[i] != b.terms[i] {
			return false
		}
	}
	return true
}

// Compare imposes a total order on affine forms (for canonical sorting in
// dynamic-programming tables): first by terms lexicographically, then by
// constant.
func (a Affine) Compare(b Affine) int {
	for i := 0; i < len(a.terms) && i < len(b.terms); i++ {
		if a.terms[i].Var != b.terms[i].Var {
			if a.terms[i].Var < b.terms[i].Var {
				return -1
			}
			return 1
		}
		if a.terms[i].Coef != b.terms[i].Coef {
			if a.terms[i].Coef < b.terms[i].Coef {
				return -1
			}
			return 1
		}
	}
	if len(a.terms) != len(b.terms) {
		if len(a.terms) < len(b.terms) {
			return -1
		}
		return 1
	}
	switch {
	case a.c < b.c:
		return -1
	case a.c > b.c:
		return 1
	}
	return 0
}

// Key returns a canonical string usable as a map key.
func (a Affine) Key() string { return a.String() }

// Poly lifts the affine form to a polynomial.
func (a Affine) Poly() Poly {
	p := PolyConst(a.c)
	for _, t := range a.terms {
		p = p.Add(PolyVar(t.Var).ScaleInt(t.Coef))
	}
	return p
}

// String renders the form, e.g. "2k - 3" or "0".
func (a Affine) String() string {
	var b strings.Builder
	wrote := false
	for _, t := range a.terms {
		switch {
		case !wrote && t.Coef == 1:
			fmt.Fprintf(&b, "%s", t.Var)
		case !wrote && t.Coef == -1:
			fmt.Fprintf(&b, "-%s", t.Var)
		case !wrote:
			fmt.Fprintf(&b, "%d%s", t.Coef, t.Var)
		case t.Coef == 1:
			fmt.Fprintf(&b, " + %s", t.Var)
		case t.Coef == -1:
			fmt.Fprintf(&b, " - %s", t.Var)
		case t.Coef > 0:
			fmt.Fprintf(&b, " + %d%s", t.Coef, t.Var)
		default:
			fmt.Fprintf(&b, " - %d%s", -t.Coef, t.Var)
		}
		wrote = true
	}
	if !wrote {
		return fmt.Sprintf("%d", a.c)
	}
	if a.c > 0 {
		fmt.Fprintf(&b, " + %d", a.c)
	} else if a.c < 0 {
		fmt.Fprintf(&b, " - %d", -a.c)
	}
	return b.String()
}
