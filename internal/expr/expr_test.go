package expr

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/space"
)

func TestAffineBasics(t *testing.T) {
	a := Axpy(2, "k", 3) // 2k + 3
	b := Axpy(-2, "k", 1)
	sum := a.Add(b)
	if !sum.IsConst() || sum.ConstPart() != 4 {
		t.Errorf("sum = %v, want 4", sum)
	}
	if a.Eval(map[string]int64{"k": 5}) != 13 {
		t.Errorf("eval wrong")
	}
	if a.Coef("k") != 2 || a.Coef("j") != 0 {
		t.Errorf("coef wrong")
	}
	if got := a.Sub(a); !got.IsZero() {
		t.Errorf("a-a = %v", got)
	}
}

func TestAffineSubst(t *testing.T) {
	a := Axpy(2, "k", 1)                    // 2k+1
	b := a.Subst("k", Var("k").AddConst(3)) // 2(k+3)+1 = 2k+7
	want := Axpy(2, "k", 7)
	if !b.Equal(want) {
		t.Errorf("subst = %v, want %v", b, want)
	}
	c := a.Subst("k", Const(10))
	if !c.IsConst() || c.ConstPart() != 21 {
		t.Errorf("subst const = %v", c)
	}
}

func TestAffineString(t *testing.T) {
	cases := []struct {
		a    Affine
		want string
	}{
		{Const(0), "0"},
		{Const(-5), "-5"},
		{Var("k"), "k"},
		{Axpy(2, "k", -3), "2k - 3"},
		{Axpy(-1, "k", 1), "-k + 1"},
		{NewAffine(2, map[string]int64{"j": 1, "k": -4}), "j - 4k + 2"},
	}
	for _, c := range cases {
		if got := c.a.String(); got != c.want {
			t.Errorf("String = %q, want %q", got, c.want)
		}
	}
}

// Property: affine arithmetic agrees with pointwise evaluation.
func TestAffineArithmeticProperty(t *testing.T) {
	f := func(c1, k1, c2, k2 int16, kv int8) bool {
		a := Axpy(int64(k1), "k", int64(c1))
		b := Axpy(int64(k2), "k", int64(c2))
		env := map[string]int64{"k": int64(kv)}
		if a.Add(b).Eval(env) != a.Eval(env)+b.Eval(env) {
			return false
		}
		if a.Sub(b).Eval(env) != a.Eval(env)-b.Eval(env) {
			return false
		}
		if a.Scale(3).Eval(env) != 3*a.Eval(env) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPolyBasics(t *testing.T) {
	k := PolyVar("k")
	p := k.Mul(k).Add(k.ScaleInt(2)).Add(PolyConst(1)) // k² + 2k + 1
	if p.Degree() != 2 {
		t.Errorf("degree = %d", p.Degree())
	}
	env := map[string]int64{"k": 4}
	if p.Eval(env) != 25 {
		t.Errorf("eval = %d, want 25", p.Eval(env))
	}
	q := k.Add(PolyConst(1)).Mul(k.Add(PolyConst(1))) // (k+1)²
	if !p.Equal(q) {
		t.Errorf("%v != %v", p, q)
	}
}

func TestPolySubst(t *testing.T) {
	k, j := PolyVar("k"), PolyVar("j")
	p := k.Mul(k) // k²
	got := p.Subst("k", j.Add(PolyConst(1)))
	want := j.Mul(j).Add(j.ScaleInt(2)).Add(PolyConst(1))
	if !got.Equal(want) {
		t.Errorf("subst = %v, want %v", got, want)
	}
}

// Property: polynomial ring laws (commutativity, distributivity) hold
// pointwise on random evaluations.
func TestPolyRingProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	randPoly := func() Poly {
		p := PolyConst(int64(rng.Intn(7) - 3))
		for i := 0; i < rng.Intn(3); i++ {
			v := []string{"j", "k"}[rng.Intn(2)]
			term := PolyVar(v).ScaleInt(int64(rng.Intn(5) - 2))
			if rng.Intn(2) == 0 {
				term = term.Mul(PolyVar(v))
			}
			p = p.Add(term)
		}
		return p
	}
	for trial := 0; trial < 200; trial++ {
		a, b, c := randPoly(), randPoly(), randPoly()
		env := map[string]int64{"j": int64(rng.Intn(9) - 4), "k": int64(rng.Intn(9) - 4)}
		av, bv, cv := a.Eval(env), b.Eval(env), c.Eval(env)
		if a.Mul(b).Eval(env) != av*bv {
			t.Fatalf("mul mismatch")
		}
		if !a.Mul(b).Equal(b.Mul(a)) {
			t.Fatalf("mul not commutative")
		}
		if a.Mul(b.Add(c)).Eval(env) != av*(bv+cv) {
			t.Fatalf("distributivity fails")
		}
	}
}

func TestPowerSumAgainstBruteForce(t *testing.T) {
	for m := 0; m <= maxPowerSum; m++ {
		for n := int64(0); n <= 30; n++ {
			var want int64
			for j := int64(0); j < n; j++ {
				p := int64(1)
				for e := 0; e < m; e++ {
					p *= j
				}
				want += p
			}
			if got := PowerSum(m, n); got != want {
				t.Errorf("PowerSum(%d, %d) = %d, want %d", m, n, got, want)
			}
		}
	}
}

func TestSigmaClosedForms(t *testing.T) {
	// σ0, σ1, σ2 of §4.3 against brute force over assorted triplets.
	cases := []space.Triplet{
		space.NewTriplet(1, 100, 1),
		space.NewTriplet(5, 50, 3),
		space.NewTriplet(-10, 10, 2),
		space.NewTriplet(7, 7, 1),
		space.NewTriplet(10, 1, -2),
	}
	for _, tr := range cases {
		var s0, s1, s2 int64
		for _, i := range tr.Values() {
			s0++
			s1 += i
			s2 += i * i
		}
		if got := Sigma0(tr); got != s0 {
			t.Errorf("Sigma0(%v) = %d, want %d", tr, got, s0)
		}
		if got := Sigma1(tr); got != s1 {
			t.Errorf("Sigma1(%v) = %d, want %d", tr, got, s1)
		}
		if got := Sigma2(tr); got != s2 {
			t.Errorf("Sigma2(%v) = %d, want %d", tr, got, s2)
		}
	}
}

// Property: SumOverTriplet equals brute-force summation for random
// polynomials and triplets.
func TestSumOverTripletProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 300; trial++ {
		lo := int64(rng.Intn(20) - 10)
		step := int64(rng.Intn(5) + 1)
		cnt := int64(rng.Intn(20) + 1)
		tr := space.Triplet{Lo: lo, Hi: lo + (cnt-1)*step, Step: step}
		// Random poly in i (deg ≤ 3) and j (deg ≤ 1).
		p := PolyConst(int64(rng.Intn(9) - 4))
		for d := 1; d <= 3; d++ {
			c := int64(rng.Intn(7) - 3)
			term := PolyConst(c)
			for e := 0; e < d; e++ {
				term = term.Mul(PolyVar("i"))
			}
			p = p.Add(term)
		}
		p = p.Add(PolyVar("j").ScaleInt(int64(rng.Intn(5) - 2)))
		got := SumOverTriplet(p, "i", tr)
		jv := int64(rng.Intn(7) - 3)
		var want int64
		for _, iv := range tr.Values() {
			want += p.Eval(map[string]int64{"i": iv, "j": jv})
		}
		if got.Eval(map[string]int64{"j": jv}) != want {
			t.Fatalf("trial %d: SumOverTriplet(%v over %v) = %v (at j=%d: %d), want %d",
				trial, p, tr, got, jv, got.Eval(map[string]int64{"j": jv}), want)
		}
	}
}

func TestSumOverSpace(t *testing.T) {
	// Σ_{k=1..10} Σ_{j=1..k? no: rectangular} j·k over 1..10 × 1..5.
	s := space.NewSpace(space.NewTriplet(1, 10, 1), space.NewTriplet(1, 5, 1))
	p := PolyVar("k").Mul(PolyVar("j"))
	got := SumOverSpace(p, []string{"k", "j"}, s)
	c, ok := got.IsConst()
	if !ok {
		t.Fatalf("not constant: %v", got)
	}
	want := int64(55 * 15)
	if c != want {
		t.Errorf("SumOverSpace = %d, want %d", c, want)
	}
}

func TestSplitAtZeroCrossing(t *testing.T) {
	// span(i) = i - 5 over 1..10 → [1..4], [5..10] (0 counts nonnegative).
	parts := SplitAtZeroCrossing(Axpy(1, "i", -5), "i", space.NewTriplet(1, 10, 1))
	if len(parts) != 2 {
		t.Fatalf("parts = %v", parts)
	}
	if parts[0].Last() != 4 || parts[1].Lo != 5 {
		t.Errorf("split at wrong place: %v", parts)
	}
	// No crossing.
	parts = SplitAtZeroCrossing(Axpy(1, "i", 100), "i", space.NewTriplet(1, 10, 1))
	if len(parts) != 1 {
		t.Errorf("unexpected split: %v", parts)
	}
	// Constant span.
	parts = SplitAtZeroCrossing(Const(-3), "i", space.NewTriplet(1, 10, 1))
	if len(parts) != 1 {
		t.Errorf("constant span split: %v", parts)
	}
}

// Property: SumAbsAffineOverTriplet equals brute force.
func TestSumAbsAffineProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 300; trial++ {
		// Nonnegative index range and weight coefficients: data weights
		// are object sizes, never negative.
		lo := int64(rng.Intn(15))
		step := int64(rng.Intn(4) + 1)
		cnt := int64(rng.Intn(25) + 1)
		tr := space.Triplet{Lo: lo, Hi: lo + (cnt-1)*step, Step: step}
		w := Axpy(int64(rng.Intn(3)), "i", int64(rng.Intn(10)+1))
		a := Axpy(int64(rng.Intn(7)-3), "i", int64(rng.Intn(21)-10))
		got := SumAbsAffineOverTriplet(w, a, "i", tr)
		var want int64
		for _, iv := range tr.Values() {
			env := map[string]int64{"i": iv}
			av := a.Eval(env)
			if av < 0 {
				av = -av
			}
			want += w.Eval(env) * av
		}
		if got != want {
			t.Fatalf("trial %d: got %d, want %d (w=%v a=%v over %v)", trial, got, want, w, a, tr)
		}
	}
}
