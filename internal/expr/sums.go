package expr

import (
	"fmt"
	"math/big"

	"repro/internal/space"
)

// maxPowerSum is the largest exponent for which a closed-form power sum
// is provided. Degree-6 sums cover weight·span products far beyond what
// the paper's cost model (affine weight × affine span) requires.
const maxPowerSum = 6

// PowerSum returns S_m(n) = Σ_{j=0}^{n-1} j^m exactly. It panics if
// m > maxPowerSum or the result overflows int64.
func PowerSum(m int, n int64) int64 {
	if m < 0 || m > maxPowerSum {
		panic(fmt.Sprintf("expr: PowerSum exponent %d out of range", m))
	}
	if n <= 0 {
		return 0
	}
	N := big.NewInt(n)
	r := powerSumBig(m, N)
	if !r.IsInt64() {
		panic(fmt.Sprintf("expr: PowerSum(%d, %d) overflows int64", m, n))
	}
	return r.Int64()
}

// powerSumBig computes Σ_{j=0}^{n-1} j^m with Faulhaber closed forms.
func powerSumBig(m int, n *big.Int) *big.Int {
	one := big.NewInt(1)
	nm1 := new(big.Int).Sub(n, one) // n-1
	mul := func(xs ...*big.Int) *big.Int {
		r := big.NewInt(1)
		for _, x := range xs {
			r.Mul(r, x)
		}
		return r
	}
	div := func(x *big.Int, d int64) *big.Int {
		q, r := new(big.Int).QuoRem(x, big.NewInt(d), new(big.Int))
		if r.Sign() != 0 {
			panic("expr: power-sum closed form not integral")
		}
		return q
	}
	n2 := new(big.Int).Mul(n, n)
	twoN := new(big.Int).Lsh(n, 1)
	twoNm1 := new(big.Int).Sub(twoN, one) // 2n-1
	switch m {
	case 0:
		return new(big.Int).Set(n)
	case 1:
		return div(mul(n, nm1), 2)
	case 2:
		return div(mul(n, nm1, twoNm1), 6)
	case 3:
		return div(mul(n, n, nm1, nm1), 4)
	case 4:
		// n(n-1)(2n-1)(3n²-3n-1)/30
		t := new(big.Int).Sub(new(big.Int).Mul(big.NewInt(3), n2), new(big.Int).Mul(big.NewInt(3), n))
		t.Sub(t, one)
		return div(mul(n, nm1, twoNm1, t), 30)
	case 5:
		// n²(n-1)²(2n²-2n-1)/12
		t := new(big.Int).Sub(new(big.Int).Mul(big.NewInt(2), n2), new(big.Int).Mul(big.NewInt(2), n))
		t.Sub(t, one)
		return div(mul(n, n, nm1, nm1, t), 12)
	case 6:
		// n(n-1)(2n-1)(3n⁴-6n³+3n+1)/42
		n3 := new(big.Int).Mul(n2, n)
		n4 := new(big.Int).Mul(n2, n2)
		t := new(big.Int).Mul(big.NewInt(3), n4)
		t.Sub(t, new(big.Int).Mul(big.NewInt(6), n3))
		t.Add(t, new(big.Int).Mul(big.NewInt(3), n))
		t.Add(t, one)
		return div(mul(n, nm1, twoNm1, t), 42)
	}
	panic("unreachable")
}

// Sigma0 is σ0 = Σ_{i∈l:h:s} 1, the paper's closed form (h-l+s)/s for the
// element count (§4.3), computed robustly for any triplet.
func Sigma0(t space.Triplet) int64 { return t.Count() }

// Sigma1 is σ1 = Σ_{i∈l:h:s} i.
func Sigma1(t space.Triplet) int64 {
	n := t.Count()
	return t.Lo*n + t.Step*PowerSum(1, n)
}

// Sigma2 is σ2 = Σ_{i∈l:h:s} i².
func Sigma2(t space.Triplet) int64 {
	n := t.Count()
	return t.Lo*t.Lo*n + 2*t.Lo*t.Step*PowerSum(1, n) + t.Step*t.Step*PowerSum(2, n)
}

// SumOverTriplet symbolically sums p over the named variable ranging over
// triplet t, returning a polynomial in the remaining variables. It
// implements the paper's closed-form evaluation of polynomial weights
// (§3, §4.3) for arbitrary degree up to maxPowerSum.
func SumOverTriplet(p Poly, name string, t space.Triplet) Poly {
	n := t.Count()
	if n == 0 {
		return Poly{}
	}
	// Substitute i = lo + step·j, then sum each power of j in closed form.
	sub := PolyConst(t.Lo).Add(PolyVar("__j").ScaleInt(t.Step))
	q := p.Subst(name, sub)
	ms := make([]Mono, 0, len(q.monos))
	for _, m := range q.monos {
		jexp := 0
		rest := Mono{Coef: m.Coef}
		for _, pw := range m.Pows {
			if pw.Var == "__j" {
				jexp = pw.Exp
			} else {
				rest.Pows = append(rest.Pows, pw)
			}
		}
		rest.Coef *= PowerSum(jexp, n)
		ms = append(ms, rest)
	}
	return normalize(ms)
}

// SumOverSpace sums p over the whole iteration space, innermost variable
// last in names. names[k] is the LIV of space level k. The result is a
// constant (all variables eliminated) unless p mentions other variables.
func SumOverSpace(p Poly, names []string, s space.Space) Poly {
	if len(names) != s.Rank() {
		panic("expr: SumOverSpace name/rank mismatch")
	}
	q := p
	for k := s.Rank() - 1; k >= 0; k-- {
		q = SumOverTriplet(q, names[k], s.Dim(k))
	}
	return q
}

// SumAbsAffineOverTriplet computes Σ_{i∈t} w(i)·|a(i)| exactly, where w
// and a are affine in the single variable name. It splits the triplet at
// the zero crossing of a, so the result is exact — this is the reference
// against which the paper's subrange approximation (§4.2) is judged.
func SumAbsAffineOverTriplet(w, a Affine, name string, t space.Triplet) int64 {
	parts := SplitAtZeroCrossing(a, name, t)
	total := int64(0)
	for _, part := range parts {
		v := sumAffineProduct(w, a, name, part)
		if v < 0 {
			v = -v
		}
		total += v
	}
	return total
}

// sumAffineProduct computes Σ_{i∈t} w(i)·a(i) in closed form.
func sumAffineProduct(w, a Affine, name string, t space.Triplet) int64 {
	p := w.Poly().Mul(a.Poly())
	r := SumOverTriplet(p, name, t)
	c, ok := r.IsConst()
	if !ok {
		panic("expr: sumAffineProduct with free variables: " + r.String())
	}
	return c
}

// SplitAtZeroCrossing splits triplet t into at most two subranges such
// that the affine form a (in variable name) does not change sign within
// either (treating 0 as nonnegative). If a never changes sign over t, a
// single subrange is returned.
func SplitAtZeroCrossing(a Affine, name string, t space.Triplet) []space.Triplet {
	if t.Empty() {
		return nil
	}
	if a.Coef(name) == 0 {
		return []space.Triplet{t.Normalize()}
	}
	cut := firstFlip(a.ConstPart(), a.Coef(name), t)
	if cut < 0 { // no flip within range
		return []space.Triplet{t.Normalize()}
	}
	before, after := t.SplitAtIndex(cut)
	return []space.Triplet{before, after}
}

// firstFlip returns the 0-based iteration index of the first element whose
// strict sign (treating 0 as nonnegative) differs from the first element's,
// or -1 if no flip occurs. Binary search over the monotone affine form.
func firstFlip(a0, a1 int64, t space.Triplet) int64 {
	n := t.Count()
	val := func(k int64) int64 { return a0 + a1*t.At(k) }
	neg0 := val(0) < 0
	if (val(n-1) < 0) == neg0 {
		return -1
	}
	lo, hi := int64(1), n-1 // invariant: flip index in (lo-1, hi]
	for lo < hi {
		mid := (lo + hi) / 2
		if (val(mid) < 0) != neg0 {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}
