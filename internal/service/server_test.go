package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

const fig1Src = `
real A(100,100), V(200)
do k = 1, 100
  A(k,1:100) = A(k,1:100) + V(k:k+99)
enddo
`

// heavySrc is a 60-array transpose chain: over a second of DP and LP
// work on one CPU (but solvable — cost 0), so a millisecond deadline is
// guaranteed to fire mid-solve and a short drain window to overrun.
var heavySrc = heavyChain(60, 16)

// heavyChain builds a loop of `arrays` chained transposed updates, the
// slow-solve workload of the cancellation and drain tests.
func heavyChain(arrays, iters int) string {
	var b strings.Builder
	b.WriteString("real ")
	for i := 0; i < arrays; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "A%d(64,64)", i)
	}
	fmt.Fprintf(&b, "\ndo k = 1, %d\n", iters)
	for i := 1; i < arrays; i++ {
		fmt.Fprintf(&b, "  A%d = A%d + transpose(A%d)\n", i, i, i-1)
	}
	b.WriteString("enddo\n")
	return b.String()
}

func postJSON(t *testing.T, client *http.Client, url string, tenant string, body any) *http.Response {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeInto(t *testing.T, resp *http.Response, v any) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("decode response: %v", err)
	}
}

func TestSolveEndpoint(t *testing.T) {
	srv := New(Config{Workers: 2})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp := postJSON(t, ts.Client(), ts.URL+"/v1/solve", "", SolveRequest{Source: fig1Src})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve status = %d", resp.StatusCode)
	}
	var cold SolveResponse
	decodeInto(t, resp, &cold)
	if cold.CacheHit {
		t.Error("cold solve reported a cache hit")
	}
	if cold.Report == "" || cold.SolveNs <= 0 {
		t.Errorf("cold solve: empty report or non-positive latency: %+v", cold)
	}

	resp = postJSON(t, ts.Client(), ts.URL+"/v1/solve", "", SolveRequest{Source: fig1Src})
	var warm SolveResponse
	decodeInto(t, resp, &warm)
	if !warm.CacheHit {
		t.Error("second identical solve missed the cache")
	}
	if !warm.MemoHit {
		t.Error("second identical solve was not served by the source memo tier")
	}
	if warm.Cost != cold.Cost {
		t.Errorf("warm cost %d != cold cost %d", warm.Cost, cold.Cost)
	}

	// Option overrides are honored and rejected when unknown.
	resp = postJSON(t, ts.Client(), ts.URL+"/v1/solve", "", SolveRequest{Source: fig1Src, Strategy: "unroll"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("unroll solve status = %d", resp.StatusCode)
	}
	resp.Body.Close()
	resp = postJSON(t, ts.Client(), ts.URL+"/v1/solve", "", SolveRequest{Source: fig1Src, Strategy: "bogus"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus strategy status = %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestSolveRequestErrors(t *testing.T) {
	srv := New(Config{Workers: 1})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	for _, tc := range []struct {
		name string
		body string
		want int
	}{
		{"bad json", "{not json", http.StatusBadRequest},
		{"missing source", "{}", http.StatusBadRequest},
		{"parse error", `{"source":"this is not a program"}`, http.StatusUnprocessableEntity},
	} {
		resp, err := ts.Client().Post(ts.URL+"/v1/solve", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		var e errorResponse
		decodeInto(t, resp, &e)
		if resp.StatusCode != tc.want || e.Error == "" {
			t.Errorf("%s: status = %d (want %d), error %q", tc.name, resp.StatusCode, tc.want, e.Error)
		}
	}

	// Method and route misses are 405/404, not handler panics.
	resp, err := ts.Client().Get(ts.URL + "/v1/solve")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/solve status = %d, want 405", resp.StatusCode)
	}
}

// TestBatchStreamsAllSlots drives /v1/batch with a mixed batch (one slot
// a parse error) and checks the NDJSON protocol: one line per slot
// tagged with its input index, a trailing summary, failures isolated.
func TestBatchStreamsAllSlots(t *testing.T) {
	srv := New(Config{Workers: 2})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	programs := []string{
		fig1Src,
		"real B(64,48), C(48,64)\nB = B + transpose(C)\n",
		"syntactically wrong",
		"real U(200), F(200)\ndo k = 1, 100\n  U(k:k+99) = U(k:k+99) + F(k:k+99)\nenddo\n",
	}
	resp := postJSON(t, ts.Client(), ts.URL+"/v1/batch", "", BatchRequest{Programs: programs})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("batch content type = %q", ct)
	}

	seen := make(map[int]BatchSlot)
	var summary *BatchSummary
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Bytes()
		var probe struct {
			Summary bool `json:"summary"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		if probe.Summary {
			if summary != nil {
				t.Fatal("two summary lines")
			}
			summary = new(BatchSummary)
			if err := json.Unmarshal(line, summary); err != nil {
				t.Fatal(err)
			}
			continue
		}
		if summary != nil {
			t.Fatal("slot line after the summary")
		}
		var slot BatchSlot
		if err := json.Unmarshal(line, &slot); err != nil {
			t.Fatal(err)
		}
		if _, dup := seen[slot.Slot]; dup {
			t.Fatalf("slot %d reported twice", slot.Slot)
		}
		seen[slot.Slot] = slot
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(programs) {
		t.Fatalf("got %d slot lines, want %d", len(seen), len(programs))
	}
	if summary == nil || summary.Programs != len(programs) || summary.Failed != 1 {
		t.Fatalf("summary = %+v, want %d programs and 1 failure", summary, len(programs))
	}
	if seen[2].Error == "" {
		t.Error("bad slot 2 reported no error")
	}
	for _, i := range []int{0, 1, 3} {
		if seen[i].Error != "" {
			t.Errorf("slot %d failed: %s", i, seen[i].Error)
		}
	}
}

// TestTenantQuota429 exercises per-tenant admission: a batch heavier
// than the tenant's budget is rejected immediately with 429, an
// overridden tenant has its own budget, and throttles are counted.
func TestTenantQuota429(t *testing.T) {
	srv := New(Config{
		Workers:       2,
		TenantBudget:  2,
		TenantBudgets: map[string]int{"big": 8},
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	batch := BatchRequest{Programs: []string{fig1Src, fig1Src, fig1Src, fig1Src}}
	resp := postJSON(t, ts.Client(), ts.URL+"/v1/batch", "", batch)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota batch status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	var e errorResponse
	decodeInto(t, resp, &e)
	if e.Error == "" {
		t.Error("429 without an error body")
	}

	// The same batch under the overridden tenant is admitted.
	resp = postJSON(t, ts.Client(), ts.URL+"/v1/batch", "big", batch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("big-tenant batch status = %d", resp.StatusCode)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	stats := statsSnapshot(t, ts)
	var def, big *TenantStatsJSON
	for i := range stats.Tenants {
		switch stats.Tenants[i].Tenant {
		case "default":
			def = &stats.Tenants[i]
		case "big":
			big = &stats.Tenants[i]
		}
	}
	if def == nil || def.Throttled != 1 || def.InUse != 0 {
		t.Errorf("default tenant stats = %+v, want 1 throttled and 0 in use", def)
	}
	if big == nil || big.Throttled != 0 || big.Admitted != 1 || big.InUse != 0 {
		t.Errorf("big tenant stats = %+v, want 1 admitted, none throttled or in use", big)
	}
}

func statsSnapshot(t *testing.T, ts *httptest.Server) StatsResponse {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status = %d", resp.StatusCode)
	}
	var stats StatsResponse
	decodeInto(t, resp, &stats)
	return stats
}

// TestCancellationMidSolve checks that a deadline firing mid-solve
// yields an error response — never a partial labeling — and leaks no
// scheduler lease.
func TestCancellationMidSolve(t *testing.T) {
	srv := New(Config{Workers: 1})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp := postJSON(t, ts.Client(), ts.URL+"/v1/solve", "", SolveRequest{Source: heavySrc, TimeoutMS: 1})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("timed-out solve status = %d, want 504", resp.StatusCode)
	}
	var e errorResponse
	decodeInto(t, resp, &e)
	if e.Error == "" {
		t.Fatal("timed-out solve returned no error")
	}
	waitForIdle(t, srv)
}

func waitForIdle(t *testing.T, srv *Server) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st := srv.Scheduler().Stats()
		if st.Leased == 0 && st.Waiting == 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("scheduler never went idle: %+v", srv.Scheduler().Stats())
}

// TestMetricsScrape checks the Prometheus exposition: every line is a
// comment or a well-formed sample, the histogram is cumulative and
// consistent with its count, and the daemon's counters appear.
func TestMetricsScrape(t *testing.T) {
	srv := New(Config{Workers: 2, TenantBudget: 1})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	postJSON(t, ts.Client(), ts.URL+"/v1/solve", "", SolveRequest{Source: fig1Src}).Body.Close()
	postJSON(t, ts.Client(), ts.URL+"/v1/solve", "", SolveRequest{Source: fig1Src}).Body.Close()
	// One throttle for the tenant counter.
	postJSON(t, ts.Client(), ts.URL+"/v1/batch", "", BatchRequest{Programs: []string{fig1Src, fig1Src}}).Body.Close()

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status = %d", resp.StatusCode)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)

	sample := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? (NaN|[-+]?Inf|[-+0-9.eE]+)$`)
	bucket := regexp.MustCompile(`^alignd_solve_duration_seconds_bucket\{le="([^"]+)"\} ([0-9]+)$`)
	var bucketCounts []int64
	values := map[string]string{}
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		m := sample.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("malformed metrics line %q", line)
		}
		if bm := bucket.FindStringSubmatch(line); bm != nil {
			n, _ := strconv.ParseInt(bm[2], 10, 64)
			bucketCounts = append(bucketCounts, n)
		}
		values[strings.SplitN(line, " ", 2)[0]] = m[2]
	}
	if len(bucketCounts) != len(latencyBounds)+1 {
		t.Fatalf("%d histogram buckets, want %d", len(bucketCounts), len(latencyBounds)+1)
	}
	for i := 1; i < len(bucketCounts); i++ {
		if bucketCounts[i] < bucketCounts[i-1] {
			t.Fatalf("histogram not cumulative at bucket %d: %v", i, bucketCounts)
		}
	}
	count, _ := strconv.ParseInt(values["alignd_solve_duration_seconds_count"], 10, 64)
	if count != 2 || bucketCounts[len(bucketCounts)-1] != count {
		t.Errorf("histogram count = %d (+Inf bucket %d), want 2 solves", count, bucketCounts[len(bucketCounts)-1])
	}
	for _, want := range []string{
		`alignd_requests_total{endpoint="solve",code="200"}`,
		"alignd_cache_hits_total",
		"alignd_source_memo_hits_total",
		"alignd_source_memo_computes_total",
		`alignd_frontend_phase_seconds_total{phase="parse"}`,
		"alignd_queue_depth",
		"alignd_inflight_leases",
		`alignd_tenant_throttled_total{tenant="default"}`,
		"alignd_draining",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %s", want)
		}
	}
	// The warm repeat is served by the source memo tier in front of the
	// pipeline cache, so the hit lands in the memo counter.
	if v := values["alignd_source_memo_hits_total"]; v != "1" {
		t.Errorf("source memo hits = %s, want 1", v)
	}
	if v := values["alignd_source_memo_computes_total"]; v != "1" {
		t.Errorf("source memo computes = %s, want 1", v)
	}
	if v := values[`alignd_tenant_throttled_total{tenant="default"}`]; v != "1" {
		t.Errorf("default tenant throttles = %s, want 1", v)
	}
}

// TestDrainRejectsNewWork checks the quiescent-drain path: after Drain
// returns, solve/batch/healthz answer 503 while stats and metrics stay
// readable for the final flush.
func TestDrainRejectsNewWork(t *testing.T) {
	srv := New(Config{Workers: 1})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	if err := srv.Drain(time.Second); err != nil {
		t.Fatalf("idle drain: %v", err)
	}
	if !srv.Draining() {
		t.Fatal("Draining() false after Drain")
	}
	resp := postJSON(t, ts.Client(), ts.URL+"/v1/solve", "", SolveRequest{Source: fig1Src})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("solve while draining = %d, want 503", resp.StatusCode)
	}
	resp.Body.Close()
	resp = postJSON(t, ts.Client(), ts.URL+"/v1/batch", "", BatchRequest{Programs: []string{fig1Src}})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("batch while draining = %d, want 503", resp.StatusCode)
	}
	resp.Body.Close()
	hz, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining = %d, want 503", hz.StatusCode)
	}
	if !strings.Contains(srv.MetricsText(), "alignd_draining 1") {
		t.Error("metrics do not report draining")
	}
	if !statsSnapshot(t, ts).Draining {
		t.Error("stats do not report draining")
	}
}

// TestDrainCancelsOverdueWork starts a solve that cannot finish inside
// the drain window and checks the hard-cancel path: Drain reports the
// forced stop, the request gets an error (not a partial result), and
// every lease and quota slot is returned.
func TestDrainCancelsOverdueWork(t *testing.T) {
	srv := New(Config{Workers: 1})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	type result struct {
		status int
		body   SolveResponse
		err    error
	}
	done := make(chan result, 1)
	go func() {
		resp, err := ts.Client().Post(ts.URL+"/v1/solve", "application/json",
			strings.NewReader(fmt.Sprintf(`{"source":%q}`, heavySrc)))
		if err != nil {
			done <- result{err: err}
			return
		}
		defer resp.Body.Close()
		var r result
		r.status = resp.StatusCode
		json.NewDecoder(resp.Body).Decode(&r.body)
		done <- r
	}()

	deadline := time.Now().Add(10 * time.Second)
	for srv.Scheduler().Stats().Leased == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if srv.Scheduler().Stats().Leased == 0 {
		t.Fatal("heavy solve never started")
	}

	if err := srv.Drain(20 * time.Millisecond); err == nil {
		t.Fatal("Drain with overdue work returned nil, want forced-cancel error")
	}
	r := <-done
	if r.err != nil {
		t.Fatalf("request error: %v", r.err)
	}
	if r.status == http.StatusOK {
		t.Fatalf("hard-canceled solve returned 200 with body %+v", r.body)
	}
	waitForIdle(t, srv)
	for _, ten := range srv.quota.Stats() {
		if ten.InUse != 0 {
			t.Errorf("tenant %q still holds %d slots after drain", ten.Tenant, ten.InUse)
		}
	}
}
