// Package service is the embeddable core of cmd/alignd, the alignment
// daemon: the full batch engine (sharded singleflight cache, cooperative
// scheduler, pooled scratch) behind an HTTP API, so the cost of warm
// caches and arenas is amortized across millions of requests instead of
// one CLI process lifetime.
//
// Endpoints:
//
//	POST /v1/solve   one program  → JSON result
//	POST /v1/batch   many programs → NDJSON stream, one line per slot as
//	                 it completes (tagged with its input index), then a
//	                 summary line
//	GET  /v1/stats   JSON snapshot: scheduler occupancy, cache counters,
//	                 per-tenant admission, latency quantiles
//	GET  /metrics    Prometheus text format
//	GET  /healthz    200 while serving, 503 while draining
//
// Admission is per tenant (the X-Tenant header; unidentified callers
// share the "default" pool): each tenant holds a budget of concurrently
// admitted program slots, and a request that would exceed it is
// rejected with 429 immediately — quota never queues. Admitted slots
// then lease scheduler workers one per slot, so request concurrency is
// the parallelism grain and a tenant's quota bounds the scheduler
// capacity it can occupy.
//
// The server is an http.Handler; cmd/alignd wires it to a listener and
// signals. Drain turns every subsequent request into a 503, waits for
// in-flight work up to its timeout, then hard-cancels the leftovers
// (solves abort at their next cancellation check — never a partial
// labeling).
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/align"
	"repro/internal/lp"
)

// Config configures a Server.
type Config struct {
	// Workers is the scheduler's global worker budget (<= 0 means
	// GOMAXPROCS). One worker is leased per in-flight program slot.
	Workers int
	// CacheCap bounds the shared pipeline result cache (entries);
	// <= 0 means DefaultCacheCap entries.
	CacheCap int
	// TenantBudget is the default per-tenant budget of concurrently
	// admitted program slots. 0 derives 4× the worker budget (full
	// occupancy plus a bounded queue); negative means unlimited.
	TenantBudget int
	// TenantBudgets overrides the budget per tenant key (<= 0 entries
	// make that tenant unlimited).
	TenantBudgets map[string]int
	// SolveTimeout, when > 0, bounds every program slot's solve.
	SolveTimeout time.Duration
	// MaxBodyBytes caps request bodies (default 8 MiB).
	MaxBodyBytes int64
	// MaxBatchSlots caps programs per /v1/batch request (default 4096).
	MaxBatchSlots int

	// Strategy is the default mobile-offset strategy (zero value is
	// StrategyFixed, the paper's recommendation).
	Strategy align.Strategy
	// Subranges is the fixed-partitioning m (default 3).
	Subranges int
	// NoReplication disables §5 replication labeling.
	NoReplication bool
	// Partition enables compositional per-region caching.
	Partition bool
	// NoPresolve disables the offset-RLP presolver.
	NoPresolve bool
}

// Server is the alignment daemon core. Create it with New; it serves
// via ServeHTTP and shuts down via Drain.
type Server struct {
	cfg     Config
	sched   *align.Scheduler
	cache   *align.Cache
	quota   *align.TenantQuota
	metrics *metrics
	mux     *http.ServeMux

	draining atomic.Bool
	inflight sync.WaitGroup

	// hardCtx is canceled only when a drain times out: it aborts the
	// in-flight solves that did not finish inside the drain window.
	hardCtx    context.Context
	hardCancel context.CancelFunc
}

// New returns a ready-to-serve daemon core.
func New(cfg Config) *Server {
	if cfg.Subranges <= 0 {
		cfg.Subranges = 3
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 8 << 20
	}
	if cfg.MaxBatchSlots <= 0 {
		cfg.MaxBatchSlots = 4096
	}
	sched := align.NewScheduler(cfg.Workers)
	budget := cfg.TenantBudget
	if budget == 0 {
		budget = 4 * sched.Workers()
	} else if budget < 0 {
		budget = 0 // TenantQuota's "unlimited"
	}
	s := &Server{
		cfg:     cfg,
		sched:   sched,
		cache:   align.NewCache(cfg.CacheCap),
		quota:   align.NewTenantQuota(budget, cfg.TenantBudgets),
		metrics: newMetrics(),
		mux:     http.NewServeMux(),
	}
	s.hardCtx, s.hardCancel = context.WithCancel(context.Background())
	s.mux.HandleFunc("POST /v1/solve", s.handle("solve", s.serveSolve))
	s.mux.HandleFunc("POST /v1/batch", s.handle("batch", s.serveBatch))
	s.mux.HandleFunc("GET /v1/stats", s.handle("stats", s.serveStats))
	s.mux.HandleFunc("GET /metrics", s.handle("metrics", s.serveMetrics))
	s.mux.HandleFunc("GET /healthz", s.handle("healthz", s.serveHealthz))
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Scheduler exposes the daemon's scheduler for observability (stats
// snapshots in tests and the load-test harness's leak check).
func (s *Server) Scheduler() *align.Scheduler { return s.sched }

// Cache exposes the daemon's shared pipeline cache.
func (s *Server) Cache() *align.Cache { return s.cache }

// Draining reports whether Drain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain stops admitting work (every subsequent request gets 503) and
// waits for in-flight requests. If they do not finish within timeout
// (<= 0 waits forever), the leftovers are hard-canceled — their solves
// abort at the next cancellation check and report errors, never partial
// labelings — and Drain returns an error describing the forced stop.
// After Drain returns nil, no leases or request goroutines remain.
func (s *Server) Drain(timeout time.Duration) error {
	s.draining.Store(true)
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	var expire <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		expire = t.C
	}
	select {
	case <-done:
		return nil
	case <-expire:
	}
	s.hardCancel()
	select {
	case <-done:
		return fmt.Errorf("drain: in-flight work canceled after %v", timeout)
	case <-time.After(10 * time.Second):
		return fmt.Errorf("drain: requests still running %v after cancellation", timeout)
	}
}

// handle wraps an endpoint body with in-flight accounting and the
// per-endpoint request counter.
func (s *Server) handle(endpoint string, body func(http.ResponseWriter, *http.Request) int) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.inflight.Add(1)
		defer s.inflight.Done()
		s.metrics.inflightRequests.Add(1)
		defer s.metrics.inflightRequests.Add(-1)
		code := body(w, r)
		s.metrics.countRequest(endpoint, code)
	}
}

// SolveRequest is the /v1/solve body. Only Source is required; the
// option fields override the daemon's defaults for this request (they
// are part of the cache key, so differently configured requests never
// share results).
type SolveRequest struct {
	Source string `json:"source"`
	// Strategy overrides the mobile-offset strategy: "fixed", "unroll",
	// "search", "zerotrack", or "recursive".
	Strategy  string `json:"strategy,omitempty"`
	Subranges int    `json:"subranges,omitempty"`
	NoRepl    *bool  `json:"norepl,omitempty"`
	Partition *bool  `json:"partition,omitempty"`
	// TimeoutMS bounds this solve (capped by the daemon's own
	// SolveTimeout when both are set).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// SolveResponse is the /v1/solve result.
type SolveResponse struct {
	// Cost is the exact realignment cost total (element·hops of shift
	// plus element volume of general and broadcast communication).
	Cost      int64 `json:"cost"`
	General   int64 `json:"general"`
	Shift     int64 `json:"shift"`
	Broadcast int64 `json:"broadcast"`
	// CacheHit reports that any tier answered this solve: the source
	// memo in front of the pipeline, or the pipeline cache behind it.
	CacheHit bool `json:"cache_hit"`
	// MemoHit reports specifically that the source memo tier answered —
	// the request skipped lex, parse, sema, and ADG build entirely.
	MemoHit bool `json:"memo_hit,omitempty"`
	Regions int  `json:"regions"`
	// SolveNs is the server-side latency of this slot, including any
	// time queued for quota-admitted scheduler workers.
	SolveNs int64 `json:"solve_ns"`
	// Report is the human-readable pipeline report.
	Report string `json:"report"`
}

// BatchRequest is the /v1/batch body.
type BatchRequest struct {
	Programs  []string `json:"programs"`
	Strategy  string   `json:"strategy,omitempty"`
	Subranges int      `json:"subranges,omitempty"`
	NoRepl    *bool    `json:"norepl,omitempty"`
	Partition *bool    `json:"partition,omitempty"`
	// TimeoutMS bounds each slot's solve.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// BatchSlot is one NDJSON line of a /v1/batch response: the result (or
// error) of the program at input index Slot, emitted when it completes.
type BatchSlot struct {
	Slot     int    `json:"slot"`
	Cost     int64  `json:"cost"`
	CacheHit bool   `json:"cache_hit,omitempty"`
	SolveNs  int64  `json:"solve_ns"`
	Error    string `json:"error,omitempty"`
}

// BatchSummary is the final NDJSON line of a /v1/batch response.
type BatchSummary struct {
	Summary   bool  `json:"summary"`
	Programs  int   `json:"programs"`
	Failed    int   `json:"failed"`
	ElapsedNs int64 `json:"elapsed_ns"`
}

// errorResponse is the JSON body of every non-2xx answer.
type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) int {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v) //nolint:errcheck // a failed write means the client left
	return code
}

func writeErr(w http.ResponseWriter, code int, msg string) int {
	return writeJSON(w, code, errorResponse{Error: msg})
}

// tenantOf keys admission by the X-Tenant header; unidentified callers
// share the fair default pool.
func tenantOf(r *http.Request) string {
	if t := r.Header.Get("X-Tenant"); t != "" {
		return t
	}
	return "default"
}

// decodeBody parses the JSON request body under the size cap.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}

// requestCtx derives the slot context: it follows the client connection
// (a gone client cancels its own work) and the drain hard-cancel.
func (s *Server) requestCtx(r *http.Request) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(r.Context())
	stop := context.AfterFunc(s.hardCtx, cancel)
	return ctx, func() { stop(); cancel() }
}

// requestOptions lowers a request's option overrides onto the daemon
// defaults. An unknown strategy name is reported as an error.
func (s *Server) requestOptions(strategy string, subranges int, norepl, partition *bool) (align.Options, error) {
	st := s.cfg.Strategy
	switch strategy {
	case "":
	case "fixed":
		st = align.StrategyFixed
	case "unroll":
		st = align.StrategyUnroll
	case "search":
		st = align.StrategySingle
	case "zerotrack":
		st = align.StrategyZeroTrack
	case "recursive":
		st = align.StrategyRecursive
	default:
		return align.Options{}, fmt.Errorf("unknown strategy %q", strategy)
	}
	m := s.cfg.Subranges
	if subranges > 0 {
		m = subranges
	}
	repl := !s.cfg.NoReplication
	if norepl != nil {
		repl = !*norepl
	}
	part := s.cfg.Partition
	if partition != nil {
		part = *partition
	}
	presolve := lp.PresolveAuto
	if s.cfg.NoPresolve {
		presolve = lp.PresolveOff
	}
	return align.Options{
		Offset:      align.OffsetOptions{Strategy: st, M: m, Presolve: presolve},
		Replication: repl,
		Cache:       s.cache,
		Partition:   part,
	}, nil
}

// solveTimeout resolves the per-slot deadline: the tighter of the
// daemon's SolveTimeout and the request's timeout_ms.
func (s *Server) solveTimeout(reqMS int64) time.Duration {
	d := s.cfg.SolveTimeout
	if reqMS > 0 {
		r := time.Duration(reqMS) * time.Millisecond
		if d <= 0 || r < d {
			d = r
		}
	}
	return d
}

// solveOne runs one program slot: lease one scheduler worker, then the
// shared memo-aware source-to-cost pipeline (source memo tier in front,
// pooled front end on a miss) under the per-slot panic boundary. A
// canceled or expired ctx — before or during the solve — returns an
// error, never a partial labeling.
func (s *Server) solveOne(ctx context.Context, label, src string, opts align.Options, timeout time.Duration) (*repro.Result, error) {
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	release, err := s.sched.Acquire(ctx, 1)
	if err != nil {
		return nil, err
	}
	defer release()
	res, err := align.Protect(label, func() (*repro.Result, error) {
		return repro.AlignSourceLeased(ctx, s.sched, src, opts, 1)
	})
	if err == nil {
		s.metrics.observeFrontend(res.Frontend)
	}
	return res, err
}

// errCode maps a solve error to its HTTP status: deadline → 504,
// cancellation (client gone or drain hard-stop) → 503, anything else —
// parse errors, hostile programs, solver budgets — → 422.
func errCode(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	default:
		return http.StatusUnprocessableEntity
	}
}

func (s *Server) serveSolve(w http.ResponseWriter, r *http.Request) int {
	if s.draining.Load() {
		return writeErr(w, http.StatusServiceUnavailable, "draining: not accepting new work")
	}
	var req SolveRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		return writeErr(w, http.StatusBadRequest, err.Error())
	}
	if req.Source == "" {
		return writeErr(w, http.StatusBadRequest, "missing \"source\"")
	}
	opts, err := s.requestOptions(req.Strategy, req.Subranges, req.NoRepl, req.Partition)
	if err != nil {
		return writeErr(w, http.StatusBadRequest, err.Error())
	}
	tenant := tenantOf(r)
	if !s.quota.TryAcquire(tenant, 1) {
		w.Header().Set("Retry-After", "1")
		return writeErr(w, http.StatusTooManyRequests,
			fmt.Sprintf("tenant %q is over its quota of %d in-flight program slots", tenant, s.quota.Budget(tenant)))
	}
	defer s.quota.Release(tenant, 1)
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	t0 := time.Now()
	res, err := s.solveOne(ctx, "solve", req.Source, opts, s.solveTimeout(req.TimeoutMS))
	d := time.Since(t0)
	s.metrics.solveHist.observe(d)
	if err != nil {
		return writeErr(w, errCode(err), err.Error())
	}
	return writeJSON(w, http.StatusOK, SolveResponse{
		Cost:      res.Cost.Total(),
		General:   res.Cost.General,
		Shift:     res.Cost.Shift,
		Broadcast: res.Cost.Broadcast,
		CacheHit:  res.Align.CacheHit || res.MemoHit,
		MemoHit:   res.MemoHit,
		Regions:   res.Align.Regions,
		SolveNs:   int64(d),
		Report:    res.Report(),
	})
}

func (s *Server) serveBatch(w http.ResponseWriter, r *http.Request) int {
	if s.draining.Load() {
		return writeErr(w, http.StatusServiceUnavailable, "draining: not accepting new work")
	}
	var req BatchRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		return writeErr(w, http.StatusBadRequest, err.Error())
	}
	n := len(req.Programs)
	if n == 0 {
		return writeErr(w, http.StatusBadRequest, "missing \"programs\"")
	}
	if n > s.cfg.MaxBatchSlots {
		return writeErr(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("batch of %d programs exceeds the %d-slot cap", n, s.cfg.MaxBatchSlots))
	}
	opts, err := s.requestOptions(req.Strategy, req.Subranges, req.NoRepl, req.Partition)
	if err != nil {
		return writeErr(w, http.StatusBadRequest, err.Error())
	}
	tenant := tenantOf(r)
	if !s.quota.TryAcquire(tenant, n) {
		w.Header().Set("Retry-After", "1")
		return writeErr(w, http.StatusTooManyRequests,
			fmt.Sprintf("batch of %d slots exceeds tenant %q's quota of %d", n, tenant, s.quota.Budget(tenant)))
	}
	defer s.quota.Release(tenant, n)
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	timeout := s.solveTimeout(req.TimeoutMS)

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	flusher, _ := w.(http.Flusher)

	// Every slot runs in its own goroutine gated by the scheduler's
	// one-worker-per-slot lease; completed slots stream to the encoder
	// in completion order, tagged with their input index.
	t0 := time.Now()
	slots := make(chan BatchSlot)
	var wg sync.WaitGroup
	for i, src := range req.Programs {
		wg.Add(1)
		go func(i int, src string) {
			defer wg.Done()
			ts := time.Now()
			res, err := s.solveOne(ctx, fmt.Sprintf("batch slot %d", i), src, opts, timeout)
			d := time.Since(ts)
			s.metrics.solveHist.observe(d)
			slot := BatchSlot{Slot: i, SolveNs: int64(d)}
			if err != nil {
				slot.Error = err.Error()
			} else {
				slot.Cost = res.Cost.Total()
				slot.CacheHit = res.Align.CacheHit || res.MemoHit
			}
			slots <- slot
		}(i, src)
	}
	go func() {
		wg.Wait()
		close(slots)
	}()
	failed := 0
	for slot := range slots {
		if slot.Error != "" {
			failed++
		}
		enc.Encode(slot) //nolint:errcheck // client gone: slots still drain
		if flusher != nil {
			flusher.Flush()
		}
	}
	enc.Encode(BatchSummary{ //nolint:errcheck
		Summary: true, Programs: n, Failed: failed, ElapsedNs: int64(time.Since(t0)),
	})
	return http.StatusOK
}

// StatsResponse is the /v1/stats body.
type StatsResponse struct {
	UptimeNs  int64              `json:"uptime_ns"`
	Draining  bool               `json:"draining"`
	Requests  []requestCount     `json:"requests"`
	Scheduler SchedulerStatsJSON `json:"scheduler"`
	Cache     CacheStatsJSON     `json:"cache"`
	Tenants   []TenantStatsJSON  `json:"tenants"`
	SolveP50  float64            `json:"solve_p50_seconds"`
	SolveP99  float64            `json:"solve_p99_seconds"`
	SolveP999 float64            `json:"solve_p999_seconds"`
	Solves    int64              `json:"solves"`
}

// SchedulerStatsJSON mirrors align.SchedulerStats.
type SchedulerStatsJSON struct {
	Budget    int `json:"budget"`
	Available int `json:"available"`
	Leased    int `json:"leased"`
	Waiting   int `json:"waiting"`
}

// CacheStatsJSON is the shared cache's counter snapshot, covering both
// tiers: the pipeline-result cache and the source memo tier in front of
// it (memo_* fields).
type CacheStatsJSON struct {
	Len        int   `json:"len"`
	Hits       int64 `json:"hits"`
	Misses     int64 `json:"misses"`
	Computes   int64 `json:"computes"`
	Shared     int64 `json:"shared"`
	Contention int64 `json:"contention"`

	MemoLen      int   `json:"memo_len"`
	MemoHits     int64 `json:"memo_hits"`
	MemoMisses   int64 `json:"memo_misses"`
	MemoComputes int64 `json:"memo_computes"`
	MemoShared   int64 `json:"memo_shared"`
}

// TenantStatsJSON mirrors align.TenantStats.
type TenantStatsJSON struct {
	Tenant    string `json:"tenant"`
	Budget    int    `json:"budget"`
	InUse     int    `json:"in_use"`
	Admitted  int64  `json:"admitted"`
	Throttled int64  `json:"throttled"`
}

func (s *Server) serveStats(w http.ResponseWriter, r *http.Request) int {
	st := s.sched.Stats()
	hits, misses := s.cache.Counters()
	computes, shared := s.cache.FlightStats()
	mHits, mMisses, mShared, mComputes := s.cache.SourceCounters()
	p50, p99, p999 := s.metrics.solveHist.Quantiles()
	resp := StatsResponse{
		UptimeNs: int64(time.Since(s.metrics.start)),
		Draining: s.draining.Load(),
		Requests: s.metrics.requestCounts(),
		Scheduler: SchedulerStatsJSON{
			Budget: st.Budget, Available: st.Available, Leased: st.Leased, Waiting: st.Waiting,
		},
		Cache: CacheStatsJSON{
			Len: s.cache.Len(), Hits: hits, Misses: misses,
			Computes: computes, Shared: shared, Contention: s.cache.Contention(),
			MemoLen: s.cache.SourceLen(), MemoHits: mHits, MemoMisses: mMisses,
			MemoComputes: mComputes, MemoShared: mShared,
		},
		SolveP50: p50, SolveP99: p99, SolveP999: p999,
		Solves: s.metrics.solveHist.count.Load(),
	}
	for _, t := range s.quota.Stats() {
		resp.Tenants = append(resp.Tenants, TenantStatsJSON{
			Tenant: t.Tenant, Budget: t.Budget, InUse: t.InUse,
			Admitted: t.Admitted, Throttled: t.Throttled,
		})
	}
	return writeJSON(w, http.StatusOK, resp)
}

func (s *Server) serveMetrics(w http.ResponseWriter, r *http.Request) int {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	fmt.Fprint(w, s.MetricsText())
	return http.StatusOK
}

func (s *Server) serveHealthz(w http.ResponseWriter, r *http.Request) int {
	if s.draining.Load() {
		return writeErr(w, http.StatusServiceUnavailable, "draining")
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
	return http.StatusOK
}
