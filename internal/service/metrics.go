package service

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro"
)

// latencyBounds are the histogram bucket upper bounds in seconds. They
// span 200µs (a warm cache hit over loopback) to 60s (a pathological
// cold solve under full queueing) roughly geometrically, which keeps
// the interpolated p999 honest across four orders of magnitude.
var latencyBounds = []float64{
	0.0002, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// histogram is a fixed-bucket concurrent latency histogram. Observations
// and scrapes are lock-free; quantiles are linearly interpolated inside
// the winning bucket, the standard Prometheus histogram_quantile shape.
type histogram struct {
	counts []atomic.Int64 // len(latencyBounds)+1; last = +Inf overflow
	sumNs  atomic.Int64
	count  atomic.Int64
}

func newHistogram() *histogram {
	return &histogram{counts: make([]atomic.Int64, len(latencyBounds)+1)}
}

func (h *histogram) observe(d time.Duration) {
	s := d.Seconds()
	i := sort.SearchFloat64s(latencyBounds, s)
	h.counts[i].Add(1)
	h.sumNs.Add(int64(d))
	h.count.Add(1)
}

// quantile returns the q-quantile in seconds (0 when empty). The +Inf
// bucket reports the largest finite bound — a floor, clearly saturated.
func (h *histogram) quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum int64
	for i := range h.counts {
		c := h.counts[i].Load()
		if float64(cum)+float64(c) >= rank {
			if i >= len(latencyBounds) {
				return latencyBounds[len(latencyBounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = latencyBounds[i-1]
			}
			if c == 0 {
				return latencyBounds[i]
			}
			frac := (rank - float64(cum)) / float64(c)
			return lo + frac*(latencyBounds[i]-lo)
		}
		cum += c
	}
	return latencyBounds[len(latencyBounds)-1]
}

// Quantiles returns the (p50, p99, p999) of observed latencies.
func (h *histogram) Quantiles() (p50, p99, p999 float64) {
	return h.quantile(0.50), h.quantile(0.99), h.quantile(0.999)
}

// metrics is the daemon's counter registry. Request counters are keyed
// by endpoint and status code; the solve histogram observes per-program
// solve latency (each batch slot separately), which is the latency the
// E18 load-test percentiles track.
type metrics struct {
	start time.Time

	solveHist *histogram

	mu       sync.Mutex
	requests map[string]map[int]int64 // endpoint → status code → count

	inflightRequests atomic.Int64

	// Cumulative front-end phase time across all solves, in
	// nanoseconds. A source-memo hit contributes only key time — the
	// hash is all a hit costs.
	feLexNs, feParseNs, feSemaNs, feBuildNs, feKeyNs atomic.Int64
}

// observeFrontend accumulates one solve's per-phase front-end times.
func (m *metrics) observeFrontend(ft repro.FrontendTimes) {
	m.feLexNs.Add(int64(ft.Lex))
	m.feParseNs.Add(int64(ft.Parse))
	m.feSemaNs.Add(int64(ft.Sema))
	m.feBuildNs.Add(int64(ft.Build))
	m.feKeyNs.Add(int64(ft.Key))
}

func newMetrics() *metrics {
	return &metrics{
		start:     time.Now(),
		solveHist: newHistogram(),
		requests:  make(map[string]map[int]int64),
	}
}

func (m *metrics) countRequest(endpoint string, code int) {
	m.mu.Lock()
	byCode := m.requests[endpoint]
	if byCode == nil {
		byCode = make(map[int]int64)
		m.requests[endpoint] = byCode
	}
	byCode[code]++
	m.mu.Unlock()
}

// requestCounts returns a deterministic flat copy of the request
// counters, sorted by endpoint then code.
type requestCount struct {
	Endpoint string `json:"endpoint"`
	Code     int    `json:"code"`
	Count    int64  `json:"count"`
}

func (m *metrics) requestCounts() []requestCount {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []requestCount
	for ep, byCode := range m.requests {
		for code, n := range byCode {
			out = append(out, requestCount{Endpoint: ep, Code: code, Count: n})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Endpoint != out[j].Endpoint {
			return out[i].Endpoint < out[j].Endpoint
		}
		return out[i].Code < out[j].Code
	})
	return out
}

// MetricsText renders the Prometheus text-format scrape: request
// counters, the solve-latency histogram and its precomputed summary
// quantiles, queue/lease/cache gauges, and per-tenant admission
// counters. The output is deterministic (all label sets sorted).
func (s *Server) MetricsText() string {
	var b strings.Builder
	w := func(format string, args ...any) { fmt.Fprintf(&b, format, args...) }

	w("# HELP alignd_requests_total HTTP requests served, by endpoint and status code.\n")
	w("# TYPE alignd_requests_total counter\n")
	for _, rc := range s.metrics.requestCounts() {
		w("alignd_requests_total{endpoint=%q,code=\"%d\"} %d\n", rc.Endpoint, rc.Code, rc.Count)
	}

	h := s.metrics.solveHist
	w("# HELP alignd_solve_duration_seconds Per-program solve latency (each batch slot observed separately).\n")
	w("# TYPE alignd_solve_duration_seconds histogram\n")
	var cum int64
	for i, bound := range latencyBounds {
		cum += h.counts[i].Load()
		w("alignd_solve_duration_seconds_bucket{le=%q} %d\n", formatBound(bound), cum)
	}
	cum += h.counts[len(latencyBounds)].Load()
	w("alignd_solve_duration_seconds_bucket{le=\"+Inf\"} %d\n", cum)
	w("alignd_solve_duration_seconds_sum %g\n", float64(h.sumNs.Load())/1e9)
	w("alignd_solve_duration_seconds_count %d\n", h.count.Load())

	p50, p99, p999 := h.Quantiles()
	w("# HELP alignd_solve_latency_seconds Interpolated solve-latency quantiles from the histogram above.\n")
	w("# TYPE alignd_solve_latency_seconds summary\n")
	w("alignd_solve_latency_seconds{quantile=\"0.5\"} %g\n", p50)
	w("alignd_solve_latency_seconds{quantile=\"0.99\"} %g\n", p99)
	w("alignd_solve_latency_seconds{quantile=\"0.999\"} %g\n", p999)
	w("alignd_solve_latency_seconds_sum %g\n", float64(h.sumNs.Load())/1e9)
	w("alignd_solve_latency_seconds_count %d\n", h.count.Load())

	st := s.sched.Stats()
	w("# HELP alignd_queue_depth Admitted program slots blocked waiting for a scheduler worker.\n")
	w("# TYPE alignd_queue_depth gauge\n")
	w("alignd_queue_depth %d\n", st.Waiting)
	w("# HELP alignd_inflight_leases Scheduler workers currently leased to running solves.\n")
	w("# TYPE alignd_inflight_leases gauge\n")
	w("alignd_inflight_leases %d\n", st.Leased)
	w("# HELP alignd_worker_budget Total scheduler worker budget.\n")
	w("# TYPE alignd_worker_budget gauge\n")
	w("alignd_worker_budget %d\n", st.Budget)
	w("# HELP alignd_inflight_requests HTTP requests currently being served.\n")
	w("# TYPE alignd_inflight_requests gauge\n")
	w("alignd_inflight_requests %d\n", s.metrics.inflightRequests.Load())

	hits, misses := s.cache.Counters()
	computes, shared := s.cache.FlightStats()
	w("# HELP alignd_cache_hits_total Pipeline cache hits.\n# TYPE alignd_cache_hits_total counter\n")
	w("alignd_cache_hits_total %d\n", hits)
	w("# HELP alignd_cache_misses_total Pipeline cache misses (singleflight leaders).\n# TYPE alignd_cache_misses_total counter\n")
	w("alignd_cache_misses_total %d\n", misses)
	w("# HELP alignd_cache_shared_total Callers served by another caller's in-flight solve.\n# TYPE alignd_cache_shared_total counter\n")
	w("alignd_cache_shared_total %d\n", shared)
	w("# HELP alignd_cache_computes_total Pipeline executions admitted by the cache.\n# TYPE alignd_cache_computes_total counter\n")
	w("alignd_cache_computes_total %d\n", computes)
	w("# HELP alignd_cache_contention_total Cache shard-lock acquisitions that had to wait.\n# TYPE alignd_cache_contention_total counter\n")
	w("alignd_cache_contention_total %d\n", s.cache.Contention())

	mHits, mMisses, mShared, mComputes := s.cache.SourceCounters()
	w("# HELP alignd_source_memo_hits_total Source-memo hits: solves that skipped the front end entirely.\n# TYPE alignd_source_memo_hits_total counter\n")
	w("alignd_source_memo_hits_total %d\n", mHits)
	w("# HELP alignd_source_memo_misses_total Source-memo misses (front-end singleflight leaders).\n# TYPE alignd_source_memo_misses_total counter\n")
	w("alignd_source_memo_misses_total %d\n", mMisses)
	w("# HELP alignd_source_memo_shared_total Callers served by another caller's in-flight front end.\n# TYPE alignd_source_memo_shared_total counter\n")
	w("alignd_source_memo_shared_total %d\n", mShared)
	w("# HELP alignd_source_memo_computes_total Front-end executions admitted by the memo tier.\n# TYPE alignd_source_memo_computes_total counter\n")
	w("alignd_source_memo_computes_total %d\n", mComputes)

	w("# HELP alignd_frontend_phase_seconds_total Cumulative front-end wall time by phase across all solves.\n")
	w("# TYPE alignd_frontend_phase_seconds_total counter\n")
	w("alignd_frontend_phase_seconds_total{phase=\"lex\"} %g\n", float64(s.metrics.feLexNs.Load())/1e9)
	w("alignd_frontend_phase_seconds_total{phase=\"parse\"} %g\n", float64(s.metrics.feParseNs.Load())/1e9)
	w("alignd_frontend_phase_seconds_total{phase=\"sema\"} %g\n", float64(s.metrics.feSemaNs.Load())/1e9)
	w("alignd_frontend_phase_seconds_total{phase=\"build\"} %g\n", float64(s.metrics.feBuildNs.Load())/1e9)
	w("alignd_frontend_phase_seconds_total{phase=\"key\"} %g\n", float64(s.metrics.feKeyNs.Load())/1e9)

	tenants := s.quota.Stats()
	w("# HELP alignd_tenant_throttled_total Requests rejected by per-tenant quota (HTTP 429).\n")
	w("# TYPE alignd_tenant_throttled_total counter\n")
	for _, t := range tenants {
		w("alignd_tenant_throttled_total{tenant=%q} %d\n", t.Tenant, t.Throttled)
	}
	w("# HELP alignd_tenant_inuse_slots Program slots currently held, per tenant.\n")
	w("# TYPE alignd_tenant_inuse_slots gauge\n")
	for _, t := range tenants {
		w("alignd_tenant_inuse_slots{tenant=%q} %d\n", t.Tenant, t.InUse)
	}

	w("# HELP alignd_draining Whether the daemon is draining (1) or serving (0).\n")
	w("# TYPE alignd_draining gauge\n")
	if s.draining.Load() {
		w("alignd_draining 1\n")
	} else {
		w("alignd_draining 0\n")
	}
	w("# HELP alignd_uptime_seconds Seconds since the daemon started.\n")
	w("# TYPE alignd_uptime_seconds gauge\n")
	w("alignd_uptime_seconds %g\n", time.Since(s.metrics.start).Seconds())
	return b.String()
}

// formatBound renders a bucket bound the way Prometheus clients expect
// (no exponent notation for these magnitudes).
func formatBound(v float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.4f", v), "0"), ".")
}
