package lp

import (
	"math/rand"
	"testing"
)

// buildRandomLP constructs a feasible bounded problem with nv variables
// (a mix of free and nonnegative) and nc GE/LE constraints around a
// known feasible point.
func buildRandomLP(rng *rand.Rand, nv, nc int) *Problem {
	p := NewProblem()
	feas := make([]float64, nv)
	for v := 0; v < nv; v++ {
		free := rng.Intn(2) == 0
		p.AddVariable("x", 1+rng.Float64(), free)
		feas[v] = float64(rng.Intn(5))
		if free && rng.Intn(2) == 0 {
			feas[v] = -feas[v]
		}
	}
	for c := 0; c < nc; c++ {
		coefs := map[VarID]float64{}
		lhs := 0.0
		for k := 0; k < 3; k++ {
			v := VarID(rng.Intn(nv))
			co := float64(rng.Intn(5) - 2)
			coefs[v] += co
			lhs += co * feas[v]
		}
		if rng.Intn(2) == 0 {
			p.AddConstraint(coefs, GE, lhs-float64(rng.Intn(3)))
		} else {
			p.AddConstraint(coefs, LE, lhs+float64(rng.Intn(3)))
		}
	}
	// Bound free variables so the objective cannot run away.
	for v := 0; v < nv; v++ {
		p.AddConstraint(map[VarID]float64{VarID(v): 1}, GE, -10)
		p.AddConstraint(map[VarID]float64{VarID(v): 1}, LE, 10)
	}
	return p
}

// TestArenaReuseMatchesFreshSolve solves a sequence of random problems
// twice — once with fresh allocation, once carving every tableau from
// one shared arena — and requires identical objectives.
func TestArenaReuseMatchesFreshSolve(t *testing.T) {
	ar := NewArena()
	for trial := 0; trial < 40; trial++ {
		fresh := buildRandomLP(rand.New(rand.NewSource(int64(trial))), 6, 8)
		arena := buildRandomLP(rand.New(rand.NewSource(int64(trial))), 6, 8)
		arena.SetArena(ar)
		sf, ef := fresh.Solve()
		sa, ea := arena.Solve()
		if (ef == nil) != (ea == nil) {
			t.Fatalf("trial %d: fresh err=%v arena err=%v", trial, ef, ea)
		}
		if ef != nil {
			continue
		}
		if !almost(sf.Objective, sa.Objective) {
			t.Errorf("trial %d: fresh objective %g != arena objective %g", trial, sf.Objective, sa.Objective)
		}
	}
}

// TestWarmSolveMatchesColdResolve changes objective costs on a
// KeepBasis problem and checks the warm re-optimization agrees with a
// freshly built cold solve of the same problem.
func TestWarmSolveMatchesColdResolve(t *testing.T) {
	for trial := 0; trial < 40; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		warm := buildRandomLP(rng, 6, 8)
		warm.KeepBasis()
		if _, err := warm.Solve(); err != nil {
			continue // infeasible/unbounded instance: nothing to warm-start
		}
		for round := 0; round < 3; round++ {
			cold := buildRandomLP(rand.New(rand.NewSource(int64(1000+trial))), 6, 8)
			for v := 0; v < 6; v++ {
				c := float64(rng.Intn(4)) // includes 0: dead-edge θ case
				warm.SetCost(VarID(v), c)
				cold.costs[VarID(v)] = c
			}
			ws, errW := warm.WarmSolve()
			cs, errC := cold.Solve()
			if (errW == nil) != (errC == nil) {
				t.Fatalf("trial %d round %d: warm err=%v cold err=%v", trial, round, errW, errC)
			}
			if errW != nil {
				break
			}
			if !almost(ws.Objective, cs.Objective) {
				t.Errorf("trial %d round %d: warm objective %g != cold %g", trial, round, ws.Objective, cs.Objective)
			}
		}
	}
}

// TestWarmSolveFallsBackAfterStructuralChange adds a constraint after
// the basis was kept; WarmSolve must detect the mismatch and run a full
// cold solve instead of reusing the stale tableau.
func TestWarmSolveFallsBackAfterStructuralChange(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable("x", 1, false)
	p.AddConstraint(map[VarID]float64{x: 1}, GE, 2)
	p.KeepBasis()
	sol := solveOrFail(t, p)
	if !almost(sol.Value(x), 2) {
		t.Fatalf("x = %g, want 2", sol.Value(x))
	}
	p.AddConstraint(map[VarID]float64{x: 1}, GE, 5)
	sol2, err := p.WarmSolve()
	if err != nil {
		t.Fatalf("WarmSolve after structural change: %v", err)
	}
	if !almost(sol2.Value(x), 5) {
		t.Errorf("after added constraint x = %g, want 5 (stale basis reused?)", sol2.Value(x))
	}
}

// TestStatsAccounting checks the effort counters: cold solves increment
// Solves, warm re-solves increment WarmSolves, and Add merges.
func TestStatsAccounting(t *testing.T) {
	var st Stats
	p := NewProblem()
	x := p.AddVariable("x", 1, false)
	y := p.AddVariable("y", 2, false)
	p.AddConstraint(map[VarID]float64{x: 1, y: 1}, GE, 4)
	p.SetStats(&st)
	p.KeepBasis()
	solveOrFail(t, p)
	if st.Solves != 1 || st.WarmSolves != 0 {
		t.Fatalf("after cold solve: %+v", st)
	}
	p.SetCost(x, 5)
	if _, err := p.WarmSolve(); err != nil {
		t.Fatal(err)
	}
	if st.Solves != 1 || st.WarmSolves != 1 {
		t.Fatalf("after warm solve: %+v", st)
	}
	var total Stats
	total.Add(st)
	total.Add(st)
	if total.Solves != 2 || total.WarmSolves != 2 || total.Pivots != 2*st.Pivots {
		t.Fatalf("Add merge wrong: %+v from %+v", total, st)
	}
}

// TestStatsAccountingSparse checks the sparse-core counters: a cold
// sparse solve increments Solves and SparseSolves (plus at least one
// refactorization), a warm sparse re-solve increments WarmSolves and
// SparseSolves, and Add merges every new counter.
func TestStatsAccountingSparse(t *testing.T) {
	var st Stats
	p := buildRandomRLP(rand.New(rand.NewSource(7)), 8, 12)
	p.SetOptions(Options{Engine: EngineSparse})
	p.SetStats(&st)
	p.KeepBasis()
	solveOrFail(t, p)
	if st.Solves != 1 || st.SparseSolves != 1 || st.WarmSolves != 0 {
		t.Fatalf("after cold sparse solve: %+v", st)
	}
	if st.Refactors == 0 {
		t.Fatalf("cold sparse solve did not refactorize: %+v", st)
	}
	p.SetCost(0, 3)
	if _, err := p.WarmSolve(); err != nil {
		t.Fatal(err)
	}
	if st.Solves != 1 || st.WarmSolves != 1 || st.SparseSolves != 2 {
		t.Fatalf("after warm sparse solve: %+v", st)
	}
	st.NetSolves, st.Augments = 3, 17
	var total Stats
	total.Add(st)
	total.Add(st)
	if total.SparseSolves != 2*st.SparseSolves || total.Refactors != 2*st.Refactors ||
		total.NetSolves != 6 || total.Augments != 34 {
		t.Fatalf("Add merge wrong: %+v from %+v", total, st)
	}
}
