package lp

import (
	"context"
	"errors"
	"testing"
)

// budgetProblem builds a small LP that needs several pivots: min Σ x_i
// subject to chained coupling constraints, so phase 1 and phase 2 both
// have work to do.
func budgetProblem(n int) *Problem {
	p := NewProblem()
	vars := make([]VarID, n)
	for i := range vars {
		vars[i] = p.AddVariable("x", 1, false)
	}
	for i := 0; i < n; i++ {
		co := map[VarID]float64{vars[i]: 1, vars[(i+1)%n]: 1}
		p.AddConstraint(co, GE, float64(i+2))
	}
	return p
}

// TestSolveBudgetExhausted pins the iteration budget: a MaxIter far
// below the pivots the problem needs returns ErrBudget instead of
// spinning (the simplex main loop is now always bounded).
func TestSolveBudgetExhausted(t *testing.T) {
	p := budgetProblem(12)
	p.SetOptions(Options{MaxIter: 1})
	_, err := p.Solve()
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("Solve with MaxIter=1: err = %v, want ErrBudget", err)
	}

	// The same problem solves fine under the default (size-derived)
	// budget.
	p = budgetProblem(12)
	if _, err := p.Solve(); err != nil {
		t.Fatalf("Solve with default budget: %v", err)
	}
}

// TestSolveCanceledContext pins cancellation: a context that dies
// before or during the solve aborts it with an error satisfying both
// ErrCanceled and the context's own error, for cancel and deadline
// alike.
func TestSolveCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := budgetProblem(8)
	p.SetOptions(Options{Ctx: ctx})
	_, err := p.Solve()
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("pre-canceled Solve: err = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled Solve: err = %v, want to wrap context.Canceled", err)
	}

	dctx, dcancel := context.WithDeadline(context.Background(), now().Add(-1))
	defer dcancel()
	p = budgetProblem(8)
	p.SetOptions(Options{Ctx: dctx})
	_, err = p.Solve()
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired-deadline Solve: err = %v, want ErrCanceled wrapping DeadlineExceeded", err)
	}
}

// TestWarmSolveBudgetAndCancel checks the limits hold on the warm
// (phase-2-only) re-optimization path as well.
func TestWarmSolveBudgetAndCancel(t *testing.T) {
	p := budgetProblem(12)
	p.KeepBasis()
	if _, err := p.Solve(); err != nil {
		t.Fatalf("cold solve: %v", err)
	}
	// Flip the objective so the warm re-solve has pivoting to do, with a
	// budget too small to finish it.
	for v := 0; v < p.NumVariables(); v++ {
		p.SetCost(VarID(v), float64(p.NumVariables()-v))
	}
	p.SetOptions(Options{MaxIter: 1})
	if _, err := p.WarmSolve(); !errors.Is(err, ErrBudget) {
		t.Fatalf("WarmSolve with MaxIter=1: err = %v, want ErrBudget", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p.SetOptions(Options{Ctx: ctx})
	if _, err := p.WarmSolve(); !errors.Is(err, context.Canceled) {
		t.Fatalf("WarmSolve with canceled ctx: err = %v, want context.Canceled", err)
	}
}
