package lp

import (
	"fmt"
	"time"
)

// Stats accumulates solver effort across Solve/WarmSolve calls on every
// problem it is attached to (SetStats). It is not safe for concurrent
// use: give each worker its own Stats and merge with Add.
type Stats struct {
	// Solves counts cold two-phase solves (presolve + phase 1 + phase 2).
	Solves int
	// SparseSolves counts the subset of Solves (cold and warm) that ran
	// on the sparse revised-simplex core rather than the dense tableau.
	SparseSolves int
	// WarmSolves counts warm-started re-optimizations that reused the
	// factored basis of a previous solve (phase 2 only).
	WarmSolves int
	// NetSolves counts solves answered by the network-dual fast path
	// (min-cost flow on the RLP's difference structure) without running
	// any simplex. They are not included in Solves or WarmSolves.
	NetSolves int
	// Pivots counts simplex pivots across all solves.
	Pivots int64
	// Augments counts the flow augmentations of the network-dual fast
	// path (its analogue of Pivots).
	Augments int64
	// Refactors counts basis refactorizations of the sparse core (the
	// eta file is rebuilt from scratch every refactorStride pivots and
	// at every warm start).
	Refactors int64
	// PresolveFixed counts variables the Reduce presolver fixed to a
	// constant (pins and everything a pin chain reaches) and
	// substituted out before any solve ran.
	PresolveFixed int
	// PresolveContracted counts variables Reduce eliminated by
	// contracting difference-equality chains into their class
	// representative, plus dropped zero-weight θ terms.
	PresolveContracted int
	// Blocks counts the independent blocks actually solved after
	// Reduce split a problem (warm rounds skip clean blocks, which are
	// not counted).
	Blocks int
	// Phase1 and Phase2 are the wall times spent pivoting in the
	// feasibility and optimality phases.
	Phase1, Phase2 time.Duration
}

// Add accumulates o into s.
func (s *Stats) Add(o Stats) {
	s.Solves += o.Solves
	s.SparseSolves += o.SparseSolves
	s.WarmSolves += o.WarmSolves
	s.NetSolves += o.NetSolves
	s.Pivots += o.Pivots
	s.Augments += o.Augments
	s.Refactors += o.Refactors
	s.PresolveFixed += o.PresolveFixed
	s.PresolveContracted += o.PresolveContracted
	s.Blocks += o.Blocks
	s.Phase1 += o.Phase1
	s.Phase2 += o.Phase2
}

// Arena is a scratch allocator for the dense simplex tableau. Solving
// re-carves row storage from the same block instead of allocating a
// fresh tableau per solve, which removes the dominant allocation cost
// when many small RLPs are solved in sequence (per-axis, per-refinement
// round). An Arena is not safe for concurrent use; a problem that keeps
// its basis (KeepBasis) stores the retained tableau in its arena, so do
// not share one arena between problems that keep bases.
type Arena struct {
	f   []float64
	fi  int
	i   []int
	ii  int
	i3  []int32
	i3i int

	// sp is the sparse core's resident state: the solver value whose
	// FTRAN/BTRAN vectors, flat eta file, and pricing scratch persist
	// across solves, plus form-construction scratch. It rides the same
	// pool handoff as the carved blocks (Reset), but is length-checked
	// on reuse rather than cursor-rewound.
	sp sparseScratch
}

// NewArena returns an empty arena.
func NewArena() *Arena { return &Arena{} }

func (ar *Arena) reset() { ar.fi, ar.ii, ar.i3i = 0, 0, 0 }

// Reset rewinds the arena so the next carve reuses its blocks from the
// start. It is the pool-handoff point for arenas recycled across
// solves (the batch engine's scratch pools): call it only once no live
// tableau reads previously carved storage — every owning Problem is
// dead or has dropped its basis — since later carves overwrite it.
func (ar *Arena) Reset() { ar.reset() }

// floats carves a zeroed []float64 of length n. Growth abandons the old
// block (outstanding slices stay valid) and doubles, so a steady-state
// workload allocates nothing.
func (ar *Arena) floats(n int) []float64 {
	if ar.fi+n > len(ar.f) {
		sz := 2 * len(ar.f)
		if sz < n {
			sz = n
		}
		if sz < 1024 {
			sz = 1024
		}
		ar.f = make([]float64, sz)
		ar.fi = 0
	}
	s := ar.f[ar.fi : ar.fi+n : ar.fi+n]
	ar.fi += n
	for j := range s {
		s[j] = 0
	}
	return s
}

func (ar *Arena) int32s(n int) []int32 {
	if ar.i3i+n > len(ar.i3) {
		sz := 2 * len(ar.i3)
		if sz < n {
			sz = n
		}
		if sz < 256 {
			sz = 256
		}
		ar.i3 = make([]int32, sz)
		ar.i3i = 0
	}
	s := ar.i3[ar.i3i : ar.i3i+n : ar.i3i+n]
	ar.i3i += n
	for j := range s {
		s[j] = 0
	}
	return s
}

func (ar *Arena) ints(n int) []int {
	if ar.ii+n > len(ar.i) {
		sz := 2 * len(ar.i)
		if sz < n {
			sz = n
		}
		if sz < 256 {
			sz = 256
		}
		ar.i = make([]int, sz)
		ar.ii = 0
	}
	s := ar.i[ar.ii : ar.ii+n : ar.ii+n]
	ar.ii += n
	for j := range s {
		s[j] = 0
	}
	return s
}

// SetArena makes the problem carve its tableau from ar across Solve
// calls. Passing nil restores per-solve allocation.
func (p *Problem) SetArena(ar *Arena) { p.arena = ar }

// SetStats attaches an effort accumulator; nil detaches it.
func (p *Problem) SetStats(s *Stats) { p.stats = s }

// SetCost replaces the objective cost of variable v. Combined with
// KeepBasis/WarmSolve this re-optimizes an already-factored problem
// after an objective change without re-running phase 1.
func (p *Problem) SetCost(v VarID, cost float64) { p.costs[v] = cost }

// KeepBasis makes Solve retain the final tableau and basis so a later
// WarmSolve (after SetCost changes) re-optimizes with phase 2 only.
// Keeping a basis bypasses the equality presolve: the retained tableau
// must correspond to the full problem, or cost updates on presolved-away
// variables would be lost.
func (p *Problem) KeepBasis() { p.keep = true }

// warmState is the retained end-of-solve tableau of a KeepBasis problem.
type warmState struct {
	cols                    []colref
	a                       [][]float64
	b, b2                   []float64
	basis                   []int
	artUsed                 []bool
	nStruct, artIdx, nTotal int
	nVars, nCons            int // structure fingerprint at solve time
	cost                    []float64
}

// WarmSolve re-optimizes from the basis retained by the previous Solve.
// If no basis is retained, or variables/constraints were added since, it
// falls back to a full cold Solve. The current basis stays primal
// feasible under any objective change, so only phase 2 runs.
func (p *Problem) WarmSolve() (*Solution, error) {
	if p.keep && p.sws != nil && p.sws.nVars == len(p.names) && p.sws.nCons == len(p.cons) {
		return p.warmSolveSparse()
	}
	ws := p.ws
	if !p.keep || ws == nil || ws.nVars != len(p.names) || ws.nCons != len(p.cons) {
		return p.Solve()
	}
	if ws.cost == nil {
		ws.cost = make([]float64, ws.nTotal)
	}
	cost := ws.cost
	for j := range cost {
		cost[j] = 0
	}
	for j := 0; j < ws.nStruct; j++ {
		cost[j] = p.costs[ws.cols[j].orig] * ws.cols[j].sign
	}
	for j := ws.artIdx; j < ws.nTotal; j++ {
		if ws.artUsed[j] {
			cost[j] = inf
		}
	}
	maxIter, ctx := p.budget(len(ws.a), ws.nTotal)
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("%w: %w", ErrCanceled, err)
		}
	}
	t0 := now()
	_, piv, err := simplex(ws.a, ws.b, ws.b2, ws.basis, cost, ws.artIdx, maxIter, ctx)
	if p.stats != nil {
		p.stats.WarmSolves++
		p.stats.Pivots += piv
		p.stats.Phase2 += since(t0)
	}
	if err != nil {
		return nil, err
	}
	return p.extract(ws.cols, ws.nStruct, ws.basis, ws.b2), nil
}

// Indirection for time so the hot path reads naturally.
var (
	now   = time.Now
	since = time.Since
)
