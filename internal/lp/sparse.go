package lp

// Sparse revised simplex with an eta-file basis representation. The
// offset RLPs of large programs (§4.1) are big but extremely sparse:
// every constraint touches at most three variables (a θ bound couples
// one θ with two offsets; a node equality couples two offsets), yet the
// dense tableau stores — and every pivot touches — m·(n+m) cells. The
// revised simplex keeps the constraint matrix in compressed sparse
// column form, represents the basis inverse as a product of eta
// matrices rebuilt every refactorStride pivots, and merges each
// θ+P ≥ 0 / θ−P ≥ 0 row pair into a single equality row so the RLP's
// absolute-value encoding does not double the row count.

import (
	"context"
	"fmt"
	"math"
)

// Engine selects the simplex core used by Solve (Options.Engine).
type Engine int

// Simplex cores.
const (
	// EngineAuto picks the sparse revised simplex for large low-density
	// problems and the dense tableau otherwise.
	EngineAuto Engine = iota
	// EngineDense forces the dense tableau core.
	EngineDense
	// EngineSparse forces the sparse revised-simplex core.
	EngineSparse
)

// Sparse-dispatch thresholds (EngineAuto): the revised simplex wins
// once the dense tableau would be large (m·(n+m) cells, all touched on
// every pivot) and at most a quarter populated. The cell threshold
// keeps every small RLP on the dense core, whose exact vertex choices
// are pinned by golden tests.
const (
	sparseCellThreshold = 50000
	// refactorStride bounds the eta file: the basis is refactorized
	// from scratch after this many pivots (and at every phase start),
	// purging accumulated floating-point drift.
	refactorStride = 128
)

// chooseSparse decides which core a solveRaw call runs on.
func (p *Problem) chooseSparse() bool {
	switch p.opt.Engine {
	case EngineDense:
		return false
	case EngineSparse:
		return true
	}
	m := len(p.cons)
	if m == 0 {
		return false
	}
	nStruct := 0
	for _, f := range p.free {
		if f {
			nStruct += 2
		} else {
			nStruct++
		}
	}
	nnz := 0
	for _, c := range p.cons {
		nnz += len(c.coefs)
	}
	return m*(nStruct+m) >= sparseCellThreshold && nnz*4 <= m*nStruct
}

// spForm is the standard form of a problem for the sparse core:
// columns are [structural | u/w pairs | slacks | artificials], rows are
// the constraints with each θ pair merged to one equality. Artificial
// columns are implicit identity columns (artStart+r has a single 1 in
// row r). The RHS vectors are never mutated by a solve, so a retained
// form can be warm-started any number of times.
type spForm struct {
	m          int // rows after pair merging
	nStruct    int // structural columns (free variables split)
	slackStart int // u/w columns occupy [nStruct, slackStart)
	artStart   int // slack columns occupy [slackStart, artStart)
	nTotal     int // artStart + m

	colPtr []int32 // CSC over columns [0, artStart)
	rowInd []int32
	vals   []float64

	cols    []colref // structural column -> original variable
	uvTheta []VarID  // u/w pair -> merged θ variable
	artUsed []bool   // per row: artificial column in the initial basis
	b, b2   []float64
	initBas []int

	// partner[j] is the column that is the exact vector negative of j
	// (the other half of a free-variable split, or the w of a u/w pair),
	// or -1. While one half is basic the other must never price in: its
	// true reduced cost is exactly the negative of the basic one's (≈0),
	// so any apparent improvement is drift — and admitting it would put
	// two linearly dependent columns in the basis (singular at the next
	// refactorization).
	partner []int32
}

// sparseWarmState is the retained factorizable form of a KeepBasis
// problem whose last solve ran on the sparse core. Unlike the dense
// warmState it holds no tableau: a warm solve refactorizes the retained
// basis against the pristine form, so only the basis indices persist.
type sparseWarmState struct {
	f            *spForm
	basis        []int
	nVars, nCons int // structure fingerprint at solve time
}

// buildSparseForm lowers the problem to spForm, merging θ row pairs.
//
// A pair θ + P ≥ r, θ − P ≥ −r (P a linear term over other variables,
// θ nonnegative with nonnegative cost and appearing nowhere else)
// encodes θ ≥ |P − r|. Substituting u = θ + P − r and v = θ − P + r,
// both ≥ 0, turns the pair into the single equality u − v − 2P = −2r
// with θ = (u+v)/2, halving those rows and giving each of u, v half of
// θ's cost. The substitution is an exact linear reparameterization, so
// objective values and feasibility transfer.
// The form's big arrays (CSC storage, RHS vectors, partner map) are
// carved from ar, so a pooled arena reaches a steady state where cold
// solves stop allocating; transient build scratch lives in ar.sp.
func (p *Problem) buildSparseForm(ar *Arena) *spForm {
	sp := &ar.sp
	nv := len(p.names)
	occ := growInt(&sp.occ, nv)
	for _, c := range p.cons {
		for v := range c.coefs {
			occ[v]++
		}
	}

	// pairOf[i]: 0 plain row, k+1 first row of pair k, -1 consumed.
	pairOf := growInt(&sp.pairOf, len(p.cons))
	var uvTheta []VarID
	merged := growBool(&sp.merged, nv)
	for i := 0; i+1 < len(p.cons); i++ {
		if pairOf[i] != 0 {
			continue
		}
		c0, c1 := &p.cons[i], &p.cons[i+1]
		if c0.op != GE || c1.op != GE || c0.rhs != -c1.rhs ||
			len(c0.coefs) != len(c1.coefs) {
			continue
		}
		theta := VarID(-1)
		for v, a := range c0.coefs {
			if a == 1 && c1.coefs[v] == 1 && occ[v] == 2 && !p.free[v] &&
				p.costs[v] >= 0 && (theta < 0 || v < theta) {
				theta = v
			}
		}
		if theta < 0 {
			continue
		}
		ok := true
		for v, a := range c0.coefs {
			if v != theta && c1.coefs[v] != -a {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		pairOf[i] = len(uvTheta) + 1
		pairOf[i+1] = -1
		uvTheta = append(uvTheta, theta)
		merged[theta] = true
	}

	// Structural columns: free variables split, merged θs dropped.
	var cols []colref
	colOf := growInt(&sp.colOf, nv)
	negColOf := growInt(&sp.negColOf, nv)
	for v := 0; v < nv; v++ {
		if merged[v] {
			colOf[v], negColOf[v] = -1, -1
			continue
		}
		colOf[v] = len(cols)
		cols = append(cols, colref{orig: VarID(v), sign: 1})
		if p.free[v] {
			negColOf[v] = len(cols)
			cols = append(cols, colref{orig: VarID(v), sign: -1})
		} else {
			negColOf[v] = -1
		}
	}
	nStruct := len(cols)
	slackStart := nStruct + 2*len(uvTheta)
	nSlack := 0
	nRows := 0
	for i, c := range p.cons {
		if pairOf[i] == -1 {
			continue
		}
		nRows++
		if pairOf[i] == 0 && c.op != EQ {
			nSlack++
		}
	}
	artStart := slackStart + nSlack

	// Rows are built into one flat entry buffer (entBuf) with row r's
	// entries at [rowOff[r], rowOff[r+1]) — the pooled replacement for
	// a [][]ent with one heap slice per constraint.
	entBuf := sp.entBuf[:0]
	rowOff := append(sp.rowOff[:0], 0)
	b2 := ar.floats(nRows)
	initBas := ar.ints(nRows)
	artUsed := make([]bool, nRows)
	slackIdx := slackStart
	r := 0
	for i := range p.cons {
		if pairOf[i] == -1 {
			continue
		}
		c := &p.cons[i]
		start := len(entBuf)
		if k := pairOf[i]; k > 0 {
			pi := k - 1
			theta := uvTheta[pi]
			// Row scaling by max(|2a|, 1) keeps the u/w coefficients
			// bounded by 1 while conditioning heavy edge weights.
			rowMax := 1.0
			for v, a := range c.coefs {
				if v == theta {
					continue
				}
				if s := math.Abs(2 * a); s > rowMax {
					rowMax = s
				}
			}
			inv := 1 / rowMax
			entBuf = append(entBuf,
				spEnt{col: int32(nStruct + 2*pi), val: inv},
				spEnt{col: int32(nStruct + 2*pi + 1), val: -inv})
			for v, a := range c.coefs {
				if v == theta {
					continue
				}
				cv := -2 * a * inv
				entBuf = append(entBuf, spEnt{col: int32(colOf[v]), val: cv})
				if negColOf[v] >= 0 {
					entBuf = append(entBuf, spEnt{col: int32(negColOf[v]), val: -cv})
				}
			}
			es := entBuf[start:]
			rhs := -2 * c.rhs * inv
			basic := nStruct + 2*pi // u carries coefficient +inv
			if rhs < 0 {
				for j := range es {
					es[j].val = -es[j].val
				}
				rhs = -rhs
				basic = nStruct + 2*pi + 1 // the flip makes w positive
			}
			rowOff = append(rowOff, int32(len(entBuf)))
			b2[r] = rhs
			initBas[r] = basic
			r++
			continue
		}
		// Plain row: mirror the dense construction — scale the
		// structural part by its largest coefficient, append the slack
		// unscaled, then normalize the RHS sign.
		rowMax := 0.0
		for _, a := range c.coefs {
			if math.Abs(a) > rowMax {
				rowMax = math.Abs(a)
			}
		}
		inv := 1.0
		if rowMax > 0 {
			inv = 1 / rowMax
		}
		rhs := c.rhs * inv
		for v, a := range c.coefs {
			cv := a * inv
			entBuf = append(entBuf, spEnt{col: int32(colOf[v]), val: cv})
			if negColOf[v] >= 0 {
				entBuf = append(entBuf, spEnt{col: int32(negColOf[v]), val: -cv})
			}
		}
		slackCol := -1
		if c.op != EQ {
			slackCol = slackIdx
			slackIdx++
			sv := 1.0
			if c.op == GE {
				sv = -1
			}
			entBuf = append(entBuf, spEnt{col: int32(slackCol), val: sv})
		}
		es := entBuf[start:]
		if rhs < 0 {
			for j := range es {
				es[j].val = -es[j].val
			}
			rhs = -rhs
		}
		if slackCol >= 0 && es[len(es)-1].val == 1 {
			initBas[r] = slackCol
		} else {
			initBas[r] = artStart + r
			artUsed[r] = true
		}
		rowOff = append(rowOff, int32(len(entBuf)))
		b2[r] = rhs
		r++
	}
	sp.entBuf, sp.rowOff = entBuf, rowOff

	// Assemble the CSC matrix. Iterating rows in order makes each
	// column's entries row-sorted and the layout deterministic even
	// though per-row map iteration is not.
	counts := growInt32(&sp.counts, artStart)
	for _, e := range entBuf {
		counts[e.col]++
	}
	colPtr := ar.int32s(artStart + 1)
	for j := 0; j < artStart; j++ {
		colPtr[j+1] = colPtr[j] + counts[j]
	}
	rowInd := ar.int32s(int(colPtr[artStart]))
	vals := ar.floats(int(colPtr[artStart]))
	next := growInt32(&sp.next, artStart)
	copy(next, colPtr[:artStart])
	for rr := 0; rr < nRows; rr++ {
		for _, e := range entBuf[rowOff[rr]:rowOff[rr+1]] {
			k := next[e.col]
			next[e.col]++
			rowInd[k] = int32(rr)
			vals[k] = e.val
		}
	}

	// Deterministic RHS perturbation, as in the dense core: pivoting
	// reads the perturbed b, solutions read the exact b2.
	b := ar.floats(nRows)
	for i := range b {
		b[i] = b2[i] + 1e-7*float64(i+1)/float64(nRows+1)
	}
	partner := ar.int32s(artStart + nRows)
	for j := range partner {
		partner[j] = -1
	}
	for v := 0; v < nv; v++ {
		if colOf[v] >= 0 && negColOf[v] >= 0 {
			partner[colOf[v]] = int32(negColOf[v])
			partner[negColOf[v]] = int32(colOf[v])
		}
	}
	for k := range uvTheta {
		u, w := nStruct+2*k, nStruct+2*k+1
		partner[u] = int32(w)
		partner[w] = int32(u)
	}
	return &spForm{
		m: nRows, nStruct: nStruct, slackStart: slackStart,
		artStart: artStart, nTotal: artStart + nRows,
		colPtr: colPtr, rowInd: rowInd, vals: vals,
		cols: cols, uvTheta: uvTheta, artUsed: artUsed,
		b: b, b2: b2, initBas: initBas, partner: partner,
	}
}

// colDot returns yᵀA_j for column j (artificials are implicit e_r).
func (f *spForm) colDot(j int, y []float64) float64 {
	if j >= f.artStart {
		return y[j-f.artStart]
	}
	s := 0.0
	for k := f.colPtr[j]; k < f.colPtr[j+1]; k++ {
		s += f.vals[k] * y[f.rowInd[k]]
	}
	return s
}

// spEta is one eta matrix of the basis factorization: identity except
// column r, which holds diag at row r and the solver's shared
// etaInd/etaVal entries in [start, end) at their rows. Keeping every
// eta's off-diagonal entries in two flat arrays (instead of two heap
// slices per eta) lets the whole file be truncated and rebuilt at each
// refactorization without freeing or allocating anything.
type spEta struct {
	r          int32
	diag       float64
	start, end int32
}

// spSolver is the mutable state of one sparse solve: the current basis,
// its eta-file factorization, and the basic solution for both the
// perturbed and exact right-hand sides. A solver owned by an Arena
// (sparseScratch.sol) keeps its buffers across solves, so warm
// re-optimizations run without heap allocation.
type spSolver struct {
	f        *spForm
	basis    []int
	etas     []spEta
	etaInd   []int32   // shared eta off-diagonal rows
	etaVal   []float64 // shared eta off-diagonal values
	dirty    int       // pivots since the last refactorization
	xB, xB2  []float64
	work     []float64
	y        []float64
	skip     []bool // pricing scratch (per phase)
	inBasis  []bool
	oldBasis []int // refactor scratch
	used     []bool
	stats    *Stats
}

// sparseScratch is the sparse core's reusable state, owned by an Arena
// and recycled through the same pool point as the dense tableau
// storage (align's scratchPool hands arenas around via Arena.Reset).
// sol holds the per-solve solver whose buffers — FTRAN/BTRAN work
// vectors, the flat eta file, pricing scratch — persist between solves;
// the remaining fields are form-construction scratch. None of this is
// rewound by Arena.Reset: the buffers are length-checked on reuse.
type sparseScratch struct {
	sol      spSolver
	cost     []float64 // phase cost vector
	occ      []int     // form build: variable occurrence counts
	pairOf   []int
	colOf    []int
	negColOf []int
	merged   []bool
	counts   []int32 // CSC assembly
	next     []int32
	entBuf   []spEnt // flat row-major constraint entries
	rowOff   []int32 // row r's entries at entBuf[rowOff[r]:rowOff[r+1]]
}

// spEnt is one constraint-matrix entry during form construction.
type spEnt struct {
	col int32
	val float64
}

// growF64 returns buf resized to n, zeroed, reusing its storage when
// the capacity suffices (the sparse core's ensure-length reuse point).
func growF64(buf *[]float64, n int) []float64 {
	s := *buf
	if cap(s) < n {
		s = make([]float64, n)
	} else {
		s = s[:n]
		for i := range s {
			s[i] = 0
		}
	}
	*buf = s
	return s
}

func growBool(buf *[]bool, n int) []bool {
	s := *buf
	if cap(s) < n {
		s = make([]bool, n)
	} else {
		s = s[:n]
		for i := range s {
			s[i] = false
		}
	}
	*buf = s
	return s
}

func growInt(buf *[]int, n int) []int {
	s := *buf
	if cap(s) < n {
		s = make([]int, n)
	} else {
		s = s[:n]
		for i := range s {
			s[i] = 0
		}
	}
	*buf = s
	return s
}

func growInt32(buf *[]int32, n int) []int32 {
	s := *buf
	if cap(s) < n {
		s = make([]int32, n)
	} else {
		s = s[:n]
		for i := range s {
			s[i] = 0
		}
	}
	*buf = s
	return s
}

// newSpSolver readies the arena's resident solver for a solve: buffers
// are length-checked against this form and reused, the eta file is
// truncated. The returned solver is only valid until the next
// newSpSolver call on the same arena.
func newSpSolver(f *spForm, basis []int, stats *Stats, ar *Arena) *spSolver {
	s := &ar.sp.sol
	s.f, s.basis, s.stats = f, basis, stats
	s.dirty = 0
	s.etas = s.etas[:0]
	s.etaInd = s.etaInd[:0]
	s.etaVal = s.etaVal[:0]
	s.xB = growF64(&s.xB, f.m)
	s.xB2 = growF64(&s.xB2, f.m)
	s.work = growF64(&s.work, f.m)
	s.y = growF64(&s.y, f.m)
	return s
}

// unpackCol scatters column j into the dense vector out.
func (s *spSolver) unpackCol(j int, out []float64) {
	for i := range out {
		out[i] = 0
	}
	f := s.f
	if j >= f.artStart {
		out[j-f.artStart] = 1
		return
	}
	for k := f.colPtr[j]; k < f.colPtr[j+1]; k++ {
		out[f.rowInd[k]] = f.vals[k]
	}
}

// ftran solves Bx' = x in place through the eta file.
func (s *spSolver) ftran(x []float64) {
	for e := range s.etas {
		et := &s.etas[e]
		xr := x[et.r]
		if xr == 0 {
			continue
		}
		xr /= et.diag
		x[et.r] = xr
		ind := s.etaInd[et.start:et.end]
		val := s.etaVal[et.start:et.end]
		for k, i := range ind {
			x[i] -= val[k] * xr
		}
	}
}

// btran solves yᵀB = c in place through the eta file in reverse.
func (s *spSolver) btran(y []float64) {
	for e := len(s.etas) - 1; e >= 0; e-- {
		et := &s.etas[e]
		sum := y[et.r]
		ind := s.etaInd[et.start:et.end]
		val := s.etaVal[et.start:et.end]
		for k, i := range ind {
			sum -= val[k] * y[i]
		}
		y[et.r] = sum / et.diag
	}
}

// appendEta records the pivot "column with FTRANed image w enters at
// row r" in the eta file. Entries below the drop tolerance are noise
// from earlier eliminations and are discarded; the periodic
// refactorization bounds the resulting drift.
func (s *spSolver) appendEta(r int, w []float64) {
	start := int32(len(s.etaInd))
	for i, wi := range w {
		if i == r || math.Abs(wi) < 1e-12 {
			continue
		}
		s.etaInd = append(s.etaInd, int32(i))
		s.etaVal = append(s.etaVal, wi)
	}
	s.etas = append(s.etas, spEta{r: int32(r), diag: w[r], start: start, end: int32(len(s.etaInd))})
}

// refactor rebuilds the eta file from the current basis columns and
// recomputes both basic solutions from the pristine right-hand sides.
// Columns are eliminated in basis order, each pivoting at its largest
// remaining row (ties to the lowest row for determinism); the basis
// array is reordered so basis[r] is the variable pivoted at row r.
// Returns false if the basis matrix is numerically singular.
func (s *spSolver) refactor() bool {
	m := s.f.m
	s.etas = s.etas[:0]
	s.etaInd = s.etaInd[:0]
	s.etaVal = s.etaVal[:0]
	s.dirty = 0
	if s.stats != nil {
		s.stats.Refactors++
	}
	s.oldBasis = append(s.oldBasis[:0], s.basis...)
	oldBasis := s.oldBasis
	used := growBool(&s.used, m)
	w := s.work
	for _, j := range oldBasis {
		s.unpackCol(j, w)
		s.ftran(w)
		r, best := -1, 1e-10
		for i := 0; i < m; i++ {
			if !used[i] && math.Abs(w[i]) > best {
				best, r = math.Abs(w[i]), i
			}
		}
		if r < 0 {
			return false
		}
		used[r] = true
		s.basis[r] = j
		s.appendEta(r, w)
	}
	copy(s.xB, s.f.b)
	s.ftran(s.xB)
	copy(s.xB2, s.f.b2)
	s.ftran(s.xB2)
	return true
}

// errSingular reports a numerically singular basis at refactorization;
// it wraps ErrBudget so callers treat it like any other stuck solve.
func errSingular(m int) error {
	return fmt.Errorf("%w: singular basis at refactorization (m=%d)", ErrBudget, m)
}

// runPhase runs one simplex phase on the current basis: entering
// columns are priced partially from a rotating cursor (Dantzig rule
// over the first 256 candidates past the first negative reduced cost,
// exact-tie to the lowest column id), the ratio test mirrors the dense
// core (reject pivots below pivTol, degenerate steps fall back to
// Bland's lowest-basis-index rule, otherwise prefer the largest pivot
// among near-minimum ratios), and optimality or unboundedness is only
// declared on a freshly refactorized basis. Columns at or beyond limit
// never enter; unused artificial columns never enter in any phase.
func (s *spSolver) runPhase(cost []float64, limit int, maxIter int64, ctx context.Context) (int64, error) {
	f := s.f
	m := f.m
	var pivots int64
	if !s.refactor() {
		return pivots, errSingular(m)
	}
	skip := growBool(&s.skip, f.nTotal)
	// Basic columns must never price in: the dense tableau keeps their
	// reduced costs identically zero, but the eta file only keeps them
	// near zero — drift past eps would re-admit a basic column, putting
	// a duplicate in the basis (singular at the next refactorization).
	inBasis := growBool(&s.inBasis, f.nTotal)
	for _, bj := range s.basis {
		inBasis[bj] = true
	}
	cursor := 0
	scale := 1.0
	for iter := int64(0); ; iter++ {
		if iter >= maxIter {
			return pivots, fmt.Errorf("%w after %d iterations (m=%d n=%d)", ErrBudget, iter, m, f.nTotal)
		}
		if ctx != nil && iter%iterCheckStride == iterCheckStride-1 {
			if err := ctx.Err(); err != nil {
				return pivots, fmt.Errorf("%w: %w", ErrCanceled, err)
			}
		}
		// Price: y = BTRAN(c_B), with stuck basic artificials (cost
		// +inf in phase 2, pinned at level 0) priced as cost 0.
		y := s.y
		for i, bj := range s.basis {
			c := cost[bj]
			if math.IsInf(c, 1) {
				c = 0
			}
			y[i] = c
		}
		s.btran(y)
		enter := -1
		bestD := 0.0
		firstNeg := -1
		for sc := 0; sc < limit; sc++ {
			if firstNeg >= 0 && sc >= firstNeg+256 {
				break
			}
			j := cursor + sc
			if j >= limit {
				j -= limit
			}
			if skip[j] || inBasis[j] || math.IsInf(cost[j], 1) {
				continue
			}
			if pt := f.partner[j]; pt >= 0 && inBasis[pt] {
				continue
			}
			if j >= f.artStart && !f.artUsed[j-f.artStart] {
				continue
			}
			d := cost[j] - f.colDot(j, y)
			if ad := math.Abs(d); ad > scale {
				scale = ad
			}
			if d < -eps {
				if firstNeg < 0 {
					firstNeg = sc
				}
				if enter < 0 || d < bestD || (d == bestD && j < enter) {
					enter, bestD = j, d
				}
			}
		}
		if enter == -1 {
			if s.dirty > 0 {
				// Confirm optimality against factorization drift.
				if !s.refactor() {
					return pivots, errSingular(m)
				}
				continue
			}
			return pivots, nil
		}
		w := s.work
		s.unpackCol(enter, w)
		s.ftran(w)
		leave := -1
		best := math.Inf(1)
		for i := 0; i < m; i++ {
			if w[i] > pivTol {
				if r := s.xB[i] / w[i]; r < best {
					best, leave = r, i
				}
			}
		}
		if leave >= 0 {
			tol := 1e-9 * (1 + math.Abs(best))
			if best <= tol {
				for i := 0; i < m; i++ {
					if w[i] > pivTol && s.xB[i]/w[i] <= best+tol && s.basis[i] < s.basis[leave] {
						leave = i
					}
				}
			} else {
				for i := 0; i < m; i++ {
					if w[i] > pivTol && s.xB[i]/w[i] <= best+tol && w[i] > w[leave] {
						leave = i
					}
				}
			}
		}
		if leave == -1 {
			if s.dirty > 0 {
				if !s.refactor() {
					return pivots, errSingular(m)
				}
				continue
			}
			colmax := 0.0
			for i := 0; i < m; i++ {
				if math.Abs(w[i]) > colmax {
					colmax = math.Abs(w[i])
				}
			}
			if bestD > -1e-5*scale || (colmax < 1e-6 && cost[enter] >= 0) {
				// A numerically zero-cost ray (translation freedom of
				// offsets) or a column degenerated to noise: moving
				// along it cannot improve the objective.
				skip[enter] = true
				continue
			}
			return pivots, ErrUnbounded
		}
		t := s.xB[leave] / w[leave]
		t2 := s.xB2[leave] / w[leave]
		for i := 0; i < m; i++ {
			if i != leave && w[i] != 0 {
				s.xB[i] -= w[i] * t
				s.xB2[i] -= w[i] * t2
			}
		}
		s.xB[leave], s.xB2[leave] = t, t2
		s.appendEta(leave, w)
		inBasis[s.basis[leave]] = false
		s.basis[leave] = enter
		inBasis[enter] = true
		skip[enter] = false
		pivots++
		s.dirty++
		cursor = enter + 1
		if cursor >= limit {
			cursor = 0
		}
		if s.dirty >= refactorStride {
			if !s.refactor() {
				return pivots, errSingular(m)
			}
		}
	}
}

// driveOut pivots every artificial still basic after phase 1 out of the
// basis where possible, mirroring the dense core. An artificial left
// basic at level 0 is only safe if its row of B⁻¹A is zero for every
// structural/slack column — otherwise a later phase-2 pivot with a
// negative element in that row would lift the artificial off zero,
// silently abandoning the constraint. Rows that admit no pivot are
// genuinely redundant: every future FTRANed column is zero there, so
// the artificial can never move.
func (s *spSolver) driveOut() {
	f := s.f
	inBasis := growBool(&s.inBasis, f.nTotal)
	for _, bj := range s.basis {
		inBasis[bj] = true
	}
	for r := 0; r < f.m; r++ {
		if s.basis[r] < f.artStart {
			continue
		}
		// Row r of B⁻¹A is ρᵀA with ρ = B⁻ᵀe_r. Pivot at the largest
		// eligible element; anything under pivTol is factorization noise
		// (a numerically redundant row) and pivoting there would amplify
		// the row by up to 1/pivTol — leave the artificial stuck instead.
		rho := s.y
		for i := range rho {
			rho[i] = 0
		}
		rho[r] = 1
		s.btran(rho)
		bestJ, bestV := -1, pivTol
		for j := 0; j < f.artStart; j++ {
			if inBasis[j] {
				continue
			}
			if pt := f.partner[j]; pt >= 0 && inBasis[pt] {
				continue
			}
			if v := math.Abs(f.colDot(j, rho)); v > bestV {
				bestJ, bestV = j, v
			}
		}
		if bestJ < 0 {
			continue
		}
		w := s.work
		s.unpackCol(bestJ, w)
		s.ftran(w)
		if math.Abs(w[r]) <= pivTol {
			continue // drift between ρᵀA_j and the FTRANed column
		}
		t := s.xB[r] / w[r]
		t2 := s.xB2[r] / w[r]
		for i := 0; i < f.m; i++ {
			if i != r && w[i] != 0 {
				s.xB[i] -= w[i] * t
				s.xB2[i] -= w[i] * t2
			}
		}
		s.xB[r], s.xB2[r] = t, t2
		// A negative-signed pivot flips the row's perturbation residue
		// negative; re-perturb to keep the phase-2 invariant xB ≥ 0.
		if s.xB[r] < 0 {
			s.xB[r] = 0
		}
		s.appendEta(r, w)
		inBasis[s.basis[r]] = false
		s.basis[r] = bestJ
		inBasis[bestJ] = true
		s.dirty++
	}
}

// checkStuckArts fails if an artificial still basic after phase 2
// carries a nonzero exact level: a stuck artificial is only legitimate
// pinned at 0 in a redundant row — lifted, its constraint was silently
// abandoned and the solution is garbage. Mirrors the dense core.
func (s *spSolver) checkStuckArts() error {
	for i, bj := range s.basis {
		if bj >= s.f.artStart && math.Abs(s.xB2[i]) > 1e-6 {
			return fmt.Errorf("%w: artificial lifted to %g (m=%d)", ErrBudget, s.xB2[i], s.f.m)
		}
	}
	return nil
}

// sparsePhase2Cost builds the phase-2 cost vector: structural columns
// carry the variable costs (split by sign for free variables), each u/w
// pair splits its θ's cost in half, and artificials that entered the
// initial basis are forbidden from re-entering.
func sparsePhase2Cost(p *Problem, f *spForm, ar *Arena) []float64 {
	cost := growF64(&ar.sp.cost, f.nTotal)
	for j, cr := range f.cols {
		cost[j] = p.costs[cr.orig] * cr.sign
	}
	for k, th := range f.uvTheta {
		c := p.costs[th] / 2
		cost[f.nStruct+2*k] = c
		cost[f.nStruct+2*k+1] = c
	}
	for r, u := range f.artUsed {
		if u {
			cost[f.artStart+r] = inf
		}
	}
	return cost
}

// sparseExtract reads the solution off the final basis and exact RHS,
// mapping u/w pairs back to their θ via θ = (u+w)/2.
func (p *Problem) sparseExtract(f *spForm, basis []int, xB2 []float64) *Solution {
	values := make([]float64, len(p.names))
	for r, bj := range basis {
		x := xB2[r]
		switch {
		case bj < f.nStruct:
			values[f.cols[bj].orig] += f.cols[bj].sign * x
		case bj < f.slackStart:
			values[f.uvTheta[(bj-f.nStruct)/2]] += 0.5 * x
		}
	}
	obj := 0.0
	for v, x := range values {
		obj += p.costs[v] * x
	}
	return &Solution{Objective: obj, values: values}
}

// solveSparse is the sparse counterpart of the dense solveRaw body:
// two-phase revised simplex over the merged standard form.
func (p *Problem) solveSparse() (*Solution, error) {
	p.ws = nil // this solve's retained basis (if any) is sparse
	p.sws = nil
	// Cold solves rewind the arena cursor like the dense core; the
	// form's carved arrays then survive for any number of warm solves
	// (warmSolveSparse never resets).
	ar := p.arena
	if ar == nil {
		ar = &Arena{}
	} else {
		ar.reset()
	}
	f := p.buildSparseForm(ar)
	if p.stats != nil {
		p.stats.Solves++
		p.stats.SparseSolves++
	}
	maxIter, ctx := p.budget(f.m, f.nTotal)
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("%w: %w", ErrCanceled, err)
		}
	}
	if f.m == 0 {
		return p.sparseExtract(f, nil, nil), nil
	}
	basis := append([]int(nil), f.initBas...)
	s := newSpSolver(f, basis, p.stats, ar)
	anyArt := false
	for _, u := range f.artUsed {
		if u {
			anyArt = true
			break
		}
	}
	if anyArt {
		// Phase 1 and phase 2 run sequentially and fully overwrite the
		// cost vector, so both phases share the arena's cost buffer.
		cost1 := growF64(&ar.sp.cost, f.nTotal)
		for r, u := range f.artUsed {
			if u {
				cost1[f.artStart+r] = 1
			}
		}
		t0 := now()
		piv, err := s.runPhase(cost1, f.nTotal, maxIter, ctx)
		if p.stats != nil {
			p.stats.Pivots += piv
			p.stats.Phase1 += since(t0)
		}
		if err != nil {
			return nil, err
		}
		// Judge feasibility on the exact RHS: the perturbed phase-1
		// objective retains the perturbation residue at feasible bases.
		resid := 0.0
		for r, bj := range s.basis {
			if bj >= f.artStart {
				resid += math.Abs(s.xB2[r])
			}
		}
		if resid > 1e-6 {
			return nil, ErrInfeasible
		}
		s.driveOut()
	}
	cost := sparsePhase2Cost(p, f, ar)
	t0 := now()
	piv, err := s.runPhase(cost, f.artStart, maxIter, ctx)
	if p.stats != nil {
		p.stats.Pivots += piv
		p.stats.Phase2 += since(t0)
	}
	if err != nil {
		return nil, err
	}
	if err := s.checkStuckArts(); err != nil {
		return nil, err
	}
	if p.keep {
		p.sws = &sparseWarmState{
			f: f, basis: s.basis,
			nVars: len(p.names), nCons: len(p.cons),
		}
	}
	return p.sparseExtract(f, s.basis, s.xB2), nil
}

// warmSolveSparse re-optimizes from the basis retained by the previous
// sparse solve after objective changes (SetCost): the retained basis
// stays primal feasible under any cost vector, so the warm solve
// refactorizes it against the pristine form and runs phase 2 only.
func (p *Problem) warmSolveSparse() (*Solution, error) {
	sws := p.sws
	f := sws.f
	if p.stats != nil {
		p.stats.WarmSolves++
		p.stats.SparseSolves++
	}
	maxIter, ctx := p.budget(f.m, f.nTotal)
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("%w: %w", ErrCanceled, err)
		}
	}
	// sws.basis is shared with the solver, so the end-of-solve basis is
	// retained for the next warm start automatically. The arena is NOT
	// reset here: the retained form's arrays live in it.
	ar := p.arena
	if ar == nil {
		ar = &Arena{}
	}
	s := newSpSolver(f, sws.basis, p.stats, ar)
	cost := sparsePhase2Cost(p, f, ar)
	t0 := now()
	piv, err := s.runPhase(cost, f.artStart, maxIter, ctx)
	if p.stats != nil {
		p.stats.Pivots += piv
		p.stats.Phase2 += since(t0)
	}
	if err != nil {
		return nil, err
	}
	if err := s.checkStuckArts(); err != nil {
		return nil, err
	}
	return p.sparseExtract(f, s.basis, s.xB2), nil
}
