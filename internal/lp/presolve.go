package lp

import (
	"fmt"
	"math"
	"sort"
)

// presolveEq eliminates equality constraints by Gauss-Jordan substitution
// over free variables. Alignment LPs consist of long chains of equality
// node constraints over free offset coefficients plus |·| inequalities on
// θ variables; eliminating the chains up front leaves a small, well-
// conditioned inequality problem for the simplex and removes the massive
// degeneracy the chains would otherwise induce.
//
// It returns the reduced problem, plus a recovery function mapping the
// reduced solution values back to the original variables.
type presolved struct {
	reduced *Problem
	// varMap[origVar] = reduced VarID, or -1 if eliminated.
	varMap []int
	// subs holds, per eliminated original variable, its expression
	// rhs + Σ coef·origVar over non-eliminated original variables.
	subs map[int]subExpr
	// order records elimination order for back-substitution.
	order []int
	// infeasible is set when an equality row reduces to 0 = c ≠ 0.
	infeasible bool
}

type subExpr struct {
	rhs   float64
	coefs map[int]float64 // over original variable indices
}

func presolveEq(p *Problem) *presolved {
	n := len(p.names)
	// Dense copies of the equality rows over original variables.
	type eqRow struct {
		coefs map[int]float64
		rhs   float64
	}
	var eqs []eqRow
	var ineqs []constraint
	for _, c := range p.cons {
		if c.op == EQ {
			row := eqRow{coefs: map[int]float64{}, rhs: c.rhs}
			for v, co := range c.coefs {
				row.coefs[int(v)] += co
			}
			eqs = append(eqs, row)
		} else {
			ineqs = append(ineqs, c)
		}
	}

	ps := &presolved{subs: map[int]subExpr{}}
	eliminated := make([]bool, n)

	for _, row := range eqs {
		// Substitute already-eliminated variables into this row. Snapshot
		// the keys first: substitution expressions reference only
		// surviving variables, so one pass suffices.
		var elim []int
		for v := range row.coefs {
			if _, ok := ps.subs[v]; ok {
				elim = append(elim, v)
			}
		}
		sort.Ints(elim)
		for _, v := range elim {
			co := row.coefs[v]
			s := ps.subs[v]
			delete(row.coefs, v)
			if co == 0 {
				continue
			}
			row.rhs -= co * s.rhs
			for w, cw := range s.coefs {
				row.coefs[w] += co * cw
			}
		}
		// Pick the free variable with the largest coefficient as pivot;
		// ties break toward the smallest variable index so the reduced
		// problem — and hence which of several degenerate optima the
		// simplex lands on — is deterministic (map iteration order is
		// randomized per range statement).
		piv, pivCo := -1, 0.0
		rowMax := 0.0
		for v, co := range row.coefs {
			if math.Abs(co) > rowMax {
				rowMax = math.Abs(co)
			}
			if !p.free[v] || eliminated[v] || co == 0 {
				continue
			}
			if math.Abs(co) > math.Abs(pivCo) || (math.Abs(co) == math.Abs(pivCo) && v < piv) {
				piv, pivCo = v, co
			}
		}
		if rowMax < 1e-12 {
			if math.Abs(row.rhs) > 1e-7 {
				if debugLP {
					fmt.Printf("presolve: inconsistent row rhs=%g\n", row.rhs)
				}
				ps.infeasible = true
				return ps
			}
			continue // redundant row
		}
		if piv < 0 || math.Abs(pivCo) < 1e-9*rowMax {
			// No usable free pivot: keep as an equality for the simplex.
			m := map[VarID]float64{}
			for v, co := range row.coefs {
				if co != 0 {
					m[VarID(v)] = co
				}
			}
			ineqs = append(ineqs, constraint{coefs: m, op: EQ, rhs: row.rhs})
			continue
		}
		// x_piv = (rhs - Σ_{v≠piv} co_v x_v) / pivCo
		s := subExpr{rhs: row.rhs / pivCo, coefs: map[int]float64{}}
		for v, co := range row.coefs {
			if v == piv || co == 0 {
				continue
			}
			s.coefs[v] = -co / pivCo
		}
		// Normalize s over previously eliminated vars (none remain: we
		// substituted them above) and update existing substitutions that
		// reference piv.
		for ev, es := range ps.subs {
			if co, ok := es.coefs[piv]; ok && co != 0 {
				delete(es.coefs, piv)
				es.rhs += co * s.rhs
				for w, cw := range s.coefs {
					es.coefs[w] += co * cw
				}
				ps.subs[ev] = es
			}
		}
		ps.subs[piv] = s
		eliminated[piv] = true
		ps.order = append(ps.order, piv)
	}

	// Build the reduced problem.
	red := NewProblem()
	ps.varMap = make([]int, n)
	for v := 0; v < n; v++ {
		if eliminated[v] {
			ps.varMap[v] = -1
		} else {
			ps.varMap[v] = int(red.AddVariable(p.names[v], 0, p.free[v]))
		}
	}
	// Objective: substitute eliminated variables.
	objConst := 0.0
	objCoefs := make([]float64, n)
	for v := 0; v < n; v++ {
		if p.costs[v] == 0 {
			continue
		}
		if s, ok := ps.subs[v]; ok {
			objConst += p.costs[v] * s.rhs
			for w, cw := range s.coefs {
				objCoefs[w] += p.costs[v] * cw
			}
		} else {
			objCoefs[v] += p.costs[v]
		}
	}
	_ = objConst // constant shift does not affect the argmin
	for v := 0; v < n; v++ {
		if ps.varMap[v] >= 0 {
			red.costs[ps.varMap[v]] = objCoefs[v]
		}
	}
	// Inequalities (and kept equalities): substitute.
	for _, c := range ineqs {
		coefs := map[int]float64{}
		rhs := c.rhs
		keys := make([]int, 0, len(c.coefs))
		for v := range c.coefs {
			keys = append(keys, int(v))
		}
		sort.Ints(keys)
		for _, vi := range keys {
			co := c.coefs[VarID(vi)]
			if s, ok := ps.subs[vi]; ok {
				rhs -= co * s.rhs
				for w, cw := range s.coefs {
					coefs[w] += co * cw
				}
			} else {
				coefs[vi] += co
			}
		}
		m := map[VarID]float64{}
		for v, co := range coefs {
			if math.Abs(co) > 1e-12 {
				m[VarID(ps.varMap[v])] = co
			}
		}
		red.cons = append(red.cons, constraint{coefs: m, op: c.op, rhs: rhs})
	}
	ps.reduced = red
	return ps
}

// recover maps a reduced solution back to original variable values.
func (ps *presolved) recover(p *Problem, sol *Solution) *Solution {
	n := len(p.names)
	values := make([]float64, n)
	for v := 0; v < n; v++ {
		if ps.varMap[v] >= 0 {
			values[v] = sol.Value(VarID(ps.varMap[v]))
		}
	}
	for v, s := range ps.subs {
		x := s.rhs
		for w, cw := range s.coefs {
			// After presolve, substitution expressions reference only
			// non-eliminated variables.
			x += cw * values[w]
		}
		values[v] = x
	}
	obj := 0.0
	for v, x := range values {
		obj += p.costs[v] * x
	}
	return &Solution{Objective: obj, values: values}
}
