// Package lp is a self-contained linear-programming solver: a dense
// two-phase primal simplex with Bland's anti-cycling rule. The paper's
// offset-alignment phase reduces to "rounded linear programming" (§4.1):
// minimize Σ w_xy·θ_xy subject to θ_xy ≥ |π_x − π_y| (two inequalities
// per edge) and the linear node constraints; these problems are small
// (O(|E|) variables), so an exact dense simplex is the right tool.
package lp

import (
	"context"
	"errors"
	"fmt"
	"math"
	"os"
)

var debugLP = os.Getenv("LPDEBUG") != ""

// Op is a constraint comparison operator.
type Op int

// Constraint operators.
const (
	LE Op = iota // Σ a_j x_j ≤ b
	GE           // Σ a_j x_j ≥ b
	EQ           // Σ a_j x_j = b
)

func (o Op) String() string {
	switch o {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	}
	return "?"
}

// VarID identifies a decision variable within a Problem.
type VarID int

// Problem is a linear program under construction: minimize cᵀx subject to
// linear constraints, with each variable either nonnegative or free.
type Problem struct {
	names []string
	costs []float64
	free  []bool
	cons  []constraint

	arena *Arena           // optional scratch storage for the tableau
	stats *Stats           // optional effort accounting
	keep  bool             // retain the final tableau for WarmSolve
	ws    *warmState       // retained dense tableau of the last Solve when keep
	sws   *sparseWarmState // retained sparse factorized form when keep
	opt   Options          // solve limits (iteration budget, cancellation)
}

// Options bounds a solve so the simplex can always be stopped: an
// explicit pivot-iteration budget and a context whose cancellation or
// deadline aborts the solve between pivots. The zero value means
// "derive the budget from the problem size, never check a context".
type Options struct {
	// MaxIter caps the simplex iterations of each phase of one solve.
	// Values <= 0 derive a budget from the problem size (see
	// defaultMaxIter); the simplex then returns ErrBudget instead of
	// spinning on a cycling or numerically stuck tableau.
	MaxIter int64
	// Ctx, when non-nil, is polled (amortized every iterCheckStride
	// iterations) and aborts the solve with an error wrapping both
	// ErrCanceled and ctx.Err() once it is done.
	Ctx context.Context
	// Engine selects the simplex core: EngineAuto picks the sparse
	// revised simplex for large low-density problems and the dense
	// tableau otherwise; EngineDense / EngineSparse force a core
	// (differential testing, benchmarking baselines).
	Engine Engine
	// Presolve gates Problem.Reduce, the contraction/block-split
	// presolver callers may run before Solve: PresolveAuto (the zero
	// value) allows it, PresolveOff makes Reduce decline so every solve
	// runs on the problem exactly as built (differential testing,
	// baseline measurement).
	Presolve PresolveMode
	// PresolveFloor, when > 0, makes Reduce decline on problems with
	// fewer than this many variables plus constraints: below the floor
	// the snapshot-and-contract pass costs more than the monolithic
	// simplex it saves (tiny RLPs solve in a handful of pivots). Zero —
	// the default — imposes no floor, so presolve unit and differential
	// tests exercise the reduction on problems of every size.
	PresolveFloor int
}

// PresolveMode gates the Reduce presolver; see Options.Presolve.
type PresolveMode int

// Presolve modes.
const (
	// PresolveAuto (the default) lets Reduce contract and block-split
	// the problem.
	PresolveAuto PresolveMode = iota
	// PresolveOff makes Reduce always decline.
	PresolveOff
)

func (m PresolveMode) String() string {
	if m == PresolveOff {
		return "off"
	}
	return "auto"
}

// SetOptions attaches solve limits; the zero Options restores defaults.
func (p *Problem) SetOptions(o Options) { p.opt = o }

// defaultMaxIter is the iteration budget derived from the tableau size
// when Options.MaxIter is unset: generous against the pivot counts of
// well-posed problems (typically O(m+n)) while still bounding a
// degenerate cycle or numerically stuck solve.
func defaultMaxIter(m, n int) int64 {
	return 10000 + 200*int64(m+n)
}

// iterCheckStride is how many simplex iterations pass between context
// polls (amortizing the atomic load in ctx.Err over cheap pivots).
const iterCheckStride = 64

var inf = math.Inf(1)

type constraint struct {
	coefs map[VarID]float64
	op    Op
	rhs   float64
}

// ErrInfeasible is returned when no assignment satisfies the constraints.
var ErrInfeasible = errors.New("lp: infeasible")

// ErrUnbounded is returned when the objective can decrease without bound.
var ErrUnbounded = errors.New("lp: unbounded")

// ErrBudget is returned when a solve exhausts its iteration budget
// (Options.MaxIter, or the size-derived default).
var ErrBudget = errors.New("lp: iteration budget exhausted")

// ErrCanceled is returned (wrapping the context's error, so
// errors.Is(err, context.Canceled) and context.DeadlineExceeded both
// work) when Options.Ctx is done before the solve completes.
var ErrCanceled = errors.New("lp: canceled")

// NewProblem returns an empty minimization problem.
func NewProblem() *Problem { return &Problem{} }

// AddVariable adds a decision variable with the given objective cost.
// If free is true the variable ranges over all reals; otherwise x ≥ 0.
func (p *Problem) AddVariable(name string, cost float64, free bool) VarID {
	p.names = append(p.names, name)
	p.costs = append(p.costs, cost)
	p.free = append(p.free, free)
	return VarID(len(p.names) - 1)
}

// NumVariables returns the number of variables added so far.
func (p *Problem) NumVariables() int { return len(p.names) }

// NumConstraints returns the number of constraints added so far.
func (p *Problem) NumConstraints() int { return len(p.cons) }

// Residual returns the largest constraint violation of vals (indexed
// by VarID): the amount by which any row misses its relation, or any
// nonnegative variable dips below zero. A value ≤ tol for the caller's
// tolerance means vals is primal feasible. Differential tests use this
// to cross-check solutions produced by different engines.
func (p *Problem) Residual(vals []float64) float64 {
	worst := 0.0
	for _, c := range p.cons {
		lhs := 0.0
		for v, a := range c.coefs {
			lhs += a * vals[v]
		}
		viol := 0.0
		switch c.op {
		case LE:
			viol = lhs - c.rhs
		case GE:
			viol = c.rhs - lhs
		case EQ:
			viol = math.Abs(lhs - c.rhs)
		}
		if viol > worst {
			worst = viol
		}
	}
	for v, free := range p.free {
		if !free && -vals[v] > worst {
			worst = -vals[v]
		}
	}
	return worst
}

// AddConstraint adds Σ coefs[v]·x_v (op) rhs. Coefficient maps are copied.
func (p *Problem) AddConstraint(coefs map[VarID]float64, op Op, rhs float64) {
	cp := make(map[VarID]float64, len(coefs))
	for v, c := range coefs {
		if int(v) < 0 || int(v) >= len(p.names) {
			panic(fmt.Sprintf("lp: constraint references unknown variable %d", v))
		}
		if c != 0 {
			cp[v] = c
		}
	}
	p.cons = append(p.cons, constraint{coefs: cp, op: op, rhs: rhs})
}

// Solution holds an optimal solution of a Problem.
type Solution struct {
	Objective float64
	values    []float64
}

// Value returns the optimal value of variable v.
func (s *Solution) Value(v VarID) float64 { return s.values[v] }

// Values returns all variable values indexed by VarID.
func (s *Solution) Values() []float64 {
	cp := make([]float64, len(s.values))
	copy(cp, s.values)
	return cp
}

const eps = 1e-9

// pivTol is the smallest tableau element either simplex core will
// pivot on: dividing a row by anything smaller amplifies accumulated
// floating-point noise past the feasibility tolerances.
const pivTol = 1e-7

// Solve runs equality presolve followed by the two-phase simplex and
// returns an optimal solution, or ErrInfeasible / ErrUnbounded.
// A KeepBasis problem skips the presolve so the retained tableau spans
// the full variable set.
func (p *Problem) Solve() (*Solution, error) {
	if p.keep {
		return p.solveRaw()
	}
	ps := presolveEq(p)
	if ps.infeasible {
		return nil, ErrInfeasible
	}
	if len(ps.order) == 0 {
		return p.solveRaw()
	}
	ps.reduced.arena = p.arena
	ps.reduced.stats = p.stats
	ps.reduced.opt = p.opt
	sol, err := ps.reduced.solveRaw()
	if err != nil {
		return nil, err
	}
	return ps.recover(p, sol), nil
}

// colref maps a tableau column back to its problem variable: free
// variables are split x = x⁺ − x⁻ across two columns.
type colref struct {
	orig VarID
	sign float64
}

// solveRaw runs the two-phase simplex without presolve, dispatching to
// the sparse revised core (sparse.go) for large low-density problems.
func (p *Problem) solveRaw() (*Solution, error) {
	if p.chooseSparse() {
		return p.solveSparse()
	}
	p.sws = nil // this solve's retained basis (if any) is dense
	// Standard form: free variables are split x = x⁺ − x⁻ with both parts
	// nonnegative; constraints become equalities via slack/surplus; rows
	// are normalized so every RHS is nonnegative; phase 1 minimizes the
	// sum of artificial variables.
	ar := p.arena
	if ar == nil {
		ar = &Arena{}
	}
	ar.reset()
	var cols []colref
	colOf := ar.ints(len(p.names))    // first column of variable
	negColOf := ar.ints(len(p.names)) // second column for free vars
	for v := range p.names {
		colOf[v] = len(cols)
		cols = append(cols, colref{orig: VarID(v), sign: 1})
		if p.free[v] {
			negColOf[v] = len(cols)
			cols = append(cols, colref{orig: VarID(v), sign: -1})
		} else {
			negColOf[v] = -1
		}
	}
	nStruct := len(cols)
	m := len(p.cons)

	// Count slack columns.
	nSlack := 0
	for _, c := range p.cons {
		if c.op != EQ {
			nSlack++
		}
	}
	nTotal := nStruct + nSlack + m // + artificials (one per row, some unused)

	// Build tableau rows: A | b.
	a := make([][]float64, m)
	b := ar.floats(m)
	basis := ar.ints(m)
	slackIdx := nStruct
	artIdx := nStruct + nSlack
	artUsed := make([]bool, nTotal)
	for i, c := range p.cons {
		row := ar.floats(nTotal)
		for v, coef := range c.coefs {
			row[colOf[v]] += coef
			if negColOf[v] >= 0 {
				row[negColOf[v]] -= coef
			}
		}
		rhs := c.rhs
		op := c.op
		// Row scaling: normalize by the largest structural coefficient so
		// rows with very different magnitudes (data weights vs. unit
		// constraints) condition the tableau evenly.
		rowMax := 0.0
		for j := 0; j < nStruct; j++ {
			if math.Abs(row[j]) > rowMax {
				rowMax = math.Abs(row[j])
			}
		}
		if rowMax > 0 {
			inv := 1 / rowMax
			for j := 0; j < nStruct; j++ {
				row[j] *= inv
			}
			rhs *= inv
		}
		var slackCol = -1
		if op != EQ {
			slackCol = slackIdx
			slackIdx++
			if op == LE {
				row[slackCol] = 1
			} else {
				row[slackCol] = -1
			}
		}
		// Normalize RHS ≥ 0.
		if rhs < 0 {
			for j := range row {
				row[j] = -row[j]
			}
			rhs = -rhs
		}
		// Choose a basic column: a slack with +1 coefficient if available,
		// otherwise an artificial.
		if slackCol >= 0 && row[slackCol] == 1 {
			basis[i] = slackCol
		} else {
			ac := artIdx + i
			row[ac] = 1
			basis[i] = ac
			artUsed[ac] = true
		}
		a[i] = row
		b[i] = rhs
	}

	// Deterministic RHS perturbation breaks the ties that cause
	// degenerate cycling (the classic perturbation method). Pivoting
	// decisions use the perturbed RHS; the reported solution is read
	// from the unperturbed RHS carried through the same pivots.
	b2 := ar.floats(m)
	copy(b2, b)
	for i := range b {
		b[i] += 1e-7 * float64(i+1) / float64(m+1)
	}

	// Phase 1: minimize sum of artificials.
	phase1Cost := ar.floats(nTotal)
	anyArt := false
	for j := artIdx; j < nTotal; j++ {
		if artUsed[j] {
			phase1Cost[j] = 1
			anyArt = true
		}
	}
	if p.stats != nil {
		p.stats.Solves++
	}
	maxIter, ctx := p.budget(m, nTotal)
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("%w: %w", ErrCanceled, err)
		}
	}
	if anyArt {
		t0 := now()
		_, piv, err := simplex(a, b, b2, basis, phase1Cost, nTotal, maxIter, ctx)
		if p.stats != nil {
			p.stats.Pivots += piv
			p.stats.Phase1 += since(t0)
		}
		if err != nil {
			return nil, err
		}
		// Judge feasibility on the unperturbed RHS: the perturbed
		// phase-1 objective retains the perturbation residue even at
		// feasible bases.
		resid := 0.0
		for i, bj := range basis {
			if bj >= artIdx && artUsed[bj] {
				resid += math.Abs(b2[i])
			}
		}
		if resid > 1e-6 {
			if debugLP {
				fmt.Printf("phase1: residual %g (m=%d)\n", resid, m)
			}
			return nil, ErrInfeasible
		}
		// Drive remaining artificials out of the basis where possible,
		// pivoting each row at its largest-magnitude eligible element.
		// Elements below pivTol are factorization noise: pivoting on one
		// amplifies the row by up to 1/pivTol, wrecking the tableau (and
		// the returned "solution") — such rows are numerically redundant
		// and keep their artificial basic at level 0 instead.
		for i := range basis {
			if basis[i] >= artIdx {
				bestJ, bestV := -1, pivTol
				for j := 0; j < artIdx; j++ {
					if v := math.Abs(a[i][j]); v > bestV {
						bestJ, bestV = j, v
					}
				}
				if bestJ >= 0 {
					pivot(a, b, b2, basis, i, bestJ)
					// A negative-signed pivot flips the row's perturbation
					// residue negative; re-perturb to keep the phase-2
					// invariant b ≥ 0 (the perturbation is ours to choose).
					if b[i] < 0 {
						b[i] = 0
					}
				}
			}
		}
	}

	// Phase 2: original costs, artificials forbidden.
	cost := ar.floats(nTotal)
	for j := 0; j < nStruct; j++ {
		cost[j] = p.costs[cols[j].orig] * cols[j].sign
	}
	for j := artIdx; j < nTotal; j++ {
		if artUsed[j] {
			cost[j] = inf // never re-enter
		}
	}
	t0 := now()
	_, piv, err := simplex(a, b, b2, basis, cost, artIdx, maxIter, ctx)
	if p.stats != nil {
		p.stats.Pivots += piv
		p.stats.Phase2 += since(t0)
	}
	if err != nil {
		return nil, err
	}
	// An artificial stuck basic after the drive-out is supposed to sit
	// in a redundant row at level 0; if phase-2 pivots lifted it, its
	// constraint was silently abandoned and the "solution" is garbage.
	// Fail honestly instead — callers treat it like a stuck solve.
	for i, bj := range basis {
		if bj >= artIdx && artUsed[bj] && math.Abs(b2[i]) > 1e-6 {
			return nil, fmt.Errorf("%w: artificial lifted to %g (m=%d)", ErrBudget, b2[i], m)
		}
	}

	if p.keep {
		p.ws = &warmState{
			cols: cols, a: a, b: b, b2: b2, basis: basis,
			artUsed: artUsed, nStruct: nStruct, artIdx: artIdx, nTotal: nTotal,
			nVars: len(p.names), nCons: len(p.cons),
		}
	}
	return p.extract(cols, nStruct, basis, b2), nil
}

// extract reads the solution of the original variables off the final
// basis and unperturbed RHS. The returned slices are freshly allocated
// (never arena storage), so solutions outlive later solves.
func (p *Problem) extract(cols []colref, nStruct int, basis []int, b2 []float64) *Solution {
	values := make([]float64, len(p.names))
	for i, bj := range basis {
		if bj < nStruct {
			values[cols[bj].orig] += cols[bj].sign * b2[i]
		}
	}
	obj := 0.0
	for v, x := range values {
		obj += p.costs[v] * x
	}
	return &Solution{Objective: obj, values: values}
}

// budget resolves the effective per-phase iteration cap and context of
// one solve from the problem's Options and the tableau dimensions.
func (p *Problem) budget(m, n int) (int64, context.Context) {
	maxIter := p.opt.MaxIter
	if maxIter <= 0 {
		maxIter = defaultMaxIter(m, n)
	}
	return maxIter, p.opt.Ctx
}

// simplex runs the primal simplex on the tableau (a|b) with the given
// basis, minimizing costᵀx. Only columns < limit may enter the basis.
// b2 is the unperturbed RHS, carried through the same pivots. It returns
// the optimal objective value (w.r.t. the perturbed RHS) and the number
// of pivots performed. maxIter bounds the iterations (ErrBudget beyond);
// ctx, when non-nil, is polled every iterCheckStride iterations and
// aborts with ErrCanceled wrapping ctx.Err().
func simplex(a [][]float64, b, b2 []float64, basis []int, cost []float64, limit int, maxIter int64, ctx context.Context) (float64, int64, error) {
	m := len(a)
	if m == 0 {
		return 0, 0, nil
	}
	n := len(a[0])
	var pivots int64
	// Reduced costs require the basis columns to be identity; maintain by
	// pivoting, and reprice from scratch periodically to purge the
	// floating-point drift that incremental updates accumulate.
	z := make([]float64, n)
	var zb float64
	reprice := func() {
		copy(z, cost[:n])
		zb = 0
		for i, bj := range basis {
			cb := z[bj]
			if math.IsInf(cb, 1) {
				// An artificial stuck in the basis at value 0: treat its
				// cost as 0 for pricing (it remains at level 0).
				z[bj] = 0
				continue
			}
			if cb == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				z[j] -= cb * a[i][j]
			}
			zb -= cb * b[i]
		}
		// Basis columns must price to exactly zero.
		for _, bj := range basis {
			z[bj] = 0
		}
	}
	reprice()
	// Relative tolerance scale for reduced costs: degenerate equal-cost
	// rays (e.g. translation freedom in alignment offsets) can leave
	// tiny negative reduced costs on columns whose ratio test fails;
	// treating those as unbounded would be wrong.
	scale := 1.0
	for j := range z {
		if !math.IsInf(z[j], 0) && math.Abs(z[j]) > scale {
			scale = math.Abs(z[j])
		}
	}
	looseEps := 1e-5 * scale
	skip := make([]bool, n)
	fresh := true // z was just repriced from scratch
	for iter := int64(0); ; iter++ {
		if iter >= maxIter {
			return 0, pivots, fmt.Errorf("%w after %d iterations (m=%d n=%d)", ErrBudget, iter, m, n)
		}
		if iter%iterCheckStride == iterCheckStride-1 {
			if ctx != nil {
				if err := ctx.Err(); err != nil {
					return 0, pivots, fmt.Errorf("%w: %w", ErrCanceled, err)
				}
			}
			reprice()
			fresh = true
		}
		// Bland's rule: entering column = lowest index with negative
		// reduced cost (excluding columns proven rays of ~zero cost).
		enter := -1
		for j := 0; j < limit; j++ {
			if skip[j] || math.IsInf(cost[j], 1) {
				continue
			}
			if z[j] < -eps {
				enter = j
				break
			}
		}
		if enter == -1 {
			if !fresh {
				// Confirm optimality against drift before concluding.
				reprice()
				fresh = true
				continue
			}
			return -zb, pivots, nil // optimal
		}
		// Ratio test. Pivot elements below pivTol are rejected outright:
		// pivoting on a near-zero element blows the tableau up. Among
		// rows within tolerance of the minimum ratio, prefer the largest
		// pivot element for stability; on fully degenerate steps (ratio
		// 0) fall back to Bland's smallest-basis-index rule to guarantee
		// progress.
		leave := -1
		best := math.Inf(1)
		for i := 0; i < m; i++ {
			if a[i][enter] > pivTol {
				r := b[i] / a[i][enter]
				if r < best {
					best = r
					leave = i
				}
			}
		}
		if leave >= 0 {
			tol := 1e-9 * (1 + math.Abs(best))
			if best <= tol {
				// Degenerate: Bland tie-break.
				for i := 0; i < m; i++ {
					if a[i][enter] > pivTol && b[i]/a[i][enter] <= best+tol && basis[i] < basis[leave] {
						leave = i
					}
				}
			} else {
				// Stability tie-break: largest pivot among near-minimum
				// ratios.
				for i := 0; i < m; i++ {
					if a[i][enter] > pivTol && b[i]/a[i][enter] <= best+tol && a[i][enter] > a[leave][enter] {
						leave = i
					}
				}
			}
		}
		if leave == -1 {
			if !fresh {
				reprice()
				fresh = true
				continue
			}
			colmax := 0.0
			for i := 0; i < m; i++ {
				if math.Abs(a[i][enter]) > colmax {
					colmax = math.Abs(a[i][enter])
				}
			}
			if z[enter] > -looseEps || (colmax < 1e-6 && cost[enter] >= 0) {
				// A (numerically) zero-cost ray — or a column that has
				// degenerated to noise with a nonnegative true cost:
				// moving along it cannot improve the objective; exclude
				// the column and continue.
				skip[enter] = true
				continue
			}
			if debugLP {
				fmt.Printf("UNBOUNDED: iter=%d enter=%d z=%g looseEps=%g colmax=%g m=%d n=%d\n", iter, enter, z[enter], looseEps, colmax, m, n)
			}
			return 0, pivots, ErrUnbounded
		}
		skip[enter] = false
		if iter%5000 == 0 && debugLP {
			fmt.Printf("iter=%d enter=%d leave=%d z=%g obj=%g\n", iter, enter, leave, z[enter], -zb)
		}
		pivot(a, b, b2, basis, leave, enter)
		pivots++
		fresh = false
		// Update cost row.
		c := z[enter]
		if c != 0 {
			for j := 0; j < n; j++ {
				z[j] -= c * a[leave][j]
			}
			zb -= c * b[leave]
		}
	}
}

// pivot makes column enter basic in row leave, updating both the
// perturbed (b) and unperturbed (b2) right-hand sides.
func pivot(a [][]float64, b, b2 []float64, basis []int, leave, enter int) {
	m := len(a)
	n := len(a[leave])
	piv := a[leave][enter]
	inv := 1 / piv
	for j := 0; j < n; j++ {
		a[leave][j] *= inv
	}
	b[leave] *= inv
	b2[leave] *= inv
	a[leave][enter] = 1 // exactness
	for i := 0; i < m; i++ {
		if i == leave {
			continue
		}
		f := a[i][enter]
		if f == 0 {
			continue
		}
		for j := 0; j < n; j++ {
			a[i][j] -= f * a[leave][j]
		}
		a[i][enter] = 0
		b[i] -= f * b[leave]
		b2[i] -= f * b2[leave]
	}
	basis[leave] = enter
}

// Dump renders the problem in LP-like text format for debugging.
func (p *Problem) Dump() string {
	var sb []byte
	add := func(s string) { sb = append(sb, s...) }
	add("min:")
	for v, c := range p.costs {
		if c != 0 {
			add(fmt.Sprintf(" %+g*%s%d", c, p.names[v], v))
		}
	}
	add("\n")
	for _, c := range p.cons {
		for v := 0; v < len(p.names); v++ {
			if co, ok := c.coefs[VarID(v)]; ok {
				add(fmt.Sprintf(" %+g*%s%d", co, p.names[v], v))
			}
		}
		add(fmt.Sprintf(" %s %g\n", c.op, c.rhs))
	}
	return string(sb)
}
