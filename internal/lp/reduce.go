package lp

import (
	"math"
	"sort"
)

// This file is the RLP presolver: a reduction that shrinks a problem
// before any simplex runs and splits what remains into independent
// blocks. It generalizes the classification NetworkForm performs into a
// real rewrite:
//
//  1. pins (single-variable equality rows) fix their variable and are
//     substituted out, transitively — a pinned variable folded into a
//     two-variable difference row pins the other end too;
//  2. difference-equality chains over free variables (x_a − x_b = d)
//     are contracted with a weighted union-find, so a whole chain
//     collapses into one representative carrying the class's summed
//     objective cost;
//  3. zero-weight θ terms — nonnegative zero-cost variables appearing
//     only in ≥ rows with positive coefficient over otherwise-free
//     variables — are dropped together with their rows (the postsolve
//     reconstructs them at their lower bound);
//  4. the surviving rows are rewritten over class representatives,
//     empty satisfied rows are dropped, and the constraint–variable
//     bipartite graph is split into its connected components, each
//     becoming an independent Problem.
//
// Reduce never diagnoses errors itself: any contradiction, infeasible
// fixing, or potential unboundedness makes it decline (ok = false) so
// the caller falls back to Solve and the simplex reports the proper
// error. The reduction is deterministic — rows are processed in
// original order with entries sorted by variable — so which of several
// degenerate optima the downstream engines land on is reproducible.

// reduceTol bounds the float slop tolerated when judging a folded row
// satisfied; it matches the simplex feasibility tolerance.
const reduceTol = 1e-7

// ReducedBlock is one independent subproblem of a Reduce: the rows and
// class representatives of one connected component of the reduced
// constraint–variable graph.
type ReducedBlock struct {
	// Prob is the block's standalone problem. Its variables carry the
	// summed objective cost of their contraction class.
	Prob *Problem
	// Vars maps the block's VarIDs back to the original problem's
	// representative variables (ascending, deterministic).
	Vars []VarID
}

// Reduction is the postsolve map of a Reduce: everything needed to
// reconstruct a full solution of the original problem from per-block
// solutions.
type Reduction struct {
	p *Problem
	n int // original variable count; index n is the virtual ground

	// Weighted union-find over n+1 entries: x_v = x_root(v) + off[v].
	// Ground represents the absolute origin (x_ground = 0), so pinned
	// variables live in ground's class.
	parent []int
	off    []float64
	gr     int     // find(ground) root
	gOff   float64 // find(ground) offset

	// Blocks are the independent subproblems, in deterministic order
	// (ascending smallest representative).
	Blocks []ReducedBlock
	// blockOf / colOf map a representative to its block and column;
	// -1 = representative unconstrained (valued 0 by postsolve).
	blockOf []int32
	colOf   []int32

	// dropped are the rows removed with zero-weight θ variables, kept
	// so postsolve can place each dropped θ at its lower bound.
	dropped []droppedRow

	// Fixed and Contracted are the eliminated-variable counts
	// (mirrored into Stats by Reduce).
	Fixed, Contracted int
}

// droppedRow is one ≥ row removed with a zero-cost θ: coef·θ + Σ
// entries ≥ rhs, entries over representatives.
type droppedRow struct {
	theta   int // original variable index
	coef    float64
	entries []redEnt
	rhs     float64
}

type redEnt struct {
	v int
	a float64
}

// insertionSortEnts orders entries by variable. RLP rows hold a
// handful of entries, where sort.Slice's reflection overhead dwarfs
// the sort itself.
func insertionSortEnts(es []redEnt) {
	for x := 1; x < len(es); x++ {
		for y := x; y > 0 && es[y].v < es[y-1].v; y-- {
			es[y], es[y-1] = es[y-1], es[y]
		}
	}
}

// find returns the class representative of v and v's offset from it
// (x_v = x_root + off), compressing the path as it goes.
func (r *Reduction) find(v int) (int, float64) {
	if r.parent[v] == v {
		return v, 0
	}
	root, o := r.find(r.parent[v])
	r.parent[v] = root
	r.off[v] += o
	return root, r.off[v]
}

// merge imposes x_a − x_b = d. The second result is false when the
// classes were already joined with a conflicting displacement (the
// problem is infeasible — the caller declines so the simplex reports
// it).
func (r *Reduction) merge(a, b int, d float64) (bool, bool) {
	ra, oa := r.find(a)
	rb, ob := r.find(b)
	if ra == rb {
		return false, math.Abs((oa-ob)-d) <= reduceTol
	}
	// Union by representative index: the smaller index wins, so class
	// representatives — and with them block identities — are
	// deterministic. Ground (index n) always loses, keeping original
	// variables as representatives of the ground class is harmless
	// because ground's own root is looked up, not assumed.
	if ra > rb {
		ra, rb = rb, ra
		oa, ob = ob, oa
		d = -d
	}
	// x_rb = x_ra + (oa − d − ob)
	r.parent[rb] = ra
	r.off[rb] = oa - d - ob
	return true, true
}

// Reduce runs the presolver on p: pin and contract the equality
// structure, optionally drop zero-weight θ terms (dropZero; leave them
// when objective costs will change between warm rounds), rewrite the
// surviving rows over class representatives, and split the result into
// independent blocks. It returns ok = false — and the caller must fall
// back to Solve — when presolve is disabled, the reduction detects a
// contradiction or possible unboundedness (the simplex owns error
// diagnosis), or nothing was reduced.
func (p *Problem) Reduce(dropZero bool) (*Reduction, bool) {
	if p.opt.Presolve == PresolveOff {
		return nil, false
	}
	n := len(p.names)
	if n == 0 || len(p.cons) == 0 {
		return nil, false
	}
	if f := p.opt.PresolveFloor; f > 0 && n+len(p.cons) < f {
		return nil, false
	}
	r := &Reduction{p: p, n: n}
	r.parent = make([]int, n+1)
	r.off = make([]float64, n+1)
	for i := range r.parent {
		r.parent[i] = i
	}
	ground := n

	// Snapshot every row with entries sorted by variable (constraint
	// maps have randomized iteration order; the reduction must not).
	type row struct {
		entries []redEnt
		op      Op
		rhs     float64
		live    bool // still pending (EQ) or surviving (any op)
	}
	rows := make([]row, len(p.cons))
	var entbuf []redEnt
	nnz := 0
	for i := range p.cons {
		nnz += len(p.cons[i].coefs)
	}
	// One flat snapshot buffer for every row's entries: the exact
	// capacity means appends never reallocate, so the per-row
	// subslices stay valid.
	flat := make([]redEnt, 0, nnz)
	for i := range p.cons {
		c := &p.cons[i]
		start := len(flat)
		for v, a := range c.coefs {
			flat = append(flat, redEnt{v: int(v), a: a})
		}
		es := flat[start:]
		insertionSortEnts(es)
		rows[i] = row{entries: es, op: c.op, rhs: c.rhs, live: true}
	}

	// fold rewrites a row over current representatives: ground-class
	// variables move to the right-hand side, merged variables combine.
	// The result reuses entbuf (valid until the next fold).
	fold := func(ro *row) ([]redEnt, float64) {
		gRoot, gO := r.find(ground)
		entbuf = entbuf[:0]
		rhs := ro.rhs
		for _, e := range ro.entries {
			root, o := r.find(e.v)
			if root == gRoot {
				// x_v = x_ground + (o − gO) = o − gO.
				rhs -= e.a * (o - gO)
				continue
			}
			rhs -= e.a * o
			entbuf = append(entbuf, redEnt{v: root, a: e.a})
		}
		insertionSortEnts(entbuf)
		// Combine duplicates (two class members in one row).
		out := entbuf[:0]
		for _, e := range entbuf {
			if len(out) > 0 && out[len(out)-1].v == e.v {
				out[len(out)-1].a += e.a
			} else {
				out = append(out, e)
			}
		}
		kept := out[:0]
		for _, e := range out {
			if math.Abs(e.a) > 1e-12 {
				kept = append(kept, e)
			}
		}
		return kept, rhs
	}

	// Fixpoint: absorb pins and difference chains until no equality
	// row makes progress. Folding can shrink a three-variable row to
	// two once a member pins, so iterate.
	for changed := true; changed; {
		changed = false
		for i := range rows {
			ro := &rows[i]
			if !ro.live || ro.op != EQ {
				continue
			}
			es, rhs := fold(ro)
			switch len(es) {
			case 0:
				if math.Abs(rhs) > reduceTol {
					return nil, false // infeasible: let the simplex say so
				}
				ro.live = false
				changed = true
			case 1:
				val := rhs / es[0].a
				if !p.free[es[0].v] && val < -reduceTol {
					return nil, false // fixes a nonnegative variable negative
				}
				progress, ok := r.merge(es[0].v, ground, val)
				if !ok {
					return nil, false
				}
				ro.live = false
				if progress {
					changed = true
				}
			case 2:
				// Contract only pure differences over free variables:
				// merging bounded variables would lose their sign
				// constraints.
				if es[1].a == -es[0].a && p.free[es[0].v] && p.free[es[1].v] {
					progress, ok := r.merge(es[0].v, es[1].v, rhs/es[0].a)
					if !ok {
						return nil, false
					}
					ro.live = false
					if progress {
						changed = true
					}
				}
			}
		}
	}

	// Rewrite the survivors over final representatives.
	type finalRow struct {
		entries []redEnt
		op      Op
		rhs     float64
	}
	var finals []finalRow
	// Folded survivors are never wider than their source rows, so one
	// flat buffer with the snapshot's capacity holds every final row's
	// entries without reallocating.
	finBuf := make([]redEnt, 0, nnz)
	occ := make([]int32, n) // representative occurrence count
	geOnly := make([]bool, n)
	for v := range geOnly {
		geOnly[v] = true
	}
	for i := range rows {
		ro := &rows[i]
		if !ro.live {
			continue
		}
		es, rhs := fold(ro)
		if len(es) == 0 {
			sat := false
			switch ro.op {
			case GE:
				sat = rhs <= reduceTol
			case LE:
				sat = rhs >= -reduceTol
			case EQ:
				sat = math.Abs(rhs) <= reduceTol
			}
			if !sat {
				return nil, false
			}
			continue
		}
		start := len(finBuf)
		finBuf = append(finBuf, es...)
		fr := finalRow{entries: finBuf[start:], op: ro.op, rhs: rhs}
		for _, e := range fr.entries {
			occ[e.v]++
			if !(ro.op == GE && e.a > 0) {
				geOnly[e.v] = false
			}
		}
		finals = append(finals, fr)
	}

	// Aggregated class costs: x_v = x_root + off means the objective
	// contribution Σ c_v x_v concentrates Σ_{class} c_v on the root
	// (the offset part is a constant the postsolve restores by
	// recomputing the objective from original costs).
	aggCost := make([]float64, n)
	gRoot, _ := r.find(ground)
	for v := 0; v < n; v++ {
		root, _ := r.find(v)
		if root != gRoot && root < n {
			aggCost[root] += p.costs[v]
		}
	}

	// Zero-weight θ drop (cold solves only): a nonnegative zero-cost
	// variable appearing only in ≥ rows with positive coefficient can
	// always satisfy its rows, so they constrain nothing else. Require
	// every co-occurring variable to be free so the postsolve can
	// evaluate the dropped rows without ordering concerns.
	droppedVar := make([]bool, n)
	if dropZero {
		rowDead := make([]bool, len(finals))
		for v := 0; v < n; v++ {
			root, _ := r.find(v)
			if root != v || p.free[v] || aggCost[v] != 0 || occ[v] == 0 || !geOnly[v] {
				continue
			}
			ok := true
			var cand []int
			for fi := range finals {
				fr := &finals[fi]
				uses := false
				for _, e := range fr.entries {
					if e.v == v {
						uses = true
					} else if !p.free[e.v] {
						ok = false
					}
				}
				if uses {
					cand = append(cand, fi)
				}
				if !ok {
					break
				}
			}
			if !ok {
				continue
			}
			droppedVar[v] = true
			for _, fi := range cand {
				fr := &finals[fi]
				rowDead[fi] = true
				dr := droppedRow{theta: v, rhs: fr.rhs}
				for _, e := range fr.entries {
					if e.v == v {
						dr.coef = e.a
					} else {
						dr.entries = append(dr.entries, e)
						occ[e.v]--
					}
				}
				occ[v]--
				r.dropped = append(r.dropped, dr)
			}
		}
		if len(r.dropped) > 0 {
			kept := finals[:0]
			for fi := range finals {
				if !rowDead[fi] {
					kept = append(kept, finals[fi])
				}
			}
			finals = kept
		}
	}

	// Unconstrained representatives take value 0; that is only sound
	// when moving them cannot improve the objective.
	for v := 0; v < n; v++ {
		root, _ := r.find(v)
		if root != v || root == gRoot || occ[v] > 0 || droppedVar[v] {
			continue
		}
		if (p.free[v] && aggCost[v] != 0) || (!p.free[v] && aggCost[v] < 0) {
			return nil, false // unbounded ray: the simplex owns that verdict
		}
	}

	// Count the eliminations.
	for v := 0; v < n; v++ {
		root, _ := r.find(v)
		switch {
		case root == gRoot:
			r.Fixed++
		case root != v:
			r.Contracted++
		case droppedVar[v]:
			r.Contracted++
		}
	}
	if r.Fixed == 0 && r.Contracted == 0 && len(finals) == len(p.cons) {
		return nil, false // nothing reduced: solving p directly is cheaper
	}

	// Block split: connected components of the representative graph
	// induced by the surviving rows.
	bu := make([]int32, n)
	for v := range bu {
		bu[v] = int32(v)
	}
	var bfind func(int32) int32
	bfind = func(v int32) int32 {
		if bu[v] == v {
			return v
		}
		bu[v] = bfind(bu[v])
		return bu[v]
	}
	for fi := range finals {
		es := finals[fi].entries
		for k := 1; k < len(es); k++ {
			ra, rb := bfind(int32(es[0].v)), bfind(int32(es[k].v))
			if ra != rb {
				if ra > rb {
					ra, rb = rb, ra
				}
				bu[rb] = ra // smaller index wins: deterministic block ids
			}
		}
	}
	r.blockOf = make([]int32, n)
	r.colOf = make([]int32, n)
	for v := range r.blockOf {
		r.blockOf[v] = -1
		r.colOf[v] = -1
	}
	// Block order = ascending component representative (which is the
	// smallest original variable index in the component).
	blockIdx := map[int32]int32{}
	var comps []int32
	for fi := range finals {
		root := bfind(int32(finals[fi].entries[0].v))
		if _, ok := blockIdx[root]; !ok {
			blockIdx[root] = -1
			comps = append(comps, root)
		}
	}
	sort.Slice(comps, func(x, y int) bool { return comps[x] < comps[y] })
	r.Blocks = make([]ReducedBlock, len(comps))
	for bi, root := range comps {
		blockIdx[root] = int32(bi)
	}
	// A block is smaller than its parent but relatively denser (the
	// contraction folds chains into wide rows), so re-running the
	// EngineAuto size threshold per block can demote it to the dense
	// tableau right where that core is slowest. If the parent
	// qualified for the sparse core, its blocks keep it.
	blockEngine := p.opt.Engine
	if blockEngine == EngineAuto && p.chooseSparse() {
		blockEngine = EngineSparse
	}
	// Assign variables to blocks in ascending order.
	for v := 0; v < n; v++ {
		if occ[v] == 0 {
			continue
		}
		bi := blockIdx[bfind(int32(v))]
		blk := &r.Blocks[bi]
		if blk.Prob == nil {
			blk.Prob = NewProblem()
			blk.Prob.opt = p.opt
			blk.Prob.opt.Engine = blockEngine
		}
		r.blockOf[v] = bi
		r.colOf[v] = int32(len(blk.Vars))
		blk.Prob.AddVariable(p.names[v], aggCost[v], p.free[v])
		blk.Vars = append(blk.Vars, VarID(v))
	}
	// Distribute rows in original order; constraints are built
	// in-package so the entry maps are owned, not re-copied.
	for fi := range finals {
		fr := &finals[fi]
		bi := r.blockOf[fr.entries[0].v]
		blk := &r.Blocks[bi]
		m := make(map[VarID]float64, len(fr.entries))
		for _, e := range fr.entries {
			m[VarID(r.colOf[e.v])] = e.a
		}
		blk.Prob.cons = append(blk.Prob.cons, constraint{coefs: m, op: fr.op, rhs: fr.rhs})
	}
	r.gr, r.gOff = r.find(ground)
	if p.stats != nil {
		p.stats.PresolveFixed += r.Fixed
		p.stats.PresolveContracted += r.Contracted
	}
	return r, true
}

// BlockVar maps an original variable to the block and block-local
// VarID of its class representative; ok = false when the variable was
// eliminated (fixed, contracted into a representative that itself sits
// in no block, or dropped).
func (r *Reduction) BlockVar(v VarID) (int, VarID, bool) {
	root, _ := r.find(int(v))
	if root >= r.n || r.blockOf[root] < 0 {
		return 0, 0, false
	}
	return int(r.blockOf[root]), VarID(r.colOf[root]), true
}

// Postsolve reconstructs a full solution of the original problem from
// the per-block solutions (indexed like Blocks). Eliminated variables
// are rebuilt from the union-find offsets, dropped θs sit at their
// lower bound, and the objective is recomputed from the original
// costs, so the result is exactly what a direct solve would report for
// the same vertex.
func (r *Reduction) Postsolve(sols []*Solution) *Solution {
	rootVal := make([]float64, r.n)
	for bi := range r.Blocks {
		blk := &r.Blocks[bi]
		sol := sols[bi]
		for col, orig := range blk.Vars {
			rootVal[orig] = sol.Value(VarID(col))
		}
	}
	values := make([]float64, r.n)
	for v := 0; v < r.n; v++ {
		root, o := r.find(v)
		if root == r.gr {
			values[v] = o - r.gOff
		} else {
			values[v] = rootVal[root] + o
		}
	}
	// Dropped θs: the smallest feasible value of their removed rows.
	for _, dr := range r.dropped {
		lhs := 0.0
		for _, e := range dr.entries {
			root, o := r.find(e.v)
			if root == r.gr {
				lhs += e.a * (o - r.gOff)
			} else {
				lhs += e.a * (rootVal[root] + o)
			}
		}
		// coef·θ + lhs ≥ rhs ⇒ θ ≥ (rhs − lhs)/coef.
		if lb := (dr.rhs - lhs) / dr.coef; lb > values[dr.theta] {
			values[dr.theta] = lb
		}
	}
	obj := 0.0
	for v, x := range values {
		obj += r.p.costs[v] * x
	}
	return &Solution{Objective: obj, values: values}
}
