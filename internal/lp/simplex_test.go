package lp

import (
	"math"
	"math/rand"
	"testing"
)

func solveOrFail(t *testing.T, p *Problem) *Solution {
	t.Helper()
	sol, err := p.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return sol
}

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestSimpleMin(t *testing.T) {
	// min x + y s.t. x + y >= 2, x >= 0, y >= 0 → obj 2.
	p := NewProblem()
	x := p.AddVariable("x", 1, false)
	y := p.AddVariable("y", 1, false)
	p.AddConstraint(map[VarID]float64{x: 1, y: 1}, GE, 2)
	sol := solveOrFail(t, p)
	if !almost(sol.Objective, 2) {
		t.Errorf("objective = %v, want 2", sol.Objective)
	}
}

func TestEqualityConstraint(t *testing.T) {
	// min 2x + 3y s.t. x + y = 10, x <= 4 → x=4, y=6, obj 26.
	p := NewProblem()
	x := p.AddVariable("x", 2, false)
	y := p.AddVariable("y", 3, false)
	p.AddConstraint(map[VarID]float64{x: 1, y: 1}, EQ, 10)
	p.AddConstraint(map[VarID]float64{x: 1}, LE, 4)
	sol := solveOrFail(t, p)
	if !almost(sol.Objective, 26) {
		t.Errorf("objective = %v, want 26", sol.Objective)
	}
	if !almost(sol.Value(x), 4) || !almost(sol.Value(y), 6) {
		t.Errorf("x=%v y=%v, want 4, 6", sol.Value(x), sol.Value(y))
	}
}

func TestFreeVariable(t *testing.T) {
	// min |x - 5| encoded as min t s.t. t >= x-5, t >= 5-x, x free,
	// with x pinned by x = 3 → t = 2.
	p := NewProblem()
	x := p.AddVariable("x", 0, true)
	th := p.AddVariable("t", 1, false)
	p.AddConstraint(map[VarID]float64{th: 1, x: -1}, GE, -5)
	p.AddConstraint(map[VarID]float64{th: 1, x: 1}, GE, 5)
	p.AddConstraint(map[VarID]float64{x: 1}, EQ, 3)
	sol := solveOrFail(t, p)
	if !almost(sol.Objective, 2) {
		t.Errorf("objective = %v, want 2", sol.Objective)
	}
}

func TestFreeVariableNegativeOptimum(t *testing.T) {
	// min t s.t. t >= x+7, t >= -x-7, x free → x = -7, t = 0.
	p := NewProblem()
	x := p.AddVariable("x", 0, true)
	th := p.AddVariable("t", 1, false)
	p.AddConstraint(map[VarID]float64{th: 1, x: -1}, GE, 7)
	p.AddConstraint(map[VarID]float64{th: 1, x: 1}, GE, -7)
	sol := solveOrFail(t, p)
	if !almost(sol.Objective, 0) {
		t.Errorf("objective = %v, want 0", sol.Objective)
	}
	if !almost(sol.Value(x), -7) {
		t.Errorf("x = %v, want -7", sol.Value(x))
	}
}

func TestInfeasible(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable("x", 1, false)
	p.AddConstraint(map[VarID]float64{x: 1}, GE, 5)
	p.AddConstraint(map[VarID]float64{x: 1}, LE, 3)
	if _, err := p.Solve(); err != ErrInfeasible {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
}

func TestUnbounded(t *testing.T) {
	// min -x s.t. x >= 0 (no upper bound) → unbounded.
	p := NewProblem()
	x := p.AddVariable("x", -1, false)
	p.AddConstraint(map[VarID]float64{x: 1}, GE, 0)
	if _, err := p.Solve(); err != ErrUnbounded {
		t.Errorf("err = %v, want ErrUnbounded", err)
	}
}

func TestDegenerateTranslationRay(t *testing.T) {
	// Alignment-shaped problem: offsets π1, π2, π3 free; costs only on
	// differences; the uniform-translation ray must not be reported as
	// unbounded. min 5θ12 + 3θ23, θ12 ≥ |π1−π2|, θ23 ≥ |π2−π3+4|.
	p := NewProblem()
	p1 := p.AddVariable("p1", 0, true)
	p2 := p.AddVariable("p2", 0, true)
	p3 := p.AddVariable("p3", 0, true)
	t12 := p.AddVariable("t12", 5, false)
	t23 := p.AddVariable("t23", 3, false)
	p.AddConstraint(map[VarID]float64{t12: 1, p1: -1, p2: 1}, GE, 0)
	p.AddConstraint(map[VarID]float64{t12: 1, p1: 1, p2: -1}, GE, 0)
	p.AddConstraint(map[VarID]float64{t23: 1, p2: -1, p3: 1}, GE, -4)
	p.AddConstraint(map[VarID]float64{t23: 1, p2: 1, p3: -1}, GE, 4)
	sol := solveOrFail(t, p)
	if !almost(sol.Objective, 0) {
		t.Errorf("objective = %v, want 0 (π2=π1, π3=π2+4)", sol.Objective)
	}
}

func TestLargeCoefficientRows(t *testing.T) {
	// Mixed magnitudes like real alignment LPs: weights ~1e6.
	p := NewProblem()
	a := p.AddVariable("a", 0, true)
	b := p.AddVariable("b", 0, true)
	th := p.AddVariable("th", 1, false)
	p.AddConstraint(map[VarID]float64{th: 1, a: -1e6, b: 1e6}, GE, -3e6)
	p.AddConstraint(map[VarID]float64{th: 1, a: 1e6, b: -1e6}, GE, 3e6)
	p.AddConstraint(map[VarID]float64{a: 1}, EQ, 0)
	sol := solveOrFail(t, p)
	// θ ≥ |1e6(b−a) + 3e6| with a=0 → minimized at b = −3, θ = 0.
	if !almost(sol.Objective, 0) {
		t.Errorf("objective = %v, want 0", sol.Objective)
	}
	if math.Abs(sol.Value(b)+3) > 1e-6 {
		t.Errorf("b = %v, want -3", sol.Value(b))
	}
}

func TestEqualityChain(t *testing.T) {
	// A chain of equalities like ADG node constraints:
	// x0 = 0, x1 = x0 + 2, x2 = x1 - 5, min θ ≥ |x2 - x0|.
	p := NewProblem()
	x0 := p.AddVariable("x0", 0, true)
	x1 := p.AddVariable("x1", 0, true)
	x2 := p.AddVariable("x2", 0, true)
	th := p.AddVariable("th", 1, false)
	p.AddConstraint(map[VarID]float64{x0: 1}, EQ, 0)
	p.AddConstraint(map[VarID]float64{x1: 1, x0: -1}, EQ, 2)
	p.AddConstraint(map[VarID]float64{x2: 1, x1: -1}, EQ, -5)
	p.AddConstraint(map[VarID]float64{th: 1, x2: -1, x0: 1}, GE, 0)
	p.AddConstraint(map[VarID]float64{th: 1, x2: 1, x0: -1}, GE, 0)
	sol := solveOrFail(t, p)
	if !almost(sol.Objective, 3) {
		t.Errorf("objective = %v, want 3", sol.Objective)
	}
}

func TestManyThetaTerms(t *testing.T) {
	// A star of K offsets all pulled toward different constants with
	// different weights; optimum is the weighted median.
	p := NewProblem()
	x := p.AddVariable("x", 0, true)
	targets := []float64{1, 4, 9, 16, 25}
	weights := []float64{1, 2, 7, 2, 1}
	for i := range targets {
		th := p.AddVariable("th", weights[i], false)
		p.AddConstraint(map[VarID]float64{th: 1, x: -1}, GE, -targets[i])
		p.AddConstraint(map[VarID]float64{th: 1, x: 1}, GE, targets[i])
	}
	sol := solveOrFail(t, p)
	// Weighted median is 9 (weight mass: 3 below, 3 above, 7 at 9).
	if math.Abs(sol.Value(x)-9) > 1e-6 {
		t.Errorf("x = %v, want 9", sol.Value(x))
	}
}

// TestRandomFeasibility cross-checks the solver on random LPs against a
// brute-force grid search over a small integer box.
func TestRandomFeasibility(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		nv := 2 + rng.Intn(2) // 2-3 vars
		p := NewProblem()
		vars := make([]VarID, nv)
		costs := make([]float64, nv)
		for i := range vars {
			costs[i] = float64(rng.Intn(5) + 1)
			vars[i] = p.AddVariable("v", costs[i], false)
		}
		type con struct {
			coefs []float64
			op    Op
			rhs   float64
		}
		var cons []con
		nc := 1 + rng.Intn(3)
		for c := 0; c < nc; c++ {
			coefs := make([]float64, nv)
			m := map[VarID]float64{}
			for i := range vars {
				coefs[i] = float64(rng.Intn(5) - 2)
				m[vars[i]] = coefs[i]
			}
			op := GE
			rhs := float64(rng.Intn(6) - 1)
			cons = append(cons, con{coefs, op, rhs})
			p.AddConstraint(m, op, rhs)
		}
		// Brute force over integer grid [0,10]^nv.
		best := math.Inf(1)
		var rec func(i int, x []float64)
		rec = func(i int, x []float64) {
			if i == nv {
				for _, c := range cons {
					s := 0.0
					for j := range x {
						s += c.coefs[j] * x[j]
					}
					if s < c.rhs-1e-9 {
						return
					}
				}
				obj := 0.0
				for j := range x {
					obj += costs[j] * x[j]
				}
				if obj < best {
					best = obj
				}
				return
			}
			for v := 0; v <= 10; v++ {
				x[i] = float64(v)
				rec(i+1, x)
			}
		}
		rec(0, make([]float64, nv))
		sol, err := p.Solve()
		if err != nil {
			if err == ErrInfeasible && !math.IsInf(best, 1) {
				t.Fatalf("trial %d: solver infeasible but grid found %v", trial, best)
			}
			continue
		}
		// LP optimum must be ≤ any feasible integer point.
		if !math.IsInf(best, 1) && sol.Objective > best+1e-6 {
			t.Errorf("trial %d: objective %v worse than grid %v", trial, sol.Objective, best)
		}
	}
}
