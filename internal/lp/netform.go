package lp

// This file recognizes network-structured problems: LPs whose every
// constraint is a difference equality, a pin, or an absolute-difference
// θ pair. Such problems are the LP dual of a min-cost circulation and
// can be solved exactly by a combinatorial flow algorithm
// (internal/netflow.SolvePotentials) without running the simplex at
// all. The offset RLPs of programs with no loop-variable coefficients
// (§4.1 with every port space concrete and LIV-free) have exactly this
// shape. Detection is purely structural, so callers can probe any
// Problem and fall back to Solve when it fails.

// NetPin fixes x_V = C (a single-variable equality row).
type NetPin struct {
	V VarID
	C float64
}

// NetEq couples x_A − x_B = D (a two-variable equality row with
// opposite coefficients).
type NetEq struct {
	A, B VarID
	D    float64
}

// NetTerm is an adjacent GE row pair encoding θ ≥ |A·(x_U − x_V) − R|.
// V = -1 means the term references a single variable (x_V reads as 0);
// U = V = -1 is the constant term θ ≥ |R|.
type NetTerm struct {
	Theta VarID
	U, V  VarID
	A, R  float64
}

// NetForm is the network decomposition of a problem: every constraint
// classified as a pin, a difference equality, or a θ term, in original
// constraint order.
type NetForm struct {
	Pins  []NetPin
	Eqs   []NetEq
	Terms []NetTerm
}

// NetworkForm classifies the problem's constraints into NetForm.
// It returns ok = false — and the problem must be solved by the
// simplex — unless, after folding pinned variables (see below), all of
// the following hold:
//
//   - every constraint is a single- or two-variable equality (with
//     exactly opposite coefficients in the two-variable case), or half
//     of an adjacent θ pair: two GE rows with negated right-hand sides
//     whose coefficients are exact negations except for a shared
//     variable θ with coefficient 1 in both;
//   - each θ is nonnegative, carries a nonnegative cost, and appears in
//     no other constraint; its pair couples at most two other variables
//     with exactly opposite coefficients;
//   - every non-θ variable that appears in a constraint is free, and
//     every non-θ variable has cost zero (all objective weight rides on
//     the θs).
//
// A variable fixed by a single-variable equality row is a pin; pinned
// variables are folded out of every other row (their contribution moves
// to the right-hand side) before classification. Folding is what makes
// static-mode offset RLPs recognizable: they pin each loop-variable
// coefficient to zero with a one-variable row, and without the fold
// those coefficients would keep every node and θ row above two
// variables.
//
// Under these conditions the optimum is Σ cost(θ)·|A(x_U − x_V) − R|
// minimized over the equality-constrained potentials x — the dual of a
// min-cost circulation.
func (p *Problem) NetworkForm() (*NetForm, bool) {
	nv := len(p.names)
	// Pass 1: collect pins. Conflicting pins mean the problem is
	// infeasible — leave that diagnosis to the simplex.
	pinned := make([]bool, nv)
	pinVal := make([]float64, nv)
	for _, c := range p.cons {
		if c.op != EQ || len(c.coefs) != 1 {
			continue
		}
		for v, a := range c.coefs {
			val := c.rhs / a
			if pinned[v] && pinVal[v] != val {
				return nil, false
			}
			pinned[v], pinVal[v] = true, val
		}
	}
	// Width prefilter: a classifiable row has at most 3 unpinned
	// entries (θ plus a difference) when GE, at most 2 when EQ, and LE
	// rows never classify. Rejecting on a bare count — before the
	// folded per-row views below are allocated and sorted — makes the
	// common failing probe (a mobile RLP whose θ rows couple two
	// (c0, ck) pairs) cost one map scan instead of a full build.
	for i := range p.cons {
		c := &p.cons[i]
		if c.op == LE {
			return nil, false
		}
		if c.op == EQ && len(c.coefs) == 1 {
			continue // pin row
		}
		unpinned := 0
		for v := range c.coefs {
			if !pinned[v] {
				unpinned++
			}
		}
		if (c.op == EQ && unpinned > 2) || (c.op == GE && unpinned > 3) {
			return nil, false
		}
	}
	// Folded view of each constraint: pinned variables removed, their
	// contribution folded into the right-hand side. Entries are sorted
	// by variable for deterministic classification.
	type fent struct {
		v VarID
		a float64
	}
	fcoefs := make([][]fent, len(p.cons))
	frhs := make([]float64, len(p.cons))
	occ := make([]int, nv)
	for i := range p.cons {
		c := &p.cons[i]
		rhs := c.rhs
		es := make([]fent, 0, len(c.coefs))
		for v, a := range c.coefs {
			if pinned[v] && !(c.op == EQ && len(c.coefs) == 1) {
				rhs -= a * pinVal[v]
				continue
			}
			es = append(es, fent{v: v, a: a})
		}
		// Insertion sort: the prefilter bounds rows at 3 entries, where
		// sort.Slice's reflection overhead costs more than the sort.
		for x := 1; x < len(es); x++ {
			for y := x; y > 0 && es[y].v < es[y-1].v; y-- {
				es[y], es[y-1] = es[y-1], es[y]
			}
		}
		fcoefs[i], frhs[i] = es, rhs
		for _, e := range es {
			occ[e.v]++
		}
	}
	coefOf := func(i int, v VarID) (float64, bool) {
		for _, e := range fcoefs[i] {
			if e.v == v {
				return e.a, true
			}
		}
		return 0, false
	}
	isTheta := make([]bool, nv)
	consumed := make([]bool, len(p.cons))
	nf := &NetForm{}
	for i := 0; i+1 < len(p.cons); i++ {
		if consumed[i] {
			continue
		}
		c0, c1 := &p.cons[i], &p.cons[i+1]
		if c0.op != GE || c1.op != GE || frhs[i] != -frhs[i+1] ||
			len(fcoefs[i]) != len(fcoefs[i+1]) {
			continue
		}
		theta := VarID(-1)
		for _, e := range fcoefs[i] {
			a1, ok := coefOf(i+1, e.v)
			if e.a == 1 && ok && a1 == 1 && occ[e.v] == 2 && !p.free[e.v] &&
				p.costs[e.v] >= 0 && theta < 0 {
				theta = e.v
			}
		}
		if theta < 0 {
			continue
		}
		rest := make([]VarID, 0, 2)
		anti := true
		for _, e := range fcoefs[i] {
			if e.v == theta {
				continue
			}
			if a1, ok := coefOf(i+1, e.v); !ok || a1 != -e.a {
				anti = false
				break
			}
			rest = append(rest, e.v)
		}
		if !anti || len(rest) > 2 {
			continue
		}
		term := NetTerm{Theta: theta, U: -1, V: -1, R: frhs[i], A: 1}
		switch len(rest) {
		case 1:
			term.U = rest[0]
			term.A, _ = coefOf(i, rest[0])
		case 2:
			a0, _ := coefOf(i, rest[0])
			a1, _ := coefOf(i, rest[1])
			if a1 != -a0 {
				continue // not a pure difference
			}
			term.U, term.V = rest[0], rest[1]
			term.A = a0
		}
		consumed[i], consumed[i+1] = true, true
		isTheta[theta] = true
		nf.Terms = append(nf.Terms, term)
	}
	for i := range p.cons {
		if consumed[i] {
			continue
		}
		if p.cons[i].op != EQ {
			return nil, false
		}
		es := fcoefs[i]
		switch len(es) {
		case 0:
			// A row folded away entirely must be trivially satisfied.
			if frhs[i] != 0 {
				return nil, false
			}
		case 1:
			nf.Pins = append(nf.Pins, NetPin{V: es[0].v, C: frhs[i] / es[0].a})
		case 2:
			if es[1].a != -es[0].a {
				return nil, false
			}
			nf.Eqs = append(nf.Eqs, NetEq{A: es[0].v, B: es[1].v, D: frhs[i] / es[0].a})
		default:
			return nil, false
		}
	}
	for v := 0; v < nv; v++ {
		if isTheta[v] {
			continue
		}
		if p.costs[v] != 0 {
			return nil, false // objective weight off the θs
		}
		if !p.free[v] && occ[v] > 0 {
			return nil, false // a sign bound the flow model would ignore
		}
	}
	return nf, true
}

// Cost returns the current objective cost of variable v (as set by
// AddVariable or the latest SetCost). External solvers re-read costs
// per solve so warm-started rounds see objective changes.
func (p *Problem) Cost(v VarID) float64 { return p.costs[v] }

// NewSolution wraps externally computed variable values (indexed by
// VarID) and an objective as a Solution, for solvers that bypass
// Solve — the network fast path. The slice is not copied.
func NewSolution(objective float64, values []float64) *Solution {
	return &Solution{Objective: objective, values: values}
}
