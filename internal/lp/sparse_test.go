package lp

import (
	"math"
	"math/rand"
	"testing"
)

// buildRandomRLP constructs an offset-RLP-shaped problem: free offsets
// π, a nonnegative θ per edge bounded by the adjacent GE pair
// θ ± c(π_src − π_dst + d) ≥ 0, a few node equalities, and an anchor.
// This is the exact shape the sparse core's θ-pair merge targets.
func buildRandomRLP(rng *rand.Rand, nPorts, nEdges int) *Problem {
	p := NewProblem()
	ports := make([]VarID, nPorts)
	for i := range ports {
		ports[i] = p.AddVariable("pi", 0, true)
	}
	p.AddConstraint(map[VarID]float64{ports[0]: 1}, EQ, 0) // anchor
	for e := 0; e < nEdges; e++ {
		src := ports[rng.Intn(nPorts)]
		dst := ports[rng.Intn(nPorts)]
		for dst == src {
			dst = ports[rng.Intn(nPorts)]
		}
		c := float64(1 + rng.Intn(4))
		d := float64(rng.Intn(7) - 3)
		w := float64(rng.Intn(5)) // includes 0: dead-edge θ
		th := p.AddVariable("theta", w, false)
		p.AddConstraint(map[VarID]float64{th: 1, src: c, dst: -c}, GE, -c*d)
		p.AddConstraint(map[VarID]float64{th: 1, src: -c, dst: c}, GE, c*d)
	}
	for k := 0; k < nPorts/3; k++ {
		a := ports[rng.Intn(nPorts)]
		b := ports[rng.Intn(nPorts)]
		if a == b {
			continue
		}
		p.AddConstraint(map[VarID]float64{a: 1, b: -1}, EQ, float64(rng.Intn(5)-2))
	}
	return p
}

// feasible reports whether vals satisfies every constraint of p within
// tol, returning the first violated row otherwise.
func feasible(p *Problem, vals []float64, tol float64) (bool, int) {
	for i, c := range p.cons {
		lhs := 0.0
		for v, a := range c.coefs {
			lhs += a * vals[v]
		}
		switch c.op {
		case LE:
			if lhs > c.rhs+tol {
				return false, i
			}
		case GE:
			if lhs < c.rhs-tol {
				return false, i
			}
		case EQ:
			if math.Abs(lhs-c.rhs) > tol {
				return false, i
			}
		}
	}
	// Nonnegative variables must be nonnegative.
	for v, free := range p.free {
		if !free && vals[v] < -tol {
			return false, -1
		}
	}
	return true, 0
}

// solveWith solves a freshly built copy of the same seeded problem on
// the given engine.
func solveWith(build func() *Problem, eng Engine) (*Solution, error, *Problem) {
	p := build()
	p.SetOptions(Options{Engine: eng})
	s, err := p.Solve()
	return s, err, p
}

// TestSparseDifferentialGeneral cross-checks the sparse revised simplex
// against the dense tableau on random general LPs: identical
// feasibility verdicts, objectives within 1e-6, and a primal-feasible
// sparse solution.
func TestSparseDifferentialGeneral(t *testing.T) {
	for trial := 0; trial < 120; trial++ {
		build := func() *Problem {
			return buildRandomLP(rand.New(rand.NewSource(int64(7000+trial))), 7, 9)
		}
		sd, errD, _ := solveWith(build, EngineDense)
		ss, errS, ps := solveWith(build, EngineSparse)
		if (errD == nil) != (errS == nil) {
			t.Fatalf("trial %d: dense err=%v sparse err=%v", trial, errD, errS)
		}
		if errD != nil {
			continue
		}
		if d := math.Abs(sd.Objective - ss.Objective); d > 1e-6*(1+math.Abs(sd.Objective)) {
			t.Errorf("trial %d: dense objective %g != sparse %g", trial, sd.Objective, ss.Objective)
		}
		if ok, row := feasible(ps, ss.Values(), 1e-6); !ok {
			t.Errorf("trial %d: sparse solution violates constraint %d", trial, row)
		}
	}
}

// TestSparseDifferentialRLP cross-checks the cores on offset-RLP-shaped
// problems, where the sparse core merges every θ row pair.
func TestSparseDifferentialRLP(t *testing.T) {
	for trial := 0; trial < 80; trial++ {
		build := func() *Problem {
			return buildRandomRLP(rand.New(rand.NewSource(int64(9000+trial))), 6, 8)
		}
		sd, errD, _ := solveWith(build, EngineDense)
		ss, errS, ps := solveWith(build, EngineSparse)
		if (errD == nil) != (errS == nil) {
			t.Fatalf("trial %d: dense err=%v sparse err=%v", trial, errD, errS)
		}
		if errD != nil {
			continue
		}
		if d := math.Abs(sd.Objective - ss.Objective); d > 1e-6*(1+math.Abs(sd.Objective)) {
			t.Errorf("trial %d: dense objective %g != sparse %g", trial, sd.Objective, ss.Objective)
		}
		if ok, row := feasible(ps, ss.Values(), 1e-6); !ok {
			t.Errorf("trial %d: sparse solution violates constraint %d", trial, row)
		}
	}
}

// TestSparseDifferentialWarm drives a KeepBasis sparse problem through
// cost-change rounds and checks every warm re-optimization against a
// cold dense solve of the identical problem.
func TestSparseDifferentialWarm(t *testing.T) {
	for trial := 0; trial < 40; trial++ {
		warm := buildRandomRLP(rand.New(rand.NewSource(int64(11000+trial))), 6, 8)
		warm.SetOptions(Options{Engine: EngineSparse})
		warm.KeepBasis()
		if _, err := warm.Solve(); err != nil {
			t.Fatalf("trial %d: cold sparse solve: %v", trial, err)
		}
		if warm.sws == nil {
			t.Fatalf("trial %d: sparse warm state not retained", trial)
		}
		rng := rand.New(rand.NewSource(int64(20000 + trial)))
		for round := 0; round < 4; round++ {
			cold := buildRandomRLP(rand.New(rand.NewSource(int64(11000+trial))), 6, 8)
			for v, free := range warm.free {
				if free {
					continue // θ variables carry the cost
				}
				c := float64(rng.Intn(4))
				warm.SetCost(VarID(v), c)
				cold.costs[v] = c
			}
			ws, errW := warm.WarmSolve()
			cs, errC := cold.Solve()
			if errW != nil || errC != nil {
				t.Fatalf("trial %d round %d: warm err=%v cold err=%v", trial, round, errW, errC)
			}
			if d := math.Abs(ws.Objective - cs.Objective); d > 1e-6*(1+math.Abs(cs.Objective)) {
				t.Errorf("trial %d round %d: warm sparse %g != cold dense %g", trial, round, ws.Objective, cs.Objective)
			}
		}
	}
}

// TestSparseThetaPairMerge pins the pair-merge bookkeeping on a known
// RLP: both θ pairs must collapse to one equality row each, and the
// solved offsets/θs must match the dense core exactly.
func TestSparseThetaPairMerge(t *testing.T) {
	build := func() *Problem {
		p := NewProblem()
		a := p.AddVariable("a", 0, true)
		b := p.AddVariable("b", 0, true)
		t1 := p.AddVariable("t1", 2, false)
		t2 := p.AddVariable("t2", 3, false)
		p.AddConstraint(map[VarID]float64{a: 1}, EQ, 0)
		p.AddConstraint(map[VarID]float64{t1: 1, a: 1, b: -1}, GE, -3)
		p.AddConstraint(map[VarID]float64{t1: 1, a: -1, b: 1}, GE, 3)
		p.AddConstraint(map[VarID]float64{t2: 1, b: 1}, GE, 0)
		p.AddConstraint(map[VarID]float64{t2: 1, b: -1}, GE, 0)
		return p
	}
	f := build().buildSparseForm(NewArena())
	if len(f.uvTheta) != 2 {
		t.Fatalf("merged %d θ pairs, want 2", len(f.uvTheta))
	}
	if f.m != 3 {
		t.Fatalf("form has %d rows, want 3 (anchor + 2 merged)", f.m)
	}
	sd, errD, _ := solveWith(build, EngineDense)
	ss, errS, _ := solveWith(build, EngineSparse)
	if errD != nil || errS != nil {
		t.Fatalf("dense err=%v sparse err=%v", errD, errS)
	}
	// With a = 0: t1 ≥ |b − 3|, t2 ≥ |b|, cost 2t1 + 3t2. On b ∈ [0,3]
	// the cost is 2(3−b) + 3b = 6 + b, so b = 0 wins with objective 6.
	if !almost(sd.Objective, 6) || !almost(ss.Objective, 6) {
		t.Fatalf("objectives dense=%g sparse=%g, want 6", sd.Objective, ss.Objective)
	}
	for v := VarID(0); v < 4; v++ {
		if !almost(sd.Value(v), ss.Value(v)) {
			t.Errorf("var %d: dense %g sparse %g", v, sd.Value(v), ss.Value(v))
		}
	}
}
