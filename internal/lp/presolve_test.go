package lp

import (
	"math"
	"math/rand"
	"testing"
)

func TestPresolveEliminatesChains(t *testing.T) {
	// x0 = 0, x1 = x0 + 5, x2 = x1 - 2; min θ ≥ |x2 - 1|.
	p := NewProblem()
	x0 := p.AddVariable("x0", 0, true)
	x1 := p.AddVariable("x1", 0, true)
	x2 := p.AddVariable("x2", 0, true)
	th := p.AddVariable("th", 1, false)
	p.AddConstraint(map[VarID]float64{x0: 1}, EQ, 0)
	p.AddConstraint(map[VarID]float64{x1: 1, x0: -1}, EQ, 5)
	p.AddConstraint(map[VarID]float64{x2: 1, x1: -1}, EQ, -2)
	p.AddConstraint(map[VarID]float64{th: 1, x2: -1}, GE, -1)
	p.AddConstraint(map[VarID]float64{th: 1, x2: 1}, GE, 1)
	ps := presolveEq(p)
	if ps.infeasible {
		t.Fatal("presolve infeasible")
	}
	if len(ps.order) != 3 {
		t.Errorf("eliminated %d vars, want 3", len(ps.order))
	}
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	// x2 = 3 fixed; θ = |3-1| = 2.
	if !almost(sol.Objective, 2) {
		t.Errorf("objective = %v, want 2", sol.Objective)
	}
	if !almost(sol.Value(x2), 3) {
		t.Errorf("x2 = %v, want 3", sol.Value(x2))
	}
}

func TestPresolveDetectsInconsistency(t *testing.T) {
	// x = 1 and x = 2 → infeasible, caught at presolve.
	p := NewProblem()
	x := p.AddVariable("x", 0, true)
	p.AddConstraint(map[VarID]float64{x: 1}, EQ, 1)
	p.AddConstraint(map[VarID]float64{x: 1}, EQ, 2)
	if _, err := p.Solve(); err != ErrInfeasible {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
}

func TestPresolveRedundantRows(t *testing.T) {
	// Duplicate equalities must be dropped, not declared inconsistent.
	p := NewProblem()
	x := p.AddVariable("x", 1, true)
	y := p.AddVariable("y", 1, true)
	p.AddConstraint(map[VarID]float64{x: 1, y: 1}, EQ, 4)
	p.AddConstraint(map[VarID]float64{x: 2, y: 2}, EQ, 8) // same row × 2
	p.AddConstraint(map[VarID]float64{x: 1, y: -1}, EQ, 0)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !almost(sol.Value(x), 2) || !almost(sol.Value(y), 2) {
		t.Errorf("x=%v y=%v, want 2, 2", sol.Value(x), sol.Value(y))
	}
}

func TestPresolveKeepsNonnegEqualities(t *testing.T) {
	// An equality over only nonnegative variables cannot be eliminated by
	// free-variable substitution; it must survive to the simplex.
	p := NewProblem()
	x := p.AddVariable("x", 1, false)
	y := p.AddVariable("y", 2, false)
	p.AddConstraint(map[VarID]float64{x: 1, y: 1}, EQ, 10)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !almost(sol.Objective, 10) { // all weight on the cheap variable
		t.Errorf("objective = %v, want 10", sol.Objective)
	}
}

// TestPresolveRandomEquivalence: solving with presolve (Solve) and
// without (solveRaw) gives the same optimum on random feasible LPs with
// equality chains.
func TestPresolveRandomEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 60; trial++ {
		p := NewProblem()
		n := 3 + rng.Intn(3)
		xs := make([]VarID, n)
		for i := range xs {
			xs[i] = p.AddVariable("x", 0, true)
		}
		// Chain: x0 = c, x_{i+1} = x_i + d_i.
		p.AddConstraint(map[VarID]float64{xs[0]: 1}, EQ, float64(rng.Intn(7)-3))
		for i := 0; i+1 < n; i++ {
			p.AddConstraint(map[VarID]float64{xs[i+1]: 1, xs[i]: -1}, EQ, float64(rng.Intn(9)-4))
		}
		// θ terms pulling the last variable toward random targets.
		for j := 0; j < 2; j++ {
			th := p.AddVariable("th", float64(1+rng.Intn(3)), false)
			tgt := float64(rng.Intn(11) - 5)
			p.AddConstraint(map[VarID]float64{th: 1, xs[n-1]: -1}, GE, -tgt)
			p.AddConstraint(map[VarID]float64{th: 1, xs[n-1]: 1}, GE, tgt)
		}
		withPre, err1 := p.Solve()
		raw, err2 := p.solveRaw()
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("trial %d: presolve err=%v raw err=%v", trial, err1, err2)
		}
		if err1 != nil {
			continue
		}
		if math.Abs(withPre.Objective-raw.Objective) > 1e-5 {
			t.Errorf("trial %d: presolve obj %v != raw obj %v", trial, withPre.Objective, raw.Objective)
		}
	}
}
