package align

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/adg"
)

// AxisStrideLegacy solves the §3 problem with the pre-interning solver:
// node configurations are tuples of structural ASLabels deduplicated by
// string keys, and every best-response sweep re-evaluates the full
// (node, config) cost table with structural label comparisons. It is
// retained solely as the measured baseline for BenchmarkAxisStride's
// speedup gate (and as an oracle: it must find a labeling no better than
// the production solver's). New code should call AxisStride.
func AxisStrideLegacy(g *adg.Graph) (*AxisStrideResult, error) {
	s := &inSolver{g: g, tab: newInternTable(), cands: make([][]int32, len(g.Ports))}
	if err := s.generateCandidates(); err != nil {
		return nil, err
	}
	ls := &legacySolver{g: g, s: s, wts: map[int]float64{}}
	for _, e := range g.Edges {
		ls.wts[e.ID] = e.ExpectedWeight()
	}
	ls.cfgs = make([][]legacyConfig, len(g.Nodes))
	for _, n := range g.Nodes {
		cfgs := ls.enumConfigs(n)
		if len(cfgs) == 0 {
			return nil, fmt.Errorf("align: no feasible axis/stride configuration for node %d (%s %q)", n.ID, n.Kind, n.Label)
		}
		ls.cfgs[n.ID] = cfgs
	}
	ls.optimize()
	res := &AxisStrideResult{Labels: map[int]ASLabel{}}
	for _, n := range g.Nodes {
		cfg := ls.best[n.ID]
		for i, p := range n.In {
			res.Labels[p.ID] = cfg.in[i]
		}
		for i, p := range n.Out {
			res.Labels[p.ID] = cfg.out[i]
		}
	}
	for _, e := range g.Edges {
		if !res.Labels[e.Src.ID].Equal(res.Labels[e.Dst.ID]) {
			res.Cost += e.TotalWeight()
			res.GeneralEdges = append(res.GeneralEdges, e)
		}
	}
	return res, nil
}

type legacySolver struct {
	g       *adg.Graph
	s       *inSolver // candidate sets (shared generation)
	cfgs    [][]legacyConfig
	best    []legacyConfig
	wts     map[int]float64
	scratch []ASLabel // candLabels fill buffer, reused across calls
}

type legacyConfig struct {
	in, out []ASLabel
}

// cands materializes a port's candidates into the solver's reusable
// scratch; safe because enumeration never holds two ports' candidate
// lists at once and labels are copied by value into configurations.
func (ls *legacySolver) cands(p *adg.Port) []ASLabel {
	ls.scratch = ls.s.candLabels(p, ls.scratch)
	return ls.scratch
}

// enumConfigs is the pre-interning enumeration: configurations are
// deduplicated by a string key rebuilt from every label.
func (ls *legacySolver) enumConfigs(n *adg.Node) []legacyConfig {
	var out []legacyConfig
	seen := map[string]bool{}
	push := func(cfg legacyConfig, ok bool) {
		if !ok {
			return
		}
		var b strings.Builder
		for _, l := range cfg.in {
			b.WriteString(l.Key() + "|")
		}
		for _, l := range cfg.out {
			b.WriteString(l.Key() + "|")
		}
		if !seen[b.String()] {
			seen[b.String()] = true
			out = append(out, cfg)
		}
	}
	switch n.Kind {
	case adg.KindSource, adg.KindSink:
		p := n.In
		if len(p) == 0 {
			p = n.Out
		}
		for _, l := range ls.cands(p[0]) {
			cfg := legacyConfig{}
			if len(n.In) > 0 {
				cfg.in = []ASLabel{l}
			} else {
				cfg.out = []ASLabel{l}
			}
			push(cfg, true)
		}
	case adg.KindOp, adg.KindMerge, adg.KindFanout, adg.KindBranch:
		rank := 0
		for _, p := range append(append([]*adg.Port{}, n.In...), n.Out...) {
			if p.Rank > rank {
				rank = p.Rank
			}
		}
		driver := n.Out[0]
		for _, l := range ls.cands(driver) {
			cfg := legacyConfig{}
			ok := true
			for _, p := range n.In {
				if p.Rank == rank {
					if !compatibleSpaces(l, p) {
						ok = false
						break
					}
					cfg.in = append(cfg.in, l)
				} else {
					cfg.in = append(cfg.in, identityLabel(p.Rank))
				}
			}
			if !ok {
				continue
			}
			for _, p := range n.Out {
				if p.Rank == rank {
					cfg.out = append(cfg.out, l)
				} else {
					cfg.out = append(cfg.out, identityLabel(p.Rank))
				}
			}
			push(cfg, true)
		}
	case adg.KindXform:
		if n.Xform.Kind == adg.XformExit {
			for _, l := range ls.cands(n.In[0]) {
				m, ok := xformOutLabel(l, n.Xform)
				if ok && compatibleSpaces(m, n.Out[0]) {
					push(legacyConfig{in: []ASLabel{l}, out: []ASLabel{m}}, true)
				}
			}
			break
		}
		for _, l := range ls.cands(n.Out[0]) {
			m, ok := xformInLabel(l, n.Xform)
			if ok && compatibleSpaces(m, n.In[0]) {
				push(legacyConfig{in: []ASLabel{m}, out: []ASLabel{l}}, true)
			}
		}
	case adg.KindTranspose:
		for _, l := range ls.cands(n.In[0]) {
			push(legacyConfig{in: []ASLabel{l}, out: []ASLabel{transposeLabel(l)}}, true)
		}
	case adg.KindSection:
		for _, l := range ls.cands(n.In[0]) {
			m, ok := sectionLabel(l, n.Section)
			push(legacyConfig{in: []ASLabel{l}, out: []ASLabel{m}}, ok)
		}
	case adg.KindSectionAssign:
		for _, l := range ls.cands(n.In[0]) {
			m, ok := sectionLabel(l, n.Section)
			push(legacyConfig{in: []ASLabel{l, m}, out: []ASLabel{l}}, ok)
		}
	case adg.KindSpread:
		for _, l := range ls.cands(n.In[0]) {
			m, ok := spreadLabel(l, n.SpreadDim, ls.g.TemplateRank)
			push(legacyConfig{in: []ASLabel{l}, out: []ASLabel{m}}, ok)
		}
	case adg.KindReduce:
		for _, l := range ls.cands(n.In[0]) {
			if n.ReduceDim == 0 {
				push(legacyConfig{in: []ASLabel{l}, out: []ASLabel{identityLabel(0)}}, true)
			} else {
				push(legacyConfig{in: []ASLabel{l}, out: []ASLabel{reduceLabel(l, n.ReduceDim)}}, true)
			}
		}
	case adg.KindGather:
		cfg := legacyConfig{}
		for _, p := range n.In {
			cfg.in = append(cfg.in, identityLabel(p.Rank))
		}
		for _, p := range n.Out {
			cfg.out = append(cfg.out, identityLabel(p.Rank))
		}
		push(cfg, true)
	}
	return out
}

// optimize is the pre-interning full-sweep schedule: two seeds, up to 12
// rounds of up to 60 sweeps, each sweep re-evaluating every (node,
// config) pair with structural label comparisons.
func (ls *legacySolver) optimize() {
	bestCost := -1.0
	var bestCfg []legacyConfig
	for seed := 0; seed < 2; seed++ {
		cur := make([]legacyConfig, len(ls.g.Nodes))
		for _, n := range ls.g.Nodes {
			idx := 0
			if seed == 1 {
				idx = len(ls.cfgs[n.ID]) - 1
			}
			cur[n.ID] = ls.cfgs[n.ID][idx]
		}
		for round := 0; round < 12; round++ {
			improved := false
			for sweep := 0; sweep < 60; sweep++ {
				swept := false
				order := ls.sweepOrder(sweep)
				for _, nid := range order {
					n := ls.g.Nodes[nid]
					curCost := ls.nodeCost(n, cur[nid], cur)
					for _, cfg := range ls.cfgs[nid] {
						c := ls.nodeCost(n, cfg, cur)
						if c < curCost {
							cur[nid] = cfg
							curCost = c
							swept = true
						}
					}
				}
				if !swept {
					break
				}
				improved = true
			}
			if ls.expansionPass(cur) {
				improved = true
			}
			if !improved {
				break
			}
		}
		total := ls.totalCost(cur)
		if bestCost < 0 || total < bestCost {
			bestCost = total
			bestCfg = append([]legacyConfig{}, cur...)
		}
	}
	ls.best = bestCfg
}

func (ls *legacySolver) expansionPass(cur []legacyConfig) bool {
	improvedAny := false
	base := ls.totalCost(cur)
	for _, n := range ls.g.Nodes {
		for _, cfg := range ls.cfgs[n.ID] {
			if legacyConfigEqual(cfg, cur[n.ID]) {
				continue
			}
			trial := append([]legacyConfig{}, cur...)
			trial[n.ID] = cfg
			visited := make([]bool, len(ls.g.Nodes))
			visited[n.ID] = true
			queue := []*adg.Node{n}
			for len(queue) > 0 {
				u := queue[0]
				queue = queue[1:]
				for _, p := range append(append([]*adg.Port{}, u.In...), u.Out...) {
					peer := p.Edge.Src
					if peer.Node == u {
						peer = p.Edge.Dst
					}
					v := peer.Node
					if visited[v.ID] {
						continue
					}
					want := ls.labelOf(p, trial)
					if ls.labelOf(peer, trial).Equal(want) {
						continue
					}
					for _, vc := range ls.cfgs[v.ID] {
						var l ASLabel
						if peer.Output {
							l = vc.out[peer.Index]
						} else {
							l = vc.in[peer.Index]
						}
						if l.Equal(want) {
							trial[v.ID] = vc
							visited[v.ID] = true
							queue = append(queue, v)
							break
						}
					}
				}
			}
			if c := ls.totalCost(trial); c < base {
				copy(cur, trial)
				base = c
				improvedAny = true
			}
		}
	}
	return improvedAny
}

func legacyConfigEqual(a, b legacyConfig) bool {
	for i := range a.in {
		if !a.in[i].Equal(b.in[i]) {
			return false
		}
	}
	for i := range a.out {
		if !a.out[i].Equal(b.out[i]) {
			return false
		}
	}
	return true
}

func (ls *legacySolver) sweepOrder(sweep int) []int {
	order := make([]int, len(ls.g.Nodes))
	for i := range order {
		order[i] = i
	}
	if sweep%2 == 1 {
		sort.Sort(sort.Reverse(sort.IntSlice(order)))
	}
	return order
}

func (ls *legacySolver) nodeCost(n *adg.Node, cfg legacyConfig, cur []legacyConfig) float64 {
	var c float64
	for i, p := range n.In {
		e := p.Edge
		pl := ls.labelOf(e.Src, cur)
		if !pl.Equal(cfg.in[i]) {
			c += ls.wts[e.ID]
		}
	}
	for i, p := range n.Out {
		e := p.Edge
		pl := ls.labelOf(e.Dst, cur)
		if !pl.Equal(cfg.out[i]) {
			c += ls.wts[e.ID]
		}
	}
	return c
}

func (ls *legacySolver) labelOf(p *adg.Port, cur []legacyConfig) ASLabel {
	cfg := cur[p.Node.ID]
	if p.Output {
		return cfg.out[p.Index]
	}
	return cfg.in[p.Index]
}

func (ls *legacySolver) totalCost(cur []legacyConfig) float64 {
	var c float64
	for _, e := range ls.g.Edges {
		if !ls.labelOf(e.Src, cur).Equal(ls.labelOf(e.Dst, cur)) {
			c += ls.wts[e.ID]
		}
	}
	return c
}
