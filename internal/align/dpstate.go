package align

import (
	"context"
	"math"
)

// This file holds the flat, pooled state of the §3 solver: a dpScratch
// arena that carves every per-solve and per-start array from three flat
// blocks (int32 / float64 / uint64) by offset, WFA-style, and the
// dpState that replaces the old per-start slice construction. See
// DESIGN.md, "Flat DP/LP state and pooling".

// dpScratch is the recyclable backing store of one axis/stride solve.
// All solver-lifetime arrays (candidate sets, configuration rows,
// incidence, evaluation tables) and all per-start dpState arrays are
// carved from its blocks by offset, exactly like lp.Arena.floats/ints:
// growth abandons the old block (outstanding slices stay valid) and
// doubles, so a steady-state workload allocates nothing. A dpScratch is
// owned by one solve at a time and recycled through scratchPool
// alongside the intern tables; it is not safe for concurrent use except
// that distinct already-carved regions may be written by different
// goroutines (the multi-start states are carved sequentially before the
// starts fan out).
type dpScratch struct {
	i32  []int32
	i32n int
	f64  []float64
	f64n int
	u64  []uint64
	u64n int

	// Append-grown buffers reused across solves (reset to length zero,
	// capacity retained).
	cfgBuf []int32   // all nodes' configuration rows, CSR by cfgOff/cfgW
	inc    []incEdge // all nodes' incident edges, CSR by incOff
	states []dpState // multi-start state slab
	rowBuf []int32   // one configuration row under construction

	solver asSolver // the solve's solver header, embedded to avoid a per-solve alloc
	mark   axisMark // epoch-stamped used-axis scratch for label derivations
}

func newDPScratch() *dpScratch { return &dpScratch{} }

// reset rewinds the arena and empties the append-grown buffers so the
// next solve carves from the start. Callers must be done with every
// previously carved slice.
func (d *dpScratch) reset() {
	d.i32n, d.f64n, d.u64n = 0, 0, 0
	d.cfgBuf = d.cfgBuf[:0]
	d.inc = d.inc[:0]
	d.states = d.states[:0]
}

// int32s carves a zeroed []int32 of length n.
func (d *dpScratch) int32s(n int) []int32 {
	if d.i32n+n > len(d.i32) {
		sz := 2 * len(d.i32)
		if sz < n {
			sz = n
		}
		if sz < 1024 {
			sz = 1024
		}
		d.i32 = make([]int32, sz)
		d.i32n = 0
	}
	s := d.i32[d.i32n : d.i32n+n : d.i32n+n]
	d.i32n += n
	for j := range s {
		s[j] = 0
	}
	return s
}

// floats carves a zeroed []float64 of length n.
func (d *dpScratch) floats(n int) []float64 {
	if d.f64n+n > len(d.f64) {
		sz := 2 * len(d.f64)
		if sz < n {
			sz = n
		}
		if sz < 256 {
			sz = 256
		}
		d.f64 = make([]float64, sz)
		d.f64n = 0
	}
	s := d.f64[d.f64n : d.f64n+n : d.f64n+n]
	d.f64n += n
	for j := range s {
		s[j] = 0
	}
	return s
}

// words carves a zeroed []uint64 of length n (dirty bitsets and packed
// best-response words).
func (d *dpScratch) words(n int) []uint64 {
	if d.u64n+n > len(d.u64) {
		sz := 2 * len(d.u64)
		if sz < n {
			sz = n
		}
		if sz < 128 {
			sz = 128
		}
		d.u64 = make([]uint64, sz)
		d.u64n = 0
	}
	s := d.u64[d.u64n : d.u64n+n : d.u64n+n]
	d.u64n += n
	for j := range s {
		s[j] = 0
	}
	return s
}

// axisMark is an epoch-stamped membership set over small nonnegative
// axis indices, replacing the per-call map[int]bool scratch of the label
// derivation helpers. begin opens a new generation; used/mark test and
// insert without clearing (a stamp from an older generation reads as
// absent).
type axisMark struct {
	stamp []int32
	cur   int32
}

func (m *axisMark) begin(sizeHint int) {
	if n := sizeHint - len(m.stamp); n > 0 {
		m.stamp = append(m.stamp, make([]int32, n)...)
	}
	if m.cur == math.MaxInt32 {
		for i := range m.stamp {
			m.stamp[i] = 0
		}
		m.cur = 0
	}
	m.cur++
}

func (m *axisMark) used(a int) bool { return a < len(m.stamp) && m.stamp[a] == m.cur }

func (m *axisMark) mark(a int) {
	if a >= len(m.stamp) {
		m.stamp = append(m.stamp, make([]int32, a+1-len(m.stamp))...)
	}
	m.stamp[a] = m.cur
}

// respMoveBits is the width of the move payload packed into the low
// mantissa bits of a best-response cost word: resp[n] holds the node's
// best incident cost with its low 12 bits replaced by the best config
// index (always < maxCandidates ≤ 4096). The cost payload is therefore
// approximate, but the one exact read — the zero test resp>>12 == 0 —
// is sound: incident costs are sums of nonnegative edge weights, so the
// cost is either exactly +0 (all high bits zero) or at least the
// smallest positive weight, which is astronomically larger than the
// 2^-1010-scale perturbation the truncation could represent. A resp
// word is meaningful only while its node's dirty bit is clear.
const respMoveBits = 12

const respMoveMask = (1 << respMoveBits) - 1

func packResp(cost float64, move int) uint64 {
	return math.Float64bits(cost)&^uint64(respMoveMask) | uint64(move)
}

// dpState is the mutable state of one optimization start, every array
// carved from the solve's dpScratch: the current configuration choice
// per node, the derived per-port label IDs, dirty flags as a bitset,
// packed best-response words, and the epoch-stamped expansion scratch.
// All starts' states are carved up front so the multi-start fan-out
// writes disjoint regions of the shared blocks.
type dpState struct {
	s    *asSolver
	seed int32

	cfg   []int32  // per node: config index
	lab   []int32  // per port: label ID under cfg
	dirty []uint64 // per node: needs re-evaluation (bitset)
	resp  []uint64 // per node: packed best-response word (valid while clean)

	trialCfg  []int32
	trialLab  []int32
	nodeEpoch []int32
	edgeEpoch []int32
	epoch     int32
	changed   []int32
	queue     []int32

	costs  []float64 // per-config incident costs of the node being evaluated
	cost   float64
	pruned bool
	stats  DPStats
}

// carveState carves all of st's arrays from the solver's scratch. Must
// run before the multi-start fan-out (carving mutates the arena
// cursors).
func (s *asSolver) carveState(st *dpState) {
	scr := s.scr
	nN, nP, nE := len(s.g.Nodes), len(s.g.Ports), len(s.g.Edges)
	st.s = s
	st.cfg = scr.int32s(nN)
	st.lab = scr.int32s(nP)
	st.trialCfg = scr.int32s(nN)
	st.trialLab = scr.int32s(nP)
	st.nodeEpoch = scr.int32s(nN)
	st.edgeEpoch = scr.int32s(nE)
	st.dirty = scr.words((nN + 63) / 64)
	st.resp = scr.words(nN)
	st.changed = scr.int32s(nN)[:0]
	st.queue = scr.int32s(nN)[:0]
	st.costs = scr.floats(s.maxCfg)
	st.epoch = 0
	st.cost = 0
	st.pruned = false
	st.stats = DPStats{}
}

func (st *dpState) markDirty(nid int32) { st.dirty[nid>>6] |= 1 << (uint(nid) & 63) }

func (st *dpState) isDirty(nid int) bool { return st.dirty[nid>>6]>>(uint(nid)&63)&1 != 0 }

// init seeds the start: seed 0 = all-first configurations, seed 1 =
// all-last, others perturbed deterministically.
func (st *dpState) init(seed int) {
	s := st.s
	st.seed = int32(seed)
	st.stats = DPStats{Starts: 1}
	st.cost = 0
	st.pruned = false
	for nid := range s.g.Nodes {
		var ci int32
		switch {
		case seed == 0:
			ci = 0
		case seed == 1:
			ci = s.cfgCnt[nid] - 1
		default:
			ci = int32(perturbIndex(seed, nid, int(s.cfgCnt[nid])))
		}
		st.cfg[nid] = ci
		st.applyLabels(nid, ci, st.lab)
		st.markDirty(int32(nid))
	}
	st.cost = s.totalCost(st.lab)
}

func (st *dpState) applyLabels(nid int, ci int32, lab []int32) {
	s := st.s
	row := s.cfgRow(nid, ci)
	ports := s.nodePorts[s.portOff[nid]:s.portOff[nid+1]]
	for i, pid := range ports {
		lab[pid] = row[i]
	}
}

// evalNode fills costs[c] with the incident cost of every configuration
// c of nid under the current neighbor labels. The evaluation is
// transposed — incident slots outer, configurations inner — over the
// solver's precomputed evaluation table, so each slot's weight is added
// to each costs[c] in the same slot order the per-config scan used,
// keeping every float sum bit-identical to the one-config-at-a-time
// evaluation.
func (st *dpState) evalNode(nid int, costs []float64) {
	s := st.s
	C := len(costs)
	base := int(s.evalOff[nid])
	for i := range costs {
		costs[i] = 0
	}
	incs := s.inc[s.incOff[nid]:s.incOff[nid+1]]
	for k := range incs {
		ie := &incs[k]
		row := s.evalBuf[base+k*C : base+(k+1)*C]
		w := ie.w
		if ie.selfLoop {
			for c, v := range row {
				if v != 0 {
					costs[c] += w
				}
			}
		} else {
			pl := st.lab[ie.peer]
			for c, v := range row {
				if v != pl {
					costs[c] += w
				}
			}
		}
	}
}

// incCost is the incident cost of one configuration of nid (same slot
// order as evalNode).
func (st *dpState) incCost(nid int, ci int32) float64 {
	s := st.s
	C := int(s.cfgCnt[nid])
	base := int(s.evalOff[nid])
	var c float64
	incs := s.inc[s.incOff[nid]:s.incOff[nid+1]]
	for k := range incs {
		ie := &incs[k]
		v := s.evalBuf[base+k*C+int(ci)]
		if ie.selfLoop {
			if v != 0 {
				c += ie.w
			}
		} else if v != st.lab[ie.peer] {
			c += ie.w
		}
	}
	return c
}

// sweepOnce runs one best-response sweep over the dirty nodes in
// deterministic order (forward on even sweeps, backward on odd ones). A
// move updates the node's port labels and the running total cost by the
// incident-cost delta, and marks the node's neighbors dirty. Every
// evaluated node's best response is packed into its resp word. Returns
// whether any move was made.
func (st *dpState) sweepOnce(sweep int) bool {
	s := st.s
	moved := false
	nn := len(s.g.Nodes)
	for k := 0; k < nn; k++ {
		nid := k
		if sweep%2 == 1 {
			nid = nn - 1 - k
		}
		w := nid >> 6
		bit := uint64(1) << (uint(nid) & 63)
		if st.dirty[w]&bit == 0 {
			continue
		}
		st.dirty[w] &^= bit
		C := int(s.cfgCnt[nid])
		cur := int(st.cfg[nid])
		costs := st.costs[:C]
		st.evalNode(nid, costs)
		curCost := costs[cur]
		bestIdx, bestCost := cur, curCost
		for ci := 0; ci < C; ci++ {
			if ci == cur {
				continue
			}
			if c := costs[ci]; c < bestCost {
				bestIdx, bestCost = ci, c
			}
		}
		st.stats.Evals += int64(C)
		st.resp[nid] = packResp(bestCost, bestIdx)
		if bestIdx == cur {
			continue
		}
		st.cfg[nid] = int32(bestIdx)
		st.applyLabels(nid, int32(bestIdx), st.lab)
		st.cost += bestCost - curCost
		st.stats.Moves++
		moved = true
		incs := s.inc[s.incOff[nid]:s.incOff[nid+1]]
		for j := range incs {
			if !incs[j].selfLoop {
				st.markDirty(incs[j].peerNode)
			}
		}
	}
	return moved
}

// run drives one start to a local optimum: best-response sweeps to
// quiescence, then expansion passes, iterated while either improves.
// Zero cost is a global lower bound (weights are nonnegative), so a
// start that reaches it stops immediately. A done context stops the
// start between sweeps and rounds. pruneAt is the adaptive multi-start
// cutoff: a start whose incumbent cost still exceeds it after a sweep
// or an expansion pass is abandoned (pruned); +Inf disables pruning.
func (st *dpState) run(ctx context.Context, pruneAt float64) {
	canceled := func() bool { return ctx != nil && ctx.Err() != nil }
	prune := func() bool {
		if st.cost > pruneAt {
			st.pruned = true
			st.stats.PrunedStarts = 1
			return true
		}
		return false
	}
	for round := 0; round < 12; round++ {
		improved := false
		for sweep := 0; sweep < 60; sweep++ {
			if canceled() {
				return
			}
			st.stats.Sweeps++
			if !st.sweepOnce(sweep) {
				break
			}
			improved = true
			if prune() {
				return
			}
		}
		if st.cost == 0 || canceled() {
			return
		}
		if st.expansionPass() {
			improved = true
		}
		if prune() {
			return
		}
		if !improved || st.cost == 0 {
			break
		}
	}
}

// expansionPass tries, for every node and every alternative
// configuration, to re-label the node and greedily propagate matching
// configurations across its incident edges (a wavefront that keeps
// propagated edges at zero cost); the whole move is accepted if it
// lowers the total cost. trialCfg/trialLab mirror cfg/lab between
// trials, epoch stamps replace per-trial clearing, and the cost change
// is a delta over only the wavefront's incident edges. Nodes whose
// incident cost is already zero cannot seed an improvement; for clean
// nodes that test reads the packed resp word instead of re-evaluating.
func (st *dpState) expansionPass() bool {
	s := st.s
	improvedAny := false
	copy(st.trialCfg, st.cfg)
	copy(st.trialLab, st.lab)
	nn := len(s.g.Nodes)
	nLabels := int(s.nLabels)
	for nid := 0; nid < nn; nid++ {
		if !st.isDirty(nid) {
			if st.resp[nid]>>respMoveBits == 0 {
				continue
			}
		} else if st.incCost(nid, st.cfg[nid]) == 0 {
			continue
		}
		C := int(s.cfgCnt[nid])
		for ci := 0; ci < C; ci++ {
			if int32(ci) == st.cfg[nid] {
				continue
			}
			st.epoch++
			st.changed = st.changed[:0]
			st.trialCfg[nid] = int32(ci)
			st.applyLabels(nid, int32(ci), st.trialLab)
			st.nodeEpoch[nid] = st.epoch
			st.changed = append(st.changed, int32(nid))
			st.queue = append(st.queue[:0], int32(nid))
			for qi := 0; qi < len(st.queue); qi++ {
				uid := int(st.queue[qi])
				urow := s.cfgRow(uid, st.trialCfg[uid])
				incs := s.inc[s.incOff[uid]:s.incOff[uid+1]]
				for j := range incs {
					ie := &incs[j]
					if ie.selfLoop {
						continue
					}
					vid := int(ie.peerNode)
					if st.nodeEpoch[vid] == st.epoch {
						continue
					}
					want := urow[ie.selfPos]
					if st.trialLab[ie.peer] == want {
						continue
					}
					// First config of v matching `want` at the peer port,
					// via the (port, label) → config match table.
					if mv := s.matchBuf[int(ie.peer)*nLabels+int(want)]; mv != 0 {
						vci := mv - 1
						st.trialCfg[vid] = vci
						st.applyLabels(vid, vci, st.trialLab)
						st.nodeEpoch[vid] = st.epoch
						st.changed = append(st.changed, int32(vid))
						st.queue = append(st.queue, int32(vid))
					}
				}
			}
			// Delta over edges incident to the wavefront; every other
			// edge has both endpoints unchanged.
			var delta float64
			for _, uidv := range st.changed {
				incs := s.inc[s.incOff[uidv]:s.incOff[uidv+1]]
				for j := range incs {
					ie := &incs[j]
					if st.edgeEpoch[ie.eid] == st.epoch {
						continue
					}
					st.edgeEpoch[ie.eid] = st.epoch
					a, b := s.ends[2*ie.eid], s.ends[2*ie.eid+1]
					if (st.lab[a] != st.lab[b]) != (st.trialLab[a] != st.trialLab[b]) {
						if st.trialLab[a] != st.trialLab[b] {
							delta += ie.w
						} else {
							delta -= ie.w
						}
					}
				}
			}
			if delta < 0 {
				// Commit: fold the wavefront into cfg/lab and mark the
				// changed nodes and their neighbors for re-evaluation.
				for _, uidv := range st.changed {
					uid := int(uidv)
					st.cfg[uid] = st.trialCfg[uid]
					st.applyLabels(uid, st.trialCfg[uid], st.lab)
					st.markDirty(uidv)
					incs := s.inc[s.incOff[uid]:s.incOff[uid+1]]
					for j := range incs {
						if !incs[j].selfLoop {
							st.markDirty(incs[j].peerNode)
						}
					}
				}
				st.cost += delta
				st.stats.ExpansionAccepts++
				improvedAny = true
			} else {
				// Undo: restore the mirror from the committed state.
				for _, uidv := range st.changed {
					uid := int(uidv)
					st.trialCfg[uid] = st.cfg[uid]
					st.applyLabels(uid, st.cfg[uid], st.trialLab)
				}
			}
		}
	}
	return improvedAny
}
