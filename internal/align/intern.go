package align

import (
	"strconv"

	"repro/internal/expr"
)

// internTable assigns dense int32 IDs to the distinct ASLabels seen
// during one axis/stride solve, so that every equality test downstream of
// candidate generation — config dedup in enumConfigs, best-response cost
// evaluation, expansion wavefront matching — is a single integer compare
// instead of a structural (or string-key) comparison. The table is
// per-solve: IDs are meaningless across solves.
//
// A canonical byte key is built once per intern call into a reusable
// buffer; the map lookup uses the compiler's zero-copy string(buf)
// optimization, so interning a label already in the table allocates
// nothing. Only genuinely new labels materialize a key string. Interning
// happens only during candidate generation and config enumeration; the
// optimize loop never touches the table.
type internTable struct {
	ids    map[string]int32
	labels []ASLabel
	buf    []byte
}

func newInternTable() *internTable {
	return &internTable{ids: make(map[string]int32, 64)}
}

// reset empties the table for reuse by a new solve (the batch engine
// pools tables across solves). The labels backing array is retained and
// overwritten slot by slot; ASLabel values previously copied out of the
// table stay valid because their AxisMap/Stride contents are never
// mutated, only the table's own slots are.
func (t *internTable) reset() {
	clear(t.ids)
	t.labels = t.labels[:0]
}

// intern returns the dense ID of l, assigning the next free ID if l has
// not been seen before.
func (t *internTable) intern(l ASLabel) int32 {
	t.buf = appendLabelKey(t.buf[:0], l)
	if id, ok := t.ids[string(t.buf)]; ok {
		return id
	}
	id := int32(len(t.labels))
	t.ids[string(t.buf)] = id
	t.labels = append(t.labels, l)
	return id
}

// label returns the label for a previously interned ID.
func (t *internTable) label(id int32) ASLabel { return t.labels[id] }

// size returns the number of distinct labels interned.
func (t *internTable) size() int { return len(t.labels) }

// appendLabelKey appends a canonical encoding of l to dst: per dimension,
// the template axis followed by the stride's constant part and sorted
// (coef, var) terms. Affine terms are kept sorted by variable name, so
// equal labels always encode to equal keys.
func appendLabelKey(dst []byte, l ASLabel) []byte {
	for d := range l.AxisMap {
		dst = strconv.AppendInt(dst, int64(l.AxisMap[d]), 10)
		dst = append(dst, ':')
		st := l.Stride[d]
		dst = strconv.AppendInt(dst, st.ConstPart(), 10)
		st.EachTerm(func(tm expr.Term) bool {
			dst = append(dst, '+')
			dst = strconv.AppendInt(dst, tm.Coef, 10)
			dst = append(dst, tm.Var...)
			return true
		})
		dst = append(dst, ';')
	}
	return dst
}
