package align

import (
	"context"
	"runtime"
	"sync"
)

// Scheduler is the cooperative worker-budget owner of the batch
// alignment engine. It fixes one global budget of workers and leases
// them to in-flight solves, so batch-level concurrency composes with
// solver-level concurrency instead of multiplying it: a 64-program
// batch on an 8-worker scheduler runs 8 single-threaded solves at a
// time, not 64 solves × 8 solver goroutines each. When a batch has
// fewer programs than workers, each solve is leased a proportionally
// larger share and spends it on its internal parallelism (per-axis
// offset RLPs, DP multi-starts).
//
// A Scheduler also owns the scratch pools (intern tables, simplex
// tableau arenas) its solves recycle, so steady-state batch throughput
// allocates near zero. One Scheduler may be shared by any number of
// concurrent batches — leases are acquired from the common budget — and
// is safe for concurrent use.
type Scheduler struct {
	budget  int
	scratch scratchPool

	mu      sync.Mutex
	cond    *sync.Cond
	avail   int
	waiting int // acquire calls currently blocked on budget
}

// NewScheduler returns a scheduler with a budget of workers
// (GOMAXPROCS if workers <= 0).
func NewScheduler(workers int) *Scheduler {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	s := &Scheduler{budget: workers, avail: workers}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Workers returns the scheduler's global worker budget.
func (s *Scheduler) Workers() int { return s.budget }

// SchedulerStats is a point-in-time snapshot of the scheduler's budget
// occupancy, exported for serving-layer observability (queue depth and
// in-flight lease gauges).
type SchedulerStats struct {
	// Budget is the total worker budget.
	Budget int
	// Available is how many workers are currently unleased.
	Available int
	// Leased is Budget - Available: workers held by in-flight solves.
	Leased int
	// Waiting is how many acquire calls are blocked on budget — the
	// scheduler's queue depth.
	Waiting int
}

// Stats returns a consistent snapshot of the scheduler's occupancy.
func (s *Scheduler) Stats() SchedulerStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return SchedulerStats{
		Budget:    s.budget,
		Available: s.avail,
		Leased:    s.budget - s.avail,
		Waiting:   s.waiting,
	}
}

// Acquire claims n workers from the budget (clamped to [1, Workers]),
// blocking until they are available or ctx dies, and returns a release
// closure that must be called exactly once to return them. Acquisition
// is all-or-nothing, like every lease of this scheduler. It is the
// admission point for callers that manage their own per-job dispatch
// (the serving layer leases one worker per admitted program slot and
// runs the solve with AlignLeasedContext under that lease).
func (s *Scheduler) Acquire(ctx context.Context, n int) (release func(), err error) {
	if n < 1 {
		n = 1
	}
	if n > s.budget {
		n = s.budget
	}
	if err := s.acquireCtx(ctx, n); err != nil {
		return nil, err
	}
	var once sync.Once
	return func() { once.Do(func() { s.release(n) }) }, nil
}

// lease is the worker share granted to each of n jobs: budget/n when
// the batch is narrower than the budget (leftover workers boost
// per-solve parallelism), otherwise 1 (maximize solve-level
// concurrency). Every lease divides the budget, so admitted solves
// always pack it exactly.
func (s *Scheduler) lease(n int) int {
	if n <= 0 || n >= s.budget {
		return 1
	}
	return s.budget / n
}

// acquire blocks until n workers are available, then claims them.
// Acquisition is all-or-nothing, so concurrent batches with different
// lease sizes never deadlock on partially claimed budgets.
func (s *Scheduler) acquire(n int) {
	s.mu.Lock()
	for s.avail < n {
		s.waiting++
		s.cond.Wait()
		s.waiting--
	}
	s.avail -= n
	s.mu.Unlock()
}

// acquireCtx is acquire that gives up when ctx dies while waiting for
// budget, returning ctx.Err() without claiming anything. A watcher
// broadcasts the condition variable on cancellation so a blocked
// waiter re-checks the context instead of sleeping forever.
func (s *Scheduler) acquireCtx(ctx context.Context, n int) error {
	if ctx == nil || ctx.Done() == nil {
		s.acquire(n)
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	stop := context.AfterFunc(ctx, func() {
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
	})
	defer stop()
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.avail < n {
		if err := ctx.Err(); err != nil {
			return err
		}
		s.waiting++
		s.cond.Wait()
		s.waiting--
	}
	s.avail -= n
	return nil
}

// runJob runs one job under its lease with the release deferred, so a
// panicking job returns its workers to the budget before the panic
// propagates — a shared scheduler's budget never shrinks.
func (s *Scheduler) runJob(i, lease int, job func(i, lease int)) {
	defer s.release(lease)
	job(i, lease)
}

// release returns n workers to the budget.
func (s *Scheduler) release(n int) {
	s.mu.Lock()
	s.avail += n
	s.cond.Broadcast()
	s.mu.Unlock()
}

// Map runs job(i, lease) for every i in [0, n), each holding a lease of
// workers acquired from the budget for the duration of the call. Jobs
// are dispatched in index order onto at most budget/lease runner
// goroutines; each job's lease is the parallelism it may spend
// internally. Map returns when every job has finished. Result ordering
// is the caller's: jobs write to their own index, so the output order
// is the input order regardless of completion order.
func (s *Scheduler) Map(n int, job func(i, lease int)) {
	s.MapContext(context.Background(), n, job)
}

// MapContext is Map under a context: once ctx dies, no further job is
// dispatched (jobs already running finish on their own — they observe
// the same context through their own plumbing) and MapContext returns
// ctx.Err(); indices never dispatched simply see no job call, so the
// caller can mark their slots from the returned error. Lease release
// is deferred around every job, so a panicking job returns its workers
// to the budget before the panic propagates. MapContext itself never
// blocks on budget after cancellation: waiters inside acquire give up
// when ctx dies.
func (s *Scheduler) MapContext(ctx context.Context, n int, job func(i, lease int)) error {
	if n <= 0 {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	lease := s.lease(n)
	runners := s.budget / lease
	if runners > n {
		runners = n
	}
	if runners <= 1 {
		for i := 0; i < n; i++ {
			if err := s.acquireCtx(ctx, lease); err != nil {
				return err
			}
			s.runJob(i, lease, job)
		}
		return ctx.Err()
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for r := 0; r < runners; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if s.acquireCtx(ctx, lease) != nil {
					return // canceled while waiting for budget
				}
				s.runJob(i, lease, job)
			}
		}()
	}
	done := ctx.Done()
dispatch:
	for i := 0; i < n; i++ {
		select {
		case next <- i:
		case <-done:
			break dispatch
		}
	}
	close(next)
	wg.Wait()
	return ctx.Err()
}
