package align

import (
	"runtime"
	"sync"
)

// Scheduler is the cooperative worker-budget owner of the batch
// alignment engine. It fixes one global budget of workers and leases
// them to in-flight solves, so batch-level concurrency composes with
// solver-level concurrency instead of multiplying it: a 64-program
// batch on an 8-worker scheduler runs 8 single-threaded solves at a
// time, not 64 solves × 8 solver goroutines each. When a batch has
// fewer programs than workers, each solve is leased a proportionally
// larger share and spends it on its internal parallelism (per-axis
// offset RLPs, DP multi-starts).
//
// A Scheduler also owns the scratch pools (intern tables, simplex
// tableau arenas) its solves recycle, so steady-state batch throughput
// allocates near zero. One Scheduler may be shared by any number of
// concurrent batches — leases are acquired from the common budget — and
// is safe for concurrent use.
type Scheduler struct {
	budget  int
	scratch scratchPool

	mu    sync.Mutex
	cond  *sync.Cond
	avail int
}

// NewScheduler returns a scheduler with a budget of workers
// (GOMAXPROCS if workers <= 0).
func NewScheduler(workers int) *Scheduler {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	s := &Scheduler{budget: workers, avail: workers}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Workers returns the scheduler's global worker budget.
func (s *Scheduler) Workers() int { return s.budget }

// lease is the worker share granted to each of n jobs: budget/n when
// the batch is narrower than the budget (leftover workers boost
// per-solve parallelism), otherwise 1 (maximize solve-level
// concurrency). Every lease divides the budget, so admitted solves
// always pack it exactly.
func (s *Scheduler) lease(n int) int {
	if n <= 0 || n >= s.budget {
		return 1
	}
	return s.budget / n
}

// acquire blocks until n workers are available, then claims them.
// Acquisition is all-or-nothing, so concurrent batches with different
// lease sizes never deadlock on partially claimed budgets.
func (s *Scheduler) acquire(n int) {
	s.mu.Lock()
	for s.avail < n {
		s.cond.Wait()
	}
	s.avail -= n
	s.mu.Unlock()
}

// release returns n workers to the budget.
func (s *Scheduler) release(n int) {
	s.mu.Lock()
	s.avail += n
	s.cond.Broadcast()
	s.mu.Unlock()
}

// Map runs job(i, lease) for every i in [0, n), each holding a lease of
// workers acquired from the budget for the duration of the call. Jobs
// are dispatched in index order onto at most budget/lease runner
// goroutines; each job's lease is the parallelism it may spend
// internally. Map returns when every job has finished. Result ordering
// is the caller's: jobs write to their own index, so the output order
// is the input order regardless of completion order.
func (s *Scheduler) Map(n int, job func(i, lease int)) {
	if n <= 0 {
		return
	}
	lease := s.lease(n)
	runners := s.budget / lease
	if runners > n {
		runners = n
	}
	if runners <= 1 {
		for i := 0; i < n; i++ {
			s.acquire(lease)
			job(i, lease)
			s.release(lease)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for r := 0; r < runners; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				s.acquire(lease)
				job(i, lease)
				s.release(lease)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}
