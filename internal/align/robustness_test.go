package align

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/adg"
)

// panicSrc is a well-formed program whose alignment panics in the cost
// machinery: the inner loop's symbolic bounds with a non-dividing step
// defeat the closed-form communication-volume sum (adg.sumLevel), which
// panics rather than guess. Parsing and graph construction succeed, so
// the panic fires mid-solve — exactly the shape the per-slot recover
// boundary exists for.
const panicSrc = `real A(100)
do i = 1, 10
  do k = i, i+9, 2
    A(k:k+1) = A(k:k+1) * 2
  enddo
enddo
`

// TestCacheDoPanicCleanup pins satellite 1: a leader whose compute
// panics must still clean up its flight (deferred) so future callers
// for the key compute fresh instead of blocking forever, and a waiter
// joined to the doomed flight gets an error, not a hang.
func TestCacheDoPanicCleanup(t *testing.T) {
	c := NewCache(8)
	ctx := context.Background()

	entered := make(chan struct{})
	type outcome struct {
		owned bool
		err   error
	}
	waiter := make(chan outcome, 1)
	go func() {
		<-entered
		_, owned, err := c.do(ctx, "doomed", func() (*Result, error) {
			// Legitimate if this waiter arrived only after the panicked
			// flight was cleaned up: it leads a fresh flight.
			return &Result{}, nil
		})
		waiter <- outcome{owned, err}
	}()

	func() {
		defer func() {
			if recover() == nil {
				t.Error("leader's panic was swallowed by Cache.do")
			}
		}()
		c.do(ctx, "doomed", func() (*Result, error) {
			close(entered)
			time.Sleep(50 * time.Millisecond) // let the waiter join the flight
			panic("compute exploded")
		})
	}()

	select {
	case o := <-waiter:
		// Joined the doomed flight → synthesized error; or arrived after
		// cleanup → led its own successful flight. Both prove no hang.
		if o.err == nil && !o.owned {
			t.Errorf("waiter on a panicked flight reported success it never computed")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter still blocked after the leader panicked: flight not cleaned up")
	}

	// The key must be retryable: a fresh caller runs its own compute.
	done := make(chan struct{})
	go func() {
		defer close(done)
		res, _, err := c.do(ctx, "doomed", func() (*Result, error) {
			return &Result{}, nil
		})
		if err != nil || res == nil {
			t.Errorf("retry after panic: res=%v err=%v", res, err)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("retry after panicked flight blocked: stale flight entry")
	}
}

// TestCacheDoWaiterCancel checks that a waiter whose own context dies
// abandons the flight without poisoning the leader: the waiter returns
// its ctx error promptly while the leader completes, caches, and serves
// later callers normally.
func TestCacheDoWaiterCancel(t *testing.T) {
	c := NewCache(8)
	entered := make(chan struct{})
	release := make(chan struct{})
	want := &Result{}

	leaderDone := make(chan error, 1)
	go func() {
		_, _, err := c.do(context.Background(), "slow", func() (*Result, error) {
			close(entered)
			<-release
			return want, nil
		})
		leaderDone <- err
	}()
	<-entered

	wctx, cancel := context.WithCancel(context.Background())
	waiterDone := make(chan error, 1)
	go func() {
		_, _, err := c.do(wctx, "slow", func() (*Result, error) {
			t.Error("canceled waiter ran compute")
			return nil, nil
		})
		waiterDone <- err
	}()
	cancel()
	select {
	case err := <-waiterDone:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("abandoning waiter: err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled waiter did not abandon the flight")
	}

	close(release)
	if err := <-leaderDone; err != nil {
		t.Fatalf("leader poisoned by abandoning waiter: %v", err)
	}
	if got := c.get("slow"); got != want {
		t.Error("leader's result not cached after a waiter abandoned")
	}
}

// TestCacheStrictCapacity pins satellite 3: NewCache(capacity) admits
// at most capacity entries in total — the bound is enforced globally
// (the old per-shard ceil rounding let NewCache(1) hold one entry per
// shard, 16 total) — while a working set no larger than the capacity
// is never evicted, however unevenly it hashes across shards.
func TestCacheStrictCapacity(t *testing.T) {
	for _, capacity := range []int{1, 2, 5, cacheShards, cacheShards + 3, 100} {
		c := NewCache(capacity)
		res := &Result{}
		// Overfill with keys spread across every shard digit.
		for i := 0; i < 4*cacheShards; i++ {
			c.put(fmt.Sprintf("%x-key-%d", i%cacheShards, i), res)
		}
		if got := c.Len(); got > capacity {
			t.Errorf("NewCache(%d) holds %d entries after overfill, want <= %d",
				capacity, got, capacity)
		}
		// A working set of exactly capacity keys survives in full even
		// when every key hashes into the same shard: the bound is
		// global, not a per-shard quota.
		c = NewCache(capacity)
		for i := 0; i < capacity; i++ {
			c.put(fmt.Sprintf("a-key-%d", i), res)
		}
		if got := c.Len(); got != capacity {
			t.Errorf("NewCache(%d) evicted a fitting same-shard working set: Len = %d",
				capacity, got)
		}
		for i := 0; i < capacity; i++ {
			if c.get(fmt.Sprintf("a-key-%d", i)) == nil {
				t.Errorf("NewCache(%d): same-shard key %d evicted below capacity", capacity, i)
				break
			}
		}
	}
}

// TestSchedulerPanicReleasesBudget pins satellite 2: a job that panics
// under Map still returns its lease to the budget (release is deferred),
// so a shared scheduler keeps its full Workers() capacity afterwards.
func TestSchedulerPanicReleasesBudget(t *testing.T) {
	s := NewScheduler(1) // single-runner path: the panic unwinds to us
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("job panic did not propagate")
			}
		}()
		s.Map(1, func(i, lease int) { panic("job exploded") })
	}()
	s.mu.Lock()
	avail := s.avail
	s.mu.Unlock()
	if avail != s.Workers() {
		t.Fatalf("after panicked job: avail = %d, want full budget %d", avail, s.Workers())
	}
	// The scheduler must still run a full batch without deadlocking on a
	// leaked lease.
	var ran atomic.Int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.Map(4, func(i, lease int) { ran.Add(1) })
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Map deadlocked after a panicked job: lease leaked")
	}
	if ran.Load() != 4 {
		t.Errorf("follow-up batch ran %d jobs, want 4", ran.Load())
	}
}

// TestSchedulerMapContextCancel checks both cancellation points of
// MapContext: a pre-canceled context dispatches nothing, and a context
// canceled mid-batch stops further dispatch while a waiter blocked on
// budget is woken to give up.
func TestSchedulerMapContextCancel(t *testing.T) {
	s := NewScheduler(2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := 0
	if err := s.MapContext(ctx, 8, func(i, lease int) { ran++ }); !errors.Is(err, context.Canceled) {
		t.Errorf("pre-canceled MapContext: err = %v, want context.Canceled", err)
	}
	if ran != 0 {
		t.Errorf("pre-canceled MapContext dispatched %d jobs, want 0", ran)
	}

	// Mid-batch: job 0 cancels; with budget 1 the dispatch is serial, so
	// no later index may run.
	s1 := NewScheduler(1)
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	var count atomic.Int64
	err := s1.MapContext(ctx2, 4, func(i, lease int) {
		count.Add(1)
		cancel2()
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("mid-batch cancel: err = %v, want context.Canceled", err)
	}
	if n := count.Load(); n != 1 {
		t.Errorf("jobs dispatched after cancellation: ran %d, want 1", n)
	}

	// Waiter blocked on budget gives up when its context dies: hold the
	// whole budget, then cancel the blocked MapContext.
	hold := NewScheduler(1)
	holding := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		hold.Map(1, func(i, lease int) {
			close(holding)
			<-release
		})
	}()
	<-holding
	ctx3, cancel3 := context.WithCancel(context.Background())
	blocked := make(chan error, 1)
	go func() {
		blocked <- hold.MapContext(ctx3, 1, func(i, lease int) {
			t.Error("job ran despite canceled wait for budget")
		})
	}()
	cancel3()
	select {
	case err := <-blocked:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("canceled budget waiter: err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("budget waiter not woken by cancellation")
	}
	close(release)
	wg.Wait()
}

// TestAlignBatchPanicIsolation pins satellite 4 at the library layer: a
// batch containing one program that panics mid-solve reports a
// *PanicError for that slot only, and every other slot's result is
// byte-identical to a solo solve of the same program — at one worker
// and at eight.
func TestAlignBatchPanicIsolation(t *testing.T) {
	srcs := []string{fig1, panicSrc, fig1, fig1}
	const bad = 1
	for _, workers := range []int{1, 8} {
		graphs := make([]*adg.Graph, len(srcs))
		for i, src := range srcs {
			graphs[i] = mustGraph(t, src)
		}
		results, errs := AlignBatch(graphs, Options{}, BatchOptions{Workers: workers})
		for i := range srcs {
			if i == bad {
				var pe *PanicError
				if !errors.As(errs[i], &pe) {
					t.Fatalf("workers=%d slot %d: err = %v, want *PanicError", workers, i, errs[i])
				}
				if pe.Label == "" || pe.Value == nil {
					t.Errorf("workers=%d: PanicError missing label/value: %+v", workers, pe)
				}
				continue
			}
			if errs[i] != nil {
				t.Fatalf("workers=%d slot %d: unexpected error %v", workers, i, errs[i])
			}
			solo, err := Align(mustGraph(t, srcs[i]), Options{})
			if err != nil {
				t.Fatal(err)
			}
			if got, want := results[i].Assignment.String(), solo.Assignment.String(); got != want {
				t.Errorf("workers=%d slot %d: assignment diverged from solo solve\ngot:  %s\nwant: %s",
					workers, i, got, want)
			}
			if results[i].Offset.Exact != solo.Offset.Exact {
				t.Errorf("workers=%d slot %d: exact cost %d, solo %d",
					workers, i, results[i].Offset.Exact, solo.Offset.Exact)
			}
		}
	}
}

// TestAlignBatchCancelFast checks the acceptance bound: an
// already-canceled context makes AlignBatchContext return well under
// 100ms with context.Canceled in every unstarted slot.
func TestAlignBatchCancelFast(t *testing.T) {
	graphs := make([]*adg.Graph, 32)
	for i := range graphs {
		graphs[i] = mustGraph(t, fig1)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	results, errs := AlignBatchContext(ctx, graphs, Options{}, BatchOptions{Workers: 4})
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Errorf("canceled batch took %v, want < 100ms", d)
	}
	for i := range graphs {
		if results[i] != nil {
			t.Errorf("slot %d has a result despite pre-canceled context", i)
		}
		if !errors.Is(errs[i], context.Canceled) {
			t.Errorf("slot %d: err = %v, want context.Canceled", i, errs[i])
		}
	}
}

// TestAlignBatchSolveTimeoutCancel checks per-slot deadlines: a
// SolveTimeout that cannot be met fails each slot with an error
// wrapping context.DeadlineExceeded, while the same batch without the
// timeout succeeds.
func TestAlignBatchSolveTimeoutCancel(t *testing.T) {
	graphs := []*adg.Graph{mustGraph(t, fig1), mustGraph(t, fig1)}
	_, errs := AlignBatch(graphs, Options{}, BatchOptions{Workers: 2, SolveTimeout: time.Nanosecond})
	for i, err := range errs {
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Errorf("slot %d with 1ns timeout: err = %v, want DeadlineExceeded", i, err)
		}
	}
	_, errs = AlignBatch(graphs, Options{}, BatchOptions{Workers: 2, SolveTimeout: time.Minute})
	for i, err := range errs {
		if err != nil {
			t.Errorf("slot %d with generous timeout: %v", i, err)
		}
	}
}

// TestAlignContextCancelNoPartialResult checks the determinism
// invariant under cancellation: a canceled solve returns an error, never
// a partially optimized result presented as success.
func TestAlignContextCancelNoPartialResult(t *testing.T) {
	g := mustGraph(t, fig1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := AlignContext(ctx, g, Options{})
	if err == nil {
		t.Fatal("canceled AlignContext returned success")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Error("canceled AlignContext returned a non-nil result")
	}
}
