package align

import (
	"repro/internal/adg"
)

// BatchOptions configures the batch alignment engine.
type BatchOptions struct {
	// Workers is the global worker budget shared by every solve of the
	// batch; values <= 0 mean GOMAXPROCS. This replaces per-solve
	// parallelism: Options.AxisStride.Parallelism and
	// Options.Offset.Parallelism are overridden by each solve's lease,
	// so a batch never oversubscribes (N programs × M solver workers).
	Workers int
	// Scheduler, when non-nil, runs the batch under an existing
	// scheduler's budget and scratch pools (long-running drivers
	// serving many batches share one); Workers is then ignored.
	Scheduler *Scheduler
}

// AlignBatch aligns every graph under one global worker budget and
// returns results in input order (results[i] and errs[i] belong to
// graphs[i]) regardless of completion order. Each graph's error is
// reported per slot, so one failing program never voids the batch.
//
// The batch shares Options.Cache across its solves — duplicate graphs
// collapse to a single pipeline execution (concurrent duplicates via
// the cache's singleflight, later ones via plain hits) and the
// duplicates receive the shared result rehydrated onto their own
// graphs. When Options.Cache is nil a batch-local cache (sized to the
// batch) provides the same dedup without persisting anything.
//
// All solver state is scratch-pooled on the scheduler, so a
// steady-state stream of batches allocates near zero beyond the
// results themselves. Output is byte-identical at every worker count:
// the per-solve lease only changes wall-clock interleaving, never the
// computed alignment.
func AlignBatch(graphs []*adg.Graph, opts Options, bopts BatchOptions) ([]*Result, []error) {
	results := make([]*Result, len(graphs))
	errs := make([]error, len(graphs))
	if len(graphs) == 0 {
		return results, errs
	}
	sched := bopts.Scheduler
	if sched == nil {
		sched = NewScheduler(bopts.Workers)
	}
	if opts.Cache == nil {
		opts.Cache = NewCache(len(graphs))
	}
	sched.Map(len(graphs), func(i, lease int) {
		results[i], errs[i] = sched.AlignLeased(graphs[i], opts, lease)
	})
	return results, errs
}

// AlignLeased runs the full pipeline for g under the scheduler's
// scratch pools with a solver-internal parallelism of lease workers.
// It is the per-program body of AlignBatch, exported for drivers that
// own their program loading (the root package's source-level batch,
// cmd/alignc's -batch mode) and dispatch through Scheduler.Map
// themselves.
func (s *Scheduler) AlignLeased(g *adg.Graph, opts Options, lease int) (*Result, error) {
	if lease < 1 {
		lease = 1
	}
	opts.AxisStride.Parallelism = lease
	opts.Offset.Parallelism = lease
	opts.scratch = &s.scratch
	return Align(g, opts)
}
