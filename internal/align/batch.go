package align

import (
	"context"
	"fmt"
	"time"

	"repro/internal/adg"
)

// BatchOptions configures the batch alignment engine.
type BatchOptions struct {
	// Workers is the global worker budget shared by every solve of the
	// batch; values <= 0 mean GOMAXPROCS. This replaces per-solve
	// parallelism: Options.AxisStride.Parallelism and
	// Options.Offset.Parallelism are overridden by each solve's lease,
	// so a batch never oversubscribes (N programs × M solver workers).
	Workers int
	// Scheduler, when non-nil, runs the batch under an existing
	// scheduler's budget and scratch pools (long-running drivers
	// serving many batches share one); Workers is then ignored.
	Scheduler *Scheduler
	// SolveTimeout, when > 0, bounds each program's solve: a slot whose
	// solve exceeds it fails with an error wrapping
	// context.DeadlineExceeded while the rest of the batch proceeds.
	SolveTimeout time.Duration
}

// PanicError is a library panic captured at the batch engine's
// per-slot boundary: the panicking program's slot reports it as an
// ordinary error and every other slot completes normally.
type PanicError struct {
	// Label identifies the panicking program (the batch slot index,
	// prefixed by the caller's label when it supplied one).
	Label string
	// Value is the recovered panic value.
	Value any
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("align: panic in %s: %v", e.Label, e.Value)
}

// Protect runs f with a recover boundary, converting a panic into a
// *PanicError carrying label and the panic value. It is the per-slot
// isolation the batch engine wraps every solve in, exported so drivers
// that dispatch through Scheduler.Map themselves (the root package's
// source-level batch) get the same boundary.
func Protect[T any](label string, f func() (T, error)) (res T, err error) {
	defer func() {
		if p := recover(); p != nil {
			var zero T
			res, err = zero, &PanicError{Label: label, Value: p}
		}
	}()
	return f()
}

// AlignBatch aligns every graph under one global worker budget and
// returns results in input order (results[i] and errs[i] belong to
// graphs[i]) regardless of completion order. Each graph's error is
// reported per slot, so one failing program never voids the batch —
// including programs that panic inside the solvers: the panic is
// recovered at the slot boundary (see PanicError) after the slot's
// lease and scratch state have been returned by their defers.
//
// The batch shares Options.Cache across its solves — duplicate graphs
// collapse to a single pipeline execution (concurrent duplicates via
// the cache's singleflight, later ones via plain hits) and the
// duplicates receive the shared result rehydrated onto their own
// graphs. When Options.Cache is nil a batch-local cache (sized to the
// batch) provides the same dedup without persisting anything.
//
// All solver state is scratch-pooled on the scheduler, so a
// steady-state stream of batches allocates near zero beyond the
// results themselves. Output is byte-identical at every worker count:
// the per-solve lease only changes wall-clock interleaving, never the
// computed alignment.
func AlignBatch(graphs []*adg.Graph, opts Options, bopts BatchOptions) ([]*Result, []error) {
	return AlignBatchContext(context.Background(), graphs, opts, bopts)
}

// AlignBatchContext is AlignBatch under a context. Cancellation is
// observed between solves (no new slot starts once ctx dies) and
// inside them (running solves abort at their next cancellation check);
// slots never started report ctx.Err(). BatchOptions.SolveTimeout
// additionally bounds each slot with its own deadline. An
// already-canceled context returns immediately with ctx.Err() in every
// slot.
func AlignBatchContext(ctx context.Context, graphs []*adg.Graph, opts Options, bopts BatchOptions) ([]*Result, []error) {
	results := make([]*Result, len(graphs))
	errs := make([]error, len(graphs))
	if len(graphs) == 0 {
		return results, errs
	}
	if ctx == nil {
		ctx = context.Background()
	}
	sched := bopts.Scheduler
	if sched == nil {
		sched = NewScheduler(bopts.Workers)
	}
	if opts.Cache == nil {
		opts.Cache = NewCache(len(graphs))
	}
	sched.MapContext(ctx, len(graphs), func(i, lease int) {
		results[i], errs[i] = Protect(fmt.Sprintf("program %d", i), func() (*Result, error) {
			slotCtx := ctx
			if bopts.SolveTimeout > 0 {
				var cancel context.CancelFunc
				slotCtx, cancel = context.WithTimeout(ctx, bopts.SolveTimeout)
				defer cancel()
			}
			return sched.AlignLeasedContext(slotCtx, graphs[i], opts, lease)
		})
	})
	// Slots the scheduler never dispatched (cancellation arrived first)
	// report the batch context's error.
	if err := ctx.Err(); err != nil {
		for i := range errs {
			if results[i] == nil && errs[i] == nil {
				errs[i] = err
			}
		}
	}
	return results, errs
}

// AlignLeased runs the full pipeline for g under the scheduler's
// scratch pools with a solver-internal parallelism of lease workers.
// It is the per-program body of AlignBatch, exported for drivers that
// own their program loading (the root package's source-level batch,
// cmd/alignc's -batch mode) and dispatch through Scheduler.Map
// themselves.
func (s *Scheduler) AlignLeased(g *adg.Graph, opts Options, lease int) (*Result, error) {
	return s.AlignLeasedContext(context.Background(), g, opts, lease)
}

// AlignLeasedContext is AlignLeased under a context (see AlignContext
// for where cancellation is observed).
func (s *Scheduler) AlignLeasedContext(ctx context.Context, g *adg.Graph, opts Options, lease int) (*Result, error) {
	if lease < 1 {
		lease = 1
	}
	opts.AxisStride.Parallelism = lease
	opts.Offset.Parallelism = lease
	opts.scratch = &s.scratch
	return AlignContext(ctx, g, opts)
}
