package align

import (
	"errors"
	"sort"

	"repro/internal/adg"
	"repro/internal/expr"
)

// This file is the partition-solve-reassemble layer between Align and
// the solvers. alignUncached decomposes every graph into its weakly
// connected components (adg.PartitionGraph) and solves each component as
// an independent subproblem — the decomposition itself is unconditional,
// so the computed alignment is byte-identical whether Options.Partition
// is on or off, and a connected graph takes the exact monolithic path
// it always did. Options.Partition toggles what the decomposition is
// *used for*: per-region content-addressed caching (each component is
// hashed with cacheKey on its extracted sub-graph and solved through
// Options.Cache with the usual singleflight semantics) and region-grain
// parallelism (regions fan out over a Scheduler, a coarser and
// better-balanced grain than per-axis). After a one-component edit to a
// multi-component program the whole-program key misses but every
// untouched region is a warm hit — only the edited region re-solves.
//
// A region is solved with Partition=false sub-options, so its cache key
// equals the whole-program key of an identical standalone program
// solved with Partition off: region entries and whole-program entries
// share one namespace and one cache.

// alignRegions solves a multi-region graph region by region and
// reassembles the per-region results into one parent Result. Regions
// fan out over a private Scheduler whose budget is the solve's own
// parallelism (never the outer batch Scheduler — the caller may already
// hold a lease there, and re-acquiring inside a held lease can
// deadlock); each region spends its lease on solver-internal
// parallelism. Determinism: every region solve is independent of
// parallelism, reassembly is in canonical region order, and on failure
// the error of the lowest-indexed failing region wins.
func alignRegions(g *adg.Graph, part *adg.Partition, opts Options) (*Result, error) {
	nr := len(part.Regions)
	sub := opts
	sub.Partition = false
	cache := opts.Cache
	if !opts.Partition {
		cache = nil
	}
	sub.Cache = nil

	results := make([]*Result, nr)
	errs := make([]error, nr)
	hits := make([]bool, nr)

	width := opts.Offset.Parallelism
	if width <= 0 {
		width = opts.AxisStride.Parallelism
	}
	if !opts.Partition || width == 1 {
		width = 1 // decomposition without the parallelism grain
	}
	// solve aligns region i. A positive lease caps the region's internal
	// solver parallelism (parallel fan-out divides the solve's own
	// budget); lease 0 keeps the caller's per-solver settings (the
	// sequential fan-out changes nothing about how each region solves).
	solve := func(i, lease int) {
		ropts := sub
		if lease > 0 {
			ropts.AxisStride.Parallelism = lease
			ropts.Offset.Parallelism = lease
		}
		rg := part.Regions[i].Graph
		if cache == nil {
			results[i], errs[i] = alignMono(rg, ropts)
			return
		}
		res, owned, err := cache.do(opts.ctx, cacheKey(rg, ropts), func() (*Result, error) {
			return alignMono(rg, ropts)
		})
		if err != nil {
			errs[i] = err
			return
		}
		if !owned {
			res = res.rehydrate(rg)
			hits[i] = true
		}
		results[i] = res
	}
	if width == 1 {
		for i := 0; i < nr; i++ {
			if err := opts.ctxErr(); err != nil {
				return nil, err
			}
			solve(i, 0)
		}
	} else {
		sched := NewScheduler(width)
		if err := sched.MapContext(opts.ctx, nr, solve); err != nil {
			return nil, err
		}
	}
	for i := 0; i < nr; i++ {
		if errs[i] != nil {
			return nil, errs[i]
		}
		if results[i] == nil {
			// A slot the scheduler never dispatched: only cancellation
			// can cause this, and MapContext reported it above; keep a
			// guard so a nil result can never flow into reassembly.
			if err := opts.ctxErr(); err != nil {
				return nil, err
			}
			return nil, errInternalNilRegion
		}
	}
	return reassembleRegions(g, part, results, hits), nil
}

// errInternalNilRegion guards reassembly against a region slot that was
// neither solved nor failed; it is unreachable in a correct scheduler.
var errInternalNilRegion = errors.New("align: internal: region solve missing")

// reassembleRegions merges per-region results into one Result for the
// parent graph. Per-port tables remap region port IDs to parent port
// IDs; edge lists remap to parent edges and sort by parent edge ID (the
// canonical order — regions interleave in the parent numbering);
// scalar costs, volumes, and effort counters sum; LP dimensions take
// the largest single region (they describe the largest LP solved).
// Phase times sum across regions, so under region-parallel execution
// they read as aggregate solver time, not wall time.
func reassembleRegions(g *adg.Graph, part *adg.Partition, results []*Result, hits []bool) *Result {
	as := &AxisStrideResult{Labels: make(map[int]ASLabel, len(g.Ports))}
	repl := &ReplResult{
		PortRepl: make(map[int][]bool, len(g.Ports)),
		PerAxis:  make([]int64, g.TemplateRank),
		CutEdges: make([][]*adg.Edge, g.TemplateRank),
	}
	off := &OffsetResult{Offsets: make(map[int][]expr.Affine, len(g.Ports))}
	out := &Result{Graph: g, AxisStride: as, Repl: repl, Offset: off, Regions: len(results)}

	var generalIDs []int
	cutIDs := make([][]int, g.TemplateRank)
	for ri, r := range results {
		reg := part.Regions[ri]
		for pi, parentID := range reg.Ports {
			as.Labels[parentID] = r.AxisStride.Labels[pi]
			off.Offsets[parentID] = append([]expr.Affine{}, r.Offset.Offsets[pi]...)
			if v, ok := r.Repl.PortRepl[pi]; ok {
				repl.PortRepl[parentID] = append([]bool{}, v...)
			}
		}
		as.Cost += r.AxisStride.Cost
		mergeDPStats(&as.Stats, r.AxisStride.Stats)
		for _, e := range r.AxisStride.GeneralEdges {
			generalIDs = append(generalIDs, reg.Edges[e.ID])
		}
		repl.Broadcast += r.Repl.Broadcast
		for t := 0; t < g.TemplateRank; t++ {
			if t < len(r.Repl.PerAxis) {
				repl.PerAxis[t] += r.Repl.PerAxis[t]
			}
			if t < len(r.Repl.CutEdges) {
				for _, e := range r.Repl.CutEdges[t] {
					cutIDs[t] = append(cutIDs[t], reg.Edges[e.ID])
				}
			}
		}
		off.Approx += r.Offset.Approx
		off.Exact += r.Offset.Exact
		off.Solves += r.Offset.Solves
		if r.Offset.LPVariables > off.LPVariables {
			off.LPVariables = r.Offset.LPVariables
		}
		if r.Offset.LPConstraints > off.LPConstraints {
			off.LPConstraints = r.Offset.LPConstraints
		}
		off.Stats.Add(r.Offset.Stats)
		out.Times.AxisStride += r.Times.AxisStride
		out.Times.Replication += r.Times.Replication
		out.Times.Offsets += r.Times.Offsets
		if hits[ri] {
			out.RegionHits++
		}
	}
	sort.Ints(generalIDs)
	for _, id := range generalIDs {
		as.GeneralEdges = append(as.GeneralEdges, g.Edges[id])
	}
	for t := range cutIDs {
		sort.Ints(cutIDs[t])
		for _, id := range cutIDs[t] {
			repl.CutEdges[t] = append(repl.CutEdges[t], g.Edges[id])
		}
	}
	out.Assignment = out.BuildAssignment()
	return out
}

// mergeDPStats sums every DPStats field (unlike the solver-internal
// add, which skips the per-solve Labels/Configs snapshots — across
// regions those are disjoint problems, so summing is the right merge).
func mergeDPStats(d *DPStats, o DPStats) {
	d.Starts += o.Starts
	d.Labels += o.Labels
	d.Configs += o.Configs
	d.Sweeps += o.Sweeps
	d.Moves += o.Moves
	d.Evals += o.Evals
	d.ExpansionAccepts += o.ExpansionAccepts
	d.PrunedStarts += o.PrunedStarts
}
