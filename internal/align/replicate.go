package align

import (
	"fmt"

	"repro/internal/adg"
	"repro/internal/netflow"
)

// ReplResult is the outcome of replication labeling (§5): per-port,
// per-template-axis replication labels and the broadcast volume implied
// by the labeling (the min-cut value).
type ReplResult struct {
	// PortRepl[portID][t] reports a replicated offset on template axis t.
	PortRepl map[int][]bool
	// PerAxis[t] is the min-cut (broadcast) volume on axis t.
	PerAxis []int64
	// Broadcast is the total broadcast volume over all axes.
	Broadcast int64
	// CutEdges[t] lists the ADG edges that carry a broadcast on axis t
	// (tail non-replicated, head replicated).
	CutEdges [][]*adg.Edge
}

// Replicated reports whether port p is replicated on axis t.
func (r *ReplResult) Replicated(p *adg.Port, t int) bool {
	if v, ok := r.PortRepl[p.ID]; ok {
		return v[t]
	}
	return false
}

// NoReplication returns a labeling with every port non-replicated.
func NoReplication(g *adg.Graph) *ReplResult {
	r := &ReplResult{
		PortRepl: map[int][]bool{},
		PerAxis:  make([]int64, g.TemplateRank),
		CutEdges: make([][]*adg.Edge, g.TemplateRank),
	}
	for _, p := range g.Ports {
		r.PortRepl[p.ID] = make([]bool, g.TemplateRank)
	}
	return r
}

// MobilePredicate reports whether the object at port p currently has a
// mobile offset on template axis t; used for the §5.1 source "a read-only
// object with mobile offset alignment in a space axis can be realized
// through replication". Pass nil on the first round of the
// replication/offset iteration (§6).
type MobilePredicate func(p *adg.Port, t int) bool

// Replicate performs replication labeling by network flow (Theorem 1),
// independently for each template axis. Constraints (§5.2): ports whose
// current axis is a body axis are N; a spread along the current axis has
// its input R and its output N; read-only objects with mobile offsets on
// a space axis are R; lookup tables feeding gathers are R on their space
// axes; all ports of every other node share one label. Subject to these,
// the completion minimizing the total weight of N→R edges is a min cut.
func Replicate(g *adg.Graph, as *AxisStrideResult, mobile MobilePredicate) (*ReplResult, error) {
	res := NoReplication(g)
	for t := 0; t < g.TemplateRank; t++ {
		if err := replicateAxis(g, as, mobile, t, res); err != nil {
			return nil, err
		}
	}
	for _, v := range res.PerAxis {
		res.Broadcast += v
	}
	return res, nil
}

// replicateAxis labels one template axis.
func replicateAxis(g *adg.Graph, as *AxisStrideResult, mobile MobilePredicate, t int, res *ReplResult) error {
	// Vertices: one per node; spreads along t and gathers get their
	// special input port split out as an extra vertex.
	const (
		labelFree = iota
		labelN
		labelR
	)
	nv := len(g.Nodes)
	vertexOfPort := make(map[int]int, len(g.Ports)) // port ID → vertex
	labels := make([]int, nv, nv+len(g.Nodes)+2)

	bodyAxis := func(p *adg.Port) bool {
		l, ok := as.Labels[p.ID]
		if !ok {
			return false
		}
		for _, a := range l.AxisMap {
			if a == t {
				return true
			}
		}
		return false
	}

	for _, n := range g.Nodes {
		for _, p := range append(append([]*adg.Port{}, n.In...), n.Out...) {
			vertexOfPort[p.ID] = n.ID
		}
	}
	// Split special input ports into their own vertices.
	addSplit := func(p *adg.Port, lab int) {
		v := len(labels)
		labels = append(labels, lab)
		vertexOfPort[p.ID] = v
	}
	for _, n := range g.Nodes {
		switch n.Kind {
		case adg.KindSpread:
			// Spread along the current axis: input R, output N (§5.2
			// constraint 2). The spread axis is where the output's new
			// body axis lands.
			outLabel := as.Labels[n.Out[0].ID]
			spreadAxis := -1
			if n.SpreadDim-1 < len(outLabel.AxisMap) {
				spreadAxis = outLabel.AxisMap[n.SpreadDim-1]
			}
			if spreadAxis == t {
				addSplit(n.In[0], labelR)
				labels[n.ID] = labelN
			}
		case adg.KindGather:
			// Lookup tables are replicated on their space axes (§5.1).
			for _, p := range n.In[1:] {
				if !bodyAxis(p) {
					addSplit(p, labelR)
				}
			}
		}
	}
	// Apply N/R constraints on whole-node vertices.
	for _, n := range g.Nodes {
		for _, p := range append(append([]*adg.Port{}, n.In...), n.Out...) {
			v := vertexOfPort[p.ID]
			if v >= nv {
				continue // split vertex, already labeled
			}
			if bodyAxis(p) {
				if labels[v] == labelR {
					return fmt.Errorf("align: node %d needs both N and R on axis %d", n.ID, t)
				}
				labels[v] = labelN
				continue
			}
			// Read-only mobile-offset source objects on a space axis may
			// be realized through replication (§5.1 source 3); all other
			// array storage starts with a single distributed copy, so
			// writable sources are N — this is what makes Figure 4's
			// "one broadcast at loop entry" appear as the min cut.
			if n.Kind == adg.KindSource {
				if n.ReadOnly && mobile != nil && mobile(p, t) {
					if labels[v] != labelN {
						labels[v] = labelR
					}
				} else if !n.ReadOnly {
					labels[v] = labelN
				}
			}
		}
	}

	// Flow network: vertices + source s + sink tk.
	total := len(labels) + 2
	s, tk := total-2, total-1
	fg := netflow.NewGraph(total)
	type edgeRef struct {
		adgEdge *adg.Edge
		flowID  int
	}
	var refs []edgeRef
	for _, e := range g.Edges {
		u := vertexOfPort[e.Src.ID]
		v := vertexOfPort[e.Dst.ID]
		if u == v {
			continue
		}
		w := int64(e.ExpectedWeight())
		if w <= 0 {
			w = 1
		}
		id := fg.AddEdge(u, v, w)
		refs = append(refs, edgeRef{adgEdge: e, flowID: id})
	}
	for v, lab := range labels {
		switch lab {
		case labelN:
			fg.AddEdge(s, v, netflow.Inf)
		case labelR:
			fg.AddEdge(v, tk, netflow.Inf)
		}
	}
	r := fg.MaxFlow(s, tk)
	if r.Value >= netflow.Inf {
		return fmt.Errorf("align: infeasible replication labeling on axis %d", t)
	}
	side := r.SourceSide() // true = N side
	res.PerAxis[t] = r.Value
	for _, p := range g.Ports {
		if !side[vertexOfPort[p.ID]] {
			res.PortRepl[p.ID][t] = true
		}
	}
	for _, er := range refs {
		u := vertexOfPort[er.adgEdge.Src.ID]
		v := vertexOfPort[er.adgEdge.Dst.ID]
		if side[u] && !side[v] {
			res.CutEdges[t] = append(res.CutEdges[t], er.adgEdge)
		}
	}
	return nil
}

// ReplicateForced applies only the forced replication labels — spread
// inputs along the spread axis and gathered lookup tables — without the
// min-cut optimization. This is the "no replication labeling" baseline:
// the program's own spreads still demand replicated inputs (§5.2
// constraint 2 is a node constraint, not an optimization choice), so a
// broadcast occurs on every iteration that feeds a spread.
func ReplicateForced(g *adg.Graph, as *AxisStrideResult) *ReplResult {
	res := NoReplication(g)
	for t := 0; t < g.TemplateRank; t++ {
		for _, n := range g.Nodes {
			switch n.Kind {
			case adg.KindSpread:
				outLabel := as.Labels[n.Out[0].ID]
				if n.SpreadDim-1 < len(outLabel.AxisMap) && outLabel.AxisMap[n.SpreadDim-1] == t {
					res.PortRepl[n.In[0].ID][t] = true
					e := n.In[0].Edge
					if !res.PortRepl[e.Src.ID][t] {
						res.PerAxis[t] += e.TotalWeight()
						res.CutEdges[t] = append(res.CutEdges[t], e)
					}
				}
			case adg.KindGather:
				for _, p := range n.In[1:] {
					body := false
					for _, a := range as.Labels[p.ID].AxisMap {
						if a == t {
							body = true
						}
					}
					if !body {
						res.PortRepl[p.ID][t] = true
						e := p.Edge
						if !res.PortRepl[e.Src.ID][t] {
							res.PerAxis[t] += e.TotalWeight()
							res.CutEdges[t] = append(res.CutEdges[t], e)
						}
					}
				}
			}
		}
	}
	for _, v := range res.PerAxis {
		res.Broadcast += v
	}
	return res
}
