package align

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestTenantQuotaBudgets(t *testing.T) {
	q := NewTenantQuota(2, map[string]int{"big": 5, "free": 0})
	if got := q.Budget("anon"); got != 2 {
		t.Fatalf("default budget = %d, want 2", got)
	}
	if got := q.Budget("big"); got != 5 {
		t.Fatalf("override budget = %d, want 5", got)
	}
	if got := q.Budget("free"); got != 0 {
		t.Fatalf("unlimited override budget = %d, want 0", got)
	}

	// Default-pool tenant: two slots fit, the third is throttled.
	if !q.TryAcquire("anon", 1) || !q.TryAcquire("anon", 1) {
		t.Fatal("first two acquisitions should be admitted")
	}
	if q.TryAcquire("anon", 1) {
		t.Fatal("third acquisition should be throttled")
	}
	// A different tenant is unaffected by anon's occupancy.
	if !q.TryAcquire("big", 5) {
		t.Fatal("big tenant should fit its own budget")
	}
	if q.TryAcquire("big", 1) {
		t.Fatal("big tenant over budget should be throttled")
	}
	// Weighted admission is all-or-nothing.
	q.Release("anon", 1)
	if q.TryAcquire("anon", 2) {
		t.Fatal("weight-2 acquisition should not fit a budget with 1 free slot")
	}
	q.Release("anon", 1)
	if !q.TryAcquire("anon", 2) {
		t.Fatal("weight-2 acquisition should fit an empty budget of 2")
	}
	// Unlimited tenants always fit.
	if !q.TryAcquire("free", 1000) {
		t.Fatal("unlimited tenant should always be admitted")
	}

	stats := q.Stats()
	byName := map[string]TenantStats{}
	for _, s := range stats {
		byName[s.Tenant] = s
	}
	if s := byName["anon"]; s.Throttled != 2 || s.Admitted != 3 || s.InUse != 2 {
		t.Fatalf("anon stats = %+v, want 2 throttled, 3 admitted, 2 in use", s)
	}
	if s := byName["big"]; s.Throttled != 1 || s.InUse != 5 {
		t.Fatalf("big stats = %+v, want 1 throttled, 5 in use", s)
	}
	for i := 1; i < len(stats); i++ {
		if stats[i-1].Tenant >= stats[i].Tenant {
			t.Fatalf("stats not sorted: %q before %q", stats[i-1].Tenant, stats[i].Tenant)
		}
	}
}

func TestTenantQuotaReleasePanics(t *testing.T) {
	q := NewTenantQuota(4, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("Release without TryAcquire should panic")
		}
	}()
	q.Release("anon", 1)
}

func TestSchedulerStatsAndAcquire(t *testing.T) {
	s := NewScheduler(4)
	if st := s.Stats(); st.Budget != 4 || st.Available != 4 || st.Leased != 0 || st.Waiting != 0 {
		t.Fatalf("idle stats = %+v", st)
	}
	rel1, err := s.Acquire(context.Background(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Leased != 3 || st.Available != 1 {
		t.Fatalf("stats after lease 3 = %+v", st)
	}

	// A second acquire for 2 must wait (only 1 available) and register
	// as queue depth; releasing the first lease unblocks it.
	acquired := make(chan func(), 1)
	go func() {
		rel, err := s.Acquire(context.Background(), 2)
		if err != nil {
			t.Error(err)
		}
		acquired <- rel
	}()
	deadline := time.Now().Add(2 * time.Second)
	for s.Stats().Waiting == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if st := s.Stats(); st.Waiting != 1 {
		t.Fatalf("stats while blocked = %+v, want Waiting 1", st)
	}
	rel1()
	rel2 := <-acquired
	if st := s.Stats(); st.Leased != 2 || st.Waiting != 0 {
		t.Fatalf("stats after handoff = %+v", st)
	}
	rel2()
	rel2() // release closure is idempotent
	if st := s.Stats(); st.Leased != 0 || st.Available != 4 {
		t.Fatalf("stats after release = %+v", st)
	}

	// Acquire gives up when its context dies while waiting.
	relAll, err := s.Acquire(context.Background(), 4)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := s.Acquire(ctx, 1); err == nil {
		t.Fatal("Acquire under a dead context should fail")
	}
	relAll()
	if st := s.Stats(); st.Leased != 0 || st.Waiting != 0 {
		t.Fatalf("stats after canceled waiter = %+v", st)
	}
}

func TestSchedulerAcquireClamps(t *testing.T) {
	s := NewScheduler(2)
	// n above the budget clamps to the budget instead of deadlocking.
	rel, err := s.Acquire(context.Background(), 100)
	if err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Leased != 2 {
		t.Fatalf("clamped lease = %+v, want Leased 2", st)
	}
	rel()

	// Concurrent one-slot acquires over the budget all complete.
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rel, err := s.Acquire(context.Background(), 1)
			if err != nil {
				t.Error(err)
				return
			}
			time.Sleep(time.Millisecond)
			rel()
		}()
	}
	wg.Wait()
	if st := s.Stats(); st.Leased != 0 || st.Waiting != 0 {
		t.Fatalf("stats after churn = %+v", st)
	}
}
