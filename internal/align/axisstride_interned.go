package align

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/adg"
)

// AxisStrideInterned solves the §3 problem with the interned-label
// solver exactly as it stood before the flat-state rebuild: candidate
// sets and configurations are per-node slices of interned label IDs
// ([]int32 / []inCfg), every optimization start allocates its own
// startState slices, and expansion passes scan a node's configuration
// list to match a wavefront label. It is retained solely as the
// measured baseline for BenchmarkAxisStride's flat-vs-interned speedup
// gate and as an oracle for TestDPStateDeterminism (the flat solver
// must reproduce its labelings byte for byte). New code should call
// AxisStride.
func AxisStrideInterned(g *adg.Graph) (*AxisStrideResult, error) {
	return AxisStrideInternedOpts(g, AxisStrideOptions{})
}

// AxisStrideInternedOpts is AxisStrideInterned with explicit options
// (Parallelism, Restarts, and ctx are honored; the flat solver's
// PruneSlack is not part of the frozen baseline and is ignored).
func AxisStrideInternedOpts(g *adg.Graph, opts AxisStrideOptions) (*AxisStrideResult, error) {
	opts = opts.withDefaults()
	s := &inSolver{g: g, tab: newInternTable(), cands: make([][]int32, len(g.Ports))}
	if err := s.generateCandidates(); err != nil {
		return nil, err
	}
	if err := s.buildNodeConfigs(); err != nil {
		return nil, err
	}
	stats, err := s.optimize(opts)
	if err != nil {
		return nil, err
	}
	stats.Labels = s.tab.size()
	for _, cfgs := range s.cfgs {
		stats.Configs += len(cfgs)
	}
	res := &AxisStrideResult{Labels: map[int]ASLabel{}, Stats: stats}
	lab := make([]int32, len(g.Ports))
	for _, n := range g.Nodes {
		cfg := s.cfgs[n.ID][s.best[n.ID]]
		for i, p := range n.In {
			lab[p.ID] = cfg.in[i]
			res.Labels[p.ID] = s.tab.label(cfg.in[i])
		}
		for i, p := range n.Out {
			lab[p.ID] = cfg.out[i]
			res.Labels[p.ID] = s.tab.label(cfg.out[i])
		}
	}
	for _, e := range g.Edges {
		if lab[e.Src.ID] != lab[e.Dst.ID] {
			res.Cost += e.TotalWeight()
			res.GeneralEdges = append(res.GeneralEdges, e)
		}
	}
	return res, nil
}

type inSolver struct {
	g     *adg.Graph
	tab   *internTable
	cands [][]int32     // port ID → candidate label IDs
	cfgs  [][]inCfg     // node ID → feasible configurations
	best  []int         // chosen config index per node ID
	wts   []float64     // edge ID → control-weighted total weight
	ends  [][2]int32    // edge ID → (src port ID, dst port ID)
	inc   [][]inIncEdge // node ID → incident edges (each edge once)
}

// inCfg is a node configuration over interned label IDs.
type inCfg struct {
	in, out []int32
}

// inIncEdge is one edge incident on a node in the baseline's
// pointer-free incidence structure.
type inIncEdge struct {
	w        float64
	eid      int32 // edge ID (delta-cost dedup in expansion passes)
	peer     int32 // peer port ID (label index), unused for selfLoop
	selfOut  bool  // this node's endpoint is an output port
	selfIdx  int32 // index of this node's endpoint among In or Out
	selfLoop bool
	dstIdx   int32 // selfLoop: input-port index of the edge's Dst
}

func (c inCfg) labelAt(out bool, idx int32) int32 {
	if out {
		return c.out[idx]
	}
	return c.in[idx]
}

func (s *inSolver) addCand(p *adg.Port, l ASLabel) bool {
	if len(l.AxisMap) != p.Rank || len(s.cands[p.ID]) >= maxCandidates {
		return false
	}
	id := s.tab.intern(l)
	for _, c := range s.cands[p.ID] {
		if c == id {
			return false
		}
	}
	s.cands[p.ID] = append(s.cands[p.ID], id)
	return true
}

// generateCandidates seeds every port with the identity label for its
// rank and propagates labels through node transfer functions and across
// edges until fixpoint. Propagation is incremental across edges (each
// edge remembers how many endpoint candidates it has copied) but a node
// revisit re-derives from all of its ports' candidates — the flat
// solver's per-site cursors are the optimization this baseline freezes
// out.
func (s *inSolver) generateCandidates() error {
	for _, p := range s.g.Ports {
		s.addCand(p, identityLabel(p.Rank))
	}
	srcDone := make([]int, len(s.g.Edges))
	dstDone := make([]int, len(s.g.Edges))
	lastSeen := make([]int, len(s.g.Nodes)) // Σ len(cands) over the node's ports
	for i := range lastSeen {
		lastSeen[i] = -1
	}
	portSum := func(n *adg.Node) int {
		c := 0
		for _, p := range n.In {
			c += len(s.cands[p.ID])
		}
		for _, p := range n.Out {
			c += len(s.cands[p.ID])
		}
		return c
	}
	changed := true
	for rounds := 0; changed && rounds < 64; rounds++ {
		changed = false
		for _, e := range s.g.Edges {
			src := s.cands[e.Src.ID]
			for _, id := range src[srcDone[e.ID]:] {
				l := s.tab.label(id)
				if compatibleSpaces(l, e.Dst) && s.addCand(e.Dst, l) {
					changed = true
				}
			}
			srcDone[e.ID] = len(src)
			dst := s.cands[e.Dst.ID]
			for _, id := range dst[dstDone[e.ID]:] {
				l := s.tab.label(id)
				if compatibleSpaces(l, e.Src) && s.addCand(e.Src, l) {
					changed = true
				}
			}
			dstDone[e.ID] = len(dst)
		}
		for _, n := range s.g.Nodes {
			cnt := portSum(n)
			if cnt == lastSeen[n.ID] {
				continue
			}
			lastSeen[n.ID] = cnt
			if s.propagateNode(n) {
				changed = true
			}
		}
	}
	return nil
}

// candLabels materializes a port's candidate labels into dst (reused
// across calls by the legacy baseline; the hot paths work on IDs).
func (s *inSolver) candLabels(p *adg.Port, dst []ASLabel) []ASLabel {
	dst = dst[:0]
	for _, id := range s.cands[p.ID] {
		dst = append(dst, s.tab.label(id))
	}
	return dst
}

// propagateNode derives new candidate labels for a node's ports from the
// labels of its other ports using the node's constraint.
func (s *inSolver) propagateNode(n *adg.Node) bool {
	changed := false
	add := func(p *adg.Port, l ASLabel) {
		if compatibleSpaces(l, p) && s.addCand(p, l) {
			changed = true
		}
	}
	switch n.Kind {
	case adg.KindOp, adg.KindMerge, adg.KindFanout, adg.KindBranch:
		all := append(append([]*adg.Port{}, n.In...), n.Out...)
		for _, p := range all {
			for _, q := range all {
				if p == q || p.Rank != q.Rank {
					continue
				}
				for _, id := range s.cands[p.ID] {
					add(q, s.tab.label(id))
				}
			}
		}
	case adg.KindXform:
		in, out := n.In[0], n.Out[0]
		x := n.Xform
		for _, id := range s.cands[out.ID] {
			if m, ok := xformInLabel(s.tab.label(id), x); ok {
				add(in, m)
			}
		}
		for _, id := range s.cands[in.ID] {
			if m, ok := xformOutLabel(s.tab.label(id), x); ok {
				add(out, m)
			}
		}
	case adg.KindTranspose:
		in, out := n.In[0], n.Out[0]
		for _, id := range s.cands[in.ID] {
			add(out, transposeLabel(s.tab.label(id)))
		}
		for _, id := range s.cands[out.ID] {
			add(in, transposeLabel(s.tab.label(id)))
		}
	case adg.KindSection:
		s.propagateSection(n, n.In[0], n.Out[0], &changed)
	case adg.KindSectionAssign:
		for _, id := range s.cands[n.In[0].ID] {
			add(n.Out[0], s.tab.label(id))
		}
		for _, id := range s.cands[n.Out[0].ID] {
			add(n.In[0], s.tab.label(id))
		}
		s.propagateSection(n, n.In[0], n.In[1], &changed)
	case adg.KindSpread:
		in, out := n.In[0], n.Out[0]
		for _, id := range s.cands[in.ID] {
			if m, ok := spreadLabel(s.tab.label(id), n.SpreadDim, s.g.TemplateRank); ok {
				add(out, m)
			}
		}
		for _, id := range s.cands[out.ID] {
			add(in, unspreadLabel(s.tab.label(id), n.SpreadDim))
		}
	case adg.KindReduce:
		in, out := n.In[0], n.Out[0]
		for _, id := range s.cands[in.ID] {
			if n.ReduceDim == 0 {
				continue
			}
			add(out, reduceLabel(s.tab.label(id), n.ReduceDim))
		}
	case adg.KindGather:
	}
	return changed
}

func (s *inSolver) propagateSection(n *adg.Node, in, out *adg.Port, changed *bool) {
	add := func(p *adg.Port, l ASLabel) {
		if compatibleSpaces(l, p) && s.addCand(p, l) {
			*changed = true
		}
	}
	for _, id := range s.cands[in.ID] {
		if m, ok := sectionLabel(s.tab.label(id), n.Section); ok {
			add(out, m)
		}
	}
	for _, id := range s.cands[out.ID] {
		if m, ok := unsectionLabel(s.tab.label(id), n.Section, in.Rank); ok {
			add(in, m)
		}
	}
}

// buildNodeConfigs enumerates, per node, the feasible joint labelings of
// its ports drawn from the candidate sets, and precomputes the incidence
// structure the optimization sweeps over.
func (s *inSolver) buildNodeConfigs() error {
	s.cfgs = make([][]inCfg, len(s.g.Nodes))
	s.wts = make([]float64, len(s.g.Edges))
	s.ends = make([][2]int32, len(s.g.Edges))
	for _, e := range s.g.Edges {
		s.wts[e.ID] = e.ExpectedWeight()
		s.ends[e.ID] = [2]int32{int32(e.Src.ID), int32(e.Dst.ID)}
	}
	for _, n := range s.g.Nodes {
		cfgs := s.enumConfigs(n)
		if len(cfgs) == 0 {
			return fmt.Errorf("align: no feasible axis/stride configuration for node %d (%s %q)", n.ID, n.Kind, n.Label)
		}
		s.cfgs[n.ID] = cfgs
	}
	s.inc = make([][]inIncEdge, len(s.g.Nodes))
	for _, n := range s.g.Nodes {
		for i, p := range n.In {
			e := p.Edge
			if e.Src.Node == n {
				s.inc[n.ID] = append(s.inc[n.ID], inIncEdge{
					w: s.wts[e.ID], eid: int32(e.ID), selfLoop: true,
					selfOut: true, selfIdx: int32(e.Src.Index), dstIdx: int32(i),
				})
				continue
			}
			s.inc[n.ID] = append(s.inc[n.ID], inIncEdge{
				w: s.wts[e.ID], eid: int32(e.ID), peer: int32(e.Src.ID), selfOut: false, selfIdx: int32(i),
			})
		}
		for i, p := range n.Out {
			e := p.Edge
			if e.Dst.Node == n {
				continue // self-loop, already registered
			}
			s.inc[n.ID] = append(s.inc[n.ID], inIncEdge{
				w: s.wts[e.ID], eid: int32(e.ID), peer: int32(e.Dst.ID), selfOut: true, selfIdx: int32(i),
			})
		}
	}
	return nil
}

// enumConfigs builds feasible configurations by choosing a label for the
// node's "driver" port and deriving the rest via the constraint.
func (s *inSolver) enumConfigs(n *adg.Node) []inCfg {
	var out []inCfg
	push := func(cfg inCfg, ok bool) {
		if !ok {
			return
		}
		for _, c := range out {
			if equalIDs(c.in, cfg.in) && equalIDs(c.out, cfg.out) {
				return
			}
		}
		out = append(out, cfg)
	}
	ilabel := func(rank int) int32 { return s.tab.intern(identityLabel(rank)) }
	switch n.Kind {
	case adg.KindSource, adg.KindSink:
		p := n.In
		if len(p) == 0 {
			p = n.Out
		}
		for _, id := range s.cands[p[0].ID] {
			cfg := inCfg{}
			if len(n.In) > 0 {
				cfg.in = []int32{id}
			} else {
				cfg.out = []int32{id}
			}
			push(cfg, true)
		}
	case adg.KindOp, adg.KindMerge, adg.KindFanout, adg.KindBranch:
		rank := 0
		for _, p := range n.In {
			if p.Rank > rank {
				rank = p.Rank
			}
		}
		for _, p := range n.Out {
			if p.Rank > rank {
				rank = p.Rank
			}
		}
		driver := n.Out[0]
		for _, id := range s.cands[driver.ID] {
			l := s.tab.label(id)
			cfg := inCfg{in: make([]int32, 0, len(n.In)), out: make([]int32, 0, len(n.Out))}
			ok := true
			for _, p := range n.In {
				if p.Rank == rank {
					if !compatibleSpaces(l, p) {
						ok = false
						break
					}
					cfg.in = append(cfg.in, id)
				} else {
					cfg.in = append(cfg.in, ilabel(p.Rank))
				}
			}
			if !ok {
				continue
			}
			for _, p := range n.Out {
				if p.Rank == rank {
					cfg.out = append(cfg.out, id)
				} else {
					cfg.out = append(cfg.out, ilabel(p.Rank))
				}
			}
			push(cfg, true)
		}
	case adg.KindXform:
		if n.Xform.Kind == adg.XformExit {
			for _, id := range s.cands[n.In[0].ID] {
				m, ok := xformOutLabel(s.tab.label(id), n.Xform)
				if ok && compatibleSpaces(m, n.Out[0]) {
					push(inCfg{in: []int32{id}, out: []int32{s.tab.intern(m)}}, true)
				}
			}
			break
		}
		for _, id := range s.cands[n.Out[0].ID] {
			m, ok := xformInLabel(s.tab.label(id), n.Xform)
			if ok && compatibleSpaces(m, n.In[0]) {
				push(inCfg{in: []int32{s.tab.intern(m)}, out: []int32{id}}, true)
			}
		}
	case adg.KindTranspose:
		for _, id := range s.cands[n.In[0].ID] {
			m := transposeLabel(s.tab.label(id))
			push(inCfg{in: []int32{id}, out: []int32{s.tab.intern(m)}}, true)
		}
	case adg.KindSection:
		for _, id := range s.cands[n.In[0].ID] {
			m, ok := sectionLabel(s.tab.label(id), n.Section)
			if ok {
				push(inCfg{in: []int32{id}, out: []int32{s.tab.intern(m)}}, true)
			}
		}
	case adg.KindSectionAssign:
		for _, id := range s.cands[n.In[0].ID] {
			m, ok := sectionLabel(s.tab.label(id), n.Section)
			if ok {
				push(inCfg{in: []int32{id, s.tab.intern(m)}, out: []int32{id}}, true)
			}
		}
	case adg.KindSpread:
		for _, id := range s.cands[n.In[0].ID] {
			m, ok := spreadLabel(s.tab.label(id), n.SpreadDim, s.g.TemplateRank)
			if ok {
				push(inCfg{in: []int32{id}, out: []int32{s.tab.intern(m)}}, true)
			}
		}
	case adg.KindReduce:
		for _, id := range s.cands[n.In[0].ID] {
			if n.ReduceDim == 0 {
				push(inCfg{in: []int32{id}, out: []int32{ilabel(0)}}, true)
			} else {
				m := reduceLabel(s.tab.label(id), n.ReduceDim)
				push(inCfg{in: []int32{id}, out: []int32{s.tab.intern(m)}}, true)
			}
		}
	case adg.KindGather:
		cfg := inCfg{}
		for _, p := range n.In {
			cfg.in = append(cfg.in, ilabel(p.Rank))
		}
		for _, p := range n.Out {
			cfg.out = append(cfg.out, ilabel(p.Rank))
		}
		push(cfg, true)
	}
	return out
}

// startState is the per-start mutable state of the baseline: one heap
// slice per concern, allocated fresh for every start of every solve
// (the flat solver replaces all of it with dpState's carved buffers).
type startState struct {
	s     *inSolver
	cfg   []int   // per node: index into s.cfgs[n]
	lab   []int32 // per port: label ID under cfg
	dirty []bool  // per node: must be re-evaluated
	cost  float64
	stats DPStats

	trialCfg  []int
	trialLab  []int32
	nodeEpoch []int32
	edgeEpoch []int32
	epoch     int32
	changed   []int
	queue     []int
}

func newStartState(s *inSolver, seed int) *startState {
	st := &startState{
		s:         s,
		cfg:       make([]int, len(s.g.Nodes)),
		lab:       make([]int32, len(s.g.Ports)),
		dirty:     make([]bool, len(s.g.Nodes)),
		trialCfg:  make([]int, len(s.g.Nodes)),
		trialLab:  make([]int32, len(s.g.Ports)),
		nodeEpoch: make([]int32, len(s.g.Nodes)),
		edgeEpoch: make([]int32, len(s.g.Edges)),
		changed:   make([]int, 0, len(s.g.Nodes)),
		queue:     make([]int, 0, len(s.g.Nodes)),
	}
	for _, n := range s.g.Nodes {
		switch {
		case seed == 0:
			st.cfg[n.ID] = 0
		case seed == 1:
			st.cfg[n.ID] = len(s.cfgs[n.ID]) - 1
		default:
			st.cfg[n.ID] = perturbIndex(seed, n.ID, len(s.cfgs[n.ID]))
		}
		st.applyLabels(n, st.cfg[n.ID], st.lab)
		st.dirty[n.ID] = true
	}
	st.cost = s.totalCost(st.lab)
	return st
}

func (st *startState) applyLabels(n *adg.Node, cfgIdx int, lab []int32) {
	cfg := st.s.cfgs[n.ID][cfgIdx]
	for i, p := range n.In {
		lab[p.ID] = cfg.in[i]
	}
	for i, p := range n.Out {
		lab[p.ID] = cfg.out[i]
	}
}

// incidentCost is the discrete cost of the node's incident edges under
// configuration cfg with all neighbors fixed at lab.
func (st *startState) incidentCost(nid int, cfg inCfg) float64 {
	var c float64
	for _, ie := range st.s.inc[nid] {
		if ie.selfLoop {
			if cfg.out[ie.selfIdx] != cfg.in[ie.dstIdx] {
				c += ie.w
			}
			continue
		}
		if cfg.labelAt(ie.selfOut, ie.selfIdx) != st.lab[ie.peer] {
			c += ie.w
		}
	}
	return c
}

// sweepOnce runs one best-response sweep over the dirty nodes in
// deterministic order (forward on even sweeps, backward on odd ones).
func (st *startState) sweepOnce(sweep int) bool {
	s := st.s
	moved := false
	nn := len(s.g.Nodes)
	for k := 0; k < nn; k++ {
		nid := k
		if sweep%2 == 1 {
			nid = nn - 1 - k
		}
		if !st.dirty[nid] {
			continue
		}
		st.dirty[nid] = false
		cfgs := s.cfgs[nid]
		cur := st.cfg[nid]
		curCost := st.incidentCost(nid, cfgs[cur])
		bestIdx, bestCost := cur, curCost
		for ci := range cfgs {
			if ci == cur {
				continue
			}
			if c := st.incidentCost(nid, cfgs[ci]); c < bestCost {
				bestIdx, bestCost = ci, c
			}
		}
		st.stats.Evals += int64(len(cfgs))
		if bestIdx == cur {
			continue
		}
		st.cfg[nid] = bestIdx
		st.applyLabels(s.g.Nodes[nid], bestIdx, st.lab)
		st.cost += bestCost - curCost
		st.stats.Moves++
		moved = true
		for _, ie := range s.inc[nid] {
			if !ie.selfLoop {
				st.dirty[s.g.Ports[ie.peer].Node.ID] = true
			}
		}
	}
	return moved
}

// optimize is the baseline multi-start schedule: every start allocates
// its own state and all starts always run to their local optimum.
func (s *inSolver) optimize(opts AxisStrideOptions) (DPStats, error) {
	nStarts := 2 + opts.Restarts
	states := make([]*startState, nStarts)
	run := func(seed int) {
		st := newStartState(s, seed)
		st.stats.Starts = 1
		st.run(opts.ctx)
		states[seed] = st
	}
	if par := min(opts.Parallelism, nStarts); par <= 1 {
		for seed := 0; seed < nStarts; seed++ {
			run(seed)
		}
	} else {
		var wg sync.WaitGroup
		sem := make(chan struct{}, par)
		for seed := 0; seed < nStarts; seed++ {
			wg.Add(1)
			sem <- struct{}{}
			go func(seed int) {
				defer func() { <-sem; wg.Done() }()
				run(seed)
			}(seed)
		}
		wg.Wait()
	}
	if opts.ctx != nil {
		if err := opts.ctx.Err(); err != nil {
			var stats DPStats
			for _, st := range states {
				stats.add(st.stats)
			}
			return stats, err
		}
	}
	best := 0
	var stats DPStats
	for seed, st := range states {
		stats.add(st.stats)
		if st.cost < states[best].cost {
			best = seed
		}
	}
	s.best = states[best].cfg
	return stats, nil
}

func (st *startState) run(ctx context.Context) {
	canceled := func() bool { return ctx != nil && ctx.Err() != nil }
	for round := 0; round < 12; round++ {
		improved := false
		for sweep := 0; sweep < 60; sweep++ {
			if canceled() {
				return
			}
			st.stats.Sweeps++
			if !st.sweepOnce(sweep) {
				break
			}
			improved = true
		}
		if st.cost == 0 || canceled() {
			return
		}
		if st.expansionPass() {
			improved = true
		}
		if !improved || st.cost == 0 {
			break
		}
	}
}

// expansionPass tries, for every node and every alternative
// configuration, to re-label the node and greedily propagate matching
// configurations across its incident edges; the whole move is accepted
// if it lowers the total cost.
func (st *startState) expansionPass() bool {
	s := st.s
	improvedAny := false
	copy(st.trialCfg, st.cfg)
	copy(st.trialLab, st.lab)
	for _, n := range s.g.Nodes {
		if st.incidentCost(n.ID, s.cfgs[n.ID][st.cfg[n.ID]]) == 0 {
			continue
		}
		for ci := range s.cfgs[n.ID] {
			if ci == st.cfg[n.ID] {
				continue
			}
			st.epoch++
			st.changed = st.changed[:0]
			st.trialCfg[n.ID] = ci
			st.applyLabels(n, ci, st.trialLab)
			st.nodeEpoch[n.ID] = st.epoch
			st.changed = append(st.changed, n.ID)
			st.queue = append(st.queue[:0], n.ID)
			for len(st.queue) > 0 {
				uid := st.queue[0]
				st.queue = st.queue[1:]
				for _, ie := range s.inc[uid] {
					if ie.selfLoop {
						continue
					}
					peerPort := s.g.Ports[ie.peer]
					vid := peerPort.Node.ID
					if st.nodeEpoch[vid] == st.epoch {
						continue
					}
					want := s.cfgs[uid][st.trialCfg[uid]].labelAt(ie.selfOut, ie.selfIdx)
					if st.trialLab[ie.peer] == want {
						continue
					}
					for vci, vc := range s.cfgs[vid] {
						if vc.labelAt(peerPort.Output, int32(peerPort.Index)) == want {
							st.trialCfg[vid] = vci
							st.applyLabels(peerPort.Node, vci, st.trialLab)
							st.nodeEpoch[vid] = st.epoch
							st.changed = append(st.changed, vid)
							st.queue = append(st.queue, vid)
							break
						}
					}
				}
			}
			var delta float64
			for _, uid := range st.changed {
				for _, ie := range s.inc[uid] {
					if st.edgeEpoch[ie.eid] == st.epoch {
						continue
					}
					st.edgeEpoch[ie.eid] = st.epoch
					ends := s.ends[ie.eid]
					if (st.lab[ends[0]] != st.lab[ends[1]]) != (st.trialLab[ends[0]] != st.trialLab[ends[1]]) {
						if st.trialLab[ends[0]] != st.trialLab[ends[1]] {
							delta += ie.w
						} else {
							delta -= ie.w
						}
					}
				}
			}
			if delta < 0 {
				for _, uid := range st.changed {
					st.cfg[uid] = st.trialCfg[uid]
					st.applyLabels(s.g.Nodes[uid], st.trialCfg[uid], st.lab)
					st.dirty[uid] = true
					for _, ie := range s.inc[uid] {
						if !ie.selfLoop {
							st.dirty[s.g.Ports[ie.peer].Node.ID] = true
						}
					}
				}
				st.cost += delta
				st.stats.ExpansionAccepts++
				improvedAny = true
			} else {
				for _, uid := range st.changed {
					st.trialCfg[uid] = st.cfg[uid]
					st.applyLabels(s.g.Nodes[uid], st.cfg[uid], st.trialLab)
				}
			}
		}
	}
	return improvedAny
}

func (s *inSolver) totalCost(lab []int32) float64 {
	var c float64
	for _, e := range s.g.Edges {
		if lab[e.Src.ID] != lab[e.Dst.ID] {
			c += s.wts[e.ID]
		}
	}
	return c
}
