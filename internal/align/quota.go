package align

import (
	"sort"
	"sync"
)

// TenantQuota is the admission-control companion of Scheduler for
// multi-tenant serving: each tenant (an opaque string key — the daemon
// uses the X-Tenant header, with unidentified callers pooled under a
// shared default key) holds a budget of concurrently admitted worker
// slots. A request is admitted all-or-nothing: TryAcquire never blocks,
// so a tenant over its budget is rejected immediately (the daemon
// answers 429) instead of queueing unboundedly behind the scheduler —
// one greedy tenant can fill its own quota but never the whole budget's
// waiting line.
//
// Budgets are slots, not goroutines: the serving layer acquires one
// slot per in-flight program (a batch of k programs weighs k), matching
// the scheduler's one-worker-per-slot lease discipline, so a tenant's
// quota bounds the scheduler capacity it can occupy or queue for.
//
// The zero budget means unlimited (admission always succeeds but usage
// is still tracked); per-tenant overrides take precedence over the
// default. All methods are safe for concurrent use.
type TenantQuota struct {
	mu        sync.Mutex
	fallback  int            // budget for tenants without an override; <= 0 = unlimited
	overrides map[string]int // per-tenant budget overrides
	inuse     map[string]int
	admitted  map[string]int64
	throttled map[string]int64
}

// NewTenantQuota returns a quota set with the given default per-tenant
// budget (<= 0 means unlimited) and optional per-tenant overrides
// (an override <= 0 makes that tenant unlimited).
func NewTenantQuota(defaultBudget int, overrides map[string]int) *TenantQuota {
	q := &TenantQuota{
		fallback:  defaultBudget,
		overrides: make(map[string]int, len(overrides)),
		inuse:     make(map[string]int),
		admitted:  make(map[string]int64),
		throttled: make(map[string]int64),
	}
	for t, b := range overrides {
		q.overrides[t] = b
	}
	return q
}

// Budget returns the tenant's slot budget (0 = unlimited).
func (q *TenantQuota) Budget(tenant string) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.budgetLocked(tenant)
}

func (q *TenantQuota) budgetLocked(tenant string) int {
	if b, ok := q.overrides[tenant]; ok {
		if b <= 0 {
			return 0
		}
		return b
	}
	if q.fallback <= 0 {
		return 0
	}
	return q.fallback
}

// TryAcquire admits n slots for tenant if its budget allows, without
// blocking. A rejection leaves usage unchanged and counts toward the
// tenant's throttle statistic. n is clamped to at least 1.
func (q *TenantQuota) TryAcquire(tenant string, n int) bool {
	if n < 1 {
		n = 1
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if b := q.budgetLocked(tenant); b > 0 && q.inuse[tenant]+n > b {
		q.throttled[tenant]++
		return false
	}
	q.inuse[tenant] += n
	q.admitted[tenant]++
	return true
}

// Release returns n slots previously admitted for tenant. Releasing
// more than is in use panics: it means a serving-layer lease leak, the
// exact bug the drain tests exist to catch.
func (q *TenantQuota) Release(tenant string, n int) {
	if n < 1 {
		n = 1
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.inuse[tenant] < n {
		panic("align: TenantQuota.Release without matching TryAcquire")
	}
	q.inuse[tenant] -= n
}

// TenantStats is one tenant's admission record.
type TenantStats struct {
	// Tenant is the tenant key.
	Tenant string
	// Budget is the slot budget (0 = unlimited).
	Budget int
	// InUse is how many slots the tenant currently holds.
	InUse int
	// Admitted counts successful TryAcquire calls (requests, not slots).
	Admitted int64
	// Throttled counts rejected TryAcquire calls.
	Throttled int64
}

// Stats returns a snapshot for every tenant ever seen, sorted by key.
func (q *TenantQuota) Stats() []TenantStats {
	q.mu.Lock()
	defer q.mu.Unlock()
	seen := make(map[string]bool)
	for t := range q.inuse {
		seen[t] = true
	}
	for t := range q.admitted {
		seen[t] = true
	}
	for t := range q.throttled {
		seen[t] = true
	}
	out := make([]TenantStats, 0, len(seen))
	for t := range seen {
		out = append(out, TenantStats{
			Tenant:    t,
			Budget:    q.budgetLocked(t),
			InUse:     q.inuse[t],
			Admitted:  q.admitted[t],
			Throttled: q.throttled[t],
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}
