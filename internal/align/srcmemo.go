package align

import (
	"container/list"
	"context"
	"crypto/sha256"
	"fmt"
	"hash"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/lang"
)

// This file implements the source-keyed memo tier that sits in front of
// the whole pipeline: a sharded LRU mapping the normalized source bytes
// of a program — its token stream, which canonicalizes comments,
// whitespace, letter case, and newline runs away — plus the
// result-affecting options to the completed front-end result. A hit
// skips lex, parse, sema, ADG construction, canonical serialization,
// and the pipeline-cache SHA-256 entirely; a miss falls through to the
// normal pipeline (populating both tiers on the way out) with the same
// singleflight semantics Cache.do gives the pipeline tier.
//
// Values are stored as `any` so the tier can hold the driver-level
// result type (repro.Result) without an import cycle; the tier never
// inspects the value.

// SourceKey is the content address of one (normalized source, options)
// pair: a SHA-256 over the token stream and the option fingerprint.
// The fixed-size array form keeps lookups allocation-free.
type SourceKey [sha256.Size]byte

// srcShard is one independently locked LRU of the source tier.
type srcShard struct {
	mu      sync.Mutex
	order   *list.List
	entries map[SourceKey]*list.Element
}

type srcEntry struct {
	key SourceKey
	val any
}

// srcFlight is one in-flight front-end computation (see flightCall).
type srcFlight struct {
	done chan struct{}
	val  any
	err  error
}

// srcState is the source tier's state embedded in Cache.
type srcState struct {
	shards [cacheShards]srcShard
	size   atomic.Int64

	hits     atomic.Int64
	misses   atomic.Int64
	shared   atomic.Int64
	computes atomic.Int64

	flightMu sync.Mutex
	flights  map[SourceKey]*srcFlight
}

func (c *Cache) initSource() {
	for i := 0; i < c.nshards; i++ {
		c.src.shards[i].order = list.New()
		c.src.shards[i].entries = make(map[SourceKey]*list.Element)
	}
}

func (c *Cache) srcShardFor(k SourceKey) *srcShard {
	return &c.src.shards[int(k[0])%c.nshards]
}

// SourceCounters returns the source tier's cumulative lookup counts,
// with the same discipline as Counters/FlightStats for the pipeline
// tier: every completed SourceGet-miss-then-SourceDo sequence (or
// SourceGet hit) lands in exactly one of hits, shared, or misses, and
// misses == computes.
func (c *Cache) SourceCounters() (hits, misses, shared, computes int64) {
	return c.src.hits.Load(), c.src.misses.Load(), c.src.shared.Load(), c.src.computes.Load()
}

// SourceGet returns the memoized value for k, marking it most recently
// used and counting a hit. A miss is not counted — the caller is
// expected to continue into SourceDo, which counts the lookup's
// terminal outcome. The hit path performs no allocation.
func (c *Cache) SourceGet(k SourceKey) (any, bool) {
	s := c.srcShardFor(k)
	s.lock(c)
	el, ok := s.entries[k]
	if !ok {
		s.mu.Unlock()
		return nil, false
	}
	s.order.MoveToFront(el)
	v := el.Value.(*srcEntry).val
	s.mu.Unlock()
	c.src.hits.Add(1)
	return v, true
}

// lock mirrors cacheShard.lock, counting waits in the shared
// contention counter.
func (s *srcShard) lock(c *Cache) {
	if !s.mu.TryLock() {
		c.contended.Add(1)
		s.mu.Lock()
	}
}

// srcPeek is SourceGet without counters.
func (c *Cache) srcPeek(k SourceKey) (any, bool) {
	s := c.srcShardFor(k)
	s.lock(c)
	defer s.mu.Unlock()
	if el, ok := s.entries[k]; ok {
		s.order.MoveToFront(el)
		return el.Value.(*srcEntry).val, true
	}
	return nil, false
}

// srcPut stores v under k with the same strict global capacity bound as
// the pipeline tier's put: evict locally when the inserting shard has an
// older entry, otherwise steal the LRU of another non-empty shard. The
// source tier has its own entry budget (equal to the cache capacity) so
// memo entries never evict pipeline entries or vice versa.
func (c *Cache) srcPut(k SourceKey, v any) {
	s := c.srcShardFor(k)
	s.lock(c)
	if el, ok := s.entries[k]; ok {
		el.Value.(*srcEntry).val = v
		s.order.MoveToFront(el)
		s.mu.Unlock()
		return
	}
	s.entries[k] = s.order.PushFront(&srcEntry{key: k, val: v})
	if s.order.Len() > 1 && int(c.src.size.Load()) >= c.capacity {
		back := s.order.Back()
		s.order.Remove(back)
		delete(s.entries, back.Value.(*srcEntry).key)
		s.mu.Unlock()
		return
	}
	n := c.src.size.Add(1)
	s.mu.Unlock()
	if int(n) <= c.capacity {
		return
	}
	for {
		for i := 0; i < c.nshards; i++ {
			v := &c.src.shards[i]
			if !v.mu.TryLock() {
				continue
			}
			if v.order.Len() > 1 || (v.order.Len() == 1 && v != s) {
				back := v.order.Back()
				v.order.Remove(back)
				delete(v.entries, back.Value.(*srcEntry).key)
				c.src.size.Add(-1)
				v.mu.Unlock()
				return
			}
			v.mu.Unlock()
		}
		runtime.Gosched()
	}
}

// SourceLen returns the number of memoized source entries.
func (c *Cache) SourceLen() int {
	n := 0
	for i := 0; i < c.nshards; i++ {
		s := &c.src.shards[i]
		s.mu.Lock()
		n += s.order.Len()
		s.mu.Unlock()
	}
	return n
}

// SourceDo returns the memoized value for k, computing it at most once
// across concurrent callers — the source-tier twin of Cache.do. owned
// reports that compute ran in this call; when false the value was
// served by the memo or by another caller's in-flight computation (a
// memo hit from the caller's point of view). Errors are not memoized.
func (c *Cache) SourceDo(ctx context.Context, k SourceKey, compute func() (any, error)) (v any, owned bool, err error) {
	if hit, ok := c.srcPeek(k); ok {
		c.src.hits.Add(1)
		return hit, false, nil
	}
	c.src.flightMu.Lock()
	if c.src.flights == nil {
		c.src.flights = make(map[SourceKey]*srcFlight)
	}
	if call, ok := c.src.flights[k]; ok {
		c.src.flightMu.Unlock()
		var done <-chan struct{}
		if ctx != nil {
			done = ctx.Done()
		}
		select {
		case <-call.done:
			c.src.shared.Add(1)
			return call.val, false, call.err
		case <-done:
			return nil, false, ctx.Err()
		}
	}
	// Re-check before leading: completion publishes to the memo before
	// removing the flight, so an absent flight guarantees a finished
	// computation is already visible (see the same window in do).
	if hit, ok := c.srcPeek(k); ok {
		c.src.flightMu.Unlock()
		c.src.hits.Add(1)
		return hit, false, nil
	}
	call := &srcFlight{done: make(chan struct{})}
	c.src.flights[k] = call
	c.src.flightMu.Unlock()

	c.src.misses.Add(1)
	c.src.computes.Add(1)
	completed := false
	defer func() {
		if !completed {
			call.val, call.err = nil, fmt.Errorf("align: front end panicked for source key %x…", k[:6])
		}
		if call.err == nil {
			c.srcPut(k, call.val)
		}
		c.src.flightMu.Lock()
		delete(c.src.flights, k)
		c.src.flightMu.Unlock()
		close(call.done)
	}()
	call.val, call.err = compute()
	completed = true
	return call.val, true, call.err
}

// srcKeyState is the pooled scratch of a source-key computation: a
// reusable token buffer, an append buffer, and a long-lived SHA-256
// state, so keying a repeat source allocates nothing in steady state.
type srcKeyState struct {
	h    hash.Hash
	toks []lang.Token
	buf  []byte
}

var srcKeyPool = sync.Pool{
	New: func() any {
		return &srcKeyState{h: sha256.New(), buf: make([]byte, 0, 2048)}
	},
}

// SourceKeyOf computes the memo key of (src, opts): a SHA-256 over the
// token stream — the normalization — and the same result-affecting
// option fields cacheKey fingerprints (with ReplicationRounds defaulted
// exactly as AlignContext defaults it, so explicit-2 and unset share a
// key). ok is false when src does not lex; the caller then falls
// through to the full front end, which reports the error with its
// position.
func SourceKeyOf(src string, opts Options) (k SourceKey, ok bool) {
	st := srcKeyPool.Get().(*srcKeyState)
	toks, err := lang.LexInto(src, st.toks[:0])
	st.toks = toks
	if err != nil {
		srcKeyPool.Put(st)
		return k, false
	}
	st.h.Reset()
	b := append(st.buf[:0], "sm1|"...)
	for _, t := range toks {
		b = append(b, byte(t.Kind))
		b = append(b, t.Text...)
		b = append(b, 0)
		if len(b) >= cap(b)-64 {
			st.h.Write(b)
			b = b[:0]
		}
	}
	rounds := opts.ReplicationRounds
	if rounds <= 0 {
		rounds = 2
	}
	b = append(b, "o|"...)
	b = strconv.AppendInt(b, int64(opts.Offset.Strategy), 10)
	b = append(b, ';')
	b = strconv.AppendInt(b, int64(opts.Offset.M), 10)
	b = append(b, ';')
	b = strconv.AppendInt(b, int64(opts.Offset.MaxRefine), 10)
	b = append(b, ';')
	b = strconv.AppendInt(b, int64(opts.Offset.UnrollCap), 10)
	b = append(b, ';')
	b = appendBool(b, opts.Offset.Static)
	b = appendBool(b, opts.Replication)
	b = strconv.AppendInt(b, int64(rounds), 10)
	b = append(b, ';')
	b = strconv.AppendInt(b, int64(opts.AxisStride.Restarts), 10)
	b = append(b, ';')
	b = strconv.AppendInt(b, int64(opts.Offset.Engine), 10)
	b = append(b, ';')
	b = appendBool(b, opts.Offset.NoNetPath)
	b = strconv.AppendFloat(b, opts.AxisStride.PruneSlack, 'g', -1, 64)
	b = append(b, ';')
	b = appendBool(b, opts.Partition)
	b = strconv.AppendInt(b, int64(opts.Offset.Presolve), 10)
	b = append(b, ';')
	st.h.Write(b)
	st.buf = b[:0]
	st.h.Sum(k[:0])
	srcKeyPool.Put(st)
	return k, true
}

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, "1;"...)
	}
	return append(b, "0;"...)
}
