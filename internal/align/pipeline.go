package align

import (
	"context"
	"fmt"
	"time"

	"repro/internal/adg"
	"repro/internal/expr"
	"repro/internal/lp"
)

// Options configures the full alignment pipeline.
type Options struct {
	// AxisStride configures the §3 compact dynamic program (multi-start
	// parallelism and restart count).
	AxisStride AxisStrideOptions
	// Offset configures the mobile offset solver (§4).
	Offset OffsetOptions
	// Replication enables replication labeling (§5). When false every
	// port is non-replicated.
	Replication bool
	// ReplicationRounds bounds the replication ↔ offset iteration of §6
	// (the chicken-and-egg between mobile offsets motivating replication
	// and replication discarding edges from the offset problem).
	// Default 2.
	ReplicationRounds int
	// Cache, when non-nil, memoizes completed results content-addressed
	// by the ADG and the result-affecting options: aligning an unchanged
	// program again returns the cached alignment (rebound to the caller's
	// graph) without running any solver, and concurrent solves of the
	// same content key collapse to one pipeline execution (singleflight).
	// See NewCache.
	Cache *Cache

	// NoSourceMemo disables the source-keyed memo tier that front ends
	// (repro.AlignSource, the alignd daemon) layer in front of this
	// pipeline; the pipeline itself never consults it. The toggle is
	// not part of any cache key: the memo stores the same completed
	// result the pipeline cache computes, so it changes which tier
	// answers, never the answer. Off (memo enabled) by default; a no-op
	// without a Cache.
	NoSourceMemo bool

	// Partition enables compositional solving on top of the (always-on)
	// component decomposition: each weakly connected component of the
	// ADG is content-addressed on its own and solved through Cache with
	// singleflight semantics, and components fan out as the parallelism
	// grain. A one-component edit to a multi-component program then
	// misses only the whole-program key — every untouched component is
	// a warm region hit and only the edited one re-solves. The computed
	// alignment is byte-identical with Partition on or off at every
	// parallelism level (the decomposition itself is unconditional);
	// the toggle is nevertheless part of the whole-program cache key,
	// because it changes what the cache learns from a solve. Off by
	// default; a no-op without a Cache except for region-grain fan-out.
	Partition bool

	// MaxLPIter caps the simplex iterations of each LP solve of the §4
	// offset phase (lp.Options.MaxIter); values <= 0 derive the budget
	// from the problem size. A solve that exhausts the budget fails with
	// lp.ErrBudget instead of spinning.
	MaxLPIter int64

	// scratch, when non-nil, recycles per-solve solver state (intern
	// tables, tableau arenas). Set by the batch engine's scheduler.
	scratch *scratchPool

	// ctx, when non-nil, cancels the pipeline: it is observed between
	// phases, between DP sweeps, between LP refinement rounds, and
	// (amortized) inside simplex iterations. Set by AlignContext.
	ctx context.Context
}

// ctxErr returns the pipeline's cancellation error, or nil.
func (o *Options) ctxErr() error {
	if o.ctx == nil {
		return nil
	}
	return o.ctx.Err()
}

// PhaseTimes is the wall time of each pipeline phase.
type PhaseTimes struct {
	// AxisStride covers the §3 discrete-metric phase.
	AxisStride time.Duration
	// Offsets covers every offset LP round (§4), including the re-solves
	// of the §6 replication iteration.
	Offsets time.Duration
	// Replication covers the §5 min-cut labeling rounds.
	Replication time.Duration
}

// Result is the complete alignment of a program's ADG.
type Result struct {
	Graph      *adg.Graph
	AxisStride *AxisStrideResult
	Repl       *ReplResult
	Offset     *OffsetResult
	// Assignment is the consolidated per-port alignment.
	Assignment *adg.Assignment
	// Times records per-phase wall time.
	Times PhaseTimes
	// CacheHit reports that this result was served from Options.Cache
	// (phase times are zero in that case — no solver ran).
	CacheHit bool
	// Regions is the number of weakly connected components the graph
	// decomposed into (1 for a connected program, 0 for an empty one).
	Regions int
	// RegionHits is how many of those components were served from the
	// per-region cache during this solve (always 0 with
	// Options.Partition off, and for a whole-program cache hit — no
	// region lookup ran; a rehydrated whole-program hit reports the
	// leader's counts).
	RegionHits int
}

// Align runs the full pipeline of the paper on an ADG: axis and (mobile)
// stride alignment under the discrete metric (§3), replication labeling
// by min-cut (§5), and mobile offset alignment by rounded linear
// programming (§4), iterating the last two until quiescence (§6).
func Align(g *adg.Graph, opts Options) (*Result, error) {
	return AlignContext(context.Background(), g, opts)
}

// AlignContext is Align under a context: cancellation or deadline
// expiry aborts the pipeline between phases, between DP sweeps, between
// LP refinement rounds, and (amortized) inside simplex iterations,
// returning an error satisfying errors.Is on ctx.Err(). A canceled
// waiter of a singleflight miss abandons the flight without disturbing
// the leader's solve.
func AlignContext(ctx context.Context, g *adg.Graph, opts Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	opts.ctx = ctx
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if opts.ReplicationRounds <= 0 {
		opts.ReplicationRounds = 2
	}
	if opts.Cache == nil {
		return alignUncached(g, opts)
	}
	// Cached path with singleflight: a hit returns the memoized result
	// rebound to g; concurrent misses on the same content key run the
	// pipeline once — the leader's result is already bound to its own
	// graph, every waiter rehydrates the shared result onto theirs.
	res, owned, err := opts.Cache.do(ctx, cacheKey(g, opts), func() (*Result, error) {
		return alignUncached(g, opts)
	})
	if err != nil {
		return nil, err
	}
	if owned {
		return res, nil
	}
	return res.rehydrate(g), nil
}

// alignUncached is the compute body of the cached path: it decomposes
// the graph into weakly connected components and solves them as
// independent subproblems (see regions.go). The decomposition happens
// whether or not Options.Partition is set — that keeps the result
// byte-identical across the toggle by construction — and a connected
// graph falls through to the monolithic solve untouched.
func alignUncached(g *adg.Graph, opts Options) (*Result, error) {
	part := adg.PartitionGraph(g)
	if len(part.Regions) <= 1 {
		res, err := alignMono(g, opts)
		if res != nil {
			res.Regions = len(part.Regions)
		}
		return res, err
	}
	return alignRegions(g, part, opts)
}

// alignMono runs the solver pipeline on one (connected) graph — the
// per-region compute body, and the whole pipeline for connected
// programs.
func alignMono(g *adg.Graph, opts Options) (*Result, error) {
	var times PhaseTimes
	opts.AxisStride.scratch = opts.scratch
	opts.AxisStride.ctx = opts.ctx
	opts.Offset.scratch = opts.scratch
	opts.Offset.ctx = opts.ctx
	opts.Offset.MaxIter = opts.MaxLPIter
	t0 := time.Now()
	as, err := AxisStrideOpts(g, opts.AxisStride)
	if err != nil {
		return nil, fmt.Errorf("align: axis/stride phase: %w", err)
	}
	times.AxisStride = time.Since(t0)
	if err := opts.ctxErr(); err != nil {
		return nil, err
	}
	repl := NoReplication(g)
	var off *OffsetResult
	if opts.Replication {
		// Round 0 labels without mobility information; subsequent rounds
		// use the offsets of the previous round. The solver is shared
		// across rounds so each re-solve warm-starts from the previous
		// basis (only the per-edge θ costs change between rounds).
		solver := NewOffsetSolver(g, as, opts.Offset)
		defer solver.releaseScratch()
		var mobile MobilePredicate
		// Effort accounting accumulates across the §6 rounds: each Solve
		// reports only its own round's counters, but the result handed to
		// the caller describes the whole iteration — without the sum, the
		// cold round-0 solves (the expensive ones) would vanish from the
		// report the moment a warm round overwrote off.
		var effort lp.Stats
		solves, lpVars, lpCons := 0, 0, 0
		for round := 0; round < opts.ReplicationRounds; round++ {
			if err := opts.ctxErr(); err != nil {
				return nil, err
			}
			t0 = time.Now()
			repl, err = Replicate(g, as, mobile)
			if err != nil {
				return nil, fmt.Errorf("align: replication phase: %w", err)
			}
			times.Replication += time.Since(t0)
			t0 = time.Now()
			off, err = solver.Solve(repl)
			if err != nil {
				return nil, err
			}
			times.Offsets += time.Since(t0)
			effort.Add(off.Stats)
			solves += off.Solves
			if off.LPVariables > lpVars {
				lpVars = off.LPVariables
			}
			if off.LPConstraints > lpCons {
				lpCons = off.LPConstraints
			}
			prev := off
			mobile = func(p *adg.Port, t int) bool {
				return !prev.Offsets[p.ID][t].IsConst()
			}
		}
		off.Stats = effort
		off.Solves = solves
		off.LPVariables = lpVars
		off.LPConstraints = lpCons
	} else {
		// Even without replication labeling, spreads force their inputs
		// replicated (§5.2 constraint 2) — Figure 4's per-iteration
		// broadcast baseline.
		t0 = time.Now()
		repl = ReplicateForced(g, as)
		times.Replication = time.Since(t0)
		t0 = time.Now()
		off, err = Offsets(g, as, repl, opts.Offset)
		if err != nil {
			return nil, err
		}
		times.Offsets = time.Since(t0)
	}
	res := &Result{Graph: g, AxisStride: as, Repl: repl, Offset: off, Times: times}
	res.Assignment = res.BuildAssignment()
	return res, nil
}

// BuildAssignment consolidates the phase outputs into per-port
// alignments. It is exported so callers composing the phases manually
// (e.g. mobile-vs-static experiments) can evaluate their own results.
func (r *Result) BuildAssignment() *adg.Assignment {
	asg := adg.NewAssignment(r.Graph)
	for _, p := range r.Graph.Ports {
		label := r.AxisStride.Labels[p.ID]
		a := adg.Alignment{
			AxisMap:    append([]int{}, label.AxisMap...),
			Stride:     append([]expr.Affine{}, label.Stride...),
			Offset:     append([]expr.Affine{}, r.Offset.Offsets[p.ID]...),
			Replicated: make([]bool, r.Graph.TemplateRank),
		}
		for t := 0; t < r.Graph.TemplateRank; t++ {
			a.Replicated[t] = r.Repl.Replicated(p, t)
		}
		asg.Set(p, a)
	}
	return asg
}
