package align

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/lp"
)

// TestWarmSolveZeroAlloc extends the TestCacheGetZeroAlloc precedent to
// the full solver hot path: once the scratch pools are warm, a repeat
// §3 DP solve and a warm sparse-LP re-optimization must each run within
// a small constant number of heap allocations (the unavoidable result
// objects), because every piece of working state — flat DP arena,
// intern table, CSC form, eta file, pricing scratch — is recycled.
func TestWarmSolveZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; AllocsPerRun gates are meaningless under -race")
	}
	t.Run("dp", func(t *testing.T) {
		// An identity-alignment chain: every candidate label is the
		// cached identity, so the steady state exercises candidate
		// propagation, config enumeration, and the best-response sweeps
		// without per-solve label derivation.
		g := mustGraph(t, `
real A(64,64), B(64,64), C(64,64)
C = A + B
B = C + A
A = B + C
`)
		var pool scratchPool
		opts := AxisStrideOptions{Parallelism: 1, Restarts: -1, scratch: &pool}
		for i := 0; i < 3; i++ {
			if _, err := AxisStrideOpts(g, opts); err != nil {
				t.Fatal(err)
			}
		}
		allocs := testing.AllocsPerRun(100, func() {
			if _, err := AxisStrideOpts(g, opts); err != nil {
				t.Fatal(err)
			}
		})
		t.Logf("warm flat DP solve: %.1f allocs/op", allocs)
		if allocs > 8 {
			t.Errorf("warm DP solve allocates %.1f objects/op, want <= 8", allocs)
		}
	})

	t.Run("sparse-lp", func(t *testing.T) {
		// An RLP-shaped problem with θ pairs, forced onto the sparse
		// core with a pooled arena. After the cold solve retains the
		// form and basis, warm re-optimizations must not allocate
		// beyond the extracted Solution.
		p := lp.NewProblem()
		const nv = 12
		off := make([]lp.VarID, nv)
		for i := range off {
			off[i] = p.AddVariable(fmt.Sprintf("x%d", i), 0, true)
		}
		p.AddConstraint(map[lp.VarID]float64{off[0]: 1}, lp.EQ, 0)
		ths := make([]lp.VarID, 0, nv-1)
		for i := 0; i+1 < nv; i++ {
			th := p.AddVariable(fmt.Sprintf("t%d", i), float64(1+i%3), false)
			ths = append(ths, th)
			d := float64(i%5 - 2)
			p.AddConstraint(map[lp.VarID]float64{th: 1, off[i]: 1, off[i+1]: -1}, lp.GE, -d)
			p.AddConstraint(map[lp.VarID]float64{th: 1, off[i]: -1, off[i+1]: 1}, lp.GE, d)
		}
		p.SetOptions(lp.Options{Engine: lp.EngineSparse})
		p.SetArena(lp.NewArena())
		p.KeepBasis()
		if _, err := p.Solve(); err != nil {
			t.Fatal(err)
		}
		warm := func(round int) {
			for i, th := range ths {
				p.SetCost(th, float64(1+(i+round)%3))
			}
			if _, err := p.WarmSolve(); err != nil {
				t.Fatal(err)
			}
		}
		warm(1)
		warm(2)
		round := 3
		allocs := testing.AllocsPerRun(100, func() {
			warm(round)
			round++
		})
		t.Logf("warm sparse solve: %.1f allocs/op", allocs)
		if allocs > 8 {
			t.Errorf("warm sparse WarmSolve allocates %.1f objects/op, want <= 8", allocs)
		}
	})
}

// TestDPStateDeterminism pins the flat-state solver's reports against
// the frozen interned-label baseline: with PruneSlack off the results
// are identical to the baseline at every parallelism level, and with
// PruneSlack on the results are still identical across parallelism
// levels (pruning depends only on costs, never on goroutine timing).
func TestDPStateDeterminism(t *testing.T) {
	g := mustGraph(t, `
real B(64,48), C(48,64), D(64,48), E(48,64)
do k = 1, 8
  B = B + transpose(C)
  C = transpose(B)
  D = D + B
  E = transpose(D) + C
  B = D * 2
enddo
`)
	type snap struct {
		labels map[int]ASLabel
		cost   int64
		edges  []int
	}
	take := func(r *AxisStrideResult) snap {
		s := snap{labels: r.Labels, cost: r.Cost}
		for _, e := range r.GeneralEdges {
			s.edges = append(s.edges, e.ID)
		}
		return s
	}
	ref, err := AxisStrideInternedOpts(g, AxisStrideOptions{Parallelism: 1, Restarts: 6})
	if err != nil {
		t.Fatal(err)
	}
	refSnap := take(ref)
	for _, slack := range []float64{0, 0.05} {
		var first *snap
		for _, par := range []int{1, 2, 8} {
			res, err := AxisStrideOpts(g, AxisStrideOptions{
				Parallelism: par, Restarts: 6, PruneSlack: slack,
			})
			if err != nil {
				t.Fatal(err)
			}
			got := take(res)
			if slack == 0 {
				// Off ⇒ byte-identical to the frozen baseline.
				if got.cost != refSnap.cost || !reflect.DeepEqual(got.labels, refSnap.labels) ||
					!reflect.DeepEqual(got.edges, refSnap.edges) {
					t.Errorf("par=%d slack=0: flat result diverges from interned baseline (cost %d vs %d)",
						par, got.cost, refSnap.cost)
				}
				if res.Stats.PrunedStarts != 0 {
					t.Errorf("par=%d slack=0: pruned %d starts, want 0", par, res.Stats.PrunedStarts)
				}
			}
			if slack > 0 && res.Stats.PrunedStarts == 0 {
				// The canonical seeds reach cost 0 here, so every
				// perturbed restart must hit the cutoff (deterministic).
				t.Errorf("par=%d slack=%g: pruning never engaged", par, slack)
			}
			if first == nil {
				first = &got
				t.Logf("slack=%g: cost=%d pruned=%d", slack, got.cost, res.Stats.PrunedStarts)
				continue
			}
			if got.cost != first.cost || !reflect.DeepEqual(got.labels, first.labels) ||
				!reflect.DeepEqual(got.edges, first.edges) {
				t.Errorf("par=%d slack=%g: result differs from par=1 (cost %d vs %d)",
					par, slack, got.cost, first.cost)
			}
		}
	}
}
