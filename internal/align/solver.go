package align

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/adg"
	"repro/internal/lp"
)

// OffsetSolver solves the per-template-axis offset RLPs, fanning the
// axes over a bounded worker pool (OffsetOptions.Parallelism) and — when
// constructed with NewOffsetSolver — warm-starting repeated solves under
// changing replication labelings from the previous round's basis (§6:
// only the objective changes between rounds, so the factored basis stays
// primal feasible and each re-solve runs phase 2 only).
//
// Every axis owns a private axisSolver, lp.Arena, lp.Stats, and result,
// so axes never share mutable state; Solve merges the per-axis results
// in axis order, which makes the outcome byte-identical for every
// Parallelism setting.
type OffsetSolver struct {
	g    *adg.Graph
	as   *AxisStrideResult
	opts OffsetOptions
	axes []*axisState
}

// axisState is the retained per-axis solver state across rounds.
type axisState struct {
	ax   *axisSolver
	warm bool // keep the basis and re-solve via WarmSolve
	prob *lp.Problem
	vars map[coefKey]lp.VarID
	// nf is the cached network classification of prob: the structure is
	// round-invariant under warmAll (only θ costs change), so the probe
	// runs once and every later round re-solves the flow directly.
	nf *lp.NetForm
	// red and blocks hold the presolved decomposition when the whole
	// problem is not network-form: the reduction (and with it the block
	// structure) is round-invariant under warmAll, so it runs once and
	// every round re-solves only the blocks whose θ costs changed —
	// clean blocks reuse their cached solution outright.
	red    *lp.Reduction
	blocks []*warmBlock
}

// warmBlock is one independent block of a presolved warm-path RLP.
type warmBlock struct {
	prob *lp.Problem
	// nf is the block's cached network classification; network-shaped
	// blocks re-solve as a flow every round, the rest keep a warm
	// simplex basis.
	nf *lp.NetForm
	// sol is the block's last solution; reused as long as the block
	// stays clean (no cost on any of its variables changed).
	sol   *lp.Solution
	dirty bool
}

// NewOffsetSolver returns a reusable solver for the graph. Repeated
// Solve calls with different replication labelings reuse each axis's
// tableau arena and (for the fixed-partition strategies) the previous
// basis. The one-shot Offsets function is equivalent to a single Solve.
func NewOffsetSolver(g *adg.Graph, as *AxisStrideResult, opts OffsetOptions) *OffsetSolver {
	return newOffsetSolver(g, as, opts, true)
}

func newOffsetSolver(g *adg.Graph, as *AxisStrideResult, opts OffsetOptions, reuse bool) *OffsetSolver {
	opts = opts.withDefaults()
	// Warm starts require the constraint matrix to be round-invariant,
	// which holds only for strategies with fixed partitions and a single
	// LP round; the refining strategies re-partition, so they stay cold.
	warm := reuse &&
		(opts.Strategy == StrategyFixed || opts.Strategy == StrategyUnroll || opts.Strategy == StrategySingle)
	s := &OffsetSolver{g: g, as: as, opts: opts}
	for t := 0; t < g.TemplateRank; t++ {
		s.axes = append(s.axes, &axisState{
			ax:   &axisSolver{g: g, as: as, axis: t, opts: opts, warmAll: warm},
			warm: warm,
		})
	}
	return s
}

// Solve computes the mobile offsets for every axis under repl (nil means
// no replication). It is not safe to call concurrently on one solver.
func (s *OffsetSolver) Solve(repl *ReplResult) (*OffsetResult, error) {
	if repl == nil {
		repl = NoReplication(s.g)
	}
	n := len(s.axes)
	perAxis := make([]*OffsetResult, n)
	errs := make([]error, n)
	run := func(t int) {
		st := s.axes[t]
		st.ax.repl = repl
		st.ax.stats = &lp.Stats{}
		r := newOffsetResult(s.g)
		if err := st.solve(r); err != nil {
			errs[t] = fmt.Errorf("align: axis %d: %w", t, err)
			return
		}
		r.Stats = *st.ax.stats
		perAxis[t] = r
	}
	if par := min(s.opts.Parallelism, n); par <= 1 {
		for t := 0; t < n; t++ {
			run(t)
		}
	} else {
		var wg sync.WaitGroup
		sem := make(chan struct{}, par)
		for t := 0; t < n; t++ {
			wg.Add(1)
			sem <- struct{}{}
			go func(t int) {
				defer func() { <-sem; wg.Done() }()
				run(t)
			}(t)
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	// Deterministic merge in axis order.
	res := newOffsetResult(s.g)
	for t, r := range perAxis {
		adg.MergeOffsetAxis(res.Offsets, r.Offsets, t)
		res.Approx += r.Approx
		res.Solves += r.Solves
		if r.LPVariables > res.LPVariables {
			res.LPVariables = r.LPVariables
		}
		if r.LPConstraints > res.LPConstraints {
			res.LPConstraints = r.LPConstraints
		}
		res.Stats.Add(r.Stats)
	}
	if math.Abs(res.Approx) < 1e-6 {
		// The optimum is integral at problem scale, so a sub-tolerance
		// sum is numeric dust — and its sign is an engine accident
		// (−1e-24 from the postsolve path prints as "-0"). Collapse it
		// so reports agree across engines.
		res.Approx = 0
	}
	res.Exact = ExactOffsetCost(s.g, repl, res.Offsets)
	return res, nil
}

// releaseScratch returns the per-axis tableau arenas to the scratch
// pool (a no-op when the solver runs without one). Call only once the
// solver is finished: warm bases and live tableaux read arena storage,
// so releasing between rounds would hand their memory to another solve.
func (s *OffsetSolver) releaseScratch() {
	for _, st := range s.axes {
		if st.ax.arena != nil {
			s.opts.scratch.putArena(st.ax.arena)
			st.ax.arena = nil
		}
		st.prob = nil
		st.vars = nil
		st.nf = nil
		st.red = nil
		st.blocks = nil
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// solve runs one round for this axis into res: cold (build + two-phase
// solve) the first time or for non-warm strategies, warm (θ cost rebuild
// + phase-2 re-optimization) afterwards.
func (st *axisState) solve(res *OffsetResult) error {
	ax := st.ax
	if !st.warm {
		return ax.solve(res)
	}
	if st.prob == nil {
		st.prob, st.vars = ax.buildRLP(ax.initialPartitions())
		if !ax.opts.NoNetPath {
			st.nf, _ = st.prob.NetworkForm()
		}
		if st.nf == nil {
			// Not network-shaped as a whole: presolve once (keeping the
			// zero-cost θ terms — their costs flip between rounds) and
			// warm-start per block. Blocks keeping a basis must not
			// share an arena, so they allocate their own tableaux.
			if red, ok := st.prob.Reduce(false); ok {
				st.red = red
				for i := range red.Blocks {
					wb := &warmBlock{prob: red.Blocks[i].Prob, dirty: true}
					wb.prob.KeepBasis()
					if !ax.opts.NoNetPath {
						wb.nf, _ = wb.prob.NetworkForm()
					}
					st.blocks = append(st.blocks, wb)
				}
			}
		}
		if st.red == nil {
			st.prob.KeepBasis()
		}
	} else {
		// Only the objective changes across rounds: a θ term counts 1
		// when its edge is live under the current labeling, 0 when the
		// edge has a replicated endpoint (§5.1). Under a presolved
		// decomposition a cost change dirties exactly the block holding
		// the θ; untouched blocks keep last round's solution.
		st.prob.SetStats(ax.stats)
		for eid, ths := range ax.thetas {
			cost := 0.0
			if ax.liveEdge(ax.g.Edges[eid]) {
				cost = 1
			}
			for _, th := range ths {
				if st.prob.Cost(th) == cost {
					continue
				}
				st.prob.SetCost(th, cost)
				if st.red != nil {
					if bi, bv, ok := st.red.BlockVar(th); ok {
						st.blocks[bi].prob.SetCost(bv, cost)
						st.blocks[bi].dirty = true
					}
				}
			}
		}
	}
	if st.prob.NumVariables() > res.LPVariables {
		res.LPVariables = st.prob.NumVariables()
	}
	if st.prob.NumConstraints() > res.LPConstraints {
		res.LPConstraints = st.prob.NumConstraints()
	}
	var sol *lp.Solution
	if st.nf != nil {
		// Network-shaped axis: every round (cold and warm) is a direct
		// flow solve — costs are re-read from the problem, so the §6 cost
		// flips are honored without any basis to keep warm.
		sol, _ = solveNetForm(st.prob, st.nf, ax.stats)
	}
	if sol == nil && st.red != nil {
		var err error
		sol, err = st.solveBlocksWarm()
		if err != nil {
			return err
		}
	}
	if sol == nil {
		var err error
		sol, err = st.prob.WarmSolve()
		if err != nil {
			return err
		}
	}
	res.Solves++
	res.Approx += sol.Objective
	coefs := make(map[coefKey]float64, len(st.vars))
	for k, v := range st.vars {
		coefs[k] = sol.Value(v)
	}
	ints := roundCoefs(coefs)
	ax.store(res, ints)
	if ax.opts.Strategy == StrategySingle {
		ax.steepestDescent(res, ints)
	}
	// See axisSolver.solve: surface a mid-descent cancellation instead of
	// delivering a partially optimized labeling as success.
	return ax.ctxErr()
}

// solveBlocksWarm re-solves the dirty blocks of a presolved warm-path
// axis and stitches the full solution from the per-block solutions.
// Clean blocks (no cost change since their last solve) are reused
// without any solver work and without touching the effort counters.
func (st *axisState) solveBlocksWarm() (*lp.Solution, error) {
	ax := st.ax
	sols := make([]*lp.Solution, len(st.blocks))
	for i, wb := range st.blocks {
		if wb.dirty || wb.sol == nil {
			wb.prob.SetStats(ax.stats)
			if ax.stats != nil {
				ax.stats.Blocks++
			}
			var bsol *lp.Solution
			if wb.nf != nil {
				bsol, _ = solveNetForm(wb.prob, wb.nf, ax.stats)
			}
			if bsol == nil {
				var err error
				bsol, err = wb.prob.WarmSolve()
				if err != nil {
					return nil, err
				}
			}
			wb.sol, wb.dirty = bsol, false
		}
		sols[i] = wb.sol
	}
	return st.red.Postsolve(sols), nil
}
