package align

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/lp"
)

// Four-way differential property test for the offset LP engine tiers:
// the dense tableau, the sparse revised simplex, the network-dual
// fast path, and the presolved block decomposition must agree —
// identical feasibility verdicts, objectives within 1e-6, and
// primal-feasible solutions (lp.Problem.Residual; for the presolved
// leg the residual is taken on the *original* problem, so Postsolve's
// reconstruction of eliminated variables is itself under test) — on
// randomly generated RLP-shaped problems. The generator emits the
// same row shapes buildRLP does (θ pairs over port-offset differences,
// difference equalities, anchor pins), plus deliberately non-network
// and infeasible variants so the fallback and error paths are exercised
// under the same lens. CI runs this under -race (scripts/ci.sh).

// diffShape selects the structural family of a generated problem.
type diffShape int

const (
	shapeNetwork    diffShape = iota // network-pure: the fast path must fire
	shapeFallback                    // a 3-var equality defeats classification
	shapeInfeasible                  // contradictory equality chain
)

// diffSpec is a recorded random problem so the identical instance can
// be rebuilt once per engine (Solve mutates warm state, and each build
// must see its own Options).
type diffSpec struct {
	shape diffShape
	n     int   // node variables x0..x{n-1}, free, cost 0
	gt    []int // ground-truth witness making the instance feasible

	pins  []diffPin
	eqs   []diffEq
	terms []diffTerm
	tris  []diffTri // 3-var equalities (shapeFallback only)
}

type diffPin struct {
	v lp.VarID
	a float64 // a·x_v = a·gt[v]
}

type diffEq struct {
	a, b lp.VarID
	c    float64 // c·x_a − c·x_b = c·(gt[a] − gt[b]) (+3 when infeasible)
	bad  bool
}

// diffTerm encodes θ ≥ |A·(x_u − x_v) − R| as the adjacent GE pair
// buildRLP emits; v < 0 means a single-variable term.
type diffTerm struct {
	u, v lp.VarID
	av   float64 // A
	r    float64 // R = A·D with D integral, so the flow path accepts it
	w    float64 // θ cost
}

type diffTri struct {
	a, b, c lp.VarID
}

func genDiffSpec(rng *rand.Rand, shape diffShape) diffSpec {
	n := 3 + rng.Intn(10)
	sp := diffSpec{shape: shape, n: n, gt: make([]int, n)}
	for i := range sp.gt {
		sp.gt[i] = rng.Intn(17) - 8
	}
	for v := 0; v < n; v++ {
		if rng.Float64() < 0.25 {
			sp.pins = append(sp.pins, diffPin{v: lp.VarID(v), a: float64(1 + rng.Intn(2))})
		}
	}
	for k := rng.Intn(n); k > 0; k-- {
		a, b := rng.Intn(n), rng.Intn(n)
		if a == b {
			continue
		}
		sp.eqs = append(sp.eqs, diffEq{a: lp.VarID(a), b: lp.VarID(b), c: float64(1 + rng.Intn(2))})
	}
	if shape == shapeInfeasible {
		// A contradictory cycle: two equalities on the same pair whose
		// displacements differ. The network contraction declines it and
		// both simplex cores must report infeasibility.
		a, b := lp.VarID(0), lp.VarID(1)
		sp.eqs = append(sp.eqs,
			diffEq{a: a, b: b, c: 1},
			diffEq{a: a, b: b, c: 1, bad: true})
	}
	nt := 3 + rng.Intn(12)
	for k := 0; k < nt; k++ {
		t := diffTerm{
			u:  lp.VarID(rng.Intn(n)),
			v:  -1,
			av: float64(int(1) << rng.Intn(3)), // 1, 2, 4
			w:  float64(1 + rng.Intn(5)),
		}
		if rng.Float64() < 0.8 {
			v := lp.VarID(rng.Intn(n))
			if v != t.u {
				t.v = v
			}
		}
		t.r = t.av * float64(rng.Intn(13)-6) // R = A·D, D integral
		sp.terms = append(sp.terms, t)
	}
	if shape == shapeFallback && n >= 3 {
		// Pin-folding would legitimately reduce the 3-var row to network
		// shape if its variables were pinned, so keep x0..x2 unpinned.
		kept := sp.pins[:0]
		for _, pin := range sp.pins {
			if pin.v > 2 {
				kept = append(kept, pin)
			}
		}
		sp.pins = kept
		sp.tris = append(sp.tris, diffTri{a: 0, b: 1, c: 2})
	}
	return sp
}

// build materializes the spec as a fresh lp.Problem.
func (sp diffSpec) build() *lp.Problem {
	p := lp.NewProblem()
	for i := 0; i < sp.n; i++ {
		p.AddVariable("x", 0, true)
	}
	for _, t := range sp.terms {
		th := p.AddVariable("th", t.w, false)
		pos := map[lp.VarID]float64{th: 1, t.u: -t.av}
		neg := map[lp.VarID]float64{th: 1, t.u: t.av}
		if t.v >= 0 {
			pos[t.v] = t.av
			neg[t.v] = -t.av
		}
		p.AddConstraint(pos, lp.GE, -t.r) // θ − A(x_u − x_v) ≥ −R
		p.AddConstraint(neg, lp.GE, t.r)  // θ + A(x_u − x_v) ≥ R
	}
	for _, pin := range sp.pins {
		p.AddConstraint(map[lp.VarID]float64{pin.v: pin.a}, lp.EQ, pin.a*float64(sp.gt[pin.v]))
	}
	for _, e := range sp.eqs {
		rhs := e.c * float64(sp.gt[e.a]-sp.gt[e.b])
		if e.bad {
			rhs += 3 * e.c
		}
		p.AddConstraint(map[lp.VarID]float64{e.a: e.c, e.b: -e.c}, lp.EQ, rhs)
	}
	for _, tr := range sp.tris {
		rhs := float64(sp.gt[tr.a] + sp.gt[tr.b] - 2*sp.gt[tr.c])
		p.AddConstraint(map[lp.VarID]float64{tr.a: 1, tr.b: 1, tr.c: -2}, lp.EQ, rhs)
	}
	return p
}

// TestDifferentialEngines is the acceptance property of ISSUE 5
// (extended by ISSUE 8 with the presolved leg): on ~200 random RLPs
// the four tiers agree on feasibility, objective (1e-6), and each
// produced solution is primal feasible.
func TestDifferentialEngines(t *testing.T) {
	const cases = 200
	rng := rand.New(rand.NewSource(20260806))
	var netFired, netPure, fellBack, infeasible, presolved int
	for i := 0; i < cases; i++ {
		shape := shapeNetwork
		switch {
		case i%5 == 3:
			shape = shapeFallback
		case i%10 == 9:
			shape = shapeInfeasible
		}
		sp := genDiffSpec(rng, shape)

		dp := sp.build()
		dp.SetOptions(lp.Options{Engine: lp.EngineDense})
		dsol, derr := dp.Solve()

		spp := sp.build()
		spp.SetOptions(lp.Options{Engine: lp.EngineSparse})
		ssol, serr := spp.Solve()

		if (derr == nil) != (serr == nil) {
			t.Fatalf("case %d (shape %d): feasibility verdicts differ: dense err=%v sparse err=%v",
				i, shape, derr, serr)
		}

		np := sp.build()
		nsol, nok := trySolveNet(np, &lp.Stats{})

		// Presolved leg: Reduce + per-block solve + Postsolve, driven
		// exactly as the offset solver's cold path drives it. A nil
		// arena is fine: each block then allocates its own tableau.
		pp := sp.build()
		pax := &axisSolver{opts: OffsetOptions{}, stats: &lp.Stats{}}
		psol, pok, perr := pax.solveReduced(pp)

		if derr != nil {
			if shape != shapeInfeasible {
				t.Fatalf("case %d (shape %d): unexpected infeasibility: %v", i, shape, derr)
			}
			if nok {
				t.Fatalf("case %d: network path claimed success on an infeasible problem", i)
			}
			if pok && perr == nil {
				t.Fatalf("case %d: presolved path claimed success on an infeasible problem", i)
			}
			infeasible++
			continue
		}
		if perr != nil {
			t.Fatalf("case %d (shape %d): presolved path failed on a feasible problem: %v", i, shape, perr)
		}

		tol := 1e-6 * (1 + math.Abs(dsol.Objective))
		if d := math.Abs(dsol.Objective - ssol.Objective); d > tol {
			t.Fatalf("case %d (shape %d): dense obj %.9g vs sparse obj %.9g (Δ=%g)",
				i, shape, dsol.Objective, ssol.Objective, d)
		}
		if r := dp.Residual(dsol.Values()); r > 1e-6 {
			t.Fatalf("case %d: dense solution infeasible, residual %g", i, r)
		}
		if r := spp.Residual(ssol.Values()); r > 1e-6 {
			t.Fatalf("case %d: sparse solution infeasible, residual %g", i, r)
		}
		if pok {
			presolved++
			if d := math.Abs(psol.Objective - dsol.Objective); d > tol {
				t.Fatalf("case %d (shape %d): presolved obj %.9g vs dense obj %.9g (Δ=%g)",
					i, shape, psol.Objective, dsol.Objective, d)
			}
			if r := pp.Residual(psol.Values()); r > 1e-6 {
				t.Fatalf("case %d: postsolved solution infeasible on the original problem, residual %g", i, r)
			}
		}

		switch shape {
		case shapeNetwork:
			netPure++
			if !nok {
				t.Fatalf("case %d: network-pure problem did not take the fast path", i)
			}
		case shapeFallback:
			fellBack++
			if nok {
				t.Fatalf("case %d: fallback-shaped problem classified as a network", i)
			}
		}
		if nok {
			netFired++
			if d := math.Abs(nsol.Objective - dsol.Objective); d > tol {
				t.Fatalf("case %d: network obj %.9g vs dense obj %.9g (Δ=%g)",
					i, nsol.Objective, dsol.Objective, d)
			}
			if r := np.Residual(nsol.Values()); r > 1e-6 {
				t.Fatalf("case %d: network solution infeasible, residual %g", i, r)
			}
		}
	}
	if netPure == 0 || fellBack == 0 || infeasible == 0 {
		t.Fatalf("generator imbalance: pure=%d fallback=%d infeasible=%d", netPure, fellBack, infeasible)
	}
	if netFired < netPure {
		t.Fatalf("fast path fired on %d of %d network-pure cases", netFired, netPure)
	}
	if presolved < cases/4 {
		t.Fatalf("presolve reduced only %d of %d feasible cases — generator or Reduce regressed", presolved, cases)
	}
	t.Logf("differential: %d cases, %d network-solved, %d presolved, %d fallback, %d infeasible",
		cases, netFired, presolved, fellBack, infeasible)
}
