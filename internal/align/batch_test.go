package align

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/adg"
	"repro/internal/lp"
)

// TestCacheKeyPresolveToggle pins the presolve toggle into the content
// key: presolve on and off can land on different degenerate vertices of
// the same optimal face, so a cached result must never be served across
// the toggle.
func TestCacheKeyPresolveToggle(t *testing.T) {
	g := mustGraph(t, fig1)
	on := Options{}
	off := Options{}
	off.Offset.Presolve = lp.PresolveOff
	if cacheKey(g, on) == cacheKey(g, off) {
		t.Error("cache keys equal across the Presolve toggle")
	}
}

// TestCacheGetZeroAlloc pins the batch engine's hot path: a warm-cache
// hit — shard select, map lookup, LRU move-to-front, atomic counter —
// performs zero allocations, so a steady stream of repeat compiles
// costs only the key hash.
func TestCacheGetZeroAlloc(t *testing.T) {
	g := mustGraph(t, fig1)
	c := NewCache(8)
	// ReplicationRounds is part of the content key; pin it to the value
	// Align defaults to so cacheKey here matches the stored entry.
	opts := Options{Cache: c, ReplicationRounds: 2}
	if _, err := Align(g, opts); err != nil {
		t.Fatal(err)
	}
	key := cacheKey(g, opts)
	if c.get(key) == nil {
		t.Fatal("warm cache missed its own key")
	}
	allocs := testing.AllocsPerRun(100, func() {
		if c.get(key) == nil {
			t.Fatal("hit path missed")
		}
	})
	if allocs != 0 {
		t.Errorf("cache hit path allocates %.1f objects per Get, want 0", allocs)
	}
}

// TestCacheShardingAndEviction checks that keys spread over every shard
// by their first hex digit, that the capacity bound is global (keys
// hashing into one shard never evict while the cache has room — a
// per-shard quota once recomputed duplicate batch programs, see
// TestBatchDeterminism/duplicates), and that eviction at capacity is
// LRU within the inserting shard, stealing from another shard only
// when the inserting shard has nothing else to give.
func TestCacheShardingAndEviction(t *testing.T) {
	c := NewCache(cacheShards) // one entry per shard
	res := &Result{}
	hex := "0123456789abcdef"
	for i := 0; i < cacheShards; i++ {
		c.put(fmt.Sprintf("%c-key", hex[i]), res)
	}
	if got := c.Len(); got != cacheShards {
		t.Fatalf("distinct-shard keys: Len = %d, want %d", got, cacheShards)
	}
	for i := range c.shards {
		if n := c.shards[i].order.Len(); n != 1 {
			t.Errorf("shard %d holds %d entries, want 1", i, n)
		}
	}

	// Global bound: a cache with room keeps same-shard keys even when
	// they all hash into one shard.
	c = NewCache(2 * cacheShards)
	c.put("a-first", res)
	c.put("a-second", res)
	c.put("a-third", res)
	if c.Len() != 3 {
		t.Fatalf("below capacity, Len = %d after three same-shard puts, want 3", c.Len())
	}
	for _, k := range []string{"a-first", "a-second", "a-third"} {
		if c.get(k) == nil {
			t.Errorf("same-shard key %q evicted below capacity", k)
		}
	}

	// At capacity, eviction is LRU within the inserting key's shard:
	// NewCache(2) keeps two active shards; the "a-" keys share one.
	c = NewCache(2)
	c.put("a-first", res)
	c.put("a-second", res)
	if c.get("a-first") == nil { // touch: now a-second is LRU
		t.Fatal("a-first missing before eviction")
	}
	c.put("a-third", res)
	if c.get("a-first") == nil {
		t.Error("recently used entry was evicted")
	}
	if c.get("a-second") != nil {
		t.Error("least recently used entry survived eviction")
	}
	if c.get("a-third") == nil {
		t.Error("new entry missing after eviction")
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d after eviction, want capacity 2", c.Len())
	}

	// A full cache whose new key lands in an empty shard steals the LRU
	// of a non-empty shard instead of exceeding the bound ("b-steal"
	// hashes to the second active shard of a capacity-2 cache).
	c.put("b-steal", res)
	if c.Len() != 2 {
		t.Errorf("Len = %d after cross-shard steal, want 2", c.Len())
	}
	if c.get("b-steal") == nil {
		t.Error("fresh entry missing after cross-shard steal")
	}
	if c.get("a-third") == nil {
		t.Error("most recently used entry of the donor shard was stolen")
	}
	if c.get("a-first") != nil {
		t.Error("donor shard LRU survived the steal")
	}
}

// TestCacheSingleflight checks the miss-collapse contract of Cache.do:
// concurrent callers of one key run compute exactly once and share the
// result, and failed computes are not cached (the next caller retries).
func TestCacheSingleflight(t *testing.T) {
	c := NewCache(8)
	const callers = 8
	var (
		started = make(chan struct{})
		calls   atomic.Int64
		wg      sync.WaitGroup
		results [callers]*Result
	)
	want := &Result{}
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-started
			res, _, err := c.do(context.Background(), "deadbeef", func() (*Result, error) {
				calls.Add(1)
				time.Sleep(20 * time.Millisecond) // let the others pile up
				return want, nil
			})
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
			}
			results[i] = res
		}(i)
	}
	close(started)
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Errorf("compute ran %d times for one key, want 1", n)
	}
	computes, shared := c.FlightStats()
	hits, _ := c.Counters()
	if computes != 1 {
		t.Errorf("FlightStats computes = %d, want 1", computes)
	}
	// Every non-leader was served without computing: either it joined the
	// flight or arrived after completion and hit the cache.
	if shared+hits != callers-1 {
		t.Errorf("shared (%d) + hits (%d) = %d, want %d", shared, hits, shared+hits, callers-1)
	}
	for i, res := range results {
		if res != want {
			t.Errorf("caller %d got a different result", i)
		}
	}

	// Errors are not cached: both calls compute.
	boom := errors.New("boom")
	for i := 0; i < 2; i++ {
		_, _, err := c.do(context.Background(), "facade", func() (*Result, error) {
			calls.Add(1)
			return nil, boom
		})
		if !errors.Is(err, boom) {
			t.Fatalf("call %d: err = %v, want boom", i, err)
		}
	}
	if n := calls.Load(); n != 3 {
		t.Errorf("failed compute memoized: %d total calls, want 3", n)
	}
}

// TestAlignSingleflight runs the real pipeline concurrently on
// structurally identical graphs sharing one cache: exactly one solve
// runs, every caller's result is bound to its own graph, and leader and
// followers agree on the alignment.
func TestAlignSingleflight(t *testing.T) {
	const callers = 6
	c := NewCache(8)
	opts := Options{Cache: c}
	graphs := make([]*adg.Graph, callers)
	for i := range graphs {
		graphs[i] = mustGraph(t, fig1)
	}
	var wg sync.WaitGroup
	results := make([]*Result, callers)
	errs := make([]error, callers)
	start := make(chan struct{})
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			results[i], errs[i] = Align(graphs[i], opts)
		}(i)
	}
	close(start)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", i, err)
		}
	}
	computes, _ := c.FlightStats()
	if computes != 1 {
		t.Errorf("identical concurrent solves ran the pipeline %d times, want 1", computes)
	}
	leaders := 0
	for i, res := range results {
		if res.Graph != graphs[i] {
			t.Errorf("caller %d: result bound to a foreign graph", i)
		}
		if !res.CacheHit {
			leaders++
		}
		if got, want := res.Assignment.String(), results[0].Assignment.String(); got != want {
			t.Errorf("caller %d: assignment differs from caller 0", i)
		}
		if res.Offset.Exact != results[0].Offset.Exact {
			t.Errorf("caller %d: exact cost %d != %d", i, res.Offset.Exact, results[0].Offset.Exact)
		}
	}
	if leaders != 1 {
		t.Errorf("%d results report CacheHit=false, want exactly the leader", leaders)
	}
}

// TestSchedulerLeasing pins the budget arithmetic and the concurrency
// ceiling: leases divide the budget exactly, and Map never runs more
// than budget workers' worth of jobs at once.
func TestSchedulerLeasing(t *testing.T) {
	s := NewScheduler(8)
	for _, tc := range []struct{ n, lease int }{
		{1, 8}, {2, 4}, {3, 2}, {4, 2}, {5, 1}, {8, 1}, {64, 1},
	} {
		if got := s.lease(tc.n); got != tc.lease {
			t.Errorf("budget 8, %d jobs: lease = %d, want %d", tc.n, got, tc.lease)
		}
	}

	const budget = 4
	s = NewScheduler(budget)
	var cur, peak atomic.Int64
	order := make([]int, 16)
	s.Map(len(order), func(i, lease int) {
		if lease != 1 {
			t.Errorf("job %d: lease = %d, want 1 (batch wider than budget)", i, lease)
		}
		if n := cur.Add(1); n > peak.Load() {
			peak.Store(n)
		}
		time.Sleep(time.Millisecond)
		order[i] = i * i
		cur.Add(-1)
	})
	if p := peak.Load(); p > budget {
		t.Errorf("Map ran %d jobs concurrently, budget is %d", p, budget)
	}
	for i, v := range order {
		if v != i*i {
			t.Errorf("slot %d = %d, want %d (results must land at their own index)", i, v, i*i)
		}
	}
}

// TestAlignBatchOrderAndErrors checks slot discipline: results arrive
// in input order and a batch is all-slots-populated even when graphs
// repeat (dedup must not leave follower slots nil).
func TestAlignBatchOrderAndErrors(t *testing.T) {
	srcs := []string{fig1, fig1, fig1, fig1}
	graphs := make([]*adg.Graph, len(srcs))
	for i, src := range srcs {
		graphs[i] = mustGraph(t, src)
	}
	cache := NewCache(len(graphs))
	results, errs := AlignBatch(graphs, Options{Cache: cache}, BatchOptions{Workers: 2})
	for i, err := range errs {
		if err != nil {
			t.Fatalf("slot %d: %v", i, err)
		}
		if results[i] == nil {
			t.Fatalf("slot %d: nil result", i)
		}
		if results[i].Graph != graphs[i] {
			t.Errorf("slot %d bound to a foreign graph", i)
		}
	}
	computes, _ := cache.FlightStats()
	if computes != 1 {
		t.Errorf("4 identical programs ran the pipeline %d times, want 1", computes)
	}
}

// TestScratchPoolReuse checks that pooled scratch state round-trips:
// a released intern table comes back reset, and a nil pool hands out
// fresh state instead of panicking (the pipeline runs pool-less outside
// the batch engine).
func TestScratchPoolReuse(t *testing.T) {
	var sp scratchPool
	tab := sp.getIntern()
	tab.intern(identityLabel(2))
	if tab.size() != 1 {
		t.Fatalf("size = %d after intern, want 1", tab.size())
	}
	sp.putIntern(tab)
	got := sp.getIntern()
	if got != tab {
		t.Skip("sync.Pool dropped the entry (GC ran); nothing to assert")
	}
	if got.size() != 0 {
		t.Errorf("pooled table not reset: size = %d", got.size())
	}

	var nilPool *scratchPool
	if nilPool.getIntern() == nil {
		t.Error("nil pool returned nil intern table")
	}
	if nilPool.getArena() == nil {
		t.Error("nil pool returned nil arena")
	}
	nilPool.putIntern(nil)
	nilPool.putArena(nil)
}
