package align

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/adg"
	"repro/internal/expr"
	"repro/internal/lp"
	"repro/internal/space"
)

// Strategy selects among the §4.2 algorithms for mobile offset alignment.
type Strategy int

// The five algorithms of §4.2.
const (
	// StrategyFixed partitions every iteration range into m subranges and
	// solves one RLP; the paper's recommended compromise (m=3 → within
	// 22% of optimal, m=5 → 8%).
	StrategyFixed Strategy = iota
	// StrategyUnroll makes every iteration its own subrange — exact but
	// impractical unless the iteration count is small.
	StrategyUnroll
	// StrategySingle approximates the whole range as one subrange and
	// then improves the exact cost by steepest descent (state-space
	// search).
	StrategySingle
	// StrategyZeroTrack starts with two equal subranges and iteratively
	// moves the boundary to the span's zero crossing.
	StrategyZeroTrack
	// StrategyRecursive starts with one subrange and recursively splits
	// subranges containing a zero crossing.
	StrategyRecursive
)

func (s Strategy) String() string {
	switch s {
	case StrategyFixed:
		return "fixed-partition"
	case StrategyUnroll:
		return "unrolling"
	case StrategySingle:
		return "state-space-search"
	case StrategyZeroTrack:
		return "zero-crossing-tracking"
	case StrategyRecursive:
		return "recursive-refinement"
	}
	return "?"
}

// OffsetOptions configures the mobile offset solver.
type OffsetOptions struct {
	Strategy Strategy
	// M is the number of subranges per loop level for StrategyFixed
	// (default 3).
	M int
	// MaxRefine bounds the re-solve iterations of the zero-crossing and
	// recursive strategies (default 6).
	MaxRefine int
	// UnrollCap bounds the number of subranges per edge for
	// StrategyUnroll (default 4096).
	UnrollCap int
	// Static forbids mobile offsets: every loop-variable coefficient is
	// pinned to zero, so offsets are plain integers. Used to reproduce
	// the paper's static-vs-mobile comparisons.
	Static bool
	// Parallelism bounds the worker pool solving per-template-axis RLPs
	// concurrently (the axes are independent problems, §4). Values ≤ 0
	// mean GOMAXPROCS. The result is identical for every setting: each
	// axis solves into its own result and the merge is in axis order.
	Parallelism int
	// MaxIter caps the simplex iterations of each LP solve
	// (lp.Options.MaxIter); values <= 0 derive the budget from the
	// problem size. Exhaustion fails the solve with lp.ErrBudget.
	MaxIter int64
	// Engine forces a simplex core for every offset LP
	// (lp.EngineDense / lp.EngineSparse). The default, lp.EngineAuto,
	// picks the sparse revised simplex for large low-density instances
	// and the dense tableau otherwise. Differential tests and benchmark
	// baselines force a core; production callers leave it auto.
	Engine lp.Engine
	// NoNetPath disables the network-dual fast path: axes whose RLP is
	// network-shaped (every θ term couples at most two offsets, no
	// per-LIV unknowns) are normally solved as a min-cost circulation
	// without running any simplex. The toggle exists for differential
	// testing and baseline measurement; the fast path falls back to the
	// simplex transparently whenever its preconditions fail.
	NoNetPath bool
	// Presolve gates the RLP presolver (lp.Problem.Reduce): pins and
	// difference-equality chains are contracted out, zero-weight θ
	// terms dropped, and the residue split into independent blocks
	// solved per-block (network fast path per block where it applies,
	// simplex otherwise). The default, lp.PresolveAuto, is on;
	// lp.PresolveOff solves every RLP exactly as built (differential
	// testing, baseline measurement).
	Presolve lp.PresolveMode

	// scratch, when non-nil, recycles tableau arenas across solves.
	// Threaded in by the pipeline from Options.scratch.
	scratch *scratchPool

	// ctx, when non-nil, cancels the solve between refinement rounds and
	// (amortized) inside simplex iterations. Threaded in by the pipeline
	// from Options.ctx.
	ctx context.Context
}

func (o OffsetOptions) withDefaults() OffsetOptions {
	if o.M <= 0 {
		o.M = 3
	}
	if o.MaxRefine <= 0 {
		o.MaxRefine = 6
	}
	if o.UnrollCap <= 0 {
		o.UnrollCap = 4096
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	return o
}

// OffsetResult is the outcome of (mobile) offset alignment.
type OffsetResult struct {
	// Offsets maps port ID → per-template-axis mobile offset.
	Offsets map[int][]expr.Affine
	// Approx is the summed LP objective: the subrange approximation of
	// the grid-metric realignment cost.
	Approx float64
	// Exact is the exact grid-metric realignment cost of the rounded
	// solution (excluding replicated edges).
	Exact int64
	// LPVariables and LPConstraints count the largest single LP solved.
	LPVariables, LPConstraints int
	// Solves counts LP solves across all axes and refinement rounds.
	Solves int
	// Stats is the accumulated LP solver effort: cold solves,
	// warm-started solves (basis reuse across §6 replication rounds),
	// pivots, and wall time per simplex phase.
	Stats lp.Stats
}

// coefKey identifies one unknown coefficient: the LIV coefficient (or
// constant term when LIV == "") of a port's offset on the current axis.
type coefKey struct {
	port int
	liv  string // "" = constant term
}

// Offsets solves mobile offset alignment (§4) for every template axis
// under the given axis/stride labels and replication labeling. The axes
// are independent problems and solve concurrently under
// OffsetOptions.Parallelism; callers that re-solve under changing
// replication labelings (the §6 iteration) should hold a NewOffsetSolver
// instead, which warm-starts each round from the previous basis.
func Offsets(g *adg.Graph, as *AxisStrideResult, repl *ReplResult, opts OffsetOptions) (*OffsetResult, error) {
	s := newOffsetSolver(g, as, opts, false)
	defer s.releaseScratch()
	return s.Solve(repl)
}

func newOffsetResult(g *adg.Graph) *OffsetResult {
	res := &OffsetResult{Offsets: map[int][]expr.Affine{}}
	for _, p := range g.Ports {
		offs := make([]expr.Affine, g.TemplateRank)
		for t := range offs {
			offs[t] = expr.Const(0)
		}
		res.Offsets[p.ID] = offs
	}
	return res
}

type axisSolver struct {
	g    *adg.Graph
	as   *AxisStrideResult
	repl *ReplResult
	axis int
	opts OffsetOptions

	arena *lp.Arena // tableau storage reused across this axis's solves
	stats *lp.Stats // per-axis effort accounting (merged post-join)
	// warmAll builds the RLP over all edges — dead (replicated) edges
	// keep their θ terms at objective cost 0 — so the constraint matrix
	// is invariant across §6 replication rounds and the basis can be
	// reused; thetas records each edge's θ variables for the per-round
	// cost rebuild.
	warmAll bool
	thetas  map[int][]lp.VarID
	// memoJobs, when non-nil, memoizes the per-(edge, subrange) moment
	// sums across refinement rounds: a refining strategy re-partitions
	// only the edges whose span crosses zero, so every unchanged
	// subrange reuses last round's moments instead of re-summing them.
	memoJobs map[int][]termJob
}

// newTheta adds one θ variable for edge e, at cost 0 when the edge is
// currently dead under warmAll (the cost is rebuilt every round).
func (ax *axisSolver) newTheta(prob *lp.Problem, e *adg.Edge) lp.VarID {
	cost := 1.0
	if ax.warmAll && !ax.liveEdge(e) {
		cost = 0
	}
	th := prob.AddVariable(fmt.Sprintf("theta[e%d]", e.ID), cost, false)
	if ax.thetas != nil {
		ax.thetas[e.ID] = append(ax.thetas[e.ID], th)
	}
	return th
}

// ctxErr returns the solve's cancellation error, or nil.
func (ax *axisSolver) ctxErr() error {
	if ax.opts.ctx == nil {
		return nil
	}
	return ax.opts.ctx.Err()
}

// liveEdge reports whether the edge contributes offset cost on this axis:
// edges with a replicated endpoint are discarded (§5.1 — a replicated
// tail needs no communication; a replicated head costs the same
// regardless of the tail's offset).
func (ax *axisSolver) liveEdge(e *adg.Edge) bool {
	return !ax.repl.Replicated(e.Src, ax.axis) && !ax.repl.Replicated(e.Dst, ax.axis)
}

func (ax *axisSolver) solve(res *OffsetResult) error {
	parts := ax.initialPartitions()
	var coefs map[coefKey]float64
	var obj float64
	rounds := 1
	if ax.opts.Strategy == StrategyZeroTrack || ax.opts.Strategy == StrategyRecursive {
		rounds = ax.opts.MaxRefine
		ax.memoJobs = map[int][]termJob{}
	}
	for round := 0; round < rounds; round++ {
		if err := ax.ctxErr(); err != nil {
			return err
		}
		var err error
		coefs, obj, err = ax.solveRLP(parts, res)
		if err != nil {
			return err
		}
		res.Solves++
		if ax.opts.Strategy != StrategyZeroTrack && ax.opts.Strategy != StrategyRecursive {
			break
		}
		newParts, changed := ax.refinePartitions(parts, coefs)
		if !changed {
			break
		}
		parts = newParts
	}
	// Round to integers and store.
	ints := roundCoefs(coefs)
	ax.store(res, ints)
	res.Approx += obj
	if ax.opts.Strategy == StrategySingle {
		ax.steepestDescent(res, ints)
	}
	// A cancellation that arrived mid-descent left a feasible but
	// partially optimized labeling; report it as an error so a canceled
	// solve never delivers a result that differs from an uncanceled one.
	return ax.ctxErr()
}

// initialPartitions builds the per-edge subrange decomposition of the
// iteration space per the strategy.
func (ax *axisSolver) initialPartitions() map[int][]space.Space {
	parts := map[int][]space.Space{}
	for _, e := range ax.g.Edges {
		if !ax.warmAll && !ax.liveEdge(e) {
			continue
		}
		sp := e.Space()
		conc, ok := sp.Concrete()
		if !ok || conc.Rank() == 0 {
			continue // single symbolic subrange handled separately
		}
		var m int
		switch ax.opts.Strategy {
		case StrategyFixed:
			m = ax.opts.M
		case StrategyUnroll:
			m = ax.opts.UnrollCap
		case StrategySingle, StrategyRecursive:
			m = 1
		case StrategyZeroTrack:
			m = 2
		}
		subs := conc.SubSpaces(m)
		if ax.opts.Strategy == StrategyUnroll && int64(len(subs)) > int64(ax.opts.UnrollCap) {
			subs = conc.SubSpaces(ax.opts.M)
		}
		parts[e.ID] = subs
	}
	return parts
}

// solveRLP builds and solves one rounded-linear-programming instance for
// the current axis with the given subrange partitions.
func (ax *axisSolver) solveRLP(parts map[int][]space.Space, res *OffsetResult) (map[coefKey]float64, float64, error) {
	prob, vars := ax.buildRLP(parts)
	if prob.NumVariables() > res.LPVariables {
		res.LPVariables = prob.NumVariables()
	}
	if prob.NumConstraints() > res.LPConstraints {
		res.LPConstraints = prob.NumConstraints()
	}
	sol, err := ax.solveProb(prob)
	if err != nil {
		return nil, 0, err
	}
	out := map[coefKey]float64{}
	for k, v := range vars {
		out[k] = sol.Value(v)
	}
	return out, sol.Objective, nil
}

// solveProb solves one RLP instance, cheapest engine first: the
// network-dual fast path when the whole problem has network structure
// (and the path is enabled), then the presolve/block-split reduction
// (which routes network-shaped blocks to the flow solver even when the
// whole RLP is not network-form), and finally the plain simplex. Every
// tier is exact and self-certifying, so a decline at any stage falls
// through without observable effect beyond the effort counters.
func (ax *axisSolver) solveProb(prob *lp.Problem) (*lp.Solution, error) {
	if !ax.opts.NoNetPath {
		if sol, ok := trySolveNet(prob, ax.stats); ok {
			return sol, nil
		}
	}
	if sol, ok, err := ax.solveReduced(prob); ok || err != nil {
		return sol, err
	}
	return prob.Solve()
}

// presolveFloor is the RLP size floor (variables + constraints) below
// which the offset solver skips the presolver: on tiny axis problems
// the reduction's snapshot-and-contract pass costs more than the
// handful of simplex pivots it saves, and E17 measured the fig1 RLPs
// (183) as a net ~9% regression under presolve while the mixed
// partial-network workload (256) and the rank4-dp RLPs (558) gain from
// it. 220 splits those measured sizes. The floor lives here, not in
// lp.Options' default, so lp's own presolve unit and differential
// tests keep exercising the reduction at every size.
const presolveFloor = 220

// buildRLP constructs the RLP instance for the current axis.
func (ax *axisSolver) buildRLP(parts map[int][]space.Space) (*lp.Problem, map[coefKey]lp.VarID) {
	prob := lp.NewProblem()
	if ax.arena == nil {
		ax.arena = ax.opts.scratch.getArena()
	}
	prob.SetArena(ax.arena)
	prob.SetStats(ax.stats)
	prob.SetOptions(lp.Options{MaxIter: ax.opts.MaxIter, Ctx: ax.opts.ctx, Engine: ax.opts.Engine, Presolve: ax.opts.Presolve, PresolveFloor: presolveFloor})
	if ax.warmAll {
		ax.thetas = map[int][]lp.VarID{}
	}
	vars := map[coefKey]lp.VarID{}
	varOf := func(k coefKey) lp.VarID {
		if v, ok := vars[k]; ok {
			return v
		}
		v := prob.AddVariable(fmt.Sprintf("a[p%d,%s]", k.port, k.liv), 0, true)
		vars[k] = v
		return v
	}
	portVars := func(p *adg.Port) []coefKey {
		keys := []coefKey{{port: p.ID, liv: ""}}
		for _, v := range p.Space.LIVs {
			keys = append(keys, coefKey{port: p.ID, liv: v})
		}
		return keys
	}
	// Ensure every port has its variables (even unconstrained ones).
	for _, p := range ax.g.Ports {
		for _, k := range portVars(p) {
			varOf(k)
		}
	}
	// Static mode: pin LIV coefficients to zero so every chosen alignment
	// is constant. Ports whose mobility is forced by a node constraint —
	// the section side of Section/SectionAssign/Gather nodes, whose
	// position is the whole array's plus a subscript-dependent delta —
	// must stay free or the system is infeasible; their positions are
	// consequences, not choices.
	if ax.opts.Static {
		forced := map[int]bool{}
		for _, n := range ax.g.Nodes {
			switch n.Kind {
			case adg.KindSection, adg.KindGather:
				forced[n.Out[0].ID] = true
			case adg.KindSectionAssign:
				forced[n.In[1].ID] = true
			}
		}
		for _, p := range ax.g.Ports {
			if forced[p.ID] {
				continue
			}
			for _, v := range p.Space.LIVs {
				prob.AddConstraint(map[lp.VarID]float64{varOf(coefKey{port: p.ID, liv: v}): 1}, lp.EQ, 0)
			}
		}
	}

	// Node constraints.
	for _, n := range ax.g.Nodes {
		ax.nodeConstraints(prob, varOf, n)
	}
	// Anchor the constant coefficient of the lowest port in each
	// connected component to remove translation freedom.
	for _, pid := range ax.anchors() {
		prob.AddConstraint(map[lp.VarID]float64{varOf(coefKey{port: pid}): 1}, lp.EQ, 0)
	}

	// Edge objective: θ per (edge, subrange). The per-subrange moment
	// sums are independent pure computations — the hot part of RLP
	// construction — so they precompute on a worker pool; emission stays
	// in edge order, so the problem is identical for any parallelism.
	var jobs []termJob
	for _, e := range ax.g.Edges {
		if !ax.warmAll && !ax.liveEdge(e) {
			continue
		}
		subs, ok := parts[e.ID]
		if !ok {
			continue
		}
		w := e.Weight()
		livs := e.Space().LIVs
		for _, sub := range subs {
			jobs = append(jobs, termJob{edge: e.ID, w: w, livs: livs, sub: sub})
		}
	}
	ax.recallMoments(jobs)
	computeMoments(jobs, ax.opts.Parallelism)
	ax.retainMoments(jobs)
	cursor := 0
	for _, e := range ax.g.Edges {
		if !ax.warmAll && !ax.liveEdge(e) {
			continue
		}
		subs, ok := parts[e.ID]
		if !ok {
			// Symbolic or scalar space: single subrange via TotalOf.
			ax.addEdgeTermSymbolic(prob, varOf, e)
			continue
		}
		for range subs {
			j := &jobs[cursor]
			cursor++
			ax.addEdgeTerm(prob, varOf, e, j.livs, j.m0, j.mv)
		}
	}

	return prob, vars
}

// termJob is one (edge, subrange) moment computation. done marks a job
// whose moments were recalled from a previous refinement round.
type termJob struct {
	edge int
	w    expr.Poly
	livs []string
	sub  space.Space
	m0   int64
	mv   map[string]int64
	done bool
}

// recallMoments fills jobs whose (edge, subrange) pair already had its
// moments computed in a previous refinement round. Moments depend only
// on the edge's weight polynomial and the subrange, both of which a
// refinement leaves untouched for every subrange it does not split, so
// reuse is exact.
func (ax *axisSolver) recallMoments(jobs []termJob) {
	if ax.memoJobs == nil {
		return
	}
	for i := range jobs {
		j := &jobs[i]
		for _, prev := range ax.memoJobs[j.edge] {
			if prev.sub.Equal(j.sub) {
				j.m0, j.mv, j.done = prev.m0, prev.mv, true
				break
			}
		}
	}
}

// retainMoments records this round's computed jobs for the next round.
func (ax *axisSolver) retainMoments(jobs []termJob) {
	if ax.memoJobs == nil {
		return
	}
	memo := make(map[int][]termJob, len(ax.memoJobs))
	for _, j := range jobs {
		memo[j.edge] = append(memo[j.edge], j)
	}
	ax.memoJobs = memo
}

// computeMoments fills in the moment sums of every not-yet-done job,
// fanning out over min(par, pending) workers when it pays.
func computeMoments(jobs []termJob, par int) {
	pending := 0
	for i := range jobs {
		if !jobs[i].done {
			pending++
		}
	}
	if par > pending {
		par = pending
	}
	if par <= 1 || pending < 8 {
		for i := range jobs {
			if jobs[i].done {
				continue
			}
			jobs[i].m0, jobs[i].mv = moments(jobs[i].w, jobs[i].livs, jobs[i].sub)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				if jobs[i].done {
					continue
				}
				jobs[i].m0, jobs[i].mv = moments(jobs[i].w, jobs[i].livs, jobs[i].sub)
			}
		}()
	}
	wg.Wait()
}

// addEdgeTerm emits θ ≥ ±Σ_{i∈sub} w(i)·span(i) for one subrange, from
// precomputed moments.
func (ax *axisSolver) addEdgeTerm(prob *lp.Problem, varOf func(coefKey) lp.VarID, e *adg.Edge, livs []string, m0 int64, mv map[string]int64) {
	if m0 == 0 && allZero(mv) {
		return
	}
	theta := ax.newTheta(prob, e)
	pos := map[lp.VarID]float64{theta: 1}
	neg := map[lp.VarID]float64{theta: 1}
	addTerm := func(k coefKey, c float64) {
		if c == 0 {
			return
		}
		v := varOf(k)
		pos[v] -= c
		neg[v] += c
	}
	c := e.Control
	addTerm(coefKey{port: e.Src.ID}, c*float64(m0))
	addTerm(coefKey{port: e.Dst.ID}, -c*float64(m0))
	for _, liv := range livs {
		addTerm(coefKey{port: e.Src.ID, liv: liv}, c*float64(mv[liv]))
		addTerm(coefKey{port: e.Dst.ID, liv: liv}, -c*float64(mv[liv]))
	}
	prob.AddConstraint(pos, lp.GE, 0) // θ − L ≥ 0
	prob.AddConstraint(neg, lp.GE, 0) // θ + L ≥ 0
}

// addEdgeTermSymbolic emits the single-subrange term for edges whose
// iteration space has symbolic (affine) bounds or rank 0.
func (ax *axisSolver) addEdgeTermSymbolic(prob *lp.Problem, varOf func(coefKey) lp.VarID, e *adg.Edge) {
	sp := e.Space()
	w := e.Weight()
	m0 := sp.TotalOf(w)
	mv := map[string]int64{}
	for _, liv := range sp.LIVs {
		mv[liv] = sp.TotalOf(w.Mul(expr.PolyVar(liv)))
	}
	if m0 == 0 && allZero(mv) {
		return
	}
	theta := ax.newTheta(prob, e)
	pos := map[lp.VarID]float64{theta: 1}
	neg := map[lp.VarID]float64{theta: 1}
	addTerm := func(k coefKey, c float64) {
		if c == 0 {
			return
		}
		v := varOf(k)
		pos[v] -= c
		neg[v] += c
	}
	c := e.Control
	addTerm(coefKey{port: e.Src.ID}, c*float64(m0))
	addTerm(coefKey{port: e.Dst.ID}, -c*float64(m0))
	for _, liv := range sp.LIVs {
		addTerm(coefKey{port: e.Src.ID, liv: liv}, c*float64(mv[liv]))
		addTerm(coefKey{port: e.Dst.ID, liv: liv}, -c*float64(mv[liv]))
	}
	prob.AddConstraint(pos, lp.GE, 0)
	prob.AddConstraint(neg, lp.GE, 0)
}

// moments returns M0 = Σ_{i∈sub} w(i) and Mv = Σ_{i∈sub} w(i)·i_v.
func moments(w expr.Poly, livs []string, sub space.Space) (int64, map[string]int64) {
	m0p := expr.SumOverSpace(w, livs, sub)
	m0, _ := m0p.IsConst()
	mv := map[string]int64{}
	for _, liv := range livs {
		p := expr.SumOverSpace(w.Mul(expr.PolyVar(liv)), livs, sub)
		c, _ := p.IsConst()
		mv[liv] = c
	}
	return m0, mv
}

func allZero(m map[string]int64) bool {
	for _, v := range m {
		if v != 0 {
			return false
		}
	}
	return true
}

// nodeConstraints emits the linear offset constraints of one node on the
// current axis (see §2.2.2 and the node catalogue in DESIGN.md).
func (ax *axisSolver) nodeConstraints(prob *lp.Problem, varOf func(coefKey) lp.VarID, n *adg.Node) {
	t := ax.axis
	eq := func(a, b *adg.Port, delta expr.Affine) {
		// π_a = π_b + δ, coefficient-wise over the common space. The
		// coefficient keys are emitted in a fixed order (constant term,
		// then a's LIVs, then b's extras) so the constraint system — and
		// with it which of several degenerate optima the simplex selects —
		// is reproducible across runs.
		livs := []string{""}
		seen := map[string]bool{"": true}
		for _, v := range a.Space.LIVs {
			if !seen[v] {
				seen[v] = true
				livs = append(livs, v)
			}
		}
		for _, v := range b.Space.LIVs {
			if !seen[v] {
				seen[v] = true
				livs = append(livs, v)
			}
		}
		for _, v := range livs {
			co := map[lp.VarID]float64{}
			co[varOf(coefKey{port: a.ID, liv: v})] += 1
			co[varOf(coefKey{port: b.ID, liv: v})] -= 1
			var rhs float64
			if v == "" {
				rhs = float64(delta.ConstPart())
			} else {
				rhs = float64(delta.Coef(v))
			}
			prob.AddConstraint(co, lp.EQ, rhs)
		}
	}
	zero := expr.Const(0)
	switch n.Kind {
	case adg.KindOp, adg.KindMerge, adg.KindFanout, adg.KindBranch:
		ref := n.Out[0]
		for _, p := range n.In {
			eq(p, ref, zero)
		}
		for _, p := range n.Out[1:] {
			eq(p, ref, zero)
		}
	case adg.KindTranspose:
		eq(n.Out[0], n.In[0], zero)
	case adg.KindSection:
		ax.sectionConstraint(prob, varOf, eq, n, n.In[0], n.Out[0])
	case adg.KindSectionAssign:
		eq(n.Out[0], n.In[0], zero)
		ax.sectionConstraint(prob, varOf, eq, n, n.In[0], n.In[1])
	case adg.KindSpread:
		outLabel := ax.as.Labels[n.Out[0].ID]
		spreadAxis := -1
		if n.SpreadDim-1 < len(outLabel.AxisMap) {
			spreadAxis = outLabel.AxisMap[n.SpreadDim-1]
		}
		if t != spreadAxis {
			eq(n.Out[0], n.In[0], zero)
		}
	case adg.KindReduce:
		if n.ReduceDim == 0 {
			return // full reduction: scalar result unconstrained
		}
		inLabel := ax.as.Labels[n.In[0].ID]
		redAxis := inLabel.AxisMap[n.ReduceDim-1]
		if t != redAxis {
			eq(n.Out[0], n.In[0], zero)
		}
	case adg.KindXform:
		ax.xformConstraint(prob, varOf, n)
	case adg.KindGather, adg.KindSource, adg.KindSink:
		// No offset constraints.
	}
}

// sectionConstraint emits π_sec = π_whole + lo·stride (or index·stride)
// on the current axis.
func (ax *axisSolver) sectionConstraint(prob *lp.Problem, varOf func(coefKey) lp.VarID, eq func(a, b *adg.Port, delta expr.Affine), n *adg.Node, whole, sec *adg.Port) {
	t := ax.axis
	label := ax.as.Labels[whole.ID]
	// Find the whole-array body axis mapped to t.
	d := -1
	for dd, a := range label.AxisMap {
		if a == t {
			d = dd
			break
		}
	}
	if d < 0 {
		// Space axis of the whole array: positions equal.
		eq(sec, whole, expr.Const(0))
		return
	}
	sub := n.Section.Subs[d]
	stride := label.Stride[d]
	var pos expr.Affine // subscript value anchoring the section's origin
	switch {
	case sub.IsVector:
		return // gathered axis: unconstrained
	case sub.IsRange:
		pos = sub.Lo
	default:
		pos = sub.Index
	}
	// δ = (pos - 1)·stride: array index pos sits at offset_whole +
	// (pos-1)·stride (Fortran 1-based indexing; the array origin is
	// element 1).
	delta, ok := mulAffine(pos.AddConst(-1), stride)
	if !ok {
		// Quadratic product (both mobile): conservatively force equality;
		// the edge will pay general communication via the stride phase.
		delta = expr.Const(0)
	}
	eq(sec, whole, delta)
}

// xformConstraint ties the coefficients across a loop boundary (§2.2.3).
func (ax *axisSolver) xformConstraint(prob *lp.Problem, varOf func(coefKey) lp.VarID, n *adg.Node) {
	x := n.Xform
	in, out := n.In[0], n.Out[0]
	k := x.LIV
	addEq := func(terms map[lp.VarID]float64, rhs float64) {
		prob.AddConstraint(terms, lp.EQ, rhs)
	}
	switch x.Kind {
	case adg.XformEntry:
		// π_in (outer) = π_out at k = lo:
		// a_in,v = a_out,v + a_out,k·lo_v ; a_in,0 = a_out,0 + a_out,k·lo_0.
		outerVars := append([]string{""}, in.Space.LIVs...)
		for _, v := range outerVars {
			co := map[lp.VarID]float64{}
			co[varOf(coefKey{port: in.ID, liv: v})] += 1
			co[varOf(coefKey{port: out.ID, liv: v})] -= 1
			var lv float64
			if v == "" {
				lv = float64(x.Lo.ConstPart())
			} else {
				lv = float64(x.Lo.Coef(v))
			}
			if lv != 0 {
				co[varOf(coefKey{port: out.ID, liv: k})] -= lv
			}
			addEq(co, 0)
		}
	case adg.XformLoopBack:
		// π_in as a function of k+step equals π_out as a function of k:
		// a_in,k = a_out,k ; a_in,v + a_in,k·s_v = a_out,v ;
		// a_in,0 + a_in,k·s_0 = a_out,0.
		co := map[lp.VarID]float64{}
		co[varOf(coefKey{port: in.ID, liv: k})] += 1
		co[varOf(coefKey{port: out.ID, liv: k})] -= 1
		addEq(co, 0)
		vars := append([]string{""}, in.Space.LIVs...)
		for _, v := range vars {
			if v == k {
				continue
			}
			co := map[lp.VarID]float64{}
			co[varOf(coefKey{port: in.ID, liv: v})] += 1
			co[varOf(coefKey{port: out.ID, liv: v})] -= 1
			var sv float64
			if v == "" {
				sv = float64(x.Step.ConstPart())
			} else {
				sv = float64(x.Step.Coef(v))
			}
			if sv != 0 {
				co[varOf(coefKey{port: in.ID, liv: k})] += sv
			}
			addEq(co, 0)
		}
	case adg.XformExit:
		// π_out (outer) = π_in at k = last:
		last := lastIterate(x)
		outerVars := append([]string{""}, out.Space.LIVs...)
		for _, v := range outerVars {
			co := map[lp.VarID]float64{}
			co[varOf(coefKey{port: out.ID, liv: v})] += 1
			co[varOf(coefKey{port: in.ID, liv: v})] -= 1
			var lv float64
			if v == "" {
				lv = float64(last.ConstPart())
			} else {
				lv = float64(last.Coef(v))
			}
			if lv != 0 {
				co[varOf(coefKey{port: in.ID, liv: k})] -= lv
			}
			addEq(co, 0)
		}
	}
}

// anchors returns one port ID per connected component of the
// constraint+edge graph.
func (ax *axisSolver) anchors() []int {
	parent := make([]int, len(ax.g.Ports))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }
	for _, e := range ax.g.Edges {
		union(e.Src.ID, e.Dst.ID)
	}
	for _, n := range ax.g.Nodes {
		ports := append(append([]*adg.Port{}, n.In...), n.Out...)
		for i := 1; i < len(ports); i++ {
			union(ports[0].ID, ports[i].ID)
		}
	}
	seen := map[int]bool{}
	var out []int
	for _, p := range ax.g.Ports {
		r := find(p.ID)
		if !seen[r] {
			seen[r] = true
			out = append(out, p.ID)
		}
	}
	return out
}

// refinePartitions implements the zero-crossing moves of the
// StrategyZeroTrack and StrategyRecursive drivers for singly-nested
// (rank-1) edges; deeper edges keep their partitions.
func (ax *axisSolver) refinePartitions(parts map[int][]space.Space, coefs map[coefKey]float64) (map[int][]space.Space, bool) {
	changed := false
	out := map[int][]space.Space{}
	for _, e := range ax.g.Edges {
		subs, ok := parts[e.ID]
		if !ok {
			continue
		}
		conc, _ := e.Space().Concrete()
		if conc.Rank() != 1 {
			out[e.ID] = subs
			continue
		}
		liv := e.Space().LIVs[0]
		// Current span coefficients.
		a0 := int64(math.Round(coefs[coefKey{port: e.Src.ID}] - coefs[coefKey{port: e.Dst.ID}]))
		a1 := int64(math.Round(coefs[coefKey{port: e.Src.ID, liv: liv}] - coefs[coefKey{port: e.Dst.ID, liv: liv}]))
		span := expr.Axpy(a1, liv, a0)
		if ax.opts.Strategy == StrategyZeroTrack {
			// Move the (single) boundary to the zero crossing.
			pieces := expr.SplitAtZeroCrossing(span, liv, conc.Dim(0))
			newSubs := make([]space.Space, 0, 2)
			for _, t := range pieces {
				newSubs = append(newSubs, space.NewSpace(t))
			}
			if !samePartition(newSubs, subs) {
				changed = true
			}
			out[e.ID] = newSubs
			continue
		}
		// StrategyRecursive: split any subrange containing a crossing.
		var newSubs []space.Space
		split := false
		for _, sub := range subs {
			pieces := expr.SplitAtZeroCrossing(span, liv, sub.Dim(0))
			if len(pieces) == 2 {
				split = true
				for _, t := range pieces {
					newSubs = append(newSubs, space.NewSpace(t))
				}
			} else {
				newSubs = append(newSubs, sub)
			}
		}
		if split {
			changed = true
		}
		out[e.ID] = newSubs
	}
	return out, changed
}

func samePartition(a, b []space.Space) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

func roundCoefs(coefs map[coefKey]float64) map[coefKey]int64 {
	out := map[coefKey]int64{}
	for k, v := range coefs {
		out[k] = int64(math.Round(v))
	}
	return out
}

// store writes the rounded per-axis coefficients into the result.
func (ax *axisSolver) store(res *OffsetResult, ints map[coefKey]int64) {
	for _, p := range ax.g.Ports {
		a := expr.Const(ints[coefKey{port: p.ID}])
		for _, v := range p.Space.LIVs {
			a = a.Add(expr.Axpy(ints[coefKey{port: p.ID, liv: v}], v, 0))
		}
		offs := res.Offsets[p.ID]
		offs[ax.axis] = a
	}
}

// steepestDescent improves the exact cost on this axis by coordinate
// descent over the rounded coefficients (the optimization step of the
// state-space-search strategy). Because node constraints are hard, the
// unit moves shift a whole node's ports together: every node constraint
// is translation-invariant in each coefficient, with transformer nodes
// needing the compensating cross-coefficient adjustments applied by
// nodeMove.
func (ax *axisSolver) steepestDescent(res *OffsetResult, ints map[coefKey]int64) {
	cur := ExactOffsetCostAxis(ax.g, ax.repl, res.Offsets, ax.axis)
	for pass := 0; pass < 10; pass++ {
		if ax.ctxErr() != nil {
			return // descent only improves an already-feasible solution
		}
		improved := false
		for _, n := range ax.g.Nodes {
			coeffs := map[string]bool{"": true}
			for _, p := range append(append([]*adg.Port{}, n.In...), n.Out...) {
				for _, v := range p.Space.LIVs {
					coeffs[v] = true
				}
			}
			for v := range coeffs {
				for _, d := range []int64{1, -1} {
					ax.nodeMove(n, v, d, ints)
					ax.store(res, ints)
					if !ax.feasible(res.Offsets) {
						ax.nodeMove(n, v, -d, ints)
						ax.store(res, ints)
						continue
					}
					c := ExactOffsetCostAxis(ax.g, ax.repl, res.Offsets, ax.axis)
					if c < cur {
						cur = c
						improved = true
					} else {
						ax.nodeMove(n, v, -d, ints)
						ax.store(res, ints)
					}
				}
			}
		}
		if !improved {
			break
		}
	}
}

// nodeMove shifts coefficient v of every port of node n by d, applying
// the compensating adjustments transformer constraints require when one
// side of the node lacks the coefficient.
func (ax *axisSolver) nodeMove(n *adg.Node, v string, d int64, ints map[coefKey]int64) {
	has := func(p *adg.Port) bool {
		if v == "" {
			return true
		}
		for _, l := range p.Space.LIVs {
			if l == v {
				return true
			}
		}
		return false
	}
	for _, p := range append(append([]*adg.Port{}, n.In...), n.Out...) {
		if has(p) {
			ints[coefKey{port: p.ID, liv: v}] += d
		}
	}
	if n.Kind != adg.KindXform || v != n.Xform.LIV {
		return
	}
	// The outer-side port lacks the LIV coefficient; compensate its
	// other coefficients so the entry/exit evaluation constraint holds.
	x := n.Xform
	switch x.Kind {
	case adg.XformEntry:
		// a_in,0 = a_out,0 + a_out,k·lo: out.k moved by d ⇒ in += d·lo.
		in := n.In[0]
		ints[coefKey{port: in.ID}] += d * x.Lo.ConstPart()
		for _, t := range x.Lo.Terms() {
			ints[coefKey{port: in.ID, liv: t.Var}] += d * t.Coef
		}
	case adg.XformExit:
		out := n.Out[0]
		last := lastIterate(x)
		ints[coefKey{port: out.ID}] += d * last.ConstPart()
		for _, t := range last.Terms() {
			ints[coefKey{port: out.ID, liv: t.Var}] += d * t.Coef
		}
	case adg.XformLoopBack:
		// a_in,v + a_in,k·s_v = a_out,v: both k's moved by d ⇒
		// out gains d·s_v on every other coefficient.
		out := n.Out[0]
		ints[coefKey{port: out.ID}] += d * x.Step.ConstPart()
		for _, t := range x.Step.Terms() {
			ints[coefKey{port: out.ID, liv: t.Var}] += d * t.Coef
		}
	}
}

// feasible checks the node constraints hold for the current offsets on
// this axis (used by steepest descent to stay in the feasible region).
func (ax *axisSolver) feasible(offsets map[int][]expr.Affine) bool {
	ok := true
	check := func(a, b *adg.Port, delta expr.Affine) {
		lhs := offsets[a.ID][ax.axis]
		rhs := offsets[b.ID][ax.axis].Add(delta)
		if !lhs.Equal(rhs) {
			ok = false
		}
	}
	t := ax.axis
	zero := expr.Const(0)
	for _, n := range ax.g.Nodes {
		switch n.Kind {
		case adg.KindOp, adg.KindMerge, adg.KindFanout, adg.KindBranch:
			ref := n.Out[0]
			for _, p := range n.In {
				check(p, ref, zero)
			}
			for _, p := range n.Out[1:] {
				check(p, ref, zero)
			}
		case adg.KindTranspose:
			check(n.Out[0], n.In[0], zero)
		case adg.KindSection:
			ax.checkSection(n, n.In[0], n.Out[0], offsets, &ok)
		case adg.KindSectionAssign:
			check(n.Out[0], n.In[0], zero)
			ax.checkSection(n, n.In[0], n.In[1], offsets, &ok)
		case adg.KindSpread:
			outLabel := ax.as.Labels[n.Out[0].ID]
			spreadAxis := -1
			if n.SpreadDim-1 < len(outLabel.AxisMap) {
				spreadAxis = outLabel.AxisMap[n.SpreadDim-1]
			}
			if t != spreadAxis {
				check(n.Out[0], n.In[0], zero)
			}
		case adg.KindReduce:
			if n.ReduceDim == 0 {
				continue
			}
			inLabel := ax.as.Labels[n.In[0].ID]
			if t != inLabel.AxisMap[n.ReduceDim-1] {
				check(n.Out[0], n.In[0], zero)
			}
		case adg.KindXform:
			x := n.Xform
			in, out := offsets[n.In[0].ID][t], offsets[n.Out[0].ID][t]
			switch x.Kind {
			case adg.XformEntry:
				want := out.Subst(x.LIV, x.Lo)
				if !in.Equal(want) {
					ok = false
				}
			case adg.XformLoopBack:
				want := in.Subst(x.LIV, expr.Var(x.LIV).Add(x.Step))
				if !want.Equal(out) {
					ok = false
				}
			case adg.XformExit:
				want := in.Subst(x.LIV, lastIterate(x))
				if !out.Equal(want) {
					ok = false
				}
			}
		}
		if !ok {
			return false
		}
	}
	return ok
}

func (ax *axisSolver) checkSection(n *adg.Node, whole, sec *adg.Port, offsets map[int][]expr.Affine, ok *bool) {
	t := ax.axis
	label := ax.as.Labels[whole.ID]
	d := -1
	for dd, a := range label.AxisMap {
		if a == t {
			d = dd
			break
		}
	}
	var delta expr.Affine
	if d < 0 {
		delta = expr.Const(0)
	} else {
		sub := n.Section.Subs[d]
		if sub.IsVector {
			return
		}
		pos := sub.Index
		if sub.IsRange {
			pos = sub.Lo
		}
		var good bool
		delta, good = mulAffine(pos.AddConst(-1), label.Stride[d])
		if !good {
			delta = expr.Const(0)
		}
	}
	lhs := offsets[sec.ID][t]
	rhs := offsets[whole.ID][t].Add(delta)
	if !lhs.Equal(rhs) {
		*ok = false
	}
}

// ExactOffsetCost evaluates the exact grid-metric realignment cost
// Σ_e Σ_i w(i)·|π_src(i) − π_dst(i)| over all template axes, skipping
// replicated edges.
func ExactOffsetCost(g *adg.Graph, repl *ReplResult, offsets map[int][]expr.Affine) int64 {
	var total int64
	for t := 0; t < g.TemplateRank; t++ {
		total += ExactOffsetCostAxis(g, repl, offsets, t)
	}
	return total
}

// ExactOffsetCostAxis evaluates the exact grid-metric cost on one axis,
// scaling conditional-arm edges by their §6 control weights.
func ExactOffsetCostAxis(g *adg.Graph, repl *ReplResult, offsets map[int][]expr.Affine, t int) int64 {
	var total int64
	for _, e := range g.Edges {
		if repl != nil && (repl.Replicated(e.Src, t) || repl.Replicated(e.Dst, t)) {
			continue
		}
		span := offsets[e.Src.ID][t].Sub(offsets[e.Dst.ID][t])
		if span.IsZero() {
			continue
		}
		w := e.Weight()
		sp := e.Space()
		var edgeTotal int64
		sp.Each(func(env map[string]int64) bool {
			d := span.Eval(env)
			if d < 0 {
				d = -d
			}
			edgeTotal += w.Eval(env) * d
			return true
		})
		if e.Control != 1 {
			edgeTotal = int64(e.Control * float64(edgeTotal))
		}
		total += edgeTotal
	}
	return total
}
