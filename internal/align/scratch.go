package align

import (
	"sync"

	"repro/internal/lp"
)

// scratchPool recycles the per-solve scratch state of the pipeline —
// the §3 solver's label intern table and the per-axis simplex tableau
// arenas — so a steady stream of solves (the batch engine's regime)
// allocates near zero once warm. A pool is owned by a Scheduler and
// shared by every solve it runs; both underlying sync.Pools are safe
// for concurrent use.
//
// Nothing pooled outlives a solve: AxisStrideOpts copies the chosen
// labels out of the intern table before releasing it, and lp.Arena
// storage is only referenced by tableaux that die with the solve's
// lp.Problems.
type scratchPool struct {
	interns sync.Pool // *internTable
	arenas  sync.Pool // *lp.Arena
	dps     sync.Pool // *dpScratch
}

// defaultScratch serves callers that reach a solver without a
// scheduler-owned pool (direct AxisStride calls, tests): they still get
// warm-path pooling instead of per-solve allocation.
var defaultScratch scratchPool

// orDefault resolves a possibly-nil pool to the package default.
func (sp *scratchPool) orDefault() *scratchPool {
	if sp == nil {
		return &defaultScratch
	}
	return sp
}

// getIntern returns a reset intern table, reusing a pooled one when
// available.
func (sp *scratchPool) getIntern() *internTable {
	sp = sp.orDefault()
	if t, ok := sp.interns.Get().(*internTable); ok {
		t.reset()
		return t
	}
	return newInternTable()
}

// putIntern returns a table to the pool. Safe to call with the table's
// labels still referenced by value copies elsewhere: reuse overwrites
// only the table's own slots, never the label contents those copies
// share.
func (sp *scratchPool) putIntern(t *internTable) {
	if t != nil {
		sp.orDefault().interns.Put(t)
	}
}

// getDP returns a flat DP state arena for one §3 solve, reusing a
// pooled one when available. newASSolver resets it before carving.
func (sp *scratchPool) getDP() *dpScratch {
	sp = sp.orDefault()
	if d, ok := sp.dps.Get().(*dpScratch); ok {
		return d
	}
	return newDPScratch()
}

// putDP returns a DP arena to the pool. The caller must guarantee the
// solve that carved from it is finished (AxisStrideOpts copies the
// winning labels out before releasing).
func (sp *scratchPool) putDP(d *dpScratch) {
	if d != nil {
		sp.orDefault().dps.Put(d)
	}
}

// getArena returns a tableau arena, reusing a pooled one when
// available. The arena's storage is reused as-is; lp.Arena zeroes each
// carved slice itself.
func (sp *scratchPool) getArena() *lp.Arena {
	sp = sp.orDefault()
	if a, ok := sp.arenas.Get().(*lp.Arena); ok {
		return a
	}
	return lp.NewArena()
}

// putArena returns an arena to the pool, rewound so the next owner
// carves from the start of its blocks. The caller must guarantee no
// live tableau still reads the arena's storage (true once the owning
// lp.Problems are dead).
func (sp *scratchPool) putArena(a *lp.Arena) {
	if a != nil {
		a.Reset()
		sp.orDefault().arenas.Put(a)
	}
}
