// Package align implements the paper's alignment analyses on the ADG:
// axis and stride alignment (including mobile strides, §3) by compact
// dynamic programming over candidate labels under the discrete metric;
// mobile offset alignment (§4) by rounded linear programming with the
// subrange approximation; and replication labeling (§5) by min-cut.
package align

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"strings"
	"sync"

	"repro/internal/adg"
	"repro/internal/expr"
)

// ASLabel is an axis/stride label for one port: the axis map and the
// per-body-axis (possibly mobile) strides. Offsets are not part of the
// label; they are determined later under the grid metric.
type ASLabel struct {
	AxisMap []int
	Stride  []expr.Affine
}

// Key returns a canonical map key for the label.
func (l ASLabel) Key() string {
	var b strings.Builder
	for d := range l.AxisMap {
		fmt.Fprintf(&b, "%d:%s;", l.AxisMap[d], l.Stride[d])
	}
	return b.String()
}

func (l ASLabel) String() string {
	if len(l.AxisMap) == 0 {
		return "scalar"
	}
	parts := make([]string, len(l.AxisMap))
	for d := range l.AxisMap {
		parts[d] = fmt.Sprintf("i%d→T%d×(%s)", d+1, l.AxisMap[d]+1, l.Stride[d])
	}
	return strings.Join(parts, " ")
}

// Equal reports label equality.
func (l ASLabel) Equal(m ASLabel) bool {
	if len(l.AxisMap) != len(m.AxisMap) {
		return false
	}
	for d := range l.AxisMap {
		if l.AxisMap[d] != m.AxisMap[d] || !l.Stride[d].Equal(m.Stride[d]) {
			return false
		}
	}
	return true
}

func identityLabel(rank int) ASLabel {
	l := ASLabel{AxisMap: make([]int, rank), Stride: make([]expr.Affine, rank)}
	for d := 0; d < rank; d++ {
		l.AxisMap[d] = d
		l.Stride[d] = expr.Const(1)
	}
	return l
}

// identityLabelCached returns the (immutable, shared) identity label for
// a rank without rebuilding its slices on every call — the seeding loop
// of candidate generation asks for one per port per solve.
func identityLabelCached(rank int) ASLabel {
	idLabMu.Lock()
	for len(idLabCache) <= rank {
		idLabCache = append(idLabCache, identityLabel(len(idLabCache)))
	}
	l := idLabCache[rank]
	idLabMu.Unlock()
	return l
}

var (
	idLabMu    sync.Mutex
	idLabCache []ASLabel
)

// DPStats is the effort accounting of the §3 compact dynamic program:
// how much search the iterated best-response + chain-expansion
// optimization performed. All counters are sums over the multi-start
// seeds and are identical at every Parallelism setting (each start's
// trajectory is independent of the others).
type DPStats struct {
	// Starts is the number of optimization starts (canonical seeds plus
	// perturbed restarts).
	Starts int
	// Labels is the number of distinct interned axis/stride labels.
	Labels int
	// Configs is the total number of feasible node configurations.
	Configs int
	// Sweeps counts best-response sweeps over the (dirty) nodes.
	Sweeps int64
	// Moves counts accepted single-node best-response moves.
	Moves int64
	// Evals counts (node, config) incident-cost evaluations.
	Evals int64
	// ExpansionAccepts counts accepted chain-expansion moves.
	ExpansionAccepts int64
	// PrunedStarts counts perturbed restarts abandoned by the adaptive
	// PruneSlack cutoff (always 0 when PruneSlack is off).
	PrunedStarts int
}

func (s *DPStats) add(o DPStats) {
	s.Starts += o.Starts
	s.Sweeps += o.Sweeps
	s.Moves += o.Moves
	s.Evals += o.Evals
	s.ExpansionAccepts += o.ExpansionAccepts
	s.PrunedStarts += o.PrunedStarts
}

// AxisStrideOptions configures the §3 solver.
type AxisStrideOptions struct {
	// Parallelism bounds the workers running the multi-start optimization
	// concurrently; values ≤ 0 mean GOMAXPROCS. The chosen labeling is
	// identical for every setting: every start always runs, and the
	// winner is the lowest-cost start with the lowest seed index.
	Parallelism int
	// Restarts is the number of perturbed restarts run in addition to the
	// two canonical seeds (all-first and all-last configurations).
	// Default 2; negative means none.
	Restarts int
	// PruneSlack, when > 0, adaptively prunes perturbed restarts
	// (WFA-style): the two canonical seeds run to completion first, and
	// a restart is abandoned as soon as its incumbent cost exceeds
	// (1+PruneSlack)·min(canonical costs) after a sweep or an expansion
	// pass. Pruning depends only on costs — never on goroutine timing —
	// so the result is still identical at every Parallelism setting. A
	// pruned restart can never be the winner (its cost exceeds a
	// completed start's), so the chosen labeling equals the unpruned
	// one whenever the winner is a canonical seed or survives the
	// cutoff. Default 0 = off ⇒ byte-identical to the unpruned solver.
	PruneSlack float64

	// scratch, when non-nil, recycles the label intern table and the
	// flat DP state arena across solves. Threaded in by the pipeline
	// from Options.scratch; nil falls back to a package-level pool.
	scratch *scratchPool

	// ctx, when non-nil, cancels the solve: every start polls it between
	// best-response sweeps and expansion rounds. Threaded in by the
	// pipeline from Options.ctx.
	ctx context.Context
}

func (o AxisStrideOptions) withDefaults() AxisStrideOptions {
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	if o.Restarts == 0 {
		o.Restarts = 2
	}
	if o.Restarts < 0 {
		o.Restarts = 0
	}
	if o.PruneSlack < 0 {
		o.PruneSlack = 0
	}
	return o
}

// AxisStrideResult is the outcome of the axis/stride phase.
type AxisStrideResult struct {
	// Labels maps port ID → chosen label.
	Labels map[int]ASLabel
	// Cost is the total discrete-metric realignment cost: Σ over edges of
	// W_e·[label_src ≠ label_dst] (§3).
	Cost int64
	// GeneralEdges lists edges whose endpoints differ (each incurs general
	// communication every time data flows).
	GeneralEdges []*adg.Edge
	// Stats is the DP effort accounting.
	Stats DPStats
}

// AxisStride solves the (mobile) axis and stride alignment problem of §3
// with default options: labels are restricted to affine strides in the
// LIVs; the cost of an edge is its total data weight if the two port
// labels differ (discrete metric), else zero. Candidate labels are
// generated by propagating the identity alignment of every Source through
// the node transfer functions (the "compact" part of compact dynamic
// programming); the labeling is then optimized by multi-start iterated
// best-response with chain-expansion moves.
func AxisStride(g *adg.Graph) (*AxisStrideResult, error) {
	return AxisStrideOpts(g, AxisStrideOptions{})
}

// AxisStrideOpts is AxisStride with explicit options.
func AxisStrideOpts(g *adg.Graph, opts AxisStrideOptions) (*AxisStrideResult, error) {
	opts = opts.withDefaults()
	tab := opts.scratch.getIntern()
	defer opts.scratch.putIntern(tab)
	scr := opts.scratch.getDP()
	defer opts.scratch.putDP(scr)
	s := newASSolver(g, tab, scr)
	if err := s.generateCandidates(); err != nil {
		return nil, err
	}
	if err := s.buildNodeConfigs(); err != nil {
		return nil, err
	}
	stats, err := s.optimize(opts)
	if err != nil {
		return nil, err
	}
	stats.Labels = s.tab.size()
	for nid := range g.Nodes {
		stats.Configs += int(s.cfgCnt[nid])
	}
	res := &AxisStrideResult{Labels: make(map[int]ASLabel, len(g.Ports)), Stats: stats}
	lab := s.bestLab
	for _, p := range g.Ports {
		res.Labels[p.ID] = s.tab.label(lab[p.ID])
	}
	ng := 0
	for _, e := range g.Edges {
		if lab[e.Src.ID] != lab[e.Dst.ID] {
			ng++
		}
	}
	if ng > 0 {
		res.GeneralEdges = make([]*adg.Edge, 0, ng)
		for _, e := range g.Edges {
			if lab[e.Src.ID] != lab[e.Dst.ID] {
				res.Cost += e.TotalWeight()
				res.GeneralEdges = append(res.GeneralEdges, e)
			}
		}
	}
	return res, nil
}

// asSolver is the flat §3 solver: every per-solve array — candidate
// sets, configuration rows, incidence, evaluation and match tables — is
// carved by offset from the solve's dpScratch, so a warm solve builds
// its whole working set without heap allocation. Candidate sets live at
// a fixed stride of maxCandidates per port; configuration rows are a
// CSR over scr.cfgBuf (row = the node's In labels then Out labels).
type asSolver struct {
	g   *adg.Graph
	tab *internTable
	scr *dpScratch

	candBuf []int32 // port ID → candidates at [ID*maxCandidates, +candLen[ID])
	candLen []int32

	cfgOff []int32 // node ID → first row offset into scr.cfgBuf
	cfgCnt []int32 // node ID → number of configurations
	cfgNIn []int32 // node ID → inputs per row
	cfgW   []int32 // node ID → row width (inputs + outputs)
	maxCfg int     // max configurations over all nodes

	best    []int32 // winner's config index per node
	bestLab []int32 // winner's label ID per port

	wts  []float64 // edge ID → control-weighted total weight
	ends []int32   // edge ID → (src port ID, dst port ID) at 2*ID

	inc    []incEdge // incident edges, CSR by node
	incOff []int32

	nodePorts []int32 // node ID → port IDs in row order, CSR
	portOff   []int32

	// evalBuf holds, per node, per incident slot k, per configuration c,
	// the node-side comparison value at evalOff[node] + k*C + c: the
	// node's endpoint label for ordinary slots, a 0/1 mismatch flag for
	// self-loop slots. sweeps evaluate all configurations of a node by
	// streaming these rows against the fixed neighbor labels.
	evalBuf []int32
	evalOff []int32

	// matchBuf maps (port ID, label ID) → 1 + the first configuration
	// index of the port's node carrying that label at the port (0 =
	// none); the expansion wavefront's configuration lookup.
	matchBuf []int32
	nLabels  int32

	// siteDone holds, per propagation site of each node, how many
	// candidates of the site's source port have been processed, making
	// node transfer propagation incremental across fixpoint rounds.
	siteDone []int32
	siteOff  []int32

	idLab []int32 // rank → interned identity label ID (lazy, -1 unset)
}

// incEdge is one edge incident on a node, precomputed so the
// best-response cost loop is branch-light and allocation-free. selfLoop
// edges (both endpoints on the node) depend only on the node's own
// configuration.
type incEdge struct {
	w        float64
	eid      int32 // edge ID (delta-cost dedup in expansion passes)
	peer     int32 // peer port ID (label index), unused for selfLoop
	peerNode int32 // peer node ID, unused for selfLoop
	selfPos  int32 // row position of this node's endpoint
	dstPos   int32 // selfLoop: row position of the edge's Dst endpoint
	selfLoop bool
}

func newASSolver(g *adg.Graph, tab *internTable, scr *dpScratch) *asSolver {
	scr.reset()
	s := &scr.solver
	*s = asSolver{g: g, tab: tab, scr: scr}
	nP, nN := len(g.Ports), len(g.Nodes)
	s.candBuf = scr.int32s(nP * maxCandidates)
	s.candLen = scr.int32s(nP)
	s.siteOff = scr.int32s(nN + 1)
	total := 0
	for _, n := range g.Nodes {
		s.siteOff[n.ID] = int32(total)
		total += len(n.In) + len(n.Out) + 2
	}
	s.siteOff[nN] = int32(total)
	s.siteDone = scr.int32s(total)
	s.portOff = scr.int32s(nN + 1)
	total = 0
	for _, n := range g.Nodes {
		s.portOff[n.ID] = int32(total)
		total += len(n.In) + len(n.Out)
	}
	s.portOff[nN] = int32(total)
	s.nodePorts = scr.int32s(total)
	maxRank := 0
	for _, n := range g.Nodes {
		off := int(s.portOff[n.ID])
		for i, p := range n.In {
			s.nodePorts[off+i] = int32(p.ID)
		}
		for i, p := range n.Out {
			s.nodePorts[off+len(n.In)+i] = int32(p.ID)
		}
	}
	for _, p := range g.Ports {
		if p.Rank > maxRank {
			maxRank = p.Rank
		}
	}
	s.idLab = scr.int32s(maxRank + 1)
	for i := range s.idLab {
		s.idLab[i] = -1
	}
	return s
}

// cand returns a port's candidate label IDs.
func (s *asSolver) cand(pid int) []int32 {
	base := pid * maxCandidates
	return s.candBuf[base : base+int(s.candLen[pid])]
}

// cfgRow returns one configuration row of a node: its In labels
// followed by its Out labels.
func (s *asSolver) cfgRow(nid int, ci int32) []int32 {
	w := int(s.cfgW[nid])
	off := int(s.cfgOff[nid]) + int(ci)*w
	return s.scr.cfgBuf[off : off+w]
}

// ilab interns the identity label of a rank, memoized per solve.
func (s *asSolver) ilab(rank int) int32 {
	if id := s.idLab[rank]; id >= 0 {
		return id
	}
	id := s.tab.intern(identityLabelCached(rank))
	s.idLab[rank] = id
	return id
}

func (s *asSolver) addCand(p *adg.Port, l ASLabel) bool {
	if len(l.AxisMap) != p.Rank || int(s.candLen[p.ID]) >= maxCandidates {
		return false
	}
	id := s.tab.intern(l)
	base := p.ID * maxCandidates
	n := int(s.candLen[p.ID])
	for _, c := range s.candBuf[base : base+n] {
		if c == id {
			return false
		}
	}
	s.candBuf[base+n] = id
	s.candLen[p.ID]++
	return true
}

const maxCandidates = 12

// generateCandidates seeds every port with the identity label for its
// rank and propagates labels through node transfer functions and across
// edges until fixpoint. Propagation is incremental twice over: each edge
// remembers how many of its endpoint's candidates it has already copied,
// and each node transfer-function site (a directed port→port derivation)
// keeps its own cursor into the source port's candidate list — so a node
// revisit re-derives only from candidates that appeared since the site
// last ran, never rescanning the whole set.
func (s *asSolver) generateCandidates() error {
	for _, p := range s.g.Ports {
		s.addCand(p, identityLabelCached(p.Rank))
	}
	scr := s.scr
	srcDone := scr.int32s(len(s.g.Edges))
	dstDone := scr.int32s(len(s.g.Edges))
	lastSeen := scr.int32s(len(s.g.Nodes)) // Σ candLen over the node's ports
	for i := range lastSeen {
		lastSeen[i] = -1
	}
	portSum := func(n *adg.Node) int32 {
		var c int32
		for _, p := range n.In {
			c += s.candLen[p.ID]
		}
		for _, p := range n.Out {
			c += s.candLen[p.ID]
		}
		return c
	}
	changed := true
	for rounds := 0; changed && rounds < 64; rounds++ {
		changed = false
		// Across edges: copy only the candidates that appeared since the
		// edge was last processed.
		for _, e := range s.g.Edges {
			src := s.cand(e.Src.ID)
			for _, id := range src[srcDone[e.ID]:] {
				l := s.tab.label(id)
				if compatibleSpaces(l, e.Dst) && s.addCand(e.Dst, l) {
					changed = true
				}
			}
			srcDone[e.ID] = int32(len(src))
			dst := s.cand(e.Dst.ID)
			for _, id := range dst[dstDone[e.ID]:] {
				l := s.tab.label(id)
				if compatibleSpaces(l, e.Src) && s.addCand(e.Src, l) {
					changed = true
				}
			}
			dstDone[e.ID] = int32(len(dst))
		}
		// Through nodes: transfer functions both ways, only where a port
		// gained candidates.
		for _, n := range s.g.Nodes {
			cnt := portSum(n)
			if cnt == lastSeen[n.ID] {
				continue
			}
			lastSeen[n.ID] = cnt
			if s.propagateNode(n) {
				changed = true
			}
		}
	}
	return nil
}

// candLabels materializes a port's candidate labels into dst, reusing
// its storage (the hot path works on IDs; this is for callers that need
// structural labels).
func (s *asSolver) candLabels(p *adg.Port, dst []ASLabel) []ASLabel {
	dst = dst[:0]
	for _, id := range s.cand(p.ID) {
		dst = append(dst, s.tab.label(id))
	}
	return dst
}

// compatibleSpaces checks that a label's mobile strides only reference
// LIVs in scope at the port.
func compatibleSpaces(l ASLabel, p *adg.Port) bool {
	ok := true
	for _, st := range l.Stride {
		if st.IsConst() {
			continue
		}
		st.EachTerm(func(tm expr.Term) bool {
			for _, liv := range p.Space.LIVs {
				if liv == tm.Var {
					return true
				}
			}
			ok = false
			return false
		})
		if !ok {
			return false
		}
	}
	return true
}

// portAt returns the node's i-th port in row order (inputs then
// outputs).
func portAt(n *adg.Node, i int) *adg.Port {
	if i < len(n.In) {
		return n.In[i]
	}
	return n.Out[i-len(n.In)]
}

// propagateNode derives new candidate labels for a node's ports from the
// labels of its other ports using the node's constraint. Each derivation
// site consumes only the source candidates added since its last run
// (tracked in siteDone); derivations are deterministic and addCand
// rejections are permanent, so skipping the processed prefix yields
// exactly the additions a full rescan would, in the same order.
func (s *asSolver) propagateNode(n *adg.Node) bool {
	changed := false
	done := s.siteDone[s.siteOff[n.ID]:s.siteOff[n.ID+1]]
	add := func(p *adg.Port, l ASLabel) {
		if compatibleSpaces(l, p) && s.addCand(p, l) {
			changed = true
		}
	}
	// news returns the unprocessed suffix of port p's candidates for
	// site si and advances the site's cursor.
	news := func(si int, p *adg.Port) []int32 {
		ids := s.cand(p.ID)
		k := done[si]
		done[si] = int32(len(ids))
		return ids[k:]
	}
	switch n.Kind {
	case adg.KindOp, adg.KindMerge, adg.KindFanout, adg.KindBranch:
		// Equal labels on all ports of the same rank.
		np := len(n.In) + len(n.Out)
		for pi := 0; pi < np; pi++ {
			p := portAt(n, pi)
			ids := news(pi, p)
			if len(ids) == 0 {
				continue
			}
			for qi := 0; qi < np; qi++ {
				q := portAt(n, qi)
				if qi == pi || q.Rank != p.Rank {
					continue
				}
				for _, id := range ids {
					add(q, s.tab.label(id))
				}
			}
		}
	case adg.KindXform:
		// Strides transform by LIV substitution; same axis map.
		in, out := n.In[0], n.Out[0]
		x := n.Xform
		for _, id := range news(0, out) {
			if m, ok := xformInLabel(s.tab.label(id), x); ok {
				add(in, m)
			}
		}
		for _, id := range news(1, in) {
			if m, ok := xformOutLabel(s.tab.label(id), x); ok {
				add(out, m)
			}
		}
	case adg.KindTranspose:
		in, out := n.In[0], n.Out[0]
		for _, id := range news(0, in) {
			add(out, transposeLabel(s.tab.label(id)))
		}
		for _, id := range news(1, out) {
			add(in, transposeLabel(s.tab.label(id)))
		}
	case adg.KindSection:
		s.propagateSection(n, n.In[0], n.Out[0], done[0:2], &changed)
	case adg.KindSectionAssign:
		// out ~ in0 identical; in1 is the section of in0.
		for _, id := range news(0, n.In[0]) {
			add(n.Out[0], s.tab.label(id))
		}
		for _, id := range news(1, n.Out[0]) {
			add(n.In[0], s.tab.label(id))
		}
		s.propagateSection(n, n.In[0], n.In[1], done[2:4], &changed)
	case adg.KindSpread:
		in, out := n.In[0], n.Out[0]
		for _, id := range news(0, in) {
			if m, ok := spreadLabelMark(s.tab.label(id), n.SpreadDim, s.g.TemplateRank, &s.scr.mark); ok {
				add(out, m)
			}
		}
		for _, id := range news(1, out) {
			add(in, unspreadLabel(s.tab.label(id), n.SpreadDim))
		}
	case adg.KindReduce:
		in, out := n.In[0], n.Out[0]
		for _, id := range news(0, in) {
			if n.ReduceDim == 0 {
				continue
			}
			add(out, reduceLabel(s.tab.label(id), n.ReduceDim))
		}
	case adg.KindGather:
		// The gathered axis is unconstrained; non-vector dims behave as a
		// section. Keep identity candidates only (general communication
		// is intrinsic to the gather).
	}
	return changed
}

func (s *asSolver) propagateSection(n *adg.Node, in, out *adg.Port, done []int32, changed *bool) {
	add := func(p *adg.Port, l ASLabel) {
		if compatibleSpaces(l, p) && s.addCand(p, l) {
			*changed = true
		}
	}
	ids := s.cand(in.ID)
	k := done[0]
	done[0] = int32(len(ids))
	for _, id := range ids[k:] {
		if m, ok := sectionLabel(s.tab.label(id), n.Section); ok {
			add(out, m)
		}
	}
	ids = s.cand(out.ID)
	k = done[1]
	done[1] = int32(len(ids))
	for _, id := range ids[k:] {
		if m, ok := unsectionLabelMark(s.tab.label(id), n.Section, in.Rank, &s.scr.mark); ok {
			add(in, m)
		}
	}
}

// sectionLabel maps an input label through a section: range dims keep
// their axis with stride multiplied by the subscript step; index dims
// drop out.
func sectionLabel(l ASLabel, spec *adg.SectionSpec) (ASLabel, bool) {
	var out ASLabel
	for d, sub := range spec.Subs {
		if sub.IsVector {
			return ASLabel{}, false
		}
		if !sub.IsRange {
			continue
		}
		st, ok := mulAffine(sub.Step, l.Stride[d])
		if !ok {
			return ASLabel{}, false
		}
		out.AxisMap = append(out.AxisMap, l.AxisMap[d])
		out.Stride = append(out.Stride, st)
	}
	return out, true
}

// unsectionLabel maps a section label back to the whole array: the input
// dim of each range gets stride = sectionStride/step when that division
// is exact; other dims keep axis identity with stride 1 on an unused
// template axis.
func unsectionLabel(l ASLabel, spec *adg.SectionSpec, inRank int) (ASLabel, bool) {
	var m axisMark
	return unsectionLabelMark(l, spec, inRank, &m)
}

// unsectionLabelMark is unsectionLabel with the used-axis set tracked in
// an epoch-stamped axisMark owned by the caller instead of a fresh
// map[int]bool per call.
func unsectionLabelMark(l ASLabel, spec *adg.SectionSpec, inRank int, m *axisMark) (ASLabel, bool) {
	out := ASLabel{AxisMap: make([]int, inRank), Stride: make([]expr.Affine, inRank)}
	m.begin(inRank + 8)
	j := 0
	for d, sub := range spec.Subs {
		if sub.IsVector {
			return ASLabel{}, false
		}
		if sub.IsRange {
			st, ok := divAffine(l.Stride[j], sub.Step)
			if !ok {
				return ASLabel{}, false
			}
			out.AxisMap[d] = l.AxisMap[j]
			out.Stride[d] = st
			m.mark(l.AxisMap[j])
			j++
		}
	}
	next := 0
	for d, sub := range spec.Subs {
		if sub.IsRange {
			continue
		}
		for m.used(next) {
			next++
		}
		out.AxisMap[d] = next
		m.mark(next)
		out.Stride[d] = expr.Const(1)
	}
	return out, true
}

func transposeLabel(l ASLabel) ASLabel {
	return ASLabel{
		AxisMap: []int{l.AxisMap[1], l.AxisMap[0]},
		Stride:  []expr.Affine{l.Stride[1], l.Stride[0]},
	}
}

func spreadLabel(l ASLabel, dim, templateRank int) (ASLabel, bool) {
	var m axisMark
	return spreadLabelMark(l, dim, templateRank, &m)
}

// spreadLabelMark is spreadLabel with the used-axis set tracked in an
// epoch-stamped axisMark owned by the caller.
func spreadLabelMark(l ASLabel, dim, templateRank int, m *axisMark) (ASLabel, bool) {
	m.begin(templateRank + len(l.AxisMap) + 1)
	for _, a := range l.AxisMap {
		m.mark(a)
	}
	newAxis := -1
	for t := 0; t < templateRank; t++ {
		if !m.used(t) {
			newAxis = t
			break
		}
	}
	if newAxis < 0 {
		return ASLabel{}, false
	}
	out := ASLabel{}
	out.AxisMap = append(out.AxisMap, l.AxisMap[:dim-1]...)
	out.AxisMap = append(out.AxisMap, newAxis)
	out.AxisMap = append(out.AxisMap, l.AxisMap[dim-1:]...)
	out.Stride = append(out.Stride, l.Stride[:dim-1]...)
	out.Stride = append(out.Stride, expr.Const(1))
	out.Stride = append(out.Stride, l.Stride[dim-1:]...)
	return out, true
}

func unspreadLabel(l ASLabel, dim int) ASLabel {
	out := ASLabel{}
	out.AxisMap = append(out.AxisMap, l.AxisMap[:dim-1]...)
	out.AxisMap = append(out.AxisMap, l.AxisMap[dim:]...)
	out.Stride = append(out.Stride, l.Stride[:dim-1]...)
	out.Stride = append(out.Stride, l.Stride[dim:]...)
	return out
}

func reduceLabel(l ASLabel, dim int) ASLabel {
	out := ASLabel{}
	out.AxisMap = append(out.AxisMap, l.AxisMap[:dim-1]...)
	out.AxisMap = append(out.AxisMap, l.AxisMap[dim:]...)
	out.Stride = append(out.Stride, l.Stride[:dim-1]...)
	out.Stride = append(out.Stride, l.Stride[dim:]...)
	return out
}

// xformInLabel maps an inside-loop label to the label the input port must
// carry so the transformer constraint holds; strides are affine in LIVs,
// so entering substitutes k := lo, loop-back substitutes k := k+step, and
// exit strips nothing (exit's input is the inside port).
func xformInLabel(out ASLabel, x *adg.XformSpec) (ASLabel, bool) {
	in := ASLabel{AxisMap: append([]int{}, out.AxisMap...)}
	for _, st := range out.Stride {
		var m expr.Affine
		switch x.Kind {
		case adg.XformEntry:
			m = st.Subst(x.LIV, x.Lo)
		case adg.XformLoopBack:
			m = st.Subst(x.LIV, expr.Var(x.LIV).Add(x.Step))
		case adg.XformExit:
			m = st
		}
		in.Stride = append(in.Stride, m)
	}
	return in, true
}

func xformOutLabel(in ASLabel, x *adg.XformSpec) (ASLabel, bool) {
	out := ASLabel{AxisMap: append([]int{}, in.AxisMap...)}
	for _, st := range in.Stride {
		var m expr.Affine
		switch x.Kind {
		case adg.XformEntry:
			m = st // a constant-in-k stride is valid inside as well
		case adg.XformLoopBack:
			m = st.Subst(x.LIV, expr.Var(x.LIV).Sub(x.Step))
		case adg.XformExit:
			m = st.Subst(x.LIV, lastIterate(x))
		}
		out.Stride = append(out.Stride, m)
	}
	return out, true
}

// lastIterate returns the affine form of the loop's final LIV value.
func lastIterate(x *adg.XformSpec) expr.Affine { return x.LastIterate() }

func mulAffine(a, b expr.Affine) (expr.Affine, bool) {
	if a.IsConst() {
		return b.Scale(a.ConstPart()), true
	}
	if b.IsConst() {
		return a.Scale(b.ConstPart()), true
	}
	return expr.Affine{}, false // product would be quadratic
}

func divAffine(a, b expr.Affine) (expr.Affine, bool) {
	if b.IsConst() {
		d := b.ConstPart()
		if d == 0 {
			return expr.Affine{}, false
		}
		if a.ConstPart()%d != 0 {
			return expr.Affine{}, false
		}
		out := expr.Const(a.ConstPart() / d)
		for _, t := range a.Terms() {
			if t.Coef%d != 0 {
				return expr.Affine{}, false
			}
			out = out.Add(expr.Axpy(t.Coef/d, t.Var, 0))
		}
		return out, true
	}
	// b mobile: exact only if a = c·b.
	bt := b.Terms()
	if b.ConstPart() == 0 && len(bt) == 1 && a.ConstPart() == 0 {
		at := a.Terms()
		if len(at) == 1 && at[0].Var == bt[0].Var && at[0].Coef%bt[0].Coef == 0 {
			return expr.Const(at[0].Coef / bt[0].Coef), true
		}
	}
	return expr.Affine{}, false
}

// buildNodeConfigs enumerates, per node, the feasible joint labelings of
// its ports drawn from the candidate sets, and precomputes the flat
// incidence, evaluation, and match tables the optimization runs on.
func (s *asSolver) buildNodeConfigs() error {
	scr := s.scr
	nN, nE := len(s.g.Nodes), len(s.g.Edges)
	s.cfgOff = scr.int32s(nN)
	s.cfgCnt = scr.int32s(nN)
	s.cfgNIn = scr.int32s(nN)
	s.cfgW = scr.int32s(nN)
	s.wts = scr.floats(nE)
	s.ends = scr.int32s(2 * nE)
	for _, e := range s.g.Edges {
		s.wts[e.ID] = e.ExpectedWeight()
		s.ends[2*e.ID] = int32(e.Src.ID)
		s.ends[2*e.ID+1] = int32(e.Dst.ID)
	}
	s.maxCfg = 0
	for _, n := range s.g.Nodes {
		cnt := s.enumConfigs(n)
		if cnt == 0 {
			return fmt.Errorf("align: no feasible axis/stride configuration for node %d (%s %q)", n.ID, n.Kind, n.Label)
		}
		if cnt > s.maxCfg {
			s.maxCfg = cnt
		}
	}
	s.incOff = scr.int32s(nN + 1)
	scr.inc = scr.inc[:0]
	for _, n := range s.g.Nodes {
		s.incOff[n.ID] = int32(len(scr.inc))
		nIn := len(n.In)
		for i, p := range n.In {
			e := p.Edge
			if e.Src.Node == n {
				// Self-loop: register once, from the input side.
				scr.inc = append(scr.inc, incEdge{
					w: s.wts[e.ID], eid: int32(e.ID), selfLoop: true,
					selfPos: int32(nIn + e.Src.Index), dstPos: int32(i),
				})
				continue
			}
			scr.inc = append(scr.inc, incEdge{
				w: s.wts[e.ID], eid: int32(e.ID), peer: int32(e.Src.ID),
				peerNode: int32(e.Src.Node.ID), selfPos: int32(i),
			})
		}
		for i, p := range n.Out {
			e := p.Edge
			if e.Dst.Node == n {
				continue // self-loop, already registered
			}
			scr.inc = append(scr.inc, incEdge{
				w: s.wts[e.ID], eid: int32(e.ID), peer: int32(e.Dst.ID),
				peerNode: int32(e.Dst.Node.ID), selfPos: int32(nIn + i),
			})
		}
	}
	s.incOff[nN] = int32(len(scr.inc))
	s.inc = scr.inc
	// Evaluation table: per node, per incident slot, the node-side value
	// of every configuration.
	s.evalOff = scr.int32s(nN + 1)
	total := 0
	for nid := 0; nid < nN; nid++ {
		s.evalOff[nid] = int32(total)
		total += int(s.incOff[nid+1]-s.incOff[nid]) * int(s.cfgCnt[nid])
	}
	s.evalOff[nN] = int32(total)
	s.evalBuf = scr.int32s(total)
	for nid := 0; nid < nN; nid++ {
		C := int(s.cfgCnt[nid])
		base := int(s.evalOff[nid])
		incs := s.inc[s.incOff[nid]:s.incOff[nid+1]]
		for k := range incs {
			ie := &incs[k]
			row := s.evalBuf[base+k*C : base+(k+1)*C]
			for c := 0; c < C; c++ {
				r := s.cfgRow(nid, int32(c))
				if ie.selfLoop {
					if r[ie.selfPos] != r[ie.dstPos] {
						row[c] = 1
					}
				} else {
					row[c] = r[ie.selfPos]
				}
			}
		}
	}
	// Match table: first configuration carrying each (port, label) pair.
	// Sized after enumeration — enumConfigs can intern labels candidate
	// generation never admitted to a port.
	s.nLabels = int32(s.tab.size())
	s.matchBuf = scr.int32s(len(s.g.Ports) * int(s.nLabels))
	for nid := 0; nid < nN; nid++ {
		ports := s.nodePorts[s.portOff[nid]:s.portOff[nid+1]]
		for ci := int32(0); ci < s.cfgCnt[nid]; ci++ {
			row := s.cfgRow(nid, ci)
			for i, pid := range ports {
				idx := int(pid)*int(s.nLabels) + int(row[i])
				if s.matchBuf[idx] == 0 {
					s.matchBuf[idx] = ci + 1
				}
			}
		}
	}
	return nil
}

// enumConfigs builds feasible configurations by choosing a label for the
// node's "driver" port and deriving the rest via the constraint. Rows
// are appended to the scratch's flat cfgBuf (deduplicated by a linear
// scan of integer compares); the per-node count is returned.
func (s *asSolver) enumConfigs(n *adg.Node) int {
	scr := s.scr
	nIn := len(n.In)
	w := nIn + len(n.Out)
	start := len(scr.cfgBuf)
	nid := n.ID
	s.cfgOff[nid] = int32(start)
	s.cfgNIn[nid] = int32(nIn)
	s.cfgW[nid] = int32(w)
	if cap(scr.rowBuf) < w {
		scr.rowBuf = make([]int32, w+8)
	}
	row := scr.rowBuf[:w]
	count := 0
	push := func() {
		for c := 0; c < count; c++ {
			if equalIDs(scr.cfgBuf[start+c*w:start+(c+1)*w], row) {
				return
			}
		}
		scr.cfgBuf = append(scr.cfgBuf, row...)
		count++
	}
	switch n.Kind {
	case adg.KindSource, adg.KindSink:
		p := n.In
		if len(p) == 0 {
			p = n.Out
		}
		for _, id := range s.cand(p[0].ID) {
			row[0] = id
			push()
		}
	case adg.KindOp, adg.KindMerge, adg.KindFanout, adg.KindBranch:
		// All equal-rank ports share a label; lower-rank (scalar) ports
		// are unconstrained — give them the identity label.
		rank := 0
		for _, p := range n.In {
			if p.Rank > rank {
				rank = p.Rank
			}
		}
		for _, p := range n.Out {
			if p.Rank > rank {
				rank = p.Rank
			}
		}
		driver := n.Out[0]
		for _, id := range s.cand(driver.ID) {
			l := s.tab.label(id)
			ok := true
			for i, p := range n.In {
				if p.Rank == rank {
					if !compatibleSpaces(l, p) {
						ok = false
						break
					}
					row[i] = id
				} else {
					row[i] = s.ilab(p.Rank)
				}
			}
			if !ok {
				continue
			}
			for i, p := range n.Out {
				if p.Rank == rank {
					row[nIn+i] = id
				} else {
					row[nIn+i] = s.ilab(p.Rank)
				}
			}
			push()
		}
	case adg.KindXform:
		if n.Xform.Kind == adg.XformExit {
			// The inner (input) side drives: the output is the input
			// evaluated at the final iterate.
			for _, id := range s.cand(n.In[0].ID) {
				m, ok := xformOutLabel(s.tab.label(id), n.Xform)
				if ok && compatibleSpaces(m, n.Out[0]) {
					row[0] = id
					row[1] = s.tab.intern(m)
					push()
				}
			}
			break
		}
		for _, id := range s.cand(n.Out[0].ID) {
			m, ok := xformInLabel(s.tab.label(id), n.Xform)
			if ok && compatibleSpaces(m, n.In[0]) {
				row[0] = s.tab.intern(m)
				row[1] = id
				push()
			}
		}
	case adg.KindTranspose:
		for _, id := range s.cand(n.In[0].ID) {
			m := transposeLabel(s.tab.label(id))
			row[0] = id
			row[1] = s.tab.intern(m)
			push()
		}
	case adg.KindSection:
		for _, id := range s.cand(n.In[0].ID) {
			m, ok := sectionLabel(s.tab.label(id), n.Section)
			if ok {
				row[0] = id
				row[1] = s.tab.intern(m)
				push()
			}
		}
	case adg.KindSectionAssign:
		for _, id := range s.cand(n.In[0].ID) {
			m, ok := sectionLabel(s.tab.label(id), n.Section)
			if ok {
				row[0] = id
				row[1] = s.tab.intern(m)
				row[2] = id
				push()
			}
		}
	case adg.KindSpread:
		for _, id := range s.cand(n.In[0].ID) {
			m, ok := spreadLabelMark(s.tab.label(id), n.SpreadDim, s.g.TemplateRank, &s.scr.mark)
			if ok {
				row[0] = id
				row[1] = s.tab.intern(m)
				push()
			}
		}
	case adg.KindReduce:
		for _, id := range s.cand(n.In[0].ID) {
			row[0] = id
			if n.ReduceDim == 0 {
				row[1] = s.ilab(0)
			} else {
				m := reduceLabel(s.tab.label(id), n.ReduceDim)
				row[1] = s.tab.intern(m)
			}
			push()
		}
	case adg.KindGather:
		// Inputs and output keep their own labels; gather communication
		// is intrinsic. Use identity everywhere as the single config.
		for i, p := range n.In {
			row[i] = s.ilab(p.Rank)
		}
		for i, p := range n.Out {
			row[nIn+i] = s.ilab(p.Rank)
		}
		push()
	}
	s.cfgCnt[nid] = int32(count)
	return count
}

func equalIDs(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// perturbIndex deterministically scatters restart seeds over the config
// space (splitmix64-style mixing; no runtime randomness, so every run and
// every parallelism level sees the same starts).
func perturbIndex(seed, node, n int) int {
	x := uint64(seed)*0x9E3779B97F4A7C15 + uint64(node)*0xBF58476D1CE4E5B9 + 0x94D049BB133111EB
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return int(x % uint64(n))
}

// optimize chooses a configuration per node minimizing the total
// discrete-metric edge cost: multi-start iterated best-response (two
// canonical seeds plus perturbed restarts), augmented with
// chain-expansion moves (re-labeling a whole zero-cost region at once)
// that escape the local optima single-node moves cannot. All start
// states are carved from the scratch arena up front (disjoint regions),
// then the starts run concurrently on a bounded worker pool; the winner
// is the lowest-cost start with the lowest seed index, so the outcome is
// identical at every parallelism level. With PruneSlack > 0 the two
// canonical seeds run first and perturbed restarts are abandoned once
// their incumbent cost exceeds (1+PruneSlack)·min(canonical costs) — a
// cutoff fixed before any restart runs, so pruning is deterministic too.
func (s *asSolver) optimize(opts AxisStrideOptions) (DPStats, error) {
	nStarts := 2 + opts.Restarts
	scr := s.scr
	if cap(scr.states) < nStarts {
		scr.states = make([]dpState, nStarts)
	}
	scr.states = scr.states[:nStarts]
	states := scr.states
	for i := range states {
		s.carveState(&states[i])
	}
	runWave := func(lo, hi int, pruneAt float64) {
		if par := min(opts.Parallelism, hi-lo); par <= 1 {
			for seed := lo; seed < hi; seed++ {
				states[seed].init(seed)
				states[seed].run(opts.ctx, pruneAt)
			}
			return
		} else {
			var wg sync.WaitGroup
			sem := make(chan struct{}, par)
			for seed := lo; seed < hi; seed++ {
				wg.Add(1)
				sem <- struct{}{}
				go func(seed int) {
					defer func() { <-sem; wg.Done() }()
					states[seed].init(seed)
					states[seed].run(opts.ctx, pruneAt)
				}(seed)
			}
			wg.Wait()
		}
	}
	noPrune := math.Inf(1)
	if opts.PruneSlack > 0 && nStarts > 2 {
		runWave(0, 2, noPrune)
		ref := states[0].cost
		if states[1].cost < ref {
			ref = states[1].cost
		}
		runWave(2, nStarts, ref*(1+opts.PruneSlack))
	} else {
		runWave(0, nStarts, noPrune)
	}
	// A canceled solve returns the context's error rather than a labeling
	// chosen from aborted starts (their trajectories stopped early, so the
	// winner would not be the deterministic one).
	if opts.ctx != nil {
		if err := opts.ctx.Err(); err != nil {
			var stats DPStats
			for i := range states {
				stats.add(states[i].stats)
			}
			return stats, err
		}
	}
	best := 0
	var stats DPStats
	for i := range states {
		stats.add(states[i].stats)
		if states[i].cost < states[best].cost {
			best = i
		}
	}
	s.best = states[best].cfg
	s.bestLab = states[best].lab
	return stats, nil
}

func (s *asSolver) totalCost(lab []int32) float64 {
	var c float64
	for eid := 0; eid < len(s.wts); eid++ {
		if lab[s.ends[2*eid]] != lab[s.ends[2*eid+1]] {
			c += s.wts[eid]
		}
	}
	return c
}
