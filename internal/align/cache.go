package align

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/adg"
	"repro/internal/expr"
)

// Cache is a bounded, content-addressed memo of completed pipeline
// results. The key is a cryptographic hash of a canonical serialization
// of the ADG plus every option that affects the computed alignment, so a
// hit guarantees the cached result is the one the pipeline would
// recompute — repeated compiles of an unchanged program are O(hash).
// Parallelism settings are deliberately excluded from the key: the
// solvers produce identical results at every parallelism level, so runs
// that differ only in worker count share entries.
//
// The cache is built for many concurrent callers (the batch engine and
// long-running drivers): entries live in a power-of-two number of LRU
// shards selected by the first byte of the SHA-256 key, each shard
// behind its own mutex, so lookups on different keys rarely contend.
// Hit/miss counters are atomic and never serialize the hot path.
//
// Misses have singleflight semantics: concurrent callers that miss on
// the same content key run the §3–§6 pipeline once — one leader
// computes, the rest wait and share the completed result (rehydrated
// onto their own graphs). FlightStats reports how many pipeline
// executions ran and how many were collapsed.
//
// The capacity bound is global, not per shard: a put evicts only once
// the whole cache holds capacity results (the cache never holds more),
// and the victim is the least recently used entry of the inserting
// key's own shard — or, when that shard has nothing else to give, of
// another non-empty shard. Splitting the capacity into fixed per-shard
// quotas instead would evict far below capacity whenever several hot
// keys hash into one shard (with 6 distinct programs in a 24-entry
// cache, three keys sharing a 2-entry shard forced recomputes — caught
// by TestBatchDeterminism/duplicates).
type Cache struct {
	shards   [cacheShards]cacheShard
	nshards  int          // active shards (min(cacheShards, capacity))
	capacity int          // global entry bound across all shards
	size     atomic.Int64 // current entries across all shards

	hits      atomic.Int64
	misses    atomic.Int64
	contended atomic.Int64 // shard-lock acquisitions that had to wait

	flightMu sync.Mutex
	flights  map[string]*flightCall
	computes atomic.Int64 // pipeline executions (singleflight leaders)
	shared   atomic.Int64 // waiters served by another caller's execution
}

// cacheShards is the number of LRU shards (a power of two, indexed by
// the first hex digit of the SHA-256 key).
const cacheShards = 16

// cacheShard is one independently locked LRU.
type cacheShard struct {
	mu      sync.Mutex
	order   *list.List               // front = most recently used
	entries map[string]*list.Element // key → element holding *cacheEntry
}

type cacheEntry struct {
	key string
	res *Result
}

// flightCall is one in-flight pipeline execution; waiters block on done
// (or their own context) and read res/err after the channel closes. The
// channel — rather than a WaitGroup — lets a waiter whose context dies
// abandon the flight without disturbing the leader.
type flightCall struct {
	done chan struct{}
	res  *Result
	err  error
}

// DefaultCacheCap is the entry capacity used when NewCache is given a
// non-positive capacity.
const DefaultCacheCap = 64

// NewCache returns an empty cache holding at most capacity results
// (DefaultCacheCap if capacity <= 0). The bound is strict and global:
// eviction starts only when the cache as a whole is full, never
// because one shard is unlucky in the key hash, and a capacity below
// the shard count shrinks the number of active shards so the cache
// never spreads thinner than one entry per shard.
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCacheCap
	}
	nshards := cacheShards
	if capacity < nshards {
		nshards = capacity
	}
	c := &Cache{nshards: nshards, capacity: capacity}
	for i := 0; i < nshards; i++ {
		c.shards[i].order = list.New()
		c.shards[i].entries = make(map[string]*list.Element)
	}
	return c
}

// shardFor selects the shard from the key's first hex digit (the high
// nibble of the SHA-256), folded into the active shard count. Non-hex
// first bytes (not produced by cacheKey, but tolerated for direct
// get/put use in tests) fold by low bits.
func (c *Cache) shardFor(key string) *cacheShard {
	if len(key) == 0 {
		return &c.shards[0]
	}
	b := key[0]
	switch {
	case b >= '0' && b <= '9':
		b -= '0'
	case b >= 'a' && b <= 'f':
		b -= 'a' - 10
	default:
		b &= cacheShards - 1
	}
	return &c.shards[int(b)%c.nshards]
}

// lock acquires the shard mutex, counting acquisitions that had to wait
// (the contention signal benchreport's E13 row reports).
func (s *cacheShard) lock(c *Cache) {
	if !s.mu.TryLock() {
		c.contended.Add(1)
		s.mu.Lock()
	}
}

// Len returns the number of cached results.
func (c *Cache) Len() int {
	n := 0
	for i := 0; i < c.nshards; i++ {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.order.Len()
		s.mu.Unlock()
	}
	return n
}

// Counters returns the cumulative hit and miss counts of cache
// lookups. A hit is a lookup served from a completed cached entry — the
// fast path of do, its post-flight re-check, or a direct get. A miss is
// a lookup that made the caller compute: for do, exactly the lookups
// that became singleflight leaders (so misses == computes when every
// lookup goes through do). Waiters served by another caller's in-flight
// execution are counted in FlightStats as shared — neither hit nor miss
// — so every completed do call lands in exactly one bucket:
//
//	hits + shared + misses == completed do() calls
//
// (a waiter that abandons a flight on cancellation counts nowhere).
func (c *Cache) Counters() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// FlightStats returns how many pipeline executions the cache admitted
// (computes: singleflight leaders, i.e. distinct solves actually run —
// always equal to the miss count of Counters for do-only usage) and how
// many callers were served by waiting on another caller's in-flight
// execution instead of solving themselves (shared; these callers appear
// in neither the hit nor the miss count — see Counters).
func (c *Cache) FlightStats() (computes, shared int64) {
	return c.computes.Load(), c.shared.Load()
}

// Contention returns how many shard-lock acquisitions had to wait for
// another goroutine (a cheap proxy for cache lock contention).
func (c *Cache) Contention() int64 { return c.contended.Load() }

// Shards returns the number of active independently locked LRU shards.
func (c *Cache) Shards() int { return c.nshards }

// get returns the cached result for key (marking it most recently used)
// or nil, updating the hit/miss counters. The hit path performs no
// allocation (asserted by TestCacheGetZeroAlloc).
func (c *Cache) get(key string) *Result {
	s := c.shardFor(key)
	s.lock(c)
	el, ok := s.entries[key]
	if !ok {
		s.mu.Unlock()
		c.misses.Add(1)
		return nil
	}
	s.order.MoveToFront(el)
	res := el.Value.(*cacheEntry).res
	s.mu.Unlock()
	c.hits.Add(1)
	return res
}

// peek is get without touching the hit/miss counters: do's fast path
// and its singleflight re-check use it, counting explicitly at the
// lookup's terminal outcome, so a single logical lookup is never
// double-counted (a shared waiter is not a miss, a re-check hit is not
// a miss — it is a hit).
func (c *Cache) peek(key string) *Result {
	s := c.shardFor(key)
	s.lock(c)
	defer s.mu.Unlock()
	if el, ok := s.entries[key]; ok {
		s.order.MoveToFront(el)
		return el.Value.(*cacheEntry).res
	}
	return nil
}

// put stores a result under key. The capacity bound is global: nothing
// is evicted while the cache holds fewer than capacity entries, and
// once it is full the victim is the LRU entry of the inserting key's
// own shard — or, when that shard holds nothing but the fresh entry,
// the LRU of another non-empty shard (stolen with TryLock so two
// concurrent stealers can never deadlock on each other's shards).
func (c *Cache) put(key string, res *Result) {
	s := c.shardFor(key)
	s.lock(c)
	if el, ok := s.entries[key]; ok {
		el.Value.(*cacheEntry).res = res
		s.order.MoveToFront(el)
		s.mu.Unlock()
		return
	}
	s.entries[key] = s.order.PushFront(&cacheEntry{key: key, res: res})
	if s.order.Len() > 1 && int(c.size.Load()) >= c.capacity {
		// Cache full and this shard has an older entry: evict locally
		// under the lock already held. The swap leaves size unchanged.
		back := s.order.Back()
		s.order.Remove(back)
		delete(s.entries, back.Value.(*cacheEntry).key)
		s.mu.Unlock()
		return
	}
	n := c.size.Add(1)
	s.mu.Unlock()
	if int(n) <= c.capacity {
		return
	}
	// Over capacity and the inserting shard had nothing else to evict:
	// steal the LRU of a non-empty shard. No lock is held here, so the
	// TryLock sweep cannot deadlock; a fully contended or momentarily
	// all-empty sweep (another put racing its own eviction) retries.
	for {
		for i := 0; i < c.nshards; i++ {
			v := &c.shards[i]
			if !v.mu.TryLock() {
				continue
			}
			if v.order.Len() > 1 || (v.order.Len() == 1 && v != s) {
				back := v.order.Back()
				v.order.Remove(back)
				delete(v.entries, back.Value.(*cacheEntry).key)
				c.size.Add(-1)
				v.mu.Unlock()
				return
			}
			v.mu.Unlock()
		}
		runtime.Gosched()
	}
}

// do returns the result for key, computing it at most once across
// concurrent callers: a fast-path lookup, then singleflight on miss.
// owned reports that the returned result was computed by this caller
// and is already bound to its graph; when false the result belongs to
// the cache (or to another caller's solve) and must be rehydrated.
// Errors are not cached: every waiter of a failed flight receives the
// error, and the next caller retries.
//
// A waiter whose ctx dies abandons the flight and returns ctx.Err()
// immediately; the leader's solve is unaffected and its result still
// lands in the cache for later callers. Flight cleanup runs in a defer,
// so a compute that panics still wakes every waiter (with an error
// carrying the panic value) and leaves the flight table clean before
// the panic propagates to the leader's own recovery boundary — no
// future caller of the key can block on a dead flight.
func (c *Cache) do(ctx context.Context, key string, compute func() (*Result, error)) (res *Result, owned bool, err error) {
	// Counter discipline (see Counters): the fast path must not count a
	// miss yet — this caller may still be served without computing, as a
	// flight waiter or by the post-flight re-check. Only the three
	// terminal outcomes count: served from the cache (hit), served by
	// another caller's execution (shared), or computed here (miss).
	if hit := c.peek(key); hit != nil {
		c.hits.Add(1)
		return hit, false, nil
	}
	c.flightMu.Lock()
	if c.flights == nil {
		c.flights = make(map[string]*flightCall)
	}
	if call, ok := c.flights[key]; ok {
		c.flightMu.Unlock()
		var done <-chan struct{}
		if ctx != nil {
			done = ctx.Done()
		}
		select {
		case <-call.done:
			c.shared.Add(1)
			return call.res, false, call.err
		case <-done:
			return nil, false, ctx.Err()
		}
	}
	// No flight in progress: re-check the cache before becoming the
	// leader. A previous leader may have completed inside the window
	// between this caller's fast-path miss and the flight-lock
	// acquisition; since completion publishes to the cache before
	// removing the flight entry, an absent flight guarantees a finished
	// compute is already visible here — without this re-check a fast
	// solve (the network path) races duplicate executions into being.
	if hit := c.peek(key); hit != nil {
		c.flightMu.Unlock()
		c.hits.Add(1)
		return hit, false, nil
	}
	call := &flightCall{done: make(chan struct{})}
	c.flights[key] = call
	c.flightMu.Unlock()

	c.misses.Add(1)
	c.computes.Add(1)
	completed := false
	defer func() {
		if !completed {
			// compute panicked: record it for the waiters; the panic
			// itself keeps unwinding past this defer to the leader's
			// per-slot recover.
			call.res, call.err = nil, fmt.Errorf("align: solve panicked for key %.12s…", key)
		}
		if call.err == nil {
			c.put(key, call.res)
		}
		c.flightMu.Lock()
		delete(c.flights, key)
		c.flightMu.Unlock()
		close(call.done)
	}()
	call.res, call.err = compute()
	completed = true
	return call.res, true, call.err
}

// cacheKey derives the content address of one alignment problem: a
// SHA-256 over a canonical serialization of the graph (template rank;
// every node's kind, label, and kind-specific payload; every port's
// rank, extents, and iteration space; every edge's endpoints and control
// weight) and of the result-affecting options. Node, port, and edge IDs
// are dense construction-order indices, so structurally identical graphs
// serialize identically.
func cacheKey(g *adg.Graph, opts Options) string {
	h := sha256.New()
	fmt.Fprintf(h, "v1|tr%d|", g.TemplateRank)
	for _, n := range g.Nodes {
		fmt.Fprintf(h, "n%d;%d;%q;%d;%d;", n.ID, n.Kind, n.Label, len(n.In), len(n.Out))
		if n.Section != nil {
			for _, s := range n.Section.Subs {
				fmt.Fprintf(h, "s%v;%v;", s.IsRange, s.IsVector)
				hashAffine(h, s.Lo)
				hashAffine(h, s.Hi)
				hashAffine(h, s.Step)
				hashAffine(h, s.Index)
			}
		}
		fmt.Fprintf(h, "sp%d;", n.SpreadDim)
		hashAffine(h, n.SpreadCopies)
		fmt.Fprintf(h, "rd%d;ro%v;cm%v;", n.ReduceDim, n.ReadOnly, n.CondMerge)
		if n.Xform != nil {
			fmt.Fprintf(h, "x%d;%q;", n.Xform.Kind, n.Xform.LIV)
			hashAffine(h, n.Xform.Lo)
			hashAffine(h, n.Xform.Hi)
			hashAffine(h, n.Xform.Step)
		}
	}
	for _, p := range g.Ports {
		fmt.Fprintf(h, "p%d;%d;", p.ID, p.Rank)
		for _, e := range p.Extents {
			hashAffine(h, e)
		}
		fmt.Fprintf(h, "|")
		for k, liv := range p.Space.LIVs {
			fmt.Fprintf(h, "%q;", liv)
			hashAffine(h, p.Space.Lo[k])
			hashAffine(h, p.Space.Hi[k])
			hashAffine(h, p.Space.Step[k])
		}
	}
	for _, e := range g.Edges {
		fmt.Fprintf(h, "e%d;%d;%d;%g;", e.ID, e.Src.ID, e.Dst.ID, e.Control)
	}
	// Result-affecting options only: parallelism is excluded on purpose
	// (the computed alignment is identical at every worker count —
	// TestOffsetEngineDeterminism pins this per engine mode). The LP
	// engine toggles ARE keyed: the network fast path must match the
	// engine it replaces byte for byte (same test), but a degenerate RLP
	// can have many optimal vertices and the dense and sparse simplex
	// cores may legitimately round different ones (equal approximate
	// objective, different alignments), so runs under different forced
	// engines must not share cache entries.
	// Partition is keyed even though the computed alignment is identical
	// either way: the toggle changes what a solve teaches the cache
	// (per-region entries and region-hit accounting), so runs under
	// different settings must not masquerade as each other's results.
	// Region subproblems are keyed with Partition=false, which makes a
	// region entry identical to the whole-program entry of the same
	// program solved standalone with partitioning off.
	// Presolve is keyed for the same reason as the engine toggles: the
	// block-split solve and the whole-problem solve agree on the
	// objective but a degenerate RLP can have many optimal vertices,
	// and the per-block engines may round a different one than the
	// monolithic simplex.
	fmt.Fprintf(h, "o|%d;%d;%d;%d;%v;%v;%d;%d;%d;%v;%g;%v;%d;",
		opts.Offset.Strategy, opts.Offset.M, opts.Offset.MaxRefine,
		opts.Offset.UnrollCap, opts.Offset.Static,
		opts.Replication, opts.ReplicationRounds, opts.AxisStride.Restarts,
		opts.Offset.Engine, opts.Offset.NoNetPath, opts.AxisStride.PruneSlack,
		opts.Partition, opts.Offset.Presolve)
	return hex.EncodeToString(h.Sum(nil))
}

func hashAffine(h hash.Hash, a expr.Affine) {
	fmt.Fprintf(h, "a%d", a.ConstPart())
	a.EachTerm(func(t expr.Term) bool {
		fmt.Fprintf(h, "+%d%s", t.Coef, t.Var)
		return true
	})
	fmt.Fprintf(h, ";")
}

// rehydrate rebinds a cached result to g, a graph whose canonical
// serialization matched the cached one: every node, port, and edge ID
// denotes the same structural element, so edge lists remap by ID and
// per-port tables copy over unchanged. Label, stride, and offset values
// (ASLabel, expr.Affine) are immutable and shared with the cached
// result; the containers are fresh so callers may extend them freely.
func (r *Result) rehydrate(g *adg.Graph) *Result {
	as := &AxisStrideResult{
		Labels: make(map[int]ASLabel, len(r.AxisStride.Labels)),
		Cost:   r.AxisStride.Cost,
		Stats:  r.AxisStride.Stats,
	}
	for id, l := range r.AxisStride.Labels {
		as.Labels[id] = l
	}
	for _, e := range r.AxisStride.GeneralEdges {
		as.GeneralEdges = append(as.GeneralEdges, g.Edges[e.ID])
	}
	repl := &ReplResult{
		PortRepl:  make(map[int][]bool, len(r.Repl.PortRepl)),
		PerAxis:   append([]int64{}, r.Repl.PerAxis...),
		Broadcast: r.Repl.Broadcast,
		CutEdges:  make([][]*adg.Edge, len(r.Repl.CutEdges)),
	}
	for id, v := range r.Repl.PortRepl {
		repl.PortRepl[id] = append([]bool{}, v...)
	}
	for t, cut := range r.Repl.CutEdges {
		for _, e := range cut {
			repl.CutEdges[t] = append(repl.CutEdges[t], g.Edges[e.ID])
		}
	}
	off := &OffsetResult{
		Offsets:       make(map[int][]expr.Affine, len(r.Offset.Offsets)),
		Approx:        r.Offset.Approx,
		Exact:         r.Offset.Exact,
		LPVariables:   r.Offset.LPVariables,
		LPConstraints: r.Offset.LPConstraints,
		Solves:        r.Offset.Solves,
		Stats:         r.Offset.Stats,
	}
	for id, v := range r.Offset.Offsets {
		off.Offsets[id] = append([]expr.Affine{}, v...)
	}
	out := &Result{
		Graph:      g,
		AxisStride: as,
		Repl:       repl,
		Offset:     off,
		CacheHit:   true,
		Regions:    r.Regions,
		RegionHits: r.RegionHits,
	}
	out.Assignment = out.BuildAssignment()
	return out
}
