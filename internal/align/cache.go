package align

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash"
	"sync"

	"repro/internal/adg"
	"repro/internal/expr"
)

// Cache is a bounded, content-addressed memo of completed pipeline
// results. The key is a cryptographic hash of a canonical serialization
// of the ADG plus every option that affects the computed alignment, so a
// hit guarantees the cached result is the one the pipeline would
// recompute — repeated compiles of an unchanged program are O(hash).
// Parallelism settings are deliberately excluded from the key: the
// solvers produce identical results at every parallelism level, so runs
// that differ only in worker count share entries.
//
// Eviction is LRU with a fixed capacity. A Cache is safe for concurrent
// use and is intended to be shared across Align calls (and across
// goroutines of a long-running driver).
type Cache struct {
	mu      sync.Mutex
	cap     int
	order   *list.List               // front = most recently used
	entries map[string]*list.Element // key → element holding *cacheEntry
	hits    int64
	misses  int64
}

type cacheEntry struct {
	key string
	res *Result
}

// DefaultCacheCap is the entry capacity used when NewCache is given a
// non-positive capacity.
const DefaultCacheCap = 64

// NewCache returns an empty cache holding at most capacity results
// (DefaultCacheCap if capacity <= 0).
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCacheCap
	}
	return &Cache{
		cap:     capacity,
		order:   list.New(),
		entries: make(map[string]*list.Element, capacity),
	}
}

// Len returns the number of cached results.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Counters returns the cumulative hit and miss counts.
func (c *Cache) Counters() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// get returns the cached result for key (marking it most recently used)
// or nil, updating the hit/miss counters.
func (c *Cache) get(key string) *Result {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).res
}

// put stores a result under key, evicting the least recently used entry
// when the cache is full.
func (c *Cache) put(key string, res *Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).res = res
		c.order.MoveToFront(el)
		return
	}
	for c.order.Len() >= c.cap {
		back := c.order.Back()
		c.order.Remove(back)
		delete(c.entries, back.Value.(*cacheEntry).key)
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, res: res})
}

// cacheKey derives the content address of one alignment problem: a
// SHA-256 over a canonical serialization of the graph (template rank;
// every node's kind, label, and kind-specific payload; every port's
// rank, extents, and iteration space; every edge's endpoints and control
// weight) and of the result-affecting options. Node, port, and edge IDs
// are dense construction-order indices, so structurally identical graphs
// serialize identically.
func cacheKey(g *adg.Graph, opts Options) string {
	h := sha256.New()
	fmt.Fprintf(h, "v1|tr%d|", g.TemplateRank)
	for _, n := range g.Nodes {
		fmt.Fprintf(h, "n%d;%d;%q;%d;%d;", n.ID, n.Kind, n.Label, len(n.In), len(n.Out))
		if n.Section != nil {
			for _, s := range n.Section.Subs {
				fmt.Fprintf(h, "s%v;%v;", s.IsRange, s.IsVector)
				hashAffine(h, s.Lo)
				hashAffine(h, s.Hi)
				hashAffine(h, s.Step)
				hashAffine(h, s.Index)
			}
		}
		fmt.Fprintf(h, "sp%d;", n.SpreadDim)
		hashAffine(h, n.SpreadCopies)
		fmt.Fprintf(h, "rd%d;ro%v;cm%v;", n.ReduceDim, n.ReadOnly, n.CondMerge)
		if n.Xform != nil {
			fmt.Fprintf(h, "x%d;%q;", n.Xform.Kind, n.Xform.LIV)
			hashAffine(h, n.Xform.Lo)
			hashAffine(h, n.Xform.Hi)
			hashAffine(h, n.Xform.Step)
		}
	}
	for _, p := range g.Ports {
		fmt.Fprintf(h, "p%d;%d;", p.ID, p.Rank)
		for _, e := range p.Extents {
			hashAffine(h, e)
		}
		fmt.Fprintf(h, "|")
		for k, liv := range p.Space.LIVs {
			fmt.Fprintf(h, "%q;", liv)
			hashAffine(h, p.Space.Lo[k])
			hashAffine(h, p.Space.Hi[k])
			hashAffine(h, p.Space.Step[k])
		}
	}
	for _, e := range g.Edges {
		fmt.Fprintf(h, "e%d;%d;%d;%g;", e.ID, e.Src.ID, e.Dst.ID, e.Control)
	}
	// Result-affecting options only: parallelism is excluded on purpose.
	fmt.Fprintf(h, "o|%d;%d;%d;%d;%v;%v;%d;%d;",
		opts.Offset.Strategy, opts.Offset.M, opts.Offset.MaxRefine,
		opts.Offset.UnrollCap, opts.Offset.Static,
		opts.Replication, opts.ReplicationRounds, opts.AxisStride.Restarts)
	return hex.EncodeToString(h.Sum(nil))
}

func hashAffine(h hash.Hash, a expr.Affine) {
	fmt.Fprintf(h, "a%d", a.ConstPart())
	a.EachTerm(func(t expr.Term) bool {
		fmt.Fprintf(h, "+%d%s", t.Coef, t.Var)
		return true
	})
	fmt.Fprintf(h, ";")
}

// rehydrate rebinds a cached result to g, a graph whose canonical
// serialization matched the cached one: every node, port, and edge ID
// denotes the same structural element, so edge lists remap by ID and
// per-port tables copy over unchanged. Label, stride, and offset values
// (ASLabel, expr.Affine) are immutable and shared with the cached
// result; the containers are fresh so callers may extend them freely.
func (r *Result) rehydrate(g *adg.Graph) *Result {
	as := &AxisStrideResult{
		Labels: make(map[int]ASLabel, len(r.AxisStride.Labels)),
		Cost:   r.AxisStride.Cost,
		Stats:  r.AxisStride.Stats,
	}
	for id, l := range r.AxisStride.Labels {
		as.Labels[id] = l
	}
	for _, e := range r.AxisStride.GeneralEdges {
		as.GeneralEdges = append(as.GeneralEdges, g.Edges[e.ID])
	}
	repl := &ReplResult{
		PortRepl:  make(map[int][]bool, len(r.Repl.PortRepl)),
		PerAxis:   append([]int64{}, r.Repl.PerAxis...),
		Broadcast: r.Repl.Broadcast,
		CutEdges:  make([][]*adg.Edge, len(r.Repl.CutEdges)),
	}
	for id, v := range r.Repl.PortRepl {
		repl.PortRepl[id] = append([]bool{}, v...)
	}
	for t, cut := range r.Repl.CutEdges {
		for _, e := range cut {
			repl.CutEdges[t] = append(repl.CutEdges[t], g.Edges[e.ID])
		}
	}
	off := &OffsetResult{
		Offsets:       make(map[int][]expr.Affine, len(r.Offset.Offsets)),
		Approx:        r.Offset.Approx,
		Exact:         r.Offset.Exact,
		LPVariables:   r.Offset.LPVariables,
		LPConstraints: r.Offset.LPConstraints,
		Solves:        r.Offset.Solves,
		Stats:         r.Offset.Stats,
	}
	for id, v := range r.Offset.Offsets {
		off.Offsets[id] = append([]expr.Affine{}, v...)
	}
	out := &Result{
		Graph:      g,
		AxisStride: as,
		Repl:       repl,
		Offset:     off,
		CacheHit:   true,
	}
	out.Assignment = out.BuildAssignment()
	return out
}
