package align

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/adg"
	"repro/internal/expr"
)

// Cache is a bounded, content-addressed memo of completed pipeline
// results. The key is a cryptographic hash of a canonical serialization
// of the ADG plus every option that affects the computed alignment, so a
// hit guarantees the cached result is the one the pipeline would
// recompute — repeated compiles of an unchanged program are O(hash).
// Parallelism settings are deliberately excluded from the key: the
// solvers produce identical results at every parallelism level, so runs
// that differ only in worker count share entries.
//
// The cache is built for many concurrent callers (the batch engine and
// long-running drivers): entries live in a power-of-two number of LRU
// shards selected by the first byte of the SHA-256 key, each shard
// behind its own mutex, so lookups on different keys rarely contend.
// Hit/miss counters are atomic and never serialize the hot path.
//
// Misses have singleflight semantics: concurrent callers that miss on
// the same content key run the §3–§6 pipeline once — one leader
// computes, the rest wait and share the completed result (rehydrated
// onto their own graphs). FlightStats reports how many pipeline
// executions ran and how many were collapsed.
//
// The capacity bound is global, not per shard: a put evicts only once
// the whole cache holds capacity results (the cache never holds more),
// and the victim is the least recently used entry of the inserting
// key's own shard — or, when that shard has nothing else to give, of
// another non-empty shard. Splitting the capacity into fixed per-shard
// quotas instead would evict far below capacity whenever several hot
// keys hash into one shard (with 6 distinct programs in a 24-entry
// cache, three keys sharing a 2-entry shard forced recomputes — caught
// by TestBatchDeterminism/duplicates).
type Cache struct {
	shards   [cacheShards]cacheShard
	nshards  int          // active shards (min(cacheShards, capacity))
	capacity int          // global entry bound across all shards
	size     atomic.Int64 // current entries across all shards

	hits      atomic.Int64
	misses    atomic.Int64
	contended atomic.Int64 // shard-lock acquisitions that had to wait

	flightMu sync.Mutex
	flights  map[string]*flightCall
	computes atomic.Int64 // pipeline executions (singleflight leaders)
	shared   atomic.Int64 // waiters served by another caller's execution

	// src is the source-keyed memo tier layered in front of the whole
	// pipeline by AlignSource-style front ends; see srcmemo.go.
	src srcState
}

// cacheShards is the number of LRU shards (a power of two, indexed by
// the first hex digit of the SHA-256 key).
const cacheShards = 16

// cacheShard is one independently locked LRU.
type cacheShard struct {
	mu      sync.Mutex
	order   *list.List               // front = most recently used
	entries map[string]*list.Element // key → element holding *cacheEntry
}

type cacheEntry struct {
	key string
	res *Result
}

// flightCall is one in-flight pipeline execution; waiters block on done
// (or their own context) and read res/err after the channel closes. The
// channel — rather than a WaitGroup — lets a waiter whose context dies
// abandon the flight without disturbing the leader.
type flightCall struct {
	done chan struct{}
	res  *Result
	err  error
}

// DefaultCacheCap is the entry capacity used when NewCache is given a
// non-positive capacity.
const DefaultCacheCap = 64

// NewCache returns an empty cache holding at most capacity results
// (DefaultCacheCap if capacity <= 0). The bound is strict and global:
// eviction starts only when the cache as a whole is full, never
// because one shard is unlucky in the key hash, and a capacity below
// the shard count shrinks the number of active shards so the cache
// never spreads thinner than one entry per shard.
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCacheCap
	}
	nshards := cacheShards
	if capacity < nshards {
		nshards = capacity
	}
	c := &Cache{nshards: nshards, capacity: capacity}
	for i := 0; i < nshards; i++ {
		c.shards[i].order = list.New()
		c.shards[i].entries = make(map[string]*list.Element)
	}
	c.initSource()
	return c
}

// shardFor selects the shard from the key's first hex digit (the high
// nibble of the SHA-256), folded into the active shard count. Non-hex
// first bytes (not produced by cacheKey, but tolerated for direct
// get/put use in tests) fold by low bits.
func (c *Cache) shardFor(key string) *cacheShard {
	if len(key) == 0 {
		return &c.shards[0]
	}
	b := key[0]
	switch {
	case b >= '0' && b <= '9':
		b -= '0'
	case b >= 'a' && b <= 'f':
		b -= 'a' - 10
	default:
		b &= cacheShards - 1
	}
	return &c.shards[int(b)%c.nshards]
}

// lock acquires the shard mutex, counting acquisitions that had to wait
// (the contention signal benchreport's E13 row reports).
func (s *cacheShard) lock(c *Cache) {
	if !s.mu.TryLock() {
		c.contended.Add(1)
		s.mu.Lock()
	}
}

// Len returns the number of cached results.
func (c *Cache) Len() int {
	n := 0
	for i := 0; i < c.nshards; i++ {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.order.Len()
		s.mu.Unlock()
	}
	return n
}

// Counters returns the cumulative hit and miss counts of cache
// lookups. A hit is a lookup served from a completed cached entry — the
// fast path of do, its post-flight re-check, or a direct get. A miss is
// a lookup that made the caller compute: for do, exactly the lookups
// that became singleflight leaders (so misses == computes when every
// lookup goes through do). Waiters served by another caller's in-flight
// execution are counted in FlightStats as shared — neither hit nor miss
// — so every completed do call lands in exactly one bucket:
//
//	hits + shared + misses == completed do() calls
//
// (a waiter that abandons a flight on cancellation counts nowhere).
func (c *Cache) Counters() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// FlightStats returns how many pipeline executions the cache admitted
// (computes: singleflight leaders, i.e. distinct solves actually run —
// always equal to the miss count of Counters for do-only usage) and how
// many callers were served by waiting on another caller's in-flight
// execution instead of solving themselves (shared; these callers appear
// in neither the hit nor the miss count — see Counters).
func (c *Cache) FlightStats() (computes, shared int64) {
	return c.computes.Load(), c.shared.Load()
}

// Contention returns how many shard-lock acquisitions had to wait for
// another goroutine (a cheap proxy for cache lock contention).
func (c *Cache) Contention() int64 { return c.contended.Load() }

// Shards returns the number of active independently locked LRU shards.
func (c *Cache) Shards() int { return c.nshards }

// get returns the cached result for key (marking it most recently used)
// or nil, updating the hit/miss counters. The hit path performs no
// allocation (asserted by TestCacheGetZeroAlloc).
func (c *Cache) get(key string) *Result {
	s := c.shardFor(key)
	s.lock(c)
	el, ok := s.entries[key]
	if !ok {
		s.mu.Unlock()
		c.misses.Add(1)
		return nil
	}
	s.order.MoveToFront(el)
	res := el.Value.(*cacheEntry).res
	s.mu.Unlock()
	c.hits.Add(1)
	return res
}

// peek is get without touching the hit/miss counters: do's fast path
// and its singleflight re-check use it, counting explicitly at the
// lookup's terminal outcome, so a single logical lookup is never
// double-counted (a shared waiter is not a miss, a re-check hit is not
// a miss — it is a hit).
func (c *Cache) peek(key string) *Result {
	s := c.shardFor(key)
	s.lock(c)
	defer s.mu.Unlock()
	if el, ok := s.entries[key]; ok {
		s.order.MoveToFront(el)
		return el.Value.(*cacheEntry).res
	}
	return nil
}

// put stores a result under key. The capacity bound is global: nothing
// is evicted while the cache holds fewer than capacity entries, and
// once it is full the victim is the LRU entry of the inserting key's
// own shard — or, when that shard holds nothing but the fresh entry,
// the LRU of another non-empty shard (stolen with TryLock so two
// concurrent stealers can never deadlock on each other's shards).
func (c *Cache) put(key string, res *Result) {
	s := c.shardFor(key)
	s.lock(c)
	if el, ok := s.entries[key]; ok {
		el.Value.(*cacheEntry).res = res
		s.order.MoveToFront(el)
		s.mu.Unlock()
		return
	}
	s.entries[key] = s.order.PushFront(&cacheEntry{key: key, res: res})
	if s.order.Len() > 1 && int(c.size.Load()) >= c.capacity {
		// Cache full and this shard has an older entry: evict locally
		// under the lock already held. The swap leaves size unchanged.
		back := s.order.Back()
		s.order.Remove(back)
		delete(s.entries, back.Value.(*cacheEntry).key)
		s.mu.Unlock()
		return
	}
	n := c.size.Add(1)
	s.mu.Unlock()
	if int(n) <= c.capacity {
		return
	}
	// Over capacity and the inserting shard had nothing else to evict:
	// steal the LRU of a non-empty shard. No lock is held here, so the
	// TryLock sweep cannot deadlock; a fully contended or momentarily
	// all-empty sweep (another put racing its own eviction) retries.
	for {
		for i := 0; i < c.nshards; i++ {
			v := &c.shards[i]
			if !v.mu.TryLock() {
				continue
			}
			if v.order.Len() > 1 || (v.order.Len() == 1 && v != s) {
				back := v.order.Back()
				v.order.Remove(back)
				delete(v.entries, back.Value.(*cacheEntry).key)
				c.size.Add(-1)
				v.mu.Unlock()
				return
			}
			v.mu.Unlock()
		}
		runtime.Gosched()
	}
}

// do returns the result for key, computing it at most once across
// concurrent callers: a fast-path lookup, then singleflight on miss.
// owned reports that the returned result was computed by this caller
// and is already bound to its graph; when false the result belongs to
// the cache (or to another caller's solve) and must be rehydrated.
// Errors are not cached: every waiter of a failed flight receives the
// error, and the next caller retries.
//
// A waiter whose ctx dies abandons the flight and returns ctx.Err()
// immediately; the leader's solve is unaffected and its result still
// lands in the cache for later callers. Flight cleanup runs in a defer,
// so a compute that panics still wakes every waiter (with an error
// carrying the panic value) and leaves the flight table clean before
// the panic propagates to the leader's own recovery boundary — no
// future caller of the key can block on a dead flight.
func (c *Cache) do(ctx context.Context, key string, compute func() (*Result, error)) (res *Result, owned bool, err error) {
	// Counter discipline (see Counters): the fast path must not count a
	// miss yet — this caller may still be served without computing, as a
	// flight waiter or by the post-flight re-check. Only the three
	// terminal outcomes count: served from the cache (hit), served by
	// another caller's execution (shared), or computed here (miss).
	if hit := c.peek(key); hit != nil {
		c.hits.Add(1)
		return hit, false, nil
	}
	c.flightMu.Lock()
	if c.flights == nil {
		c.flights = make(map[string]*flightCall)
	}
	if call, ok := c.flights[key]; ok {
		c.flightMu.Unlock()
		var done <-chan struct{}
		if ctx != nil {
			done = ctx.Done()
		}
		select {
		case <-call.done:
			c.shared.Add(1)
			return call.res, false, call.err
		case <-done:
			return nil, false, ctx.Err()
		}
	}
	// No flight in progress: re-check the cache before becoming the
	// leader. A previous leader may have completed inside the window
	// between this caller's fast-path miss and the flight-lock
	// acquisition; since completion publishes to the cache before
	// removing the flight entry, an absent flight guarantees a finished
	// compute is already visible here — without this re-check a fast
	// solve (the network path) races duplicate executions into being.
	if hit := c.peek(key); hit != nil {
		c.flightMu.Unlock()
		c.hits.Add(1)
		return hit, false, nil
	}
	call := &flightCall{done: make(chan struct{})}
	c.flights[key] = call
	c.flightMu.Unlock()

	c.misses.Add(1)
	c.computes.Add(1)
	completed := false
	defer func() {
		if !completed {
			// compute panicked: record it for the waiters; the panic
			// itself keeps unwinding past this defer to the leader's
			// per-slot recover.
			call.res, call.err = nil, fmt.Errorf("align: solve panicked for key %.12s…", key)
		}
		if call.err == nil {
			c.put(key, call.res)
		}
		c.flightMu.Lock()
		delete(c.flights, key)
		c.flightMu.Unlock()
		close(call.done)
	}()
	call.res, call.err = compute()
	completed = true
	return call.res, true, call.err
}

// keyWriter is a pooled incremental hasher: serialization bytes are
// appended to a reusable buffer with strconv (no fmt boxing) and fed to
// the SHA-256 block function whenever the buffer fills, so keying a
// graph hashes while it walks instead of materializing the canonical
// byte slice. The only steady-state allocation of a key computation is
// the returned hex string.
type keyWriter struct {
	h   hash.Hash
	buf []byte
	sum [sha256.Size]byte
}

var keyWriterPool = sync.Pool{
	New: func() any {
		return &keyWriter{h: sha256.New(), buf: make([]byte, 0, 1024)}
	},
}

// flush feeds the buffered bytes to the hash once the buffer is near
// capacity (keeping writes block-sized) — call sites append at most a
// few dozen bytes between checks.
func (w *keyWriter) flushIfFull() {
	if len(w.buf) >= cap(w.buf)-64 {
		w.h.Write(w.buf)
		w.buf = w.buf[:0]
	}
}

func (w *keyWriter) str(s string) {
	// Length-prefixed so adjacent strings cannot alias each other's
	// serialization ("ab","c" vs "a","bc").
	w.buf = strconv.AppendInt(w.buf, int64(len(s)), 10)
	w.buf = append(w.buf, ':')
	if len(s) > cap(w.buf)-len(w.buf) {
		w.h.Write(w.buf)
		w.buf = w.buf[:0]
		w.h.Write([]byte(s))
		return
	}
	w.buf = append(w.buf, s...)
}

func (w *keyWriter) int(v int64) {
	w.buf = strconv.AppendInt(w.buf, v, 10)
	w.buf = append(w.buf, ';')
	w.flushIfFull()
}

func (w *keyWriter) boolean(v bool) {
	if v {
		w.buf = append(w.buf, "1;"...)
	} else {
		w.buf = append(w.buf, "0;"...)
	}
	w.flushIfFull()
}

func (w *keyWriter) float(v float64) {
	w.buf = strconv.AppendFloat(w.buf, v, 'g', -1, 64)
	w.buf = append(w.buf, ';')
	w.flushIfFull()
}

func (w *keyWriter) affine(a expr.Affine) {
	w.buf = append(w.buf, 'a')
	w.buf = strconv.AppendInt(w.buf, a.ConstPart(), 10)
	a.EachTerm(func(t expr.Term) bool {
		w.buf = append(w.buf, '+')
		w.buf = strconv.AppendInt(w.buf, t.Coef, 10)
		w.buf = append(w.buf, t.Var...)
		return true
	})
	w.buf = append(w.buf, ';')
	w.flushIfFull()
}

// hexSum finishes the hash and returns the lowercase hex digest.
func (w *keyWriter) hexSum() string {
	if len(w.buf) > 0 {
		w.h.Write(w.buf)
		w.buf = w.buf[:0]
	}
	return hex.EncodeToString(w.h.Sum(w.sum[:0]))
}

// cacheKey derives the content address of one alignment problem: a
// SHA-256 over a canonical serialization of the graph (template rank;
// every node's kind, label, and kind-specific payload; every port's
// rank, extents, and iteration space; every edge's endpoints and control
// weight) and of the result-affecting options. Node, port, and edge IDs
// are dense construction-order indices, so structurally identical graphs
// serialize identically.
func cacheKey(g *adg.Graph, opts Options) string {
	w := keyWriterPool.Get().(*keyWriter)
	w.h.Reset()
	w.buf = w.buf[:0]
	w.buf = append(w.buf, "v2|tr"...)
	w.int(int64(g.TemplateRank))
	for _, n := range g.Nodes {
		w.buf = append(w.buf, 'n')
		w.int(int64(n.ID))
		w.int(int64(n.Kind))
		w.str(n.Label)
		w.int(int64(len(n.In)))
		w.int(int64(len(n.Out)))
		if n.Section != nil {
			for _, s := range n.Section.Subs {
				w.buf = append(w.buf, 's')
				w.boolean(s.IsRange)
				w.boolean(s.IsVector)
				w.affine(s.Lo)
				w.affine(s.Hi)
				w.affine(s.Step)
				w.affine(s.Index)
			}
		}
		w.buf = append(w.buf, "sp"...)
		w.int(int64(n.SpreadDim))
		w.affine(n.SpreadCopies)
		w.buf = append(w.buf, "rd"...)
		w.int(int64(n.ReduceDim))
		w.boolean(n.ReadOnly)
		w.boolean(n.CondMerge)
		if n.Xform != nil {
			w.buf = append(w.buf, 'x')
			w.int(int64(n.Xform.Kind))
			w.str(n.Xform.LIV)
			w.affine(n.Xform.Lo)
			w.affine(n.Xform.Hi)
			w.affine(n.Xform.Step)
		}
	}
	for _, p := range g.Ports {
		w.buf = append(w.buf, 'p')
		w.int(int64(p.ID))
		w.int(int64(p.Rank))
		for _, e := range p.Extents {
			w.affine(e)
		}
		w.buf = append(w.buf, '|')
		for k, liv := range p.Space.LIVs {
			w.str(liv)
			w.affine(p.Space.Lo[k])
			w.affine(p.Space.Hi[k])
			w.affine(p.Space.Step[k])
		}
	}
	for _, e := range g.Edges {
		w.buf = append(w.buf, 'e')
		w.int(int64(e.ID))
		w.int(int64(e.Src.ID))
		w.int(int64(e.Dst.ID))
		w.float(e.Control)
	}
	// Result-affecting options only: parallelism is excluded on purpose
	// (the computed alignment is identical at every worker count —
	// TestOffsetEngineDeterminism pins this per engine mode). The LP
	// engine toggles ARE keyed: the network fast path must match the
	// engine it replaces byte for byte (same test), but a degenerate RLP
	// can have many optimal vertices and the dense and sparse simplex
	// cores may legitimately round different ones (equal approximate
	// objective, different alignments), so runs under different forced
	// engines must not share cache entries.
	// Partition is keyed even though the computed alignment is identical
	// either way: the toggle changes what a solve teaches the cache
	// (per-region entries and region-hit accounting), so runs under
	// different settings must not masquerade as each other's results.
	// Region subproblems are keyed with Partition=false, which makes a
	// region entry identical to the whole-program entry of the same
	// program solved standalone with partitioning off.
	// Presolve is keyed for the same reason as the engine toggles: the
	// block-split solve and the whole-problem solve agree on the
	// objective but a degenerate RLP can have many optimal vertices,
	// and the per-block engines may round a different one than the
	// monolithic simplex.
	// NoSourceMemo is NOT keyed, here or in the source-tier key: the
	// memo stores the same completed result the pipeline cache would
	// return for the same graph and options, so toggling it changes
	// only which tier answers, never the answer (pinned by the memo
	// on/off legs of TestMemoDeterminism).
	w.buf = append(w.buf, "o|"...)
	w.int(int64(opts.Offset.Strategy))
	w.int(int64(opts.Offset.M))
	w.int(int64(opts.Offset.MaxRefine))
	w.int(int64(opts.Offset.UnrollCap))
	w.boolean(opts.Offset.Static)
	w.boolean(opts.Replication)
	w.int(int64(opts.ReplicationRounds))
	w.int(int64(opts.AxisStride.Restarts))
	w.int(int64(opts.Offset.Engine))
	w.boolean(opts.Offset.NoNetPath)
	w.float(opts.AxisStride.PruneSlack)
	w.boolean(opts.Partition)
	w.int(int64(opts.Offset.Presolve))
	key := w.hexSum()
	keyWriterPool.Put(w)
	return key
}

// rehydrate rebinds a cached result to g, a graph whose canonical
// serialization matched the cached one: every node, port, and edge ID
// denotes the same structural element, so edge lists remap by ID and
// per-port tables copy over unchanged. Label, stride, and offset values
// (ASLabel, expr.Affine) are immutable and shared with the cached
// result; the containers are fresh so callers may extend them freely.
func (r *Result) rehydrate(g *adg.Graph) *Result {
	as := &AxisStrideResult{
		Labels: make(map[int]ASLabel, len(r.AxisStride.Labels)),
		Cost:   r.AxisStride.Cost,
		Stats:  r.AxisStride.Stats,
	}
	for id, l := range r.AxisStride.Labels {
		as.Labels[id] = l
	}
	for _, e := range r.AxisStride.GeneralEdges {
		as.GeneralEdges = append(as.GeneralEdges, g.Edges[e.ID])
	}
	repl := &ReplResult{
		PortRepl:  make(map[int][]bool, len(r.Repl.PortRepl)),
		PerAxis:   append([]int64{}, r.Repl.PerAxis...),
		Broadcast: r.Repl.Broadcast,
		CutEdges:  make([][]*adg.Edge, len(r.Repl.CutEdges)),
	}
	for id, v := range r.Repl.PortRepl {
		repl.PortRepl[id] = append([]bool{}, v...)
	}
	for t, cut := range r.Repl.CutEdges {
		for _, e := range cut {
			repl.CutEdges[t] = append(repl.CutEdges[t], g.Edges[e.ID])
		}
	}
	off := &OffsetResult{
		Offsets:       make(map[int][]expr.Affine, len(r.Offset.Offsets)),
		Approx:        r.Offset.Approx,
		Exact:         r.Offset.Exact,
		LPVariables:   r.Offset.LPVariables,
		LPConstraints: r.Offset.LPConstraints,
		Solves:        r.Offset.Solves,
		Stats:         r.Offset.Stats,
	}
	for id, v := range r.Offset.Offsets {
		off.Offsets[id] = append([]expr.Affine{}, v...)
	}
	out := &Result{
		Graph:      g,
		AxisStride: as,
		Repl:       repl,
		Offset:     off,
		CacheHit:   true,
		Regions:    r.Regions,
		RegionHits: r.RegionHits,
	}
	out.Assignment = out.BuildAssignment()
	return out
}
