package align

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash"
	"sync"
	"sync/atomic"

	"repro/internal/adg"
	"repro/internal/expr"
)

// Cache is a bounded, content-addressed memo of completed pipeline
// results. The key is a cryptographic hash of a canonical serialization
// of the ADG plus every option that affects the computed alignment, so a
// hit guarantees the cached result is the one the pipeline would
// recompute — repeated compiles of an unchanged program are O(hash).
// Parallelism settings are deliberately excluded from the key: the
// solvers produce identical results at every parallelism level, so runs
// that differ only in worker count share entries.
//
// The cache is built for many concurrent callers (the batch engine and
// long-running drivers): entries live in a power-of-two number of LRU
// shards selected by the first byte of the SHA-256 key, each shard
// behind its own mutex, so lookups on different keys rarely contend.
// Hit/miss counters are atomic and never serialize the hot path.
//
// Misses have singleflight semantics: concurrent callers that miss on
// the same content key run the §3–§6 pipeline once — one leader
// computes, the rest wait and share the completed result (rehydrated
// onto their own graphs). FlightStats reports how many pipeline
// executions ran and how many were collapsed.
//
// Eviction is LRU per shard with a fixed total capacity: the capacity
// is split across the shards (remainder distributed one entry at a time
// from shard 0), and a capacity below the shard count uses fewer shards
// so every active shard holds at least one entry — the cache never
// holds more than capacity results.
type Cache struct {
	shards  [cacheShards]cacheShard
	nshards int // active shards (min(cacheShards, capacity))

	hits      atomic.Int64
	misses    atomic.Int64
	contended atomic.Int64 // shard-lock acquisitions that had to wait

	flightMu sync.Mutex
	flights  map[string]*flightCall
	computes atomic.Int64 // pipeline executions (singleflight leaders)
	shared   atomic.Int64 // waiters served by another caller's execution
}

// cacheShards is the number of LRU shards (a power of two, indexed by
// the first hex digit of the SHA-256 key).
const cacheShards = 16

// cacheShard is one independently locked LRU.
type cacheShard struct {
	mu      sync.Mutex
	cap     int
	order   *list.List               // front = most recently used
	entries map[string]*list.Element // key → element holding *cacheEntry
}

type cacheEntry struct {
	key string
	res *Result
}

// flightCall is one in-flight pipeline execution; waiters block on done
// (or their own context) and read res/err after the channel closes. The
// channel — rather than a WaitGroup — lets a waiter whose context dies
// abandon the flight without disturbing the leader.
type flightCall struct {
	done chan struct{}
	res  *Result
	err  error
}

// DefaultCacheCap is the entry capacity used when NewCache is given a
// non-positive capacity.
const DefaultCacheCap = 64

// NewCache returns an empty cache holding at most capacity results
// (DefaultCacheCap if capacity <= 0). The bound is strict: per-shard
// capacities sum to exactly capacity — the remainder of the split is
// distributed one entry at a time from shard 0, and a capacity below
// the shard count shrinks the number of active shards instead of
// rounding every shard up (which would let a capacity-1 cache hold 16
// entries).
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCacheCap
	}
	nshards := cacheShards
	if capacity < nshards {
		nshards = capacity
	}
	base, rem := capacity/nshards, capacity%nshards
	c := &Cache{nshards: nshards}
	for i := 0; i < nshards; i++ {
		c.shards[i].cap = base
		if i < rem {
			c.shards[i].cap++
		}
		c.shards[i].order = list.New()
		c.shards[i].entries = make(map[string]*list.Element, c.shards[i].cap)
	}
	return c
}

// shardFor selects the shard from the key's first hex digit (the high
// nibble of the SHA-256), folded into the active shard count. Non-hex
// first bytes (not produced by cacheKey, but tolerated for direct
// get/put use in tests) fold by low bits.
func (c *Cache) shardFor(key string) *cacheShard {
	if len(key) == 0 {
		return &c.shards[0]
	}
	b := key[0]
	switch {
	case b >= '0' && b <= '9':
		b -= '0'
	case b >= 'a' && b <= 'f':
		b -= 'a' - 10
	default:
		b &= cacheShards - 1
	}
	return &c.shards[int(b)%c.nshards]
}

// lock acquires the shard mutex, counting acquisitions that had to wait
// (the contention signal benchreport's E13 row reports).
func (s *cacheShard) lock(c *Cache) {
	if !s.mu.TryLock() {
		c.contended.Add(1)
		s.mu.Lock()
	}
}

// Len returns the number of cached results.
func (c *Cache) Len() int {
	n := 0
	for i := 0; i < c.nshards; i++ {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.order.Len()
		s.mu.Unlock()
	}
	return n
}

// Counters returns the cumulative hit and miss counts of get lookups.
func (c *Cache) Counters() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// FlightStats returns how many pipeline executions the cache admitted
// (computes: singleflight leaders, i.e. distinct solves actually run)
// and how many callers were served by waiting on another caller's
// in-flight execution instead of solving themselves (shared).
func (c *Cache) FlightStats() (computes, shared int64) {
	return c.computes.Load(), c.shared.Load()
}

// Contention returns how many shard-lock acquisitions had to wait for
// another goroutine (a cheap proxy for cache lock contention).
func (c *Cache) Contention() int64 { return c.contended.Load() }

// Shards returns the number of active independently locked LRU shards.
func (c *Cache) Shards() int { return c.nshards }

// get returns the cached result for key (marking it most recently used)
// or nil, updating the hit/miss counters. The hit path performs no
// allocation (asserted by TestCacheGetZeroAlloc).
func (c *Cache) get(key string) *Result {
	s := c.shardFor(key)
	s.lock(c)
	el, ok := s.entries[key]
	if !ok {
		s.mu.Unlock()
		c.misses.Add(1)
		return nil
	}
	s.order.MoveToFront(el)
	res := el.Value.(*cacheEntry).res
	s.mu.Unlock()
	c.hits.Add(1)
	return res
}

// put stores a result under key, evicting the least recently used entry
// of the key's shard when that shard is full.
func (c *Cache) put(key string, res *Result) {
	s := c.shardFor(key)
	s.lock(c)
	defer s.mu.Unlock()
	if el, ok := s.entries[key]; ok {
		el.Value.(*cacheEntry).res = res
		s.order.MoveToFront(el)
		return
	}
	for s.order.Len() >= s.cap {
		back := s.order.Back()
		s.order.Remove(back)
		delete(s.entries, back.Value.(*cacheEntry).key)
	}
	s.entries[key] = s.order.PushFront(&cacheEntry{key: key, res: res})
}

// do returns the result for key, computing it at most once across
// concurrent callers: a fast-path lookup, then singleflight on miss.
// owned reports that the returned result was computed by this caller
// and is already bound to its graph; when false the result belongs to
// the cache (or to another caller's solve) and must be rehydrated.
// Errors are not cached: every waiter of a failed flight receives the
// error, and the next caller retries.
//
// A waiter whose ctx dies abandons the flight and returns ctx.Err()
// immediately; the leader's solve is unaffected and its result still
// lands in the cache for later callers. Flight cleanup runs in a defer,
// so a compute that panics still wakes every waiter (with an error
// carrying the panic value) and leaves the flight table clean before
// the panic propagates to the leader's own recovery boundary — no
// future caller of the key can block on a dead flight.
func (c *Cache) do(ctx context.Context, key string, compute func() (*Result, error)) (res *Result, owned bool, err error) {
	if hit := c.get(key); hit != nil {
		return hit, false, nil
	}
	c.flightMu.Lock()
	if c.flights == nil {
		c.flights = make(map[string]*flightCall)
	}
	if call, ok := c.flights[key]; ok {
		c.flightMu.Unlock()
		var done <-chan struct{}
		if ctx != nil {
			done = ctx.Done()
		}
		select {
		case <-call.done:
			c.shared.Add(1)
			return call.res, false, call.err
		case <-done:
			return nil, false, ctx.Err()
		}
	}
	call := &flightCall{done: make(chan struct{})}
	c.flights[key] = call
	c.flightMu.Unlock()

	c.computes.Add(1)
	completed := false
	defer func() {
		if !completed {
			// compute panicked: record it for the waiters; the panic
			// itself keeps unwinding past this defer to the leader's
			// per-slot recover.
			call.res, call.err = nil, fmt.Errorf("align: solve panicked for key %.12s…", key)
		}
		if call.err == nil {
			c.put(key, call.res)
		}
		c.flightMu.Lock()
		delete(c.flights, key)
		c.flightMu.Unlock()
		close(call.done)
	}()
	call.res, call.err = compute()
	completed = true
	return call.res, true, call.err
}

// cacheKey derives the content address of one alignment problem: a
// SHA-256 over a canonical serialization of the graph (template rank;
// every node's kind, label, and kind-specific payload; every port's
// rank, extents, and iteration space; every edge's endpoints and control
// weight) and of the result-affecting options. Node, port, and edge IDs
// are dense construction-order indices, so structurally identical graphs
// serialize identically.
func cacheKey(g *adg.Graph, opts Options) string {
	h := sha256.New()
	fmt.Fprintf(h, "v1|tr%d|", g.TemplateRank)
	for _, n := range g.Nodes {
		fmt.Fprintf(h, "n%d;%d;%q;%d;%d;", n.ID, n.Kind, n.Label, len(n.In), len(n.Out))
		if n.Section != nil {
			for _, s := range n.Section.Subs {
				fmt.Fprintf(h, "s%v;%v;", s.IsRange, s.IsVector)
				hashAffine(h, s.Lo)
				hashAffine(h, s.Hi)
				hashAffine(h, s.Step)
				hashAffine(h, s.Index)
			}
		}
		fmt.Fprintf(h, "sp%d;", n.SpreadDim)
		hashAffine(h, n.SpreadCopies)
		fmt.Fprintf(h, "rd%d;ro%v;cm%v;", n.ReduceDim, n.ReadOnly, n.CondMerge)
		if n.Xform != nil {
			fmt.Fprintf(h, "x%d;%q;", n.Xform.Kind, n.Xform.LIV)
			hashAffine(h, n.Xform.Lo)
			hashAffine(h, n.Xform.Hi)
			hashAffine(h, n.Xform.Step)
		}
	}
	for _, p := range g.Ports {
		fmt.Fprintf(h, "p%d;%d;", p.ID, p.Rank)
		for _, e := range p.Extents {
			hashAffine(h, e)
		}
		fmt.Fprintf(h, "|")
		for k, liv := range p.Space.LIVs {
			fmt.Fprintf(h, "%q;", liv)
			hashAffine(h, p.Space.Lo[k])
			hashAffine(h, p.Space.Hi[k])
			hashAffine(h, p.Space.Step[k])
		}
	}
	for _, e := range g.Edges {
		fmt.Fprintf(h, "e%d;%d;%d;%g;", e.ID, e.Src.ID, e.Dst.ID, e.Control)
	}
	// Result-affecting options only: parallelism is excluded on purpose.
	fmt.Fprintf(h, "o|%d;%d;%d;%d;%v;%v;%d;%d;",
		opts.Offset.Strategy, opts.Offset.M, opts.Offset.MaxRefine,
		opts.Offset.UnrollCap, opts.Offset.Static,
		opts.Replication, opts.ReplicationRounds, opts.AxisStride.Restarts)
	return hex.EncodeToString(h.Sum(nil))
}

func hashAffine(h hash.Hash, a expr.Affine) {
	fmt.Fprintf(h, "a%d", a.ConstPart())
	a.EachTerm(func(t expr.Term) bool {
		fmt.Fprintf(h, "+%d%s", t.Coef, t.Var)
		return true
	})
	fmt.Fprintf(h, ";")
}

// rehydrate rebinds a cached result to g, a graph whose canonical
// serialization matched the cached one: every node, port, and edge ID
// denotes the same structural element, so edge lists remap by ID and
// per-port tables copy over unchanged. Label, stride, and offset values
// (ASLabel, expr.Affine) are immutable and shared with the cached
// result; the containers are fresh so callers may extend them freely.
func (r *Result) rehydrate(g *adg.Graph) *Result {
	as := &AxisStrideResult{
		Labels: make(map[int]ASLabel, len(r.AxisStride.Labels)),
		Cost:   r.AxisStride.Cost,
		Stats:  r.AxisStride.Stats,
	}
	for id, l := range r.AxisStride.Labels {
		as.Labels[id] = l
	}
	for _, e := range r.AxisStride.GeneralEdges {
		as.GeneralEdges = append(as.GeneralEdges, g.Edges[e.ID])
	}
	repl := &ReplResult{
		PortRepl:  make(map[int][]bool, len(r.Repl.PortRepl)),
		PerAxis:   append([]int64{}, r.Repl.PerAxis...),
		Broadcast: r.Repl.Broadcast,
		CutEdges:  make([][]*adg.Edge, len(r.Repl.CutEdges)),
	}
	for id, v := range r.Repl.PortRepl {
		repl.PortRepl[id] = append([]bool{}, v...)
	}
	for t, cut := range r.Repl.CutEdges {
		for _, e := range cut {
			repl.CutEdges[t] = append(repl.CutEdges[t], g.Edges[e.ID])
		}
	}
	off := &OffsetResult{
		Offsets:       make(map[int][]expr.Affine, len(r.Offset.Offsets)),
		Approx:        r.Offset.Approx,
		Exact:         r.Offset.Exact,
		LPVariables:   r.Offset.LPVariables,
		LPConstraints: r.Offset.LPConstraints,
		Solves:        r.Offset.Solves,
		Stats:         r.Offset.Stats,
	}
	for id, v := range r.Offset.Offsets {
		off.Offsets[id] = append([]expr.Affine{}, v...)
	}
	out := &Result{
		Graph:      g,
		AxisStride: as,
		Repl:       repl,
		Offset:     off,
		CacheHit:   true,
	}
	out.Assignment = out.BuildAssignment()
	return out
}
