package align

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/adg"
)

// twoComp is a program whose ADG splits into two independent
// components: the {x,y} vector computation and the {m,n} matrix pair.
const twoComp = `
real X(60), Y(60), M(12,16), N(16,12)
x(1:20) = x(1:20) + y(3:22)
m = m + transpose(n)
`

// twoCompSwapped is the same two computations with declaration and
// statement order swapped: an isomorphic renumbering of the regions.
const twoCompSwapped = `
real M(12,16), N(16,12), X(60), Y(60)
m = m + transpose(n)
x(1:20) = x(1:20) + y(3:22)
`

// regionKeys partitions g and returns the per-region content keys under
// region sub-options (Partition off — how alignRegions keys them).
func regionKeys(t *testing.T, g *adg.Graph, opts Options) map[string]bool {
	t.Helper()
	part := adg.PartitionGraph(g)
	keys := make(map[string]bool, len(part.Regions))
	sub := opts
	sub.Partition = false
	sub.Cache = nil
	for _, r := range part.Regions {
		keys[cacheKey(r.Graph, sub)] = true
	}
	return keys
}

// TestRegionKeyRelabelInvariance: permuting the order in which a
// program's independent components appear renumbers every node, port,
// and edge globally, but the extracted regions renumber densely from
// zero — so the set of region content keys is unchanged. This is what
// lets an edited program reuse the cache entries of its untouched
// components no matter where the edit shifted their global IDs.
func TestRegionKeyRelabelInvariance(t *testing.T) {
	opts := Options{Replication: true}
	a := regionKeys(t, mustGraph(t, twoComp), opts)
	b := regionKeys(t, mustGraph(t, twoCompSwapped), opts)
	if len(a) != 2 || len(b) != 2 {
		t.Fatalf("region key counts = %d and %d, want 2 and 2", len(a), len(b))
	}
	for k := range a {
		if !b[k] {
			t.Errorf("region key %.12s… of the original program missing from the permuted one", k)
		}
	}

	// Global keys of the two programs differ (the whole-graph
	// serialization sees the permuted IDs), which is exactly why
	// whole-program caching alone cannot reuse anything here.
	if cacheKey(mustGraph(t, twoComp), opts) == cacheKey(mustGraph(t, twoCompSwapped), opts) {
		t.Error("whole-program keys unexpectedly equal for permuted programs")
	}
}

// TestRegionCacheIncremental: with Partition on, solving a program that
// shares components with an earlier solve hits the per-region cache for
// every untouched component and re-solves only the edited one — and the
// result is identical to a partition-less solve of the same program.
func TestRegionCacheIncremental(t *testing.T) {
	edited := `
real X(60), Y(60), M(12,16), N(16,12)
x(1:20) = x(1:20) + y(4:23)
m = m + transpose(n)
`
	base := Options{Replication: true}

	cold := base
	cold.Partition = true
	cold.Cache = NewCache(16)
	first, err := Align(mustGraph(t, twoComp), cold)
	if err != nil {
		t.Fatal(err)
	}
	if first.Regions != 2 || first.RegionHits != 0 {
		t.Fatalf("cold solve: Regions=%d RegionHits=%d, want 2 and 0", first.Regions, first.RegionHits)
	}

	warm, err := Align(mustGraph(t, edited), cold)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Regions != 2 || warm.RegionHits != 1 {
		t.Errorf("edited solve: Regions=%d RegionHits=%d, want 2 and 1 (the transpose component is untouched)",
			warm.Regions, warm.RegionHits)
	}
	if warm.CacheHit {
		t.Error("edited solve reported a whole-program cache hit")
	}

	ref, err := Align(mustGraph(t, edited), base)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := warm.Assignment.String(), ref.Assignment.String(); got != want {
		t.Errorf("partitioned warm solve differs from whole-graph solve:\n--- partitioned\n%s\n--- whole\n%s", got, want)
	}
	if warm.Offset.Exact != ref.Offset.Exact || warm.AxisStride.Cost != ref.AxisStride.Cost {
		t.Errorf("costs differ: partitioned (%d, %d) vs whole (%d, %d)",
			warm.AxisStride.Cost, warm.Offset.Exact, ref.AxisStride.Cost, ref.Offset.Exact)
	}

	// A second identical solve short-circuits on the whole-program key:
	// no region lookups run, the rehydrated result reports the leader's
	// region counts.
	again, err := Align(mustGraph(t, edited), cold)
	if err != nil {
		t.Fatal(err)
	}
	if !again.CacheHit {
		t.Error("repeat solve missed the whole-program key")
	}
	if again.Regions != 2 {
		t.Errorf("repeat solve Regions=%d, want 2 (copied from the cached result)", again.Regions)
	}
}

// TestCacheCounterIdentity pins the documented Counters/FlightStats
// bookkeeping: every completed do() call counts in exactly one of
// {hits, shared, misses}, and misses equals computes — a singleflight
// waiter is shared, not a miss (the double-count this identity
// regression-tests).
func TestCacheCounterIdentity(t *testing.T) {
	c := NewCache(8)
	want := &Result{}
	var calls atomic.Int64
	const (
		keys    = 3
		callers = 16
	)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			key := fmt.Sprintf("%x-counter-key", i%keys)
			_, _, err := c.do(context.Background(), key, func() (*Result, error) {
				calls.Add(1)
				time.Sleep(10 * time.Millisecond) // pile the waiters up
				return want, nil
			})
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
			}
		}(i)
	}
	close(start)
	wg.Wait()
	// A second wave hits the now-complete entries on the fast path.
	for i := 0; i < keys; i++ {
		if _, _, err := c.do(context.Background(), fmt.Sprintf("%x-counter-key", i), func() (*Result, error) {
			t.Errorf("key %d recomputed after completion", i)
			return want, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	hits, misses := c.Counters()
	computes, shared := c.FlightStats()
	if misses != computes {
		t.Errorf("misses (%d) != computes (%d): a non-leader was counted as a miss", misses, computes)
	}
	if computes != calls.Load() {
		t.Errorf("computes (%d) != actual compute calls (%d)", computes, calls.Load())
	}
	if total := hits + shared + misses; total != callers+keys {
		t.Errorf("hits (%d) + shared (%d) + misses (%d) = %d, want %d completed do() calls",
			hits, shared, misses, total, callers+keys)
	}
	if hits < keys {
		t.Errorf("hits = %d, want at least the %d fast-path hits of the second wave", hits, keys)
	}
}
