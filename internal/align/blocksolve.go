package align

import (
	"repro/internal/lp"
)

// This file drives the RLP presolver (lp.Problem.Reduce) for the
// offset solver: the reduced problem's independent blocks are solved
// in deterministic block order, each on the cheapest engine that
// accepts it — the network-dual fast path when the block is
// network-shaped (which blocks of a non-network RLP often are: the
// contraction collapses most θ terms to pure differences, quarantining
// the transformer rows that defeat whole-problem classification into
// their own blocks), the simplex otherwise — and the per-block
// solutions are stitched back together by Reduction.Postsolve.

// solveReduced presolves prob and solves its blocks. ok = false means
// the reduction declined (presolve disabled, nothing to reduce, or a
// contradiction left for the simplex to diagnose) and the caller must
// fall back to prob.Solve(). A non-nil error is a genuine solve
// failure (infeasible block, exhausted budget, cancellation) and is
// final: the blocks partition the original constraints, so a failing
// block means the full problem fails the same way.
func (ax *axisSolver) solveReduced(prob *lp.Problem) (*lp.Solution, bool, error) {
	red, ok := prob.Reduce(true)
	if !ok {
		return nil, false, nil
	}
	sols := make([]*lp.Solution, len(red.Blocks))
	for i := range red.Blocks {
		blk := &red.Blocks[i]
		// Blocks solve sequentially, so they can share the axis arena:
		// each solve rewinds it, and the extracted solutions own their
		// values.
		blk.Prob.SetArena(ax.arena)
		blk.Prob.SetStats(ax.stats)
		sol, err := ax.solveBlock(blk.Prob)
		if err != nil {
			return nil, false, err
		}
		sols[i] = sol
	}
	return red.Postsolve(sols), true, nil
}

// solveBlock solves one block: network fast path first (unless
// disabled), simplex fallback. Stats.Blocks counts every block solve.
func (ax *axisSolver) solveBlock(prob *lp.Problem) (*lp.Solution, error) {
	if ax.stats != nil {
		ax.stats.Blocks++
	}
	if !ax.opts.NoNetPath {
		if sol, ok := trySolveNet(prob, ax.stats); ok {
			return sol, nil
		}
	}
	return prob.Solve()
}
