package align

import (
	"testing"

	"repro/internal/expr"
)

// TestInternZeroAlloc pins the property the interning redesign bought:
// re-interning a label already in the table builds its canonical key in
// the reused buffer and looks it up without materializing a string — so
// the steady state of candidate generation and config enumeration
// constructs zero string keys (the pre-PR solver built two per
// candidate).
func TestInternZeroAlloc(t *testing.T) {
	tab := newInternTable()
	labels := []ASLabel{
		identityLabel(2),
		{AxisMap: []int{2, 1}, Stride: []expr.Affine{expr.Const(1), expr.Axpy(2, "k", 1)}},
		{AxisMap: []int{1, 3}, Stride: []expr.Affine{expr.Axpy(-1, "k", 0), expr.Const(3)}},
	}
	for _, l := range labels {
		tab.intern(l)
	}
	allocs := testing.AllocsPerRun(200, func() {
		for _, l := range labels {
			tab.intern(l)
		}
	})
	if allocs != 0 {
		t.Errorf("interning already-seen labels allocates %.1f objects/run, want 0", allocs)
	}
}

// TestSweepZeroAlloc asserts the best-response hot path — incident-cost
// evaluation and move application over the dirty worklist — runs
// allocation-free once a start's flat state is carved.
func TestSweepZeroAlloc(t *testing.T) {
	g := mustGraph(t, `
real B(64,48), C(48,64), D(64,48)
do k = 1, 8
  B = B + transpose(C)
  C = transpose(B)
  D = D + B
  B = D * 2
enddo
`)
	s := newASSolver(g, newInternTable(), newDPScratch())
	if err := s.generateCandidates(); err != nil {
		t.Fatal(err)
	}
	if err := s.buildNodeConfigs(); err != nil {
		t.Fatal(err)
	}
	var st dpState
	s.carveState(&st)
	st.init(0)
	allocs := testing.AllocsPerRun(100, func() {
		for nid := range s.g.Nodes {
			st.markDirty(int32(nid))
		}
		st.sweepOnce(0)
		st.sweepOnce(1)
	})
	if allocs != 0 {
		t.Errorf("best-response sweep allocates %.1f objects/run, want 0", allocs)
	}
}
