package align

import (
	"math"

	"repro/internal/lp"
	"repro/internal/netflow"
)

// This file is the tier-A fast path of the offset LP engine: an offset
// RLP whose every edge term couples at most two port offsets with unit
// (or uniformly scaled) coefficients and no per-LIV unknowns is, after
// contracting its hard equalities, the LP dual of a min-cost
// circulation, and netflow.SolvePotentials solves it exactly in integer
// arithmetic — no simplex at all. The bridge lives here rather than in
// internal/lp because internal/netflow already imports internal/lp (for
// its min-cut LP oracle), so the dependency must point this way.
//
// The path is self-certifying end to end: lp.NetworkForm only accepts
// problems whose LP optimum provably coincides with the flow dual, the
// contraction bails out on any non-integral displacement or
// contradictory equality, and SolvePotentials verifies strong duality
// before reporting success. Every bail-out falls back transparently to
// Problem.Solve, so callers never observe the tier split — only the
// effort counters (lp.Stats.NetSolves/Augments) do.

// netEps bounds the float slop tolerated when checking that a
// contracted displacement is integral (the flow solver works in exact
// integer arithmetic) and that redundant equalities agree.
const netEps = 1e-9

// trySolveNet probes p for network structure and, when present, solves
// it on the flow fast path. ok is false when p is not network-shaped or
// the fast path declined (non-integral displacements, a contradictory
// equality chain, or a failed duality certificate); the caller must
// then fall back to p.Solve().
func trySolveNet(p *lp.Problem, st *lp.Stats) (*lp.Solution, bool) {
	nf, ok := p.NetworkForm()
	if !ok {
		return nil, false
	}
	return solveNetForm(p, nf, st)
}

// solveNetForm solves a problem already classified as network-shaped.
// The NetForm may be cached across warm rounds (the classification is
// purely structural); costs are re-read from p at every call so §6
// replication rounds that only touch θ costs stay on the fast path.
func solveNetForm(p *lp.Problem, nf *lp.NetForm, st *lp.Stats) (*lp.Solution, bool) {
	nv := p.NumVariables()
	// Contract the hard equalities with a weighted union-find:
	// x_v = y[root(v)] + off[v]. The virtual ground variable (index nv)
	// represents the absolute origin, so pins x_v = C become
	// x_v − x_ground = C and single-variable θ terms reference ground.
	ground := nv
	parent := make([]int, nv+1)
	off := make([]float64, nv+1)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) (int, float64)
	find = func(v int) (int, float64) {
		if parent[v] == v {
			return v, 0
		}
		r, o := find(parent[v])
		parent[v] = r
		off[v] += o
		return r, off[v]
	}
	// merge imposes x_a − x_b = d; false means the chain is
	// contradictory (the LP is infeasible — let the simplex report it
	// with its proper error) or redundant with a conflicting constant.
	merge := func(a, b int, d float64) bool {
		ra, oa := find(a)
		rb, ob := find(b)
		if ra == rb {
			return math.Abs((oa-ob)-d) <= netEps
		}
		parent[ra] = rb
		off[ra] = d - oa + ob
		return true
	}
	for _, e := range nf.Eqs {
		if !merge(int(e.A), int(e.B), e.D) {
			return nil, false
		}
	}
	for _, pin := range nf.Pins {
		if !merge(int(pin.V), ground, pin.C) {
			return nil, false
		}
	}

	// Map the contracted roots that appear in θ terms to flow nodes, in
	// first-use order so the flow instance — and with it the chosen
	// optimum — is deterministic. Ground is always a node: the post-solve
	// shift pins its potential so pinned variables land exactly on their
	// constants.
	node := make(map[int]int)
	var order []int
	nodeOf := func(r int) int {
		if idx, ok := node[r]; ok {
			return idx
		}
		idx := len(order)
		node[r] = idx
		order = append(order, r)
		return idx
	}
	gRoot, gOff := find(ground)
	gNode := nodeOf(gRoot)

	// termArc records how θ term i maps onto the flow instance:
	// span_i = A·(y[u] − y[v]) + k when u ≥ 0, or the constant k when the
	// endpoints contracted together (u = v = -1).
	type termArc struct {
		u, v int
		k    float64
	}
	arcs := make([]termArc, len(nf.Terms))
	var dterms []netflow.DiffTerm
	for i, t := range nf.Terms {
		u, v := ground, ground
		if t.U >= 0 {
			u = int(t.U)
		}
		if t.V >= 0 {
			v = int(t.V)
		}
		ru, ou := find(u)
		rv, ov := find(v)
		k := t.A*(ou-ov) - t.R
		if ru == rv {
			arcs[i] = termArc{u: -1, v: -1, k: k}
			continue
		}
		// |A(y_u − y_v) + k| = |A|·|y_u − y_v + k/A|; the flow model
		// needs the displacement k/A integral.
		d := k / t.A
		dr := math.Round(d)
		if math.Abs(d-dr) > netEps {
			return nil, false
		}
		w := p.Cost(t.Theta) * math.Abs(t.A)
		un, vn := nodeOf(ru), nodeOf(rv)
		arcs[i] = termArc{u: un, v: vn, k: k}
		dterms = append(dterms, netflow.DiffTerm{U: un, V: vn, W: w, D: int64(dr)})
	}

	y, _, aug, ok := netflow.SolvePotentialsCounted(len(order), dterms)
	if !ok {
		return nil, false
	}

	// The flow objective is translation-invariant per connected
	// component, so shifting ground's component to put ground at its
	// pinned origin (x_ground = 0) preserves optimality while making
	// every pin exact. Components never touched by a term keep their SSP
	// potentials (zero), matching the anchor convention of buildRLP.
	comp := make([]int, len(order))
	for i := range comp {
		comp[i] = i
	}
	var cfind func(int) int
	cfind = func(v int) int {
		if comp[v] == v {
			return v
		}
		comp[v] = cfind(comp[v])
		return comp[v]
	}
	for _, t := range dterms {
		comp[cfind(t.U)] = cfind(t.V)
	}
	gComp := cfind(gNode)
	shift := -gOff - float64(y[gNode])

	values := make([]float64, nv)
	nodePot := func(idx int) float64 {
		base := float64(y[idx])
		if cfind(idx) == gComp {
			base += shift
		}
		return base
	}
	potential := func(r int) float64 {
		idx, ok := node[r]
		if !ok {
			return 0
		}
		return nodePot(idx)
	}
	isTheta := make([]bool, nv)
	for _, t := range nf.Terms {
		isTheta[t.Theta] = true
	}
	for v := 0; v < nv; v++ {
		if isTheta[v] {
			continue
		}
		r, o := find(v)
		values[v] = potential(r) + o
	}
	// θ sits at its lower bound |span| (the minimal feasible value); the
	// spans are re-evaluated from the final potentials so hard-constraint
	// feasibility is exact by construction.
	var objective float64
	for i, t := range nf.Terms {
		a := arcs[i]
		span := a.k
		if a.u >= 0 {
			span += t.A * (nodePot(a.u) - nodePot(a.v))
		}
		if span < 0 {
			span = -span
		}
		values[t.Theta] = span
		objective += p.Cost(t.Theta) * span
	}
	if st != nil {
		st.NetSolves++
		st.Augments += aug
	}
	return lp.NewSolution(objective, values), true
}
