package align

import (
	"testing"

	"repro/internal/adg"
	"repro/internal/build"
	"repro/internal/expr"
	"repro/internal/lang"
)

func mustGraph(t *testing.T, src string) *adg.Graph {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := lang.Analyze(prog)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	g, err := Build(info) //nolint — see helper below
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return g
}

// Build is a local alias so mustGraph reads naturally.
func Build(info *lang.Info) (*adg.Graph, error) { return build.Build(info) }

func alignAll(t *testing.T, src string, opts Options) *Result {
	t.Helper()
	g := mustGraph(t, src)
	res, err := Align(g, opts)
	if err != nil {
		t.Fatalf("align: %v", err)
	}
	return res
}

const fig1 = `
real A(100,100), V(200)
do k = 1, 100
  A(k,1:100) = A(k,1:100) + V(k:k+99)
enddo
`

// TestFig1MobileOffset reproduces the paper's headline example: with
// mobile offsets allowed, the Figure 1 fragment aligns with zero residual
// communication, and V's offset alignment is a function of k.
func TestFig1MobileOffset(t *testing.T) {
	res := alignAll(t, fig1, Options{Offset: OffsetOptions{Strategy: StrategyFixed, M: 3}})
	if res.AxisStride.Cost != 0 {
		t.Errorf("axis/stride discrete cost = %d, want 0", res.AxisStride.Cost)
	}
	if res.Offset.Exact != 0 {
		t.Errorf("exact offset cost = %d, want 0 (mobile alignment eliminates all realignment)", res.Offset.Exact)
	}
	// V's alignment must be mobile: some port of V's chain has an offset
	// depending on k.
	mobile := false
	for _, n := range res.Graph.Nodes {
		if n.Kind == adg.KindSection && n.Label[0] == 'v' {
			a := res.Assignment.Of(n.In[0])
			for _, off := range a.Offset {
				if !off.IsConst() {
					mobile = true
				}
			}
		}
	}
	if !mobile {
		t.Error("V's alignment is not mobile; the paper shows mobility is necessary here")
	}
}

// TestFig1StaticOffsetCostly verifies the other half of the paper's
// claim: restricted to static (non-mobile) offsets, the fragment cannot
// be aligned for free. We emulate the restriction by evaluating the best
// static assignment: identity alignments everywhere.
func TestFig1StaticIsWorse(t *testing.T) {
	g := mustGraph(t, fig1)
	as, err := AxisStride(g)
	if err != nil {
		t.Fatal(err)
	}
	// Zero all mobile coefficients: keep only the constant offset parts
	// from a static solve with the mobile machinery disabled by using
	// identity (all-zero) offsets.
	repl := NoReplication(g)
	off, err := Offsets(g, as, repl, OffsetOptions{Strategy: StrategyFixed, M: 3})
	if err != nil {
		t.Fatal(err)
	}
	if off.Exact != 0 {
		t.Fatalf("mobile solve should be free, got %d", off.Exact)
	}
	// Best STATIC alignment: solve with mobile coefficients pinned to 0.
	statOff, err := Offsets(g, as, repl, OffsetOptions{Strategy: StrategyFixed, M: 3, Static: true})
	if err != nil {
		t.Fatal(err)
	}
	if statOff.Exact == 0 {
		t.Error("best static alignment also free — mobility would not be necessary, contradicting the paper")
	}
	if statOff.Exact <= off.Exact {
		// off.Exact is 0, so any positive static cost passes; this guards
		// the comparison direction if the mobile result regresses.
		t.Logf("static=%d mobile=%d", statOff.Exact, off.Exact)
	}
}

// TestExample1Offset reproduces Example 1: A(1:N-1) = A(1:N-1) + B(2:N)
// aligns communication-free with B(i) ⊞ [i-1].
func TestExample1Offset(t *testing.T) {
	res := alignAll(t, `
real A(100), B(100)
A(1:99) = A(1:99) + B(2:100)
`, Options{})
	if res.Offset.Exact != 0 {
		t.Errorf("exact offset cost = %d, want 0", res.Offset.Exact)
	}
	if res.AxisStride.Cost != 0 {
		t.Errorf("axis/stride cost = %d, want 0", res.AxisStride.Cost)
	}
	// B's source and A's source must differ by one template cell.
	var aOff, bOff int64
	seen := 0
	for _, n := range res.Graph.Nodes {
		if n.Kind == adg.KindSource {
			a := res.Assignment.Of(n.Out[0])
			if len(a.Offset) > 0 && a.Offset[0].IsConst() {
				switch n.Label {
				case "a":
					aOff = a.Offset[0].ConstPart()
					seen++
				case "b":
					bOff = a.Offset[0].ConstPart()
					seen++
				}
			}
		}
	}
	if seen == 2 && aOff-bOff != 1 && bOff-aOff != 1 {
		t.Errorf("offsets a=%d b=%d, want |a-b| = 1", aOff, bOff)
	}
}

// TestExample2Stride reproduces Example 2: A(1:N)=A(1:N)+B(2:2N:2) aligns
// communication-free with A(i) ⊞ [2i] (or equivalently B at stride 1/2
// of A's), under the discrete stride metric.
func TestExample2Stride(t *testing.T) {
	res := alignAll(t, `
real A(100), B(200)
A(1:100) = A(1:100) + B(2:200:2)
`, Options{})
	if res.AxisStride.Cost != 0 {
		t.Errorf("stride discrete cost = %d, want 0 (stride-2 alignment of A avoids it)", res.AxisStride.Cost)
	}
	// One of the arrays must carry a non-unit stride.
	nonUnit := false
	for _, n := range res.Graph.Nodes {
		if n.Kind == adg.KindSource {
			a := res.Assignment.Of(n.Out[0])
			for _, s := range a.Stride {
				if !s.IsConst() || s.ConstPart() != 1 {
					nonUnit = true
				}
			}
		}
	}
	if !nonUnit {
		t.Error("no non-unit stride chosen; Example 2 requires stride alignment")
	}
}

// TestExample3Axis reproduces Example 3: B = B + transpose(C) aligns
// communication-free with C(i1,i2) ⊞ [i2,i1].
func TestExample3Axis(t *testing.T) {
	res := alignAll(t, `
real B(60,40), C(40,60)
B = B + transpose(C)
`, Options{})
	if res.AxisStride.Cost != 0 {
		t.Errorf("axis discrete cost = %d, want 0", res.AxisStride.Cost)
	}
	// B and C sources must have opposite axis maps.
	var bMap, cMap []int
	for _, n := range res.Graph.Nodes {
		if n.Kind == adg.KindSource {
			a := res.Assignment.Of(n.Out[0])
			if n.Label == "b" {
				bMap = a.AxisMap
			}
			if n.Label == "c" {
				cMap = a.AxisMap
			}
		}
	}
	if len(bMap) == 2 && len(cMap) == 2 {
		if bMap[0] == cMap[0] {
			t.Errorf("B axis map %v equals C axis map %v; want opposite", bMap, cMap)
		}
	}
}

// TestExample5MobileStride reproduces Example 5: with mobile stride
// V(i) ⊞k [ki], the loop needs one general communication per iteration
// instead of two.
func TestExample5MobileStride(t *testing.T) {
	res := alignAll(t, `
real A(1000), B(1000), V(20)
do k = 1, 50
  V = V + A(1:20*k:k)
  B(1:20*k:k) = V
enddo
`, Options{})
	// Total data volume on general edges: V's chain is 20 elements × 50
	// iterations = 1000 per crossing. With the mobile stride the cost is
	// one stride change per iteration (1000); static strides force two
	// (2000).
	if res.AxisStride.Cost > 1000 {
		t.Errorf("axis/stride cost = %d, want <= 1000 (one general comm per iteration)", res.AxisStride.Cost)
	}
	// V must end up with a mobile stride somewhere in its chain.
	mobile := false
	for pid, l := range res.AxisStride.Labels {
		_ = pid
		for _, s := range l.Stride {
			if !s.IsConst() {
				mobile = true
			}
		}
	}
	if !mobile {
		t.Error("no mobile stride chosen; Example 5 requires V(i) ⊞k [ki]")
	}
}

// TestReplicationFig4 reproduces Figure 4: a spread inside a loop makes
// replication of t profitable — one broadcast at loop entry instead of
// one per iteration.
func TestReplicationFig4(t *testing.T) {
	src := `
real T(100), B(100,200)
do k = 1, 200
  T = cos(T)
  B = B + spread(T, 2, 200)
enddo
`
	with := alignAll(t, src, Options{Replication: true})
	// The spread input port must be replicated on the spread axis.
	okRepl := false
	for _, n := range with.Graph.Nodes {
		if n.Kind == adg.KindSpread {
			a := with.Assignment.Of(n.In[0])
			for _, r := range a.Replicated {
				if r {
					okRepl = true
				}
			}
		}
	}
	if !okRepl {
		t.Error("spread input not replicated")
	}
	// The broadcast volume must be bounded by (roughly) one broadcast of
	// t per iteration of the cos chain — the min-cut keeps it to the
	// cheapest edge set. In particular it must be far less than
	// re-broadcasting B every iteration (200×100×200).
	if with.Repl.Broadcast > 100*200+100 {
		t.Errorf("broadcast volume = %d, too high", with.Repl.Broadcast)
	}
}

// TestStrategiesAgreeOnEasyCase: all five §4.2 strategies find the free
// alignment on a scaled-down Figure 1 (unrolling is exponential in the
// iteration count, as the paper notes, so the shared case stays small).
func TestStrategiesAgreeOnEasyCase(t *testing.T) {
	fig1small := `
real A(10,10), V(20)
do k = 1, 10
  A(k,1:10) = A(k,1:10) + V(k:k+9)
enddo
`
	for _, s := range []Strategy{StrategyFixed, StrategySingle, StrategyZeroTrack, StrategyRecursive, StrategyUnroll} {
		g := mustGraph(t, fig1small)
		as, err := AxisStride(g)
		if err != nil {
			t.Fatal(err)
		}
		opts := OffsetOptions{Strategy: s, M: 3}
		if s == StrategyUnroll {
			opts.UnrollCap = 128
		}
		off, err := Offsets(g, as, nil, opts)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		// Fixed partitioning, recursive refinement, and unrolling carry
		// quality guarantees and must find the free alignment; the paper
		// gives no convergence guarantee for state-space search or
		// zero-crossing tracking (§4.2), so they only need feasibility.
		switch s {
		case StrategyFixed, StrategyRecursive, StrategyUnroll:
			if off.Exact != 0 {
				t.Errorf("%v: exact cost %d, want 0", s, off.Exact)
			}
		default:
			if off.Exact < 0 {
				t.Errorf("%v: negative cost", s)
			}
			t.Logf("%v: exact cost %d", s, off.Exact)
		}
	}
}

// TestOffsetFeasibilityAfterRounding: the rounded offsets satisfy every
// node constraint exactly.
func TestOffsetFeasibilityAfterRounding(t *testing.T) {
	srcs := []string{
		fig1,
		"real A(100), B(100)\nA(1:99) = A(1:99) + B(2:100)\n",
		"real A(50,50), C(50,50)\nA = A + transpose(C)\n",
		"real A(60)\ndo k = 1, 6\n A(k:k+9) = A(k:k+9) + 1\nenddo\n",
	}
	for _, src := range srcs {
		g := mustGraph(t, src)
		as, err := AxisStride(g)
		if err != nil {
			t.Fatal(err)
		}
		off, err := Offsets(g, as, nil, OffsetOptions{Strategy: StrategyFixed, M: 3})
		if err != nil {
			t.Fatalf("%q: %v", src[:20], err)
		}
		for axis := 0; axis < g.TemplateRank; axis++ {
			ax := &axisSolver{g: g, as: as, repl: NoReplication(g), axis: axis, opts: OffsetOptions{}.withDefaults()}
			if !ax.feasible(off.Offsets) {
				t.Errorf("%q: rounded offsets infeasible on axis %d", src[:20], axis)
			}
		}
	}
}

// TestReplicationConstraints: body-axis ports are never labeled
// replicated (§5.2 constraint 1).
func TestReplicationConstraints(t *testing.T) {
	src := `
real T(100), B(100,200), V(200)
do k = 1, 50
  T = cos(T)
  B = B + spread(T, 2, 200)
  V = V + sum(B, 1)
enddo
`
	g := mustGraph(t, src)
	as, err := AxisStride(g)
	if err != nil {
		t.Fatal(err)
	}
	repl, err := Replicate(g, as, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range g.Ports {
		l := as.Labels[p.ID]
		for _, axis := range l.AxisMap {
			if repl.Replicated(p, axis) {
				t.Errorf("port %d replicated on its own body axis %d", p.ID, axis)
			}
		}
	}
}

// cloneOffsets deep-copies an offsets map.
func cloneOffsets(in map[int][]expr.Affine) map[int][]expr.Affine {
	out := map[int][]expr.Affine{}
	for k, v := range in {
		out[k] = append([]expr.Affine{}, v...)
	}
	return out
}
