package repro

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/align"
	"repro/internal/build"
	"repro/internal/cost"
	"repro/internal/lang"
)

// FrontendTimes records the per-phase wall time of the front end: lex,
// parse, semantic analysis, ADG construction, and source-key hashing.
// A source-memo hit skips every phase but Key (the hash is what a hit
// costs), so its times are zero except Key.
type FrontendTimes struct {
	Lex   time.Duration
	Parse time.Duration
	Sema  time.Duration
	Build time.Duration
	// Key is the time spent hashing the normalized token stream into
	// the source-memo key (zero when no cache is configured or the
	// memo is disabled).
	Key time.Duration
}

// Total returns the summed front-end wall time.
func (t FrontendTimes) Total() time.Duration {
	return t.Lex + t.Parse + t.Sema + t.Build + t.Key
}

// feTokens is a pooled lexer token buffer, recycled across front-end
// runs: the AST retains source substrings, never the tokens themselves,
// so the slice is free for reuse the moment ParseTokens returns.
type feTokens struct{ toks []lang.Token }

var feTokenPool = sync.Pool{New: func() any { return &feTokens{} }}

// alignSourceLeased is the one source→cost pipeline behind AlignSource,
// every AlignBatch slot, and the alignd daemon's solves. It layers the
// source-keyed memo tier (when a cache is configured and the memo is
// enabled) in front of the full front end: a hit returns the memoized
// completed result for the cost of one token-stream hash; a miss runs
// lex → parse → sema → build → solve under the memo's singleflight and
// populates the tier on the way out. sched may be nil (solver
// parallelism then comes from aopts alone).
func alignSourceLeased(ctx context.Context, sched *align.Scheduler, src string, aopts align.Options, lease int) (*Result, error) {
	if aopts.Cache != nil && !aopts.NoSourceMemo {
		t0 := time.Now()
		key, ok := align.SourceKeyOf(src, aopts)
		keyT := time.Since(t0)
		if ok {
			// Fast path first, without building the compute closure:
			// the warm hit stays a hash, a map probe, and one shallow
			// copy (TestHitPathZeroAlloc gates it at ≤ 8 allocs).
			if v, hit := aopts.Cache.SourceGet(key); hit {
				return memoResult(v, keyT), nil
			}
			v, owned, err := aopts.Cache.SourceDo(ctx, key, func() (any, error) {
				res, err := frontendSolve(ctx, sched, src, aopts, lease, keyT)
				if err != nil {
					return nil, err
				}
				return res, nil
			})
			if err != nil {
				return nil, err
			}
			if owned {
				return v.(*Result), nil
			}
			return memoResult(v, keyT), nil
		}
		// src does not lex: fall through so the full front end reports
		// the error with its source position.
	}
	return frontendSolve(ctx, sched, src, aopts, lease, 0)
}

// memoResult adapts a memoized value to this caller: a shallow copy of
// the stored Result flagged as a memo hit, so concurrent hitters never
// share the mutable top-level struct. The nested results (Align, Graph,
// Program) are immutable once published and stay shared.
func memoResult(v any, keyT time.Duration) *Result {
	cached := v.(*Result)
	out := *cached
	out.MemoHit = true
	out.Frontend = FrontendTimes{Key: keyT}
	return &out
}

// frontendSolve is the memo-miss path: the timed front end (pooled
// token buffer, arena-backed parser, ADG build) followed by the
// alignment pipeline and exact costing.
func frontendSolve(ctx context.Context, sched *align.Scheduler, src string, aopts align.Options, lease int, keyT time.Duration) (*Result, error) {
	ft := FrontendTimes{Key: keyT}
	tb := feTokenPool.Get().(*feTokens)
	t0 := time.Now()
	toks, err := lang.LexInto(src, tb.toks[:0])
	tb.toks = toks
	ft.Lex = time.Since(t0)
	if err != nil {
		feTokenPool.Put(tb)
		return nil, fmt.Errorf("parse: %w", err)
	}
	t0 = time.Now()
	prog, err := lang.ParseTokens(toks)
	ft.Parse = time.Since(t0)
	feTokenPool.Put(tb)
	if err != nil {
		return nil, fmt.Errorf("parse: %w", err)
	}
	t0 = time.Now()
	info, err := lang.Analyze(prog)
	ft.Sema = time.Since(t0)
	if err != nil {
		return nil, fmt.Errorf("analyze: %w", err)
	}
	t0 = time.Now()
	g, err := build.Build(info)
	ft.Build = time.Since(t0)
	if err != nil {
		return nil, fmt.Errorf("build ADG: %w", err)
	}
	var ar *align.Result
	if sched != nil {
		ar, err = sched.AlignLeasedContext(ctx, g, aopts, lease)
	} else {
		ar, err = align.AlignContext(ctx, g, aopts)
	}
	if err != nil {
		return nil, err
	}
	res := &Result{Program: prog, Info: info, Graph: g, Align: ar, Frontend: ft}
	res.Cost = cost.Exact(g, ar.Assignment)
	return res, nil
}

// AlignSourceLeased aligns src with solver parallelism bounded by a
// lease on sched's worker budget, through the same memo-aware pipeline
// as AlignSource (the alignd daemon drives its solves through this).
// sched must not be nil; lease is the number of workers granted.
func AlignSourceLeased(ctx context.Context, sched *align.Scheduler, src string, aopts align.Options, lease int) (*Result, error) {
	return alignSourceLeased(ctx, sched, src, aopts, lease)
}
