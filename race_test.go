//go:build race

package repro

// raceEnabled reports whether the race detector is active; its runtime
// instrumentation allocates, which invalidates AllocsPerRun gates.
const raceEnabled = true
