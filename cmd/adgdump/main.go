// Command adgdump parses a program and prints its alignment-distribution
// graph: node/edge listing by default, Graphviz DOT with -dot.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/build"
	"repro/internal/lang"
)

func main() {
	dot := flag.Bool("dot", false, "emit Graphviz DOT")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: adgdump [-dot] file.dp")
		os.Exit(2)
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prog, err := lang.Parse(string(data))
	if err != nil {
		fatal(err)
	}
	info, err := lang.Analyze(prog)
	if err != nil {
		fatal(err)
	}
	g, err := build.Build(info)
	if err != nil {
		fatal(err)
	}
	if *dot {
		fmt.Print(g.Dot())
		return
	}
	fmt.Println(g.Stats())
	for _, e := range g.Edges {
		fmt.Printf("e%-3d %-14s %-24q -> %-14s %-24q w=%v space=%v\n",
			e.ID, e.Src.Node.Kind.String(), e.Src.Node.Label,
			e.Dst.Node.Kind.String(), e.Dst.Node.Label,
			e.Weight(), e.Space().LIVs)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "adgdump:", err)
	os.Exit(1)
}
