// Command adgdump parses a program and prints its alignment-distribution
// graph: node/edge listing by default, Graphviz DOT with -dot, and the
// partition diagnostics the compositional solver uses with -regions.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/adg"
	"repro/internal/build"
	"repro/internal/lang"
)

func main() {
	dot := flag.Bool("dot", false, "emit Graphviz DOT")
	regions := flag.Bool("regions", false, "print per-region partition stats (components, histograms, articulation points, bridges)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: adgdump [-dot] [-regions] file.dp")
		os.Exit(2)
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prog, err := lang.Parse(string(data))
	if err != nil {
		fatal(err)
	}
	info, err := lang.Analyze(prog)
	if err != nil {
		fatal(err)
	}
	g, err := build.Build(info)
	if err != nil {
		fatal(err)
	}
	if *dot {
		fmt.Print(g.Dot())
		return
	}
	if *regions {
		dumpRegions(g)
		return
	}
	fmt.Println(g.Stats())
	for _, e := range g.Edges {
		fmt.Printf("e%-3d %-14s %-24q -> %-14s %-24q w=%v space=%v\n",
			e.ID, e.Src.Node.Kind.String(), e.Src.Node.Label,
			e.Dst.Node.Kind.String(), e.Dst.Node.Label,
			e.Weight(), e.Space().LIVs)
	}
}

// dumpRegions prints how the compositional solver would decompose the
// program: one line per region (weakly connected component) with its
// size and the parent IDs it covers, node/edge-count histograms across
// regions, and the articulation points and bridges inside components —
// the sites a finer cut rule could split, reported so partition quality
// is inspectable even though the solver does not cut there (such cuts
// carry alignment constraints; see internal/adg/partition.go).
func dumpRegions(g *adg.Graph) {
	part := adg.PartitionGraph(g)
	fmt.Printf("%s\n%d regions\n", g.Stats(), len(part.Regions))
	nodeHist := map[int]int{}
	edgeHist := map[int]int{}
	for i, r := range part.Regions {
		nodeHist[len(r.Graph.Nodes)]++
		edgeHist[len(r.Graph.Edges)]++
		fmt.Printf("region %-3d %3d nodes %3d edges  parent nodes %s\n",
			i, len(r.Graph.Nodes), len(r.Graph.Edges), idRange(r.Nodes))
	}
	fmt.Printf("node histogram: %s\n", histogram(nodeHist))
	fmt.Printf("edge histogram: %s\n", histogram(edgeHist))
	arts, bridges := adg.CutDiagnostics(g)
	fmt.Printf("articulation points: %d", len(arts))
	for _, id := range arts {
		n := g.Nodes[id]
		fmt.Printf("  n%d(%s %q)", id, n.Kind, n.Label)
	}
	fmt.Println()
	fmt.Printf("bridges: %d", len(bridges))
	for _, id := range bridges {
		e := g.Edges[id]
		fmt.Printf("  e%d(%q->%q)", id, e.Src.Node.Label, e.Dst.Node.Label)
	}
	fmt.Println()
}

// idRange compacts a sorted ID list into "0-4,7,9-12" form.
func idRange(ids []int) string {
	if len(ids) == 0 {
		return "-"
	}
	out := ""
	for i := 0; i < len(ids); {
		j := i
		for j+1 < len(ids) && ids[j+1] == ids[j]+1 {
			j++
		}
		if out != "" {
			out += ","
		}
		if j > i {
			out += fmt.Sprintf("%d-%d", ids[i], ids[j])
		} else {
			out += fmt.Sprintf("%d", ids[i])
		}
		i = j + 1
	}
	return out
}

// histogram renders "size×count" pairs in ascending size order.
func histogram(h map[int]int) string {
	sizes := make([]int, 0, len(h))
	for s := range h {
		sizes = append(sizes, s)
	}
	sort.Ints(sizes)
	out := ""
	for _, s := range sizes {
		if out != "" {
			out += " "
		}
		out += fmt.Sprintf("%d×%d", s, h[s])
	}
	if out == "" {
		return "-"
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "adgdump:", err)
	os.Exit(1)
}
