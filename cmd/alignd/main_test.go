package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

const fig1Src = `
real A(100,100), V(200)
do k = 1, 100
  A(k,1:100) = A(k,1:100) + V(k:k+99)
enddo
`

// heavyChain builds a loop of chained transposed updates — over a
// second of solver work on one CPU, so a drain window reliably overlaps
// it.
func heavyChain(arrays, iters int) string {
	var b strings.Builder
	b.WriteString("real ")
	for i := 0; i < arrays; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "A%d(64,64)", i)
	}
	fmt.Fprintf(&b, "\ndo k = 1, %d\n", iters)
	for i := 1; i < arrays; i++ {
		fmt.Fprintf(&b, "  A%d = A%d + transpose(A%d)\n", i, i, i-1)
	}
	b.WriteString("enddo\n")
	return b.String()
}

var (
	buildOnce sync.Once
	buildPath string
	buildErr  error
)

// buildAlignd compiles the daemon once per test run, with -race when
// the test binary itself is instrumented.
func buildAlignd(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "alignd-test")
		if err != nil {
			buildErr = err
			return
		}
		buildPath = filepath.Join(dir, "alignd")
		args := []string{"build"}
		if raceEnabled {
			args = append(args, "-race")
		}
		args = append(args, "-o", buildPath, ".")
		out, err := exec.Command("go", args...).CombinedOutput()
		if err != nil {
			buildErr = fmt.Errorf("go build: %v\n%s", err, out)
		}
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return buildPath
}

// daemon is one spawned alignd child: its base URL, a live stderr tail,
// and the exit-code plumbing.
type daemon struct {
	cmd    *exec.Cmd
	base   string
	stderr *bytes.Buffer // guarded by mu
	mu     sync.Mutex
	exited chan error
}

// startDaemon spawns alignd on an OS-assigned port and waits for its
// "listening on" line.
func startDaemon(t *testing.T, extraArgs ...string) *daemon {
	t.Helper()
	bin := buildAlignd(t)
	args := append([]string{"-addr", "127.0.0.1:0"}, extraArgs...)
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	d := &daemon{cmd: cmd, stderr: new(bytes.Buffer), exited: make(chan error, 1)}
	t.Cleanup(func() {
		cmd.Process.Kill()
		<-d.exited
	})
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			d.mu.Lock()
			d.stderr.WriteString(line + "\n")
			d.mu.Unlock()
			if rest, ok := strings.CutPrefix(line, "alignd: listening on "); ok {
				addrCh <- strings.Fields(rest)[0]
			}
		}
		d.exited <- cmd.Wait()
	}()
	select {
	case addr := <-addrCh:
		d.base = "http://" + addr
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never reported its listen address")
	}
	return d
}

func (d *daemon) stderrText() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stderr.String()
}

// wait blocks for process exit and returns its exit code.
func (d *daemon) wait(t *testing.T) int {
	t.Helper()
	select {
	case err := <-d.exited:
		d.exited <- err // keep Cleanup's receive alive
		if err == nil {
			return 0
		}
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		t.Fatalf("daemon exit: %v", err)
	case <-time.After(60 * time.Second):
		t.Fatal("daemon did not exit")
	}
	return -1
}

func postSolve(base, src string, timeout time.Duration) (*http.Response, error) {
	body, _ := json.Marshal(map[string]string{"source": src})
	client := &http.Client{Timeout: timeout}
	return client.Post(base+"/v1/solve", "application/json", bytes.NewReader(body))
}

// TestServeSolveAndSIGTERMDrain is the end-to-end binary smoke: HTTP
// solve, metrics scrape, then SIGTERM → drain logs, final metrics
// flush, exit 0.
func TestServeSolveAndSIGTERMDrain(t *testing.T) {
	d := startDaemon(t)

	resp, err := postSolve(d.base, fig1Src, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	var solved struct {
		Cost   int64  `json:"cost"`
		Report string `json:"report"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&solved); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || solved.Report == "" {
		t.Fatalf("solve: status %d, report %q", resp.StatusCode, solved.Report)
	}

	mresp, err := http.Get(d.base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var m bytes.Buffer
	m.ReadFrom(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(m.String(), `alignd_requests_total{endpoint="solve",code="200"} 1`) {
		t.Errorf("metrics scrape missing the solve counter:\n%s", m.String())
	}

	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if code := d.wait(t); code != 0 {
		t.Fatalf("exit code %d after SIGTERM, want 0\nstderr:\n%s", code, d.stderrText())
	}
	logs := d.stderrText()
	for _, want := range []string{"alignd: draining", "alignd_requests_total", "alignd: drained"} {
		if !strings.Contains(logs, want) {
			t.Errorf("drain logs missing %q:\n%s", want, logs)
		}
	}
}

// TestSIGTERMWaitsForInflight sends SIGTERM while a slow solve is in
// flight: the solve must complete with 200, late arrivals must see 503,
// and the daemon must still exit 0.
func TestSIGTERMWaitsForInflight(t *testing.T) {
	d := startDaemon(t, "-workers", "1")

	type outcome struct {
		status int
		err    error
	}
	heavy := make(chan outcome, 1)
	go func() {
		resp, err := postSolve(d.base, heavyChain(60, 16), 2*time.Minute)
		if err != nil {
			heavy <- outcome{err: err}
			return
		}
		resp.Body.Close()
		heavy <- outcome{status: resp.StatusCode}
	}()

	// Wait until the solve holds a lease, then signal.
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(d.base + "/v1/stats")
		if err != nil {
			t.Fatal(err)
		}
		var stats struct {
			Scheduler struct{ Leased int }
		}
		json.NewDecoder(resp.Body).Decode(&stats)
		resp.Body.Close()
		if stats.Scheduler.Leased > 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	// While the drain holds the daemon open for the heavy solve, new
	// work is rejected with 503.
	saw503 := false
	for !saw503 {
		resp, err := postSolve(d.base, fig1Src, 10*time.Second)
		if err != nil {
			break // listener closed: drain finished before we got in
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			saw503 = true
		} else if resp.StatusCode != http.StatusOK {
			t.Fatalf("unexpected status %d during drain", resp.StatusCode)
		}
	}
	if !saw503 {
		t.Log("drain finished before a 503 could be observed (slow machine?)")
	}

	h := <-heavy
	if h.err != nil || h.status != http.StatusOK {
		t.Fatalf("in-flight solve during drain: status %d err %v", h.status, h.err)
	}
	if code := d.wait(t); code != 0 {
		t.Fatalf("exit code %d, want 0\nstderr:\n%s", code, d.stderrText())
	}
}

// TestFlagErrors: bad flags must fail fast with exit 2.
func TestFlagErrors(t *testing.T) {
	bin := buildAlignd(t)
	for _, args := range [][]string{
		{"-strategy", "bogus"},
		{"-tenant-budgets", "no-equals"},
		{"positional"},
	} {
		out, err := exec.Command(bin, args...).CombinedOutput()
		ee, ok := err.(*exec.ExitError)
		if !ok || ee.ExitCode() != 2 {
			t.Errorf("alignd %v: err %v (want exit 2)\n%s", args, err, out)
		}
	}
}
