// Command alignd serves the alignment pipeline as a daemon: the batch
// engine's sharded singleflight cache and cooperative scheduler behind
// an HTTP API, so warm caches and scratch arenas are amortized across
// requests instead of one CLI process lifetime.
//
//	alignd -addr :7421 -workers 8 -tenant-budget 32
//
// Endpoints (see internal/service): POST /v1/solve, POST /v1/batch
// (NDJSON stream), GET /v1/stats, GET /metrics (Prometheus text),
// GET /healthz. Admission is per tenant via the X-Tenant header.
//
// On SIGTERM or SIGINT the daemon drains: new work is rejected with
// 503 while in-flight solves finish (up to -drain-timeout, then they
// are hard-canceled), a final metrics snapshot is flushed to stderr,
// and the process exits 0 on a clean drain, 1 on a forced one.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/align"
	"repro/internal/service"
)

func main() { os.Exit(run()) }

func run() int {
	addr := flag.String("addr", "127.0.0.1:7421", "listen address (host:port; port 0 picks a free port)")
	workers := flag.Int("workers", 0, "scheduler worker budget (0 = GOMAXPROCS)")
	cacheCap := flag.Int("cache", 4096, "pipeline result cache capacity (entries)")
	tenantBudget := flag.Int("tenant-budget", 0, "default per-tenant budget of in-flight program slots (0 derives 4x workers, negative = unlimited)")
	tenantBudgets := flag.String("tenant-budgets", "", "per-tenant overrides, name=slots comma-separated (slots <= 0 = unlimited)")
	solveTimeout := flag.Duration("solve-timeout", 0, "per-program solve deadline (0 = none)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long a drain waits for in-flight solves before hard-canceling them")
	strategy := flag.String("strategy", "fixed", "default offset strategy: fixed|unroll|search|zerotrack|recursive")
	m := flag.Int("m", 3, "default subranges per iteration range (fixed strategy)")
	norepl := flag.Bool("norepl", false, "disable replication labeling by default")
	partition := flag.Bool("partition", false, "enable compositional per-region caching by default")
	noPresolve := flag.Bool("no-presolve", false, "disable the offset-RLP presolver")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "alignd: unexpected arguments:", strings.Join(flag.Args(), " "))
		return 2
	}

	st, ok := parseStrategy(*strategy)
	if !ok {
		fmt.Fprintf(os.Stderr, "alignd: unknown strategy %q\n", *strategy)
		return 2
	}
	overrides, err := parseTenantBudgets(*tenantBudgets)
	if err != nil {
		fmt.Fprintln(os.Stderr, "alignd:", err)
		return 2
	}

	srv := service.New(service.Config{
		Workers:       *workers,
		CacheCap:      *cacheCap,
		TenantBudget:  *tenantBudget,
		TenantBudgets: overrides,
		SolveTimeout:  *solveTimeout,
		Strategy:      st,
		Subranges:     *m,
		NoReplication: *norepl,
		Partition:     *partition,
		NoPresolve:    *noPresolve,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "alignd:", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "alignd: listening on %s (%d workers)\n",
		ln.Addr(), srv.Scheduler().Workers())

	hs := &http.Server{Handler: srv}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	// Drain on SIGTERM (orchestrated shutdown) and SIGINT (^C) alike —
	// the same signal set alignc drains on.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, "alignd:", err)
		return 1
	case <-ctx.Done():
	}
	stop() // a second signal kills the process the default way

	fmt.Fprintf(os.Stderr, "alignd: draining (timeout %v)\n", *drainTimeout)
	code := 0
	if err := srv.Drain(*drainTimeout); err != nil {
		fmt.Fprintln(os.Stderr, "alignd:", err)
		code = 1
	}
	// The listener closes only after the drain: in-flight responses
	// finish over their open connections, late arrivals saw 503.
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		fmt.Fprintln(os.Stderr, "alignd: shutdown:", err)
		code = 1
	}
	fmt.Fprintln(os.Stderr, "alignd: final metrics")
	fmt.Fprint(os.Stderr, srv.MetricsText())
	fmt.Fprintln(os.Stderr, "alignd: drained")
	return code
}

func parseStrategy(s string) (align.Strategy, bool) {
	switch s {
	case "fixed":
		return align.StrategyFixed, true
	case "unroll":
		return align.StrategyUnroll, true
	case "search":
		return align.StrategySingle, true
	case "zerotrack":
		return align.StrategyZeroTrack, true
	case "recursive":
		return align.StrategyRecursive, true
	}
	return 0, false
}

// parseTenantBudgets parses "name=slots,name=slots" override lists.
func parseTenantBudgets(s string) (map[string]int, error) {
	if s == "" {
		return nil, nil
	}
	out := make(map[string]int)
	for _, part := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("bad -tenant-budgets entry %q (want name=slots)", part)
		}
		n, err := strconv.Atoi(val)
		if err != nil {
			return nil, fmt.Errorf("bad -tenant-budgets slots in %q: %v", part, err)
		}
		out[name] = n
	}
	return out, nil
}
