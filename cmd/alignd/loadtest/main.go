// Command loadtest drives an alignd daemon with thousands of
// concurrent clients over a mixed program corpus and reports latency
// percentiles (p50/p99/p999), throughput, and status-code counts.
//
//	loadtest -addr 127.0.0.1:7421 -clients 1000 -requests 8
//	loadtest -self -clients 1000 -requests 8
//
// With -self it spins up an in-process daemon on a loopback listener,
// runs the load, then drains and checks for leaks (goroutines, worker
// leases, tenant slots) — the standing acceptance harness for the E18
// serving experiment. The exit code is non-zero when any request fails
// unexpectedly or a leak survives the drain.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/service"
)

type result struct {
	status  int
	latency time.Duration
	err     error
}

func main() { os.Exit(run()) }

func run() int {
	addr := flag.String("addr", "", "address of a running alignd (host:port)")
	self := flag.Bool("self", false, "spin up an in-process daemon instead of dialing -addr")
	clients := flag.Int("clients", 1000, "concurrent clients")
	requests := flag.Int("requests", 8, "requests per client")
	corpus := flag.Int("corpus", 32, "distinct programs in the mixed corpus")
	workers := flag.Int("workers", 0, "worker budget of the -self daemon (0 = GOMAXPROCS)")
	tenants := flag.Int("tenants", 4, "tenant keys the clients spread across (0 = all default)")
	batchEvery := flag.Int("batch-every", 7, "every Nth request is a 4-program batch (0 disables batches)")
	jsonOut := flag.Bool("json", false, "print a machine-readable summary to stdout")
	flag.Parse()

	if (*addr == "") == !*self {
		fmt.Fprintln(os.Stderr, "loadtest: need exactly one of -addr or -self")
		return 2
	}

	var srv *service.Server
	base := "http://" + *addr
	if *self {
		srv = service.New(service.Config{Workers: *workers, TenantBudget: -1})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintln(os.Stderr, "loadtest:", err)
			return 1
		}
		hs := &http.Server{Handler: srv}
		defer hs.Close()
		go hs.Serve(ln) //nolint:errcheck // closed on exit
		base = "http://" + ln.Addr().String()
		fmt.Fprintf(os.Stderr, "loadtest: self daemon on %s (%d workers)\n",
			ln.Addr(), srv.Scheduler().Workers())
	}
	goroutinesBefore := runtime.NumGoroutine()

	srcs := mixedCorpus(*corpus)
	transport := &http.Transport{MaxIdleConns: *clients, MaxIdleConnsPerHost: *clients}
	client := &http.Client{Transport: transport, Timeout: 5 * time.Minute}

	total := *clients * *requests
	results := make([]result, total)
	var wg sync.WaitGroup
	t0 := time.Now()
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			tenant := ""
			if *tenants > 0 {
				tenant = fmt.Sprintf("tenant-%d", c%*tenants)
			}
			for r := 0; r < *requests; r++ {
				i := c**requests + r
				results[i] = oneRequest(client, base, tenant, srcs, i, *batchEvery)
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(t0)

	byStatus := map[int]int{}
	var errs int
	latencies := make([]time.Duration, 0, total)
	for _, r := range results {
		if r.err != nil {
			errs++
			continue
		}
		byStatus[r.status]++
		latencies = append(latencies, r.latency)
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	p50 := percentile(latencies, 0.50)
	p99 := percentile(latencies, 0.99)
	p999 := percentile(latencies, 0.999)
	throughput := float64(total) / elapsed.Seconds()

	fmt.Fprintf(os.Stderr, "loadtest: %d clients x %d requests in %v (%.0f req/s)\n",
		*clients, *requests, elapsed.Round(time.Millisecond), throughput)
	fmt.Fprintf(os.Stderr, "loadtest: p50 %v  p99 %v  p999 %v\n", p50, p99, p999)
	for _, code := range sortedKeys(byStatus) {
		fmt.Fprintf(os.Stderr, "loadtest: status %d x %d\n", code, byStatus[code])
	}
	if errs > 0 {
		fmt.Fprintf(os.Stderr, "loadtest: %d transport errors\n", errs)
	}

	code := 0
	if errs > 0 || byStatus[http.StatusOK] != total {
		fmt.Fprintf(os.Stderr, "loadtest: FAIL: %d of %d requests did not return 200\n",
			total-byStatus[http.StatusOK], total)
		code = 1
	}
	if *self {
		if err := srv.Drain(time.Minute); err != nil {
			fmt.Fprintln(os.Stderr, "loadtest: FAIL:", err)
			code = 1
		}
		if st := srv.Scheduler().Stats(); st.Leased != 0 || st.Waiting != 0 {
			fmt.Fprintf(os.Stderr, "loadtest: FAIL: leaked leases after drain: %+v\n", st)
			code = 1
		}
		// Allow the handful of runtime/http bookkeeping goroutines; a
		// real leak scales with clients x requests.
		client.CloseIdleConnections()
		deadline := time.Now().Add(10 * time.Second)
		for runtime.NumGoroutine() > goroutinesBefore+10 && time.Now().Before(deadline) {
			time.Sleep(50 * time.Millisecond)
		}
		if got := runtime.NumGoroutine(); got > goroutinesBefore+10 {
			fmt.Fprintf(os.Stderr, "loadtest: FAIL: %d goroutines after drain (started with %d)\n",
				got, goroutinesBefore)
			code = 1
		}
	}
	if *jsonOut {
		json.NewEncoder(os.Stdout).Encode(map[string]any{ //nolint:errcheck
			"clients": *clients, "requests": total,
			"p50_ns": int64(p50), "p99_ns": int64(p99), "p999_ns": int64(p999),
			"throughput_rps": throughput, "ok": byStatus[http.StatusOK],
			"errors": errs, "elapsed_ns": int64(elapsed),
		})
	}
	if code == 0 {
		fmt.Fprintln(os.Stderr, "loadtest: PASS")
	}
	return code
}

// oneRequest issues request i of the mixed protocol: every batchEvery-th
// request is a 4-program streaming batch (drained to completion, its
// latency is time-to-last-byte), the rest single solves.
func oneRequest(client *http.Client, base, tenant string, srcs []string, i, batchEvery int) result {
	var body any
	url := base + "/v1/solve"
	if batchEvery > 0 && i%batchEvery == batchEvery-1 {
		url = base + "/v1/batch"
		programs := make([]string, 4)
		for j := range programs {
			programs[j] = srcs[(i+j)%len(srcs)]
		}
		body = service.BatchRequest{Programs: programs}
	} else {
		body = service.SolveRequest{Source: srcs[i%len(srcs)]}
	}
	raw, err := json.Marshal(body)
	if err != nil {
		return result{err: err}
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(raw))
	if err != nil {
		return result{err: err}
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	t0 := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		return result{err: err}
	}
	_, err = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if err != nil {
		return result{err: err}
	}
	return result{status: resp.StatusCode, latency: time.Since(t0)}
}

// mixedCorpus mirrors the batch bench generator: four template families
// with sizes varied per index, so the daemon sees a realistic mix of
// distinct cache keys rather than one hot program.
func mixedCorpus(n int) []string {
	srcs := make([]string, n)
	for i := range srcs {
		switch i % 4 {
		case 0:
			srcs[i] = fmt.Sprintf("\nreal U(%d), F(%d)\ndo k = 1, %d\n  U(k:k+29) = U(k:k+29) + F(k:k+29)\nenddo\n",
				80+i, 80+i, 8+i%8)
		case 1:
			m := 40 + i
			srcs[i] = fmt.Sprintf("\nreal A(%d,%d), V(%d)\ndo k = 1, %d\n  A(k,1:%d) = A(k,1:%d) + V(k:k+%d)\nenddo\n",
				m, m, 2*m, m, m, m, m-1)
		case 2:
			srcs[i] = fmt.Sprintf("\nreal B(%d,%d), C(%d,%d)\nB = B + transpose(C)\nB = B * 2\nC = transpose(B)\n",
				64+i, 32+i, 32+i, 64+i)
		default:
			srcs[i] = fmt.Sprintf("\nreal T(%d), B(%d,%d)\ndo k = 1, 8\n  T = cos(T)\n  B = B + spread(T, 2, %d)\nenddo\n",
				50+i, 50+i, 100+i, 100+i)
		}
	}
	return srcs
}

func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func sortedKeys(m map[int]int) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
