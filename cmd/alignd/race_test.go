//go:build race

package main

// raceEnabled reports whether the race detector is active, so the
// binary tests build the child daemon with the same instrumentation.
const raceEnabled = true
