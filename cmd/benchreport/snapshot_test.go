package main

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// TestCheckSnapshotWritable pins the never-downgrade contract around
// the current schemaVersion: same-or-older snapshots (and missing or
// malformed files) are overwritable, strictly newer ones are refused.
func TestCheckSnapshotWritable(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		t.Helper()
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}

	if err := checkSnapshotWritable(filepath.Join(dir, "absent.json")); err != nil {
		t.Errorf("missing file: %v, want writable", err)
	}
	if err := checkSnapshotWritable(write("garbage.json", "{not json")); err != nil {
		t.Errorf("malformed file: %v, want writable", err)
	}
	for _, v := range []int{0, schemaVersion - 1, schemaVersion} {
		p := write("same-or-older.json", fmt.Sprintf(`{"schema_version": %d}`, v))
		if err := checkSnapshotWritable(p); err != nil {
			t.Errorf("schema_version %d: %v, want writable", v, err)
		}
	}
	p := write("newer.json", fmt.Sprintf(`{"schema_version": %d}`, schemaVersion+1))
	if err := checkSnapshotWritable(p); err == nil {
		t.Errorf("schema_version %d accepted, want refusal", schemaVersion+1)
	}
}
