// Command benchreport runs the experiment suite (the E1–E19 table of
// DESIGN.md) directly — without the testing harness — and prints the
// paper-vs-measured comparison rows recorded in EXPERIMENTS.md. Alongside
// the text report it writes a machine-readable perf snapshot (phase
// times, DP effort, LP effort, cache hit rate, service latency) to
// BENCH_align.json (override the path with -json, disable with -json "").
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"repro"
	"repro/internal/align"
	"repro/internal/build"
	"repro/internal/expr"
	"repro/internal/lang"
	"repro/internal/lp"
	"repro/internal/machine"
	"repro/internal/service"
	"repro/internal/space"
)

func main() {
	jsonPath := flag.String("json", "BENCH_align.json", "path for the machine-readable perf snapshot (empty disables)")
	flag.Parse()
	fmt.Println("experiment  metric                          paper shape                     measured")
	fmt.Println("----------  ------------------------------  ------------------------------  --------")
	e1()
	e2to4()
	e5()
	e6()
	e7()
	e9()
	e10()
	e11()
	snap := e12()
	snap.Batch = e13()
	snap.OffsetEngine = e14()
	snap.FlatState = e15()
	snap.Incremental = e16()
	snap.Presolve = e17()
	snap.Service = e18()
	snap.Frontend = e19()
	if *jsonPath != "" {
		writeSnapshot(*jsonPath, snap)
	}
}

func row(id, metric, paper string, measured any) {
	fmt.Printf("%-10s  %-30s  %-30s  %v\n", id, metric, paper, measured)
}

func compile(src string, opts repro.Options) *repro.Result {
	res, err := repro.AlignSource(src, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
	return res
}

const fig1 = `
real A(100,100), V(200)
do k = 1, 100
  A(k,1:100) = A(k,1:100) + V(k:k+99)
enddo
`

// dpSrc is the rank4-dp workload: four template axes, big sections,
// transposes, and LIV-indexed reads, so both the DP (E12) and the
// offset RLPs (E14) are heavy. BenchmarkOffsetSolver gates the same
// program.
const dpSrc = `
real A(64,64,64,64), B(128,128,128,128), C(64,64), D(64,64), V(64)
do k = 1, 16
  A(1:64,1:64,1:64,1:64) = A(1:64,1:64,1:64,1:64) + B(2:128:2,2:128:2,2:128:2,2:128:2)
  C = C + transpose(D)
  D = transpose(C)
  V = V + A(1:64,k,k,k)
  C(1:64,k) = V
enddo
`

func e1() {
	info := lang.MustAnalyze(lang.MustParse(fig1))
	g := build.MustBuild(info)
	as, _ := align.AxisStride(g)
	mobile, _ := align.Offsets(g, as, nil, align.OffsetOptions{Strategy: align.StrategyFixed, M: 3})
	static, _ := align.Offsets(g, as, nil, align.OffsetOptions{Strategy: align.StrategyFixed, M: 3, Static: true})
	row("E1/Fig1", "mobile residual cost", "0 (free)", mobile.Exact)
	row("E1/Fig1", "static residual cost", "> 0 (shift per iter)", static.Exact)
}

func e2to4() {
	r := compile("real A(100), B(100)\nA(1:99) = A(1:99) + B(2:100)\n", repro.Options{})
	row("E2/Ex1", "offset residual", "0 with B(i)⊞[i-1]", r.Cost.Total())
	r = compile("real A(100), B(200)\nA(1:100) = A(1:100) + B(2:200:2)\n", repro.Options{})
	row("E3/Ex2", "stride general volume", "0 with A(i)⊞[2i]", r.Align.AxisStride.Cost)
	r = compile("real B(64,48), C(48,64)\nB = B + transpose(C)\n", repro.Options{})
	row("E4/Ex3", "axis general volume", "0 with C⊞[i2,i1]", r.Align.AxisStride.Cost)
}

func e5() {
	r := compile(`
real A(1000), B(1000), V(20)
do k = 1, 50
  V = V + A(1:20*k:k)
  B(1:20*k:k) = V
enddo
`, repro.Options{})
	row("E5/Ex5", "general volume (50 iters × 20)", "1000 (1 gen comm/iter)", r.Align.AxisStride.Cost)
}

func e6() {
	n := int64(90)
	tr := space.NewTriplet(1, n, 1)
	w := expr.Const(1)
	for _, m := range []int{1, 3, 5} {
		worst := 1.0
		for c := int64(1); c <= n; c++ {
			span := expr.Axpy(1, "i", -c)
			exact := expr.SumAbsAffineOverTriplet(w, span, "i", tr)
			var approx int64
			for _, sub := range tr.Partition(m) {
				s := expr.SumOverTriplet(w.Poly().Mul(span.Poly()), "i", sub)
				v, _ := s.IsConst()
				if v < 0 {
					v = -v
				}
				approx += v
			}
			if approx > 0 && exact > 0 {
				if r := float64(exact) / float64(approx); r > worst {
					worst = r
				}
			}
		}
		bound := 1 + 2/float64(m*m)
		row("E6/Fig3", fmt.Sprintf("worst approx ratio, m=%d", m),
			fmt.Sprintf("≤ %.2f (1+2/m²)", bound), fmt.Sprintf("%.3f", worst))
	}
}

func e7() {
	src := `
real A(40), B(60)
do k = 1, 16
  A(9:28) = A(9:28) + B(k:k+19)
enddo
`
	for _, s := range []align.Strategy{align.StrategyFixed, align.StrategySingle,
		align.StrategyZeroTrack, align.StrategyRecursive, align.StrategyUnroll} {
		info := lang.MustAnalyze(lang.MustParse(src))
		g := build.MustBuild(info)
		as, _ := align.AxisStride(g)
		off, err := align.Offsets(g, as, nil, align.OffsetOptions{Strategy: s, M: 3, UnrollCap: 16})
		if err != nil {
			row("E7/§4.2", s.String(), "-", "error: "+err.Error())
			continue
		}
		row("E7/§4.2", s.String(),
			"fixed ≤ 1.22× exact", fmt.Sprintf("cost=%d lpvars=%d solves=%d", off.Exact, off.LPVariables, off.Solves))
	}
}

func e9() {
	srcs := map[int]string{
		1: "real A(40,40)\ndo i = 1, 12\n A(i,1:40) = A(i,1:40) + 1\nenddo\n",
		2: "real A(40,40)\ndo i = 1, 12\n do j = 1, 12\n  A(i,j:j+9) = A(i,j:j+9) + 1\n enddo\nenddo\n",
	}
	for depth := 1; depth <= 2; depth++ {
		info := lang.MustAnalyze(lang.MustParse(srcs[depth]))
		g := build.MustBuild(info)
		as, _ := align.AxisStride(g)
		off, _ := align.Offsets(g, as, nil, align.OffsetOptions{Strategy: align.StrategyFixed, M: 3})
		row("E9/§4.4", fmt.Sprintf("LP variables, depth %d", depth),
			"grows ~3^k per edge", off.LPVariables)
	}
}

// e11 measures the performance architecture of this PR: the per-axis
// worker pool on a 4-axis workload and the warm-started (basis-reuse)
// replication rounds against cold per-round solves.
func e11() {
	src := `
real A(24,24,24,24), B(24,24,24,24), C(24,24,24,24)
do k = 1, 8
  A(k:k+8,k:k+8,k:k+8,k:k+8) = A(k:k+8,k:k+8,k:k+8,k:k+8) + B(k+1:k+9,k+1:k+9,k+1:k+9,k+1:k+9)
  B(k:k+8,k:k+8,k:k+8,k:k+8) = B(k:k+8,k:k+8,k:k+8,k:k+8) * 2
  C(k:k+8,k:k+8,k:k+8,k:k+8) = C(k:k+8,k:k+8,k:k+8,k:k+8) + A(k+1:k+9,k+1:k+9,k+1:k+9,k+1:k+9)
enddo
`
	info := lang.MustAnalyze(lang.MustParse(src))
	g := build.MustBuild(info)
	as, _ := align.AxisStride(g)
	procs := runtime.GOMAXPROCS(0)
	timeOf := func(par int) (time.Duration, *align.OffsetResult) {
		t0 := time.Now()
		off, err := align.Offsets(g, as, nil, align.OffsetOptions{Strategy: align.StrategyFixed, M: 3, Parallelism: par})
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchreport:", err)
			os.Exit(1)
		}
		return time.Since(t0), off
	}
	seq, offSeq := timeOf(1)
	par, offPar := timeOf(procs)
	row("E11/perf", "4-axis solve, sequential", "-", fmt.Sprintf("%v (%d pivots)", seq.Round(time.Millisecond), offSeq.Stats.Pivots))
	row("E11/perf", fmt.Sprintf("4-axis solve, %d workers", procs),
		"≥1.5x speedup at ≥4 cores", fmt.Sprintf("%v (%.2fx, GOMAXPROCS=%d)", par.Round(time.Millisecond), float64(seq)/float64(par), procs))
	if offSeq.Exact != offPar.Exact {
		row("E11/perf", "parallel == sequential", "identical", "MISMATCH")
	} else {
		row("E11/perf", "parallel == sequential", "identical", "identical")
	}
	repl := align.NoReplication(g)
	solver := align.NewOffsetSolver(g, as, align.OffsetOptions{Strategy: align.StrategyFixed, M: 3, Parallelism: 1})
	t0 := time.Now()
	cold, _ := solver.Solve(repl)
	coldT := time.Since(t0)
	t0 = time.Now()
	warm, _ := solver.Solve(repl)
	warmT := time.Since(t0)
	row("E11/perf", "replication round, cold", "two-phase simplex",
		fmt.Sprintf("%v (%d pivots)", coldT.Round(time.Microsecond), cold.Stats.Pivots))
	row("E11/perf", "replication round, warm", "phase 2 only (basis reuse)",
		fmt.Sprintf("%v (%d pivots, %d warm solves)", warmT.Round(time.Microsecond), warm.Stats.Pivots, warm.Stats.WarmSolves))
}

// schemaVersion is the BENCH_align.json layout version. Bump it when
// the snapshot shape changes; writeSnapshot refuses to clobber a file
// written by a newer benchreport (schema_version greater than this), so
// an old binary can never silently downgrade the perf record.
//
// History: v1 (implicit 0/absent) — PR 2's workloads + cache record;
// v2 — adds schema_version itself and the E13 batch-throughput row;
// v3 — per-solver LP breakdown (sparse solves, network solves, flow
// augmentations, refactorizations) and the E14 offset-engine rows;
// v4 — the E15 flat-state rows (steady-state allocs/op and B/op of the
// pooled DP solver, flat-vs-interned speedup, PruneSlack effect);
// v5 — the E16 incremental row (compositional solve of a multi-region
// program: cold solve, warm whole-program repeat, 1-edit re-solve, and
// the per-region cache hit rate of the edit);
// v6 — the E17 presolve rows (offsets phase with the RLP presolver off
// versus on: pivot counts, reduction and block counters, and the flow
// path's per-block reach);
// v7 — the E18 service rows (alignd load test: 1000 concurrent clients
// over the mixed corpus through the in-process daemon — p50/p99/p999
// request latency, throughput, status mix, and the post-drain leak
// check);
// v8 — the E19 front-end row (per-phase lex/parse/sema/build/key wall
// time of a cold solve, the source-memo hit path versus the memo-off
// parse-and-hash warm path, hit-path allocs/op, and the memo tier's
// hit/miss/compute counters).
const schemaVersion = 8

// Snapshot is the machine-readable record benchreport writes alongside
// the text report, so the perf trajectory (phase times, DP and LP effort,
// cache behavior, batch throughput) is tracked from PR 2 onward.
type Snapshot struct {
	SchemaVersion int                    `json:"schema_version"`
	GeneratedUnix int64                  `json:"generated_unix"`
	GoMaxProcs    int                    `json:"gomaxprocs"`
	Workloads     []WorkloadSnapshot     `json:"workloads"`
	Cache         CacheSnapshot          `json:"cache"`
	Batch         BatchSnapshot          `json:"batch"`
	OffsetEngine  []OffsetEngineSnapshot `json:"offset_engine"`
	FlatState     []FlatStateSnapshot    `json:"flat_state"`
	Incremental   IncrementalSnapshot    `json:"incremental"`
	Presolve      []PresolveSnapshot     `json:"presolve"`
	Service       []ServiceSnapshot      `json:"service"`
	Frontend      FrontendSnapshot       `json:"frontend"`
}

// FrontendSnapshot is the E19 row: the front end and the source-keyed
// memo tier on the rank4-dp workload. The phase times are one cold
// solve's lex/parse/sema/ADG-build/key-hash breakdown; WarmNoMemoNs is
// the warm repeat with the memo disabled (full front end plus
// canonical hashing into a pipeline-cache hit), HitNs the same repeat
// served by the memo tier (one token-stream hash, then a map probe),
// and HitSpeedup their ratio — the ≥5× version of this gate lives in
// BenchmarkHitPath. HitAllocs is the allocation count of one memo hit
// (gated ≤ 8 in TestHitPathZeroAlloc); the counters record the memo
// tier's accounting over the whole measurement.
type FrontendSnapshot struct {
	Name         string  `json:"name"`
	LexNs        int64   `json:"lex_ns"`
	ParseNs      int64   `json:"parse_ns"`
	SemaNs       int64   `json:"sema_ns"`
	BuildNs      int64   `json:"build_ns"`
	KeyNs        int64   `json:"key_ns"`
	ColdNs       int64   `json:"cold_ns"`
	WarmNoMemoNs int64   `json:"warm_nomemo_ns"`
	HitNs        int64   `json:"hit_ns"`
	HitSpeedup   float64 `json:"hit_speedup"`
	HitAllocs    float64 `json:"hit_allocs_per_op"`
	MemoHits     int64   `json:"memo_hits"`
	MemoMisses   int64   `json:"memo_misses"`
	MemoComputes int64   `json:"memo_computes"`
}

// ServiceSnapshot is one E18 row: an alignd load run — N concurrent
// clients driving the mixed corpus through the daemon's HTTP API
// (solves plus streaming batches) — with end-to-end request latency
// percentiles, throughput, and the status-code mix. DrainClean records
// that the post-run SIGTERM-equivalent drain finished with zero leases
// and no goroutine growth, the leak gate of the serving layer.
type ServiceSnapshot struct {
	Name          string  `json:"name"`
	Clients       int     `json:"clients"`
	Requests      int     `json:"requests"`
	OK            int     `json:"ok"`
	Throttled     int     `json:"throttled_429"`
	Errors        int     `json:"errors"`
	P50Ns         int64   `json:"p50_ns"`
	P99Ns         int64   `json:"p99_ns"`
	P999Ns        int64   `json:"p999_ns"`
	ThroughputRPS float64 `json:"throughput_rps"`
	ElapsedNs     int64   `json:"elapsed_ns"`
	DrainClean    bool    `json:"drain_clean"`
}

// PresolveSnapshot is one E17 row: the cold offsets phase of a workload
// with the RLP presolver disabled (the monolithic two-tier baseline)
// versus enabled — pin substitution, difference-chain contraction, and
// block decomposition with per-block engine routing. NetSolvesOff/On
// record where the flow path newly fires: the contraction collapses
// most θ terms to pure differences, so blocks of a non-network RLP are
// often network-shaped even though whole-problem classification fails.
type PresolveSnapshot struct {
	Name         string  `json:"name"`
	OffNs        int64   `json:"off_ns"`
	OnNs         int64   `json:"on_ns"`
	Speedup      float64 `json:"speedup"`
	Fixed        int     `json:"presolve_fixed"`
	Contracted   int     `json:"presolve_contracted"`
	Blocks       int     `json:"blocks"`
	PivotsOff    int64   `json:"pivots_off"`
	PivotsOn     int64   `json:"pivots_on"`
	NetSolvesOff int     `json:"net_solves_off"`
	NetSolvesOn  int     `json:"net_solves_on"`
}

// IncrementalSnapshot is the E16 row: the compositional layer on a
// multi-region program. ColdNs is a full solve into an empty cache,
// WarmRepeatNs an unchanged re-solve (whole-program key hit), OneEditNs
// a never-seen one-line revision (the whole key misses, every untouched
// region hits). RegionHitRate is RegionHits/Regions of the edit —
// (Regions-1)/Regions when the cut is perfect.
type IncrementalSnapshot struct {
	Regions       int     `json:"regions"`
	ColdNs        int64   `json:"cold_ns"`
	WarmRepeatNs  int64   `json:"warm_repeat_ns"`
	OneEditNs     int64   `json:"one_edit_ns"`
	RegionHits    int     `json:"region_hits"`
	RegionHitRate float64 `json:"region_hit_rate"`
	EditSpeedup   float64 `json:"edit_speedup"`
}

// FlatStateSnapshot is one E15 row: the §3 solver's steady-state
// allocation rate with warm scratch pools and its wall time against the
// frozen interned-label baseline, plus the adaptive multi-start pruning
// effect (PruneSlack) on the same workload.
type FlatStateSnapshot struct {
	Name            string  `json:"name"`
	InternedNs      int64   `json:"interned_ns"`
	FlatNs          int64   `json:"flat_ns"`
	Speedup         float64 `json:"speedup"`
	WarmAllocsPerOp float64 `json:"warm_allocs_per_op"`
	WarmBytesPerOp  float64 `json:"warm_bytes_per_op"`
	PrunedNs        int64   `json:"pruned_ns"`
	PrunedStarts    int     `json:"pruned_starts"`
}

// WorkloadSnapshot is one program's pipeline profile.
type WorkloadSnapshot struct {
	Name   string        `json:"name"`
	Phases PhaseSnapshot `json:"phase_times_ns"`
	DP     DPSnapshot    `json:"dp"`
	LP     LPSnapshot    `json:"lp"`
	ColdNs int64         `json:"cold_ns"`
}

// PhaseSnapshot is the per-phase wall time in nanoseconds.
type PhaseSnapshot struct {
	AxisStride  int64 `json:"axis_stride"`
	Replication int64 `json:"replication"`
	Offsets     int64 `json:"offsets"`
}

// DPSnapshot is the §3 compact-DP effort.
type DPSnapshot struct {
	Starts           int   `json:"starts"`
	Labels           int   `json:"labels"`
	Configs          int   `json:"configs"`
	Sweeps           int64 `json:"sweeps"`
	Moves            int64 `json:"moves"`
	Evals            int64 `json:"evals"`
	ExpansionAccepts int64 `json:"expansion_accepts"`
}

// LPSnapshot is the §4 offset-LP effort with the per-solver breakdown
// of the two-tier engine: how many solves ran on the sparse revised
// simplex (refactors count its basis rebuilds) and how many were
// answered by the network-dual fast path (augments are its flow
// augmentations — the analogue of pivots).
type LPSnapshot struct {
	Solves       int   `json:"solves"`
	WarmSolves   int   `json:"warm_solves"`
	SparseSolves int   `json:"sparse_solves"`
	NetSolves    int   `json:"net_solves"`
	Pivots       int64 `json:"pivots"`
	Augments     int64 `json:"augments"`
	Refactors    int64 `json:"refactors"`
}

// OffsetEngineSnapshot is one E14 row: the cold offsets phase of a
// workload under the forced dense tableau (network path disabled)
// versus the production engine. NetSolves/Augments are the production
// run's flow-path activity: zero on looped workloads (their mobile
// RLPs carry free per-LIV coefficient unknowns the flow model cannot
// express), all of the solves on straight-line programs like shift2d.
type OffsetEngineSnapshot struct {
	Name         string  `json:"name"`
	DenseNs      int64   `json:"dense_ns"`
	AutoNs       int64   `json:"auto_ns"`
	Speedup      float64 `json:"speedup"`
	SparseSolves int     `json:"sparse_solves"`
	Pivots       int64   `json:"pivots"`
	Refactors    int64   `json:"refactors"`
	NetSolves    int     `json:"net_solves"`
	Augments     int64   `json:"augments"`
}

// CacheSnapshot is the pipeline cache behavior of the E12 run.
type CacheSnapshot struct {
	Hits     int64   `json:"hits"`
	Misses   int64   `json:"misses"`
	HitRate  float64 `json:"hit_rate"`
	CachedNs int64   `json:"cached_ns"`
	ColdNs   int64   `json:"cold_ns"`
	Speedup  float64 `json:"speedup"`
}

// BatchSnapshot is the E13 batch-engine record: many-program throughput
// under the cooperative scheduler and the sharded cache's dedup and
// contention behavior.
type BatchSnapshot struct {
	Workers         int     `json:"workers"`
	Programs        int     `json:"programs"`
	UniquePrograms  int     `json:"unique_programs"`
	Computes        int64   `json:"computes"`
	SharedFlights   int64   `json:"shared_flights"`
	ProgramsPerSec1 float64 `json:"programs_per_sec_1w"`
	ProgramsPerSecN float64 `json:"programs_per_sec_nw"`
	Speedup         float64 `json:"speedup"`
	CacheShards     int     `json:"cache_shards"`
	ShardContention int64   `json:"shard_contention"`
}

// e12 measures this PR's performance architecture: the interned-label
// incremental DP against the retained string-keyed solver, and the
// content-addressed pipeline cache on repeated compiles. It returns the
// snapshot for BENCH_align.json.
func e12() Snapshot {
	snap := Snapshot{SchemaVersion: schemaVersion, GeneratedUnix: time.Now().Unix(), GoMaxProcs: runtime.GOMAXPROCS(0)}
	workloads := []struct{ name, src string }{
		{"fig1", fig1},
		{"rank4-dp", dpSrc},
	}
	cache := repro.NewCache(0)
	opts := repro.DefaultOptions()
	opts.Cache = cache
	// E12's cache row measures the pipeline tier (SHA-256 of the
	// canonical ADG + rehydration); the source memo would answer the
	// repeats before it. E19 measures that tier.
	opts.NoSourceMemo = true
	var lastCold time.Duration
	for _, w := range workloads {
		g := build.MustBuild(lang.MustAnalyze(lang.MustParse(w.src)))
		legacyT := timeIt(func() {
			if _, err := align.AxisStrideLegacy(g); err != nil {
				fail(err)
			}
		})
		internedT := timeIt(func() {
			if _, err := align.AxisStride(g); err != nil {
				fail(err)
			}
		})
		var res *repro.Result
		coldT := timeIt(func() { res = compile(w.src, opts) })
		lastCold = coldT
		compile(w.src, opts) // unchanged program: served from the cache
		t := res.Align.Times
		dp := res.Align.AxisStride.Stats
		lp := res.Align.Offset.Stats
		row("E12/perf", w.name+" DP, string-keyed", "pre-PR baseline", legacyT.Round(time.Microsecond))
		row("E12/perf", w.name+" DP, interned+incremental", "≥3x on rank-4 workload",
			fmt.Sprintf("%v (%.1fx)", internedT.Round(time.Microsecond), float64(legacyT)/float64(internedT)))
		row("E12/perf", w.name+" DP effort", "sweeps touch dirty nodes only",
			fmt.Sprintf("%d starts %d labels %d configs %d sweeps %d moves", dp.Starts, dp.Labels, dp.Configs, dp.Sweeps, dp.Moves))
		snap.Workloads = append(snap.Workloads, WorkloadSnapshot{
			Name: w.name,
			Phases: PhaseSnapshot{
				AxisStride:  int64(t.AxisStride),
				Replication: int64(t.Replication),
				Offsets:     int64(t.Offsets),
			},
			DP: DPSnapshot{
				Starts: dp.Starts, Labels: dp.Labels, Configs: dp.Configs,
				Sweeps: dp.Sweeps, Moves: dp.Moves, Evals: dp.Evals,
				ExpansionAccepts: dp.ExpansionAccepts,
			},
			LP: LPSnapshot{
				Solves: lp.Solves, WarmSolves: lp.WarmSolves,
				SparseSolves: lp.SparseSolves, NetSolves: lp.NetSolves,
				Pivots: lp.Pivots, Augments: lp.Augments, Refactors: lp.Refactors,
			},
			ColdNs: int64(coldT),
		})
	}
	cachedT := timeIt(func() { compile(workloads[len(workloads)-1].src, opts) })
	hits, misses := cache.Counters()
	rate := 0.0
	if hits+misses > 0 {
		rate = float64(hits) / float64(hits+misses)
	}
	snap.Cache = CacheSnapshot{
		Hits: hits, Misses: misses, HitRate: rate,
		CachedNs: int64(cachedT), ColdNs: int64(lastCold),
		Speedup: float64(lastCold) / float64(cachedT),
	}
	row("E12/perf", "pipeline cache re-compile", "≥10x vs cold solve",
		fmt.Sprintf("cold %v, cached %v (%.0fx, %d hits/%d misses)",
			lastCold.Round(time.Microsecond), cachedT.Round(time.Microsecond), snap.Cache.Speedup, hits, misses))
	return snap
}

// batchWorkload generates n distinct programs from four template
// families with sizes varied per index (mirrors the bench harness's
// generator so the E13 numbers match BenchmarkBatchThroughput).
func batchWorkload(n int) []string {
	srcs := make([]string, n)
	for i := range srcs {
		switch i % 4 {
		case 0:
			srcs[i] = fmt.Sprintf("\nreal U(%d), F(%d)\ndo k = 1, %d\n  U(k:k+29) = U(k:k+29) + F(k:k+29)\nenddo\n",
				80+i, 80+i, 8+i%8)
		case 1:
			m := 40 + i
			srcs[i] = fmt.Sprintf("\nreal A(%d,%d), V(%d)\ndo k = 1, %d\n  A(k,1:%d) = A(k,1:%d) + V(k:k+%d)\nenddo\n",
				m, m, 2*m, m, m, m, m-1)
		case 2:
			srcs[i] = fmt.Sprintf("\nreal B(%d,%d), C(%d,%d)\nB = B + transpose(C)\nB = B * 2\nC = transpose(B)\n",
				64+i, 32+i, 32+i, 64+i)
		default:
			srcs[i] = fmt.Sprintf("\nreal T(%d), B(%d,%d)\ndo k = 1, 8\n  T = cos(T)\n  B = B + spread(T, 2, %d)\nenddo\n",
				50+i, 50+i, 100+i, 100+i)
		}
	}
	return srcs
}

// e13 measures the batch alignment engine: mixed-workload throughput at
// one versus GOMAXPROCS workers under the cooperative scheduler, and a
// duplicate-heavy batch whose singleflight dedup must collapse 64
// programs to 4 pipeline executions. Returns the E13 snapshot row.
func e13() BatchSnapshot {
	procs := runtime.GOMAXPROCS(0)
	opts := repro.DefaultOptions()
	run := func(srcs []string, workers int, cache *repro.Cache) time.Duration {
		o := opts
		o.Cache = cache
		t0 := time.Now()
		for i, br := range repro.AlignBatch(srcs, o, repro.BatchOptions{Workers: workers}) {
			if br.Err != nil {
				fail(fmt.Errorf("batch slot %d: %w", i, br.Err))
			}
		}
		return time.Since(t0)
	}

	mixed := batchWorkload(32)
	seqT := run(mixed, 1, repro.NewCache(len(mixed)))
	parCache := repro.NewCache(len(mixed))
	parT := run(mixed, procs, parCache)
	ps1 := float64(len(mixed)) / seqT.Seconds()
	psN := float64(len(mixed)) / parT.Seconds()

	unique := batchWorkload(4)
	dup := make([]string, 64)
	for i := range dup {
		dup[i] = unique[i%len(unique)]
	}
	dupCache := repro.NewCache(len(dup))
	run(dup, procs, dupCache)
	computes, shared := dupCache.FlightStats()

	snap := BatchSnapshot{
		Workers:         procs,
		Programs:        len(dup),
		UniquePrograms:  len(unique),
		Computes:        computes,
		SharedFlights:   shared,
		ProgramsPerSec1: ps1,
		ProgramsPerSecN: psN,
		Speedup:         float64(seqT) / float64(parT),
		CacheShards:     parCache.Shards(),
		ShardContention: parCache.Contention() + dupCache.Contention(),
	}
	row("E13/batch", fmt.Sprintf("mixed throughput, %d programs", len(mixed)),
		"scales with workers (1 core: ~1x)",
		fmt.Sprintf("%.1f prog/s @1w, %.1f prog/s @%dw (%.2fx)", ps1, psN, procs, snap.Speedup))
	row("E13/batch", "duplicate dedup, 64 progs / 4 unique", "exactly 4 pipeline executions",
		fmt.Sprintf("%d computes, %d shared flights", computes, shared))
	row("E13/batch", "cache shard contention", "near zero (16 shards)",
		fmt.Sprintf("%d contended acquisitions", snap.ShardContention))
	if computes != int64(len(unique)) {
		fail(fmt.Errorf("E13: duplicate batch ran %d pipeline executions, want %d", computes, len(unique)))
	}
	return snap
}

// shift2dSrc is a straight-line (LIV-free) 2D shift program: every
// per-axis offset RLP is network-shaped, so the production engine
// answers all of them on the network-dual flow path without running
// any simplex.
const shift2dSrc = `
real A(100,100), B(100,100), C(100,100)
A(1:98,1:98) = B(3:100,2:99) + C(2:99,3:100)
C(1:98,1:98) = A(2:99,2:99) * 2
B(1:98,1:98) = A(1:98,1:98) + C(1:98,1:98)
`

// mixedSrc pairs a loop whose ports carry LIV coefficients (the T/U
// group — its θ rows couple (c0, ck) pairs, which no network model can
// express) with a straight-line shift group (A/B/C) sharing no arrays
// with it. Whole-problem NetworkForm fails on the mobile rows, so the
// monolithic engine runs the simplex with zero net solves; the
// presolver splits each axis into two blocks and answers the
// straight-line block on the flow path — the partial-network case the
// block decomposition exists for.
const mixedSrc = `
real A(100,100), B(100,100), C(100,100), T(100,100), U(100,100)
do k = 1, 50
  T(k,1:100) = T(k,1:100) + U(k,1:100)
enddo
A(1:98,1:98) = B(3:100,2:99) + C(2:99,3:100)
C(1:98,1:98) = A(2:99,2:99) * 2
`

// e14 measures the two-tier offset LP engine: the cold offsets phase
// under the forced dense tableau with the network path disabled (the
// pre-PR baseline) versus the production engine — the sparse revised
// simplex takes the large rank4-dp RLPs, the network-dual flow path
// takes the straight-line shift2d ones, and small problems like fig1
// legitimately stay on the dense tableau. The ≥3× rank4-dp speedup is
// additionally gated by BenchmarkOffsetSolver; this records the
// measured ratio in BENCH_align.json.
func e14() []OffsetEngineSnapshot {
	var out []OffsetEngineSnapshot
	for _, w := range []struct{ name, src string }{
		{"fig1", fig1}, {"rank4-dp", dpSrc}, {"shift2d", shift2dSrc},
	} {
		g := build.MustBuild(lang.MustAnalyze(lang.MustParse(w.src)))
		as, err := align.AxisStride(g)
		if err != nil {
			fail(err)
		}
		repl := align.NoReplication(g)
		solve := func(opts align.OffsetOptions) (*align.OffsetResult, time.Duration) {
			var res *align.OffsetResult
			t := timeIt(func() {
				r, err := align.Offsets(g, as, repl, opts)
				if err != nil {
					fail(err)
				}
				res = r
			})
			return res, t
		}
		base := align.OffsetOptions{Strategy: align.StrategyFixed, M: 3}
		denseOpts := base
		denseOpts.Engine = lp.EngineDense
		denseOpts.NoNetPath = true
		_, denseT := solve(denseOpts)
		auto, autoT := solve(base)
		speedup := float64(denseT) / float64(autoT)
		st := auto.Stats
		out = append(out, OffsetEngineSnapshot{
			Name: w.name, DenseNs: int64(denseT), AutoNs: int64(autoT), Speedup: speedup,
			SparseSolves: st.SparseSolves, Pivots: st.Pivots, Refactors: st.Refactors,
			NetSolves: st.NetSolves, Augments: st.Augments,
		})
		row("E14/perf", w.name+" offsets, dense tableau", "pre-PR baseline", denseT.Round(time.Microsecond))
		row("E14/perf", w.name+" offsets, two-tier engine", "≥3x on rank4-dp",
			fmt.Sprintf("%v (%.1fx, %d sparse solves, %d net solves, %d pivots, %d augments, %d refactors)",
				autoT.Round(time.Microsecond), speedup, st.SparseSolves, st.NetSolves, st.Pivots, st.Augments, st.Refactors))
	}
	return out
}

// identitySrc is an identity-alignment op chain: every candidate label
// is the cached identity, so a steady-state solve exercises the flat DP
// hot path with no per-solve label derivation — the regime the ≤8
// allocs/op gate of TestWarmSolveZeroAlloc pins.
const identitySrc = `
real A(64,64), B(64,64), C(64,64)
C = A + B
B = C + A
A = B + C
`

// allocRate reports the steady-state heap allocation rate of f —
// objects and bytes per call, averaged over runs — using the same
// mechanism as testing.AllocsPerRun but also recording bytes.
func allocRate(runs int, f func()) (allocsPerOp, bytesPerOp float64) {
	f() // warm pools outside the measured window
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		f()
	}
	runtime.ReadMemStats(&after)
	n := float64(runs)
	return float64(after.Mallocs-before.Mallocs) / n, float64(after.TotalAlloc-before.TotalAlloc) / n
}

// e15 measures the flat, pooled DP/LP state of this PR: steady-state
// allocations per solve with warm scratch pools (the batch engine's
// regime), wall time against the frozen interned-label solver, and the
// adaptive multi-start pruning (PruneSlack) effect. The ≥2× rank4
// speedup and the ≤8 allocs/op warm-solve bound are gated elsewhere
// (BenchmarkAxisStride, TestWarmSolveZeroAlloc); this records the
// measured trajectory.
func e15() []FlatStateSnapshot {
	var out []FlatStateSnapshot
	for _, w := range []struct{ name, src string }{
		{"rank4-dp", dpSrc}, {"identity-chain", identitySrc},
	} {
		g := build.MustBuild(lang.MustAnalyze(lang.MustParse(w.src)))
		minOver := func(f func()) time.Duration {
			best := time.Duration(1<<62 - 1)
			for i := 0; i < 5; i++ {
				if t := timeIt(f); t < best {
					best = t
				}
			}
			return best
		}
		internedT := minOver(func() {
			if _, err := align.AxisStrideInterned(g); err != nil {
				fail(err)
			}
		})
		flatT := minOver(func() {
			if _, err := align.AxisStride(g); err != nil {
				fail(err)
			}
		})
		allocs, bytes := allocRate(50, func() {
			if _, err := align.AxisStride(g); err != nil {
				fail(err)
			}
		})
		pruned := align.AxisStrideOptions{Parallelism: 1, Restarts: 6, PruneSlack: 0.05}
		var prunedStarts int
		prunedT := minOver(func() {
			r, err := align.AxisStrideOpts(g, pruned)
			if err != nil {
				fail(err)
			}
			prunedStarts = r.Stats.PrunedStarts
		})
		speedup := float64(internedT) / float64(flatT)
		out = append(out, FlatStateSnapshot{
			Name: w.name, InternedNs: int64(internedT), FlatNs: int64(flatT),
			Speedup: speedup, WarmAllocsPerOp: allocs, WarmBytesPerOp: bytes,
			PrunedNs: int64(prunedT), PrunedStarts: prunedStarts,
		})
		row("E15/perf", w.name+" DP, interned baseline", "PR 2 solver", internedT.Round(time.Microsecond))
		row("E15/perf", w.name+" DP, flat+pooled", "≥2x on rank4",
			fmt.Sprintf("%v (%.2fx)", flatT.Round(time.Microsecond), speedup))
		row("E15/perf", w.name+" steady-state allocation", "pooled: small constant",
			fmt.Sprintf("%.0f allocs/op, %.0f B/op", allocs, bytes))
		row("E15/perf", w.name+" PruneSlack=0.05, 6 restarts", "deterministic pruning",
			fmt.Sprintf("%v, %d starts pruned", prunedT.Round(time.Microsecond), prunedStarts))
	}
	return out
}

// incrementalSrc mirrors the bench harness generator (see
// BenchmarkIncrementalEdit): n independent loop components whose ADG
// regions are pairwise disjoint; component `edited` gets section shift
// 2+v in place of the base shift 1, a one-line edit that leaves the
// other n-1 region content keys unchanged.
func incrementalSrc(n, edited int, v int64) string {
	decls, body := "", ""
	for i := 0; i < n; i++ {
		e := int64(1)
		if i == edited {
			e = 2 + v
		}
		if i > 0 {
			decls += ", "
		}
		decls += fmt.Sprintf("P%d(5000), Q%d(5000)", i, i)
		body += fmt.Sprintf("do k = 1, 40\n  P%d(k:k+19) = P%d(k:k+19) + Q%d(k+%d:k+%d)\nenddo\n",
			i, i, i, e, e+19)
	}
	return "real " + decls + "\n" + body
}

// e16 measures the compositional layer of this PR: a 16-component
// program solved cold, repeated unchanged (whole-program key hit), and
// re-solved after a one-line edit — the edit must re-solve only its own
// region and serve the other 15 from the per-region cache. The ≥4×
// edit-vs-cold ratio is gated by BenchmarkIncrementalEdit; this records
// the measured trajectory.
func e16() IncrementalSnapshot {
	const comps = 16
	opts := repro.DefaultOptions()
	opts.Partition = true
	opts.Cache = repro.NewCache(1024)
	// E16 measures the pipeline and region tiers; the source memo would
	// answer the unchanged repeat first (that path is E19's row).
	opts.NoSourceMemo = true
	base := incrementalSrc(comps, -1, 0)
	var cold *repro.Result
	coldT := timeIt(func() { cold = compile(base, opts) })
	if cold.Align.Regions != comps {
		fail(fmt.Errorf("E16: cold solve split into %d regions, want %d", cold.Align.Regions, comps))
	}
	var warm *repro.Result
	warmT := timeIt(func() { warm = compile(base, opts) })
	if !warm.Align.CacheHit {
		fail(fmt.Errorf("E16: unchanged repeat missed the whole-program key"))
	}
	// Five distinct one-line revisions (each a never-seen whole-program
	// key); keep the fastest run — the region hit count is identical.
	editT := time.Duration(1<<62 - 1)
	var edit *repro.Result
	for v := int64(0); v < 5; v++ {
		rev := incrementalSrc(comps, int(v)%comps, v)
		var res *repro.Result
		if t := timeIt(func() { res = compile(rev, opts) }); t < editT {
			editT = t
		}
		edit = res
	}
	if edit.Align.CacheHit {
		fail(fmt.Errorf("E16: edited revision hit the whole-program key"))
	}
	snap := IncrementalSnapshot{
		Regions:       cold.Align.Regions,
		ColdNs:        int64(coldT),
		WarmRepeatNs:  int64(warmT),
		OneEditNs:     int64(editT),
		RegionHits:    edit.Align.RegionHits,
		RegionHitRate: float64(edit.Align.RegionHits) / float64(comps),
		EditSpeedup:   float64(coldT) / float64(editT),
	}
	row("E16/incr", fmt.Sprintf("%d-component cold solve", comps), "full pipeline per region", coldT.Round(time.Microsecond))
	row("E16/incr", "unchanged repeat", "O(hash) whole-program hit", warmT.Round(time.Microsecond))
	row("E16/incr", "1-line edit re-solve", "≥4x vs cold (1 region solved)",
		fmt.Sprintf("%v (%.1fx, %d/%d region hits)", editT.Round(time.Microsecond), snap.EditSpeedup, edit.Align.RegionHits, comps))
	return snap
}

// e17 measures the RLP presolver: the cold offsets phase of each
// workload with Presolve forced off (the monolithic two-tier engine,
// exactly the E14 production path) versus the default presolve-on
// pipeline. The ≥2× gate on the rank4-dp refinement round lives in
// BenchmarkOffsetSolverPresolve; this records the cold-solve ratio and
// the reduction counters in BENCH_align.json.
func e17() []PresolveSnapshot {
	var out []PresolveSnapshot
	for _, w := range []struct{ name, src string }{
		{"fig1", fig1}, {"rank4-dp", dpSrc}, {"shift2d", shift2dSrc},
		{"mixed", mixedSrc},
	} {
		g := build.MustBuild(lang.MustAnalyze(lang.MustParse(w.src)))
		as, err := align.AxisStride(g)
		if err != nil {
			fail(err)
		}
		repl := align.NoReplication(g)
		solve := func(mode lp.PresolveMode) (*align.OffsetResult, time.Duration) {
			opts := align.OffsetOptions{Strategy: align.StrategyFixed, M: 3, Presolve: mode}
			var res *align.OffsetResult
			best := time.Duration(1<<62 - 1)
			for i := 0; i < 3; i++ {
				t := timeIt(func() {
					r, err := align.Offsets(g, as, repl, opts)
					if err != nil {
						fail(err)
					}
					res = r
				})
				if t < best {
					best = t
				}
			}
			return res, best
		}
		off, offT := solve(lp.PresolveOff)
		on, onT := solve(lp.PresolveAuto)
		speedup := float64(offT) / float64(onT)
		if off.Exact != on.Exact {
			fail(fmt.Errorf("E17: %s exact cost differs across the presolve toggle: off=%d on=%d",
				w.name, off.Exact, on.Exact))
		}
		// The mixed workload is the partial-network case: the monolith
		// can't use the flow path at all (its θ rows carry LIV
		// coefficients), but the decomposition must route the
		// straight-line blocks to it.
		if w.name == "mixed" && (off.Stats.NetSolves != 0 || on.Stats.NetSolves == 0) {
			fail(fmt.Errorf("E17: mixed net solves off=%d on=%d, want 0 → >0",
				off.Stats.NetSolves, on.Stats.NetSolves))
		}
		out = append(out, PresolveSnapshot{
			Name: w.name, OffNs: int64(offT), OnNs: int64(onT), Speedup: speedup,
			Fixed: on.Stats.PresolveFixed, Contracted: on.Stats.PresolveContracted,
			Blocks:    on.Stats.Blocks,
			PivotsOff: off.Stats.Pivots, PivotsOn: on.Stats.Pivots,
			NetSolvesOff: off.Stats.NetSolves, NetSolvesOn: on.Stats.NetSolves,
		})
		row("E17/perf", w.name+" offsets, presolve off", "monolithic two-tier engine", offT.Round(time.Microsecond))
		row("E17/perf", w.name+" offsets, presolve on", "fewer pivots; mixed: net 0→>0",
			fmt.Sprintf("%v (%.1fx, %d fixed, %d contracted, %d blocks, pivots %d→%d, net %d→%d)",
				onT.Round(time.Microsecond), speedup,
				on.Stats.PresolveFixed, on.Stats.PresolveContracted, on.Stats.Blocks,
				off.Stats.Pivots, on.Stats.Pivots, off.Stats.NetSolves, on.Stats.NetSolves))
	}
	return out
}

// e18 measures alignment-as-a-service: an in-process alignd core on a
// loopback listener under 1000 concurrent clients (each issuing a short
// mixed sequence of solves and streaming batches over the E13 corpus),
// then a drain with leak checks — the serving acceptance of the north
// star. Returns the E18 snapshot rows.
func e18() []ServiceSnapshot {
	const (
		clients    = 1000
		perClient  = 3
		batchEvery = 7
	)
	goroutinesBefore := runtime.NumGoroutine()
	srv := service.New(service.Config{TenantBudget: -1})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fail(err)
	}
	hs := &http.Server{Handler: srv}
	go hs.Serve(ln) //nolint:errcheck // closed below
	base := "http://" + ln.Addr().String()
	srcs := batchWorkload(32)
	client := &http.Client{
		Transport: &http.Transport{MaxIdleConns: clients, MaxIdleConnsPerHost: clients},
		Timeout:   5 * time.Minute,
	}

	post := func(url string, body any) (int, time.Duration, error) {
		raw, err := json.Marshal(body)
		if err != nil {
			return 0, 0, err
		}
		t0 := time.Now()
		resp, err := client.Post(url, "application/json", bytes.NewReader(raw))
		if err != nil {
			return 0, 0, err
		}
		_, err = io.Copy(io.Discard, resp.Body) // batches stream: latency is time-to-last-byte
		resp.Body.Close()
		return resp.StatusCode, time.Since(t0), err
	}

	total := clients * perClient
	type res struct {
		status  int
		latency time.Duration
		err     error
	}
	results := make([]res, total)
	var wg sync.WaitGroup
	t0 := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < perClient; r++ {
				i := c*perClient + r
				var status int
				var d time.Duration
				var err error
				if i%batchEvery == batchEvery-1 {
					programs := []string{srcs[i%32], srcs[(i+1)%32], srcs[(i+2)%32], srcs[(i+3)%32]}
					status, d, err = post(base+"/v1/batch", service.BatchRequest{Programs: programs})
				} else {
					status, d, err = post(base+"/v1/solve", service.SolveRequest{Source: srcs[i%32]})
				}
				results[i] = res{status, d, err}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(t0)

	ok, throttled, errs := 0, 0, 0
	latencies := make([]time.Duration, 0, total)
	for _, r := range results {
		switch {
		case r.err != nil:
			errs++
		case r.status == http.StatusOK:
			ok++
			latencies = append(latencies, r.latency)
		case r.status == http.StatusTooManyRequests:
			throttled++
		default:
			errs++
		}
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(q float64) time.Duration {
		if len(latencies) == 0 {
			return 0
		}
		i := int(q * float64(len(latencies)))
		if i >= len(latencies) {
			i = len(latencies) - 1
		}
		return latencies[i]
	}
	if ok != total {
		fail(fmt.Errorf("E18: %d of %d requests did not return 200 (%d throttled, %d errors)",
			total-ok, total, throttled, errs))
	}

	// Drain (the SIGTERM path without the signal) and check for leaks:
	// worker leases, tenant slots, and goroutine growth.
	drainClean := true
	if err := srv.Drain(time.Minute); err != nil {
		fail(fmt.Errorf("E18: %w", err))
	}
	if st := srv.Scheduler().Stats(); st.Leased != 0 || st.Waiting != 0 {
		fail(fmt.Errorf("E18: leases leaked after drain: %+v", st))
	}
	hs.Close()
	client.CloseIdleConnections()
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > goroutinesBefore+10 && time.Now().Before(deadline) {
		time.Sleep(50 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > goroutinesBefore+10 {
		fail(fmt.Errorf("E18: %d goroutines after drain, started with %d", got, goroutinesBefore))
	}

	snap := ServiceSnapshot{
		Name: "mixed-1000", Clients: clients, Requests: total,
		OK: ok, Throttled: throttled, Errors: errs,
		P50Ns: int64(pct(0.50)), P99Ns: int64(pct(0.99)), P999Ns: int64(pct(0.999)),
		ThroughputRPS: float64(total) / elapsed.Seconds(),
		ElapsedNs:     int64(elapsed), DrainClean: drainClean,
	}
	row("E18/serve", fmt.Sprintf("%d clients x %d reqs", clients, perClient),
		"all 200, drain leak-free",
		fmt.Sprintf("p50 %v p99 %v p999 %v (%.0f req/s)",
			pct(0.50).Round(time.Microsecond), pct(0.99).Round(time.Microsecond),
			pct(0.999).Round(time.Microsecond), snap.ThroughputRPS))
	return []ServiceSnapshot{snap}
}

// e19 measures the front-end fast path: the per-phase breakdown of a
// cold solve (pooled lexer, arena parser and ADG build), then the warm
// repeat two ways — with the memo disabled, the full front end runs
// into a pipeline-cache hit (parse-and-hash); with it enabled, the
// source-keyed tier answers for the cost of one token-stream hash. The
// ≥5× hit gate lives in BenchmarkHitPath and the ≤8 allocs/op gate in
// TestHitPathZeroAlloc; this records the measured values in
// BENCH_align.json. Returns the E19 snapshot row.
func e19() FrontendSnapshot {
	opts := repro.DefaultOptions()
	opts.Cache = repro.NewCache(0)
	var cold *repro.Result
	coldT := timeIt(func() { cold = compile(dpSrc, opts) })
	fe := cold.Frontend

	const reps = 64
	warmest := func(o repro.Options) time.Duration {
		compile(dpSrc, o) // ensure warm
		best := time.Duration(1<<62 - 1)
		for i := 0; i < 5; i++ {
			t := timeIt(func() {
				for r := 0; r < reps; r++ {
					compile(dpSrc, o)
				}
			})
			if t < best {
				best = t
			}
		}
		return best / reps
	}
	nomemo := opts
	nomemo.NoSourceMemo = true
	warmT := warmest(nomemo)
	hitT := warmest(opts)
	hit := compile(dpSrc, opts)
	if !hit.MemoHit {
		fail(fmt.Errorf("E19: warm repeat was not served by the source memo tier"))
	}
	allocs := testing.AllocsPerRun(100, func() { compile(dpSrc, opts) })
	hits, misses, _, computes := opts.Cache.SourceCounters()

	snap := FrontendSnapshot{
		Name:  "rank4-dp",
		LexNs: int64(fe.Lex), ParseNs: int64(fe.Parse), SemaNs: int64(fe.Sema),
		BuildNs: int64(fe.Build), KeyNs: int64(fe.Key), ColdNs: int64(coldT),
		WarmNoMemoNs: int64(warmT), HitNs: int64(hitT),
		HitSpeedup: float64(warmT) / float64(hitT), HitAllocs: allocs,
		MemoHits: hits, MemoMisses: misses, MemoComputes: computes,
	}
	row("E19/perf", "rank4-dp front end, cold", "lex+parse+sema+build+key",
		fmt.Sprintf("lex %v, parse %v, sema %v, build %v, key %v",
			fe.Lex.Round(time.Microsecond), fe.Parse.Round(time.Microsecond),
			fe.Sema.Round(time.Microsecond), fe.Build.Round(time.Microsecond),
			fe.Key.Round(time.Microsecond)))
	row("E19/perf", "warm repeat, memo off", "full front end + hash",
		warmT.Round(time.Microsecond))
	row("E19/perf", "warm repeat, memo hit", "≥5x vs parse-and-hash, ≤8 allocs",
		fmt.Sprintf("%v (%.1fx, %.0f allocs)", hitT.Round(time.Microsecond), snap.HitSpeedup, allocs))
	return snap
}

func timeIt(f func()) time.Duration {
	t0 := time.Now()
	f()
	return time.Since(t0)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "benchreport:", err)
	os.Exit(1)
}

// checkSnapshotWritable enforces the never-downgrade rule: a file
// written by a newer benchreport (higher schema_version) is refused,
// not clobbered. A missing or unreadable file is writable.
func checkSnapshotWritable(path string) error {
	old, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	var existing struct {
		SchemaVersion int `json:"schema_version"`
	}
	if err := json.Unmarshal(old, &existing); err == nil && existing.SchemaVersion > schemaVersion {
		return fmt.Errorf("refusing to overwrite %s: its schema_version %d is newer than this binary's %d (rebuild benchreport)",
			path, existing.SchemaVersion, schemaVersion)
	}
	return nil
}

func writeSnapshot(path string, snap Snapshot) {
	if err := checkSnapshotWritable(path); err != nil {
		fail(err)
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fail(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "benchreport: wrote %s\n", path)
}

func e10() {
	src := `
real T(100), B(100,200)
do k = 1, 200
  T = cos(T)
  B = B + spread(T, 2, 200)
enddo
`
	with := compile(src, repro.Options{Replication: true})
	without := compile(src, repro.Options{Replication: false})
	cfg := machine.Config{Grid: []int{4, 4}, Extent: []int64{256, 256}}
	trW := machine.Simulate(with.Graph, with.Assignment(), cfg)
	trWo := machine.Simulate(without.Graph, without.Assignment(), cfg)
	row("E10/Fig4", "cost with replication", "1 bcast source (loop entry)", with.Cost.Total())
	row("E10/Fig4", "cost without replication", "bcast-equivalent per iter", without.Cost.Total())
	row("E10/Fig4", "machine time with repl", "≪ without", fmt.Sprintf("%.0f", trW.Time(cfg)))
	row("E10/Fig4", "machine time without repl", "-", fmt.Sprintf("%.0f", trWo.Time(cfg)))
}
