// Command alignc is the alignment compiler driver: it parses a program in
// the mini data-parallel language, builds its alignment-distribution
// graph, runs the full alignment pipeline (axis/stride, replication,
// mobile offsets), and reports the chosen alignments and their
// realignment cost. With -sim it also replays the aligned program on the
// distributed-memory machine simulator.
//
// Usage:
//
//	alignc [-strategy fixed|unroll|search|zerotrack|recursive] [-m N]
//	       [-par N] [-cache] [-nomemo] [-partition] [-presolve=false] [-norepl] [-static] [-dot] [-sim]
//	       [-grid PxQ] [-timeout D] [-cpuprofile F] [-memprofile F] file.dp
//	alignc -batch 'progs/*.dp' [-workers N] [-timeout D] [-deadline D] [...]
//	alignc -editstream N [-partition] [-par N]
//
// With no file, the Figure 1 fragment from the paper is compiled. With
// -batch, every file matching the glob is aligned under one global
// worker budget (the batch engine: sharded result cache with
// singleflight dedup plus a cooperative scheduler) and a per-file
// summary with aggregate throughput is printed.
//
// -timeout bounds each solve and -deadline bounds the whole batch;
// slots that miss their budget report per-file errors while the rest
// complete. Interrupting a batch (Ctrl-C or SIGTERM) drains gracefully:
// running solves abort at their next cancellation check and the summary
// is still printed for everything that finished. Per-slot errors go to
// stderr; stdout carries only result and summary rows. The exit status
// is 0 only when every slot finished: failed or unfinished slots exit 1
// so scripted callers can trust the code instead of scraping output.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro"
	"repro/internal/align"
	"repro/internal/machine"
)

const fig1 = `
real A(100,100), V(200)
do k = 1, 100
  A(k,1:100) = A(k,1:100) + V(k:k+99)
enddo
`

func main() { os.Exit(run()) }

// run is main with an exit code: profile defers must fire before the
// process exits, which os.Exit in main's own frame would skip.
func run() int {
	strategy := flag.String("strategy", "fixed", "mobile offset strategy: fixed, unroll, search, zerotrack, recursive")
	m := flag.Int("m", 3, "subranges per loop level for fixed partitioning")
	norepl := flag.Bool("norepl", false, "disable replication labeling")
	par := flag.Int("par", 0, "solver parallelism: offset-LP axes and DP multi-starts (0 = GOMAXPROCS, 1 = sequential)")
	useCache := flag.Bool("cache", false, "enable the pipeline result cache and re-align once to demonstrate a hit")
	nomemo := flag.Bool("nomemo", false, "disable the source-keyed memo tier in front of the pipeline (cache misses then still lex, parse, and hash)")
	dot := flag.Bool("dot", false, "print the ADG in Graphviz DOT format and exit")
	sim := flag.Bool("sim", false, "simulate the aligned program on a distributed-memory machine")
	grid := flag.String("grid", "4x4", "processor grid for -sim, e.g. 8x8")
	top := flag.Int("top", 10, "edges to show in the cost report")
	partition := flag.Bool("partition", false, "enable compositional solving: per-region caching and region-grain parallelism (see -editstream)")
	presolve := flag.Bool("presolve", true, "presolve offset LPs (pin/chain contraction, block decomposition) before solving; -presolve=false forces the monolithic simplex")
	editstream := flag.Int("editstream", 0, "demo mode: build an N-component program, then re-align it N times with one component edited each round, printing per-edit latency and region hit rate (implies -cache)")
	batch := flag.String("batch", "", "align every file matching the glob as one batch")
	workers := flag.Int("workers", 0, "global worker budget for -batch (0 = GOMAXPROCS)")
	timeout := flag.Duration("timeout", 0, "per-solve time budget (0 = none); a solve that exceeds it fails alone")
	deadline := flag.Duration("deadline", 0, "whole-batch time budget for -batch (0 = none)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file (pprof format)")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit (pprof format)")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC() // flush recently freed objects so the profile reflects live heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
		}()
	}

	src := fig1
	if flag.NArg() > 0 {
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		src = string(data)
	} else if *batch == "" {
		fmt.Fprintln(os.Stderr, "alignc: no input file; compiling the paper's Figure 1 fragment")
	}

	opts := repro.Options{Subranges: *m, Replication: !*norepl, Parallelism: *par, Partition: *partition, NoPresolve: !*presolve, NoSourceMemo: *nomemo}
	switch *strategy {
	case "fixed":
		opts.Strategy = align.StrategyFixed
	case "unroll":
		opts.Strategy = align.StrategyUnroll
	case "search":
		opts.Strategy = align.StrategySingle
	case "zerotrack":
		opts.Strategy = align.StrategyZeroTrack
	case "recursive":
		opts.Strategy = align.StrategyRecursive
	default:
		fatal(fmt.Errorf("unknown strategy %q", *strategy))
	}

	// Ctrl-C or SIGTERM (what init systems and orchestrators send — the
	// same drain set alignd hooks) cancels the context: running solves
	// abort at their next cancellation check instead of being killed
	// mid-batch, and the batch summary still covers everything that
	// finished. A second signal (after stop) kills the process the
	// usual way.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *batch != "" {
		return runBatch(ctx, *batch, opts, *workers, *timeout, *deadline)
	}
	if *editstream > 0 {
		runEditStream(ctx, *editstream, opts)
		return 0
	}

	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if *useCache {
		opts.Cache = repro.NewCache(0)
	}
	res, err := repro.AlignSourceContext(ctx, src, opts)
	if err != nil {
		fatal(err)
	}
	if *useCache {
		// Compile the unchanged program again: the repeat is served from
		// the source memo tier (or, with -nomemo, from the pipeline
		// cache), which the report of the second result records.
		t0 := time.Now()
		res, err = repro.AlignSourceContext(ctx, src, opts)
		if err != nil {
			fatal(err)
		}
		hits, misses := opts.Cache.Counters()
		mHits, _, _, _ := opts.Cache.SourceCounters()
		fmt.Fprintf(os.Stderr, "alignc: cached re-alignment in %s (%d memo hits, %d pipeline hits / %d misses)\n",
			time.Since(t0).Round(time.Microsecond), mHits, hits, misses)
	}
	if *dot {
		fmt.Print(res.Graph.Dot())
		return 0
	}
	fmt.Println(res.Report())
	if *top > 0 {
		fmt.Println("costliest edges:")
		fmt.Print(res.CostReport(*top))
	}
	if *sim {
		cfg := machine.Config{Grid: parseGrid(*grid, res.Graph.TemplateRank)}
		tr := machine.Simulate(res.Graph, res.Assignment(), cfg)
		fmt.Printf("machine simulation (%s grid): %s\n", *grid, tr)
		fmt.Printf("modeled time: %.0f units\n", tr.Time(cfg))
	}
	return 0
}

// editComponent renders one independent loop computation over arrays
// suffixed i; variant v > 0 changes a section constant — a one-line
// edit confined to this component that always differs from the v = 0
// base (the base uses shift 1, edits use 2..5).
func editComponent(i int, v int64) (decl, body string) {
	e := int64(1)
	if v > 0 {
		e = 2 + v%4
	}
	return fmt.Sprintf("C%d(120), D%d(120)", i, i),
		fmt.Sprintf("do k = 1, 40\n  C%d(k:k+19) = C%d(k:k+19) + D%d(k+%d:k+%d)\nenddo\n", i, i, i, e, e+19)
}

// editStreamSrc composes n independent components, with component
// `edited` (when >= 0) carrying variant v — a realistic "one statement
// changed" program revision.
func editStreamSrc(n, edited int, v int64) string {
	decls := make([]string, n)
	var body strings.Builder
	for i := 0; i < n; i++ {
		variant := int64(0)
		if i == edited {
			variant = v
		}
		d, b := editComponent(i, variant)
		decls[i] = d
		body.WriteString(b)
	}
	return "real " + strings.Join(decls, ", ") + "\n" + body.String()
}

// runEditStream demonstrates incremental re-alignment: a cold solve of
// an n-component program, then n rounds each editing one line of one
// component and re-aligning. With -partition every untouched component
// is a warm region hit and only the edited one re-solves; without it
// every edit is a full re-solve (run both to compare).
func runEditStream(ctx context.Context, n int, opts repro.Options) {
	if opts.Cache == nil {
		opts.Cache = repro.NewCache(4 * n)
	}
	t0 := time.Now()
	res, err := repro.AlignSourceContext(ctx, editStreamSrc(n, -1, 0), opts)
	if err != nil {
		fatal(err)
	}
	cold := time.Since(t0)
	fmt.Printf("cold solve: %d components, %d regions, %s\n",
		n, res.Align.Regions, cold.Round(time.Microsecond))
	var total time.Duration
	for round := 0; round < n; round++ {
		src := editStreamSrc(n, round%n, int64(1+round))
		t0 = time.Now()
		res, err = repro.AlignSourceContext(ctx, src, opts)
		if err != nil {
			fatal(err)
		}
		d := time.Since(t0)
		total += d
		fmt.Printf("edit %2d (component %2d): %10s  region hits %d/%d  cost %s\n",
			round, round%n, d.Round(time.Microsecond),
			res.Align.RegionHits, res.Align.Regions, res.Cost)
	}
	hits, misses := opts.Cache.Counters()
	computes, shared := opts.Cache.FlightStats()
	fmt.Printf("edit stream: %d edits in %s (mean %s; cold was %s)\n",
		n, total.Round(time.Microsecond), (total / time.Duration(n)).Round(time.Microsecond),
		cold.Round(time.Microsecond))
	fmt.Printf("cache: %d hits / %d misses, %d pipeline executions, %d shared\n",
		hits, misses, computes, shared)
}

// runBatch aligns every file matching the glob under one worker budget
// and prints a per-file summary plus aggregate throughput and cache
// statistics. Files are sorted by name so the output (and the result
// order) is deterministic regardless of filesystem enumeration. The
// context carries the SIGINT/SIGTERM drain; deadline (when > 0)
// additionally bounds the whole batch and timeout bounds each solve.
// Interrupted or expired runs still print the summary: completed slots
// report their costs on stdout, failed ones their errors on stderr.
// The returned exit code is 0 only when every slot finished cleanly;
// any failed slot — or a fired deadline or drain — makes it 1.
func runBatch(ctx context.Context, glob string, opts repro.Options, workers int, timeout, deadline time.Duration) int {
	files, err := filepath.Glob(glob)
	if err != nil {
		fatal(err)
	}
	if len(files) == 0 {
		fatal(fmt.Errorf("batch: no files match %q", glob))
	}
	sort.Strings(files)
	srcs := make([]string, len(files))
	for i, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			fatal(err)
		}
		srcs[i] = string(data)
	}
	if opts.Cache == nil {
		opts.Cache = repro.NewCache(len(srcs))
	}
	if deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, deadline)
		defer cancel()
	}
	t0 := time.Now()
	results := repro.AlignBatchContext(ctx, srcs, opts, repro.BatchOptions{Workers: workers, SolveTimeout: timeout})
	elapsed := time.Since(t0)
	failed, canceled := 0, 0
	for i, br := range results {
		if br.Err != nil {
			failed++
			if errors.Is(br.Err, context.Canceled) || errors.Is(br.Err, context.DeadlineExceeded) {
				canceled++
			}
			fmt.Fprintf(os.Stderr, "%-30s ERROR %v\n", files[i], br.Err)
			continue
		}
		tag := ""
		if br.Result.MemoHit {
			tag = "  [memo hit]"
		} else if br.Result.Align.CacheHit {
			tag = "  [cache hit]"
		}
		fmt.Printf("%-30s exact cost %s%s\n", files[i], br.Result.Cost, tag)
	}
	computes, shared := opts.Cache.FlightStats()
	hits, misses := opts.Cache.Counters()
	fmt.Printf("batch: %d programs (%d failed) in %s — %.1f programs/sec\n",
		len(srcs), failed, elapsed.Round(time.Microsecond),
		float64(len(srcs))/elapsed.Seconds())
	mHits, mMisses, mShared, _ := opts.Cache.SourceCounters()
	fmt.Printf("cache: %d pipeline executions, %d singleflight-shared, %d hits / %d misses, shard contention %d\n",
		computes, shared, hits, misses, opts.Cache.Contention())
	fmt.Printf("source memo: %d hits, %d shared, %d front-end runs\n", mHits, mShared, mMisses)
	if err := ctx.Err(); err != nil {
		reason := "canceled"
		if errors.Is(err, context.DeadlineExceeded) {
			reason = "deadline exceeded"
		}
		fmt.Fprintf(os.Stderr, "alignc: batch %s — %d of %d slots unfinished\n",
			reason, canceled, len(srcs))
	}
	if failed > 0 || ctx.Err() != nil {
		return 1
	}
	return 0
}

func parseGrid(s string, rank int) []int {
	parts := strings.Split(strings.ToLower(s), "x")
	out := make([]int, 0, rank)
	for _, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v < 1 {
			fatal(fmt.Errorf("bad grid %q", s))
		}
		out = append(out, v)
	}
	for len(out) < rank {
		out = append(out, 1)
	}
	return out[:rank]
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "alignc:", err)
	os.Exit(1)
}
