// Command alignc is the alignment compiler driver: it parses a program in
// the mini data-parallel language, builds its alignment-distribution
// graph, runs the full alignment pipeline (axis/stride, replication,
// mobile offsets), and reports the chosen alignments and their
// realignment cost. With -sim it also replays the aligned program on the
// distributed-memory machine simulator.
//
// Usage:
//
//	alignc [-strategy fixed|unroll|search|zerotrack|recursive] [-m N]
//	       [-par N] [-cache] [-norepl] [-static] [-dot] [-sim] [-grid PxQ] file.dp
//	alignc -batch 'progs/*.dp' [-workers N] [...]
//
// With no file, the Figure 1 fragment from the paper is compiled. With
// -batch, every file matching the glob is aligned under one global
// worker budget (the batch engine: sharded result cache with
// singleflight dedup plus a cooperative scheduler) and a per-file
// summary with aggregate throughput is printed.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro"
	"repro/internal/align"
	"repro/internal/machine"
)

const fig1 = `
real A(100,100), V(200)
do k = 1, 100
  A(k,1:100) = A(k,1:100) + V(k:k+99)
enddo
`

func main() {
	strategy := flag.String("strategy", "fixed", "mobile offset strategy: fixed, unroll, search, zerotrack, recursive")
	m := flag.Int("m", 3, "subranges per loop level for fixed partitioning")
	norepl := flag.Bool("norepl", false, "disable replication labeling")
	par := flag.Int("par", 0, "solver parallelism: offset-LP axes and DP multi-starts (0 = GOMAXPROCS, 1 = sequential)")
	useCache := flag.Bool("cache", false, "enable the pipeline result cache and re-align once to demonstrate a hit")
	dot := flag.Bool("dot", false, "print the ADG in Graphviz DOT format and exit")
	sim := flag.Bool("sim", false, "simulate the aligned program on a distributed-memory machine")
	grid := flag.String("grid", "4x4", "processor grid for -sim, e.g. 8x8")
	top := flag.Int("top", 10, "edges to show in the cost report")
	batch := flag.String("batch", "", "align every file matching the glob as one batch")
	workers := flag.Int("workers", 0, "global worker budget for -batch (0 = GOMAXPROCS)")
	flag.Parse()

	src := fig1
	if flag.NArg() > 0 {
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		src = string(data)
	} else if *batch == "" {
		fmt.Fprintln(os.Stderr, "alignc: no input file; compiling the paper's Figure 1 fragment")
	}

	opts := repro.Options{Subranges: *m, Replication: !*norepl, Parallelism: *par}
	switch *strategy {
	case "fixed":
		opts.Strategy = align.StrategyFixed
	case "unroll":
		opts.Strategy = align.StrategyUnroll
	case "search":
		opts.Strategy = align.StrategySingle
	case "zerotrack":
		opts.Strategy = align.StrategyZeroTrack
	case "recursive":
		opts.Strategy = align.StrategyRecursive
	default:
		fatal(fmt.Errorf("unknown strategy %q", *strategy))
	}

	if *batch != "" {
		runBatch(*batch, opts, *workers)
		return
	}

	if *useCache {
		opts.Cache = repro.NewCache(0)
	}
	res, err := repro.AlignSource(src, opts)
	if err != nil {
		fatal(err)
	}
	if *useCache {
		// Compile the unchanged program again: the pipeline is served from
		// the cache, which the report of the second result records.
		t0 := time.Now()
		res, err = repro.AlignSource(src, opts)
		if err != nil {
			fatal(err)
		}
		hits, misses := opts.Cache.Counters()
		fmt.Fprintf(os.Stderr, "alignc: cached re-alignment in %s (%d hits / %d misses)\n",
			time.Since(t0).Round(time.Microsecond), hits, misses)
	}
	if *dot {
		fmt.Print(res.Graph.Dot())
		return
	}
	fmt.Println(res.Report())
	if *top > 0 {
		fmt.Println("costliest edges:")
		fmt.Print(res.CostReport(*top))
	}
	if *sim {
		cfg := machine.Config{Grid: parseGrid(*grid, res.Graph.TemplateRank)}
		tr := machine.Simulate(res.Graph, res.Assignment(), cfg)
		fmt.Printf("machine simulation (%s grid): %s\n", *grid, tr)
		fmt.Printf("modeled time: %.0f units\n", tr.Time(cfg))
	}
}

// runBatch aligns every file matching the glob under one worker budget
// and prints a per-file summary plus aggregate throughput and cache
// statistics. Files are sorted by name so the output (and the result
// order) is deterministic regardless of filesystem enumeration.
func runBatch(glob string, opts repro.Options, workers int) {
	files, err := filepath.Glob(glob)
	if err != nil {
		fatal(err)
	}
	if len(files) == 0 {
		fatal(fmt.Errorf("batch: no files match %q", glob))
	}
	sort.Strings(files)
	srcs := make([]string, len(files))
	for i, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			fatal(err)
		}
		srcs[i] = string(data)
	}
	if opts.Cache == nil {
		opts.Cache = repro.NewCache(len(srcs))
	}
	t0 := time.Now()
	results := repro.AlignBatch(srcs, opts, repro.BatchOptions{Workers: workers})
	elapsed := time.Since(t0)
	failed := 0
	for i, br := range results {
		if br.Err != nil {
			failed++
			fmt.Printf("%-30s ERROR %v\n", files[i], br.Err)
			continue
		}
		tag := ""
		if br.Result.Align.CacheHit {
			tag = "  [cache hit]"
		}
		fmt.Printf("%-30s exact cost %s%s\n", files[i], br.Result.Cost, tag)
	}
	computes, shared := opts.Cache.FlightStats()
	hits, misses := opts.Cache.Counters()
	fmt.Printf("batch: %d programs (%d failed) in %s — %.1f programs/sec\n",
		len(srcs), failed, elapsed.Round(time.Microsecond),
		float64(len(srcs))/elapsed.Seconds())
	fmt.Printf("cache: %d pipeline executions, %d singleflight-shared, %d hits / %d misses, shard contention %d\n",
		computes, shared, hits, misses, opts.Cache.Contention())
}

func parseGrid(s string, rank int) []int {
	parts := strings.Split(strings.ToLower(s), "x")
	out := make([]int, 0, rank)
	for _, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v < 1 {
			fatal(fmt.Errorf("bad grid %q", s))
		}
		out = append(out, v)
	}
	for len(out) < rank {
		out = append(out, 1)
	}
	return out[:rank]
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "alignc:", err)
	os.Exit(1)
}
