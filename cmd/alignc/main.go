// Command alignc is the alignment compiler driver: it parses a program in
// the mini data-parallel language, builds its alignment-distribution
// graph, runs the full alignment pipeline (axis/stride, replication,
// mobile offsets), and reports the chosen alignments and their
// realignment cost. With -sim it also replays the aligned program on the
// distributed-memory machine simulator.
//
// Usage:
//
//	alignc [-strategy fixed|unroll|search|zerotrack|recursive] [-m N]
//	       [-par N] [-cache] [-norepl] [-static] [-dot] [-sim] [-grid PxQ] file.dp
//
// With no file, the Figure 1 fragment from the paper is compiled.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro"
	"repro/internal/align"
	"repro/internal/machine"
)

const fig1 = `
real A(100,100), V(200)
do k = 1, 100
  A(k,1:100) = A(k,1:100) + V(k:k+99)
enddo
`

func main() {
	strategy := flag.String("strategy", "fixed", "mobile offset strategy: fixed, unroll, search, zerotrack, recursive")
	m := flag.Int("m", 3, "subranges per loop level for fixed partitioning")
	norepl := flag.Bool("norepl", false, "disable replication labeling")
	par := flag.Int("par", 0, "solver parallelism: offset-LP axes and DP multi-starts (0 = GOMAXPROCS, 1 = sequential)")
	useCache := flag.Bool("cache", false, "enable the pipeline result cache and re-align once to demonstrate a hit")
	dot := flag.Bool("dot", false, "print the ADG in Graphviz DOT format and exit")
	sim := flag.Bool("sim", false, "simulate the aligned program on a distributed-memory machine")
	grid := flag.String("grid", "4x4", "processor grid for -sim, e.g. 8x8")
	top := flag.Int("top", 10, "edges to show in the cost report")
	flag.Parse()

	src := fig1
	if flag.NArg() > 0 {
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		src = string(data)
	} else {
		fmt.Fprintln(os.Stderr, "alignc: no input file; compiling the paper's Figure 1 fragment")
	}

	opts := repro.Options{Subranges: *m, Replication: !*norepl, Parallelism: *par}
	switch *strategy {
	case "fixed":
		opts.Strategy = align.StrategyFixed
	case "unroll":
		opts.Strategy = align.StrategyUnroll
	case "search":
		opts.Strategy = align.StrategySingle
	case "zerotrack":
		opts.Strategy = align.StrategyZeroTrack
	case "recursive":
		opts.Strategy = align.StrategyRecursive
	default:
		fatal(fmt.Errorf("unknown strategy %q", *strategy))
	}

	if *useCache {
		opts.Cache = repro.NewCache(0)
	}
	res, err := repro.AlignSource(src, opts)
	if err != nil {
		fatal(err)
	}
	if *useCache {
		// Compile the unchanged program again: the pipeline is served from
		// the cache, which the report of the second result records.
		t0 := time.Now()
		res, err = repro.AlignSource(src, opts)
		if err != nil {
			fatal(err)
		}
		hits, misses := opts.Cache.Counters()
		fmt.Fprintf(os.Stderr, "alignc: cached re-alignment in %s (%d hits / %d misses)\n",
			time.Since(t0).Round(time.Microsecond), hits, misses)
	}
	if *dot {
		fmt.Print(res.Graph.Dot())
		return
	}
	fmt.Println(res.Report())
	if *top > 0 {
		fmt.Println("costliest edges:")
		fmt.Print(res.CostReport(*top))
	}
	if *sim {
		cfg := machine.Config{Grid: parseGrid(*grid, res.Graph.TemplateRank)}
		tr := machine.Simulate(res.Graph, res.Assignment(), cfg)
		fmt.Printf("machine simulation (%s grid): %s\n", *grid, tr)
		fmt.Printf("modeled time: %.0f units\n", tr.Time(cfg))
	}
}

func parseGrid(s string, rank int) []int {
	parts := strings.Split(strings.ToLower(s), "x")
	out := make([]int, 0, rank)
	for _, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v < 1 {
			fatal(fmt.Errorf("bad grid %q", s))
		}
		out = append(out, v)
	}
	for len(out) < rank {
		out = append(out, 1)
	}
	return out[:rank]
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "alignc:", err)
	os.Exit(1)
}
