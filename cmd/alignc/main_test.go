package main

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

var (
	buildOnce sync.Once
	buildPath string
	buildErr  error
)

// buildAlignc compiles the driver once per test run, with -race when
// the test binary itself is instrumented.
func buildAlignc(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "alignc-test")
		if err != nil {
			buildErr = err
			return
		}
		buildPath = filepath.Join(dir, "alignc")
		args := []string{"build"}
		if raceEnabled {
			args = append(args, "-race")
		}
		args = append(args, "-o", buildPath, ".")
		out, err := exec.Command("go", args...).CombinedOutput()
		if err != nil {
			buildErr = fmt.Errorf("go build: %v\n%s", err, out)
		}
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return buildPath
}

func writeFiles(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const goodSrc = `
real A(100,100), V(200)
do k = 1, 100
  A(k,1:100) = A(k,1:100) + V(k:k+99)
enddo
`

// heavyChainSrc builds a chained-transpose loop that takes over a
// second to solve on one CPU, so a signal reliably lands mid-batch.
func heavyChainSrc(arrays, iters int) string {
	var b strings.Builder
	b.WriteString("real ")
	for i := 0; i < arrays; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "A%d(64,64)", i)
	}
	fmt.Fprintf(&b, "\ndo k = 1, %d\n", iters)
	for i := 1; i < arrays; i++ {
		fmt.Fprintf(&b, "  A%d = A%d + transpose(A%d)\n", i, i, i-1)
	}
	b.WriteString("enddo\n")
	return b.String()
}

func exitCode(t *testing.T, err error) int {
	t.Helper()
	if err == nil {
		return 0
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("run: %v", err)
	}
	return ee.ExitCode()
}

// TestBatchFailingSlotExitsNonZero is the exit-code contract: a batch
// with a failing slot must exit 1, print its ERROR row on stderr (never
// stdout), and still print cost rows and the summary for the rest.
func TestBatchFailingSlotExitsNonZero(t *testing.T) {
	bin := buildAlignc(t)
	dir := writeFiles(t, map[string]string{
		"a_good.dp": goodSrc,
		"b_bad.dp":  "this is not a program\n",
		"c_good.dp": "real B(64,48), C(48,64)\nB = B + transpose(C)\n",
	})
	var stdout, stderr bytes.Buffer
	cmd := exec.Command(bin, "-batch", filepath.Join(dir, "*.dp"))
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if code := exitCode(t, cmd.Run()); code != 1 {
		t.Errorf("exit code = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, &stdout, &stderr)
	}
	if strings.Contains(stdout.String(), "ERROR") {
		t.Errorf("ERROR row leaked to stdout:\n%s", &stdout)
	}
	if !strings.Contains(stderr.String(), "b_bad.dp") || !strings.Contains(stderr.String(), "ERROR") {
		t.Errorf("stderr missing the per-slot ERROR row:\n%s", &stderr)
	}
	for _, want := range []string{"a_good.dp", "c_good.dp", "exact cost", "batch: 3 programs (1 failed)", "cache:"} {
		if !strings.Contains(stdout.String(), want) {
			t.Errorf("stdout missing %q:\n%s", want, &stdout)
		}
	}
}

func TestBatchCleanRunExitsZero(t *testing.T) {
	bin := buildAlignc(t)
	dir := writeFiles(t, map[string]string{"a.dp": goodSrc, "b.dp": goodSrc})
	var stdout, stderr bytes.Buffer
	cmd := exec.Command(bin, "-batch", filepath.Join(dir, "*.dp"))
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if code := exitCode(t, cmd.Run()); code != 0 {
		t.Errorf("exit code = %d, want 0\nstderr:\n%s", code, &stderr)
	}
	if !strings.Contains(stdout.String(), "batch: 2 programs (0 failed)") {
		t.Errorf("stdout missing the summary:\n%s", &stdout)
	}
}

// TestBatchDeadlineExitsNonZero: a fired -deadline must exit 1 and
// explain itself on stderr while the summary still prints.
func TestBatchDeadlineExitsNonZero(t *testing.T) {
	bin := buildAlignc(t)
	files := map[string]string{}
	for i := 0; i < 4; i++ {
		files[fmt.Sprintf("h%d.dp", i)] = heavyChainSrc(60, 16+i)
	}
	dir := writeFiles(t, files)
	var stdout, stderr bytes.Buffer
	cmd := exec.Command(bin, "-batch", filepath.Join(dir, "*.dp"), "-workers", "1", "-deadline", "200ms")
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if code := exitCode(t, cmd.Run()); code != 1 {
		t.Errorf("exit code = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, &stdout, &stderr)
	}
	if !strings.Contains(stderr.String(), "deadline exceeded") {
		t.Errorf("stderr missing the deadline notice:\n%s", &stderr)
	}
	if !strings.Contains(stdout.String(), "batch: 4 programs") {
		t.Errorf("stdout missing the summary:\n%s", &stdout)
	}
}

// TestBatchSIGTERMDrains sends SIGTERM mid-batch: the run must drain
// (summary still printed, unfinished slots reported) and exit 1 — the
// same signal set alignd hooks, so orchestrated shutdowns are uniform.
func TestBatchSIGTERMDrains(t *testing.T) {
	bin := buildAlignc(t)
	files := map[string]string{}
	for i := 0; i < 6; i++ {
		files[fmt.Sprintf("h%d.dp", i)] = heavyChainSrc(60, 16+i)
	}
	dir := writeFiles(t, files)
	var stdout, stderr bytes.Buffer
	cmd := exec.Command(bin, "-batch", filepath.Join(dir, "*.dp"), "-workers", "1")
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// Land the signal while the first heavy solves are in flight (the
	// whole batch needs several seconds).
	time.Sleep(300 * time.Millisecond)
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	var err error
	select {
	case err = <-done:
	case <-time.After(60 * time.Second):
		cmd.Process.Kill()
		t.Fatalf("batch did not drain after SIGTERM\nstdout:\n%s\nstderr:\n%s", &stdout, &stderr)
	}
	if code := exitCode(t, err); code != 1 {
		t.Errorf("exit code = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, &stdout, &stderr)
	}
	if !strings.Contains(stdout.String(), "batch: 6 programs") {
		t.Errorf("drained run lost its summary:\n%s", &stdout)
	}
	if !strings.Contains(stderr.String(), "unfinished") {
		t.Errorf("stderr missing the drain notice:\n%s", &stderr)
	}
}
