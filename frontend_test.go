package repro

import (
	"testing"
)

// TestHitPathZeroAlloc gates the allocation budget of the source-memo
// hit path: once a program's result is memoized, re-aligning the same
// source must cost at most 8 allocations — the shallow Result copy,
// the pooled hash state, and nothing proportional to the program
// (measured: 2 allocs/op; the headroom absorbs runtime and pool
// jitter, not regressions). Skipped under the race detector, whose
// instrumentation allocates and would invalidate the gate.
func TestHitPathZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates, invalidating AllocsPerRun")
	}
	opts := DefaultOptions()
	opts.Cache = NewCache(0)
	if _, err := AlignSource(axisHeavySrc, opts); err != nil {
		t.Fatal(err)
	}
	var (
		res *Result
		err error
	)
	allocs := testing.AllocsPerRun(100, func() {
		res, err = AlignSource(axisHeavySrc, opts)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.MemoHit {
		t.Fatal("warm repeat was not served by the source memo tier")
	}
	if allocs > 8 {
		t.Errorf("source-memo hit path: %.0f allocs/op, want <= 8", allocs)
	}
}

// TestMemoDeterminism pins the memo tier's output contract: the memo
// toggle (Options.NoSourceMemo) crossed with Parallelism 1/2/8 yields
// byte-identical normalized reports for both the cold solve and the
// warm repeat — which is exactly why the toggle is not part of any
// cache key (see cacheKey in internal/align/cache.go: the memo only
// ever returns what the full pipeline would have computed, so keying
// on it would split the cache for no semantic difference). The warm
// repeat must hit the memo tier when it is on and the pipeline cache
// when it is off.
func TestMemoDeterminism(t *testing.T) {
	for name, src := range determinismSources {
		t.Run(name, func(t *testing.T) {
			var wantCold, wantWarm string
			for _, nomemo := range []bool{false, true} {
				for _, par := range []int{1, 2, 8} {
					opts := DefaultOptions()
					opts.Cache = NewCache(4)
					opts.NoSourceMemo = nomemo
					opts.Parallelism = par
					cold, err := AlignSource(src, opts)
					if err != nil {
						t.Fatal(err)
					}
					if cold.MemoHit {
						t.Errorf("memo=%v par=%d: cold solve reported a memo hit", !nomemo, par)
					}
					warm, err := AlignSource(src, opts)
					if err != nil {
						t.Fatal(err)
					}
					if nomemo {
						if warm.MemoHit {
							t.Errorf("par=%d: memo tier answered despite NoSourceMemo", par)
						}
						if !warm.Align.CacheHit {
							t.Errorf("par=%d: memo off, warm repeat missed the pipeline cache", par)
						}
					} else if !warm.MemoHit {
						t.Errorf("par=%d: memo on, warm repeat was not a memo hit", par)
					}
					gotCold := normalizeBatchReport(cold.Report())
					gotWarm := normalizeBatchReport(warm.Report())
					if wantCold == "" {
						wantCold, wantWarm = gotCold, gotWarm
						continue
					}
					if gotCold != wantCold {
						t.Errorf("memo=%v par=%d: cold report differs from baseline:\n--- baseline\n%s\n--- got\n%s",
							!nomemo, par, wantCold, gotCold)
					}
					if gotWarm != wantWarm {
						t.Errorf("memo=%v par=%d: warm report differs from baseline:\n--- baseline\n%s\n--- got\n%s",
							!nomemo, par, wantWarm, gotWarm)
					}
				}
			}
		})
	}
}
