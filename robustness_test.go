package repro

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/lp"
)

// goodSrc returns the i-th well-behaved program of the acceptance
// batch: fig1-shaped with a distinct loop trip count so every program
// is a distinct cache key yet all solve comfortably inside a modest LP
// iteration budget.
func goodSrc(i int) string {
	return fmt.Sprintf(`real A(100,100), V(200)
do k = 1, %d
  A(k,1:100) = A(k,1:100) + V(k:k+99)
enddo
`, 40+i)
}

// robustPanicSrc panics mid-solve: the inner loop's symbolic bounds
// with a non-dividing step defeat the closed-form communication sum
// (adg.sumLevel), which panics rather than guess. Parse and ADG
// construction succeed.
const robustPanicSrc = `real A(100)
do i = 1, 10
  do k = i, i+9, 2
    A(k:k+1) = A(k:k+1) * 2
  enddo
enddo
`

// robustHungrySrc needs far more simplex pivots than the fig1 family
// (five mutually coupled arrays with skewed mobile offsets): under the
// batch's shared MaxLPIter budget it exhausts its iteration budget
// while every fig1-sized program finishes with room to spare. The
// thresholds were measured: fig1-family solves need < 200 pivots per
// LP, this one needs > 300.
const robustHungrySrc = `real U(400), F(400), G(400), H(400), W(400)
do k = 1, 100
  U(k:k+99) = U(k:k+99) + F(k+1:k+100)
  F(k:k+99) = F(k:k+99) + G(k+2:k+101)
  G(k:k+99) = G(k:k+99) + H(k+3:k+102)
  H(k:k+99) = H(k:k+99) + W(k+4:k+103)
  W(k:k+99) = W(k:k+99) + U(k+5:k+104)
enddo
`

// TestAlignBatchPanicAndBudgetIsolation is the acceptance test of the
// robustness PR: a batch of 32 programs in which one panics mid-solve
// and one exhausts its LP iteration budget completes with exactly those
// two per-slot errors, and the other 30 results are byte-identical to
// the same batch run without any failing program.
func TestAlignBatchPanicAndBudgetIsolation(t *testing.T) {
	const n = 32
	const badPanic, badBudget = 7, 19
	opts := DefaultOptions()
	opts.MaxLPIter = 250 // fig1 family needs < 200, hungry needs > 300
	// The thresholds above were measured on the monolithic simplex path;
	// the presolver's block decomposition lets the hungry program finish
	// inside the budget, so pin the path the test is about.
	opts.NoPresolve = true

	good := make([]string, 0, n-2)
	srcs := make([]string, 0, n)
	for i := 0; i < n; i++ {
		switch i {
		case badPanic:
			srcs = append(srcs, robustPanicSrc)
		case badBudget:
			srcs = append(srcs, robustHungrySrc)
		default:
			srcs = append(srcs, goodSrc(i))
			good = append(good, goodSrc(i))
		}
	}

	ref := AlignBatch(good, opts, BatchOptions{Workers: 4})
	for i, r := range ref {
		if r.Err != nil {
			t.Fatalf("reference batch slot %d: %v", i, r.Err)
		}
	}

	got := AlignBatch(srcs, opts, BatchOptions{Workers: 4})
	nerr := 0
	gi := 0
	for i, r := range got {
		switch i {
		case badPanic:
			nerr++
			var pe *PanicError
			if !errors.As(r.Err, &pe) {
				t.Fatalf("slot %d: err = %v, want *PanicError", i, r.Err)
			}
			if pe.Label == "" || pe.Value == nil {
				t.Errorf("slot %d: PanicError missing label or value: %+v", i, pe)
			}
			if r.Result != nil {
				t.Errorf("slot %d: panicking program has a result", i)
			}
		case badBudget:
			nerr++
			if !errors.Is(r.Err, lp.ErrBudget) {
				t.Fatalf("slot %d: err = %v, want lp.ErrBudget", i, r.Err)
			}
			if r.Result != nil {
				t.Errorf("slot %d: budget-exhausted program has a result", i)
			}
		default:
			if r.Err != nil {
				t.Fatalf("slot %d: unexpected error %v", i, r.Err)
			}
			want := ref[gi]
			gi++
			if ga, wa := r.Result.Align.Assignment.String(), want.Result.Align.Assignment.String(); ga != wa {
				t.Errorf("slot %d: assignment diverged from failure-free batch\ngot:  %s\nwant: %s", i, ga, wa)
			}
			if gc, wc := r.Result.Cost.String(), want.Result.Cost.String(); gc != wc {
				t.Errorf("slot %d: cost diverged: got %s, want %s", i, gc, wc)
			}
		}
	}
	if nerr != 2 {
		t.Errorf("batch reported %d failing slots, want 2", nerr)
	}
}

// TestAlignBatchContextCancelFast pins the acceptance bound at the
// public API: an already-canceled context makes AlignBatchContext
// return in well under 100ms with context.Canceled in every slot.
func TestAlignBatchContextCancelFast(t *testing.T) {
	srcs := make([]string, 32)
	for i := range srcs {
		srcs[i] = goodSrc(i)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	out := AlignBatchContext(ctx, srcs, DefaultOptions(), BatchOptions{Workers: 4})
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Errorf("canceled batch took %v, want < 100ms", d)
	}
	for i, r := range out {
		if r.Result != nil {
			t.Errorf("slot %d has a result despite pre-canceled context", i)
		}
		if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("slot %d: err = %v, want context.Canceled", i, r.Err)
		}
	}
}

// TestAlignBatchSolveTimeoutBudget checks the per-slot deadline at the
// public API: a timeout only the hungry program exceeds fails that slot
// with context.DeadlineExceeded and leaves the rest intact.
func TestAlignBatchSolveTimeoutBudget(t *testing.T) {
	srcs := []string{goodSrc(0), goodSrc(1)}
	out := AlignBatch(srcs, DefaultOptions(), BatchOptions{Workers: 2, SolveTimeout: time.Nanosecond})
	for i, r := range out {
		if !errors.Is(r.Err, context.DeadlineExceeded) {
			t.Errorf("slot %d with 1ns timeout: err = %v, want DeadlineExceeded", i, r.Err)
		}
	}
	out = AlignBatch(srcs, DefaultOptions(), BatchOptions{Workers: 2, SolveTimeout: time.Minute})
	for i, r := range out {
		if r.Err != nil {
			t.Errorf("slot %d with generous timeout: %v", i, r.Err)
		}
	}
}

// TestAlignSourceContextCancel checks single-solve context plumbing at
// the public API: a canceled context aborts with an error wrapping
// context.Canceled and never returns a partial result.
func TestAlignSourceContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := AlignSourceContext(ctx, goodSrc(0), DefaultOptions())
	if err == nil {
		t.Fatal("canceled AlignSourceContext returned success")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Error("canceled AlignSourceContext returned a non-nil result")
	}
}

// TestAlignSourceBudgetExhausted checks MaxLPIter at the public API: an
// impossible pivot budget fails with lp.ErrBudget; the default budget
// solves the same program.
func TestAlignSourceBudgetExhausted(t *testing.T) {
	opts := DefaultOptions()
	opts.MaxLPIter = 1
	if _, err := AlignSource(goodSrc(0), opts); !errors.Is(err, lp.ErrBudget) {
		t.Errorf("MaxLPIter=1: err = %v, want lp.ErrBudget", err)
	}
	opts.MaxLPIter = 0
	if _, err := AlignSource(goodSrc(0), opts); err != nil {
		t.Errorf("default budget: %v", err)
	}
}
